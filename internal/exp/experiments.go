package exp

import (
	"fmt"

	"hybridmem/internal/config"
	"hybridmem/internal/stats"
	"hybridmem/internal/workload"
)

// Fig1Lines are the DRAM-cache line sizes swept by Figure 1.
var Fig1Lines = []int{64, 128, 256, 512, 1024, 2048, 4096}

// Fig1 reproduces Figure 1: average fraction of data fetched into a 1 GB
// (scaled) ideal DRAM cache that remained unused, per cache line size.
func Fig1(r *Runner) (Table, map[int]float64) {
	t := Table{Title: "Figure 1: wasted DRAM-cache data vs line size (paper: 0%,6%,10%,15%,19%,22%,26%)",
		Header: []string{"LineBytes", "Wasted"}}
	designs := make([]string, len(Fig1Lines))
	for i, line := range Fig1Lines {
		designs[i] = fmt.Sprintf("IDEAL-%d", line)
	}
	r.mustSweep(designs, []int{1})
	out := make(map[int]float64, len(Fig1Lines))
	for _, line := range Fig1Lines {
		var fr []float64
		for _, wl := range r.Workloads() {
			res := r.Result(wl, fmt.Sprintf("IDEAL-%d", line), 1)
			fr = append(fr, res.Mem.WastedFrac())
		}
		avg := stats.Mean(fr)
		out[line] = avg
		t.AddRow(fmt.Sprintf("%d", line), pct(avg))
	}
	return t, out
}

// Fig2Designs lists the motivation-study designs of Figure 2.
func Fig2Designs() []string {
	d := []string{"MPOD", "CHA", "LGM", "TAGLESS"}
	for _, l := range []int{128, 256, 512, 1024, 2048, 4096} {
		d = append(d, fmt.Sprintf("DFC-%d", l))
	}
	for _, l := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		d = append(d, fmt.Sprintf("IDEAL-%d", l))
	}
	return d
}

// Fig2 reproduces Figure 2: min, max and geometric-mean speedup over the
// no-NM baseline for migration schemes and DRAM caches at 1 GB NM scale.
func Fig2(r *Runner) (Table, map[string][3]float64) {
	t := Table{Title: "Figure 2: min/max/geomean speedup of migration and DRAM-cache designs (1:16 NM)",
		Header: []string{"Design", "Min", "Max", "Geomean"}}
	r.mustSweep(withBaseline(Fig2Designs()), []int{1})
	out := make(map[string][3]float64)
	for _, d := range Fig2Designs() {
		sp := r.AllSpeedups(d, 1)
		v := [3]float64{stats.Min(sp), stats.Max(sp), stats.Geomean(sp)}
		out[d] = v
		t.AddRow(d, f2(v[0]), f2(v[1]), f2(v[2]))
	}
	return t, out
}

// Tab1 reproduces Table 1: the system configuration.
func Tab1(scale int) Table {
	sys := config.Scaled(scale, 1)
	t := Table{Title: fmt.Sprintf("Table 1: system configuration (scale 1/%d)", scale),
		Header: []string{"Component", "Configuration"}}
	t.AddRow("Cores", fmt.Sprintf("%d cores, out-of-order, %d-way issue, %.1f GHz (interval model)",
		config.Cores, config.IssueWidth, config.CPUFreqGHz))
	t.AddRow("L3 Cache", fmt.Sprintf("shared %d KB, %d-way, %d-cycle access", sys.LLCBytes>>10, config.LLCAssoc, config.LLCLatency))
	t.AddRow("Near Memory", fmt.Sprintf("HBM2, %d MB (x1/x2/x4), 8 channels x 128-bit, 8 banks, tCAS-tRCD-tRP 7-7-7, 6.4 pJ/bit, 15 nJ ACT/PRE", sys.NMBytes>>20))
	t.AddRow("Far Memory", fmt.Sprintf("DDR4-3200, %d MB, 2 channels x 64-bit, 8 banks, tCAS-tRCD-tRP 22-22-22, 33 pJ/bit, 15 nJ ACT/PRE", sys.FMBytes>>20))
	t.AddRow("Hybrid2", fmt.Sprintf("%d MB DRAM cache, %d B sectors, %d B lines, %d-way XTA",
		sys.Hybrid2CacheBytes()>>20, config.SectorBytes, config.Hybrid2LineBytes, config.XTAAssoc))
	return t
}

// Tab2 reproduces Table 2: measured MPKI, footprint and memory traffic of
// every workload on the baseline system.
func Tab2(r *Runner) Table {
	t := Table{Title: "Table 2: benchmark characteristics (measured on baseline, scaled system)",
		Header: []string{"Benchmark", "Class", "Kind", "MPKI", "PaperMPKI", "Footprint(MB)", "Traffic(MB)"}}
	r.mustSweep([]string{"Baseline"}, []int{1})
	for _, wl := range r.Workloads() {
		res := r.Result(wl, "Baseline", 1)
		fpMB := wl.PaperFootprintGB * 1024 / float64(r.Scale)
		trafficMB := float64(res.Mem.FMTraffic()) / (1 << 20)
		t.AddRow(wl.Name, wl.Class.String(), wl.Kind.String(),
			fmt.Sprintf("%.1f", res.MPKI), fmt.Sprintf("%.1f", wl.PaperMPKI),
			fmt.Sprintf("%.0f", fpMB), fmt.Sprintf("%.0f", trafficMB))
	}
	return t
}

// DSEPoint is one Figure 11 configuration.
type DSEPoint struct {
	CacheMB  int // paper-scale cache size in MB
	SectorKB int
	Line     int
}

func (p DSEPoint) String() string {
	return fmt.Sprintf("%dMB-%dKB-%dB", p.CacheMB, p.SectorKB, p.Line)
}

// xtaBytes estimates the XTA size of a DSE point at paper scale: one
// entry per sector with tag+pointers+counter (~9 B) plus two bits per
// cache line for the valid/dirty vectors.
func (p DSEPoint) xtaBytes() int {
	entries := p.CacheMB << 20 / (p.SectorKB << 10)
	linesPerSector := p.SectorKB << 10 / p.Line
	entryBytes := 9 + 2*linesPerSector/8
	return entries * entryBytes
}

// Fig11Points returns the design-space points of Figure 11: every
// combination of {64,128 MB} cache, {2,4 KB} sector and {64..512 B} line
// whose XTA fits the paper's 512 KB on-chip budget.
func Fig11Points() []DSEPoint {
	var pts []DSEPoint
	for _, cacheMB := range []int{64, 128} {
		for _, sectorKB := range []int{2, 4} {
			for _, line := range []int{64, 128, 256, 512} {
				p := DSEPoint{CacheMB: cacheMB, SectorKB: sectorKB, Line: line}
				if p.xtaBytes() <= 512<<10 {
					pts = append(pts, p)
				}
			}
		}
	}
	return pts
}

// Fig11 reproduces Figure 11: geometric-mean speedup of each Hybrid2
// configuration within the XTA budget.
func Fig11(r *Runner) (Table, map[string]float64) {
	t := Table{Title: "Figure 11: Hybrid2 design-space exploration (paper best: 64MB-2KB-256B)",
		Header: []string{"Config", "Geomean speedup"}}
	designs := []string{"Baseline"}
	for _, p := range Fig11Points() {
		designs = append(designs, fmt.Sprintf("H2DSE-%d-%d-%d", p.CacheMB, p.SectorKB, p.Line))
	}
	r.mustSweep(designs, []int{1})
	out := make(map[string]float64)
	for _, p := range Fig11Points() {
		design := fmt.Sprintf("H2DSE-%d-%d-%d", p.CacheMB, p.SectorKB, p.Line)
		g := stats.Geomean(r.AllSpeedups(design, 1))
		out[p.String()] = g
		t.AddRow(p.String(), f3(g))
	}
	return t, out
}

// classesAndAll is the row layout of Figures 12 and 15-18.
var classesAndAll = []string{"High", "Medium", "Low", "All"}

// classValues evaluates metric per workload and aggregates it with
// geomean per MPKI class plus the overall geomean.
func (r *Runner) classValues(metric func(wl workload.Spec) float64) []float64 {
	byClass := map[string][]float64{}
	var all []float64
	for _, wl := range r.Workloads() {
		v := metric(wl)
		byClass[wl.Class.String()] = append(byClass[wl.Class.String()], v)
		all = append(all, v)
	}
	out := make([]float64, 0, 4)
	for _, c := range classesAndAll[:3] {
		out = append(out, stats.Geomean(byClass[c]))
	}
	return append(out, stats.Geomean(all))
}

// Fig12 reproduces Figure 12: geomean speedup per MPKI class for each
// design at NM:FM ratios 1:16, 2:16 and 4:16.
func Fig12(r *Runner, ratio16 int) (Table, map[string][]float64) {
	t := Table{Title: fmt.Sprintf("Figure 12 (%d GB-scale NM, %d:16): geomean speedup by MPKI class", ratio16, ratio16),
		Header: append([]string{"Design"}, classesAndAll...)}
	r.mustSweep(withBaseline(MainDesigns), []int{ratio16})
	out := make(map[string][]float64)
	for _, d := range MainDesigns {
		vals := r.classValues(func(wl workload.Spec) float64 { return r.Speedup(wl, d, ratio16) })
		out[d] = vals
		t.AddRow(d, f3(vals[0]), f3(vals[1]), f3(vals[2]), f3(vals[3]))
	}
	return t, out
}

// Fig13 reproduces Figure 13: per-benchmark speedup at the 1:16 ratio.
func Fig13(r *Runner) (Table, map[string]map[string]float64) {
	t := Table{Title: "Figure 13: per-benchmark speedup over baseline (1:16 NM)",
		Header: append([]string{"Benchmark"}, MainDesigns...)}
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	out := make(map[string]map[string]float64)
	for _, wl := range r.Workloads() {
		row := []string{wl.Name}
		m := make(map[string]float64, len(MainDesigns))
		for _, d := range MainDesigns {
			s := r.Speedup(wl, d, 1)
			m[d] = s
			row = append(row, f2(s))
		}
		out[wl.Name] = m
		t.AddRow(row...)
	}
	return t, out
}

// Fig14Variants is the row order of Figure 14.
var Fig14Variants = []string{"H2-CacheOnly", "H2-MigrAll", "H2-MigrNone", "H2-NoRemap", "HYBRID2"}

// Fig14 reproduces Figure 14: the performance-factor breakdown of Hybrid2
// (paper: 1.43, 1.41, 1.39, 1.58, 1.54).
func Fig14(r *Runner) (Table, map[string]float64) {
	t := Table{Title: "Figure 14: Hybrid2 performance factors breakdown (1:16 NM)",
		Header: []string{"Variant", "Geomean speedup"}}
	r.mustSweep(withBaseline(Fig14Variants), []int{1})
	out := make(map[string]float64)
	for _, d := range Fig14Variants {
		g := stats.Geomean(r.AllSpeedups(d, 1))
		out[d] = g
		t.AddRow(d, f3(g))
	}
	return t, out
}

// Fig15 reproduces Figure 15: fraction of processor requests served from
// NM, geomean per MPKI class (1:16 NM).
func Fig15(r *Runner) (Table, map[string][]float64) {
	t := Table{Title: "Figure 15: requests served from NM (1:16 NM)",
		Header: append([]string{"Design"}, classesAndAll...)}
	r.mustSweep(MainDesigns, []int{1})
	out := make(map[string][]float64)
	for _, d := range MainDesigns {
		vals := r.classValues(func(wl workload.Spec) float64 {
			return r.Result(wl, d, 1).ServedNMFrac()
		})
		out[d] = vals
		t.AddRow(d, pct(vals[0]), pct(vals[1]), pct(vals[2]), pct(vals[3]))
	}
	return t, out
}

// Fig16 reproduces Figure 16: FM traffic normalized to the baseline.
func Fig16(r *Runner) (Table, map[string][]float64) {
	t := Table{Title: "Figure 16: normalized FM traffic (1:16 NM)",
		Header: append([]string{"Design"}, classesAndAll...)}
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	out := make(map[string][]float64)
	for _, d := range MainDesigns {
		vals := r.classValues(func(wl workload.Spec) float64 {
			base := r.Result(wl, "Baseline", 1)
			res := r.Result(wl, d, 1)
			return stats.Ratio(float64(res.Mem.FMTraffic()), float64(base.Mem.FMTraffic()))
		})
		out[d] = vals
		t.AddRow(d, f2(vals[0]), f2(vals[1]), f2(vals[2]), f2(vals[3]))
	}
	return t, out
}

// Fig17 reproduces Figure 17: NM traffic normalized to the baseline's
// total memory traffic.
func Fig17(r *Runner) (Table, map[string][]float64) {
	t := Table{Title: "Figure 17: normalized NM traffic (1:16 NM)",
		Header: append([]string{"Design"}, classesAndAll...)}
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	out := make(map[string][]float64)
	for _, d := range MainDesigns {
		vals := r.classValues(func(wl workload.Spec) float64 {
			base := r.Result(wl, "Baseline", 1)
			res := r.Result(wl, d, 1)
			return stats.Ratio(float64(res.Mem.NMTraffic()), float64(base.Mem.FMTraffic()))
		})
		out[d] = vals
		t.AddRow(d, f2(vals[0]), f2(vals[1]), f2(vals[2]), f2(vals[3]))
	}
	return t, out
}

// Fig18 reproduces Figure 18: dynamic memory energy normalized to the
// baseline.
func Fig18(r *Runner) (Table, map[string][]float64) {
	t := Table{Title: "Figure 18: normalized dynamic memory energy (1:16 NM)",
		Header: append([]string{"Design"}, classesAndAll...)}
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	out := make(map[string][]float64)
	for _, d := range MainDesigns {
		vals := r.classValues(func(wl workload.Spec) float64 {
			base := r.Result(wl, "Baseline", 1)
			res := r.Result(wl, d, 1)
			return stats.Ratio(res.DynamicEnergyNJ(), base.DynamicEnergyNJ())
		})
		out[d] = vals
		t.AddRow(d, f2(vals[0]), f2(vals[1]), f2(vals[2]), f2(vals[3]))
	}
	return t, out
}
