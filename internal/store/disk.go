package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hybridmem/internal/atomicfile"
)

// diskTier is the on-disk content-addressed tier: one file per key,
// written atomically and durably, verified by a checksum envelope on
// every read, and garbage-collected least-recently-used under a byte
// bound. Files are named <key>.json so the payloads (all wire or
// record JSON) stay directly inspectable.
//
// The envelope is a single header line
//
//	hmstore1 <sha256 of payload, hex> <payload length>\n
//
// followed by the payload bytes. A truncated file fails the length
// check, a bit flip (in payload or header) fails the checksum or the
// header parse; either way the entry is deleted and reported as a miss,
// so a corrupt result is re-simulated, never served.
//
// Concurrent writers — goroutines of one process or several processes
// sharing the directory — are safe: every write is a whole-file rename,
// so readers only ever observe complete envelopes. The index is a GC
// accounting structure, not a source of truth; a read that misses the
// index still tries the file, so entries written by other processes are
// served (and adopted into the index) normally.
type diskTier struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	index     map[string]*diskEntry
	seq       uint64 // logical recency clock; higher = more recently used
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
	corrupt   uint64
}

type diskEntry struct {
	size int64 // whole-file size, envelope included
	seq  uint64
}

const (
	diskMagic = "hmstore1"
	diskExt   = ".json"
)

func openDiskTier(dir string, maxBytes int64) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &diskTier{dir: dir, maxBytes: maxBytes, index: make(map[string]*diskEntry)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Adopt existing entries oldest-first so the recency clock reflects
	// write order across restarts; validation is deferred to first read.
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var fs []found
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, diskExt) {
			continue
		}
		key := strings.TrimSuffix(name, diskExt)
		if key == "" || strings.ContainsAny(key, "/\\.") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		fs = append(fs, found{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].mtime < fs[j].mtime })
	for _, f := range fs {
		d.seq++
		d.index[f.key] = &diskEntry{size: f.size, seq: d.seq}
		d.bytes += f.size
	}
	d.gcLocked("")
	return d, nil
}

func (d *diskTier) path(key string) string { return filepath.Join(d.dir, key+diskExt) }

// get reads and verifies an entry. count controls whether a hit or miss
// bumps the counters (a Peek from inside a singleflight slot does not);
// corruption discards are always counted.
func (d *diskTier) get(key string, count bool) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		d.mu.Lock()
		if count {
			d.misses++
		}
		// The file is gone (GC by a sibling process, or never written):
		// drop any stale index entry so accounting tracks reality.
		if e, ok := d.index[key]; ok {
			d.bytes -= e.size
			delete(d.index, key)
		}
		d.mu.Unlock()
		return nil, false
	}
	payload, ok := decodeEnvelope(raw)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !ok {
		// Truncated or bit-flipped: discard so the caller re-simulates,
		// and so the next reader doesn't pay the failed verify again.
		d.corrupt++
		if count {
			d.misses++
		}
		os.Remove(d.path(key))
		if e, ok := d.index[key]; ok {
			d.bytes -= e.size
			delete(d.index, key)
		}
		return nil, false
	}
	d.seq++
	if e, ok := d.index[key]; ok {
		e.seq = d.seq
	} else {
		// Written by another process sharing the directory: adopt it.
		d.index[key] = &diskEntry{size: int64(len(raw)), seq: d.seq}
		d.bytes += int64(len(raw))
	}
	if count {
		d.hits++
	}
	return payload, true
}

func (d *diskTier) put(key string, data []byte) {
	if d == nil {
		return
	}
	raw := encodeEnvelope(data)
	if d.maxBytes > 0 && int64(len(raw)) > d.maxBytes {
		return // can never be retained alongside anything else
	}
	if err := atomicfile.Write(d.path(key), raw); err != nil {
		return // disk full or unwritable: degrade to memory-only
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	if e, ok := d.index[key]; ok {
		d.bytes += int64(len(raw)) - e.size
		e.size = int64(len(raw))
		e.seq = d.seq
	} else {
		d.index[key] = &diskEntry{size: int64(len(raw)), seq: d.seq}
		d.bytes += int64(len(raw))
	}
	d.gcLocked(key)
}

// gcLocked deletes least-recently-used entries until the byte bound
// holds, never evicting keep (the entry just written). Called with d.mu
// held.
func (d *diskTier) gcLocked(keep string) {
	if d.maxBytes <= 0 {
		return
	}
	for d.bytes > d.maxBytes {
		victim := ""
		var vseq uint64
		var ve *diskEntry
		for k, e := range d.index {
			if k == keep {
				continue
			}
			if victim == "" || e.seq < vseq {
				victim, vseq, ve = k, e.seq, e
			}
		}
		if victim == "" {
			return
		}
		os.Remove(d.path(victim))
		d.bytes -= ve.size
		delete(d.index, victim)
		d.evictions++
	}
}

type diskStats struct {
	hits      uint64
	misses    uint64
	evictions uint64
	corrupt   uint64
	entries   int
	bytes     int64
}

func (d *diskTier) stats() diskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return diskStats{
		hits:      d.hits,
		misses:    d.misses,
		evictions: d.evictions,
		corrupt:   d.corrupt,
		entries:   len(d.index),
		bytes:     d.bytes,
	}
}

func encodeEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", diskMagic, hex.EncodeToString(sum[:]), len(payload))
	raw := make([]byte, 0, len(header)+len(payload))
	raw = append(raw, header...)
	raw = append(raw, payload...)
	return raw
}

func decodeEnvelope(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	var sumHex string
	var n int
	var magic string
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %s %d", &magic, &sumHex, &n); err != nil {
		return nil, false
	}
	if magic != diskMagic || n < 0 {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, false
	}
	return payload, true
}
