// Package exp defines the paper's experiments: one function per table and
// figure of the evaluation (Figures 1-2, Table 1-2, Figures 11-18), shared
// by cmd/experiments and the benchmark harness. A Runner memoizes
// (workload, design, NM-ratio) runs so figures built from the same sweep
// (12, 13, 15-18) reuse results, and evaluates independent runs across a
// worker pool (see ResultsParallel and Sweep) so regenerating the
// evaluation scales with the machine's cores.
package exp

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"hybridmem/internal/baselines/banshee"
	"hybridmem/internal/baselines/cameo"
	"hybridmem/internal/baselines/chameleon"
	"hybridmem/internal/baselines/dramcache"
	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/baselines/footprint"
	"hybridmem/internal/baselines/lgm"
	"hybridmem/internal/baselines/mempod"
	"hybridmem/internal/baselines/silcfm"
	"hybridmem/internal/config"
	"hybridmem/internal/core"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// MainDesigns are the six designs of Figures 12-18, in the paper's order.
var MainDesigns = []string{"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"}

// ExtraDesigns are related-work designs from the paper's §2 that are not
// part of its evaluation figures but are implemented for completeness:
// CAMEO (line-granularity group migration), ALLOY (direct-mapped TAD
// cache) and FOOTPRINT (predicted-footprint page cache).
var ExtraDesigns = []string{"CAMEO", "POM", "SILC-FM", "ALLOY", "FOOTPRINT", "BANSHEE"}

// Runner executes and memoizes simulation runs.
type Runner struct {
	Scale        int
	InstrPerCore uint64
	Seed         uint64
	// Prefetch enables the LLC next-line prefetcher for all runs.
	Prefetch bool
	// Workload subset; nil means all 30.
	Subset []workload.Spec
	// Parallelism bounds the workers used by ResultsParallel and Sweep;
	// <= 0 means GOMAXPROCS. 1 forces strictly serial execution.
	Parallelism int

	mu    sync.Mutex
	cache map[string]*runFuture
}

// runFuture is one memoized run: the first caller executes the simulation
// under the Once, every concurrent duplicate blocks on the same Once and
// then reads the settled result — a singleflight per cache key.
type runFuture struct {
	once sync.Once
	res  sim.Result
	err  error
}

// NewRunner returns a runner at the default scale and instruction budget.
func NewRunner() *Runner {
	return &Runner{Scale: config.DefaultScale, InstrPerCore: 1_000_000, Seed: 1}
}

// NewQuickRunner returns a reduced-cost runner (shorter streams, one
// third of the workloads) for smoke runs and benchmarks.
func NewQuickRunner() *Runner {
	r := NewRunner()
	r.InstrPerCore = 250_000
	all := workload.Specs()
	for i := 0; i < len(all); i += 3 {
		r.Subset = append(r.Subset, all[i])
	}
	return r
}

// Workloads returns the workloads this runner sweeps.
func (r *Runner) Workloads() []workload.Spec {
	if r.Subset != nil {
		return r.Subset
	}
	return workload.Specs()
}

// workers resolves the effective worker count.
func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// clone returns a runner with the same knobs but its own memo cache —
// used by studies that vary a knob (seed, prefetcher) per sub-sweep.
func (r *Runner) clone() *Runner {
	return &Runner{
		Scale:        r.Scale,
		InstrPerCore: r.InstrPerCore,
		Seed:         r.Seed,
		Prefetch:     r.Prefetch,
		Subset:       r.Subset,
		Parallelism:  r.Parallelism,
	}
}

// system resolves the scaled system for an NM:FM ratio of ratio16:16.
func (r *Runner) system(ratio16 int) config.System {
	sys := config.Scaled(r.Scale, ratio16)
	sys.InstrPerCore = r.InstrPerCore
	sys.Seed = r.Seed
	sys.NextLinePrefetch = r.Prefetch
	return sys
}

// build constructs a design by name over fresh devices. Recognized names:
//
//	Baseline                 no NM
//	MPOD | CHA | LGM         migration schemes of the paper's evaluation
//	CAMEO | POM | SILC-FM    related-work migration schemes (§2.2)
//	BANSHEE                  frequency-gated page cache (§2.1)
//	TAGLESS                  tagless DRAM cache (4 KB pages)
//	ALLOY                    direct-mapped TAD cache (64 B lines)
//	FOOTPRINT                footprint cache (2 KB pages, predicted fills)
//	DFC | DFC-<line>         decoupled fused cache (default 1 KB lines)
//	IDEAL-<line>             ideal cache at a line size
//	HYBRID2                  the full design
//	H2-CacheOnly | H2-MigrAll | H2-MigrNone | H2-NoRemap   ablations
//	H2DSE-<cacheMB>-<sectorKB>-<line>                      Fig. 11 points
//
// Malformed names return an error so one bad spec fails its run, not a
// whole parallel sweep.
func (r *Runner) build(name string, sys config.System) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error) {
	fm := memsys.New(memsys.DDR4Config())
	if name == "Baseline" {
		return flat.NewFMOnly(fm), nil, fm, nil
	}
	nm := memsys.New(memsys.HBM2Config())
	remapEntries := int(sys.Hybrid2CacheBytes() / config.SectorBytes)

	switch {
	case name == "MPOD":
		cfg := mempod.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		// The cap matches the paper's per-run NM turnover: shortened runs
		// get proportionally more migrations per (scaled) interval.
		cfg.MaxMigrations = 16
		cfg.MinCount = 3
		return mempod.New(cfg, nm, fm), nm, fm, nil
	case name == "CHA":
		return chameleon.New(chameleon.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "LGM":
		cfg := lgm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		cfg.Watermark = 32
		return lgm.New(cfg, nm, fm), nm, fm, nil
	case name == "CAMEO":
		return cameo.New(cameo.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "POM":
		return chameleon.New(chameleon.PoM(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "SILC-FM":
		return silcfm.New(silcfm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "BANSHEE":
		return banshee.New(banshee.Default(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "TAGLESS":
		return dramcache.New(dramcache.Tagless(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "ALLOY":
		return dramcache.New(dramcache.Alloy(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "FOOTPRINT":
		return footprint.New(footprint.Default(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "DFC":
		return dramcache.New(dramcache.DFC(sys.NMBytes, 1024), nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "DFC-"):
		line, err := parseInt(name[len("DFC-"):])
		if err != nil {
			return nil, nil, nil, err
		}
		return dramcache.New(dramcache.DFC(sys.NMBytes, line), nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "IDEAL-"):
		line, err := parseInt(name[len("IDEAL-"):])
		if err != nil {
			return nil, nil, nil, err
		}
		return dramcache.New(dramcache.Ideal(sys.NMBytes, line), nm, fm), nm, fm, nil
	case name == "HYBRID2":
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2-"):
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch name[len("H2-"):] {
		case "CacheOnly":
			cfg.Mode = core.CacheOnly
		case "MigrAll":
			cfg.Mode = core.MigrateAll
		case "MigrNone":
			cfg.Mode = core.MigrateNone
		case "NoRemap":
			cfg.Mode = core.NoRemapOverhead
		default:
			return nil, nil, nil, errors.New("exp: unknown Hybrid2 mode " + name)
		}
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2ABL-"):
		parts := strings.SplitN(name[len("H2ABL-"):], "-", 2)
		if len(parts) != 2 {
			return nil, nil, nil, errors.New("exp: bad ablation design " + name)
		}
		knob := parts[0]
		val, err := parseInt(parts[1])
		if err != nil {
			return nil, nil, nil, err
		}
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch knob {
		case "ctr": // access-counter width in bits (§3.7.1, paper: 9)
			cfg.CounterBits = val
		case "reset": // FM budget reset period in paper cycles (§3.7.3)
			cfg.FMBudgetReset = memtypes.Tick(val / sys.Scale)
		case "stack": // on-chip Free-FM-Stack entries (§3.3, paper: 16)
			cfg.FreeStackOnChip = val
		case "assoc": // XTA associativity (paper: 16)
			cfg.Assoc = val
		case "free": // §3.8 extension with val/1000 of memory hinted free
			cfg.FreeSpaceAware = true
			h := core.New(cfg, nm, fm)
			total := uint64(h.Sectors()) * uint64(cfg.SectorBytes)
			freeBytes := total * uint64(val) / 1000
			h.MarkFree(memtypes.Addr(total-freeBytes), freeBytes)
			return h, nm, fm, nil
		default:
			return nil, nil, nil, errors.New("exp: unknown ablation knob " + knob)
		}
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2DSE-"):
		parts := strings.Split(name[len("H2DSE-"):], "-")
		if len(parts) != 3 {
			return nil, nil, nil, errors.New("exp: bad DSE design " + name)
		}
		cacheMB, err1 := parseInt(parts[0])
		sectorKB, err2 := parseInt(parts[1])
		line, err3 := parseInt(parts[2])
		if err := errors.Join(err1, err2, err3); err != nil {
			return nil, nil, nil, err
		}
		cfg := core.Default(sys.NMBytes, sys.FMBytes, uint64(cacheMB)<<20/uint64(sys.Scale), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		cfg.SectorBytes = sectorKB << 10
		cfg.LineBytes = line
		return core.New(cfg, nm, fm), nm, fm, nil
	}
	return nil, nil, nil, errors.New("exp: unknown design " + name)
}

func parseInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, errors.New("exp: bad integer in design name: " + s)
	}
	return v, nil
}

// RunSpec identifies one independent simulation run of a sweep.
type RunSpec struct {
	Workload workload.Spec
	Design   string
	Ratio16  int
}

// future returns the singleflight slot for a run, creating it if absent.
func (r *Runner) future(wl workload.Spec, design string, ratio16 int) *runFuture {
	key := fmt.Sprintf("%s|%s|%d|%d|%v", wl.Name, design, ratio16, r.Seed, r.Prefetch)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[string]*runFuture)
	}
	f, ok := r.cache[key]
	if !ok {
		f = new(runFuture)
		r.cache[key] = f
	}
	return f
}

// ResultErr runs (or recalls) one workload on one design at an NM ratio.
// Duplicate in-flight runs coalesce: concurrent callers of the same
// (workload, design, ratio) block on one simulation and share its result.
func (r *Runner) ResultErr(wl workload.Spec, design string, ratio16 int) (sim.Result, error) {
	if design == "Baseline" {
		ratio16 = 1 // the baseline has no NM; one run serves all ratios
	}
	f := r.future(wl, design, ratio16)
	f.once.Do(func() {
		// A panic here (e.g. a well-formed design name with invalid
		// parameters rejected deep in a constructor) must neither kill a
		// worker goroutine nor poison the Once into replaying a zero
		// result: settle it as this key's error.
		defer func() {
			if p := recover(); p != nil {
				f.err = fmt.Errorf("exp: run %s/%s: %v", wl.Name, design, p)
			}
		}()
		sys := r.system(ratio16)
		ms, nm, fm, err := r.build(design, sys)
		if err != nil {
			f.err = err
			return
		}
		f.res = sim.Run(wl, ms, nm, fm, sys)
	})
	return f.res, f.err
}

// Result is the panicking convenience form of ResultErr, for call sites
// whose design names are statically known to be well-formed.
func (r *Runner) Result(wl workload.Spec, design string, ratio16 int) sim.Result {
	res, err := r.ResultErr(wl, design, ratio16)
	if err != nil {
		panic(err)
	}
	return res
}

// parallelFor runs fn(i) for every i in [0, n) across the runner's
// worker pool, serially when one worker suffices. Errors are joined in
// index order; one failing index never aborts the others. A panic inside
// fn settles as that index's error instead of escaping on a worker
// goroutine, where no caller's recover could catch it.
func (r *Runner) parallelFor(n int, fn func(i int) error) error {
	call := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("exp: parallel run %d: %v", i, p)
			}
		}()
		return fn(i)
	}
	errs := make([]error, n)
	workers := min(r.workers(), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errors.Join(errs...)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}

// ResultsParallel evaluates the given runs across the runner's worker
// pool and returns their results in input order. Results are memoized
// exactly like Result, so a parallel sweep followed by serial reads (the
// figure generators' pattern) recomputes nothing. Execution is
// deterministic per run — each simulation is self-contained — so results
// are bit-identical to a serial evaluation regardless of scheduling. Runs
// whose design name is malformed report errors (joined, one per bad run)
// without aborting the rest of the sweep; their result slots are zero.
func (r *Runner) ResultsParallel(specs []RunSpec) ([]sim.Result, error) {
	out := make([]sim.Result, len(specs))
	err := r.parallelFor(len(specs), func(i int) error {
		var err error
		out[i], err = r.ResultErr(specs[i].Workload, specs[i].Design, specs[i].Ratio16)
		return err
	})
	return out, err
}

// SweepSpecs pre-enumerates the (workload × design × ratio) cross
// product of a sweep over this runner's workloads, in deterministic
// design-major order.
func (r *Runner) SweepSpecs(designs []string, ratios []int) []RunSpec {
	wls := r.Workloads()
	specs := make([]RunSpec, 0, len(designs)*len(ratios)*len(wls))
	for _, d := range designs {
		for _, ratio := range ratios {
			for _, wl := range wls {
				specs = append(specs, RunSpec{Workload: wl, Design: d, Ratio16: ratio})
			}
		}
	}
	return specs
}

// Sweep evaluates every (workload, design, ratio) combination in
// parallel, warming the memo cache so subsequent Result calls are free.
func (r *Runner) Sweep(designs []string, ratios []int) error {
	_, err := r.ResultsParallel(r.SweepSpecs(designs, ratios))
	return err
}

// mustSweep pre-warms a figure generator's run set. The generators only
// sweep statically well-formed design names, so an error here is a bug.
func (r *Runner) mustSweep(designs []string, ratios []int) {
	if err := r.Sweep(designs, ratios); err != nil {
		panic(err)
	}
}

// withBaseline prepends the no-NM baseline to a design list: every
// speedup-reporting figure needs it as the normalization point.
func withBaseline(designs []string) []string {
	return append([]string{"Baseline"}, designs...)
}

// RunTrace replays a captured trace (see internal/trace) on a design at
// an NM ratio. mlp bounds per-core overlapped misses. Trace runs are not
// memoized.
func (r *Runner) RunTrace(name string, rd io.Reader, design string, ratio16, mlp int) (res sim.Result, err error) {
	tr, err := trace.Read(rd, config.Cores)
	if err != nil {
		return sim.Result{}, err
	}
	srcs := make([]sim.Source, config.Cores)
	for i := range srcs {
		srcs[i] = trace.NewReplayer(tr.Cores[i])
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: trace run %s/%s: %v", name, design, p)
		}
	}()
	sys := r.system(ratio16)
	ms, nm, fm, err := r.build(design, sys)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunSources(name, srcs, mlp, ms, nm, fm, sys), nil
}

// Speedup returns design cycles relative to the no-NM baseline.
func (r *Runner) Speedup(wl workload.Spec, design string, ratio16 int) float64 {
	base := r.Result(wl, "Baseline", 1)
	res := r.Result(wl, design, ratio16)
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// ClassSpeedups collects per-workload speedups of one MPKI class.
func (r *Runner) ClassSpeedups(c workload.Class, design string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		if wl.Class == c {
			out = append(out, r.Speedup(wl, design, ratio16))
		}
	}
	return out
}

// AllSpeedups collects per-workload speedups across all classes.
func (r *Runner) AllSpeedups(design string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		out = append(out, r.Speedup(wl, design, ratio16))
	}
	return out
}
