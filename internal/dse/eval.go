package dse

import (
	"context"
	"errors"
	"fmt"

	"hybridmem/internal/exp"
)

// EvalRun identifies one simulation an evaluator must execute: a
// registered design name, a workload name, and the NM:FM ratio in
// sixteenths.
type EvalRun struct {
	Design   string
	Workload string
	Ratio16  int
}

// EvalConfig is the simulation configuration shared by every run of an
// evaluation batch. InstrPerCore is the fidelity the batch runs at —
// the screening budget during a multi-fidelity search's screening
// phase, the full budget otherwise.
type EvalConfig struct {
	Scale        int
	InstrPerCore uint64
	SimSeed      uint64
}

// EvalResult is the outcome of one run: the cycle count, the combined
// NM+FM write bytes (the search's traffic objective), and the error
// string of a failed run. Cycles == 0 marks failure; Err carries its
// cause (empty means a genuine zero-cycle run). Integer measurements
// only — the search derives every float objective itself, so results
// computed remotely fold into the frontier bit-identically to local
// ones.
type EvalResult struct {
	Cycles     uint64
	WriteBytes uint64
	Err        string
}

// Evaluator executes one batch of simulations and returns outcomes in
// input order, one per run. It must return an error only for batch-wide
// failures (cancellation, lost cluster); per-run failures ride the
// EvalResult.Err slots so one broken candidate never aborts a round.
// Evaluations must be the deterministic simulation function of
// (cfg, run) — the engine guarantees this — so any evaluator
// (in-process, loopback, distributed) yields byte-identical searches.
type Evaluator func(ctx context.Context, cfg EvalConfig, runs []EvalRun) ([]EvalResult, error)

// runBatch executes one batch of runs at the given fidelity: through
// Options.Eval when set (the distributed path), otherwise on the
// in-process runner of that fidelity. Either way the outcomes come back
// in input order with per-run error attribution.
func (s *searcher) runBatch(ctx context.Context, runs []exp.RunSpec, screen bool) ([]EvalResult, error) {
	if s.opts.Eval != nil {
		cfg := EvalConfig{Scale: s.opts.Scale, InstrPerCore: s.opts.InstrPerCore, SimSeed: s.opts.SimSeed}
		if screen {
			cfg.InstrPerCore = s.opts.ScreenInstrPerCore
		}
		evalRuns := make([]EvalRun, len(runs))
		for i, r := range runs {
			evalRuns[i] = EvalRun{Design: r.Design, Workload: r.Workload.Name, Ratio16: r.Ratio16}
		}
		out, err := s.opts.Eval(ctx, cfg, evalRuns)
		if err != nil {
			return nil, err
		}
		if len(out) != len(runs) {
			return nil, fmt.Errorf("dse: evaluator returned %d results for %d runs", len(out), len(runs))
		}
		return out, nil
	}
	runner := s.runner
	if screen {
		runner = s.screenRunner
	}
	res, errs := runner.ResultsParallelEach(ctx, runs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]EvalResult, len(runs))
	for i, r := range res {
		out[i] = EvalResult{
			Cycles:     uint64(r.Cycles),
			WriteBytes: r.Mem.NMWriteBytes + r.Mem.FMWriteBytes,
		}
		if errs[i] != nil {
			out[i].Err = errs[i].Error()
		}
	}
	return out, nil
}

// batchErr joins the per-run error strings of a batch — the batch-fatal
// form used where any failed run invalidates the whole evaluation (the
// baseline).
func batchErr(out []EvalResult) error {
	var errs []error
	for _, r := range out {
		if r.Err != "" {
			errs = append(errs, errors.New(r.Err))
		}
	}
	return errors.Join(errs...)
}
