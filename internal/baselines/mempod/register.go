package mempod

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "MPOD",
		Doc:     "MemPod interval-based page migration",
		Kind:    design.KindMain,
		Order:   1,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			cfg := Default(sys.NMBytes, sys.FMBytes, design.RemapEntries(sys), sys.Seed)
			cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
			// The cap matches the paper's per-run NM turnover: shortened
			// runs get proportionally more migrations per (scaled) interval.
			cfg.MaxMigrations = 16
			cfg.MinCount = 3
			return New(cfg, nm, fm), nil
		},
	})
}
