package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/stats"
)

// metricType is the exposition TYPE of a family.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeSummary
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// Counter is a monotonically increasing counter. All methods are safe
// through a nil receiver (no-ops) and for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. All methods are safe through
// a nil receiver and for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records non-negative integer samples (latencies in
// microseconds, typically) into a log2-bucketed stats.Histogram and
// renders as a summary: p50/p90/p99 quantiles plus _sum and _count.
// All methods are safe through a nil receiver and for concurrent use.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(uint64(max(d.Microseconds(), 0)))
}

// snapshot returns the summary samples under the histogram's lock.
func (h *Histogram) snapshot(labels []Label) []sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]sample, 0, 5)
	for _, q := range [...]struct {
		name string
		p    float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		var v float64
		if h.h.Count() > 0 {
			v = float64(h.h.Percentile(q.p))
		}
		ql := append(append([]Label(nil), labels...), Label{Key: "quantile", Value: q.name})
		out = append(out, sample{labels: ql, value: v})
	}
	out = append(out,
		sample{suffix: "_sum", labels: labels, value: float64(h.h.Sum())},
		sample{suffix: "_count", labels: labels, value: float64(h.h.Count())},
	)
	return out
}

// Label is one label key/value pair of a metric sample.
type Label struct{ Key, Value string }

// Sample is one func-collected metric sample: its label values (in the
// family's label-key order) and its value.
type Sample struct {
	Labels []string
	Value  float64
}

// sample is one rendered exposition line of a family.
type sample struct {
	suffix string // "", "_sum", "_count"
	labels []Label
	value  float64
}

// child is one labeled member of a directly-updated family.
type child struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one metric family: a name, a type, and either directly
// updated children or a collect func read at scrape time.
type family struct {
	name      string
	help      string
	typ       metricType
	labelKeys []string

	mu       sync.Mutex
	children map[string]*child
	collect  func() []Sample
}

// Registry is a collection of metric families rendered together as one
// Prometheus text exposition. All methods are safe for concurrent use
// and safe through a nil receiver: a nil registry hands out nil metric
// handles, whose operations are allocation-free no-ops — the disabled
// observability mode.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first registration.
// Re-registering with a matching type and label set returns the
// existing family (the first help string wins); a mismatch panics —
// two components exporting the same name with different meanings is a
// programming error worth failing loudly on.
func (r *Registry) family(name, help string, typ metricType, labelKeys []string) *family {
	mustValidName(name)
	for _, k := range labelKeys {
		mustValidLabel(k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelKeys, labelKeys) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labelKeys, f.typ, f.labelKeys))
		}
		if f.collect != nil {
			panic(fmt.Sprintf("obs: metric %q is func-backed and cannot gain direct children", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKeys: labelKeys, children: make(map[string]*child)}
	r.families[name] = f
	return f
}

// registerCollect installs a func-backed family. Unlike direct
// families, a collect func cannot be registered twice.
func (r *Registry) registerCollect(name, help string, typ metricType, labelKeys []string, fn func() []Sample) {
	if r == nil {
		return
	}
	mustValidName(name)
	for _, k := range labelKeys {
		mustValidLabel(k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, labelKeys: labelKeys, collect: fn}
}

// Counter registers (or finds) an unlabeled counter family and returns
// its handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, typeCounter, nil).counterChild(nil)
}

// RegisterCounter attaches an existing Counter — one owned and updated
// by another component, like the engine-simulation counter threaded
// through exp runners — as an unlabeled counter family.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	f := r.family(name, help, typeCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[""]; ok {
		panic(fmt.Sprintf("obs: metric %q already has a counter attached", name))
	}
	f.children[""] = &child{c: c}
}

// Gauge registers (or finds) an unlabeled gauge family and returns its
// handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, typeGauge, nil).gaugeChild(nil)
}

// Histogram registers (or finds) an unlabeled histogram family and
// returns its handle.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, typeSummary, nil).histChild(nil)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, typeCounter, labelKeys)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, typeSummary, labelKeys)}
}

// CounterFunc registers a counter family whose single unlabeled value
// is read from fn at scrape time. fn must be monotonically
// non-decreasing, the counter contract the exposition lint enforces.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerCollect(name, help, typeCounter, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// GaugeFunc registers a gauge family whose single unlabeled value is
// read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerCollect(name, help, typeGauge, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// CounterSamplesFunc registers a labeled counter family whose sample
// set is produced by fn at scrape time — the seam for dynamic label
// sets like per-runner dispatch counters.
func (r *Registry) CounterSamplesFunc(name, help string, labelKeys []string, fn func() []Sample) {
	r.registerCollect(name, help, typeCounter, labelKeys, fn)
}

// GaugeSamplesFunc registers a labeled gauge family whose sample set is
// produced by fn at scrape time.
func (r *Registry) GaugeSamplesFunc(name, help string, labelKeys []string, fn func() []Sample) {
	r.registerCollect(name, help, typeGauge, labelKeys, fn)
}

// CounterVec hands out per-label-value counters of one family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in the family's
// label-key order), creating it on first use.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.counterChild(labelVals)
}

// HistogramVec hands out per-label-value histograms of one family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.histChild(labelVals)
}

func (f *family) childFor(labelVals []string) *child {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labelKeys), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{labelVals: append([]string(nil), labelVals...)}
		f.children[key] = ch
	}
	return ch
}

func (f *family) counterChild(labelVals []string) *Counter {
	ch := f.childFor(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch.c == nil {
		ch.c = &Counter{}
	}
	return ch.c
}

func (f *family) gaugeChild(labelVals []string) *Gauge {
	ch := f.childFor(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch.g == nil {
		ch.g = &Gauge{}
	}
	return ch.g
}

func (f *family) histChild(labelVals []string) *Histogram {
	ch := f.childFor(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch.h == nil {
		ch.h = &Histogram{}
	}
	return ch.h
}

// WritePrometheus renders every family in the text exposition format:
// # HELP and # TYPE lines followed by the family's samples, families in
// name order, samples in label order — a deterministic scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var buf bytes.Buffer
	for _, f := range fams {
		f.render(&buf)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func (f *family) render(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(buf, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.samples() {
		buf.WriteString(f.name)
		buf.WriteString(s.suffix)
		if len(s.labels) > 0 {
			buf.WriteByte('{')
			for i, l := range s.labels {
				if i > 0 {
					buf.WriteByte(',')
				}
				buf.WriteString(l.Key)
				buf.WriteString(`="`)
				buf.WriteString(escapeLabel(l.Value))
				buf.WriteByte('"')
			}
			buf.WriteByte('}')
		}
		buf.WriteByte(' ')
		buf.WriteString(formatValue(s.value))
		buf.WriteByte('\n')
	}
}

// samples snapshots the family's current exposition lines.
func (f *family) samples() []sample {
	if f.collect != nil {
		collected := f.collect()
		out := make([]sample, 0, len(collected))
		for _, c := range collected {
			if len(c.Labels) != len(f.labelKeys) {
				panic(fmt.Sprintf("obs: metric %q collect returned %d label value(s), want %d", f.name, len(c.Labels), len(f.labelKeys)))
			}
			labels := make([]Label, len(f.labelKeys))
			for i, k := range f.labelKeys {
				labels[i] = Label{Key: k, Value: c.Labels[i]}
			}
			out = append(out, sample{labels: labels, value: c.Value})
		}
		sortSamples(out)
		return out
	}

	f.mu.Lock()
	children := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		children = append(children, ch)
	}
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].labelVals, "\x00") < strings.Join(children[j].labelVals, "\x00")
	})
	var out []sample
	for _, ch := range children {
		labels := make([]Label, len(f.labelKeys))
		for i, k := range f.labelKeys {
			labels[i] = Label{Key: k, Value: ch.labelVals[i]}
		}
		switch {
		case ch.c != nil:
			out = append(out, sample{labels: labels, value: float64(ch.c.Value())})
		case ch.g != nil:
			out = append(out, sample{labels: labels, value: float64(ch.g.Value())})
		case ch.h != nil:
			out = append(out, ch.h.snapshot(labels)...)
		}
	}
	return out
}

func sortSamples(ss []sample) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		for k := 0; k < len(a.labels) && k < len(b.labels); k++ {
			if a.labels[k].Value != b.labels[k].Value {
				return a.labels[k].Value < b.labels[k].Value
			}
		}
		return len(a.labels) < len(b.labels)
	})
}

// formatValue renders integers without an exponent (the common case:
// every counter) and everything else in shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
