package exp

import (
	"context"
	"fmt"
	"io"
	"sync"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/sim"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// TelemetryOptions configures epoch sampling for the Series-returning
// run methods below. The zero value enables sampling at the telemetry
// package defaults.
//
// Telemetry is passive: the headline Result of a sampled run is
// identical to the memoized/stored path's result (the engine is
// deterministic), so attaching options never changes what a sweep or
// figure reports. Sampled runs always execute the engine — they bypass
// the memo and the persistent store, like RunTrace — because a recalled
// result has no series to attach.
type TelemetryOptions struct {
	// WindowInstr is the epoch length in retired instructions; <= 0
	// means telemetry.DefaultWindowInstr.
	WindowInstr uint64
	// MaxEpochs bounds each run's epoch ring; <= 0 means
	// telemetry.DefaultMaxEpochs.
	MaxEpochs int
	// OnEpoch, when non-nil, streams each epoch as it closes, tagged
	// with the index of the run within the call's spec slice (0 for
	// single-run methods). It is called from worker goroutines; the
	// callback must be safe for concurrent use.
	OnEpoch func(run int, e telemetry.Epoch)
	// OnSeries, when non-nil, receives each run's settled series as
	// that run finishes, tagged like OnEpoch. Like OnEpoch it is called
	// from worker goroutines and must be safe for concurrent use.
	OnSeries func(run int, ser *telemetry.Series)
}

// sampler builds one run's sampler from the options; nil options yield
// a default-configured sampler (the Series methods are only called
// when telemetry was requested).
func (t *TelemetryOptions) sampler(run int) *telemetry.Sampler {
	var o telemetry.Options
	if t != nil {
		o.WindowInstr = t.WindowInstr
		o.MaxEpochs = t.MaxEpochs
		if t.OnEpoch != nil {
			cb := t.OnEpoch
			o.OnEpoch = func(e telemetry.Epoch) { cb(run, e) }
		}
	}
	return telemetry.New(o)
}

// ResultSeriesErr runs one workload on one design at an NM ratio with
// epoch sampling, returning the result and its telemetry series. The
// runner's Telemetry field supplies the window knobs (nil means
// defaults). Unlike ResultErr the engine always executes — see
// TelemetryOptions — but the returned Result is identical to what
// ResultErr returns for the same run.
func (r *Runner) ResultSeriesErr(wl workload.Spec, designName string, ratio16 int) (sim.Result, *telemetry.Series, error) {
	return r.resultSeries(wl, designName, ratio16, 0)
}

func (r *Runner) resultSeries(wl workload.Spec, designName string, ratio16 int, run int) (res sim.Result, ser *telemetry.Series, err error) {
	spec, err := design.Parse(designName)
	if err != nil {
		return sim.Result{}, nil, err
	}
	if !spec.Info.NeedsNM {
		ratio16 = 1 // no NM: one run serves all ratios
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: sampled run %s/%s: %v", wl.Name, designName, p)
		}
	}()
	sys := r.system(ratio16)
	ms, nm, fm, err := spec.Build(sys)
	if err != nil {
		return sim.Result{}, nil, err
	}
	smp := r.Telemetry.sampler(run)
	r.SimCounter.Inc()
	res = sim.RunSampled(wl, ms, nm, fm, sys, smp)
	ser = smp.Series()
	if r.Telemetry != nil && r.Telemetry.OnSeries != nil {
		r.Telemetry.OnSeries(run, ser)
	}
	return res, ser, nil
}

// ResultsParallelSeries evaluates the given runs across the runner's
// worker pool with epoch sampling, returning results, one series per
// run, and per-run errors joined as in ResultsParallelProgress. The
// progress callback behaves exactly as there; the Telemetry OnEpoch
// hook (if set) streams epochs live, tagged with each run's index in
// specs.
func (r *Runner) ResultsParallelSeries(ctx context.Context, specs []RunSpec, progress func(done, total int)) ([]sim.Result, []*telemetry.Series, error) {
	out := make([]sim.Result, len(specs))
	series := make([]*telemetry.Series, len(specs))
	var mu sync.Mutex
	finished := 0
	err := r.parallelForCtx(ctx, len(specs), func(i int) error {
		var err error
		out[i], series[i], err = r.resultSeries(specs[i].Workload, specs[i].Design, specs[i].Ratio16, i)
		if progress != nil {
			mu.Lock()
			finished++
			progress(finished, len(specs))
			mu.Unlock()
		}
		return err
	})
	return out, series, err
}

// RunTraceSeries is RunTrace with epoch sampling: it replays a
// captured trace with a sampler attached and returns the series
// alongside the result. All RunTrace semantics (streaming, validation,
// no memoization) hold; the Result is identical to RunTrace's.
func (r *Runner) RunTraceSeries(name string, rd io.Reader, designName string, ratio16, mlp int) (res sim.Result, ser *telemetry.Series, err error) {
	spec, err := design.Parse(designName)
	if err != nil {
		return sim.Result{}, nil, err
	}
	if mlp < 1 {
		return sim.Result{}, nil, fmt.Errorf("exp: trace %s: mlp must be >= 1, got %d", name, mlp)
	}
	sr, err := trace.NewStreamReader(rd, config.Cores, r.TraceWindow)
	if err != nil {
		return sim.Result{}, nil, err
	}
	if err := sr.Prime(); err != nil {
		return sim.Result{}, nil, err
	}
	if sr.Records() == 0 {
		return sim.Result{}, nil, fmt.Errorf("exp: trace %s: no records", name)
	}
	srcs := make([]sim.Source, config.Cores)
	for i := range srcs {
		srcs[i] = sr.Source(i)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: trace run %s/%s: %v", name, designName, p)
		}
	}()
	sys := r.system(ratio16)
	ms, nm, fm, err := spec.Build(sys)
	if err != nil {
		return sim.Result{}, nil, err
	}
	smp := r.Telemetry.sampler(0)
	r.SimCounter.Inc()
	res = sim.RunSourcesSampled(name, srcs, mlp, ms, nm, fm, sys, smp)
	if serr := sr.Err(); serr != nil {
		return sim.Result{}, nil, serr
	}
	ser = smp.Series()
	if r.Telemetry != nil && r.Telemetry.OnSeries != nil {
		r.Telemetry.OnSeries(0, ser)
	}
	return res, ser, nil
}
