package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/config"
	"hybridmem/internal/exp"
	"hybridmem/internal/obs"
	"hybridmem/internal/store"
	"hybridmem/internal/workload"
)

// maxRPCBytes bounds cluster RPC bodies: shard requests and responses
// are small structured documents, so anything larger is garbage or
// abuse, not work.
const maxRPCBytes = 16 << 20

// Exec executes shards in-process — the execution core shared by real
// runner nodes, the loopback transport and the coordinator's local
// fallback. Every shard gets a fresh exp.Runner configured from the
// request, so outcomes are the pure deterministic simulation function
// of (config, run) with no cross-shard state.
type Exec struct {
	// Parallelism bounds concurrent simulations per shard; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Store, when non-nil, lets the per-shard runners reuse previously
	// simulated run results from its disk tier and persist new ones, so
	// a runner node answers repeated shards without re-simulating.
	Store *store.Store
	// SimCounter, when non-nil, counts actual engine executions (store
	// and memo hits excluded).
	SimCounter *obs.Counter
	// Obs, when non-nil, hooks shard execution into the observability
	// plane: the simulate phase lands in its registry's phase histogram
	// and traced shards record their spans into its flight recorder.
	Obs *obs.Obs
}

// RunShard executes one shard request and returns outcomes in run
// order. Per-run failures (unknown workload, invalid config, malformed
// design, simulation error) ride the outcome Err slots; only version
// mismatch and cancellation fail the call itself.
func (e Exec) RunShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	if err := checkVersions(req.Proto, req.Schema, req.Engine); err != nil {
		return ShardResponse{}, err
	}
	runner := &exp.Runner{
		Scale:        req.Config.Scale,
		InstrPerCore: req.Config.InstrPerCore,
		Seed:         req.Config.Seed,
		Parallelism:  e.Parallelism,
		Store:        e.Store,
		SimCounter:   e.SimCounter,
	}
	// A traced request gets a per-shard recorder: the remote span tree
	// lands there, is folded into this node's own flight recorder, and
	// is echoed in the response for the coordinator's timeline. An
	// untraced request allocates none of this and the response carries
	// no Events — wire bytes identical to a pre-tracing node.
	var rec *obs.FlightRecorder
	var sp *obs.Span
	if req.Trace != nil {
		rec = obs.NewFlightRecorder(16)
		sp = obs.NewTracer(rec).StartRemote(req.Trace.TraceID, req.Trace.SpanID, "runner_shard",
			obs.Int("shard", int64(req.Shard)), obs.Int("runs", int64(len(req.Runs))))
	}
	resp := ShardResponse{Proto: ProtoVersion, Shard: req.Shard, Runs: make([]RunOutcome, len(req.Runs))}
	specs := make([]exp.RunSpec, len(req.Runs))
	skip := make([]bool, len(req.Runs))
	for i, run := range req.Runs {
		if err := config.ValidateRun(req.Config.Scale, run.Ratio16, req.Config.InstrPerCore); err != nil {
			resp.Runs[i].Err = fmt.Sprintf("cluster: run %s/%s: %v", run.Design, run.Workload, err)
			skip[i] = true
			continue
		}
		wl, ok := workload.ByName(run.Workload)
		if !ok {
			resp.Runs[i].Err = fmt.Sprintf("exp: unknown workload %q", run.Workload)
			skip[i] = true
			continue
		}
		specs[i] = exp.RunSpec{Workload: wl, Design: run.Design, Ratio16: run.Ratio16}
	}
	// Only well-formed runs are simulated; their outcomes map back to
	// the original slots through liveIdx.
	live := make([]exp.RunSpec, 0, len(specs))
	liveIdx := make([]int, 0, len(specs))
	for i, sp := range specs {
		if !skip[i] {
			live = append(live, sp)
			liveIdx = append(liveIdx, i)
		}
	}
	simStart := time.Now()
	results, errs := runner.ResultsParallelEach(ctx, live)
	obs.PhaseHist(e.Obs.Registry()).With("simulate").ObserveDuration(time.Since(simStart))
	if err := ctx.Err(); err != nil {
		return ShardResponse{}, err
	}
	for j, i := range liveIdx {
		if errs[j] != nil {
			resp.Runs[i].Err = errs[j].Error()
			continue
		}
		r := results[j]
		resp.Runs[i] = RunOutcome{
			Result:       api.FromSim(r),
			NMWriteBytes: r.Mem.NMWriteBytes,
			FMWriteBytes: r.Mem.FMWriteBytes,
		}
	}
	if sp != nil {
		sp.End()
		resp.Events = rec.Snapshot()
		e.Obs.Flight().RecordAll(resp.Events)
	}
	return resp, nil
}

// NodeOptions configures a runner node (see ServeNode).
type NodeOptions struct {
	// Addr is the listen address (host:port); empty means 127.0.0.1:0.
	Addr string
	// Join is the coordinator's base URL (e.g. http://host:8080). The
	// node keeps (re)joining it for as long as it runs.
	Join string
	// Advertise is the URL base the coordinator dials back for shard
	// RPCs; empty derives http://<listen address>.
	Advertise string
	// ID names this runner to the coordinator; empty derives it from the
	// listen address.
	ID string
	// Parallelism bounds concurrent simulations per shard; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// StoreDir, when non-empty, gives this runner a persistent result
	// store: run results land in the directory's disk tier and repeated
	// shard work — including work re-dispatched after the node rejoins —
	// is answered from it without re-simulating.
	StoreDir string
	// StoreMaxBytes bounds the on-disk store; <= 0 means unbounded.
	StoreMaxBytes int64
	// Log receives structured operational log records; nil discards
	// them.
	Log *slog.Logger
	// Obs, when non-nil, gives the node its own observability plane:
	// /metrics renders its registry (simulation and shard counters, the
	// store tiers, phase timings), /debug/events dumps its flight
	// recorder, and traced shard RPCs record spans into it. nil keeps
	// the node fully passive; /metrics and /debug/events then serve
	// empty documents.
	Obs *obs.Obs
	// OnListen, when non-nil, is called with the bound listen address
	// before serving starts — how tests and callers learn a :0 port.
	OnListen func(addr string)
}

// node is one running runner process.
type node struct {
	opts   NodeOptions
	exec   Exec
	client *http.Client
	sims   obs.Counter
	shards obs.Counter

	mu       sync.Mutex
	attached bool
}

// registerMetrics publishes the node's own counters — simulations,
// shards served, and its store tiers when it has one — on its registry.
func (n *node) registerMetrics() {
	r := n.opts.Obs.Registry()
	if r == nil {
		return
	}
	r.RegisterCounter("hybridmem_sims_total", "Simulations actually executed (store and memo hits excluded).", &n.sims)
	r.RegisterCounter("hybridmem_cluster_node_shards_total", "Shard RPCs this node answered successfully.", &n.shards)
	if st := n.exec.Store; st != nil {
		stat := func(f func(store.Stats) float64) func() float64 {
			return func() float64 { return f(st.Stats()) }
		}
		r.CounterFunc("hybridmem_store_disk_hits_total", "Disk-tier store hits.",
			stat(func(s store.Stats) float64 { return float64(s.DiskHits) }))
		r.CounterFunc("hybridmem_store_disk_misses_total", "Disk-tier store misses.",
			stat(func(s store.Stats) float64 { return float64(s.DiskMisses) }))
		r.CounterFunc("hybridmem_store_disk_evictions_total", "Disk-tier entries evicted by the size bound.",
			stat(func(s store.Stats) float64 { return float64(s.DiskEvictions) }))
		r.CounterFunc("hybridmem_store_corrupt_discarded_total", "Disk-tier entries discarded on integrity-check failure.",
			stat(func(s store.Stats) float64 { return float64(s.DiskCorrupt) }))
	}
}

// ServeNode runs a runner node until ctx is canceled: it listens for
// shard RPCs, joins the coordinator at opts.Join, and heartbeats at the
// coordinator's advertised cadence, rejoining whenever the coordinator
// restarts or expires the registration. Returns nil on clean shutdown.
func ServeNode(ctx context.Context, opts NodeOptions) error {
	if opts.Join == "" {
		return errors.New("cluster: runner needs a coordinator URL to join")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	if opts.Advertise == "" {
		opts.Advertise = "http://" + ln.Addr().String()
	}
	if opts.ID == "" {
		opts.ID = "runner-" + ln.Addr().String()
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	exec := Exec{Parallelism: opts.Parallelism, Obs: opts.Obs}
	if opts.StoreDir != "" {
		st, err := store.Open(store.Options{Dir: opts.StoreDir, MaxBytes: opts.StoreMaxBytes})
		if err != nil {
			ln.Close()
			return fmt.Errorf("cluster: runner store: %w", err)
		}
		exec.Store = st
	}
	n := &node{
		opts:   opts,
		exec:   exec,
		client: &http.Client{Timeout: 10 * time.Second},
	}
	n.exec.SimCounter = &n.sims
	n.registerMetrics()
	srv := &http.Server{Handler: n.mux(), BaseContext: func(net.Listener) context.Context { return ctx }}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	go n.attachLoop(ctx)
	opts.Log.Info("cluster: runner listening", "runner", opts.ID, "addr", ln.Addr().String(), "join", opts.Join)
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}

func (n *node) setAttached(v bool) {
	n.mu.Lock()
	n.attached = v
	n.mu.Unlock()
}

func (n *node) isAttached() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attached
}

// mux serves the runner's two endpoints: shard execution and health.
func (n *node) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/shard", func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if err := decodeJSON(r.Body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := n.exec.RunShard(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.shards.Inc()
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.opts.Obs.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n.opts.Obs.Flight().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":      "ok",
			"role":        "runner",
			"id":          n.opts.ID,
			"coordinator": n.opts.Join,
			"attached":    n.isAttached(),
		})
	})
	return mux
}

// attachLoop keeps the node registered: join, then heartbeat at the
// advertised cadence; any heartbeat failure drops back to joining.
func (n *node) attachLoop(ctx context.Context) {
	const joinRetry = 500 * time.Millisecond
	for ctx.Err() == nil {
		interval, err := n.join(ctx)
		if err != nil {
			n.setAttached(false)
			n.opts.Log.Warn("cluster: join failed", "runner", n.opts.ID, "coordinator", n.opts.Join, "err", err)
			sleepCtx(ctx, joinRetry)
			continue
		}
		n.setAttached(true)
		n.opts.Log.Info("cluster: runner attached", "runner", n.opts.ID, "coordinator", n.opts.Join, "heartbeat", interval)
		for ctx.Err() == nil {
			sleepCtx(ctx, interval)
			if ctx.Err() != nil {
				break
			}
			if err := n.heartbeat(ctx); err != nil {
				n.setAttached(false)
				n.opts.Log.Warn("cluster: heartbeat failed, rejoining", "runner", n.opts.ID, "err", err)
				break
			}
		}
	}
}

// join registers with the coordinator and returns the heartbeat cadence.
func (n *node) join(ctx context.Context) (time.Duration, error) {
	req := joinRequest{
		Proto:  ProtoVersion,
		Schema: api.SchemaVersion,
		Engine: api.EngineVersion,
		ID:     n.opts.ID,
		Addr:   n.opts.Advertise,
	}
	var resp joinResponse
	if err := n.post(ctx, n.opts.Join+"/cluster/v1/join", req, &resp); err != nil {
		return 0, err
	}
	if !resp.OK || resp.HeartbeatMillis <= 0 {
		return 0, fmt.Errorf("cluster: coordinator rejected join")
	}
	return time.Duration(resp.HeartbeatMillis) * time.Millisecond, nil
}

func (n *node) heartbeat(ctx context.Context) error {
	var ack struct {
		OK bool `json:"ok"`
	}
	if err := n.post(ctx, n.opts.Join+"/cluster/v1/heartbeat", heartbeatRequest{ID: n.opts.ID}, &ack); err != nil {
		return err
	}
	if !ack.OK {
		return errors.New("cluster: registration expired")
	}
	return nil
}

// post sends one JSON request and decodes the JSON response.
func (n *node) post(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return decodeJSON(resp.Body, out)
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// decodeJSON strictly decodes one bounded JSON document.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxRPCBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
