// Package cpu implements the interval-based out-of-order core model used
// by the paper's evaluation (Genbrugge et al., "Interval simulation"):
// non-memory instructions retire at the issue width, LLC hits add their
// fixed latency, and LLC misses overlap up to the core's memory-level
// parallelism before the core stalls on the oldest outstanding miss.
package cpu

import "hybridmem/internal/memtypes"

// Core models one out-of-order core. The zero value is not usable; use New.
type Core struct {
	// Time is the core's current cycle; it only moves forward.
	Time memtypes.Tick
	// Instructions retired so far.
	Instructions uint64

	issueWidth  int
	computeRem  uint64 // sub-cycle remainder of compute work
	outstanding []memtypes.Tick
	writeBuf    []memtypes.Tick
}

// New creates a core with the given issue width and maximum number of
// overlapping outstanding misses (MSHRs / effective MLP).
func New(issueWidth, mlp int) *Core {
	if issueWidth < 1 {
		issueWidth = 1
	}
	if mlp < 1 {
		mlp = 1
	}
	return &Core{
		issueWidth:  issueWidth,
		outstanding: make([]memtypes.Tick, mlp),
		writeBuf:    make([]memtypes.Tick, 16),
	}
}

// AdvanceCompute retires gap non-memory instructions at the issue width.
func (c *Core) AdvanceCompute(gap uint64) {
	c.Instructions += gap
	work := gap + c.computeRem
	c.Time += memtypes.Tick(work / uint64(c.issueWidth))
	c.computeRem = work % uint64(c.issueWidth)
}

// RetireMemOp accounts one memory instruction (the access itself).
func (c *Core) RetireMemOp() { c.Instructions++ }

// AddLatency applies a fully exposed latency (e.g. an LLC hit).
func (c *Core) AddLatency(cycles memtypes.Tick) { c.Time += cycles }

// StallForMiss reserves an MSHR for a miss completing at done. If all
// MSHRs hold younger completions, the core first stalls until the oldest
// one resolves. This exposes miss latency once MLP is exhausted while
// letting up to len(outstanding) misses overlap.
func (c *Core) StallForMiss(done memtypes.Tick) {
	oldest := 0
	for i, t := range c.outstanding {
		if t < c.outstanding[oldest] {
			oldest = i
		}
	}
	if wait := c.outstanding[oldest]; wait > c.Time {
		c.Time = wait
	}
	c.outstanding[oldest] = done
}

// StallForWrite reserves a write-buffer entry for a store or write-back
// completing at done. Stores normally retire without stalling, but a full
// write buffer applies backpressure — without it, write traffic would
// queue without bound at the memory devices.
func (c *Core) StallForWrite(done memtypes.Tick) {
	oldest := 0
	for i, t := range c.writeBuf {
		if t < c.writeBuf[oldest] {
			oldest = i
		}
	}
	if wait := c.writeBuf[oldest]; wait > c.Time {
		c.Time = wait
	}
	c.writeBuf[oldest] = done
}

// DrainMisses stalls until every outstanding miss has completed. Called at
// stream end so the final cycle count covers all issued work.
func (c *Core) DrainMisses() {
	for _, t := range c.outstanding {
		if t > c.Time {
			c.Time = t
		}
	}
}

// MLP returns the core's outstanding-miss capacity.
func (c *Core) MLP() int { return len(c.outstanding) }
