// Command metriclint validates Prometheus text exposition scrapes.
// It applies the pure-Go lint of internal/obs — every sample must
// belong to a family declared with # HELP and # TYPE, family names
// must be unique and their samples contiguous, label values correctly
// escaped, values finite — and, when given more than one scrape of the
// same target, checks the counter contract across consecutive pairs:
// no counter (or summary _sum/_count) series may decrease.
//
// Usage:
//
//	metriclint scrape.txt                 # lint one exposition document
//	metriclint scrape1.txt scrape2.txt    # lint both + monotonicity 1->2
//	curl -s $addr/metrics | metriclint -  # read a single scrape from stdin
//
// CI scrapes a live server's /metrics twice mid-sweep and feeds the
// pair through this command, so a malformed family or a counter that
// ever runs backwards fails the build.
package main

import (
	"fmt"
	"io"
	"os"

	"hybridmem/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metriclint <scrape.txt|-> [scrape2.txt ...]")
		os.Exit(2)
	}
	var prev []byte
	var prevName string
	for i, name := range os.Args[1:] {
		data, err := readScrape(name)
		if err != nil {
			fatal(err)
		}
		if err := obs.Lint(data); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if i > 0 {
			if err := obs.LintMonotonic(prev, data); err != nil {
				fatal(fmt.Errorf("%s -> %s: %w", prevName, name, err))
			}
		}
		prev, prevName = data, name
	}
	fmt.Printf("metriclint: %d scrape(s) ok\n", len(os.Args)-1)
}

func readScrape(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metriclint:", err)
	os.Exit(1)
}
