package cluster

import (
	"fmt"

	"hybridmem/internal/api"
	"hybridmem/internal/obs"
)

// ProtoVersion identifies the cluster RPC layout below. Every request
// carries it alongside the api schema and engine versions, and a
// coordinator/runner pair disagreeing on any of the three refuses to
// exchange work: a version-skewed node computing results under different
// engine semantics would silently break the byte-identity guarantee.
const ProtoVersion = 1

// Config is the per-shard simulation configuration shared by every run
// of a batch. The NM:FM ratio is per-run (sweeps mix ratios; DSE
// candidates each carry their own), so it lives on Run, not here.
type Config struct {
	Scale        int    `json:"scale"`
	InstrPerCore uint64 `json:"instr_per_core"`
	Seed         uint64 `json:"seed"`
}

// Run identifies one simulation of a shard: a registered design name, a
// workload name, and the NM:FM capacity ratio in sixteenths.
type Run struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Ratio16  int    `json:"ratio16"`
}

// ShardRequest is one unit of dispatched work: a contiguous slice of a
// batch's runs, executed independently by any runner.
type ShardRequest struct {
	Proto  int    `json:"proto"`
	Schema int    `json:"schema"`
	Engine int    `json:"engine"`
	Shard  int    `json:"shard"`
	Config Config `json:"config"`
	Runs   []Run  `json:"runs"`
	// Trace carries the dispatching shard span's identity when the
	// coordinator traces; absent (and ignored by pre-tracing nodes,
	// which decode leniently) otherwise. It never affects outcomes —
	// only the runner's span linkage.
	Trace *api.Trace `json:"trace,omitempty"`
}

// RunOutcome is the result of one run of a shard. Result is the
// canonical wire form (exactly what api.FromSim produces locally, so
// documents assembled from outcomes are byte-identical to local runs);
// the raw write-byte counters ride alongside because the DSE objective
// needs them and they are not recoverable from the derived traffic
// fields. A failed run has a zero Result and a non-empty Err.
type RunOutcome struct {
	Result       api.Result `json:"result"`
	NMWriteBytes uint64     `json:"nm_write_bytes"`
	FMWriteBytes uint64     `json:"fm_write_bytes"`
	Err          string     `json:"error,omitempty"`
}

// ShardResponse carries a shard's outcomes back, in the request's run
// order.
type ShardResponse struct {
	Proto int          `json:"proto"`
	Shard int          `json:"shard"`
	Runs  []RunOutcome `json:"runs"`
	// Events echoes the runner-side span events of this shard when the
	// request carried a Trace, so the coordinator can fold them into
	// one distributed timeline; absent otherwise.
	Events []obs.Event `json:"events,omitempty"`
}

// joinRequest registers a runner with the coordinator. Addr is the URL
// base the coordinator dials back for shard RPCs.
type joinRequest struct {
	Proto  int    `json:"proto"`
	Schema int    `json:"schema"`
	Engine int    `json:"engine"`
	ID     string `json:"id"`
	Addr   string `json:"addr"`
}

// joinResponse acknowledges a registration and tells the runner how
// often to heartbeat.
type joinResponse struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// heartbeatRequest keeps a registration live.
type heartbeatRequest struct {
	ID string `json:"id"`
}

// checkVersions rejects cross-version work exchange.
func checkVersions(proto, schema, engine int) error {
	if proto != ProtoVersion || schema != api.SchemaVersion || engine != api.EngineVersion {
		return fmt.Errorf("cluster: version mismatch: peer speaks proto=%d schema=%d engine=%d, this node proto=%d schema=%d engine=%d",
			proto, schema, engine, ProtoVersion, api.SchemaVersion, api.EngineVersion)
	}
	return nil
}
