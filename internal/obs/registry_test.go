package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Jobs queued.")
	g.Set(7)
	v := r.CounterVec("test_jobs_total", "Jobs by state.", "state")
	v.With("done").Add(2)
	v.With("failed").Inc()
	h := r.Histogram("test_latency_us", "Latency.")
	h.Observe(100)
	h.Observe(200)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	r.GaugeSamplesFunc("test_runner_inflight", "Per-runner in-flight.", []string{"runner"}, func() []Sample {
		return []Sample{{Labels: []string{"r2"}, Value: 1}, {Labels: []string{"r1"}, Value: 4}}
	})

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n# TYPE test_requests_total counter\ntest_requests_total 3\n",
		"# TYPE test_queue_depth gauge\ntest_queue_depth 7\n",
		"test_jobs_total{state=\"done\"} 2\n",
		"test_jobs_total{state=\"failed\"} 1\n",
		"# TYPE test_latency_us summary\n",
		"test_latency_us{quantile=\"0.5\"} ",
		"test_latency_us_sum 300\n",
		"test_latency_us_count 2\n",
		"test_uptime_seconds 1.5\n",
		// samples of func-backed families are sorted by label value
		"test_runner_inflight{runner=\"r1\"} 4\ntest_runner_inflight{runner=\"r2\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("rendered exposition fails its own lint: %v", err)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z.").Inc()
	r.Counter("aaa_total", "a.").Inc()
	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if out != render(t, r) {
		t.Fatal("two renders of an unchanged registry differ")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Escapes.", "path").With("a\"b\\c\nd").Inc()
	out := render(t, r)
	want := `test_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped label missing, want %q in:\n%s", want, out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("lint rejects escaped labels: %v", err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("test_shared_total", "Shared.", "k")
	b := r.CounterVec("test_shared_total", "Shared (other help).", "k")
	a.With("x").Add(2)
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 3 {
		t.Fatalf("shared family children diverged: got %d, want 3", got)
	}
	h1 := PhaseHist(r)
	h2 := PhaseHist(r)
	h1.With("simulate").Observe(1)
	h2.With("simulate").Observe(1)
	out := render(t, r)
	if !strings.Contains(out, `hybridmem_phase_duration_us_count{phase="simulate"} 2`) {
		t.Fatalf("phase family not shared:\n%s", out)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "c.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "g.")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "x.")
}

// TestNilRegistryZeroAllocs pins the disabled-observability contract: a
// nil registry hands out nil handles whose operations neither allocate
// nor crash — the sim hot path can carry them unconditionally.
func TestNilRegistryZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x.")
	g := r.Gauge("x", "x.")
	h := r.Histogram("x_us", "x.")
	cv := r.CounterVec("xv_total", "x.", "k")
	hv := r.HistogramVec("xv_us", "x.", "k")
	r.GaugeFunc("xf", "x.", func() float64 { return 0 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(5)
		h.ObserveDuration(time.Microsecond)
		cv.With("a").Inc()
		hv.With("a").Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocate: %v allocs/op, want 0", allocs)
	}
}

// TestEnabledCounterZeroAllocs pins that live counter/gauge updates are
// allocation-free too — they sit on serving hot paths.
func TestEnabledCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "x.")
	g := r.Gauge("hot", "x.")
	h := r.Histogram("hot_us", "x.")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled counter/gauge/histogram updates allocate: %v allocs/op, want 0", allocs)
	}
}

func TestRegistryMonotonicAcrossRenders(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x.")
	c.Add(5)
	first := render(t, r)
	c.Add(2)
	second := render(t, r)
	if err := LintMonotonic([]byte(first), []byte(second)); err != nil {
		t.Fatalf("monotonic counters flagged: %v", err)
	}
	if err := LintMonotonic([]byte(second), []byte(first)); err == nil {
		t.Fatal("decreasing counter not flagged")
	}
}
