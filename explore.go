package hybridmem

import (
	"context"
	"fmt"

	"hybridmem/internal/api"
	"hybridmem/internal/cluster"
	"hybridmem/internal/dse"
	"hybridmem/internal/store"
)

// ExploreOptions configures a design-space exploration. The zero value
// of every field has a usable default; Config's zero value means
// DefaultConfig with a 200k-instruction budget per run (explorations
// evaluate many candidates, so individual runs are kept short).
type ExploreOptions struct {
	// Families selects the design families to search by base name (see
	// AllDesigns); nil means every registered family except the
	// baseline. Parameterized families contribute their enumerated
	// design space, parameterless ones a single candidate.
	Families []string
	// Workloads selects the evaluation workloads by name; nil means all
	// 30 built-in benchmarks. Candidates are scored on geometric-mean
	// behaviour across the set.
	Workloads []string
	// Budget bounds candidate evaluations; the search stops at the
	// first batch boundary at or past it. <= 0 explores the whole
	// enumerated space.
	Budget int
	// BatchSize is the number of candidates evaluated — and
	// checkpointed — per batch; <= 0 means 8.
	BatchSize int
	// Seed drives the search's random sampling (the simulation seed
	// lives in Config); same seed, same search. 0 means 1.
	Seed uint64
	// Config configures the underlying simulations; its zero value
	// means DefaultConfig with InstrPerCore 200_000.
	Config Config
	// ScreenInstrPerCore, when non-zero, enables multi-fidelity search:
	// candidates are first screened at this truncated per-core
	// instruction budget, and only the screening Pareto frontier plus
	// its screened feasible ladder neighbors are promoted to
	// full-fidelity evaluation against Budget. Screening runs are cheap,
	// so the search covers several times more of the space for the same
	// total simulated instructions. Requires a positive Budget.
	ScreenInstrPerCore uint64
	// ScreenBudget bounds screening evaluations; <= 0 means 4x Budget.
	// Only meaningful with ScreenInstrPerCore set.
	ScreenBudget int
	// Parallelism bounds concurrently evaluated runs; <= 0 means
	// GOMAXPROCS. It does not affect results.
	Parallelism int
	// LoopbackRunners, when positive, evaluates candidates through the
	// distributed execution plane with that many in-process runners:
	// batches are sharded, dispatched with bounded in-flight per runner,
	// and work-stolen exactly as across real cluster nodes (see
	// internal/cluster), while all search state stays local. It does not
	// affect results — a distributed exploration is byte-identical to a
	// single-process one.
	LoopbackRunners int
	// StoreDir, when non-empty, backs every candidate evaluation with a
	// persistent result store: run results land in the directory's disk
	// tier and re-evaluations of work the store has seen — including
	// across separate explorations and processes — are served from it
	// without re-simulating. It never changes results; entries are keyed
	// by the engine and schema versions, so a version bump invalidates
	// the directory instead of serving stale results.
	StoreDir string
	// StoreMaxBytes bounds the disk store; <= 0 means unbounded.
	StoreMaxBytes int64
	// MaxPerParam caps the candidate values enumerated per integer
	// parameter (wide ranges subsample on a geometric ladder); <= 0
	// means 12.
	MaxPerParam int
	// UnboundedMax substitutes an upper bound for parameters declared
	// unbounded above; without one, such a parameter refuses to
	// enumerate (an accidental infinite space fails loudly). Every
	// built-in family is bounded, so this matters only for externally
	// registered designs.
	UnboundedMax int
	// Checkpoint names a JSON state file rewritten atomically after
	// every batch; empty disables checkpointing. Resume continues from
	// an existing checkpoint: a search interrupted at any batch
	// boundary and resumed produces results byte-identical to an
	// uninterrupted run.
	Checkpoint string
	Resume     bool
	// MaxBatches pauses the search after that many batches in this
	// call (checkpoint permitting resumption later); <= 0 runs to
	// completion.
	MaxBatches int
	// Progress, when non-nil, streams search progress: it is called
	// after every merged batch and once more on completion.
	Progress func(ExploreProgress)
}

// ExploreProgress is one streaming progress report of an exploration.
type ExploreProgress struct {
	// Batch counts completed batches; Evaluated counts evaluated
	// candidates against Budget and SpaceSize; FrontierSize is the
	// current Pareto set size. Done marks the final report.
	Batch        int
	Evaluated    int
	Budget       int
	SpaceSize    int
	FrontierSize int
	// Screened counts screening-fidelity evaluations of a multi-fidelity
	// exploration; zero when screening is disabled.
	Screened int
	Done     bool
}

// ExplorePoint is one evaluated candidate design of an exploration.
type ExplorePoint struct {
	Design string `json:"design"`
	// Speedup is the geometric-mean speedup over the no-NM baseline
	// across the evaluated workloads (maximized by the search).
	Speedup float64 `json:"speedup"`
	// CapacityMB is the paper-scale DRAM capacity the design spends:
	// its cacheMB parameter when the family has one, the full near
	// memory otherwise (minimized).
	CapacityMB float64 `json:"capacity_mb"`
	// TrafficGB is the mean write traffic per run — all NM and FM
	// write bytes combined, including demand writes, fills, migrations,
	// writebacks and metadata — in GB (minimized).
	TrafficGB float64 `json:"traffic_gb"`
	// Infeasible marks a candidate that failed to build or run at the
	// simulated scale; Err carries the reason.
	Infeasible bool   `json:"infeasible,omitempty"`
	Err        string `json:"error,omitempty"`
}

// ExploreResult is the outcome of an exploration.
type ExploreResult struct {
	// Frontier is the Pareto-optimal subset of the evaluated feasible
	// candidates — no member is at least matched on every objective and
	// beaten on one by another — ordered by ascending capacity.
	Frontier []ExplorePoint `json:"frontier"`
	// Evaluated lists every evaluated candidate in evaluation order.
	Evaluated []ExplorePoint `json:"evaluated"`
	// Screened lists the screening-fidelity evaluations of a
	// multi-fidelity exploration in evaluation order; empty when
	// screening is disabled. Screened objectives are measured at
	// ScreenInstrPerCore and are not comparable to Evaluated's.
	Screened []ExplorePoint `json:"screened,omitempty"`
	// SpaceSize is the enumerated candidate-space size; Batches the
	// number of batches run (including checkpointed ones on resume).
	SpaceSize int `json:"space_size"`
	Batches   int `json:"batches"`
	// Resumed reports whether the search continued from a checkpoint;
	// Complete whether it reached its natural end rather than pausing
	// at MaxBatches. Both are excluded from the JSON form, which is
	// identical for interrupted-and-resumed and uninterrupted runs.
	Resumed  bool `json:"-"`
	Complete bool `json:"-"`

	// wire is the canonical versioned document of this exploration,
	// captured from the search engine's single wire mapping.
	wire []byte
}

// WireJSON returns the exploration as the canonical versioned JSON
// document (the internal/api schema, with a top-level "schema" field) —
// the exact bytes the hybridmemd server serves for an identical
// exploration, produced by the same mapping. It is only available on
// results returned by Explore.
func (r ExploreResult) WireJSON() ([]byte, error) {
	if r.wire == nil {
		return nil, fmt.Errorf("hybridmem: WireJSON is only available on results returned by Explore")
	}
	return r.wire, nil
}

// Explore searches the registered design space for Pareto-optimal
// memory organizations — the H2DSE exploration the paper's Figure 11 is
// built from, generalized over every registered family. Candidates are
// enumerated from the families' parameter grammars (exhaustively when
// the space fits the budget; by seeded random sampling plus
// hill-climbing on the frontier's neighborhoods otherwise), evaluated
// concurrently on the selected workloads, and folded into a Pareto
// frontier over speedup, DRAM capacity and memory write traffic.
//
// The search is deterministic for a given options set and seed, at any
// parallelism. With a Checkpoint configured, state is flushed after
// every batch and a canceled or paused search resumes exactly where it
// stopped. On cancellation Explore returns the partial result alongside
// ctx.Err().
func Explore(ctx context.Context, opts ExploreOptions) (ExploreResult, error) {
	cfg := opts.Config
	if cfg == (Config{}) {
		cfg = DefaultConfig()
		cfg.InstrPerCore = 200_000
	}
	if err := cfg.Validate(); err != nil {
		return ExploreResult{}, err
	}
	var progress func(dse.Event)
	if opts.Progress != nil {
		progress = func(e dse.Event) {
			opts.Progress(ExploreProgress{
				Batch:        e.Round,
				Evaluated:    e.Evaluated,
				Budget:       e.Budget,
				SpaceSize:    e.SpaceSize,
				FrontierSize: e.FrontierSize,
				Screened:     e.Screened,
				Done:         e.Done,
			})
		}
	}
	var st *store.Store
	if opts.StoreDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: opts.StoreDir, MaxBytes: opts.StoreMaxBytes})
		if err != nil {
			return ExploreResult{}, fmt.Errorf("hybridmem: %w", err)
		}
	}
	var eval dse.Evaluator
	if opts.LoopbackRunners > 0 {
		coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
			LocalParallelism: opts.Parallelism,
			Store:            st,
		})
		coord.AttachLoopback(opts.LoopbackRunners, opts.Parallelism)
		eval = coord.Evaluator()
	}
	res, err := dse.Search(ctx, dse.Options{
		Families:           opts.Families,
		Workloads:          opts.Workloads,
		Budget:             opts.Budget,
		BatchSize:          opts.BatchSize,
		MaxRounds:          opts.MaxBatches,
		Seed:               opts.Seed,
		Scale:              cfg.Scale,
		InstrPerCore:       cfg.InstrPerCore,
		SimSeed:            cfg.Seed,
		Ratio16:            cfg.NMRatio16,
		ScreenInstrPerCore: opts.ScreenInstrPerCore,
		ScreenBudget:       opts.ScreenBudget,
		Parallelism:        opts.Parallelism,
		MaxPerParam:        opts.MaxPerParam,
		UnboundedMax:       opts.UnboundedMax,
		Checkpoint:         opts.Checkpoint,
		Resume:             opts.Resume,
		Progress:           progress,
		Eval:               eval,
		Store:              st,
	})
	out := ExploreResult{
		Frontier:  fromPoints(res.Frontier),
		Evaluated: fromPoints(res.Evaluated),
		Screened:  fromPoints(res.Screened),
		SpaceSize: res.SpaceSize,
		Batches:   res.Rounds,
		Resumed:   res.Resumed,
		Complete:  res.Complete,
	}
	if wire, werr := api.Encode(res.APIDoc()); werr == nil {
		out.wire = wire
	}
	if err != nil {
		return out, fmt.Errorf("hybridmem: %w", err)
	}
	return out, nil
}

// fromPoints converts internal search points to the public form.
func fromPoints(pts []dse.Point) []ExplorePoint {
	out := make([]ExplorePoint, len(pts))
	for i, p := range pts {
		out[i] = ExplorePoint{
			Design:     p.Design,
			Speedup:    p.Speedup,
			CapacityMB: p.CapacityMB,
			TrafficGB:  p.TrafficGB,
			Infeasible: p.Infeasible,
			Err:        p.Err,
		}
	}
	return out
}
