// Package cachesim provides the set-associative write-back SRAM cache used
// as the shared last-level cache in front of the hybrid memory system
// (Table 1: 8 MB, 16-way, 14-cycle access, non-inclusive non-exclusive).
package cachesim

import (
	"math/bits"

	"hybridmem/internal/memtypes"
)

// Victim describes a line evicted by an allocation.
type Victim struct {
	Addr  memtypes.Addr // base address of the evicted line
	Dirty bool
}

// Cache is a single-level set-associative cache with true-LRU replacement
// and write-allocate/write-back policy. It is a functional model: timing
// is the caller's concern (the driver adds the fixed access latency).
//
// State is laid out struct-of-arrays: per-way tags and LRU stamps in flat
// slices plus one valid/dirty bitmask word per set, so a lookup touches a
// couple of cache lines instead of a line per way.
type Cache struct {
	tags      []uint64 // sets*assoc, indexed set*assoc+way
	lrus      []uint64 // sets*assoc, last-touch clock per way
	valid     []uint64 // per-set bitmask of valid ways
	dirty     []uint64 // per-set bitmask of dirty ways
	assoc     int
	sets      int
	lineBytes int
	setShift  uint
	setBits   uint
	setMask   uint64
	fullMask  uint64
	clock     uint64

	Accesses uint64
	Misses   uint64
	Evicts   uint64
}

// New builds a cache of sizeBytes capacity. sizeBytes must be a multiple
// of assoc*lineBytes, the resulting set count must be a power of two, and
// assoc must be at most 64 (one bitmask word per set).
func New(sizeBytes, assoc, lineBytes int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		panic("cachesim: non-positive geometry")
	}
	if assoc > 64 {
		panic("cachesim: associativity above 64 not supported")
	}
	sets := sizeBytes / (assoc * lineBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	if 1<<shift != lineBytes {
		panic("cachesim: line size must be a power of two")
	}
	fullMask := ^uint64(0)
	if assoc < 64 {
		fullMask = 1<<uint(assoc) - 1
	}
	return &Cache{
		tags:      make([]uint64, sets*assoc),
		lrus:      make([]uint64, sets*assoc),
		valid:     make([]uint64, sets),
		dirty:     make([]uint64, sets),
		assoc:     assoc,
		sets:      sets,
		lineBytes: lineBytes,
		setShift:  shift,
		setBits:   uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		fullMask:  fullMask,
	}
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Access looks up addr, allocating on a miss. It returns whether the
// access hit and, on a miss that displaced a valid line, the victim.
func (c *Cache) Access(addr memtypes.Addr, write bool) (hit bool, victim Victim, evicted bool) {
	c.Accesses++
	c.clock++
	blk := uint64(addr) >> c.setShift
	set := int(blk & c.setMask)
	tag := blk >> c.setBits
	base := set * c.assoc
	vm := c.valid[set]
	for m := vm; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if c.tags[base+i] == tag {
			c.lrus[base+i] = c.clock
			if write {
				c.dirty[set] |= 1 << uint(i)
			}
			return true, Victim{}, false
		}
	}

	c.Misses++
	// Victim choice matches the AoS model exactly: the first invalid way
	// when one exists, else the lowest-indexed way with the minimum LRU
	// stamp.
	var idx int
	if vm != c.fullMask {
		idx = bits.TrailingZeros64(^vm)
	} else {
		idx = 0
		for i := 1; i < c.assoc; i++ {
			if c.lrus[base+i] < c.lrus[base+idx] {
				idx = i
			}
		}
		c.Evicts++
		victimBlk := (c.tags[base+idx]<<c.setBits | uint64(set)) << c.setShift
		victim = Victim{Addr: memtypes.Addr(victimBlk), Dirty: c.dirty[set]&(1<<uint(idx)) != 0}
		evicted = true
	}
	c.valid[set] |= 1 << uint(idx)
	c.tags[base+idx] = tag
	if write {
		c.dirty[set] |= 1 << uint(idx)
	} else {
		c.dirty[set] &^= 1 << uint(idx)
	}
	c.lrus[base+idx] = c.clock
	return false, victim, evicted
}

// Contains reports whether addr is currently resident (no LRU update).
func (c *Cache) Contains(addr memtypes.Addr) bool {
	blk := uint64(addr) >> c.setShift
	set := int(blk & c.setMask)
	tag := blk >> c.setBits
	base := set * c.assoc
	for m := c.valid[set]; m != 0; m &= m - 1 {
		if c.tags[base+bits.TrailingZeros64(m)] == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses, 0 when unused.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
