package sim

import (
	"testing"

	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/workload"
)

func sys(instr uint64) config.System {
	s := config.Scaled(16, 1)
	s.InstrPerCore = instr
	return s
}

func TestRunCompletesAllCores(t *testing.T) {
	spec, _ := workload.ByName("xz")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	// 8 cores, ~100 K instructions each.
	if res.Instructions < 8*50_000 || res.Instructions > 8*110_000 {
		t.Fatalf("instructions %d, want ~800K", res.Instructions)
	}
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	run := func() Result {
		fm := memsys.New(memsys.DDR4Config())
		return Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic run:\n%+v\n%+v", a, b)
	}
}

func TestMPKIMeasuredNearPaper(t *testing.T) {
	// The generator is calibrated so baseline MPKI lands near Table 2.
	for _, name := range []string{"lbm", "omnetpp", "namd"} {
		spec, _ := workload.ByName(name)
		fm := memsys.New(memsys.DDR4Config())
		res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(500_000))
		lo, hi := spec.PaperMPKI*0.5, spec.PaperMPKI*2.0+1
		if res.MPKI < lo || res.MPKI > hi {
			t.Fatalf("%s: measured MPKI %.1f outside [%.1f, %.1f]", name, res.MPKI, lo, hi)
		}
	}
}

func TestNMOnlyBeatsFMOnly(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	fm := memsys.New(memsys.DDR4Config())
	resFM := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(200_000))
	nm := memsys.New(memsys.HBM2Config())
	resNM := Run(spec, flat.NewNMOnly(nm), nm, nil, sys(200_000))
	if resNM.Cycles >= resFM.Cycles {
		t.Fatalf("NM-only (%d cycles) not faster than FM-only (%d)", resNM.Cycles, resFM.Cycles)
	}
}

func TestEnergyAccounted(t *testing.T) {
	spec, _ := workload.ByName("xz")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	if res.FMEnergyNJ <= 0 {
		t.Fatal("no FM energy recorded")
	}
	if res.NMEnergyNJ != 0 {
		t.Fatal("NM energy recorded without an NM device")
	}
}

func TestMLPDerivation(t *testing.T) {
	stream, _ := workload.ByName("lbm") // SeqRun 56 -> clamp at 8
	if got := MLPFor(stream); got != 8 {
		t.Fatalf("lbm MLP %d, want 8", got)
	}
	ptr, _ := workload.ByName("deepsjeng") // SeqRun 2 -> 1
	if got := MLPFor(ptr); got != 1 {
		t.Fatalf("deepsjeng MLP %d, want 1", got)
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h latHist
	for i := 1; i <= 1000; i++ {
		h.add(memtypes.Tick(i))
	}
	if h.mean() < 450 || h.mean() > 550 {
		t.Fatalf("mean %.0f, want ~500", h.mean())
	}
	p50 := h.percentile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 bucket bound %d out of plausible range", p50)
	}
	p99 := h.percentile(0.99)
	if p99 < p50 {
		t.Fatal("p99 below p50")
	}
	var empty latHist
	if empty.mean() != 0 || empty.percentile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestPercentileReturnsBucketLowerBound(t *testing.T) {
	// A uniform latency at an exact bucket boundary must report itself,
	// not double: 100 samples of 256 land in bucket [256,512).
	var h latHist
	for i := 0; i < 100; i++ {
		h.add(256)
	}
	if got := h.percentile(0.5); got != 256 {
		t.Fatalf("P50 of uniform 256 = %d, want 256", got)
	}
	if got := h.percentile(0.99); got != 256 {
		t.Fatalf("P99 of uniform 256 = %d, want 256", got)
	}

	// Bucket 0 holds latency 1 and must report 1, not 2.
	var h1 latHist
	h1.add(1)
	if got := h1.percentile(0.5); got != 1 {
		t.Fatalf("P50 of single latency 1 = %d, want 1", got)
	}

	// Non-boundary latencies report their bucket's lower bound: 200 is
	// in [128,256).
	var h2 latHist
	for i := 0; i < 10; i++ {
		h2.add(200)
	}
	if got := h2.percentile(0.5); got != 128 {
		t.Fatalf("P50 of uniform 200 = %d, want bucket lower bound 128", got)
	}

	// Bimodal split: P50 sits at the second mode (target rank 50 is the
	// first sample past the lower half), P99 in the top bucket.
	var hb latHist
	for i := 0; i < 50; i++ {
		hb.add(4)
	}
	for i := 0; i < 50; i++ {
		hb.add(1024)
	}
	if got := hb.percentile(0.49); got != 4 {
		t.Fatalf("P49 of bimodal = %d, want 4", got)
	}
	if got := hb.percentile(0.99); got != 1024 {
		t.Fatalf("P99 of bimodal = %d, want 1024", got)
	}

	// The overflow bucket clamps huge latencies to the top bucket's
	// lower bound instead of overflowing the shift.
	var ho latHist
	ho.add(memtypes.Tick(1) << 50)
	if got := ho.percentile(0.5); got != 1<<39 {
		t.Fatalf("P50 of huge latency = %d, want 1<<39", got)
	}
}

func TestRunReportsLatencyPercentiles(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	if res.LatMean <= 0 || res.LatP50 == 0 || res.LatP99 < res.LatP50 {
		t.Fatalf("latency stats malformed: mean=%.1f p50=%d p99=%d", res.LatMean, res.LatP50, res.LatP99)
	}
}
