// Command hybridmemd is the simulation-as-a-service daemon: a long-lived
// HTTP server multiplexing many clients over the simulation engines,
// with a content-addressed result cache, singleflight deduplication,
// async jobs with SSE progress, and streaming trace upload.
//
// Usage:
//
//	hybridmemd                            # listen on :8080, in-memory
//	hybridmemd -addr 127.0.0.1:9090
//	hybridmemd -state /var/lib/hybridmem  # persist jobs, results, checkpoints
//	hybridmemd -store-dir /var/cache/hybridmem -store-max-bytes 268435456
//	                                      # tiered result store: repeats served
//	                                      # from disk across restarts, GC at 256MB
//
//	hybridmemd -coordinator               # accept runner nodes, shard jobs
//	hybridmemd -runner -join http://coordinator:8080
//
// Endpoints (see internal/serve and the README's Serving section):
//
//	GET  /healthz   GET /metrics   GET /v1/designs   GET /v1/workloads
//	POST /v1/run    POST /v1/sweep POST /v1/explore  POST /v1/replay
//	POST /cluster/v1/join  POST /cluster/v1/heartbeat   (coordinator mode)
//
// In -coordinator mode, sweep and exploration jobs are sharded across
// joined runner nodes with bounded in-flight work per runner,
// work-stealing of straggler shards, and re-dispatch on node loss;
// results are byte-identical to local execution (see internal/cluster).
// With no runners joined, the coordinator executes locally. In -runner
// mode the process serves shard RPCs and /healthz only, joining (and
// rejoining) the coordinator given by -join.
//
// SIGTERM or SIGINT drains gracefully: health flips to 503, new jobs are
// rejected, and in-flight work gets -drain to finish (interrupted
// explorations flush a checkpoint and resume on the next start when
// -state is set). A clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridmem"
)

func main() {
	addr := flag.String("addr", "", "TCP listen address (default :8080 for servers, 127.0.0.1:0 for runners)")
	state := flag.String("state", "", "state directory for job specs, results and exploration checkpoints (empty: in-memory only)")
	cacheEntries := flag.Int("cache-entries", 1024, "result-cache entry bound")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache byte bound, in MB")
	storeDir := flag.String("store-dir", "", "persistent result-store directory: results are served across restarts without re-simulating (empty: memory cache only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "on-disk result-store byte bound, garbage-collecting least-recently-used entries (0: unbounded)")
	queue := flag.Int("queue", 64, "async job queue depth")
	workers := flag.Int("workers", 2, "async job workers")
	parallel := flag.Int("parallel", 0, "simulations evaluated concurrently per job (0: all CPUs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	flightEvents := flag.Int("flight-events", 0, "flight-recorder capacity in trace events, served over /debug/events (0: 4096)")
	sigquitEvents := flag.Bool("sigquit-events", false, "dump the flight recorder to stderr on SIGQUIT instead of the default stack dump (the process keeps running)")

	coordinator := flag.Bool("coordinator", false, "act as a cluster coordinator: shard sweep/exploration jobs across joined runner nodes")
	runner := flag.Bool("runner", false, "act as a cluster runner node: execute shards dispatched by the coordinator at -join")
	join := flag.String("join", "", "coordinator base URL a runner joins (e.g. http://host:8080); required with -runner")
	advertise := flag.String("advertise", "", "URL base the coordinator dials this runner back on (default http://<listen address>)")
	runnerID := flag.String("runner-id", "", "runner name reported to the coordinator (default derived from the listen address)")
	loopback := flag.Int("loopback-runners", 0, "attach N in-process runners to the coordinator (no-network distributed mode; implies -coordinator)")
	shardSize := flag.Int("shard-size", 0, "runs per dispatched shard (0: 8)")
	shardInFlight := flag.Int("shard-inflight", 0, "concurrently dispatched shards per runner (0: 2)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 0, "drop runners whose heartbeat lapsed this long (0: 10s)")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "shard RPC deadline (0: 5m)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = slog.New(slog.DiscardHandler)
	}
	if *runner && (*coordinator || *loopback > 0) {
		fmt.Fprintln(os.Stderr, "hybridmemd: -runner is exclusive with -coordinator/-loopback-runners")
		os.Exit(2)
	}
	if *runner && *join == "" {
		fmt.Fprintln(os.Stderr, "hybridmemd: -runner needs -join <coordinator URL>")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("signal received; draining", "budget", *drain)
		// Restore default signal handling so a second signal kills the
		// process instead of being swallowed while the drain runs.
		stop()
	}()

	var err error
	if *runner {
		err = hybridmem.ServeRunner(ctx, hybridmem.RunnerOptions{
			Addr:          *addr,
			Join:          *join,
			Advertise:     *advertise,
			ID:            *runnerID,
			Parallelism:   *parallel,
			StoreDir:      *storeDir,
			StoreMaxBytes: *storeMaxBytes,
			Log:           logger,
			FlightEvents:  *flightEvents,
			OnListen:      func(addr string) { logger.Info("runner listening", "addr", addr) },
		})
	} else {
		listen := *addr
		if listen == "" {
			listen = ":8080"
		}
		err = hybridmem.Serve(ctx, hybridmem.ServeOptions{
			Addr:                    listen,
			StateDir:                *state,
			CacheEntries:            *cacheEntries,
			CacheBytes:              *cacheMB << 20,
			StoreDir:                *storeDir,
			StoreMaxBytes:           *storeMaxBytes,
			QueueDepth:              *queue,
			Workers:                 *workers,
			Parallelism:             *parallel,
			DrainTimeout:            *drain,
			Log:                     logger,
			FlightEvents:            *flightEvents,
			DumpEventsOnSIGQUIT:     *sigquitEvents,
			OnListen:                func(addr string) { logger.Info("listening", "addr", addr) },
			Coordinator:             *coordinator,
			ClusterLoopbackRunners:  *loopback,
			ClusterShardSize:        *shardSize,
			ClusterMaxInFlight:      *shardInFlight,
			ClusterHeartbeatTimeout: *heartbeatTimeout,
			ClusterRPCTimeout:       *rpcTimeout,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridmemd:", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
