// Package migcommon holds the substrate shared by the flat-address-space
// migration schemes (MemPod, Chameleon, LGM): the sector-granularity
// remap table over NM+FM, its inverted counterpart, the on-chip remap
// cache (sized equal to Hybrid2's XTA for the paper's fair comparison),
// and the swap operation that exchanges an FM sector with an NM victim.
package migcommon

import (
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Loc is the physical location of a logical sector.
type Loc struct {
	NM  bool
	Idx uint32 // slot index within the device's sector array
}

// Space is a flat NM+FM address space with all-to-all sector remapping.
// Logical sector s of the processor physical address space lives at
// Remap[s]; Owner maps physical slots back to logical sectors.
type Space struct {
	SectorBytes int
	NMSectors   uint32
	FMSectors   uint32

	remap   []Loc    // logical sector -> physical
	nmOwner []uint32 // NM slot -> logical sector
	fmOwner []uint32 // FM slot -> logical sector

	nm, fm *memsys.Device
	stats  *memtypes.MemStats

	// remapTableBase addresses the in-NM remap table for metadata traffic.
	remapTableBase memtypes.Addr
}

// NewSpace builds the space with the paper's initial page placement:
// logical sectors are distributed randomly over NM and FM proportionally
// to their capacities (§4, "memory pages are allocated randomly ...").
// The permutation is derived from seed, so runs are reproducible.
func NewSpace(sectorBytes int, nmBytes, fmBytes uint64, nm, fm *memsys.Device, stats *memtypes.MemStats, seed uint64) *Space {
	nmSec := uint32(nmBytes / uint64(sectorBytes))
	fmSec := uint32(fmBytes / uint64(sectorBytes))
	total := nmSec + fmSec
	s := &Space{
		SectorBytes:    sectorBytes,
		NMSectors:      nmSec,
		FMSectors:      fmSec,
		remap:          make([]Loc, total),
		nmOwner:        make([]uint32, nmSec),
		fmOwner:        make([]uint32, fmSec),
		nm:             nm,
		fm:             fm,
		stats:          stats,
		remapTableBase: memtypes.Addr(nmBytes) - memtypes.Addr(total)*8,
	}
	// Seeded Fisher-Yates over physical slots, memoized per (seed,
	// geometry) — see placement.go.
	initialPlacement(seed, nmSec, fmSec, s.remap, s.nmOwner, s.fmOwner)
	return s
}

// Sectors returns the number of logical sectors in the flat space.
func (s *Space) Sectors() uint32 { return s.NMSectors + s.FMSectors }

// Lookup returns the physical location of a logical sector.
func (s *Space) Lookup(logical uint32) Loc { return s.remap[logical] }

// OwnerNM returns the logical sector stored in an NM slot.
func (s *Space) OwnerNM(slot uint32) uint32 { return s.nmOwner[slot] }

// DataAddr returns the device byte address of a physical location.
func (s *Space) DataAddr(l Loc) memtypes.Addr {
	return memtypes.Addr(l.Idx) * memtypes.Addr(s.SectorBytes)
}

// AccessData performs a 64 B data access at the sector's current location
// and returns completion time, recording served-from counters.
func (s *Space) AccessData(now memtypes.Tick, logical uint32, offset memtypes.Addr, write bool) memtypes.Tick {
	l := s.remap[logical]
	addr := s.DataAddr(l) + offset
	if l.NM {
		s.stats.ServedNM++
		done := s.nm.Access(now, addr, 64, write)
		if write {
			s.stats.NMWriteBytes += 64
		} else {
			s.stats.NMReadBytes += 64
		}
		return done
	}
	s.stats.ServedFM++
	done := s.fm.Access(now, addr, 64, write)
	if write {
		s.stats.FMWriteBytes += 64
	} else {
		s.stats.FMReadBytes += 64
	}
	return done
}

// ReadRemapEntry models an in-NM remap-table read (remap-cache miss):
// one 64 B NM access on the critical path.
func (s *Space) ReadRemapEntry(now memtypes.Tick, logical uint32) memtypes.Tick {
	done := s.nm.Access(now, s.remapTableBase+memtypes.Addr(logical/8)*64, 64, false)
	s.stats.NMReadBytes += 64
	s.stats.MetaNMBytes += 64
	return done
}

// writeRemapEntry models a background remap-table update.
func (s *Space) writeRemapEntry(now memtypes.Tick, logical uint32) {
	s.nm.AccessBG(now, s.remapTableBase+memtypes.Addr(logical/8)*64, 64, true)
	s.stats.NMWriteBytes += 64
	s.stats.MetaNMBytes += 64
}

// Swap exchanges logical sector a (currently in FM) with the occupant of
// NM slot nmSlot. It charges the full data movement — read both sectors,
// write both sectors — plus the two remap-table updates, starting at now.
// fmSkipBytes reduces the FM->NM read (LGM's bandwidth economization for
// lines already present in the LLC). Returns the displaced logical sector.
func (s *Space) Swap(now memtypes.Tick, a uint32, nmSlot uint32, fmSkipBytes int) uint32 {
	la := s.remap[a]
	if la.NM {
		panic("migcommon: swap source already in NM")
	}
	b := s.nmOwner[nmSlot]
	lb := Loc{NM: true, Idx: nmSlot}

	sb := s.SectorBytes
	rdA := sb - fmSkipBytes
	if rdA < 0 {
		rdA = 0
	}
	// Read A from FM, read B from NM (can overlap), then write A to NM
	// and B to FM.
	tA := s.nm.AccessBG(now, s.DataAddr(lb), sb, false) // read victim B from NM
	tB := s.fm.AccessBG(now, s.DataAddr(la), rdA, false)
	end := tA
	if tB > end {
		end = tB
	}
	s.nm.AccessBG(end, s.DataAddr(lb), sb, true) // A into NM slot
	s.fm.AccessBG(end, s.DataAddr(la), sb, true) // B into A's old FM slot
	s.stats.NMReadBytes += uint64(sb)
	s.stats.FMReadBytes += uint64(rdA)
	s.stats.NMWriteBytes += uint64(sb)
	s.stats.FMWriteBytes += uint64(sb)
	s.stats.Migrations++

	// Update mappings: A takes the NM slot, B takes A's old FM slot.
	s.remap[a] = lb
	s.nmOwner[nmSlot] = a
	s.remap[b] = la
	s.fmOwner[la.Idx] = b
	s.writeRemapEntry(end, a)
	s.writeRemapEntry(end, b)
	return b
}

// CheckInvariants verifies the remap/owner bijection; used by tests.
func (s *Space) CheckInvariants() bool {
	seen := make(map[Loc]bool, len(s.remap))
	for logical, l := range s.remap {
		if seen[l] {
			return false
		}
		seen[l] = true
		if l.NM {
			if l.Idx >= s.NMSectors || s.nmOwner[l.Idx] != uint32(logical) {
				return false
			}
		} else {
			if l.Idx >= s.FMSectors || s.fmOwner[l.Idx] != uint32(logical) {
				return false
			}
		}
	}
	return true
}

// RemapCache is the on-chip cache of remap-table entries. Its capacity is
// set equal to Hybrid2's XTA in the paper's comparisons (§5, 512 KB).
type RemapCache struct {
	tags  []uint64 // logical sector +1, 0 = invalid
	lru   []uint64
	sets  int
	assoc int
	clock uint64

	Hits, Misses uint64
}

// NewRemapCache builds a remap cache of the given entry count.
func NewRemapCache(entries, assoc int) *RemapCache {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("migcommon: remap cache sets must be a positive power of two")
	}
	return &RemapCache{
		tags:  make([]uint64, entries),
		lru:   make([]uint64, entries),
		sets:  sets,
		assoc: assoc,
	}
}

// Lookup returns whether logical's remap entry is cached, inserting it.
func (r *RemapCache) Lookup(logical uint32) bool {
	r.clock++
	set := int(logical) % r.sets
	base := set * r.assoc
	victim := base
	key := uint64(logical) + 1
	for i := base; i < base+r.assoc; i++ {
		if r.tags[i] == key {
			r.lru[i] = r.clock
			r.Hits++
			return true
		}
		if r.tags[victim] == 0 {
			continue
		}
		if r.tags[i] == 0 || r.lru[i] < r.lru[victim] {
			victim = i
		}
	}
	r.Misses++
	r.tags[victim] = key
	r.lru[victim] = r.clock
	return false
}
