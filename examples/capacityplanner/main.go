// Capacity planner: the central trade-off of the paper. DRAM caches take
// all of near memory away from the flat address space; migration keeps
// it; Hybrid2 gives up only its small staging cache. This example sweeps
// the main designs over a large-footprint workload and reports, for each,
// the performance AND the main-memory capacity a system integrator would
// actually get.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	cfg := hybridmem.DefaultConfig()
	cfg.InstrPerCore = 500_000

	// sp.D: 11.2 GB footprint (paper scale) against 16 GB FM + 1 GB NM —
	// exactly the regime where cached-away capacity would start costing
	// page faults on a real machine (the paper's §4 caveat).
	const wl = "sp.D"

	// Flat capacity offered to software, in GB at paper scale, for a
	// 1 GB NM / 16 GB FM system (paper §1: Hybrid2 keeps all but 64 MB).
	capacityGB := map[string]float64{
		"Baseline": 16.0,
		"MPOD":     17.0, "CHA": 17.0, "LGM": 17.0,
		"TAGLESS": 16.0, "DFC": 16.0,
		"HYBRID2": 17.0 - 64.0/1024,
	}

	fmt.Printf("Capacity vs performance on %s (11.2 GB footprint):\n\n", wl)
	fmt.Printf("%-9s  %8s  %12s  %10s\n", "design", "speedup", "capacity(GB)", "servedNM")
	for _, d := range []string{"Baseline", "MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"} {
		res, err := hybridmem.Run(d, wl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := hybridmem.Speedup(d, wl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %8.2f  %12.2f  %9.0f%%\n", d, sp, capacityGB[d], res.ServedNMFrac*100)
	}
	fmt.Println("\nHybrid2 keeps within a few percent of the best cache while")
	fmt.Println("offering nearly the full extra gigabyte to the flat address space.")
}
