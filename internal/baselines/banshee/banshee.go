// Package banshee implements Banshee (Yu, Hughes, Satish, Mutlu, Devadas,
// MICRO'17), the §2.1 design addressing DRAM caches' bandwidth imbalance:
// page-granularity caching tracked through the TLBs (no tag lookups, like
// Tagless) combined with a bandwidth-aware *frequency-based replacement*
// policy — pages are only cached when sampled access counters show their
// frequency exceeds the resident victim's by a threshold, so cache-fill
// bandwidth is spent only where it pays.
package banshee

import (
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes Banshee.
type Config struct {
	NMBytes   uint64
	PageBytes int
	Assoc     int
	// SampleRate: one in SampleRate accesses updates frequency counters
	// (Banshee samples to bound counter-update bandwidth).
	SampleRate uint32
	// ReplaceThreshold: a candidate page replaces the victim only when
	// its sampled frequency exceeds the victim's by this margin.
	ReplaceThreshold uint8
}

// Default returns the standard Banshee configuration over all of NM.
func Default(nmBytes uint64) Config {
	return Config{NMBytes: nmBytes, PageBytes: 4096, Assoc: 4, SampleRate: 4, ReplaceThreshold: 2}
}

type entry struct {
	tag   uint64 // page +1; 0 invalid
	freq  uint8
	dirty bool
}

// Banshee implements memtypes.MemorySystem.
type Banshee struct {
	cfg     Config
	nm, fm  *memsys.Device
	entries []entry
	sets    int
	// candFreq tracks sampled frequencies of uncached pages (bounded).
	candFreq map[uint64]uint8
	tick     uint32
	stats    memtypes.MemStats
}

// New builds Banshee over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *Banshee {
	sets := int(cfg.NMBytes) / (cfg.Assoc * cfg.PageBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("banshee: set count must be a positive power of two")
	}
	return &Banshee{
		cfg:      cfg,
		nm:       nm,
		fm:       fm,
		entries:  make([]entry, sets*cfg.Assoc),
		sets:     sets,
		candFreq: make(map[uint64]uint8, 4096),
	}
}

// Name implements MemorySystem.
func (b *Banshee) Name() string { return "BANSHEE" }

// Stats implements MemorySystem.
func (b *Banshee) Stats() *memtypes.MemStats { return &b.stats }

func (b *Banshee) nmAddr(set, way int, off memtypes.Addr) memtypes.Addr {
	return memtypes.Addr((set*b.cfg.Assoc+way)*b.cfg.PageBytes) + off
}

// Access implements MemorySystem.
func (b *Banshee) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	b.stats.Requests++
	b.tick++
	page := uint64(addr) / uint64(b.cfg.PageBytes)
	set := int(page % uint64(b.sets))
	off := memtypes.Addr(uint64(addr) % uint64(b.cfg.PageBytes))
	ways := b.entries[set*b.cfg.Assoc : (set+1)*b.cfg.Assoc]
	sampled := b.tick%b.cfg.SampleRate == 0

	minWay := 0
	for i := range ways {
		w := &ways[i]
		if w.tag == page+1 {
			if sampled && w.freq < 255 {
				w.freq++
			}
			b.stats.ServedNM++
			done := b.nm.Access(now, b.nmAddr(set, i, off), 64, write)
			if write {
				w.dirty = true
				b.stats.NMWriteBytes += 64
			} else {
				b.stats.NMReadBytes += 64
			}
			return done
		}
		if ways[minWay].tag != 0 && (w.tag == 0 || w.freq < ways[minWay].freq) {
			minWay = i
		}
	}

	// Miss: always served from FM (no fill on the critical path).
	b.stats.ServedFM++
	done := b.fm.Access(now, memtypes.Addr(uint64(addr)), 64, write)
	if write {
		b.stats.FMWriteBytes += 64
	} else {
		b.stats.FMReadBytes += 64
	}

	// Frequency-based, bandwidth-aware replacement: only sampled misses
	// update candidate counters and can trigger a page fill.
	if sampled {
		if len(b.candFreq) >= 8192 {
			for k := range b.candFreq {
				delete(b.candFreq, k)
			}
		}
		b.candFreq[page]++
		victim := &ways[minWay]
		if b.candFreq[page] >= victim.freq+b.cfg.ReplaceThreshold {
			b.fill(now, set, minWay, page, write)
			delete(b.candFreq, page)
		}
	}
	return done
}

// fill replaces the victim with the candidate page: dirty victim pages
// write back whole, the new page streams in from FM — all in the
// background (Banshee fills off the critical path).
func (b *Banshee) fill(now memtypes.Tick, set, wayIdx int, page uint64, write bool) {
	w := &b.entries[set*b.cfg.Assoc+wayIdx]
	pb := b.cfg.PageBytes
	if w.tag != 0 && w.dirty {
		rd := b.nm.AccessBG(now, b.nmAddr(set, wayIdx, 0), pb, false)
		b.fm.AccessBG(rd, memtypes.Addr((w.tag-1)*uint64(pb)), pb, true)
		b.stats.NMReadBytes += uint64(pb)
		b.stats.FMWriteBytes += uint64(pb)
		b.stats.Evictions++
	}
	rd := b.fm.AccessBG(now, memtypes.Addr(page*uint64(pb)), pb, false)
	b.nm.AccessBG(rd, b.nmAddr(set, wayIdx, 0), pb, true)
	b.stats.FMReadBytes += uint64(pb)
	b.stats.NMWriteBytes += uint64(pb)
	b.stats.FetchedBytes += uint64(pb)
	b.stats.Migrations++
	*w = entry{tag: page + 1, freq: b.candFreq[page], dirty: write}
}

// Finish implements MemorySystem (no deferred work).
func (b *Banshee) Finish(memtypes.Tick) {}
