package exp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCanceledContextAbortsParallelSweep asserts that a pre-canceled
// context fails the whole sweep with ctx.Err() without simulating
// anything: every error slot is the cancellation, and the call returns
// far faster than the sweep would take to run.
func TestCanceledContextAbortsParallelSweep(t *testing.T) {
	for _, workers := range []int{1, 8} {
		r := tiny()
		r.Parallelism = workers
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		specs := r.SweepSpecs(withBaseline(MainDesigns), []int{1, 2, 4})
		start := time.Now()
		res, err := r.ResultsParallelCtx(ctx, specs)
		if err == nil {
			t.Fatalf("parallelism %d: canceled sweep returned no error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: error %v is not context.Canceled", workers, err)
		}
		for i, sr := range res {
			if sr.Cycles != 0 {
				t.Fatalf("parallelism %d: run %d executed despite cancellation", workers, i)
			}
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("parallelism %d: canceled sweep took %v", workers, d)
		}
	}
}

// TestCancelMidSweepAbandonsQueuedWork cancels after the first completed
// run and asserts the queued remainder is skipped, not simulated: with a
// single worker the runs execute in index order, so everything after the
// cancellation point must settle as ctx.Err().
func TestCancelMidSweepAbandonsQueuedWork(t *testing.T) {
	r := tiny()
	r.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	specs := r.SweepSpecs(withBaseline([]string{"HYBRID2", "MPOD", "TAGLESS"}), []int{1})
	ran := 0
	out := make([]error, len(specs))
	err := r.parallelForCtx(ctx, len(specs), func(i int) error {
		ran++
		if ran == 1 {
			cancel()
		}
		_, err := r.ResultErr(specs[i].Workload, specs[i].Design, specs[i].Ratio16)
		out[i] = err
		return err
	})
	if ran != 1 {
		t.Fatalf("%d runs executed after cancellation, want 1", ran)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error %v is not context.Canceled", err)
	}
}

// TestSweepCtxBackgroundMatchesSweep pins that the context plumbing does
// not change results: the same sweep through SweepCtx(Background) and
// Sweep produces identical memoized results.
func TestSweepCtxBackgroundMatchesSweep(t *testing.T) {
	a, b := tiny(), tiny()
	designs := withBaseline([]string{"HYBRID2"})
	if err := a.Sweep(designs, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.SweepCtx(context.Background(), designs, []int{1}); err != nil {
		t.Fatal(err)
	}
	for _, wl := range a.Workloads() {
		for _, d := range designs {
			if a.Result(wl, d, 1) != b.Result(wl, d, 1) {
				t.Fatalf("%s/%s: SweepCtx result differs from Sweep", wl.Name, d)
			}
		}
	}
}

// TestResultsParallelProgressReports asserts the progress hook fires
// once per settled run with a strictly increasing done count reaching
// the total, at any parallelism, and that results match the plain path.
func TestResultsParallelProgressReports(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := tiny()
		r.Parallelism = workers
		specs := r.SweepSpecs(withBaseline([]string{"HYBRID2"}), []int{1})
		var calls []int
		res, err := r.ResultsParallelProgress(context.Background(), specs, func(done, total int) {
			if total != len(specs) {
				t.Fatalf("parallelism %d: total %d, want %d", workers, total, len(specs))
			}
			calls = append(calls, done)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != len(specs) {
			t.Fatalf("parallelism %d: %d progress calls for %d runs", workers, len(calls), len(specs))
		}
		for i, d := range calls {
			if d != i+1 {
				t.Fatalf("parallelism %d: progress call %d reported done=%d", workers, i, d)
			}
		}
		plain := tiny()
		plain.Parallelism = workers
		want, err := plain.ResultsParallel(specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("parallelism %d: run %d differs from plain parallel path", workers, i)
			}
		}
	}
}

// TestResultErrCtxCanceled pins the single-run cancellation point.
func TestResultErrCtxCanceled(t *testing.T) {
	r := tiny()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ResultErrCtx(ctx, r.Workloads()[0], "HYBRID2", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v is not context.Canceled", err)
	}
}
