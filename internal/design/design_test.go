package design_test

import (
	"strings"
	"testing"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all"
)

// TestEveryRegisteredExampleParses pins that the registry's own examples
// are valid names — the property every listing and smoke test relies on.
func TestEveryRegisteredExampleParses(t *testing.T) {
	infos := design.AllInfos()
	if len(infos) < 15 {
		t.Fatalf("registry has only %d designs", len(infos))
	}
	for _, info := range infos {
		spec, err := design.Parse(info.SampleName())
		if err != nil {
			t.Errorf("%s: example %q does not parse: %v", info.Name, info.SampleName(), err)
			continue
		}
		if spec.Info.Name != info.Name {
			t.Errorf("example %q resolved to %s, want %s", info.SampleName(), spec.Info.Name, info.Name)
		}
	}
}

// TestParseValidNames covers the grammar forms: exact names, hyphenated
// exact names, defaults for omitted optional parameters, and multi-field
// parameter lists.
func TestParseValidNames(t *testing.T) {
	cases := []struct {
		name, base string
	}{
		{"Baseline", "Baseline"},
		{"MPOD", "MPOD"},
		{"SILC-FM", "SILC-FM"},
		{"H2-CacheOnly", "H2-CacheOnly"},
		{"DFC", "DFC"},
		{"DFC-2048", "DFC"},
		{"IDEAL-64", "IDEAL"},
		{"H2ABL-ctr-9", "H2ABL"},
		{"H2ABL-free-250", "H2ABL"},
		{"H2DSE-64-2-256", "H2DSE"},
		{"H2DSE-128-4-64", "H2DSE"},
	}
	for _, c := range cases {
		spec, err := design.Parse(c.name)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.name, err)
			continue
		}
		if spec.Info.Name != c.base {
			t.Errorf("Parse(%q) resolved to %s, want %s", c.name, spec.Info.Name, c.base)
		}
	}
}

// TestParseFillsDefaults pins that "DFC" is "DFC-1024".
func TestParseFillsDefaults(t *testing.T) {
	spec, err := design.Parse("DFC")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Int("lineB"); got != 1024 {
		t.Fatalf("DFC default line = %d, want 1024", got)
	}
}

// TestParseRejectsMalformed is the satellite fix: malformed-but-parseable
// parameters fail at parse time with a design: error, never a panic or a
// runtime recovery.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                  // empty
		"BOGUS",             // unknown base
		"Baseline-1",        // parameters on a parameterless design
		"SILC-FM-3",         // parameters on a hyphenated exact name
		"H2-CacheOnly-2",    // parameters on an ablation variant
		"DFC-",              // empty field
		"DFC-0",             // below range
		"DFC-100",           // not a power of two
		"DFC--64",           // negative / double hyphen
		"DFC-64-64",         // too many fields
		"IDEAL",             // missing required parameter
		"IDEAL--3",          // negative line size
		"IDEAL-abc",         // non-integer
		"H2DSE-0-0-0",       // all below range
		"H2DSE-64-2",        // too few fields
		"H2DSE-64-2-100",    // line not a power of two
		"H2DSE-64-1-4096",   // line larger than sector
		"H2DSE-1024-64-64",  // more than 64 lines per sector
		"H2ABL-bogus-3",     // unknown knob
		"H2ABL-ctr-0",       // below range
		"H2ABL-ctr-40",      // counter too wide
		"H2ABL-assoc-3",     // associativity not a power of two
		"H2ABL-free-2000",   // more than 1000 per-mille
		"H2ABL-ctr",         // missing value
		"H2DSE-64-2-256-64", // trailing junk
	}
	for _, name := range bad {
		if _, err := design.Parse(name); err == nil {
			t.Errorf("Parse(%q) accepted a malformed name", name)
		} else if !strings.Contains(err.Error(), "design:") {
			t.Errorf("Parse(%q) error %q is not a design error", name, err)
		}
	}
}

// TestNamesOrder pins the paper-ordered design lists the figures use.
func TestNamesOrder(t *testing.T) {
	wantMain := []string{"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"}
	if got := design.Names(design.KindMain); !equal(got, wantMain) {
		t.Fatalf("main designs %v, want %v", got, wantMain)
	}
	wantExtra := []string{"CAMEO", "POM", "SILC-FM", "ALLOY", "FOOTPRINT", "BANSHEE"}
	if got := design.Names(design.KindExtra); !equal(got, wantExtra) {
		t.Fatalf("extra designs %v, want %v", got, wantExtra)
	}
	if got := design.Names(design.KindBaseline); !equal(got, []string{"Baseline"}) {
		t.Fatalf("baseline designs %v", got)
	}
}

// TestNeedsNMFlag pins the registry flag that replaced the engine's
// Baseline special case.
func TestNeedsNMFlag(t *testing.T) {
	for _, info := range design.AllInfos() {
		want := info.Name != "Baseline"
		if info.NeedsNM != want {
			t.Errorf("%s: NeedsNM = %v, want %v", info.Name, info.NeedsNM, want)
		}
	}
}

// TestBuildConvertsPanics pins that a spec which parses but violates a
// system-size constraint surfaces as an error, not a panic: a 64 KB line
// parses (within the grammar cap) but exceeds the scaled NM set count.
func TestBuildConvertsPanics(t *testing.T) {
	spec, err := design.Parse("DFC-65536")
	if err != nil {
		t.Fatalf("DFC-65536 should parse: %v", err)
	}
	// At a huge scale divisor NM shrinks below one set of 64 KB lines.
	sys := config.Scaled(16384, 1)
	if _, _, _, err := spec.Build(sys); err == nil {
		t.Fatal("building an oversized line on a tiny system did not error")
	}
}

// TestBuildUnknownSpec pins the zero-Spec guard.
func TestBuildUnknownSpec(t *testing.T) {
	if _, _, _, err := (design.Spec{}).Build(config.Scaled(16, 1)); err == nil {
		t.Fatal("zero Spec built")
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
