package hybridmem

import (
	"fmt"

	"hybridmem/internal/exp"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

// TelemetryOptions enables epoch telemetry on a run: the simulation is
// sampled every WindowInstr retired instructions into a bounded series
// of epochs (IPC, MPKI, traffic, migration and latency deltas per
// window) with a phase segmentation attached.
//
// Telemetry is passive: the Result of a sampled run is identical to the
// unsampled run's, and the series itself is deterministic — the same
// run yields the same series.
type TelemetryOptions struct {
	// WindowInstr is the epoch length in retired instructions across
	// all cores; <= 0 means the 65536-instruction default.
	WindowInstr uint64
	// MaxEpochs bounds the retained series; <= 0 means 512. When a run
	// closes more epochs than the bound, the oldest are dropped (the
	// series reports how many).
	MaxEpochs int
}

// RunOptions extends Run with optional per-run features.
type RunOptions struct {
	// Telemetry, when non-nil, attaches epoch sampling to the run and
	// makes RunWithOptions return the series alongside the result.
	Telemetry *TelemetryOptions
}

// Epoch is one telemetry sample: the windowed delta of the simulation's
// counters between two epoch boundaries.
type Epoch struct {
	// Index counts epochs from 0; EndInstr and EndCycle locate the
	// epoch's closing boundary in retired instructions and core cycles.
	Index    int
	EndInstr uint64
	EndCycle uint64
	// Instr and Cycles are the epoch's own extent (deltas).
	Instr  uint64
	Cycles uint64
	IPC    float64
	// LLC behaviour within the epoch.
	LLCAccesses uint64
	LLCMisses   uint64
	MPKI        float64
	// Memory-system behaviour within the epoch.
	Requests       uint64
	NMHitFrac      float64 // fraction of requests served by near memory
	NMTrafficBytes uint64
	FMTrafficBytes uint64
	MetaNMBytes    uint64
	Migrations     uint64
	Evictions      uint64
	WastedFrac     float64 // fetched-but-unused fraction of fetched bytes
	// Demand-miss latency distribution within the epoch, in core cycles.
	LatCount uint64
	LatMean  float64
	LatP50   uint64
	LatP99   uint64
}

// Phase is one segment of the phase decomposition: a maximal run of
// epochs with statistically stable IPC, annotated with its means.
type Phase struct {
	StartEpoch     int
	EndEpoch       int // inclusive
	Epochs         int
	MeanIPC        float64
	MeanMPKI       float64
	MeanNMHitFrac  float64
	MeanWastedFrac float64
}

// Series is the telemetry of one sampled run: the retained epochs
// (oldest first) and the phase segmentation computed over them.
type Series struct {
	// WindowInstr is the resolved epoch length.
	WindowInstr uint64
	// EpochsTotal counts every epoch the run closed; EpochsDropped how
	// many of the oldest fell out of the MaxEpochs bound.
	EpochsTotal   int
	EpochsDropped int
	Epochs        []Epoch
	Phases        []Phase
}

// RunWithOptions is Run with optional epoch telemetry: with
// opts.Telemetry set it returns the run's time series alongside the
// result; with a zero RunOptions it behaves exactly like Run and
// returns a nil series. Either way the Result is identical to Run's —
// telemetry never changes what a run reports.
func RunWithOptions(design, workloadName string, cfg Config, opts RunOptions) (Result, *Series, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return Result{}, nil, fmt.Errorf("hybridmem: unknown workload %q", workloadName)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	r := &exp.Runner{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.Seed}
	if opts.Telemetry == nil {
		sr, err := r.ResultErr(spec, design, cfg.NMRatio16)
		if err != nil {
			return Result{}, nil, fmt.Errorf("hybridmem: %w", err)
		}
		return fromSim(sr), nil, nil
	}
	r.Telemetry = &exp.TelemetryOptions{
		WindowInstr: opts.Telemetry.WindowInstr,
		MaxEpochs:   opts.Telemetry.MaxEpochs,
	}
	sr, ser, err := r.ResultSeriesErr(spec, design, cfg.NMRatio16)
	if err != nil {
		return Result{}, nil, fmt.Errorf("hybridmem: %w", err)
	}
	return fromSim(sr), fromSeries(ser), nil
}

// fromSeries converts the internal telemetry series to the public form.
func fromSeries(ts *telemetry.Series) *Series {
	if ts == nil {
		return nil
	}
	s := &Series{
		WindowInstr:   ts.WindowInstr,
		EpochsTotal:   ts.EpochsTotal,
		EpochsDropped: ts.EpochsDropped,
		Epochs:        make([]Epoch, len(ts.Epochs)),
		Phases:        make([]Phase, len(ts.Phases)),
	}
	for i, e := range ts.Epochs {
		s.Epochs[i] = Epoch{
			Index:    e.Index,
			EndInstr: e.EndInstr, EndCycle: e.EndCycle,
			Instr: e.Instr, Cycles: e.Cycles, IPC: e.IPC,
			LLCAccesses: e.LLCAccesses, LLCMisses: e.LLCMisses, MPKI: e.MPKI,
			Requests: e.Requests, NMHitFrac: e.NMHitFrac,
			NMTrafficBytes: e.NMTrafficBytes, FMTrafficBytes: e.FMTrafficBytes,
			MetaNMBytes: e.MetaNMBytes,
			Migrations:  e.Migrations, Evictions: e.Evictions, WastedFrac: e.WastedFrac,
			LatCount: e.LatCount, LatMean: e.LatMean, LatP50: e.LatP50, LatP99: e.LatP99,
		}
	}
	for i, p := range ts.Phases {
		s.Phases[i] = Phase{
			StartEpoch: p.StartEpoch, EndEpoch: p.EndEpoch, Epochs: p.Epochs,
			MeanIPC: p.MeanIPC, MeanMPKI: p.MeanMPKI,
			MeanNMHitFrac: p.MeanNMHitFrac, MeanWastedFrac: p.MeanWastedFrac,
		}
	}
	return s
}
