package hybridmem

import "testing"

// RunWithOptions with telemetry must report exactly what Run reports —
// sampling is passive — and a zero RunOptions must behave like Run with
// no series attached.
func TestRunWithOptionsPassivity(t *testing.T) {
	cfg := quickCfg()
	plain, err := Run("HYBRID2", "lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}

	res, ser, err := RunWithOptions("HYBRID2", "lbm", cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ser != nil {
		t.Fatalf("zero RunOptions returned a series: %+v", ser)
	}
	if res != plain {
		t.Fatalf("zero-options result diverged:\n got %+v\nwant %+v", res, plain)
	}

	res, ser, err = RunWithOptions("HYBRID2", "lbm", cfg, RunOptions{
		Telemetry: &TelemetryOptions{WindowInstr: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != plain {
		t.Fatalf("sampled result diverged:\n got %+v\nwant %+v", res, plain)
	}
	if ser == nil {
		t.Fatal("telemetry enabled but series is nil")
	}
	if ser.WindowInstr != 8192 {
		t.Fatalf("WindowInstr = %d, want 8192", ser.WindowInstr)
	}
	if len(ser.Epochs) == 0 || len(ser.Phases) == 0 {
		t.Fatalf("series empty: %d epochs, %d phases", len(ser.Epochs), len(ser.Phases))
	}
	if ser.EpochsTotal < len(ser.Epochs) {
		t.Fatalf("EpochsTotal %d < retained %d", ser.EpochsTotal, len(ser.Epochs))
	}
	for i, e := range ser.Epochs {
		if e.Index != ser.EpochsDropped+i {
			t.Fatalf("epoch %d has Index %d, want %d", i, e.Index, ser.EpochsDropped+i)
		}
		if e.WastedFrac < 0 || e.WastedFrac > 1 {
			t.Fatalf("epoch %d WastedFrac %v out of [0,1]", i, e.WastedFrac)
		}
	}

	again, ser2, err := RunWithOptions("HYBRID2", "lbm", cfg, RunOptions{
		Telemetry: &TelemetryOptions{WindowInstr: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	if again != plain {
		t.Fatalf("repeat sampled result diverged: %+v", again)
	}
	if len(ser2.Epochs) != len(ser.Epochs) || len(ser2.Phases) != len(ser.Phases) {
		t.Fatalf("series not deterministic: %d/%d epochs, %d/%d phases",
			len(ser2.Epochs), len(ser.Epochs), len(ser2.Phases), len(ser.Phases))
	}
	for i := range ser.Epochs {
		if ser2.Epochs[i] != ser.Epochs[i] {
			t.Fatalf("epoch %d differs between identical runs:\n got %+v\nwant %+v",
				i, ser2.Epochs[i], ser.Epochs[i])
		}
	}
}

func TestRunWithOptionsErrors(t *testing.T) {
	if _, _, err := RunWithOptions("HYBRID2", "no-such-workload", quickCfg(), RunOptions{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := quickCfg()
	bad.Scale = 0
	if _, _, err := RunWithOptions("HYBRID2", "lbm", bad, RunOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
