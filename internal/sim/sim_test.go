package sim

import (
	"testing"

	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/workload"
)

func sys(instr uint64) config.System {
	s := config.Scaled(16, 1)
	s.InstrPerCore = instr
	return s
}

func TestRunCompletesAllCores(t *testing.T) {
	spec, _ := workload.ByName("xz")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	// 8 cores, ~100 K instructions each.
	if res.Instructions < 8*50_000 || res.Instructions > 8*110_000 {
		t.Fatalf("instructions %d, want ~800K", res.Instructions)
	}
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	run := func() Result {
		fm := memsys.New(memsys.DDR4Config())
		return Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic run:\n%+v\n%+v", a, b)
	}
}

func TestMPKIMeasuredNearPaper(t *testing.T) {
	// The generator is calibrated so baseline MPKI lands near Table 2.
	for _, name := range []string{"lbm", "omnetpp", "namd"} {
		spec, _ := workload.ByName(name)
		fm := memsys.New(memsys.DDR4Config())
		res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(500_000))
		lo, hi := spec.PaperMPKI*0.5, spec.PaperMPKI*2.0+1
		if res.MPKI < lo || res.MPKI > hi {
			t.Fatalf("%s: measured MPKI %.1f outside [%.1f, %.1f]", name, res.MPKI, lo, hi)
		}
	}
}

func TestNMOnlyBeatsFMOnly(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	fm := memsys.New(memsys.DDR4Config())
	resFM := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(200_000))
	nm := memsys.New(memsys.HBM2Config())
	resNM := Run(spec, flat.NewNMOnly(nm), nm, nil, sys(200_000))
	if resNM.Cycles >= resFM.Cycles {
		t.Fatalf("NM-only (%d cycles) not faster than FM-only (%d)", resNM.Cycles, resFM.Cycles)
	}
}

func TestEnergyAccounted(t *testing.T) {
	spec, _ := workload.ByName("xz")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	if res.FMEnergyNJ <= 0 {
		t.Fatal("no FM energy recorded")
	}
	if res.NMEnergyNJ != 0 {
		t.Fatal("NM energy recorded without an NM device")
	}
}

func TestMLPDerivation(t *testing.T) {
	stream, _ := workload.ByName("lbm") // SeqRun 56 -> clamp at 8
	if got := MLPFor(stream); got != 8 {
		t.Fatalf("lbm MLP %d, want 8", got)
	}
	ptr, _ := workload.ByName("deepsjeng") // SeqRun 2 -> 1
	if got := MLPFor(ptr); got != 1 {
		t.Fatalf("deepsjeng MLP %d, want 1", got)
	}
}

func TestRunReportsLatencyPercentiles(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	fm := memsys.New(memsys.DDR4Config())
	res := Run(spec, flat.NewFMOnly(fm), nil, fm, sys(100_000))
	if res.LatMean <= 0 || res.LatP50 == 0 || res.LatP99 < res.LatP50 {
		t.Fatalf("latency stats malformed: mean=%.1f p50=%d p99=%d", res.LatMean, res.LatP50, res.LatP99)
	}
}
