package api

import (
	"strconv"

	"hybridmem/internal/sim"
	"hybridmem/internal/telemetry"
)

// SeriesSchemaVersion identifies the layout of the time-series
// documents below (RunSeries, SweepSeries), versioned independently of
// the headline result schema so the epoch field set can evolve without
// invalidating result documents. Field order is the struct order below
// and is pinned by the golden test in this package; changing it is a
// schema change and must bump this constant.
const SeriesSchemaVersion = 1

// Epoch is the wire form of one telemetry sampling window (see
// internal/telemetry.Epoch): deltas of the simulator's counters
// between two consecutive epoch boundaries plus the derived rates.
type Epoch struct {
	Index          int     `json:"epoch"`
	EndInstr       uint64  `json:"end_instr"`
	EndCycle       uint64  `json:"end_cycle"`
	Instr          uint64  `json:"instr"`
	Cycles         uint64  `json:"cycles"`
	IPC            float64 `json:"ipc"`
	LLCAccesses    uint64  `json:"llc_accesses"`
	LLCMisses      uint64  `json:"llc_misses"`
	MPKI           float64 `json:"mpki"`
	Requests       uint64  `json:"requests"`
	NMHitFrac      float64 `json:"nm_hit_frac"`
	NMTrafficBytes uint64  `json:"nm_traffic_bytes"`
	FMTrafficBytes uint64  `json:"fm_traffic_bytes"`
	MetaNMBytes    uint64  `json:"meta_nm_bytes"`
	Migrations     uint64  `json:"migrations"`
	Evictions      uint64  `json:"evictions"`
	WastedFrac     float64 `json:"wasted_frac"`
	LatCount       uint64  `json:"lat_count"`
	LatMean        float64 `json:"lat_mean"`
	LatP50         uint64  `json:"lat_p50"`
	LatP99         uint64  `json:"lat_p99"`
}

// SeriesPhase is the wire form of one phase of the change-point
// segmentation summary.
type SeriesPhase struct {
	StartEpoch     int     `json:"start_epoch"`
	EndEpoch       int     `json:"end_epoch"`
	Epochs         int     `json:"epochs"`
	MeanIPC        float64 `json:"mean_ipc"`
	MeanMPKI       float64 `json:"mean_mpki"`
	MeanNMHitFrac  float64 `json:"mean_nm_hit_frac"`
	MeanWastedFrac float64 `json:"mean_wasted_frac"`
}

// Series is the wire form of one run's telemetry series.
type Series struct {
	WindowInstr   uint64        `json:"window_instr"`
	EpochsTotal   int           `json:"epochs_total"`
	EpochsDropped int           `json:"epochs_dropped"`
	Epochs        []Epoch       `json:"epochs"`
	Phases        []SeriesPhase `json:"phases"`
}

// FromEpoch converts a telemetry epoch to the wire form.
func FromEpoch(e telemetry.Epoch) Epoch {
	return Epoch{
		Index:          e.Index,
		EndInstr:       e.EndInstr,
		EndCycle:       e.EndCycle,
		Instr:          e.Instr,
		Cycles:         e.Cycles,
		IPC:            e.IPC,
		LLCAccesses:    e.LLCAccesses,
		LLCMisses:      e.LLCMisses,
		MPKI:           e.MPKI,
		Requests:       e.Requests,
		NMHitFrac:      e.NMHitFrac,
		NMTrafficBytes: e.NMTrafficBytes,
		FMTrafficBytes: e.FMTrafficBytes,
		MetaNMBytes:    e.MetaNMBytes,
		Migrations:     e.Migrations,
		Evictions:      e.Evictions,
		WastedFrac:     e.WastedFrac,
		LatCount:       e.LatCount,
		LatMean:        e.LatMean,
		LatP50:         e.LatP50,
		LatP99:         e.LatP99,
	}
}

// FromSeries converts a telemetry series to the wire form — the single
// mapping every encoder goes through. A nil series maps to an empty
// document (zero window, no epochs), so callers need no guards.
func FromSeries(ts *telemetry.Series) Series {
	out := Series{Epochs: []Epoch{}, Phases: []SeriesPhase{}}
	if ts == nil {
		return out
	}
	out.WindowInstr = ts.WindowInstr
	out.EpochsTotal = ts.EpochsTotal
	out.EpochsDropped = ts.EpochsDropped
	for _, e := range ts.Epochs {
		out.Epochs = append(out.Epochs, FromEpoch(e))
	}
	for _, p := range ts.Phases {
		out.Phases = append(out.Phases, SeriesPhase{
			StartEpoch:     p.StartEpoch,
			EndEpoch:       p.EndEpoch,
			Epochs:         p.Epochs,
			MeanIPC:        p.MeanIPC,
			MeanMPKI:       p.MeanMPKI,
			MeanNMHitFrac:  p.MeanNMHitFrac,
			MeanWastedFrac: p.MeanWastedFrac,
		})
	}
	return out
}

// RunSeries is the top-level document of a single sampled run: the
// headline result (identical bytes to the plain Run document's result
// field — telemetry is passive) plus its epoch series.
type RunSeries struct {
	Schema       int    `json:"schema"`
	SeriesSchema int    `json:"series_schema"`
	Result       Result `json:"result"`
	Series       Series `json:"series"`
}

// NewRunSeries wraps a sampled run as a versioned document.
func NewRunSeries(sr sim.Result, ts *telemetry.Series) RunSeries {
	return RunSeries{
		Schema:       SchemaVersion,
		SeriesSchema: SeriesSchemaVersion,
		Result:       FromSim(sr),
		Series:       FromSeries(ts),
	}
}

// SweepSeriesEntry is one run's series within a sweep document,
// identified the way sweep results are.
type SweepSeriesEntry struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Series   Series `json:"series"`
}

// SweepSeries is the top-level document of a sweep's telemetry: one
// entry per run in the sweep's design-major, workload-minor order.
// Partial marks a document rendered mid-sweep (entries for unfinished
// runs are empty); the settled document omits it.
type SweepSeries struct {
	Schema       int                `json:"schema"`
	SeriesSchema int                `json:"series_schema"`
	Partial      bool               `json:"partial,omitempty"`
	Entries      []SweepSeriesEntry `json:"entries"`
}

// seriesCSVHeader is the column order of SeriesCSV, matching the Epoch
// wire field order.
const seriesCSVHeader = "epoch,end_instr,end_cycle,instr,cycles,ipc,llc_accesses,llc_misses,mpki,requests,nm_hit_frac,nm_traffic_bytes,fm_traffic_bytes,meta_nm_bytes,migrations,evictions,wasted_frac,lat_count,lat_mean,lat_p50,lat_p99\n"

// SeriesCSV renders a series' epochs as CSV, one row per epoch, with
// the same deterministic float formatting everywhere ('g', shortest
// round-trip form).
func SeriesCSV(s Series) []byte {
	buf := make([]byte, 0, 64+len(s.Epochs)*128)
	buf = append(buf, seriesCSVHeader...)
	for _, e := range s.Epochs {
		buf = strconv.AppendInt(buf, int64(e.Index), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.EndInstr, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.EndCycle, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Instr, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Cycles, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.IPC, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.LLCAccesses, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.LLCMisses, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.MPKI, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Requests, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.NMHitFrac, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.NMTrafficBytes, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.FMTrafficBytes, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.MetaNMBytes, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Migrations, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Evictions, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.WastedFrac, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.LatCount, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.LatMean, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.LatP50, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.LatP99, 10)
		buf = append(buf, '\n')
	}
	return buf
}
