package migcommon

import "sync"

// The seeded initial placement is a pure function of (seed, geometry),
// yet every design construction used to redo the full Fisher-Yates
// shuffle — a hardware division per sector, hundreds of thousands of
// sectors, repeated for every (design, workload) pair of a sweep even
// though the seed is fixed within one. The small cache below memoizes
// the derived placement arrays; a hit replaces the shuffle with three
// memmoves. A placement is only snapshotted on its second build, so
// one-off seeds (per-run benchmark seeds) never pay the snapshot's
// allocations and copies, while sweeps hit from the third build on.

type placementKey struct {
	seed  uint64
	nmSec uint32
	fmSec uint32
}

// placementSnap with nil remap marks a key seen once but not yet worth
// snapshotting.
type placementSnap struct {
	remap   []Loc
	nmOwner []uint32
	fmOwner []uint32
}

const placementCacheMax = 8

var (
	placementMu    sync.Mutex
	placementCache = map[placementKey]*placementSnap{}
	placementOrder []placementKey // FIFO eviction
)

// initialPlacement fills remap/nmOwner/fmOwner with the seeded random
// placement, via the snapshot cache.
func initialPlacement(seed uint64, nmSec, fmSec uint32, remap []Loc, nmOwner, fmOwner []uint32) {
	k := placementKey{seed, nmSec, fmSec}
	placementMu.Lock()
	snap := placementCache[k]
	if snap != nil && snap.remap != nil {
		placementMu.Unlock()
		copy(remap, snap.remap)
		copy(nmOwner, snap.nmOwner)
		copy(fmOwner, snap.fmOwner)
		return
	}
	placementMu.Unlock()

	// Built outside the lock: concurrent misses may duplicate the work,
	// but parallel sweep workers never serialize on a shuffle.
	buildPlacement(seed, nmSec, fmSec, remap, nmOwner, fmOwner)

	placementMu.Lock()
	defer placementMu.Unlock()
	switch snap = placementCache[k]; {
	case snap == nil:
		// First sighting: record the key, skip the snapshot.
		if len(placementOrder) >= placementCacheMax {
			delete(placementCache, placementOrder[0])
			placementOrder = placementOrder[1:]
		}
		placementCache[k] = &placementSnap{}
		placementOrder = append(placementOrder, k)
	case snap.remap == nil:
		// Second build of the same placement: it repeats, so memoize.
		snap.remap = append([]Loc(nil), remap...)
		snap.nmOwner = append([]uint32(nil), nmOwner...)
		snap.fmOwner = append([]uint32(nil), fmOwner...)
	}
}

// buildPlacement runs the seeded Fisher-Yates over physical slots and
// derives the remap/owner arrays — the placement NewSpace always built —
// writing straight into the caller's arrays.
func buildPlacement(seed uint64, nmSec, fmSec uint32, remap []Loc, nmOwner, fmOwner []uint32) {
	total := nmSec + fmSec
	perm := make([]uint32, total)
	for i := range perm {
		perm[i] = uint32(i)
	}
	rng := seed | 1
	for i := total - 1; i > 0; i-- {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		j := uint32((rng * 0x2545F4914F6CDD1D) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for logical, phys := range perm {
		if phys < nmSec {
			remap[logical] = Loc{NM: true, Idx: phys}
			nmOwner[phys] = uint32(logical)
		} else {
			remap[logical] = Loc{NM: false, Idx: phys - nmSec}
			fmOwner[phys-nmSec] = uint32(logical)
		}
	}
}
