// Package trace defines a plain-text memory-trace format and a replayer,
// so the simulator can be driven by captured traces (e.g. from Pin, as
// the paper's authors did) instead of the built-in synthetic workloads.
//
// Format: one record per line, blank lines and '#' comments ignored:
//
//	<core> <gap> <addr-hex> R|W
//
// core is the issuing core (0-7), gap the number of non-memory
// instructions preceding the access, addr the byte address (hex, with or
// without 0x), and R/W the access type. Records of one core must appear
// in program order; cores may interleave arbitrarily.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hybridmem/internal/memtypes"
)

// Record is one memory access of one core's trace.
type Record struct {
	Gap   uint64 // non-memory instructions before this access
	Addr  memtypes.Addr
	Write bool
}

// Trace holds per-core record streams.
type Trace struct {
	Cores [][]Record
}

// Read parses a trace with at most maxCores cores.
func Read(r io.Reader, maxCores int) (*Trace, error) {
	t := &Trace{Cores: make([][]Record, maxCores)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(f))
		}
		core, err := strconv.Atoi(f[0])
		if err != nil || core < 0 || core >= maxCores {
			return nil, fmt.Errorf("trace: line %d: bad core %q", lineNo, f[0])
		}
		gap, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, f[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(f[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, f[2])
		}
		var write bool
		switch f[3] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad access type %q", lineNo, f[3])
		}
		t.Cores[core] = append(t.Cores[core], Record{Gap: gap, Addr: memtypes.Addr(addr), Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// Write serializes the trace in core-interleaved round-robin order.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	idx := make([]int, len(t.Cores))
	for {
		wrote := false
		for c := range t.Cores {
			if idx[c] >= len(t.Cores[c]) {
				continue
			}
			r := t.Cores[c][idx[c]]
			idx[c]++
			wrote = true
			rw := "R"
			if r.Write {
				rw = "W"
			}
			if _, err := fmt.Fprintf(bw, "%d %d %x %s\n", c, r.Gap, uint64(r.Addr), rw); err != nil {
				return err
			}
		}
		if !wrote {
			break
		}
	}
	return bw.Flush()
}

// Records returns the total record count.
func (t *Trace) Records() int {
	n := 0
	for _, c := range t.Cores {
		n += len(c)
	}
	return n
}

// Replayer replays one core's records; it implements sim.Source.
type Replayer struct {
	recs []Record
	pos  int
}

// NewReplayer returns a replayer over one core's records.
func NewReplayer(recs []Record) *Replayer { return &Replayer{recs: recs} }

// Next implements sim.Source.
func (p *Replayer) Next() (gap uint64, addr memtypes.Addr, write bool, ok bool) {
	if p.pos >= len(p.recs) {
		return 0, 0, false, false
	}
	r := p.recs[p.pos]
	p.pos++
	return r.Gap, r.Addr, r.Write, true
}
