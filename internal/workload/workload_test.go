package workload

import (
	"testing"
	"testing/quick"

	"hybridmem/internal/memtypes"
)

func TestThirtySpecsTenPerClass(t *testing.T) {
	all := Specs()
	if len(all) != 30 {
		t.Fatalf("got %d specs, want 30", len(all))
	}
	for _, c := range []Class{High, Medium, Low} {
		if n := len(ByClass(c)); n != 10 {
			t.Fatalf("class %v has %d workloads, want 10", c, n)
		}
	}
}

func TestSpecsGroupedByClass(t *testing.T) {
	// Table 2 groups workloads High, then Medium, then Low.
	all := Specs()
	for i := 1; i < len(all); i++ {
		if all[i].Class < all[i-1].Class {
			t.Fatalf("spec %s out of class order", all[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("mcf")
	if !ok || s.Name != "mcf" || s.Class != High {
		t.Fatalf("ByName(mcf) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("found nonexistent workload")
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, _ := ByName("gcc")
	a := NewStream(spec, 3, 16, 100000, 42)
	b := NewStream(spec, 3, 16, 100000, 42)
	for i := 0; i < 5000; i++ {
		g1, a1, w1, ok1 := a.Next()
		g2, a2, w2, ok2 := b.Next()
		if g1 != g2 || a1 != a2 || w1 != w2 || ok1 != ok2 {
			t.Fatalf("divergence at record %d", i)
		}
		if !ok1 {
			break
		}
	}
}

func TestStreamDifferentCoresDiffer(t *testing.T) {
	spec, _ := ByName("gcc")
	a := NewStream(spec, 0, 16, 100000, 42)
	b := NewStream(spec, 1, 16, 100000, 42)
	same := 0
	for i := 0; i < 1000; i++ {
		_, a1, _, _ := a.Next()
		_, a2, _, _ := b.Next()
		if a1 == a2 {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("streams for different cores nearly identical (%d/1000)", same)
	}
}

func TestAddressesWithinRegion(t *testing.T) {
	f := func(seed uint64, coreRaw uint8) bool {
		core := int(coreRaw % 8)
		spec, _ := ByName("lbm")
		s := NewStream(spec, core, 16, 50000, seed)
		base, size := s.RegionBase(), s.Footprint()
		for {
			_, addr, _, ok := s.Next()
			if !ok {
				return true
			}
			if addr < base || uint64(addr)+64 > uint64(base)+size {
				return false
			}
			if uint64(addr)%64 != 0 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMPRegionsDisjoint(t *testing.T) {
	spec, _ := ByName("lbm")
	var regions [8][2]uint64
	for c := 0; c < 8; c++ {
		s := NewStream(spec, c, 16, 1000, 1)
		regions[c] = [2]uint64{uint64(s.RegionBase()), uint64(s.RegionBase()) + s.Footprint()}
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if regions[i][0] < regions[j][1] && regions[j][0] < regions[i][1] {
				t.Fatalf("MP regions %d and %d overlap: %v %v", i, j, regions[i], regions[j])
			}
		}
	}
}

func TestMTRegionsShared(t *testing.T) {
	spec, _ := ByName("cg.D")
	a := NewStream(spec, 0, 16, 1000, 1)
	b := NewStream(spec, 7, 16, 1000, 1)
	if a.RegionBase() != b.RegionBase() || a.Footprint() != b.Footprint() {
		t.Fatal("MT cores should share one region")
	}
}

func TestInstructionBudgetRespected(t *testing.T) {
	spec, _ := ByName("namd")
	const budget = 200000
	s := NewStream(spec, 0, 16, budget, 7)
	var instr uint64
	for {
		gap, _, _, ok := s.Next()
		if !ok {
			break
		}
		instr += gap + 1
	}
	// The stream may overshoot by at most one record's gap.
	if instr < budget/2 || instr > budget+2*s.gapBase+2 {
		t.Fatalf("instructions consumed %d, budget %d", instr, budget)
	}
}

func TestAccessIntensityMatchesAPKI(t *testing.T) {
	spec, _ := ByName("lbm") // APKI 35
	s := NewStream(spec, 0, 16, 2_000_000, 3)
	var instr, accesses uint64
	for {
		gap, _, _, ok := s.Next()
		if !ok {
			break
		}
		instr += gap + 1
		accesses++
	}
	apki := float64(accesses) / float64(instr) * 1000
	if apki < spec.APKI*0.7 || apki > spec.APKI*1.3 {
		t.Fatalf("measured APKI %.1f, spec %.1f", apki, spec.APKI)
	}
}

func TestSpatialLocalityOrdering(t *testing.T) {
	// lbm (SeqRun 28) must show far more sequential successors than
	// omnetpp (SeqRun 1.2).
	seqFrac := func(name string) float64 {
		spec, _ := ByName(name)
		s := NewStream(spec, 0, 16, 1_000_000, 9)
		var prev memtypes.Addr
		var seq, n int
		for {
			_, addr, _, ok := s.Next()
			if !ok {
				break
			}
			if n > 0 && addr == prev+64 {
				seq++
			}
			prev = addr
			n++
		}
		return float64(seq) / float64(n)
	}
	lbm, omn := seqFrac("lbm"), seqFrac("omnetpp")
	if lbm < 0.9 || omn > 0.85 || lbm <= omn {
		t.Fatalf("lbm seq frac %.2f not clearly above omnetpp %.2f", lbm, omn)
	}
}

func TestWriteFractionApproximate(t *testing.T) {
	spec, _ := ByName("lbm") // WriteFrac 0.45
	s := NewStream(spec, 0, 16, 2_000_000, 5)
	var writes, n int
	for {
		_, _, w, ok := s.Next()
		if !ok {
			break
		}
		if w {
			writes++
		}
		n++
	}
	frac := float64(writes) / float64(n)
	if frac < 0.35 || frac > 0.55 {
		t.Fatalf("write fraction %.2f, want ~0.45", frac)
	}
}
