package footprint

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "FOOTPRINT",
		Doc:     "footprint cache (2 KB pages, predicted fills)",
		Kind:    design.KindExtra,
		Order:   5,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Default(sys.NMBytes), nm, fm), nil
		},
	})
}
