package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"

	"hybridmem/internal/memtypes"
)

// sampleRecords builds a deterministic interleaved record sequence over
// n cores.
func sampleRecords(n, cores int) []struct {
	core int
	rec  Record
} {
	out := make([]struct {
		core int
		rec  Record
	}, n)
	s := uint64(42)
	for i := range out {
		s = s*6364136223846793005 + 1
		out[i].core = int(s % uint64(cores))
		out[i].rec = Record{
			Gap:   s >> 40 % 500,
			Addr:  memtypes.Addr(s % (1 << 34) &^ 63),
			Write: s%5 == 0,
		}
	}
	return out
}

// encode serializes records with a StreamWriter into a buffer.
func encode(t *testing.T, recs []struct {
	core int
	rec  Record
}, format Format, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, format, compress)
	sw.Comment("header comment")
	for _, r := range recs {
		if err := sw.Append(r.core, r.rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Records() != uint64(len(recs)) {
		t.Fatalf("writer counted %d records, want %d", sw.Records(), len(recs))
	}
	return buf.Bytes()
}

func TestStreamRoundTripAllEncodings(t *testing.T) {
	recs := sampleRecords(500, 8)
	for _, tc := range []struct {
		format   Format
		compress bool
	}{
		{FormatText, false},
		{FormatText, true},
		{FormatBinary, false},
		{FormatBinary, true},
	} {
		name := fmt.Sprintf("%v/gz=%v", tc.format, tc.compress)
		data := encode(t, recs, tc.format, tc.compress)
		d, err := NewDecoder(bytes.NewReader(data), 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Format() != tc.format || d.Compressed() != tc.compress {
			t.Fatalf("%s: detected %v/gz=%v", name, d.Format(), d.Compressed())
		}
		for i, want := range recs {
			core, rec, err := d.Decode()
			if err != nil {
				t.Fatalf("%s: record %d: %v", name, i, err)
			}
			if core != want.core || rec != want.rec {
				t.Fatalf("%s: record %d: got core %d %+v, want core %d %+v", name, i, core, rec, want.core, want.rec)
			}
		}
		if _, _, err := d.Decode(); err != io.EOF {
			t.Fatalf("%s: want io.EOF at end, got %v", name, err)
		}
		if d.Records() != uint64(len(recs)) {
			t.Fatalf("%s: decoder counted %d records", name, d.Records())
		}
	}
}

func TestReadAutoDetectsAllEncodings(t *testing.T) {
	recs := sampleRecords(300, 8)
	var want *Trace
	for _, tc := range []struct {
		format   Format
		compress bool
	}{
		{FormatText, false},
		{FormatText, true},
		{FormatBinary, false},
		{FormatBinary, true},
	} {
		tr, err := Read(bytes.NewReader(encode(t, recs, tc.format, tc.compress)), 8)
		if err != nil {
			t.Fatalf("%v/gz=%v: %v", tc.format, tc.compress, err)
		}
		if want == nil {
			want = tr
			continue
		}
		if !reflect.DeepEqual(tr, want) {
			t.Fatalf("%v/gz=%v: decoded trace differs from text decoding", tc.format, tc.compress)
		}
	}
	if want.Records() != 300 {
		t.Fatalf("records %d, want 300", want.Records())
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	recs := sampleRecords(10, 8)
	full := encode(t, recs, FormatBinary, false)

	// Truncating anywhere inside the record stream must be an explicit
	// error, never a silently shorter trace.
	for cut := len(binaryMagic) + 1; cut < len(full); cut++ {
		d, err := NewDecoder(bytes.NewReader(full[:cut]), 8)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for {
			_, _, err = d.Decode()
			if err != nil {
				break
			}
		}
		// A cut at a record boundary is indistinguishable from a shorter
		// trace (clean EOF, fewer records); anywhere else must surface a
		// truncation error. Either way, a full decode is impossible.
		if err == io.EOF && d.Records() == uint64(len(recs)) {
			t.Fatalf("cut %d: truncated trace decoded completely", cut)
		}
	}

	// Core out of range.
	var buf bytes.Buffer
	buf.Write(binaryMagic)
	b := binary.AppendUvarint(nil, 9<<1)
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 64)
	buf.Write(b)
	d, err := NewDecoder(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Decode(); err == nil || !strings.Contains(err.Error(), "core 9") {
		t.Fatalf("out-of-range core: got %v", err)
	}

	// Unknown future version must fail up front.
	bad := append([]byte{'H', 'M', 'T', 2}, full[4:]...)
	if _, err := NewDecoder(bytes.NewReader(bad), 8); err == nil || !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("future version: got %v", err)
	}
}

func TestTextDecodeBoundedOnGarbageInput(t *testing.T) {
	// A newline-free blob misdetected as text must fail fast with a
	// line-length error, not accumulate in memory.
	blob := io.MultiReader(
		strings.NewReader(strings.Repeat("x", 1<<20)),
		&endlessTrace{}, // never returns EOF
	)
	d, err := NewDecoder(blob, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Decode(); err == nil || !strings.Contains(err.Error(), "longer than") {
		t.Fatalf("want line-length error, got %v", err)
	}
}

func TestTextDecodeSurfacesTransportErrors(t *testing.T) {
	// A read failure mid-line (e.g. a corrupt gzip stream) must surface
	// the transport error itself, not a parse error on the fragment read
	// before the failure.
	errBroken := errors.New("broken transport")
	d, err := NewDecoder(io.MultiReader(
		strings.NewReader("0 1 40 R\n0 2 80"), // second line cut mid-record
		iotest.ErrReader(errBroken),
	), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Decode(); !errors.Is(err, errBroken) {
		t.Fatalf("want the transport error, got %v", err)
	}
}

func TestStreamReaderServesPerCore(t *testing.T) {
	recs := sampleRecords(400, 4)
	data := encode(t, recs, FormatBinary, true)
	sr, err := NewStreamReader(bytes.NewReader(data), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drain core by core — the worst consumption order for the windows,
	// but well within the default window at 400 records.
	for core := 0; core < 4; core++ {
		var want []Record
		for _, r := range recs {
			if r.core == core {
				want = append(want, r.rec)
			}
		}
		src := sr.Source(core)
		for i, w := range want {
			gap, addr, write, ok := src.Next()
			if !ok {
				t.Fatalf("core %d: stream ended at %d/%d", core, i, len(want))
			}
			if got := (Record{Gap: gap, Addr: addr, Write: write}); got != w {
				t.Fatalf("core %d record %d: got %+v want %+v", core, i, got, w)
			}
		}
		if _, _, _, ok := src.Next(); ok {
			t.Fatalf("core %d: extra record", core)
		}
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	if sr.Records() != uint64(len(recs)) {
		t.Fatalf("records %d, want %d", sr.Records(), len(recs))
	}
	if sr.MaxQueued() > len(recs) {
		t.Fatalf("max queued %d exceeds trace size", sr.MaxQueued())
	}
}

func TestStreamReaderWindowSkewError(t *testing.T) {
	// All records on core 1: serving core 0 must fail fast once the
	// window fills instead of buffering the whole trace.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, FormatText, false)
	for i := 0; i < 100; i++ {
		sw.Append(1, Record{Gap: 1, Addr: memtypes.Addr(i * 64)})
	}
	sw.Close()
	sr, err := NewStreamReader(&buf, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := sr.Source(0).Next(); ok {
		t.Fatal("core 0 got a record from a core-1-only trace")
	}
	if err := sr.Err(); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("want window skew error, got %v", err)
	}
	if sr.MaxQueued() > 8 {
		t.Fatalf("buffered %d records past the window", sr.MaxQueued())
	}
	// The error also poisons the buffered core's stream: replay must not
	// continue on partial data.
	if _, _, _, ok := sr.Source(1).Next(); ok {
		t.Fatal("core 1 served records after a stream error")
	}
}

// endlessTrace is an unbounded synthetic binary trace: an io.Reader that
// generates records forever, round-robin across 8 cores. Any reader that
// materializes it would never terminate — completing a bounded replay
// over it proves streaming.
type endlessTrace struct {
	buf  []byte
	off  int
	core int
	rng  uint64
	init bool
}

func (g *endlessTrace) Read(p []byte) (int, error) {
	if g.off == len(g.buf) {
		g.buf = g.buf[:0]
		g.off = 0
		if !g.init {
			g.buf = append(g.buf, binaryMagic...)
			g.init = true
		}
		for len(g.buf) < 1<<14 {
			g.rng = g.rng*6364136223846793005 + 1
			hdr := uint64(g.core)<<1 | g.rng>>63
			g.core = (g.core + 1) % 8
			g.buf = binary.AppendUvarint(g.buf, hdr)
			g.buf = binary.AppendUvarint(g.buf, g.rng>>56)
			g.buf = binary.AppendUvarint(g.buf, g.rng>>20&^63)
		}
	}
	n := copy(p, g.buf[g.off:])
	g.off += n
	return n, nil
}

func TestStreamReaderBoundedMemoryOnUnboundedTrace(t *testing.T) {
	const window = 4096
	const total = 5_000_000
	sr, err := NewStreamReader(&endlessTrace{}, 8, window)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]*CoreStream, 8)
	for i := range srcs {
		srcs[i] = sr.Source(i)
	}
	for i := 0; i < total; i++ {
		if _, _, _, ok := srcs[i%8].Next(); !ok {
			t.Fatalf("record %d: stream ended early: %v", i, sr.Err())
		}
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	if sr.Records() < total {
		t.Fatalf("decoded %d records, want >= %d", sr.Records(), total)
	}
	if sr.MaxQueued() > window {
		t.Fatalf("buffered %d records, window is %d", sr.MaxQueued(), window)
	}
}

func TestInterleaverOrdersByInstructionPosition(t *testing.T) {
	// core 0 retires at positions 101, 202; core 1 at 11, 22, 33.
	tr := &Trace{Cores: [][]Record{
		{{Gap: 100, Addr: 0}, {Gap: 100, Addr: 64}},
		{{Gap: 10, Addr: 128}, {Gap: 10, Addr: 192}, {Gap: 10, Addr: 256}},
	}}
	srcs := []Source{NewReplayer(tr.Cores[0]), NewReplayer(tr.Cores[1])}
	var order []int
	it := NewInterleaver(srcs)
	for {
		core, _, ok := it.Next()
		if !ok {
			break
		}
		order = append(order, core)
	}
	if want := []int{1, 1, 1, 0, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("interleave order %v, want %v", order, want)
	}
}

func TestWritePreservesGlobalOrder(t *testing.T) {
	tr := &Trace{Cores: [][]Record{
		{{Gap: 100, Addr: 0}, {Gap: 100, Addr: 64}},
		{{Gap: 10, Addr: 128}, {Gap: 10, Addr: 192, Write: true}, {Gap: 10, Addr: 256}},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Global order by cumulative instruction position, not round-robin.
	var cores []int
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	for {
		core, _, err := d.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cores = append(cores, core)
	}
	if want := []int{1, 1, 1, 0, 0}; !reflect.DeepEqual(cores, want) {
		t.Fatalf("serialized core order %v, want %v", cores, want)
	}
	// A write-read-write round trip must be byte-stable: re-serializing
	// the parsed trace reproduces the file exactly.
	back, err := Read(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n%q\nvs\n%q", buf.Bytes(), again.Bytes())
	}
}

func TestStreamWriterCommentOnlyInText(t *testing.T) {
	var text, bin bytes.Buffer
	swT := NewStreamWriter(&text, FormatText, false)
	swT.Comment("hello")
	swT.Close()
	if !strings.Contains(text.String(), "# hello\n") {
		t.Fatalf("text comment missing: %q", text.String())
	}
	swB := NewStreamWriter(&bin, FormatBinary, false)
	swB.Comment("hello")
	swB.Close()
	if !bytes.Equal(bin.Bytes(), binaryMagic) {
		t.Fatalf("binary comment wrote payload bytes: %x", bin.Bytes())
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("text"); err != nil || f != FormatText {
		t.Fatalf("text: %v %v", f, err)
	}
	if f, err := ParseFormat("binary"); err != nil || f != FormatBinary {
		t.Fatalf("binary: %v %v", f, err)
	}
	if _, err := ParseFormat("msgpack"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// benchTrace returns an encoded 1M-record trace for throughput
// benchmarks.
func benchTrace(b *testing.B, format Format, compress bool) []byte {
	b.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, format, compress)
	s := uint64(7)
	for i := 0; i < 1_000_000; i++ {
		s = s*6364136223846793005 + 1
		sw.Append(int(s%8), Record{Gap: s >> 56, Addr: memtypes.Addr(s % (1 << 32) &^ 63), Write: s%4 == 0})
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkTraceStreamRead measures streaming decode throughput — the
// ingestion rate limit of trace-driven runs (bytes/s over the encoded
// size, 1M records per iteration).
func BenchmarkTraceStreamRead(b *testing.B) {
	for _, tc := range []struct {
		name     string
		format   Format
		compress bool
	}{
		{"binary", FormatBinary, false},
		{"binary-gz", FormatBinary, true},
		{"text", FormatText, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			data := benchTrace(b, tc.format, tc.compress)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := NewDecoder(bytes.NewReader(data), 8)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, _, err := d.Decode()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != 1_000_000 {
					b.Fatalf("decoded %d records", n)
				}
			}
		})
	}
}
