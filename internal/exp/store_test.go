package exp

import (
	"testing"

	"hybridmem/internal/obs"
	"hybridmem/internal/store"
)

// TestMemoBoundedEvicts pins the satellite fix: the memo cache is
// bounded (a long-lived server used to grow it without limit), evicted
// runs are recomputed with identical results, and with a store attached
// the recomputation is a disk hit, not a simulation.
func TestMemoBoundedEvicts(t *testing.T) {
	var sims obs.Counter
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	r := tiny()
	r.MemoEntries = 2
	r.Store = st
	r.SimCounter = &sims
	wl := r.Workloads()[0]

	designs := []string{"Baseline", "HYBRID2", "DFC"}
	first := make(map[string]uint64)
	for _, d := range designs {
		first[d] = uint64(r.Result(wl, d, 1).Cycles)
	}
	ms := r.MemoStats()
	if ms.Entries > 2 {
		t.Fatalf("memo holds %d entries, bound 2", ms.Entries)
	}
	if ms.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the memo bound")
	}
	simsAfterSweep := sims.Value()
	if simsAfterSweep != uint64(len(designs)) {
		t.Fatalf("sim counter = %d after %d distinct runs", simsAfterSweep, len(designs))
	}

	// The evicted run re-resolves — through the store's disk tier, not
	// the engine — with an identical result.
	if got := uint64(r.Result(wl, designs[0], 1).Cycles); got != first[designs[0]] {
		t.Fatalf("re-resolved run differs: %d cycles, first saw %d", got, first[designs[0]])
	}
	if sims.Value() != simsAfterSweep {
		t.Fatalf("re-resolving an evicted run simulated again (%d sims)", sims.Value())
	}
	if st.Stats().DiskHits == 0 {
		t.Fatal("evicted run was not served from the disk tier")
	}
}

// TestStoreSharedAcrossRunners pins the tentpole property end to end: a
// fresh runner over a warm store executes zero simulations and returns
// results identical to the runner that populated it.
func TestStoreSharedAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var sims1 obs.Counter
	r1 := tiny()
	r1.Store = st
	r1.SimCounter = &sims1
	specs := r1.SweepSpecs([]string{"Baseline", "HYBRID2"}, []int{1})
	warm, err := r1.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if sims1.Value() == 0 {
		t.Fatal("cold sweep executed no simulations")
	}

	// A separate store instance on the same directory models a restart.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var sims2 obs.Counter
	r2 := tiny()
	r2.Store = st2
	r2.SimCounter = &sims2
	got, err := r2.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if sims2.Value() != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", sims2.Value())
	}
	for i := range warm {
		if warm[i] != got[i] {
			t.Fatalf("run %d differs between cold and warm sweep:\ncold %+v\nwarm %+v", i, warm[i], got[i])
		}
	}

	// A runner with a different knob must not be served those entries.
	var sims3 obs.Counter
	r3 := tiny()
	r3.Store = st2
	r3.SimCounter = &sims3
	r3.Seed = 7
	if _, err := r3.ResultErr(specs[0].Workload, specs[0].Design, specs[0].Ratio16); err != nil {
		t.Fatal(err)
	}
	if sims3.Value() != 1 {
		t.Fatalf("different-seed run was served from the store (%d sims)", sims3.Value())
	}
}
