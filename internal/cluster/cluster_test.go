package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/dse"
	"hybridmem/internal/exp"
	"hybridmem/internal/workload"
)

// testConfig is the shared fast simulation configuration: short streams
// keep every test in the sub-second range while still exercising the
// real engines.
func testConfig() Config {
	return Config{Scale: 16, InstrPerCore: 20_000, Seed: 1}
}

// testRuns enumerates a small design-major sweep — the same order
// SweepSpecsByName produces, so wire documents line up with local ones.
func testRuns() []Run {
	designs := []string{"Baseline", "MPOD", "CHA", "DFC-256", "TAGLESS"}
	workloads := []string{"mcf", "lbm", "omnetpp"}
	var runs []Run
	for _, d := range designs {
		for _, w := range workloads {
			runs = append(runs, Run{Design: d, Workload: w, Ratio16: 1})
		}
	}
	return runs
}

// localSweepBytes computes the reference wire document the way a
// single-process sweep does: straight through exp.Runner and the shared
// api mapping, no cluster machinery involved.
func localSweepBytes(t *testing.T, cfg Config, runs []Run) []byte {
	t.Helper()
	r := &exp.Runner{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.Seed, Parallelism: 2}
	specs := make([]exp.RunSpec, len(runs))
	for i, run := range runs {
		wl, ok := workload.ByName(run.Workload)
		if !ok {
			t.Fatalf("unknown workload %q", run.Workload)
		}
		specs[i] = exp.RunSpec{Workload: wl, Design: run.Design, Ratio16: run.Ratio16}
	}
	results, err := r.ResultsParallelCtx(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := api.Encode(api.NewSweep(results))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// outcomeSweepBytes assembles the distributed wire document from shard
// outcomes, as the serve layer does.
func outcomeSweepBytes(t *testing.T, outs []RunOutcome) []byte {
	t.Helper()
	doc := api.Sweep{Schema: api.SchemaVersion, Results: make([]api.Result, len(outs))}
	for i, o := range outs {
		if o.Err != "" {
			t.Fatalf("run %d failed: %s", i, o.Err)
		}
		doc.Results[i] = o.Result
	}
	data, err := api.Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoopbackSweepByteIdentity is the core determinism guarantee: a
// sweep sharded across four loopback runners merges to the exact bytes
// of a single-process run, and progress reporting stays monotonic.
func TestLoopbackSweepByteIdentity(t *testing.T) {
	cfg, runs := testConfig(), testRuns()
	want := localSweepBytes(t, cfg, runs)

	c := NewCoordinator(CoordinatorOptions{ShardSize: 2, MaxInFlight: 1})
	c.AttachLoopback(4, 1)
	var mu sync.Mutex
	var dones []int
	outs, err := c.Run(context.Background(), cfg, runs, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(runs) {
			t.Errorf("progress total = %d, want %d", total, len(runs))
		}
		dones = append(dones, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := outcomeSweepBytes(t, outs)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed sweep bytes differ from local:\nlocal: %s\ndistributed: %s", want, got)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatalf("progress not strictly increasing: %v", dones)
		}
	}
	if len(dones) == 0 || dones[len(dones)-1] != len(runs) {
		t.Fatalf("final progress %v, want last = %d", dones, len(runs))
	}
	st := c.Stats()
	if st.ShardsCompleted == 0 || st.RunnersLive != 4 {
		t.Fatalf("stats after run: %+v", st)
	}
}

// TestEmptyBatch pins the trivial edge: no runs, no outcomes, no error.
func TestEmptyBatch(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	outs, err := c.Run(context.Background(), testConfig(), nil, nil)
	if err != nil || outs != nil {
		t.Fatalf("empty batch: outs=%v err=%v", outs, err)
	}
}

// TestLocalFallback runs a batch on a coordinator with no runners at
// all: LocalFallback must execute everything in-process, byte-identical
// to a plain local sweep.
func TestLocalFallback(t *testing.T) {
	cfg, runs := testConfig(), testRuns()[:6]
	want := localSweepBytes(t, cfg, runs)
	c := NewCoordinator(CoordinatorOptions{ShardSize: 2, LocalFallback: true, LocalParallelism: 2})
	outs, err := c.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("local-fallback sweep bytes differ from local run")
	}
	if st := c.Stats(); st.LocalShards == 0 {
		t.Fatalf("expected local fallback shards, stats %+v", st)
	}
}

// TestLoopbackExploreByteIdentity routes a design-space search through
// the coordinator's Evaluator and checks the canonical exploration
// document is byte-identical to a single-process search — at single
// fidelity and with multi-fidelity screening.
func TestLoopbackExploreByteIdentity(t *testing.T) {
	base := dse.Options{
		Families:     []string{"H2DSE"},
		Workloads:    []string{"mcf"},
		Budget:       6,
		BatchSize:    2,
		Seed:         7,
		InstrPerCore: 20_000,
		MaxPerParam:  3,
		Parallelism:  2,
	}
	for _, tc := range []struct {
		name   string
		screen uint64
	}{{"full-fidelity", 0}, {"screened", 8_000}} {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			opts.ScreenInstrPerCore = tc.screen
			local, err := dse.Search(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := api.Encode(local.APIDoc())
			if err != nil {
				t.Fatal(err)
			}

			c := NewCoordinator(CoordinatorOptions{ShardSize: 2, MaxInFlight: 1})
			c.AttachLoopback(3, 1)
			opts.Eval = c.Evaluator()
			dist, err := dse.Search(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := api.Encode(dist.APIDoc())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("distributed exploration differs from local:\nlocal: %s\ndistributed: %s", want, got)
			}
			if st := c.Stats(); st.ShardsCompleted == 0 {
				t.Fatalf("evaluator never dispatched shards: %+v", st)
			}
		})
	}
}

// gateTransport blocks every shard call until the gate channel closes,
// then executes normally — a deterministic straggler. took (optional) is
// invoked on entry, before blocking, so a test can observe that the
// straggler holds a shard.
type gateTransport struct {
	inner transport
	gate  chan struct{}
	took  func()
}

func (g gateTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	if g.took != nil {
		g.took()
	}
	select {
	case <-g.gate:
	case <-ctx.Done():
		return ShardResponse{}, ctx.Err()
	}
	return g.inner.runShard(ctx, req)
}

// afterTransport delays every shard call until ready closes — how the
// work-stealing test keeps the fast runner off the queue until the
// straggler holds a shard, making the steal deterministic instead of a
// race against goroutine scheduling.
type afterTransport struct {
	inner transport
	ready <-chan struct{}
}

func (a afterTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	select {
	case <-a.ready:
	case <-ctx.Done():
		return ShardResponse{}, ctx.Err()
	}
	return a.inner.runShard(ctx, req)
}

// TestWorkStealing pins the straggler path: a runner that hangs on its
// shard does not stall the batch — an idle runner steals the in-flight
// shard, the batch completes with byte-identical results, and the
// straggler's late duplicate response is discarded.
func TestWorkStealing(t *testing.T) {
	cfg, runs := testConfig(), testRuns()[:8]
	want := localSweepBytes(t, cfg, runs)

	gate := make(chan struct{})
	stragglerHolds := make(chan struct{})
	c := NewCoordinator(CoordinatorOptions{ShardSize: 1, MaxInFlight: 1, MaxSteals: 1})
	c.join(&runnerHandle{
		id:   "straggler",
		addr: "loopback",
		transport: gateTransport{
			inner: loopbackTransport{exec: Exec{Parallelism: 1}},
			gate:  gate,
			took:  sync.OnceFunc(func() { close(stragglerHolds) }),
		},
		loopback: true,
	})
	// The fast runner waits until the straggler holds a shard before
	// touching the queue; otherwise it can drain all eight shards before
	// the straggler's worker is ever scheduled and there is nothing to
	// steal.
	c.join(&runnerHandle{
		id:        "fast",
		addr:      "loopback",
		transport: afterTransport{inner: loopbackTransport{exec: Exec{Parallelism: 1}}, ready: stragglerHolds},
		loopback:  true,
	})

	outs, err := c.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("stolen sweep bytes differ from local run")
	}
	st := c.Stats()
	if st.ShardsStolen == 0 {
		t.Fatalf("expected stolen shards, stats %+v", st)
	}
	// Release the straggler; its duplicate completion must be discarded,
	// not double-counted.
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = c.Stats()
		if st.DuplicatesDropped >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("straggler's duplicate never settled, stats %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("results mutated by the late duplicate")
	}
}

// failTransport refuses every call — a runner whose process died.
type failTransport struct{}

func (failTransport) runShard(context.Context, ShardRequest) (ShardResponse, error) {
	return ShardResponse{}, errors.New("connection refused")
}

// dyingTransport completes a fixed number of shards, then fails forever
// — a runner killed mid-batch.
type dyingTransport struct {
	inner    transport
	mu       sync.Mutex
	survives int
}

func (d *dyingTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	d.mu.Lock()
	alive := d.survives > 0
	d.survives--
	d.mu.Unlock()
	if !alive {
		return ShardResponse{}, errors.New("runner killed")
	}
	return d.inner.runShard(ctx, req)
}

// TestRunnerDeathRedispatch kills a runner mid-batch (one completed
// shard, then hard failure): the coordinator must expel it, re-dispatch
// its work to the survivor, and still produce byte-identical output.
func TestRunnerDeathRedispatch(t *testing.T) {
	cfg, runs := testConfig(), testRuns()
	want := localSweepBytes(t, cfg, runs)

	c := NewCoordinator(CoordinatorOptions{
		ShardSize: 2, MaxInFlight: 1, FailuresToDrop: 1, RetryBackoff: time.Millisecond,
	})
	c.join(&runnerHandle{
		id:        "dying",
		addr:      "loopback",
		transport: &dyingTransport{inner: loopbackTransport{exec: Exec{Parallelism: 1}}, survives: 1},
		loopback:  true,
	})
	c.join(&runnerHandle{
		id:        "survivor",
		addr:      "loopback",
		transport: loopbackTransport{exec: Exec{Parallelism: 1}},
		loopback:  true,
	})

	outs, err := c.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("post-failure sweep bytes differ from local run")
	}
	st := c.Stats()
	if st.RunnersDropped == 0 {
		t.Fatalf("dying runner was never dropped, stats %+v", st)
	}
	if st.ShardsRetried == 0 && st.ShardsStolen == 0 {
		t.Fatalf("no re-dispatch recorded, stats %+v", st)
	}
	if st.RunnersLive != 1 {
		t.Fatalf("live runners = %d, want 1, stats %+v", st.RunnersLive, st)
	}
}

// flakyTransport drops (errors) every other response — lost RPC replies
// on an otherwise healthy runner.
type flakyTransport struct {
	inner transport
	mu    sync.Mutex
	calls int
}

func (f *flakyTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	f.mu.Lock()
	f.calls++
	drop := f.calls%2 == 1
	f.mu.Unlock()
	if drop {
		return ShardResponse{}, errors.New("response lost")
	}
	return f.inner.runShard(ctx, req)
}

// TestDroppedResponsesRetry pins the retry path: a runner losing half
// its replies still converges to byte-identical output, without being
// expelled.
func TestDroppedResponsesRetry(t *testing.T) {
	cfg, runs := testConfig(), testRuns()[:8]
	want := localSweepBytes(t, cfg, runs)

	c := NewCoordinator(CoordinatorOptions{
		ShardSize: 2, MaxInFlight: 1, MaxSteals: -1,
		FailuresToDrop: 100, MaxAttempts: 100, RetryBackoff: time.Millisecond,
	})
	c.join(&runnerHandle{
		id:        "flaky",
		addr:      "loopback",
		transport: &flakyTransport{inner: loopbackTransport{exec: Exec{Parallelism: 2}}},
		loopback:  true,
	})

	outs, err := c.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("flaky sweep bytes differ from local run")
	}
	st := c.Stats()
	if st.ShardsRetried == 0 {
		t.Fatalf("expected retried shards, stats %+v", st)
	}
	if st.RunnersDropped != 0 {
		t.Fatalf("flaky runner wrongly dropped, stats %+v", st)
	}
}

// TestShardExhaustsAttempts pins the give-up path: with every runner
// broken and no fallback, the batch must fail with a shard-attribution
// error instead of hanging.
func TestShardExhaustsAttempts(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		ShardSize: 2, MaxAttempts: 2, FailuresToDrop: 100, RetryBackoff: time.Millisecond,
	})
	c.join(&runnerHandle{id: "broken", addr: "loopback", transport: failTransport{}, loopback: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Run(ctx, testConfig(), testRuns()[:4], nil)
	if err == nil || ctx.Err() != nil {
		t.Fatalf("want attempt-budget failure, got err=%v ctx=%v", err, ctx.Err())
	}
}

// TestPerRunErrors checks malformed runs ride the outcome Err slots
// while healthy runs of the same shard still complete.
func TestPerRunErrors(t *testing.T) {
	cfg := testConfig()
	runs := []Run{
		{Design: "Baseline", Workload: "mcf", Ratio16: 1},
		{Design: "Baseline", Workload: "no-such-workload", Ratio16: 1},
		{Design: "no-such-design", Workload: "mcf", Ratio16: 1},
	}
	c := NewCoordinator(CoordinatorOptions{ShardSize: 4})
	c.AttachLoopback(1, 1)
	outs, err := c.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != "" || outs[0].Result.Cycles == 0 {
		t.Fatalf("healthy run failed: %+v", outs[0])
	}
	if outs[1].Err == "" || outs[2].Err == "" {
		t.Fatalf("bad runs did not error: %+v %+v", outs[1], outs[2])
	}
}

// TestVersionMismatch pins the skew protection on both RPC directions.
func TestVersionMismatch(t *testing.T) {
	req := ShardRequest{Proto: ProtoVersion + 1, Schema: api.SchemaVersion, Engine: api.EngineVersion,
		Config: testConfig(), Runs: testRuns()[:1]}
	if _, err := (Exec{}).RunShard(context.Background(), req); err == nil {
		t.Fatal("runner accepted a proto-skewed shard")
	}

	c := NewCoordinator(CoordinatorOptions{})
	body, _ := json.Marshal(joinRequest{Proto: ProtoVersion, Schema: api.SchemaVersion + 1,
		Engine: api.EngineVersion, ID: "x", Addr: "http://127.0.0.1:1"})
	rec := httptest.NewRecorder()
	c.HandleJoin(rec, httptest.NewRequest(http.MethodPost, "/cluster/v1/join", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("schema-skewed join answered %d, want 400", rec.Code)
	}
	if st := c.Stats(); st.RunnersLive != 0 {
		t.Fatalf("skewed runner registered: %+v", st)
	}
}

// TestHTTPClusterEndToEnd drives the real wire path: a coordinator
// behind an HTTP mux, two ServeNode runner processes that join and
// heartbeat, a sweep dispatched over sockets, then a hard runner kill
// followed by re-dispatch to the survivor.
func TestHTTPClusterEndToEnd(t *testing.T) {
	cfg, runs := testConfig(), testRuns()
	want := localSweepBytes(t, cfg, runs)

	c := NewCoordinator(CoordinatorOptions{
		ShardSize: 2, MaxInFlight: 1,
		HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: time.Second,
		RPCTimeout: 30 * time.Second, FailuresToDrop: 1, RetryBackoff: time.Millisecond,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/join", c.HandleJoin)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.HandleHeartbeat)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCtx, kill := context.WithCancel(ctx)
	defer kill()
	addrs := make(chan string, 2)
	nodeErr := make(chan error, 2)
	go func() {
		nodeErr <- ServeNode(killCtx, NodeOptions{Join: ts.URL, ID: "r1", Parallelism: 1,
			OnListen: func(a string) { addrs <- a }})
	}()
	go func() {
		nodeErr <- ServeNode(ctx, NodeOptions{Join: ts.URL, ID: "r2", Parallelism: 1,
			OnListen: func(a string) { addrs <- a }})
	}()
	r1Addr := <-addrs
	<-addrs

	waitFor(t, 10*time.Second, func() bool { return c.Stats().RunnersLive == 2 })

	// Runner health reports coordinator attachment.
	var health struct {
		Status      string `json:"status"`
		Role        string `json:"role"`
		Coordinator string `json:"coordinator"`
		Attached    bool   `json:"attached"`
	}
	waitFor(t, 10*time.Second, func() bool {
		resp, err := http.Get("http://" + r1Addr + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			return false
		}
		return health.Attached
	})
	if health.Role != "runner" || health.Coordinator != ts.URL || health.Status != "ok" {
		t.Fatalf("runner health = %+v", health)
	}

	outs, err := c.Run(ctx, cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("HTTP sweep bytes differ from local run")
	}

	// Kill runner 1 (its HTTP server and heartbeats die with its ctx) and
	// run again: the coordinator must expel it on RPC failure or
	// heartbeat expiry and finish on the survivor, byte-identically.
	kill()
	if err := <-nodeErr; err != nil {
		t.Fatalf("killed runner exited with %v", err)
	}
	outs, err = c.Run(ctx, cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeSweepBytes(t, outs); !bytes.Equal(got, want) {
		t.Fatal("post-kill sweep bytes differ from local run")
	}
	waitFor(t, 10*time.Second, func() bool { return c.Stats().RunnersLive == 1 })
	if st := c.Stats(); st.RunnersDropped == 0 {
		t.Fatalf("killed runner never dropped: %+v", st)
	}
}

// TestHeartbeatExpiry checks a silent runner is pruned even while no
// batch is running (the serve layer's /metrics reads liveness between
// jobs), via the stats-path prune in Stats' callers.
func TestHeartbeatExpiry(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		HeartbeatInterval: 10 * time.Millisecond, HeartbeatTimeout: 50 * time.Millisecond,
	})
	c.Join("ghost", "http://127.0.0.1:1")
	if got := c.Stats().RunnersLive; got != 1 {
		t.Fatalf("live after join = %d, want 1", got)
	}
	if !c.Heartbeat("ghost") {
		t.Fatal("heartbeat for a registered runner refused")
	}
	time.Sleep(80 * time.Millisecond)
	c.pruneExpired()
	if got := c.Stats().RunnersLive; got != 0 {
		t.Fatalf("live after expiry = %d, want 0", got)
	}
	if c.Heartbeat("ghost") {
		t.Fatal("heartbeat for an expired runner accepted; it must rejoin")
	}
}

// TestDistributedSweepSpeedup measures the wall-clock benefit of the
// execution plane itself: the same sweep through one loopback runner
// versus four (each single-threaded) must be at least twice as fast on
// a machine with >= 4 CPUs. Skipped on smaller machines — determinism
// tests above cover correctness there; BenchmarkDistributedSweep gives
// the comparison on any machine.
func TestDistributedSweepSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup test, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	cfg := Config{Scale: 16, InstrPerCore: 120_000, Seed: 1}
	var runs []Run
	for _, d := range []string{"Baseline", "MPOD", "CHA", "DFC-256", "IDEAL-256", "TAGLESS"} {
		for _, w := range []string{"mcf", "lbm", "omnetpp", "bwaves"} {
			runs = append(runs, Run{Design: d, Workload: w, Ratio16: 1})
		}
	}
	elapsed := func(n int) time.Duration {
		c := NewCoordinator(CoordinatorOptions{ShardSize: 1, MaxInFlight: 1, MaxSteals: -1})
		c.AttachLoopback(n, 1)
		start := time.Now()
		if _, err := c.Run(context.Background(), cfg, runs, nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	par := elapsed(4)
	speedup := float64(serial) / float64(par)
	t.Logf("1 runner %v, 4 runners %v, speedup %.2fx on %d CPUs", serial, par, speedup, runtime.NumCPU())
	if speedup < 2 {
		t.Errorf("distributed sweep speedup %.2fx, want >= 2x on %d CPUs", speedup, runtime.NumCPU())
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
