package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// expoFamily is one parsed metric family of an exposition document.
type expoFamily struct {
	name    string
	typ     string
	hasHelp bool
	series  map[string]float64 // rendered series identity -> value
}

// Lint validates a Prometheus text exposition (version 0.0.4): every
// sample belongs to a family declared with # HELP and # TYPE lines,
// family names are unique and their samples contiguous, metric and
// label names are well-formed, label values are correctly escaped,
// values parse as finite floats, and no series repeats. It is applied
// to registry unit tests and to live server scrapes in CI.
func Lint(data []byte) error {
	_, err := parseExposition(data)
	return err
}

// LintMonotonic checks the counter contract across two scrapes of the
// same target: every counter series present in both must not decrease.
// Summary _count and _sum series are held to the same standard.
func LintMonotonic(prev, cur []byte) error {
	pf, err := parseExposition(prev)
	if err != nil {
		return fmt.Errorf("first scrape: %w", err)
	}
	cf, err := parseExposition(cur)
	if err != nil {
		return fmt.Errorf("second scrape: %w", err)
	}
	names := make([]string, 0, len(pf))
	for name := range pf {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := pf[name]
		c, ok := cf[name]
		if !ok {
			continue
		}
		for series, pv := range p.series {
			cv, ok := c.series[series]
			if !ok {
				continue
			}
			monotonic := p.typ == "counter" ||
				(p.typ == "summary" && (strings.Contains(series, "_count") || strings.Contains(series, "_sum")))
			if monotonic && cv < pv {
				return fmt.Errorf("counter %s decreased across scrapes: %v -> %v", series, pv, cv)
			}
		}
	}
	return nil
}

// parseExposition parses one exposition document into families,
// validating format rules as it goes.
func parseExposition(data []byte) (map[string]*expoFamily, error) {
	families := make(map[string]*expoFamily)
	var cur *expoFamily             // family whose sample block is open
	closed := make(map[string]bool) // families whose sample block ended
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			f := families[name]
			if f == nil {
				f = &expoFamily{name: name, series: make(map[string]float64)}
				families[name] = f
			}
			switch kind {
			case "HELP":
				if f.hasHelp {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.hasHelp = true
			case "TYPE":
				if f.typ != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.series) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "summary", "histogram", "untyped":
					f.typ = rest
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := familyOf(families, name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %s has no # HELP/# TYPE declaration", lineNo, name)
		}
		if !f.hasHelp || f.typ == "" {
			return nil, fmt.Errorf("line %d: family %s is missing %s", lineNo, f.name, missingDecl(f))
		}
		if cur != f {
			if closed[f.name] {
				return nil, fmt.Errorf("line %d: samples of %s are not contiguous", lineNo, f.name)
			}
			if cur != nil {
				closed[cur.name] = true
			}
			cur = f
		}
		series := name + labels
		if _, dup := f.series[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		f.series[series] = value
	}
	return families, nil
}

func missingDecl(f *expoFamily) string {
	switch {
	case !f.hasHelp && f.typ == "":
		return "# HELP and # TYPE"
	case !f.hasHelp:
		return "# HELP"
	default:
		return "# TYPE"
	}
}

// familyOf resolves a sample name to its declared family, accounting
// for the _sum/_count suffixes of summaries and histograms (and the
// _bucket suffix of histograms).
func familyOf(families map[string]*expoFamily, name string) *expoFamily {
	if f, ok := families[name]; ok {
		return f
	}
	for _, suffix := range [...]string{"_sum", "_count", "_bucket"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, ok := families[base]; ok && (f.typ == "summary" || f.typ == "histogram") {
			if suffix == "_bucket" && f.typ != "histogram" {
				return nil
			}
			return f
		}
	}
	return nil
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line.
func parseComment(line string) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", nil // bare comment
	}
	fields := strings.SplitN(body, " ", 3)
	if fields[0] != "HELP" && fields[0] != "TYPE" {
		return "", "", "", nil
	}
	if len(fields) < 3 {
		return "", "", "", fmt.Errorf("malformed %s line %q", fields[0], line)
	}
	if !validMetricName(fields[1]) {
		return "", "", "", fmt.Errorf("invalid metric name %q", fields[1])
	}
	return fields[0], fields[1], fields[2], nil
}

// parseSample splits one sample line into name, canonical label string
// and value, validating names, escaping and the value format.
func parseSample(line string) (name, labels string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, lerr := parseLabels(rest)
		if lerr != nil {
			return "", "", 0, fmt.Errorf("sample %s: %w", name, lerr)
		}
		labels = rest[:end+1]
		rest = rest[end+1:]
		if rest == "" || rest[0] != ' ' {
			return "", "", 0, fmt.Errorf("sample %s: missing value", name)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("sample %s: malformed value %q", name, rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return "", "", 0, fmt.Errorf("sample %s: non-finite value %q", name, fields[0])
	}
	return name, labels, value, nil
}

// parseLabels validates a {k="v",...} block starting at s[0] == '{' and
// returns the index of the closing brace.
func parseLabels(s string) (int, error) {
	i := 1
	seen := make(map[string]bool)
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("malformed label block %q", s)
		}
		key := s[i : i+j]
		if !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		if seen[key] {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		seen[key] = true
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q: value is not quoted", key)
		}
		i++
		for { // scan the quoted value, honoring escapes
			if i >= len(s) {
				return 0, fmt.Errorf("label %q: unterminated value", key)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %q: dangling escape", key)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i += 2
				default:
					return 0, fmt.Errorf("label %q: invalid escape \\%c", key, s[i+1])
				}
			case '"':
				i++
				goto valueDone
			default:
				i++
			}
		}
	valueDone:
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
