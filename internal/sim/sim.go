// Package sim wires the interval cores, the shared LLC and one memory
// organization together and runs a workload to completion, producing the
// per-run metrics every figure of the paper is built from.
package sim

import (
	"hybridmem/internal/cachesim"
	"hybridmem/internal/config"
	"hybridmem/internal/cpu"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/stats"
	"hybridmem/internal/workload"
)

// Result holds the measurements of one (workload, design) run.
type Result struct {
	Workload string
	Design   string

	Cycles       memtypes.Tick
	Instructions uint64
	IPC          float64

	LLCAccesses uint64
	LLCMisses   uint64
	MPKI        float64

	Mem memtypes.MemStats // copy of the design's traffic counters

	NMEnergyNJ float64
	FMEnergyNJ float64

	// Demand read-miss latency distribution (cycles), as seen by the
	// cores: mean and percentiles from a log2-bucketed stats.Histogram.
	LatMean float64
	LatP50  memtypes.Tick
	LatP99  memtypes.Tick
}

// ServedNMFrac returns the fraction of memory requests served from NM.
func (r Result) ServedNMFrac() float64 {
	if r.Mem.Requests == 0 {
		return 0
	}
	return float64(r.Mem.ServedNM) / float64(r.Mem.Requests)
}

// DynamicEnergyNJ returns total dynamic memory energy.
func (r Result) DynamicEnergyNJ() float64 { return r.NMEnergyNJ + r.FMEnergyNJ }

// Source yields one core's trace records: gap non-memory instructions
// followed by a 64 B access. Implemented by workload.Stream and by
// trace.Replayer.
type Source interface {
	Next() (gap uint64, addr memtypes.Addr, write bool, ok bool)
}

// MLPFor derives the effective memory-level parallelism from a workload's
// spatial behaviour: streaming workloads keep many independent misses in
// flight, pointer-chasing ones serialize on dependent loads. Trace
// replays of a synthetic workload must pass the same value to RunSources
// to reproduce the direct run.
func MLPFor(spec workload.Spec) int {
	mlp := int(1 + spec.SeqRun/4)
	if mlp < 1 {
		mlp = 1
	}
	if mlp > 8 {
		mlp = 8
	}
	return mlp
}

// Run executes spec on the given memory system. nm and fm are the devices
// the design was built over (nm may be nil for the no-NM baseline); they
// are only read for energy accounting.
func Run(spec workload.Spec, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System) Result {
	srcs := make([]Source, config.Cores)
	for i := range srcs {
		srcs[i] = workload.NewStream(spec, i, sys.Scale, sys.InstrPerCore, sys.Seed)
	}
	return RunSources(spec.Name, srcs, MLPFor(spec), ms, nm, fm, sys)
}

// RunSources executes one explicit trace source per core — the entry
// point for replaying captured traces. mlp bounds each core's overlapped
// misses.
func RunSources(name string, srcs []Source, mlp int, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System) Result {
	llc := cachesim.New(sys.LLCBytes, config.LLCAssoc, memtypes.CPULineBytes)
	var lat stats.Histogram

	n := len(srcs)
	cores := make([]*cpu.Core, n)
	streams := srcs
	active := n
	done := make([]bool, n)
	for i := range cores {
		cores[i] = cpu.New(config.IssueWidth, mlp)
	}

	for active > 0 {
		// Advance the earliest core: keeps memory-system calls in
		// near-time order so device contention is modeled consistently.
		sel := -1
		for i, c := range cores {
			if done[i] {
				continue
			}
			if sel < 0 || c.Time < cores[sel].Time {
				sel = i
			}
		}
		c := cores[sel]
		gap, addr, write, ok := streams[sel].Next()
		if !ok {
			c.DrainMisses()
			done[sel] = true
			active--
			continue
		}
		c.AdvanceCompute(gap)
		c.RetireMemOp()
		c.AddLatency(config.LLCLatency)
		hit, victim, evicted := llc.Access(addr, write)
		if !hit {
			// Write-allocate: the fill is a read either way. Loads stall
			// the core through the MSHRs; stores retire through the
			// write buffer, which applies backpressure when full.
			fill := ms.Access(c.Time, addr, false)
			if write {
				c.StallForWrite(fill)
			} else {
				lat.Add(uint64(fill - c.Time))
				c.StallForMiss(fill)
			}
		}
		if evicted && victim.Dirty {
			c.StallForWrite(ms.Access(c.Time, victim.Addr, true))
		}
		if !hit && sys.NextLinePrefetch {
			// Next-line prefetch: fill addr+64 if absent; the fill does
			// not stall the core, and its dirty victim writes back.
			next := addr + memtypes.CPULineBytes
			if pHit, pVictim, pEvicted := llc.Access(next, false); !pHit {
				ms.Access(c.Time, next, false)
				if pEvicted && pVictim.Dirty {
					ms.Access(c.Time, pVictim.Addr, true)
				}
			}
		}
	}

	var cycles memtypes.Tick
	var instr uint64
	for _, c := range cores {
		if c.Time > cycles {
			cycles = c.Time
		}
		instr += c.Instructions
	}
	ms.Finish(cycles)

	res := Result{
		Workload:     name,
		Design:       ms.Name(),
		Cycles:       cycles,
		Instructions: instr,
		LLCAccesses:  llc.Accesses,
		LLCMisses:    llc.Misses,
		Mem:          *ms.Stats(),
	}
	if cycles > 0 {
		res.IPC = float64(instr) / float64(cycles)
	}
	if instr > 0 {
		res.MPKI = float64(llc.Misses) / (float64(instr) / 1000)
	}
	if nm != nil {
		res.NMEnergyNJ = nm.DynamicEnergyNanoJ()
	}
	if fm != nil {
		res.FMEnergyNJ = fm.DynamicEnergyNanoJ()
	}
	res.LatMean = lat.Mean()
	res.LatP50 = memtypes.Tick(lat.Percentile(0.50))
	res.LatP99 = memtypes.Tick(lat.Percentile(0.99))
	return res
}
