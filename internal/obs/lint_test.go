package obs

import (
	"strings"
	"testing"
)

func TestLintAcceptsCanonical(t *testing.T) {
	good := strings.Join([]string{
		"# HELP a_total Things.",
		"# TYPE a_total counter",
		"a_total 3",
		"# HELP b_us Latency.",
		"# TYPE b_us summary",
		`b_us{quantile="0.5"} 10`,
		`b_us{quantile="0.9"} 20`,
		"b_us_sum 30",
		"b_us_count 2",
		"# HELP c_inflight In flight.",
		"# TYPE c_inflight gauge",
		`c_inflight{runner="a b",zone="x\"y\\z"} 1`,
		"",
	}, "\n")
	if err := Lint([]byte(good)); err != nil {
		t.Fatalf("canonical exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no declaration", "a_total 1\n"},
		{"missing TYPE", "# HELP a_total x.\na_total 1\n"},
		{"missing HELP", "# TYPE a_total counter\na_total 1\n"},
		{"duplicate TYPE", "# HELP a x.\n# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"duplicate series", "# HELP a x.\n# TYPE a counter\na 1\na 2\n"},
		{"duplicate labeled series", "# HELP a x.\n# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n"},
		{"bad metric name", "# HELP a-b x.\n# TYPE a-b counter\na-b 1\n"},
		{"bad value", "# HELP a x.\n# TYPE a counter\na one\n"},
		{"NaN value", "# HELP a x.\n# TYPE a gauge\na NaN\n"},
		{"bad escape", "# HELP a x.\n# TYPE a counter\na{k=\"v\\q\"} 1\n"},
		{"unquoted label", "# HELP a x.\n# TYPE a counter\na{k=v} 1\n"},
		{"duplicate label", "# HELP a x.\n# TYPE a counter\na{k=\"1\",k=\"2\"} 1\n"},
		{"reserved label", "# HELP a x.\n# TYPE a counter\na{__k=\"1\"} 1\n"},
		{"unknown type", "# HELP a x.\n# TYPE a widget\na 1\n"},
		{"interleaved families", "# HELP a x.\n# TYPE a counter\n# HELP b x.\n# TYPE b counter\na 1\nb 1\na{k=\"v\"} 1\n"},
	}
	for _, tc := range cases {
		if err := Lint([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.in)
		}
	}
}

func TestLintMonotonic(t *testing.T) {
	mk := func(v string) []byte {
		return []byte("# HELP a_total x.\n# TYPE a_total counter\na_total " + v + "\n" +
			"# HELP g x.\n# TYPE g gauge\ng 100\n")
	}
	if err := LintMonotonic(mk("1"), mk("5")); err != nil {
		t.Fatalf("increasing counter flagged: %v", err)
	}
	if err := LintMonotonic(mk("5"), mk("1")); err == nil {
		t.Fatal("decreasing counter accepted")
	}
	// Gauges may decrease freely.
	down := []byte("# HELP g x.\n# TYPE g gauge\ng 1\n")
	up := []byte("# HELP g x.\n# TYPE g gauge\ng 100\n")
	if err := LintMonotonic(up, down); err != nil {
		t.Fatalf("decreasing gauge flagged: %v", err)
	}
	// Summary _count must not decrease.
	sum := func(c string) []byte {
		return []byte("# HELP s x.\n# TYPE s summary\ns_sum 10\ns_count " + c + "\n")
	}
	if err := LintMonotonic(sum("5"), sum("3")); err == nil {
		t.Fatal("decreasing summary count accepted")
	}
}
