// Package exp defines the paper's experiments: one function per table and
// figure of the evaluation (Figures 1-2, Table 1-2, Figures 11-18), shared
// by cmd/experiments and the benchmark harness. A Runner memoizes
// (workload, design, NM-ratio) runs so figures built from the same sweep
// (12, 13, 15-18) reuse results.
package exp

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hybridmem/internal/baselines/banshee"
	"hybridmem/internal/baselines/cameo"
	"hybridmem/internal/baselines/chameleon"
	"hybridmem/internal/baselines/dramcache"
	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/baselines/footprint"
	"hybridmem/internal/baselines/lgm"
	"hybridmem/internal/baselines/mempod"
	"hybridmem/internal/baselines/silcfm"
	"hybridmem/internal/config"
	"hybridmem/internal/core"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// MainDesigns are the six designs of Figures 12-18, in the paper's order.
var MainDesigns = []string{"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"}

// ExtraDesigns are related-work designs from the paper's §2 that are not
// part of its evaluation figures but are implemented for completeness:
// CAMEO (line-granularity group migration), ALLOY (direct-mapped TAD
// cache) and FOOTPRINT (predicted-footprint page cache).
var ExtraDesigns = []string{"CAMEO", "POM", "SILC-FM", "ALLOY", "FOOTPRINT", "BANSHEE"}

// Runner executes and memoizes simulation runs.
type Runner struct {
	Scale        int
	InstrPerCore uint64
	Seed         uint64
	// Prefetch enables the LLC next-line prefetcher for all runs.
	Prefetch bool
	// Workload subset; nil means all 30.
	Subset []workload.Spec

	cache map[string]sim.Result
}

// NewRunner returns a runner at the default scale and instruction budget.
func NewRunner() *Runner {
	return &Runner{Scale: config.DefaultScale, InstrPerCore: 1_000_000, Seed: 1}
}

// NewQuickRunner returns a reduced-cost runner (shorter streams, one
// third of the workloads) for smoke runs and benchmarks.
func NewQuickRunner() *Runner {
	r := NewRunner()
	r.InstrPerCore = 250_000
	all := workload.Specs()
	for i := 0; i < len(all); i += 3 {
		r.Subset = append(r.Subset, all[i])
	}
	return r
}

// Workloads returns the workloads this runner sweeps.
func (r *Runner) Workloads() []workload.Spec {
	if r.Subset != nil {
		return r.Subset
	}
	return workload.Specs()
}

// system resolves the scaled system for an NM:FM ratio of ratio16:16.
func (r *Runner) system(ratio16 int) config.System {
	sys := config.Scaled(r.Scale, ratio16)
	sys.InstrPerCore = r.InstrPerCore
	sys.Seed = r.Seed
	sys.NextLinePrefetch = r.Prefetch
	return sys
}

// build constructs a design by name over fresh devices. Recognized names:
//
//	Baseline                 no NM
//	MPOD | CHA | LGM         migration schemes of the paper's evaluation
//	CAMEO | POM | SILC-FM    related-work migration schemes (§2.2)
//	BANSHEE                  frequency-gated page cache (§2.1)
//	TAGLESS                  tagless DRAM cache (4 KB pages)
//	ALLOY                    direct-mapped TAD cache (64 B lines)
//	FOOTPRINT                footprint cache (2 KB pages, predicted fills)
//	DFC | DFC-<line>         decoupled fused cache (default 1 KB lines)
//	IDEAL-<line>             ideal cache at a line size
//	HYBRID2                  the full design
//	H2-CacheOnly | H2-MigrAll | H2-MigrNone | H2-NoRemap   ablations
//	H2DSE-<cacheMB>-<sectorKB>-<line>                      Fig. 11 points
func (r *Runner) build(name string, sys config.System) (memtypes.MemorySystem, *memsys.Device, *memsys.Device) {
	fm := memsys.New(memsys.DDR4Config())
	if name == "Baseline" {
		return flat.NewFMOnly(fm), nil, fm
	}
	nm := memsys.New(memsys.HBM2Config())
	remapEntries := int(sys.Hybrid2CacheBytes() / config.SectorBytes)

	switch {
	case name == "MPOD":
		cfg := mempod.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		// The cap matches the paper's per-run NM turnover: shortened runs
		// get proportionally more migrations per (scaled) interval.
		cfg.MaxMigrations = 16
		cfg.MinCount = 3
		return mempod.New(cfg, nm, fm), nm, fm
	case name == "CHA":
		return chameleon.New(chameleon.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), remapEntries, sys.Seed), nm, fm), nm, fm
	case name == "LGM":
		cfg := lgm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		cfg.Watermark = 32
		return lgm.New(cfg, nm, fm), nm, fm
	case name == "CAMEO":
		return cameo.New(cameo.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm
	case name == "POM":
		return chameleon.New(chameleon.PoM(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm
	case name == "SILC-FM":
		return silcfm.New(silcfm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm
	case name == "BANSHEE":
		return banshee.New(banshee.Default(sys.NMBytes), nm, fm), nm, fm
	case name == "TAGLESS":
		return dramcache.New(dramcache.Tagless(sys.NMBytes), nm, fm), nm, fm
	case name == "ALLOY":
		return dramcache.New(dramcache.Alloy(sys.NMBytes), nm, fm), nm, fm
	case name == "FOOTPRINT":
		return footprint.New(footprint.Default(sys.NMBytes), nm, fm), nm, fm
	case name == "DFC":
		return dramcache.New(dramcache.DFC(sys.NMBytes, 1024), nm, fm), nm, fm
	case strings.HasPrefix(name, "DFC-"):
		line := mustInt(name[len("DFC-"):])
		return dramcache.New(dramcache.DFC(sys.NMBytes, line), nm, fm), nm, fm
	case strings.HasPrefix(name, "IDEAL-"):
		line := mustInt(name[len("IDEAL-"):])
		return dramcache.New(dramcache.Ideal(sys.NMBytes, line), nm, fm), nm, fm
	case name == "HYBRID2":
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		return core.New(cfg, nm, fm), nm, fm
	case strings.HasPrefix(name, "H2-"):
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch name[len("H2-"):] {
		case "CacheOnly":
			cfg.Mode = core.CacheOnly
		case "MigrAll":
			cfg.Mode = core.MigrateAll
		case "MigrNone":
			cfg.Mode = core.MigrateNone
		case "NoRemap":
			cfg.Mode = core.NoRemapOverhead
		default:
			panic("exp: unknown Hybrid2 mode " + name)
		}
		return core.New(cfg, nm, fm), nm, fm
	case strings.HasPrefix(name, "H2ABL-"):
		parts := strings.SplitN(name[len("H2ABL-"):], "-", 2)
		if len(parts) != 2 {
			panic("exp: bad ablation design " + name)
		}
		knob, val := parts[0], mustInt(parts[1])
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch knob {
		case "ctr": // access-counter width in bits (§3.7.1, paper: 9)
			cfg.CounterBits = val
		case "reset": // FM budget reset period in paper cycles (§3.7.3)
			cfg.FMBudgetReset = memtypes.Tick(val / sys.Scale)
		case "stack": // on-chip Free-FM-Stack entries (§3.3, paper: 16)
			cfg.FreeStackOnChip = val
		case "assoc": // XTA associativity (paper: 16)
			cfg.Assoc = val
		case "free": // §3.8 extension with val/1000 of memory hinted free
			cfg.FreeSpaceAware = true
			h := core.New(cfg, nm, fm)
			total := uint64(h.Sectors()) * uint64(cfg.SectorBytes)
			freeBytes := total * uint64(val) / 1000
			h.MarkFree(memtypes.Addr(total-freeBytes), freeBytes)
			return h, nm, fm
		default:
			panic("exp: unknown ablation knob " + knob)
		}
		return core.New(cfg, nm, fm), nm, fm
	case strings.HasPrefix(name, "H2DSE-"):
		parts := strings.Split(name[len("H2DSE-"):], "-")
		if len(parts) != 3 {
			panic("exp: bad DSE design " + name)
		}
		cacheMB, sectorKB, line := mustInt(parts[0]), mustInt(parts[1]), mustInt(parts[2])
		cfg := core.Default(sys.NMBytes, sys.FMBytes, uint64(cacheMB)<<20/uint64(sys.Scale), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		cfg.SectorBytes = sectorKB << 10
		cfg.LineBytes = line
		return core.New(cfg, nm, fm), nm, fm
	}
	panic("exp: unknown design " + name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mustInt(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic("exp: bad integer in design name: " + s)
	}
	return v
}

// Result runs (or recalls) one workload on one design at an NM ratio.
func (r *Runner) Result(wl workload.Spec, design string, ratio16 int) sim.Result {
	if design == "Baseline" {
		ratio16 = 1 // the baseline has no NM; one run serves all ratios
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%v", wl.Name, design, ratio16, r.Seed, r.Prefetch)
	if r.cache == nil {
		r.cache = make(map[string]sim.Result)
	}
	if res, ok := r.cache[key]; ok {
		return res
	}
	sys := r.system(ratio16)
	ms, nm, fm := r.build(design, sys)
	res := sim.Run(wl, ms, nm, fm, sys)
	r.cache[key] = res
	return res
}

// RunTrace replays a captured trace (see internal/trace) on a design at
// an NM ratio. mlp bounds per-core overlapped misses. Trace runs are not
// memoized.
func (r *Runner) RunTrace(name string, rd io.Reader, design string, ratio16, mlp int) (sim.Result, error) {
	tr, err := trace.Read(rd, config.Cores)
	if err != nil {
		return sim.Result{}, err
	}
	srcs := make([]sim.Source, config.Cores)
	for i := range srcs {
		srcs[i] = trace.NewReplayer(tr.Cores[i])
	}
	sys := r.system(ratio16)
	ms, nm, fm := r.build(design, sys)
	return sim.RunSources(name, srcs, mlp, ms, nm, fm, sys), nil
}

// Speedup returns design cycles relative to the no-NM baseline.
func (r *Runner) Speedup(wl workload.Spec, design string, ratio16 int) float64 {
	base := r.Result(wl, "Baseline", 1)
	res := r.Result(wl, design, ratio16)
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// ClassSpeedups collects per-workload speedups of one MPKI class.
func (r *Runner) ClassSpeedups(c workload.Class, design string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		if wl.Class == c {
			out = append(out, r.Speedup(wl, design, ratio16))
		}
	}
	return out
}

// AllSpeedups collects per-workload speedups across all classes.
func (r *Runner) AllSpeedups(design string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		out = append(out, r.Speedup(wl, design, ratio16))
	}
	return out
}
