package store

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"hybridmem/internal/api"
)

// Fingerprint derives a content address from the canonical parts of a
// request: the same parts always produce the same key, and any change
// to a part — including the engine or schema version every caller folds
// in via VersionParts — produces a different one. Parts are
// NUL-separated so concatenation ambiguity cannot alias two requests.
//
// This is the single canonical fingerprint of the repo: the serve
// layer's request/job IDs, the runner's per-simulation records and the
// cluster's shard records all derive their keys from it, so every layer
// addresses the same store entries the same way.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// VersionParts returns the canonical leading fingerprint parts of a
// keyed record kind: the kind name plus the engine and schema versions.
// Bumping either version changes every key, invalidating all persisted
// entries at once — the store's only invalidation mechanism.
func VersionParts(kind string) []string {
	return []string{
		kind,
		"engine=" + strconv.Itoa(api.EngineVersion),
		"schema=" + strconv.Itoa(api.SchemaVersion),
	}
}

// RunKey is the canonical store key of one simulation run — the unit
// the experiment runner memoizes and persists. It covers every input
// that determines a run's result: the design, the workload, the NM:FM
// ratio, and the runner knobs (scale, instruction budget, seed,
// prefetcher) that the in-process memo used to leave implicit.
func RunKey(design, workload string, ratio16, scale int, instrPerCore, seed uint64, prefetch bool) string {
	parts := append(VersionParts("simrun"),
		"design="+design,
		"workload="+workload,
		"ratio16="+strconv.Itoa(ratio16),
		"scale="+strconv.Itoa(scale),
		"instr="+strconv.FormatUint(instrPerCore, 10),
		"seed="+strconv.FormatUint(seed, 10),
		"prefetch="+strconv.FormatBool(prefetch),
	)
	return Fingerprint(parts...)
}
