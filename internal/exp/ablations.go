package exp

import (
	"fmt"

	"hybridmem/internal/core"
	"hybridmem/internal/design"
	"hybridmem/internal/sim"
	"hybridmem/internal/stats"
	"hybridmem/internal/workload"
)

// AblationVariants are the Hybrid2 design-choice sweeps DESIGN.md calls
// out, beyond the paper's own Fig. 11/14 studies: the access-counter
// width, the FM-budget reset period, the on-chip Free-FM-Stack window,
// the XTA associativity, and the §3.8 free-space extension at increasing
// free fractions.
var AblationVariants = []struct {
	Design string
	Label  string
}{
	{"HYBRID2", "reference (9-bit ctr, 100K reset, 16 stack, 16-way)"},
	{"H2ABL-ctr-3", "3-bit access counters"},
	{"H2ABL-ctr-13", "13-bit access counters"},
	{"H2ABL-reset-25000", "budget reset every 25K cycles"},
	{"H2ABL-reset-400000", "budget reset every 400K cycles"},
	{"H2ABL-stack-1", "1 on-chip Free-FM-Stack entry"},
	{"H2ABL-stack-64", "64 on-chip Free-FM-Stack entries"},
	{"H2ABL-assoc-4", "4-way XTA"},
	{"H2ABL-free-250", "25% of memory hinted free (§3.8)"},
	{"H2ABL-free-500", "50% of memory hinted free (§3.8)"},
}

// Ablations evaluates each variant's geometric-mean speedup at the 1:16
// ratio, quantifying the sensitivity of Hybrid2 to its design constants.
func Ablations(r *Runner) (Table, map[string]float64) {
	t := Table{Title: "Ablations: Hybrid2 design-choice sensitivity (1:16 NM)",
		Header: []string{"Variant", "Geomean speedup", "Description"}}
	designs := []string{"Baseline"}
	for _, v := range AblationVariants {
		designs = append(designs, v.Design)
	}
	r.mustSweep(designs, []int{1})
	out := make(map[string]float64, len(AblationVariants))
	for _, v := range AblationVariants {
		g := stats.Geomean(r.AllSpeedups(v.Design, 1))
		out[v.Design] = g
		t.AddRow(v.Design, f3(g), v.Label)
	}
	return t, out
}

// SeedSensitivity reruns the main designs under several seeds (different
// initial page placements and access-stream draws) and reports the
// spread of the overall geomean speedup — a confidence check that the
// reported orderings are not artifacts of one placement.
func SeedSensitivity(r *Runner, seeds []uint64) (Table, map[string][3]float64) {
	t := Table{Title: fmt.Sprintf("Seed sensitivity over %d seeds (1:16 NM)", len(seeds)),
		Header: []string{"Design", "Min", "Mean", "Max"}}
	// One sub-runner per seed, each pre-warmed over the full design set,
	// so the baseline runs once per seed instead of once per (design,
	// seed) pair as the old demand-running loop did.
	subs := make([]*Runner, len(seeds))
	for i, seed := range seeds {
		subs[i] = r.clone()
		subs[i].Seed = seed
		subs[i].mustSweep(withBaseline(MainDesigns), []int{1})
	}
	out := make(map[string][3]float64)
	for _, d := range MainDesigns {
		var gs []float64
		for _, sub := range subs {
			gs = append(gs, stats.Geomean(sub.AllSpeedups(d, 1)))
		}
		v := [3]float64{stats.Min(gs), stats.Mean(gs), stats.Max(gs)}
		out[d] = v
		t.AddRow(d, f3(v[0]), f3(v[1]), f3(v[2]))
	}
	return t, out
}

// ExtrasTable evaluates the §2 related-work designs implemented beyond
// the paper's figures (CAMEO, ALLOY, FOOTPRINT) with the same min/max/
// geomean format as Figure 2, extending the motivation study.
func ExtrasTable(r *Runner) (Table, map[string][3]float64) {
	t := Table{Title: "Extra related-work designs (min/max/geomean speedup, 1:16 NM)",
		Header: []string{"Design", "Min", "Max", "Geomean"}}
	r.mustSweep(withBaseline(ExtraDesigns), []int{1})
	out := make(map[string][3]float64)
	for _, d := range ExtraDesigns {
		sp := r.AllSpeedups(d, 1)
		v := [3]float64{stats.Min(sp), stats.Max(sp), stats.Geomean(sp)}
		out[d] = v
		t.AddRow(d, f2(v[0]), f2(v[1]), f2(v[2]))
	}
	return t, out
}

// PathBreakdown runs Hybrid2 on each workload and reports the mix of
// Fig. 7 access-path outcomes, checking the paper's §3.4 claim that only
// ~9.3% of accesses need the heavyweight 2b handling (XTA miss with the
// sector in FM: remap read, NM allocation, inverted-remap update).
func PathBreakdown(r *Runner) (Table, map[string]float64) {
	t := Table{Title: "Hybrid2 access-path breakdown (Fig. 7 outcomes, 1:16 NM; paper: 9.3% need 2b)",
		Header: []string{"Benchmark", "1a-hit", "1b-linefetch", "2a-adopt", "2b-allocate"}}
	// These runs need the core's path counters, which the memoized
	// sim.Result does not carry, so they bypass the Runner cache and fan
	// out over parallelFor directly; rows land in workload order.
	wls := r.Workloads()
	stats2b := make([]core.PathStats, len(wls))
	err := r.parallelFor(len(wls), func(i int) error {
		sys := r.system(1)
		ms, nm, fm, err := design.Build("HYBRID2", sys)
		if err != nil {
			return err
		}
		h := ms.(*core.Hybrid2)
		sim.Run(wls[i], h, nm, fm, sys)
		stats2b[i] = h.PathStats()
		return nil
	})
	if err != nil {
		panic(err) // HYBRID2 is statically well-formed; see mustSweep
	}

	out := make(map[string]float64)
	var fracs []float64
	for i, wl := range wls {
		p := stats2b[i]
		total := float64(p.Hit1a + p.Hit1b + p.Miss2a + p.Miss2b)
		if total == 0 {
			total = 1
		}
		out[wl.Name] = p.Frac2b()
		fracs = append(fracs, p.Frac2b())
		t.AddRow(wl.Name,
			pct(float64(p.Hit1a)/total), pct(float64(p.Hit1b)/total),
			pct(float64(p.Miss2a)/total), pct(float64(p.Miss2b)/total))
	}
	t.AddRow("MEAN", "", "", "", pct(stats.Mean(fracs)))
	return t, out
}

// PrefetchStudy compares the main designs with and without a next-line
// LLC prefetcher — a knob the paper calls orthogonal to its techniques.
func PrefetchStudy(r *Runner) (Table, map[string][2]float64) {
	t := Table{Title: "Next-line LLC prefetcher study (geomean speedup, 1:16 NM)",
		Header: []string{"Design", "No prefetch", "With prefetch"}}
	out := make(map[string][2]float64)
	pf := r.clone()
	pf.Prefetch = true
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	pf.mustSweep(withBaseline(MainDesigns), []int{1})
	for _, d := range MainDesigns {
		base := stats.Geomean(r.AllSpeedups(d, 1))
		with := stats.Geomean(pf.AllSpeedups(d, 1))
		out[d] = [2]float64{base, with}
		t.AddRow(d, f3(base), f3(with))
	}
	return t, out
}

// detailMetric computes one per-benchmark column value.
type detailMetric struct {
	name string
	f    func(r *Runner, wl workload.Spec, design string) string
}

// Detail produces the per-benchmark counterpart of Figures 15-18: served
// fraction, normalized FM and NM traffic, and normalized energy for every
// workload and main design, for readers who want more than class
// geomeans.
func Detail(r *Runner) []Table {
	metrics := []detailMetric{
		{"served-from-NM", func(r *Runner, wl workload.Spec, d string) string {
			return pct(r.Result(wl, d, 1).ServedNMFrac())
		}},
		{"normalized FM traffic", func(r *Runner, wl workload.Spec, d string) string {
			base := r.Result(wl, "Baseline", 1)
			return f2(stats.Ratio(func() float64 { m := r.Result(wl, d, 1).Mem; return float64(m.FMTraffic()) }(), func() float64 { m := base.Mem; return float64(m.FMTraffic()) }()))
		}},
		{"normalized NM traffic", func(r *Runner, wl workload.Spec, d string) string {
			base := r.Result(wl, "Baseline", 1)
			return f2(stats.Ratio(func() float64 { m := r.Result(wl, d, 1).Mem; return float64(m.NMTraffic()) }(), func() float64 { m := base.Mem; return float64(m.FMTraffic()) }()))
		}},
		{"normalized dynamic energy", func(r *Runner, wl workload.Spec, d string) string {
			base := r.Result(wl, "Baseline", 1)
			return f2(stats.Ratio(r.Result(wl, d, 1).DynamicEnergyNJ(), base.DynamicEnergyNJ()))
		}},
	}
	r.mustSweep(withBaseline(MainDesigns), []int{1})
	var out []Table
	for _, m := range metrics {
		t := Table{Title: "Per-benchmark " + m.name + " (1:16 NM)",
			Header: append([]string{"Benchmark"}, MainDesigns...)}
		for _, wl := range r.Workloads() {
			row := []string{wl.Name}
			for _, d := range MainDesigns {
				row = append(row, m.f(r, wl, d))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}
