// Package mempod implements the MemPod migration scheme (Prodromou et
// al., HPCA'17): a flat NM+FM address space with all-to-all 2 KB-segment
// remapping where, at fixed intervals, the segments identified as hot by
// the Majority Element Algorithm (Karp et al.) are migrated into NM,
// swapping with FIFO-selected NM victims. The paper's design-space
// exploration found 64 MEA counters with 50 µs intervals best for the
// evaluated system; those are the defaults here.
package mempod

import (
	"sort"

	"hybridmem/internal/baselines/migcommon"
	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes MemPod.
type Config struct {
	SectorBytes      int
	NMBytes, FMBytes uint64
	MEACounters      int           // tracked segments (64 in the paper)
	IntervalCycles   memtypes.Tick // 50 µs = 160 K cycles
	// MinCount is the MEA count a segment needs at interval end to be
	// migrated; it keeps lukewarm segments from thrashing NM.
	MinCount uint32
	// MaxMigrations caps swaps per interval. At shortened (scaled)
	// intervals this keeps the instantaneous migration bandwidth at the
	// paper's level of 64 segments per 50 µs.
	MaxMigrations     int
	RemapCacheEntries int // on-chip remap cache (XTA-equivalent)
	Seed              uint64
}

// Default returns the paper's MemPod configuration for the given sizes.
func Default(nmBytes, fmBytes uint64, remapEntries int, seed uint64) Config {
	return Config{
		SectorBytes:       config.SectorBytes,
		NMBytes:           nmBytes,
		FMBytes:           fmBytes,
		MEACounters:       64,
		IntervalCycles:    config.PaperIntervalCycles,
		MinCount:          8,
		MaxMigrations:     64,
		RemapCacheEntries: remapEntries,
		Seed:              seed,
	}
}

type meaEntry struct {
	seg   uint32
	count uint32
}

// MemPod implements memtypes.MemorySystem.
type MemPod struct {
	cfg   Config
	space *migcommon.Space
	rc    *migcommon.RemapCache
	stats memtypes.MemStats

	mea      []meaEntry
	meaIdx   map[uint32]int
	debt     uint32
	fmDemand int // FM demand accesses this interval (migration pacing)
	nmFIFO   uint32
	nextInt  memtypes.Tick
}

// New builds MemPod over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *MemPod {
	m := &MemPod{
		cfg:     cfg,
		meaIdx:  make(map[uint32]int, cfg.MEACounters),
		nextInt: cfg.IntervalCycles,
	}
	m.space = migcommon.NewSpace(cfg.SectorBytes, cfg.NMBytes, cfg.FMBytes, nm, fm, &m.stats, cfg.Seed)
	m.rc = migcommon.NewRemapCache(cfg.RemapCacheEntries, 16)
	return m
}

// Name implements MemorySystem.
func (m *MemPod) Name() string { return "MPOD" }

// Stats implements MemorySystem.
func (m *MemPod) Stats() *memtypes.MemStats { return &m.stats }

// observe feeds the Majority Element Algorithm: tracked segments are
// incremented; untracked ones claim an expired slot or, if none, charge
// the global decrement (the classic decrement-all, done lazily via debt).
func (m *MemPod) observe(seg uint32) {
	if i, ok := m.meaIdx[seg]; ok {
		m.mea[i].count++
		return
	}
	if len(m.mea) < m.cfg.MEACounters {
		m.meaIdx[seg] = len(m.mea)
		m.mea = append(m.mea, meaEntry{seg: seg, count: m.debt + 1})
		return
	}
	for i := range m.mea {
		if m.mea[i].count <= m.debt {
			delete(m.meaIdx, m.mea[i].seg)
			m.mea[i] = meaEntry{seg: seg, count: m.debt + 1}
			m.meaIdx[seg] = i
			return
		}
	}
	m.debt++
}

// interval performs the end-of-interval migrations: hot tracked segments
// currently in FM swap with FIFO-selected NM victims.
func (m *MemPod) interval(now memtypes.Tick) {
	live := make([]meaEntry, 0, len(m.mea))
	for _, e := range m.mea {
		if e.count > m.debt {
			live = append(live, meaEntry{seg: e.seg, count: e.count - m.debt})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].count > live[j].count })
	// Pace migrations by the demand the interval actually sent to FM so
	// swap traffic cannot swamp demand traffic: one 2 KB swap moves as
	// many FM bytes as 64 demand accesses. The MEA survivors are already
	// the relatively hottest segments, so the budgeted top of the sorted
	// list is migrated without an absolute count threshold.
	budget := m.fmDemand / 64
	if budget > m.cfg.MaxMigrations {
		budget = m.cfg.MaxMigrations
	}
	migrated := 0
	for _, e := range live {
		if migrated >= budget {
			break
		}
		if m.space.Lookup(e.seg).NM {
			continue
		}
		m.space.Swap(now, e.seg, m.nmFIFO, 0)
		m.nmFIFO = (m.nmFIFO + 1) % m.space.NMSectors
		migrated++
	}
	m.mea = m.mea[:0]
	for k := range m.meaIdx {
		delete(m.meaIdx, k)
	}
	m.debt = 0
	m.fmDemand = 0
}

// Access implements MemorySystem.
func (m *MemPod) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	for now >= m.nextInt {
		m.interval(m.nextInt)
		m.nextInt += m.cfg.IntervalCycles
	}
	m.stats.Requests++
	logical := uint32(uint64(addr) / uint64(m.cfg.SectorBytes))
	if logical >= m.space.Sectors() {
		logical %= m.space.Sectors()
	}
	offset := memtypes.Addr(uint64(addr) % uint64(m.cfg.SectorBytes))
	if !m.rc.Lookup(logical) {
		now = m.space.ReadRemapEntry(now, logical)
	}
	m.observe(logical)
	if !m.space.Lookup(logical).NM {
		m.fmDemand++
	}
	return m.space.AccessData(now, logical, offset, write)
}

// Finish implements MemorySystem: runs the last pending interval.
func (m *MemPod) Finish(now memtypes.Tick) {
	m.interval(now)
}

// Space exposes the flat space for invariant tests.
func (m *MemPod) Space() *migcommon.Space { return m.space }
