// Streaming trace replay: drive the simulator from a multi-million-record
// gzip-compressed trace without ever holding the trace in memory — the
// workflow for users with large Pin/DynamoRIO captures of their own
// applications. A generator goroutine writes a pointer-chase + hot-array
// trace into a pipe record by record; hybridmem.ReplayTrace streams it
// back out through a bounded per-core lookahead window, so the resident
// set stays constant no matter how many records flow through. The heap
// figures printed at the end make the point: replaying millions of
// records costs megabytes, not gigabytes.
//
// The same call accepts trace files in any of the four on-disk forms
// (text or binary, plain or gzipped) — see cmd/tracegen to export the
// built-in workloads and cmd/traceconv to convert between encodings.
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"runtime"
	"time"

	"hybridmem"
)

// genTrace streams a synthetic capture (a drifting pointer-chase window
// plus sprayed cold writes, 8 cores) of about `records` records into a
// pipe, gzip-compressed text — exactly what a user's own trace converter
// would produce. Generation is constant-memory too: records are written
// as they are made.
func genTrace(records int) io.Reader {
	pr, pw := io.Pipe()
	go func() {
		gz := gzip.NewWriter(pw)
		bw := bufio.NewWriterSize(gz, 1<<16)
		rng := uint64(12345)
		next := func(n uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		const region = 16 << 20  // 16 MB per core
		const window = 256 << 10 // 256 KB hot chase window, drifting slowly
		perCore := records / 8
		pos := make([]uint64, 8)
		base := make([]uint64, 8)
		for i := 0; i < perCore; i++ {
			for core := 0; core < 8; core++ {
				if i%50000 == 49999 {
					base[core] = (base[core] + 3<<20) % (region - window) // working-set drift
				}
				// Short-stride chase within the hot window: real reuse.
				pos[core] = (pos[core] + 64 + next(8)*64) % window
				fmt.Fprintf(bw, "%d 40 %x R\n", core, uint64(core)*region+base[core]+pos[core])
				// Occasional cold lookup sprayed over the whole region.
				if i%32 == 0 {
					fmt.Fprintf(bw, "%d 10 %x W\n", core, uint64(core)*region+next(region/64)*64)
				}
			}
		}
		bw.Flush()
		gz.Close()
		pw.Close()
	}()
	return pr
}

func main() {
	records := flag.Int("records", 5_000_000, "approximate trace records to generate and replay")
	flag.Parse()
	cfg := hybridmem.DefaultConfig()

	fmt.Printf("Streaming a ~%dM-record gzip trace through each design (constant memory):\n", *records/1_000_000)
	var baseCycles uint64
	for _, d := range []string{"Baseline", "HYBRID2"} {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()

		res, err := hybridmem.ReplayTrace(d, "chase", genTrace(*records),
			hybridmem.ReplayOptions{MLP: 2}, cfg)
		if err != nil {
			log.Fatal(err)
		}

		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if d == "Baseline" {
			baseCycles = res.Cycles
		}
		fmt.Printf("  %-8s cycles %11d  speedup %.2f  served-NM %3.0f%%  FM %6.1f MB"+
			"  [%4.1f Mrec/s, heap %d -> %d MB]\n",
			d, res.Cycles, float64(baseCycles)/float64(res.Cycles),
			res.ServedNMFrac*100, float64(res.FMTrafficBytes)/(1<<20),
			float64(*records)/1e6/elapsed.Seconds(),
			before.HeapAlloc>>20, after.HeapAlloc>>20)
	}
	fmt.Println("\nThe replayer never materializes the trace: records stream from the")
	fmt.Println("gzip pipe through a bounded per-core window, so the heap stays flat")
	fmt.Println("while millions of records flow through. Feed files the same way:")
	fmt.Println("  tracegen -workload mcf -format binary -gz -o mcf.htb.gz")
	fmt.Println("  hybrid2sim -trace mcf.htb.gz -design HYBRID2")
}
