package banshee

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "BANSHEE",
		Doc:     "frequency-gated page cache (§2.1)",
		Kind:    design.KindExtra,
		Order:   6,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Default(sys.NMBytes), nm, fm), nil
		},
	})
}
