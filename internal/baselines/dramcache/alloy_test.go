package dramcache

import (
	"testing"
)

func TestAlloyProbeCosts(t *testing.T) {
	nm, fm := devices()
	c := New(Alloy(1<<20), nm, fm)
	c.Access(0, 0, false) // miss: TAD probe + FM fetch
	s := c.Stats()
	if s.MetaNMBytes != 72 {
		t.Fatalf("miss probe charged %d meta bytes, want 72", s.MetaNMBytes)
	}
	c.Access(5000, 0, false) // hit: one 72 B TAD burst
	if got := s.NMReadBytes - 72; got != 72 {
		t.Fatalf("hit read %d bytes, want 72", got)
	}
	if s.ServedNM != 1 {
		t.Fatal("hit not served from NM")
	}
}

func TestAlloyDirectMappedConflicts(t *testing.T) {
	nm, fm := devices()
	c := New(Alloy(1<<20), nm, fm)
	// Two addresses one cache-size apart conflict in a direct-mapped cache.
	c.Access(0, 0, false)
	c.Access(1000, 1<<20, false)
	c.Access(2000, 0, false) // must miss again
	if c.Stats().ServedNM != 0 {
		t.Fatalf("direct-mapped conflict not modeled: %+v", c.Stats())
	}
}
