package migcommon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSpace(seed uint64) (*Space, *memtypes.MemStats) {
	stats := &memtypes.MemStats{}
	s := NewSpace(2048, 1<<20, 8<<20, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()), stats, seed)
	return s, stats
}

func TestInitialPlacementBijective(t *testing.T) {
	s, _ := newSpace(3)
	if !s.CheckInvariants() {
		t.Fatal("initial placement not bijective")
	}
	if s.Sectors() != s.NMSectors+s.FMSectors {
		t.Fatal("sector count mismatch")
	}
}

func TestPlacementProportionalToCapacity(t *testing.T) {
	s, _ := newSpace(5)
	inNM := 0
	for l := uint32(0); l < s.Sectors(); l++ {
		if s.Lookup(l).NM {
			inNM++
		}
	}
	frac := float64(inNM) / float64(s.Sectors())
	want := float64(s.NMSectors) / float64(s.Sectors())
	if frac < want*0.99 || frac > want*1.01 {
		t.Fatalf("NM-resident fraction %.4f, want %.4f", frac, want)
	}
}

func TestPlacementSeeded(t *testing.T) {
	a, _ := newSpace(7)
	b, _ := newSpace(7)
	c, _ := newSpace(8)
	same, diff := true, false
	for l := uint32(0); l < a.Sectors(); l++ {
		if a.Lookup(l) != b.Lookup(l) {
			same = false
		}
		if a.Lookup(l) != c.Lookup(l) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed gave different placements")
	}
	if !diff {
		t.Fatal("different seeds gave identical placements")
	}
}

func TestSwapMovesSectorAndPreservesBijection(t *testing.T) {
	s, stats := newSpace(9)
	var fmSector uint32
	for l := uint32(0); l < s.Sectors(); l++ {
		if !s.Lookup(l).NM {
			fmSector = l
			break
		}
	}
	displaced := s.Swap(0, fmSector, 0, 0)
	if !s.Lookup(fmSector).NM {
		t.Fatal("swapped sector not in NM")
	}
	if s.Lookup(displaced).NM {
		t.Fatal("displaced sector still in NM")
	}
	if !s.CheckInvariants() {
		t.Fatal("bijection broken by swap")
	}
	if stats.Migrations != 1 {
		t.Fatalf("migrations %d, want 1", stats.Migrations)
	}
	// Full swap traffic: sector each way on both devices + 2 remap writes.
	if stats.FMReadBytes != 2048 || stats.FMWriteBytes != 2048 {
		t.Fatalf("FM traffic %d/%d, want 2048/2048", stats.FMReadBytes, stats.FMWriteBytes)
	}
}

func TestSwapSkipBytesReducesFMRead(t *testing.T) {
	s, stats := newSpace(11)
	var fmSector uint32
	for l := uint32(0); l < s.Sectors(); l++ {
		if !s.Lookup(l).NM {
			fmSector = l
			break
		}
	}
	s.Swap(0, fmSector, 0, 512)
	if stats.FMReadBytes != 2048-512 {
		t.Fatalf("FM read %d, want %d", stats.FMReadBytes, 2048-512)
	}
}

func TestSwapFromNMPanics(t *testing.T) {
	s, _ := newSpace(13)
	var nmSector uint32
	for l := uint32(0); l < s.Sectors(); l++ {
		if s.Lookup(l).NM {
			nmSector = l
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("swap of NM-resident sector did not panic")
		}
	}()
	s.Swap(0, nmSector, 0, 0)
}

func TestRandomSwapsKeepBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := newSpace(uint64(seed) + 1)
		for i := 0; i < 200; i++ {
			l := uint32(rng.Intn(int(s.Sectors())))
			if s.Lookup(l).NM {
				continue
			}
			slot := uint32(rng.Intn(int(s.NMSectors)))
			s.Swap(memtypes.Tick(i*100), l, slot, 0)
		}
		return s.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessDataServedCounters(t *testing.T) {
	s, stats := newSpace(15)
	var nmL, fmL uint32
	foundNM, foundFM := false, false
	for l := uint32(0); l < s.Sectors(); l++ {
		if s.Lookup(l).NM && !foundNM {
			nmL, foundNM = l, true
		}
		if !s.Lookup(l).NM && !foundFM {
			fmL, foundFM = l, true
		}
	}
	s.AccessData(0, nmL, 0, false)
	s.AccessData(0, fmL, 0, true)
	if stats.ServedNM != 1 || stats.ServedFM != 1 {
		t.Fatalf("served NM/FM = %d/%d, want 1/1", stats.ServedNM, stats.ServedFM)
	}
	if stats.NMReadBytes != 64 || stats.FMWriteBytes != 64 {
		t.Fatalf("traffic NMr=%d FMw=%d, want 64/64", stats.NMReadBytes, stats.FMWriteBytes)
	}
}

func TestRemapCacheHitMissBehaviour(t *testing.T) {
	rc := NewRemapCache(64, 16)
	if rc.Lookup(5) {
		t.Fatal("cold lookup hit")
	}
	if !rc.Lookup(5) {
		t.Fatal("second lookup missed")
	}
	// Fill set 1 beyond capacity: 4 sets, entries mapping to set 1 are
	// logical = 1 mod 4; 17 of them overflow the 16 ways.
	for i := 0; i < 17; i++ {
		rc.Lookup(uint32(1 + 4*i))
	}
	if rc.Lookup(1) { // LRU entry 1 must have been evicted
		t.Fatal("LRU entry survived overflow")
	}
}

func TestRemapCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRemapCache(48, 16) // 3 sets: not a power of two
}
