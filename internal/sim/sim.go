// Package sim wires the interval cores, the shared LLC and one memory
// organization together and runs a workload to completion, producing the
// per-run metrics every figure of the paper is built from.
package sim

import (
	"hybridmem/internal/baselines/dramcache"
	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/cachesim"
	"hybridmem/internal/config"
	hybrid "hybridmem/internal/core"
	"hybridmem/internal/cpu"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/stats"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

// Result holds the measurements of one (workload, design) run.
type Result struct {
	Workload string
	Design   string

	Cycles       memtypes.Tick
	Instructions uint64
	IPC          float64

	LLCAccesses uint64
	LLCMisses   uint64
	MPKI        float64

	Mem memtypes.MemStats // copy of the design's traffic counters

	NMEnergyNJ float64
	FMEnergyNJ float64

	// Demand read-miss latency distribution (cycles), as seen by the
	// cores: mean and percentiles from a log2-bucketed stats.Histogram.
	LatMean float64
	LatP50  memtypes.Tick
	LatP99  memtypes.Tick
}

// ServedNMFrac returns the fraction of memory requests served from NM.
func (r Result) ServedNMFrac() float64 {
	if r.Mem.Requests == 0 {
		return 0
	}
	return float64(r.Mem.ServedNM) / float64(r.Mem.Requests)
}

// DynamicEnergyNJ returns total dynamic memory energy.
func (r Result) DynamicEnergyNJ() float64 { return r.NMEnergyNJ + r.FMEnergyNJ }

// Source yields one core's trace records: gap non-memory instructions
// followed by a 64 B access. Implemented by workload.Stream and by
// trace.Replayer.
type Source interface {
	Next() (gap uint64, addr memtypes.Addr, write bool, ok bool)
}

// BatchSource is the optional bulk fast path of a Source: NextBatch fills
// dst with up to len(dst) records and returns the count, 0 meaning the
// source is exhausted. A short (but non-zero) count is not end-of-stream.
// The records must be exactly the ones the same number of Next calls
// would have produced; the driver uses it to amortize per-record decode
// and generation overhead. Sources whose record values depend on when
// other cores consume records must not implement it.
type BatchSource interface {
	NextBatch(dst []memtypes.Rec) int
}

// batchLen is the per-core record buffer of the run loop: large enough to
// amortize batched decode, small enough (1.5 KB per core) to stay cache
// resident.
const batchLen = 64

// MLPFor derives the effective memory-level parallelism from a workload's
// spatial behaviour: streaming workloads keep many independent misses in
// flight, pointer-chasing ones serialize on dependent loads. Trace
// replays of a synthetic workload must pass the same value to RunSources
// to reproduce the direct run.
func MLPFor(spec workload.Spec) int {
	mlp := int(1 + spec.SeqRun/4)
	if mlp < 1 {
		mlp = 1
	}
	if mlp > 8 {
		mlp = 8
	}
	return mlp
}

// Run executes spec on the given memory system. nm and fm are the devices
// the design was built over (nm may be nil for the no-NM baseline); they
// are only read for energy accounting.
func Run(spec workload.Spec, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System) Result {
	return RunSampled(spec, ms, nm, fm, sys, nil)
}

// RunSampled is Run with an optional telemetry sampler attached: smp
// observes the run as a series of windowed epochs (see
// internal/telemetry). A nil smp is exactly Run — the sampler is
// passive and never changes the Result.
func RunSampled(spec workload.Spec, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System, smp *telemetry.Sampler) Result {
	srcs := make([]Source, config.Cores)
	for i := range srcs {
		srcs[i] = workload.NewStream(spec, i, sys.Scale, sys.InstrPerCore, sys.Seed)
	}
	return RunSourcesSampled(spec.Name, srcs, MLPFor(spec), ms, nm, fm, sys, smp)
}

// The devirtualization wrappers below give the registry's main designs a
// concrete-typed run loop. A generic instantiated directly on the pointer
// types would not do it: Go's gcshape stenciling buckets all pointer type
// arguments into one dictionary-based instantiation, leaving ms.Access an
// indirect call. A one-field struct wrapper per design is its own gcshape,
// so runLoop stencils per design and the inner Access/Finish calls bind
// (and inline) statically.

type hybridMS struct{ m *hybrid.Hybrid2 }

func (a hybridMS) Name() string { return a.m.Name() }
func (a hybridMS) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	return a.m.Access(now, addr, write)
}
func (a hybridMS) Finish(now memtypes.Tick)  { a.m.Finish(now) }
func (a hybridMS) Stats() *memtypes.MemStats { return a.m.Stats() }

type dramCacheMS struct{ m *dramcache.Cache }

func (a dramCacheMS) Name() string { return a.m.Name() }
func (a dramCacheMS) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	return a.m.Access(now, addr, write)
}
func (a dramCacheMS) Finish(now memtypes.Tick)  { a.m.Finish(now) }
func (a dramCacheMS) Stats() *memtypes.MemStats { return a.m.Stats() }

type fmOnlyMS struct{ m *flat.FMOnly }

func (a fmOnlyMS) Name() string { return a.m.Name() }
func (a fmOnlyMS) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	return a.m.Access(now, addr, write)
}
func (a fmOnlyMS) Finish(now memtypes.Tick)  { a.m.Finish(now) }
func (a fmOnlyMS) Stats() *memtypes.MemStats { return a.m.Stats() }

type nmOnlyMS struct{ m *flat.NMOnly }

func (a nmOnlyMS) Name() string { return a.m.Name() }
func (a nmOnlyMS) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	return a.m.Access(now, addr, write)
}
func (a nmOnlyMS) Finish(now memtypes.Tick)  { a.m.Finish(now) }
func (a nmOnlyMS) Stats() *memtypes.MemStats { return a.m.Stats() }

// RunSources executes one explicit trace source per core — the entry
// point for replaying captured traces. mlp bounds each core's overlapped
// misses.
func RunSources(name string, srcs []Source, mlp int, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System) Result {
	return RunSourcesSampled(name, srcs, mlp, ms, nm, fm, sys, nil)
}

// RunSourcesSampled is RunSources with an optional telemetry sampler;
// nil smp is exactly RunSources.
func RunSourcesSampled(name string, srcs []Source, mlp int, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System, smp *telemetry.Sampler) Result {
	switch m := ms.(type) {
	case *hybrid.Hybrid2:
		return runLoop(name, srcs, mlp, hybridMS{m}, nm, fm, sys, smp)
	case *dramcache.Cache:
		return runLoop(name, srcs, mlp, dramCacheMS{m}, nm, fm, sys, smp)
	case *flat.FMOnly:
		return runLoop(name, srcs, mlp, fmOnlyMS{m}, nm, fm, sys, smp)
	case *flat.NMOnly:
		return runLoop(name, srcs, mlp, nmOnlyMS{m}, nm, fm, sys, smp)
	}
	return runLoop[memtypes.MemorySystem](name, srcs, mlp, ms, nm, fm, sys, smp)
}

// coreState is one core's slot in the run loop: its source, the batch
// fast path if the source has one, and the refillable record buffer.
type coreState struct {
	src  Source
	bsrc BatchSource
	buf  []memtypes.Rec
	head int
	n    int
}

// lessCore orders heap entries by (core time, core index): exactly the
// core the old linear scan selected — the lowest-indexed core among those
// with the minimum time.
func lessCore(cores []*cpu.Core, a, b int32) bool {
	ta, tb := cores[a].Time, cores[b].Time
	return ta < tb || (ta == tb && a < b)
}

// siftDown restores the min-heap property from slot i after the entry
// there grew (the selected core advanced) or was replaced (a pop).
func siftDown(h []int32, i int, cores []*cpu.Core) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && lessCore(cores, h[r], h[l]) {
			m = r
		}
		if !lessCore(cores, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// maxCoreTime returns the latest core time — the run's cycle count so
// far. Called only at epoch boundaries, so its O(cores) cost is off
// the per-record path.
func maxCoreTime(cores []*cpu.Core) memtypes.Tick {
	var t memtypes.Tick
	for _, c := range cores {
		if c.Time > t {
			t = c.Time
		}
	}
	return t
}

// runLoop is the per-record simulation loop, generic so the type switch
// in RunSources stencils a concrete-typed copy per main design. The
// scheduler is an index min-heap keyed on (core time, index), replacing
// the O(cores) scan per record; selection order is bit-identical to the
// scan because both pick the lexicographic minimum, and only the selected
// core's time ever changes. The steady state allocates nothing: record
// buffers, heap and core state are preallocated, and the histogram is a
// fixed array. The telemetry sampler is optional and passive: with smp
// nil the per-record cost is one predictable branch and the Result is
// unchanged either way.
func runLoop[MS memtypes.MemorySystem](name string, srcs []Source, mlp int, ms MS, nm, fm *memsys.Device, sys config.System, smp *telemetry.Sampler) Result {
	llc := cachesim.New(sys.LLCBytes, config.LLCAssoc, memtypes.CPULineBytes)
	var lat stats.Histogram

	// Telemetry boundary state: retired instructions mirror the cores'
	// own counting (Gap non-memory instructions + 1 memory op per
	// record), sNext is the next epoch boundary.
	var sInstr, sNext uint64
	if smp != nil {
		sNext = smp.WindowInstr()
	}

	n := len(srcs)
	cores := make([]*cpu.Core, n)
	st := make([]coreState, n)
	bufs := make([]memtypes.Rec, n*batchLen)
	heap := make([]int32, n)
	for i := range cores {
		cores[i] = cpu.New(config.IssueWidth, mlp)
		st[i] = coreState{src: srcs[i], buf: bufs[i*batchLen : (i+1)*batchLen]}
		if bs, ok := srcs[i].(BatchSource); ok {
			st[i].bsrc = bs
		}
		heap[i] = int32(i)
	}
	// The initial heap [0..n-1] is valid: all times are zero and parents
	// have smaller indices than their children.

	for len(heap) > 0 {
		// Advance the earliest core: keeps memory-system calls in
		// near-time order so device contention is modeled consistently.
		sel := heap[0]
		cs := &st[sel]
		c := cores[sel]
		if cs.head == cs.n {
			if cs.bsrc != nil {
				cs.n = cs.bsrc.NextBatch(cs.buf)
			} else {
				// Plain sources are pulled one record per selection, so
				// implementations sensitive to interleaving see the same
				// call schedule as the old loop.
				gap, addr, write, ok := cs.src.Next()
				cs.n = 0
				if ok {
					cs.buf[0] = memtypes.Rec{Gap: gap, Addr: addr, Write: write}
					cs.n = 1
				}
			}
			cs.head = 0
			if cs.n == 0 {
				c.DrainMisses()
				last := len(heap) - 1
				heap[0] = heap[last]
				heap = heap[:last]
				if len(heap) > 1 {
					siftDown(heap, 0, cores)
				}
				continue
			}
		}
		r := cs.buf[cs.head]
		cs.head++

		c.AdvanceCompute(r.Gap)
		c.RetireMemOp()
		c.AddLatency(config.LLCLatency)
		hit, victim, evicted := llc.Access(r.Addr, r.Write)
		if !hit {
			// Write-allocate: the fill is a read either way. Loads stall
			// the core through the MSHRs; stores retire through the
			// write buffer, which applies backpressure when full.
			fill := ms.Access(c.Time, r.Addr, false)
			if r.Write {
				c.StallForWrite(fill)
			} else {
				lat.Add(uint64(fill - c.Time))
				if smp != nil {
					smp.Latency(uint64(fill - c.Time))
				}
				c.StallForMiss(fill)
			}
		}
		if evicted && victim.Dirty {
			c.StallForWrite(ms.Access(c.Time, victim.Addr, true))
		}
		if !hit && sys.NextLinePrefetch {
			// Next-line prefetch: fill addr+64 if absent; the fill does
			// not stall the core, and its dirty victim writes back.
			next := r.Addr + memtypes.CPULineBytes
			if pHit, pVictim, pEvicted := llc.Access(next, false); !pHit {
				ms.Access(c.Time, next, false)
				if pEvicted && pVictim.Dirty {
					ms.Access(c.Time, pVictim.Addr, true)
				}
			}
		}
		if smp != nil {
			sInstr += r.Gap + 1
			if sInstr >= sNext {
				smp.Flush(sInstr, uint64(maxCoreTime(cores)), llc.Accesses, llc.Misses, ms.Stats())
				w := smp.WindowInstr()
				sNext = sInstr - sInstr%w + w
			}
		}
		if len(heap) > 1 {
			siftDown(heap, 0, cores)
		}
	}

	var cycles memtypes.Tick
	var instr uint64
	for _, c := range cores {
		if c.Time > cycles {
			cycles = c.Time
		}
		instr += c.Instructions
	}
	ms.Finish(cycles)
	// Close the final (possibly partial) epoch after Finish so flushed
	// interval work lands in the series and its totals reconcile with
	// the Result. A run that ended exactly on a boundary flushes nothing.
	if smp != nil {
		smp.Flush(instr, uint64(cycles), llc.Accesses, llc.Misses, ms.Stats())
	}

	res := Result{
		Workload:     name,
		Design:       ms.Name(),
		Cycles:       cycles,
		Instructions: instr,
		LLCAccesses:  llc.Accesses,
		LLCMisses:    llc.Misses,
		Mem:          *ms.Stats(),
	}
	if cycles > 0 {
		res.IPC = float64(instr) / float64(cycles)
	}
	if instr > 0 {
		res.MPKI = float64(llc.Misses) / (float64(instr) / 1000)
	}
	if nm != nil {
		res.NMEnergyNJ = nm.DynamicEnergyNanoJ()
	}
	if fm != nil {
		res.FMEnergyNJ = fm.DynamicEnergyNanoJ()
	}
	res.LatMean = lat.Mean()
	res.LatP50 = memtypes.Tick(lat.Percentile(0.50))
	res.LatP99 = memtypes.Tick(lat.Percentile(0.99))
	return res
}
