package hybridmem

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridmem/internal/cluster"
	"hybridmem/internal/obs"
	"hybridmem/internal/serve"
	"hybridmem/internal/store"
)

// ServeOptions configures the simulation service started by Serve. The
// zero value of every field has a usable default.
type ServeOptions struct {
	// Addr is the TCP listen address; empty means ":8080".
	Addr string
	// StateDir enables persistence: submitted job requests, finished
	// result documents and exploration checkpoints are written there, and
	// a restarted server resumes unfinished work from it. Empty keeps
	// everything in memory.
	StateDir string
	// CacheEntries and CacheBytes bound the content-addressed result
	// cache (the result store's memory tier); <= 0 means 1024 entries
	// and 64 MB.
	CacheEntries int
	CacheBytes   int64
	// StoreDir, when non-empty, adds a persistent disk tier below the
	// memory cache: result documents and run results are written there
	// and repeated requests are served from it across restarts, never
	// re-simulating. In coordinator mode the same store also persists
	// completed shard outcomes, so batches re-run after node loss or
	// coordinator restart re-dispatch only cold work. Entries are keyed
	// by the engine and schema versions, so version bumps invalidate the
	// directory's contents rather than serving stale results.
	StoreDir string
	// StoreMaxBytes bounds the disk tier; least-recently-used entries
	// are garbage-collected past it. <= 0 means unbounded.
	StoreMaxBytes int64
	// QueueDepth bounds queued async jobs (sweeps, explorations); a full
	// queue answers 503. <= 0 means 64.
	QueueDepth int
	// JobHistory bounds how many settled jobs stay addressable over the
	// job endpoints before the oldest are retired; <= 0 means 4096.
	JobHistory int
	// Workers is the async job worker-pool size (<= 0 means 2); each job
	// fans its simulations out across Parallelism runner workers (<= 0
	// means GOMAXPROCS).
	Workers     int
	Parallelism int
	// DrainTimeout bounds the graceful shutdown after ctx is canceled:
	// queued and running jobs get this long to finish before they are
	// canceled (explorations flush a final checkpoint and resume on
	// restart). <= 0 means 30s.
	DrainTimeout time.Duration
	// Log receives structured operational log records; nil discards
	// them.
	Log *slog.Logger
	// FlightEvents is the capacity of the server's flight recorder —
	// the bounded ring of recent trace events served over /debug/events;
	// <= 0 means 4096.
	FlightEvents int
	// DumpEventsOnSIGQUIT, when set, installs a SIGQUIT handler that
	// dumps the flight recorder to stderr (replacing the runtime's
	// default stack-dump-and-exit behaviour; the process keeps running).
	DumpEventsOnSIGQUIT bool
	// OnListen, when non-nil, is called with the bound listen address
	// once the server accepts connections — useful with ":0" ports.
	OnListen func(addr string)

	// Coordinator turns the server into a cluster coordinator: runner
	// nodes (ServeRunner, `hybridmemd -runner`) join it over HTTP and
	// sweep/exploration jobs are sharded across them with work-stealing.
	// With no runners attached the coordinator falls back to local
	// execution, so a coordinator with an empty pool behaves exactly like
	// a plain server. Distributed results are byte-identical to local
	// ones (see internal/cluster).
	Coordinator bool
	// ClusterLoopbackRunners attaches that many in-process runners to the
	// coordinator — the no-network distributed mode used by tests and
	// benchmarks. Non-zero implies Coordinator.
	ClusterLoopbackRunners int
	// ClusterShardSize is the number of runs per dispatched shard (<= 0
	// means 8); ClusterMaxInFlight bounds concurrently dispatched shards
	// per runner (<= 0 means 2).
	ClusterShardSize   int
	ClusterMaxInFlight int
	// ClusterHeartbeatTimeout expels runners whose heartbeat lapsed
	// (<= 0 means 10s); ClusterRPCTimeout bounds one shard RPC (<= 0
	// means 5m).
	ClusterHeartbeatTimeout time.Duration
	ClusterRPCTimeout       time.Duration
}

// Serve runs the simulation-as-a-service HTTP server — the long-lived
// front end over Run/RunAll/Explore/ReplayTrace documented in
// internal/serve: content-addressed result caching, singleflight
// deduplication of concurrent identical requests, async jobs with
// streaming progress for sweeps and explorations, and a streaming trace
// upload endpoint.
//
// Serve blocks until ctx is canceled, then drains gracefully (liveness
// flips to 503, new work is rejected, in-flight work finishes up to
// DrainTimeout) and returns nil on a clean drain. cmd/hybridmemd wires
// this to SIGTERM/SIGINT.
func Serve(ctx context.Context, opts ServeOptions) error {
	if opts.Addr == "" {
		opts.Addr = ":8080"
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	// One observability plane serves the whole process: the HTTP layer
	// and the coordinator share its registry (one /metrics), its tracer
	// (job -> batch -> shard -> runner timelines) and its flight
	// recorder.
	o := obs.New(obs.Options{FlightEvents: opts.FlightEvents})
	if opts.DumpEventsOnSIGQUIT {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				o.Flight().WriteJSON(os.Stderr)
			}
		}()
		defer signal.Stop(quit)
	}
	// One store serves the whole process: the HTTP layer's document
	// cache and the coordinator's shard persistence share its tiers, so
	// every layer sees every other's warm results.
	var st *store.Store
	if opts.StoreDir != "" {
		var err error
		st, err = store.Open(store.Options{
			MemEntries: opts.CacheEntries,
			MemBytes:   opts.CacheBytes,
			Dir:        opts.StoreDir,
			MaxBytes:   opts.StoreMaxBytes,
		})
		if err != nil {
			return fmt.Errorf("hybridmem: %w", err)
		}
	}
	var coord *cluster.Coordinator
	if opts.Coordinator || opts.ClusterLoopbackRunners > 0 {
		coord = cluster.NewCoordinator(cluster.CoordinatorOptions{
			ShardSize:        opts.ClusterShardSize,
			MaxInFlight:      opts.ClusterMaxInFlight,
			HeartbeatTimeout: opts.ClusterHeartbeatTimeout,
			RPCTimeout:       opts.ClusterRPCTimeout,
			LocalFallback:    true,
			LocalParallelism: opts.Parallelism,
			Store:            st,
			Log:              opts.Log,
			Obs:              o,
		})
		if opts.ClusterLoopbackRunners > 0 {
			coord.AttachLoopback(opts.ClusterLoopbackRunners, opts.Parallelism)
		}
	}
	srv, err := serve.New(serve.Options{
		CacheEntries:  opts.CacheEntries,
		CacheBytes:    opts.CacheBytes,
		Store:         st,
		StoreMaxBytes: opts.StoreMaxBytes,
		QueueDepth:    opts.QueueDepth,
		JobHistory:    opts.JobHistory,
		Workers:       opts.Workers,
		Parallelism:   opts.Parallelism,
		StateDir:      opts.StateDir,
		Log:           opts.Log,
		Obs:           o,
		Cluster:       coord,
	})
	if err != nil {
		return fmt.Errorf("hybridmem: %w", err)
	}
	// New started the worker pool (and possibly resubmitted recovered
	// jobs); every exit from here on must drain it, or an embedder whose
	// Listen failed (port in use) leaks running simulations.
	shutdown := func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			opts.Log.Warn("hybridmem: drain failed", "err", err)
		}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		shutdown()
		return fmt.Errorf("hybridmem: %w", err)
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	select {
	case err := <-served:
		// The HTTP server failed outright; drain the job pool before
		// reporting it.
		shutdown()
		return fmt.Errorf("hybridmem: serve: %w", err)
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	// Order matters: flipping the service to draining first makes
	// /healthz answer 503 (load balancers stop routing) and rejects new
	// jobs while the queue empties; only then is the HTTP server told to
	// stop, letting in-flight requests — including SSE streams watching
	// the draining jobs — complete.
	drainErr := srv.Shutdown(drainCtx)
	httpErr := hs.Shutdown(drainCtx)
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("hybridmem: serve: %w", err)
	}
	if drainErr != nil {
		return fmt.Errorf("hybridmem: drain: %w", drainErr)
	}
	if httpErr != nil {
		return fmt.Errorf("hybridmem: drain: %w", httpErr)
	}
	return nil
}

// RunnerOptions configures a cluster runner node started by ServeRunner.
type RunnerOptions struct {
	// Addr is the TCP listen address for shard RPCs and /healthz; empty
	// means "127.0.0.1:0".
	Addr string
	// Join is the coordinator's base URL (e.g. http://host:8080) —
	// required. The runner keeps (re)joining it for as long as it runs.
	Join string
	// Advertise is the URL base the coordinator dials back for shard
	// RPCs; empty derives http://<listen address>. Set it when the
	// runner sits behind NAT or a different routable hostname.
	Advertise string
	// ID names this runner to the coordinator; empty derives it from the
	// listen address.
	ID string
	// Parallelism bounds concurrent simulations per shard; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// StoreDir, when non-empty, gives the runner a persistent result
	// store: run results are written to its disk tier and repeated shard
	// work is answered from it without re-simulating, surviving runner
	// restarts.
	StoreDir string
	// StoreMaxBytes bounds the runner's disk store; <= 0 means
	// unbounded.
	StoreMaxBytes int64
	// Log receives structured operational log records; nil discards
	// them.
	Log *slog.Logger
	// FlightEvents is the capacity of the runner's flight recorder;
	// <= 0 means 4096.
	FlightEvents int
	// OnListen, when non-nil, is called with the bound listen address
	// once the runner accepts connections — useful with ":0" ports.
	OnListen func(addr string)
}

// ServeRunner runs a cluster runner node: it joins the coordinator at
// opts.Join, heartbeats to stay registered, and executes the shard RPCs
// the coordinator dispatches, rejoining automatically if the
// coordinator restarts or drops it. It blocks until ctx is canceled and
// returns nil on clean shutdown. cmd/hybridmemd -runner wires this to
// SIGTERM/SIGINT.
func ServeRunner(ctx context.Context, opts RunnerOptions) error {
	if opts.Join == "" {
		return errors.New("hybridmem: ServeRunner needs a coordinator URL to join")
	}
	err := cluster.ServeNode(ctx, cluster.NodeOptions{
		Addr:          opts.Addr,
		Join:          opts.Join,
		Advertise:     opts.Advertise,
		ID:            opts.ID,
		Parallelism:   opts.Parallelism,
		StoreDir:      opts.StoreDir,
		StoreMaxBytes: opts.StoreMaxBytes,
		Log:           opts.Log,
		Obs:           obs.New(obs.Options{FlightEvents: opts.FlightEvents}),
		OnListen:      opts.OnListen,
	})
	if err != nil {
		return fmt.Errorf("hybridmem: %w", err)
	}
	return nil
}
