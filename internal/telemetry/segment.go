package telemetry

import "math"

// minPhaseEpochs is the shortest phase the segmentation will emit.
// Splits closer than this to a boundary are not considered, which
// keeps single-epoch noise from fragmenting the summary.
const minPhaseEpochs = 3

// Segment runs deterministic change-point detection over the epochs'
// IPC series and returns the resulting phases, each annotated with its
// mean IPC, MPKI, NM hit fraction and wasted-fetch fraction. The
// algorithm is greedy binary segmentation: recursively place the split
// that most reduces the within-segment sum of squared IPC deviations,
// and accept it only when the reduction clears a BIC-style penalty
// (2 · series variance · ln n). Pure integer/float arithmetic over the
// input — the same epochs always segment the same way.
func Segment(epochs []Epoch) []Phase {
	if len(epochs) == 0 {
		return []Phase{}
	}

	// Prefix sums of IPC and IPC² give O(1) segment cost.
	n := len(epochs)
	sum := make([]float64, n+1)
	sum2 := make([]float64, n+1)
	for i, e := range epochs {
		sum[i+1] = sum[i] + e.IPC
		sum2[i+1] = sum2[i] + e.IPC*e.IPC
	}
	// sse returns the within-segment sum of squared deviations of
	// epochs[lo:hi].
	sse := func(lo, hi int) float64 {
		c := float64(hi - lo)
		s := sum[hi] - sum[lo]
		q := sum2[hi] - sum2[lo]
		v := q - s*s/c
		if v < 0 { // guard tiny negative rounding residue
			return 0
		}
		return v
	}

	variance := sse(0, n) / float64(n)
	penalty := 2 * variance * math.Log(float64(n))

	// Recursive binary segmentation collecting split points.
	var cuts []int
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2*minPhaseEpochs || penalty == 0 {
			return
		}
		whole := sse(lo, hi)
		best, bestK := math.Inf(1), -1
		for k := lo + minPhaseEpochs; k <= hi-minPhaseEpochs; k++ {
			if c := sse(lo, k) + sse(k, hi); c < best {
				best, bestK = c, k
			}
		}
		if bestK < 0 || whole-best <= penalty {
			return
		}
		split(lo, bestK)
		cuts = append(cuts, bestK)
		split(bestK, hi)
	}
	split(0, n)

	// cuts is sorted by construction (left recursion, cut, right
	// recursion); turn the cut list into annotated phases.
	phases := make([]Phase, 0, len(cuts)+1)
	lo := 0
	for _, k := range append(cuts, n) {
		p := Phase{
			StartEpoch: epochs[lo].Index,
			EndEpoch:   epochs[k-1].Index,
			Epochs:     k - lo,
		}
		var ipc, mpki, nmHit, wasted float64
		for _, e := range epochs[lo:k] {
			ipc += e.IPC
			mpki += e.MPKI
			nmHit += e.NMHitFrac
			wasted += e.WastedFrac
		}
		c := float64(k - lo)
		p.MeanIPC = ipc / c
		p.MeanMPKI = mpki / c
		p.MeanNMHitFrac = nmHit / c
		p.MeanWastedFrac = wasted / c
		phases = append(phases, p)
		lo = k
	}
	return phases
}
