// Package trace defines the memory-trace formats and replayers that let
// the simulator run from captured traces (e.g. from Pin, as the paper's
// authors did) instead of the built-in synthetic workloads.
//
// Two encodings are supported, both optionally gzip-compressed; readers
// auto-detect compression and encoding from the stream's first bytes, so
// every consumer (Read, NewDecoder, NewStreamReader, cmd/hybrid2sim,
// cmd/traceconv, hybridmem.ReplayTrace) accepts any of the four
// combinations.
//
// # Text format
//
// One record per line, blank lines and '#' comments ignored:
//
//	<core> <gap> <addr-hex> R|W
//
// core is the issuing core (0-7), gap the number of non-memory
// instructions preceding the access, addr the byte address (hex, with or
// without 0x), and R/W the access type. Records of one core must appear
// in program order; cores may interleave arbitrarily. Lines — comments
// included — are limited to 64 KB, which keeps decoding bounded-memory
// on arbitrary inputs.
//
// # Binary format
//
// A compact varint encoding, roughly 2-3x smaller than text before
// compression. The stream opens with a 4-byte header:
//
//	'H' 'M' 'T' <version>
//
// where <version> is currently 1. Records follow back to back until EOF,
// each three unsigned varints (encoding/binary Uvarint):
//
//	uvarint  core<<1 | write   (write is 1 for stores, 0 for loads)
//	uvarint  gap               (non-memory instructions before the access)
//	uvarint  addr              (byte address)
//
// A record cut off mid-varint is an error (io.ErrUnexpectedEOF); note
// that the format carries no record count or trailer, so truncation at
// an exact record boundary is indistinguishable from a shorter trace.
//
// # Record order
//
// Both formats carry records in one global stream. Writers (Trace.Write,
// Interleaver, cmd/tracegen) order records by cumulative per-core
// instruction position — each record advances its core by Gap+1
// instructions — which approximates the capture-time interleaving of an
// in-order retirement, instead of imposing an artificial round-robin.
// Streaming readers rely on the interleaving being approximately fair:
// StreamReader buffers at most a bounded lookahead window per core and
// errors if the skew between cores exceeds it.
package trace

import (
	"fmt"
	"io"

	"hybridmem/internal/memtypes"
)

// Record is one memory access of one core's trace.
type Record struct {
	Gap   uint64 // non-memory instructions before this access
	Addr  memtypes.Addr
	Write bool
}

// Trace holds per-core record streams, fully materialized. For large
// traces prefer StreamReader, which replays in constant memory.
type Trace struct {
	Cores [][]Record
}

// Read parses a whole trace (any format, auto-detected) with at most
// maxCores cores into memory.
func Read(r io.Reader, maxCores int) (*Trace, error) {
	d, err := NewDecoder(r, maxCores)
	if err != nil {
		return nil, err
	}
	t := &Trace{Cores: make([][]Record, maxCores)}
	for {
		core, rec, err := d.Decode()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Cores[core] = append(t.Cores[core], rec)
	}
}

// Write serializes the trace as text, interleaving cores by cumulative
// instruction position (see the package docs on record order), so a
// read-write round trip preserves the global record order.
func (t *Trace) Write(w io.Writer) error {
	return t.WriteFormat(w, FormatText)
}

// WriteFormat serializes the trace in the given format, in the same
// global order as Write.
func (t *Trace) WriteFormat(w io.Writer, format Format) error {
	srcs := make([]Source, len(t.Cores))
	for c := range t.Cores {
		srcs[c] = NewReplayer(t.Cores[c])
	}
	it := NewInterleaver(srcs)
	sw := NewStreamWriter(w, format, false)
	for {
		core, rec, ok := it.Next()
		if !ok {
			break
		}
		if err := sw.Append(core, rec); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Records returns the total record count.
func (t *Trace) Records() int {
	n := 0
	for _, c := range t.Cores {
		n += len(c)
	}
	return n
}

// Source yields one core's records in program order: gap non-memory
// instructions followed by a 64 B access. workload.Stream, Replayer and
// StreamReader's per-core streams all implement it (it mirrors
// sim.Source).
type Source interface {
	Next() (gap uint64, addr memtypes.Addr, write bool, ok bool)
}

// Replayer replays one core's materialized records; it implements
// sim.Source.
type Replayer struct {
	recs []Record
	pos  int
}

// NewReplayer returns a replayer over one core's records.
func NewReplayer(recs []Record) *Replayer { return &Replayer{recs: recs} }

// Next implements sim.Source.
func (p *Replayer) Next() (gap uint64, addr memtypes.Addr, write bool, ok bool) {
	if p.pos >= len(p.recs) {
		return 0, 0, false, false
	}
	r := p.recs[p.pos]
	p.pos++
	return r.Gap, r.Addr, r.Write, true
}

// Interleaver merges per-core record sources into a single globally
// ordered stream: the next record is always the pending one with the
// lowest cumulative instruction position (ties to the lowest core) —
// the order an in-order machine would retire them. tracegen and
// Trace.Write serialize through it so written traces preserve a
// capture-like interleaving.
type Interleaver struct {
	srcs    []Source
	pending []Record
	pos     []uint64
	live    []bool
}

// NewInterleaver builds an interleaver over one source per core. Sources
// are consumed lazily, one pending record each, so interleaving is
// constant-memory.
func NewInterleaver(srcs []Source) *Interleaver {
	it := &Interleaver{
		srcs:    srcs,
		pending: make([]Record, len(srcs)),
		pos:     make([]uint64, len(srcs)),
		live:    make([]bool, len(srcs)),
	}
	for c := range srcs {
		it.refill(c)
	}
	return it
}

func (it *Interleaver) refill(c int) {
	gap, addr, write, ok := it.srcs[c].Next()
	if !ok {
		it.live[c] = false
		return
	}
	it.live[c] = true
	it.pending[c] = Record{Gap: gap, Addr: addr, Write: write}
	it.pos[c] += gap + 1
}

// Next returns the next record in global order; ok is false once every
// source is exhausted.
func (it *Interleaver) Next() (core int, r Record, ok bool) {
	sel := -1
	for c := range it.srcs {
		if it.live[c] && (sel < 0 || it.pos[c] < it.pos[sel]) {
			sel = c
		}
	}
	if sel < 0 {
		return 0, Record{}, false
	}
	r = it.pending[sel]
	it.refill(sel)
	return sel, r, true
}

// errorf builds every package error with a uniform prefix.
func errorf(format string, args ...any) error {
	return fmt.Errorf("trace: "+format, args...)
}
