package dse

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// tinyOpts is a fast search configuration: one family, one small-footprint
// workload, short streams, a tight enumeration cap. H2DSE at MaxPerParam 3
// enumerates 18 feasible specs, so budget 6 exercises the budgeted path
// (explore then climb) and budget 0 the exhaustive one.
func tinyOpts() Options {
	return Options{
		Families:     []string{"H2DSE"},
		Workloads:    []string{"mcf"},
		Budget:       6,
		BatchSize:    2,
		Seed:         7,
		InstrPerCore: 20_000,
		MaxPerParam:  3,
		Parallelism:  2,
	}
}

// resultJSON renders a Result the way cmd/dse -json does; the resume
// tests compare these bytes.
func resultJSON(t *testing.T, res Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSearchExhaustive covers the whole tiny space and sanity-checks the
// objective vectors and the frontier invariants.
func TestSearchExhaustive(t *testing.T) {
	opts := tinyOpts()
	opts.Budget = 0
	res, err := Search(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluated) != res.SpaceSize {
		t.Fatalf("exhaustive search evaluated %d of %d specs", len(res.Evaluated), res.SpaceSize)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	feasible := 0
	for _, p := range res.Evaluated {
		if p.Infeasible {
			continue
		}
		feasible++
		if p.Speedup <= 0 || p.CapacityMB <= 0 {
			t.Errorf("%s: non-positive objectives %+v", p.Design, p.Objectives)
		}
	}
	if feasible == 0 {
		t.Fatal("every candidate infeasible")
	}
	// No frontier point may dominate another.
	for i, a := range res.Frontier {
		if a.Infeasible {
			t.Errorf("infeasible point %s on the frontier", a.Design)
		}
		for j, b := range res.Frontier {
			if i != j && a.Objectives.dominates(b.Objectives) {
				t.Errorf("frontier point %s dominates frontier point %s", a.Design, b.Design)
			}
		}
	}
	// Every dominated evaluated point must be off the frontier.
	onFrontier := map[string]bool{}
	for _, p := range res.Frontier {
		onFrontier[p.Design] = true
	}
	for _, p := range res.Evaluated {
		if p.Infeasible || onFrontier[p.Design] {
			continue
		}
		dominated := false
		for _, f := range res.Frontier {
			if f.Objectives.dominates(p.Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("%s is Pareto-optimal but missing from the frontier", p.Design)
		}
	}
}

// TestSearchDeterministic pins that two identical budgeted searches —
// including the random exploration phase — produce byte-identical output.
func TestSearchDeterministic(t *testing.T) {
	a, err := Search(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := resultJSON(t, a), resultJSON(t, b); string(ja) != string(jb) {
		t.Fatalf("same seed, different results:\n%s\n----\n%s", ja, jb)
	}
	c := tinyOpts()
	c.Seed = 8
	other, err := Search(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if string(resultJSON(t, a)) == string(resultJSON(t, other)) {
		t.Log("note: seeds 7 and 8 happened to evaluate the same candidates")
	}
}

// TestResumeMatchesUninterrupted is the acceptance property: a search
// interrupted at any round boundary (here: paused via MaxRounds) and
// resumed from its checkpoint yields byte-identical JSON — frontier,
// evaluation trail, round count — to the same search run uninterrupted.
func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	want, err := Search(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	totalRounds := want.Rounds

	// Interrupt at every round boundary, then resume to completion.
	for k := 1; k < totalRounds; k++ {
		ckPath := filepath.Join(dir, "split.json")
		first := tinyOpts()
		first.MaxRounds = k
		first.Checkpoint = ckPath
		partial, err := Search(context.Background(), first)
		if err != nil {
			t.Fatalf("pause at round %d: %v", k, err)
		}
		if partial.Complete {
			t.Fatalf("pause at round %d: search reports Complete", k)
		}
		if partial.Rounds != k {
			t.Fatalf("pause at round %d: %d rounds ran", k, partial.Rounds)
		}
		second := tinyOpts()
		second.Checkpoint = ckPath
		second.Resume = true
		got, err := Search(context.Background(), second)
		if err != nil {
			t.Fatalf("resume from round %d: %v", k, err)
		}
		if !got.Resumed || !got.Complete {
			t.Fatalf("resume from round %d: Resumed=%v Complete=%v", k, got.Resumed, got.Complete)
		}
		if jw, jg := resultJSON(t, want), resultJSON(t, got); string(jw) != string(jg) {
			t.Fatalf("interrupt at round %d diverges from uninterrupted run:\nwant:\n%s\ngot:\n%s", k, jw, jg)
		}
		os.Remove(ckPath)
	}
}

// TestCancelThenResumeMatchesUninterrupted interrupts via context
// cancellation mid-search — the cmd/dse SIGINT path — and asserts the
// flushed checkpoint resumes to the identical result.
func TestCancelThenResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	want, err := Search(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(dir, "cancel.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := tinyOpts()
	first.Checkpoint = ckPath
	first.Progress = func(e Event) {
		if e.Round == 1 {
			cancel() // interrupt during round 2
		}
	}
	partial, err := Search(ctx, first)
	if err == nil {
		t.Fatal("canceled search returned no error")
	}
	if len(partial.Evaluated) != first.BatchSize {
		t.Fatalf("partial search evaluated %d candidates, want one round of %d", len(partial.Evaluated), first.BatchSize)
	}

	second := tinyOpts()
	second.Checkpoint = ckPath
	second.Resume = true
	got, err := Search(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if jw, jg := resultJSON(t, want), resultJSON(t, got); string(jw) != string(jg) {
		t.Fatalf("cancel-resume diverges from uninterrupted run:\nwant:\n%s\ngot:\n%s", jw, jg)
	}
}

// TestResumeRefusesForeignCheckpoint pins the fingerprint guard: a
// checkpoint written under different options must not silently resume.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	first := tinyOpts()
	first.MaxRounds = 1
	first.Checkpoint = ckPath
	if _, err := Search(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	second := tinyOpts()
	second.Workloads = []string{"namd"}
	second.Checkpoint = ckPath
	second.Resume = true
	if _, err := Search(context.Background(), second); err == nil {
		t.Fatal("resume accepted a checkpoint from different workloads")
	}
	second = tinyOpts()
	second.Budget = 4 // the budget sets the phase boundary: part of the fingerprint
	second.Checkpoint = ckPath
	second.Resume = true
	if _, err := Search(context.Background(), second); err == nil {
		t.Fatal("resume accepted a checkpoint from a different budget")
	}
}

// TestResumeAcceptsNormalizedDefaults pins that defaulted and explicit
// option spellings fingerprint identically: a checkpoint written with
// MaxPerParam 0 (the default, resolved to 12) must resume under an
// explicit MaxPerParam 12 — they are the same search.
func TestResumeAcceptsNormalizedDefaults(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	first := tinyOpts()
	first.MaxPerParam = 0 // default: resolves to 12; widens the tiny space
	first.MaxRounds = 1
	first.Checkpoint = ckPath
	if _, err := Search(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	second := tinyOpts()
	second.MaxPerParam = 12
	second.Checkpoint = ckPath
	second.Resume = true
	if _, err := Search(context.Background(), second); err != nil {
		t.Fatalf("explicit MaxPerParam 12 refused a default-spelled checkpoint: %v", err)
	}
}

// TestSearchOptionValidation covers the error paths of option handling.
func TestSearchOptionValidation(t *testing.T) {
	bad := tinyOpts()
	bad.Families = []string{"NO-SUCH-FAMILY"}
	if _, err := Search(context.Background(), bad); err == nil {
		t.Error("unknown family accepted")
	}
	bad = tinyOpts()
	bad.Workloads = []string{"no-such-workload"}
	if _, err := Search(context.Background(), bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = tinyOpts()
	bad.Resume = true
	if _, err := Search(context.Background(), bad); err == nil {
		t.Error("Resume without Checkpoint accepted")
	}
	bad = tinyOpts()
	bad.Resume = true
	bad.Checkpoint = filepath.Join(t.TempDir(), "missing.json")
	if _, err := Search(context.Background(), bad); err == nil {
		t.Error("Resume from a missing checkpoint accepted")
	}
}

// screenOpts is tinyOpts with multi-fidelity screening enabled: screen
// at a tenth of the full fidelity, then promote into a small full budget.
func screenOpts() Options {
	o := tinyOpts()
	o.ScreenInstrPerCore = 2_000
	o.ScreenBudget = 12
	o.Budget = 3
	return o
}

// TestScreenedSearch pins the multi-fidelity contract: the screening
// phase covers several times more candidates than a full-fidelity-only
// search of comparable instruction cost, and every full evaluation is a
// promoted (screened, feasible-frontier-adjacent) survivor.
func TestScreenedSearch(t *testing.T) {
	full := tinyOpts()
	full.Budget = 4
	fres, err := Search(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	// Full-only: 4 evaluations at 20k instr = 80k simulated. The
	// multi-fidelity search spends less — 12 screenings at 2k plus at
	// most 4 full evaluations (budget 3, one round past) = 104k at the
	// worst, 84k typical — yet simulates >=3x more distinct candidates.
	sres, err := Search(context.Background(), screenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Screened) < 3*len(fres.Evaluated) {
		t.Fatalf("screening covered %d candidates, full-only %d: less than 3x", len(sres.Screened), len(fres.Evaluated))
	}
	screened := map[string]bool{}
	for _, p := range sres.Screened {
		screened[p.Design] = true
	}
	if len(sres.Evaluated) == 0 {
		t.Fatal("no candidates promoted to full fidelity")
	}
	for _, p := range sres.Evaluated {
		if !screened[p.Design] {
			t.Errorf("full evaluation of %s was never screened", p.Design)
		}
	}
	// The search stops at the first round boundary at or past Budget.
	if max := screenOpts().Budget + screenOpts().BatchSize - 1; len(sres.Evaluated) > max {
		t.Errorf("full evaluations %d exceed Budget %d by more than a round", len(sres.Evaluated), screenOpts().Budget)
	}
	for _, p := range sres.Frontier {
		if p.Infeasible {
			t.Errorf("infeasible point %s on the frontier", p.Design)
		}
	}
}

// TestScreenedDeterministic pins that two identical multi-fidelity
// searches produce byte-identical output, screened trail included.
func TestScreenedDeterministic(t *testing.T) {
	a, err := Search(context.Background(), screenOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), screenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := resultJSON(t, a), resultJSON(t, b); string(ja) != string(jb) {
		t.Fatalf("same seed, different screened results:\n%s\n----\n%s", ja, jb)
	}
	if len(a.Screened) == 0 {
		t.Fatal("screened trail empty")
	}
}

// TestScreenedResumeMatchesUninterrupted is the multi-fidelity
// acceptance property: a screened search interrupted at any round
// boundary — inside the screening phase or the promotion phase — and
// resumed from its checkpoint yields byte-identical JSON to the same
// search run uninterrupted.
func TestScreenedResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	want, err := Search(context.Background(), screenOpts())
	if err != nil {
		t.Fatal(err)
	}
	totalRounds := want.Rounds

	for k := 1; k < totalRounds; k++ {
		ckPath := filepath.Join(dir, "split.json")
		first := screenOpts()
		first.MaxRounds = k
		first.Checkpoint = ckPath
		partial, err := Search(context.Background(), first)
		if err != nil {
			t.Fatalf("pause at round %d: %v", k, err)
		}
		if partial.Complete {
			t.Fatalf("pause at round %d: search reports Complete", k)
		}
		second := screenOpts()
		second.Checkpoint = ckPath
		second.Resume = true
		got, err := Search(context.Background(), second)
		if err != nil {
			t.Fatalf("resume from round %d: %v", k, err)
		}
		if jw, jg := resultJSON(t, want), resultJSON(t, got); string(jw) != string(jg) {
			t.Fatalf("interrupt at round %d diverges from uninterrupted run:\nwant:\n%s\ngot:\n%s", k, jw, jg)
		}
		os.Remove(ckPath)
	}
}

// TestScreenedFingerprintGuard pins that single- and multi-fidelity
// checkpoints do not cross-resume: the screening fidelity is part of
// the fingerprint when (and only when) screening is enabled.
func TestScreenedFingerprintGuard(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	first := tinyOpts()
	first.MaxRounds = 1
	first.Checkpoint = ckPath
	if _, err := Search(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	second := screenOpts()
	second.Checkpoint = ckPath
	second.Resume = true
	if _, err := Search(context.Background(), second); err == nil {
		t.Fatal("multi-fidelity resume accepted a single-fidelity checkpoint")
	}

	sck := filepath.Join(t.TempDir(), "sck.json")
	sfirst := screenOpts()
	sfirst.MaxRounds = 1
	sfirst.Checkpoint = sck
	if _, err := Search(context.Background(), sfirst); err != nil {
		t.Fatal(err)
	}
	plain := tinyOpts()
	plain.Checkpoint = sck
	plain.Resume = true
	if _, err := Search(context.Background(), plain); err == nil {
		t.Fatal("single-fidelity resume accepted a multi-fidelity checkpoint")
	}
	// Defaulted and explicit ScreenBudget spellings are the same search.
	sresume := screenOpts()
	sresume.ScreenBudget = 0 // defaults to 4x Budget = 8, as screenOpts spells explicitly
	sresume.Checkpoint = sck
	sresume.Resume = true
	if _, err := Search(context.Background(), sresume); err != nil {
		t.Fatalf("default-spelled ScreenBudget refused an explicit-spelled checkpoint: %v", err)
	}
}

// TestScreeningRequiresBudget pins the option validation: screening
// with an exhaustive (unbounded) full budget is a configuration error.
func TestScreeningRequiresBudget(t *testing.T) {
	bad := screenOpts()
	bad.Budget = 0
	if _, err := Search(context.Background(), bad); err == nil {
		t.Error("screening without a Budget accepted")
	}
}

// TestFrontierDominance unit-tests the incremental Pareto update.
func TestFrontierDominance(t *testing.T) {
	var f frontier
	f.add(Point{Design: "A", Objectives: Objectives{Speedup: 1.5, CapacityMB: 64, TrafficGB: 1}})
	f.add(Point{Design: "B", Objectives: Objectives{Speedup: 1.2, CapacityMB: 64, TrafficGB: 1}})   // dominated by A
	f.add(Point{Design: "C", Objectives: Objectives{Speedup: 1.2, CapacityMB: 16, TrafficGB: 1}})   // cheaper: kept
	f.add(Point{Design: "D", Objectives: Objectives{Speedup: 1.6, CapacityMB: 32, TrafficGB: 0.5}}) // evicts A too
	f.add(Point{Design: "E", Infeasible: true})
	got := f.sorted()
	want := []string{"C", "D"} // ascending capacity
	if len(got) != len(want) {
		t.Fatalf("frontier %v, want designs %v", got, want)
	}
	for i, p := range got {
		if p.Design != want[i] {
			t.Fatalf("frontier slot %d is %s, want %s", i, p.Design, want[i])
		}
	}
	// A point dominating an existing member evicts it.
	f.add(Point{Design: "F", Objectives: Objectives{Speedup: 1.7, CapacityMB: 32, TrafficGB: 0.5}})
	for _, p := range f.sorted() {
		if p.Design == "D" {
			t.Fatal("dominated point D survived")
		}
	}
}
