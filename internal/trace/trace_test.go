package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"hybridmem/internal/memtypes"
)

const sample = `# comment and blank lines are ignored

0 12 1000 R
1 3 0x2040 W
0 7 10c0 r
7 0 ff w
`

func TestReadSample(t *testing.T) {
	tr, err := Read(strings.NewReader(sample), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records() != 4 {
		t.Fatalf("records %d, want 4", tr.Records())
	}
	if len(tr.Cores[0]) != 2 || len(tr.Cores[1]) != 1 || len(tr.Cores[7]) != 1 {
		t.Fatalf("per-core counts wrong: %d/%d/%d", len(tr.Cores[0]), len(tr.Cores[1]), len(tr.Cores[7]))
	}
	r := tr.Cores[0][0]
	if r.Gap != 12 || r.Addr != 0x1000 || r.Write {
		t.Fatalf("record mismatch: %+v", r)
	}
	if !tr.Cores[1][0].Write {
		t.Fatal("W record parsed as read")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0 1 1000",   // missing field
		"9 1 1000 R", // core out of range
		"0 x 1000 R", // bad gap
		"0 1 zz R",   // bad address
		"0 1 1000 X", // bad type
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), 8); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := &Trace{Cores: make([][]Record, 8)}
		s := uint64(seed)
		n := int(s%50) + 1
		for i := 0; i < n; i++ {
			s = s*6364136223846793005 + 1
			core := int(s % 8)
			tr.Cores[core] = append(tr.Cores[core], Record{
				Gap:   s % 1000,
				Addr:  memtypes.Addr(s % (1 << 30)),
				Write: s%3 == 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf, 8)
		if err != nil {
			return false
		}
		if back.Records() != tr.Records() {
			return false
		}
		for c := range tr.Cores {
			for i := range tr.Cores[c] {
				if back.Cores[c][i] != tr.Cores[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerYieldsInOrder(t *testing.T) {
	recs := []Record{{Gap: 1, Addr: 64}, {Gap: 2, Addr: 128, Write: true}}
	p := NewReplayer(recs)
	g, a, w, ok := p.Next()
	if !ok || g != 1 || a != 64 || w {
		t.Fatalf("first record wrong: %d %d %v %v", g, a, w, ok)
	}
	g, a, w, ok = p.Next()
	if !ok || g != 2 || a != 128 || !w {
		t.Fatalf("second record wrong: %d %d %v %v", g, a, w, ok)
	}
	if _, _, _, ok = p.Next(); ok {
		t.Fatal("replayer did not terminate")
	}
}

func TestEmptyReplayer(t *testing.T) {
	p := NewReplayer(nil)
	if _, _, _, ok := p.Next(); ok {
		t.Fatal("empty replayer yielded a record")
	}
}
