package design

import (
	"strings"
	"testing"
)

// enumOpts is the tight cap used by the enumeration property tests: small
// enough to keep the cross products fast, wide enough to exercise ladder
// subsampling on every grammar shape.
var enumOpts = EnumOptions{MaxPerParam: 5}

// TestEnumerateSpecsAllParse is the property test of the enumeration
// helper: every spec produced for every registered family must pass the
// registry's own validation — Parse accepts its name and resolves it to
// the same family with the same values.
func TestEnumerateSpecsAllParse(t *testing.T) {
	for _, info := range AllInfos() {
		specs, err := info.Enumerate(enumOpts)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", info.Name, err)
		}
		if len(specs) == 0 {
			t.Errorf("%s: enumeration is empty", info.Name)
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if seen[s.Name] {
				t.Errorf("%s: duplicate enumerated spec %q", info.Name, s.Name)
			}
			seen[s.Name] = true
			parsed, err := Parse(s.Name)
			if err != nil {
				t.Errorf("%s: enumerated spec %q does not parse: %v", info.Name, s.Name, err)
				continue
			}
			if parsed.Info != info {
				t.Errorf("%q resolved to family %s, want %s", s.Name, parsed.Info.Name, info.Name)
			}
			for i := range s.Values {
				if parsed.Values[i] != s.Values[i] {
					t.Errorf("%q: value %d is %+v after Parse, want %+v", s.Name, i, parsed.Values[i], s.Values[i])
				}
			}
		}
	}
}

// TestNeighborsAllParse asserts the same validity property for
// neighborhood generation, and that neighbors stay inside the enumerated
// space (the search relies on this to keep its candidate set closed).
func TestNeighborsAllParse(t *testing.T) {
	for _, info := range AllInfos() {
		if len(info.Params) == 0 {
			continue
		}
		specs, err := info.Enumerate(enumOpts)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", info.Name, err)
		}
		space := map[string]bool{}
		for _, s := range specs {
			space[s.Name] = true
		}
		for _, probe := range []int{0, len(specs) / 2, len(specs) - 1} {
			if probe < 0 || probe >= len(specs) {
				continue
			}
			s := specs[probe]
			nbrs, err := info.Neighbors(s, enumOpts)
			if err != nil {
				t.Fatalf("%s: Neighbors(%q): %v", info.Name, s.Name, err)
			}
			for _, n := range nbrs {
				if n.Name == s.Name {
					t.Errorf("%s: Neighbors(%q) contains the spec itself", info.Name, s.Name)
				}
				if _, err := Parse(n.Name); err != nil {
					t.Errorf("%s: neighbor %q of %q does not parse: %v", info.Name, n.Name, s.Name, err)
				}
				if !space[n.Name] {
					t.Errorf("%s: neighbor %q of %q is outside the enumerated space", info.Name, n.Name, s.Name)
				}
			}
		}
	}
}

// TestNeighborsOffLadderBrackets pins the between-rungs case: a value
// the ladder skipped gets both bracketing rungs as neighbors.
func TestNeighborsOffLadderBrackets(t *testing.T) {
	info, ok := LookupInfo("H2DSE")
	if !ok {
		t.Skip("H2DSE not registered")
	}
	// cacheMB ladder at cap 5 is geometric from 1 to 1024; 100 sits
	// between two rungs whatever the stride.
	s, err := Parse("H2DSE-100-2-256")
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := info.Neighbors(s, enumOpts)
	if err != nil {
		t.Fatal(err)
	}
	var below, above bool
	for _, n := range nbrs {
		v := n.Int("cacheMB")
		if v < 100 {
			below = true
		}
		if v > 100 {
			above = true
		}
	}
	if !below || !above {
		t.Errorf("neighbors of off-ladder cacheMB=100 lack a bracketing rung (below=%v above=%v): %v", below, above, names(nbrs))
	}
}

// TestEnumerateUnboundedRejected asserts the infinite-space guard: a
// parameter unbounded above enumerates only with an explicit bound.
func TestEnumerateUnboundedRejected(t *testing.T) {
	info := &Info{
		Name: "UNBOUNDED-TEST",
		Params: []Param{
			{Name: "n", Doc: "unbounded above", Min: 1, Max: 0},
		},
	}
	if _, err := info.Enumerate(EnumOptions{}); err == nil {
		t.Fatal("Enumerate accepted an unbounded parameter without UnboundedMax")
	} else if !strings.Contains(err.Error(), "UnboundedMax") {
		t.Fatalf("unbounded-space error %q does not mention UnboundedMax", err)
	}
	specs, err := info.Enumerate(EnumOptions{MaxPerParam: 4, UnboundedMax: 64})
	if err != nil {
		t.Fatalf("Enumerate with UnboundedMax: %v", err)
	}
	if len(specs) == 0 {
		t.Fatal("bounded enumeration is empty")
	}
	for _, s := range specs {
		if v := s.Values[0].Int; v < 1 || v > 64 {
			t.Errorf("enumerated value %d outside [1, 64]", v)
		}
	}
	if _, err := info.Neighbors(specs[0], EnumOptions{}); err == nil {
		t.Fatal("Neighbors accepted an unbounded parameter without UnboundedMax")
	}
}

// TestEnumerateParamless pins the degenerate case: a family without
// parameters enumerates to exactly its base name and has no neighbors.
func TestEnumerateParamless(t *testing.T) {
	info, ok := LookupInfo("HYBRID2")
	if !ok {
		t.Skip("HYBRID2 not registered")
	}
	specs, err := info.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "HYBRID2" {
		t.Fatalf("paramless enumeration = %v, want [HYBRID2]", names(specs))
	}
	nbrs, err := info.Neighbors(specs[0], EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 0 {
		t.Fatalf("paramless family has neighbors: %v", names(nbrs))
	}
}

// TestLadders pins the subsampling shapes the search depends on.
func TestLadders(t *testing.T) {
	got := intLadder(1, 1024, 16)
	if got[0] != 1 || got[len(got)-1] != 1024 {
		t.Errorf("intLadder endpoints: %v", got)
	}
	if len(got) > 16 {
		t.Errorf("intLadder exceeded cap: %d values", len(got))
	}
	got = pow2Ladder(64, 4096, 3)
	if len(got) > 3 || got[0] != 64 || got[len(got)-1] != 4096 {
		t.Errorf("pow2Ladder(64, 4096, 3) = %v, want 3 values ending at 4096", got)
	}
	for _, v := range got {
		if v&(v-1) != 0 {
			t.Errorf("pow2Ladder produced non-power-of-two %d", v)
		}
	}
	if got := pow2Ladder(5000, 4096, 8); got != nil {
		t.Errorf("empty pow2 range produced %v", got)
	}
}

func names(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
