package dse

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomTrail generates an evaluated-candidate trail with deliberate
// collisions: objectives drawn from small discrete sets so duplicates,
// ties and dominance chains all occur, plus a sprinkle of infeasible
// points (which must never reach any frontier).
func randomTrail(rng *rand.Rand, n int) []Point {
	speedups := []float64{0.8, 1.0, 1.2, 1.2, 1.5, 2.0}
	capacities := []float64{16, 64, 64, 256, 1024}
	traffics := []float64{0.5, 1.0, 1.0, 2.0}
	pts := make([]Point, n)
	for i := range pts {
		if rng.Intn(8) == 0 {
			pts[i] = Point{Design: fmt.Sprintf("D%d", i), Infeasible: true, Err: "capacity"}
			continue
		}
		pts[i] = Point{
			Design: fmt.Sprintf("D%d", i),
			Objectives: Objectives{
				Speedup:    speedups[rng.Intn(len(speedups))],
				CapacityMB: capacities[rng.Intn(len(capacities))],
				TrafficGB:  traffics[rng.Intn(len(traffics))],
			},
		}
	}
	return pts
}

// TestMergeFrontiersProperty pins the identity distributed exploration
// rests on: for any partition of a trail into k shards, in any shard
// order and any within-shard order,
//
//	MergeFrontiers(FrontierOf(shard) for each shard) == FrontierOf(trail)
//
// If this ever breaks, sharded searches stop being byte-identical to
// single-process ones.
func TestMergeFrontiersProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(24)
		trail := randomTrail(rng, n)
		want := FrontierOf(trail)

		for k := 1; k <= 5; k++ {
			for perm := 0; perm < 4; perm++ {
				// Random permutation of the trail, split into k contiguous
				// shards at random boundaries (empty shards allowed).
				shuffled := append([]Point(nil), trail...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				cuts := make([]int, k+1)
				cuts[k] = len(shuffled)
				for i := 1; i < k; i++ {
					cuts[i] = rng.Intn(len(shuffled) + 1)
				}
				for i := 1; i < k; i++ { // sort the interior cuts
					for j := i + 1; j < k; j++ {
						if cuts[j] < cuts[i] {
							cuts[i], cuts[j] = cuts[j], cuts[i]
						}
					}
				}
				shards := make([][]Point, k)
				for i := 0; i < k; i++ {
					shards[i] = FrontierOf(shuffled[cuts[i]:cuts[i+1]])
				}
				got := MergeFrontiers(shards...)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d, k=%d, perm %d: merge(frontiers) != frontier(union)\nmerged: %+v\nwant:   %+v\ncuts: %v",
						trial, k, perm, got, want, cuts)
				}
			}
		}
	}
}

// TestMergeFrontiersEmpty pins the degenerate inputs.
func TestMergeFrontiersEmpty(t *testing.T) {
	if got := MergeFrontiers(); len(got) != 0 {
		t.Fatalf("merge of nothing = %+v", got)
	}
	if got := FrontierOf(nil); len(got) != 0 {
		t.Fatalf("frontier of nil = %+v", got)
	}
	only := []Point{{Design: "A", Objectives: Objectives{Speedup: 1, CapacityMB: 1, TrafficGB: 1}}}
	if got := MergeFrontiers(nil, FrontierOf(only), nil); !reflect.DeepEqual(got, only) {
		t.Fatalf("merge with empty shards = %+v, want %+v", got, only)
	}
}
