// Package lgm implements LLC-guided data migration (Vasilakis et al.,
// IPDPS'19): a flat NM+FM space where 2 KB segments are selected for
// migration based on the spatial locality they exhibit at the LLC —
// segments whose miss stream touched many distinct lines within an
// interval are migrated, and the lines already brought into the LLC are
// not re-fetched from FM (the scheme's bandwidth economization). The
// paper's exploration found a migration high watermark of 256 with 50 µs
// intervals best; those are the defaults.
package lgm

import (
	"math/bits"

	"hybridmem/internal/baselines/migcommon"
	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes LGM.
type Config struct {
	SectorBytes       int
	NMBytes, FMBytes  uint64
	MinLines          int           // distinct-line threshold for candidacy
	Watermark         int           // max migrations per interval (256)
	IntervalCycles    memtypes.Tick // 50 µs
	RemapCacheEntries int
	Seed              uint64
}

// Default returns the paper's LGM configuration for the given sizes.
func Default(nmBytes, fmBytes uint64, remapEntries int, seed uint64) Config {
	return Config{
		SectorBytes:       config.SectorBytes,
		NMBytes:           nmBytes,
		FMBytes:           fmBytes,
		MinLines:          12,
		Watermark:         256,
		IntervalCycles:    config.PaperIntervalCycles,
		RemapCacheEntries: remapEntries,
		Seed:              seed,
	}
}

// LGM implements memtypes.MemorySystem.
type LGM struct {
	cfg   Config
	space *migcommon.Space
	rc    *migcommon.RemapCache
	stats memtypes.MemStats

	touched  map[uint32]segInfo // FM segment -> observed locality
	candQ    []uint32           // segments qualified for migration
	fmDemand int                // FM demand accesses this interval
	lastSeg  uint32
	nmFIFO   uint32
	nextInt  memtypes.Tick
}

// segInfo tracks one FM segment: the distinct lines its misses touched
// (spatial locality) and the number of access episodes (reuse;
// consecutive accesses count once).
type segInfo struct {
	mask     uint32
	episodes uint16
	queued   bool
}

// New builds LGM over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *LGM {
	l := &LGM{
		cfg:     cfg,
		touched: make(map[uint32]segInfo, 1024),
		lastSeg: ^uint32(0),
		nextInt: cfg.IntervalCycles,
	}
	l.space = migcommon.NewSpace(cfg.SectorBytes, cfg.NMBytes, cfg.FMBytes, nm, fm, &l.stats, cfg.Seed)
	l.rc = migcommon.NewRemapCache(cfg.RemapCacheEntries, 16)
	return l
}

// Name implements MemorySystem.
func (l *LGM) Name() string { return "LGM" }

// Stats implements MemorySystem.
func (l *LGM) Stats() *memtypes.MemStats { return &l.stats }

// interval migrates queued candidate segments, paced by the demand the
// interval actually sent to FM so migration traffic cannot swamp demand
// traffic; unserved candidates carry over to the next interval.
func (l *LGM) interval(now memtypes.Tick) {
	budget := l.fmDemand / 64
	if budget > l.cfg.Watermark {
		budget = l.cfg.Watermark
	}
	// Serve the newest candidates first: they reflect the current phase.
	migrated := 0
	keepFrom := len(l.candQ)
	for i := len(l.candQ) - 1; i >= 0; i-- {
		seg := l.candQ[i]
		if migrated >= budget {
			break
		}
		keepFrom = i
		if l.space.Lookup(seg).NM {
			continue
		}
		lines := bits.OnesCount32(l.touched[seg].mask)
		l.space.Swap(now, seg, l.nmFIFO, lines*memtypes.CPULineBytes)
		l.nmFIFO = (l.nmFIFO + 1) % l.space.NMSectors
		migrated++
	}
	l.candQ = l.candQ[:keepFrom]
	l.fmDemand = 0
	// Bound the tracking structures (they model finite SRAM tables).
	if len(l.touched) > 32768 {
		for k := range l.touched {
			delete(l.touched, k)
		}
		l.candQ = l.candQ[:0]
	}
}

// Access implements MemorySystem.
func (l *LGM) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	for now >= l.nextInt {
		l.interval(l.nextInt)
		l.nextInt += l.cfg.IntervalCycles
	}
	l.stats.Requests++
	logical := uint32(uint64(addr) / uint64(l.cfg.SectorBytes))
	if logical >= l.space.Sectors() {
		logical %= l.space.Sectors()
	}
	offset := memtypes.Addr(uint64(addr) % uint64(l.cfg.SectorBytes))
	if !l.rc.Lookup(logical) {
		now = l.space.ReadRemapEntry(now, logical)
	}
	if !l.space.Lookup(logical).NM {
		l.fmDemand++
		line := uint(uint64(offset) / memtypes.CPULineBytes)
		info := l.touched[logical]
		info.mask |= 1 << line
		if logical != l.lastSeg {
			info.episodes++
		}
		// Candidates need both spatial locality (many distinct lines)
		// and reuse (revisited after leaving): one-pass streams are
		// cheap to serve from FM and not worth a swap.
		if !info.queued && info.episodes >= 3 && bits.OnesCount32(info.mask) >= l.cfg.MinLines {
			info.queued = true
			l.candQ = append(l.candQ, logical)
		}
		l.touched[logical] = info
	}
	l.lastSeg = logical
	return l.space.AccessData(now, logical, offset, write)
}

// Finish implements MemorySystem: runs the last pending interval.
func (l *LGM) Finish(now memtypes.Tick) { l.interval(now) }

// Space exposes the flat space for invariant tests.
func (l *LGM) Space() *migcommon.Space { return l.space }
