package hybridmem

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"hybridmem/internal/serve"
)

// ServeOptions configures the simulation service started by Serve. The
// zero value of every field has a usable default.
type ServeOptions struct {
	// Addr is the TCP listen address; empty means ":8080".
	Addr string
	// StateDir enables persistence: submitted job requests, finished
	// result documents and exploration checkpoints are written there, and
	// a restarted server resumes unfinished work from it. Empty keeps
	// everything in memory.
	StateDir string
	// CacheEntries and CacheBytes bound the content-addressed result
	// cache; <= 0 means 1024 entries and 64 MB.
	CacheEntries int
	CacheBytes   int64
	// QueueDepth bounds queued async jobs (sweeps, explorations); a full
	// queue answers 503. <= 0 means 64.
	QueueDepth int
	// JobHistory bounds how many settled jobs stay addressable over the
	// job endpoints before the oldest are retired; <= 0 means 4096.
	JobHistory int
	// Workers is the async job worker-pool size (<= 0 means 2); each job
	// fans its simulations out across Parallelism runner workers (<= 0
	// means GOMAXPROCS).
	Workers     int
	Parallelism int
	// DrainTimeout bounds the graceful shutdown after ctx is canceled:
	// queued and running jobs get this long to finish before they are
	// canceled (explorations flush a final checkpoint and resume on
	// restart). <= 0 means 30s.
	DrainTimeout time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is called with the bound listen address
	// once the server accepts connections — useful with ":0" ports.
	OnListen func(addr string)
}

// Serve runs the simulation-as-a-service HTTP server — the long-lived
// front end over Run/RunAll/Explore/ReplayTrace documented in
// internal/serve: content-addressed result caching, singleflight
// deduplication of concurrent identical requests, async jobs with
// streaming progress for sweeps and explorations, and a streaming trace
// upload endpoint.
//
// Serve blocks until ctx is canceled, then drains gracefully (liveness
// flips to 503, new work is rejected, in-flight work finishes up to
// DrainTimeout) and returns nil on a clean drain. cmd/hybridmemd wires
// this to SIGTERM/SIGINT.
func Serve(ctx context.Context, opts ServeOptions) error {
	if opts.Addr == "" {
		opts.Addr = ":8080"
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	srv, err := serve.New(serve.Options{
		CacheEntries: opts.CacheEntries,
		CacheBytes:   opts.CacheBytes,
		QueueDepth:   opts.QueueDepth,
		JobHistory:   opts.JobHistory,
		Workers:      opts.Workers,
		Parallelism:  opts.Parallelism,
		StateDir:     opts.StateDir,
		Logf:         opts.Logf,
	})
	if err != nil {
		return fmt.Errorf("hybridmem: %w", err)
	}
	// New started the worker pool (and possibly resubmitted recovered
	// jobs); every exit from here on must drain it, or an embedder whose
	// Listen failed (port in use) leaks running simulations.
	shutdown := func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil && opts.Logf != nil {
			opts.Logf("hybridmem: drain: %v", err)
		}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		shutdown()
		return fmt.Errorf("hybridmem: %w", err)
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	select {
	case err := <-served:
		// The HTTP server failed outright; drain the job pool before
		// reporting it.
		shutdown()
		return fmt.Errorf("hybridmem: serve: %w", err)
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	// Order matters: flipping the service to draining first makes
	// /healthz answer 503 (load balancers stop routing) and rejects new
	// jobs while the queue empties; only then is the HTTP server told to
	// stop, letting in-flight requests — including SSE streams watching
	// the draining jobs — complete.
	drainErr := srv.Shutdown(drainCtx)
	httpErr := hs.Shutdown(drainCtx)
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("hybridmem: serve: %w", err)
	}
	if drainErr != nil {
		return fmt.Errorf("hybridmem: drain: %w", drainErr)
	}
	if httpErr != nil {
		return fmt.Errorf("hybridmem: drain: %w", httpErr)
	}
	return nil
}
