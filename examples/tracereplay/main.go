// Trace replay: drive the simulator with an explicit memory trace instead
// of the built-in synthetic workloads — the workflow for users with
// Pin/DynamoRIO captures of their own applications. This example builds a
// small trace in memory (a pointer-chasing loop over a 4 MB ring buffer,
// one hot index array) and compares how the designs serve it.
package main

import (
	"fmt"
	"log"
	"strings"

	"hybridmem"
)

// buildTrace writes a synthetic pointer-chase + hot-array trace in the
// text format of internal/trace: "core gap addr-hex R|W".
func buildTrace() string {
	var b strings.Builder
	rng := uint64(12345)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	const region = 16 << 20  // 16 MB per core
	const window = 256 << 10 // 256 KB hot chase window, drifting slowly
	for core := 0; core < 8; core++ {
		pos := uint64(0)
		base := uint64(0)
		for i := 0; i < 20000; i++ {
			if i%5000 == 4999 {
				base = (base + 3<<20) % (region - window) // working-set drift
			}
			// Short-stride chase within the hot window: real reuse.
			pos = (pos + 64 + next(8)*64) % window
			fmt.Fprintf(&b, "%d 40 %x R\n", core, uint64(core)*region+base+pos)
			// Occasional cold lookup sprayed over the whole region.
			if i%32 == 0 {
				fmt.Fprintf(&b, "%d 10 %x W\n", core, uint64(core)*region+next(region/64)*64)
			}
		}
	}
	return b.String()
}

func main() {
	traceText := buildTrace()
	cfg := hybridmem.DefaultConfig()

	fmt.Println("Replaying a captured-style trace (pointer chase + hot index):")
	var baseCycles uint64
	for _, d := range []string{"Baseline", "TAGLESS", "HYBRID2"} {
		res, err := hybridmem.RunTrace(d, "chase", strings.NewReader(traceText), 2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if d == "Baseline" {
			baseCycles = res.Cycles
		}
		fmt.Printf("  %-8s cycles %9d  speedup %.2f  served-NM %3.0f%%  FM %.1f MB\n",
			d, res.Cycles, float64(baseCycles)/float64(res.Cycles),
			res.ServedNMFrac*100, float64(res.FMTrafficBytes)/(1<<20))
	}
	fmt.Println("\nThe drifting chase window rewards Hybrid2's staging cache, while")
	fmt.Println("the sprayed writes make page-granularity caching over-fetch. Use")
	fmt.Println("cmd/tracegen to export the built-in workloads in this format, or")
	fmt.Println("feed your own Pin/DynamoRIO captures.")
}
