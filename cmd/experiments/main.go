// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 1-2, Tables 1-2, Figures 11-18) as text series.
//
// Usage:
//
//	experiments                  # everything (minutes of CPU time)
//	experiments -run fig12,fig13 # selected artifacts
//	experiments -quick           # subsampled workloads, shorter streams
//	experiments -parallel 1      # force serial execution
//	experiments -designs         # the design registry as a Markdown table
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof -run fig12
//	                             # profile a sweep (inspect with go tool pprof)
//
//	experiments -runjson HYBRID2@lbm          # one run, shared JSON schema
//	experiments -sweepjson Baseline,HYBRID2@lbm,mcf
//	experiments -runjson HYBRID2@lbm -series -seriescsv epochs.csv
//	                             # sampled run: run-series JSON, epoch CSV
//
// Independent simulation runs fan out across -parallel workers (all CPUs
// by default); results are deterministic and identical to a serial run.
// Results are printed to stdout; EXPERIMENTS.md records a full run.
//
// -runjson and -sweepjson emit the versioned wire encoding of
// internal/api — byte-identical to what the hybridmemd server returns
// for the equivalent request, which CI diffs to prove the server path
// changes nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hybridmem"
	"hybridmem/internal/api"
	"hybridmem/internal/exp"
	"hybridmem/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	runSel := flag.String("run", "all",
		"comma-separated subset of: tab1,tab2,fig1,fig2,fig11,fig12,fig13,fig14,fig15,fig16,fig17,fig18,ablation,seeds,extras,paths,prefetch,detail")
	quick := flag.Bool("quick", false, "subsample workloads and shorten streams")
	scale := flag.Int("scale", 16, "capacity scale divisor")
	instr := flag.Uint64("instr", 1_000_000, "instructions per core")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "simulation runs evaluated concurrently")
	csvDir := flag.String("csv", "", "also write each artifact as CSV into this directory")
	jsonDir := flag.String("json", "", "also write each artifact as JSON into this directory")
	designs := flag.Bool("designs", false, "print the design registry as a Markdown table (the README's Designs section), then exit")
	ratio := flag.Int("ratio", 1, "NM:FM capacity ratio in sixteenths for -runjson/-sweepjson (1, 2 or 4)")
	runJSON := flag.String("runjson", "", "run one DESIGN@WORKLOAD and print the shared JSON result encoding, then exit")
	sweepJSON := flag.String("sweepjson", "", "run a D1,D2,...@W1,W2,... sweep and print the shared JSON result encoding, then exit")
	series := flag.Bool("series", false, "with -runjson: sample epoch telemetry and print the run-series document instead of the plain run document")
	seriesWindow := flag.Uint64("serieswindow", 0, "epoch window for -series in retired instructions (0 = default)")
	seriesCSV := flag.String("seriescsv", "", "with -series: also write the epoch series as CSV to this file")
	storeDir := flag.String("store", "", "persistent result-store directory: previously simulated runs are reused across invocations (empty: no reuse)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(store.Options{Dir: *storeDir}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *designs {
		printDesignTable()
		return 0
	}
	if *runJSON != "" || *sweepJSON != "" {
		opts := seriesFlags{Enabled: *series, WindowInstr: *seriesWindow, CSVPath: *seriesCSV}
		if err := emitJSON(*runJSON, *sweepJSON, *scale, *ratio, *instr, *seed, *parallel, st, opts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		return 0
	}
	if *series || *seriesCSV != "" {
		fmt.Fprintln(os.Stderr, "experiments: -series and -seriescsv require -runjson")
		return 2
	}

	var r *exp.Runner
	if *quick {
		r = exp.NewQuickRunner()
	} else {
		r = exp.NewRunner()
		r.InstrPerCore = *instr
	}
	r.Scale = *scale
	r.Seed = *seed
	r.Parallelism = *parallel
	r.Store = st

	want := map[string]bool{}
	for _, s := range strings.Split(*runSel, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	ran := 0

	start := time.Now()
	show := func(t exp.Table) {
		fmt.Println(t.String())
		ran++
		if *csvDir != "" {
			path := *csvDir + "/" + t.Slug() + ".csv"
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			data, err := t.JSON()
			if err == nil {
				err = os.WriteFile(*jsonDir+"/"+t.Slug()+".json", data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	if sel("tab1") {
		show(exp.Tab1(r.Scale))
	}
	if sel("tab2") {
		show(exp.Tab2(r))
	}
	if sel("fig1") {
		t, _ := exp.Fig1(r)
		show(t)
	}
	if sel("fig2") {
		t, _ := exp.Fig2(r)
		show(t)
	}
	if sel("fig11") {
		t, _ := exp.Fig11(r)
		show(t)
	}
	if sel("fig12") {
		for _, ratio := range []int{1, 2, 4} {
			t, _ := exp.Fig12(r, ratio)
			show(t)
		}
	}
	if sel("fig13") {
		t, _ := exp.Fig13(r)
		show(t)
	}
	if sel("fig14") {
		t, _ := exp.Fig14(r)
		show(t)
	}
	if sel("fig15") {
		t, _ := exp.Fig15(r)
		show(t)
	}
	if sel("fig16") {
		t, _ := exp.Fig16(r)
		show(t)
	}
	if sel("fig17") {
		t, _ := exp.Fig17(r)
		show(t)
	}
	if sel("fig18") {
		t, _ := exp.Fig18(r)
		show(t)
	}
	if sel("ablation") {
		t, _ := exp.Ablations(r)
		show(t)
	}
	if sel("seeds") {
		t, _ := exp.SeedSensitivity(r, []uint64{1, 2, 3})
		show(t)
	}
	if sel("extras") {
		t, _ := exp.ExtrasTable(r)
		show(t)
	}
	if sel("paths") {
		t, _ := exp.PathBreakdown(r)
		show(t)
	}
	if sel("prefetch") {
		t, _ := exp.PrefetchStudy(r)
		show(t)
	}
	if want["detail"] { // per-benchmark Figs 15-18 companion (not in "all")
		for _, t := range exp.Detail(r) {
			show(t)
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing selected by -run %q\n", *runSel)
		return 2
	}
	fmt.Printf("-- %d artifact(s) in %v --\n", ran, time.Since(start).Round(time.Millisecond))
	return 0
}

// seriesFlags carries the telemetry export selection of -runjson.
type seriesFlags struct {
	Enabled     bool
	WindowInstr uint64
	CSVPath     string
}

// emitJSON runs the -runjson or -sweepjson selection through the same
// engine path the server uses and prints the shared wire document —
// the byte-identical CLI counterpart CI diffs server responses against.
// With -series the single run is sampled and the run-series document
// (the server's ?series=1 response) is printed instead; the embedded
// result stays byte-identical to the plain document's.
func emitJSON(runSel, sweepSel string, scale, ratio int, instr, seed uint64, parallel int, st *store.Store, series seriesFlags) error {
	sel := runSel
	if sel == "" {
		sel = sweepSel
	}
	if (series.Enabled || series.CSVPath != "") && runSel == "" {
		return fmt.Errorf("-series and -seriescsv require -runjson (sweep series are served by hybridmemd)")
	}
	if series.CSVPath != "" && !series.Enabled {
		return fmt.Errorf("-seriescsv requires -series")
	}
	designs, workloads, err := parseRuns(sel)
	if err != nil {
		return err
	}
	if runSel != "" && (len(designs) != 1 || len(workloads) != 1) {
		return fmt.Errorf("-runjson takes exactly one DESIGN@WORKLOAD, got %q", runSel)
	}
	for _, d := range designs {
		if err := hybridmem.ValidateDesign(d); err != nil {
			return err
		}
	}
	cfg := hybridmem.Config{Scale: scale, NMRatio16: ratio, InstrPerCore: instr, Seed: seed}
	if err := cfg.Validate(); err != nil {
		return err
	}
	r := &exp.Runner{Scale: scale, InstrPerCore: instr, Seed: seed, Parallelism: parallel, Store: st}
	specs, err := exp.SweepSpecsByName(designs, workloads, ratio)
	if err != nil {
		return err
	}
	var doc any
	if series.Enabled {
		r.Telemetry = &exp.TelemetryOptions{WindowInstr: series.WindowInstr}
		sr, ser, err := r.ResultSeriesErr(specs[0].Workload, specs[0].Design, specs[0].Ratio16)
		if err != nil {
			return err
		}
		if series.CSVPath != "" {
			if err := os.WriteFile(series.CSVPath, api.SeriesCSV(api.FromSeries(ser)), 0o644); err != nil {
				return err
			}
		}
		doc = api.NewRunSeries(sr, ser)
	} else {
		results, err := r.ResultsParallel(specs)
		if err != nil {
			return err
		}
		if runSel != "" {
			doc = api.NewRun(results[0])
		} else {
			doc = api.NewSweep(results)
		}
	}
	data, err := api.Encode(doc)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// parseRuns splits "D1,D2@W1,W2" into design and workload lists.
func parseRuns(sel string) (designs, workloads []string, err error) {
	parts := strings.Split(sel, "@")
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("selection %q is not DESIGNS@WORKLOADS", sel)
	}
	split := func(s string) []string {
		var out []string
		for _, f := range strings.Split(s, ",") {
			if f = strings.TrimSpace(f); f != "" {
				out = append(out, f)
			}
		}
		return out
	}
	designs, workloads = split(parts[0]), split(parts[1])
	if len(designs) == 0 || len(workloads) == 0 {
		return nil, nil, fmt.Errorf("selection %q needs at least one design and one workload", sel)
	}
	return designs, workloads, nil
}

// printDesignTable renders the registry as the Markdown table the README
// embeds, so the docs and the engine share one source of truth.
func printDesignTable() {
	fmt.Println("| Design | Kind | Description |")
	fmt.Println("| --- | --- | --- |")
	for _, d := range hybridmem.AllDesigns() {
		doc := d.Doc
		if len(d.Params) > 0 {
			doc += fmt.Sprintf(" (e.g. `%s`)", d.Example)
		}
		fmt.Printf("| `%s` | %s | %s |\n", d.Grammar, d.Kind, doc)
	}
}
