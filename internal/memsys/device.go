// Package memsys models the two DRAM devices of the hybrid memory system:
// the 3D-stacked high-bandwidth near memory (HBM2) and the off-chip far
// memory (DDR4-3200). The model is event-driven rather than cycle-stepped:
// each access computes its start time from channel and bank availability,
// applies row-buffer timing (tCAS on a row hit, tRP+tRCD+tCAS on a miss)
// and burst occupancy, and advances the resource timestamps. This captures
// the bandwidth, latency and row-locality asymmetry between the devices —
// the properties the caching/migration policies under study exploit —
// without a per-cycle loop.
package memsys

import (
	"math/bits"

	"hybridmem/internal/memtypes"
)

// Config describes one DRAM device. All timing is expressed in CPU cycles
// (3.2 GHz), converted from the device parameters of Table 1.
type Config struct {
	Name            string
	Channels        int     // independent channels
	BanksPerChannel int     // banks per channel
	RowBytes        int     // row-buffer size per bank
	BytesPerCycle   float64 // peak data-bus bytes per CPU cycle, per channel
	TCAS            memtypes.Tick
	TRCD            memtypes.Tick
	TRP             memtypes.Tick
	InterleaveBytes int     // channel interleaving granularity
	RWPicoJPerBit   float64 // read/write + I/O energy, pJ per bit
	ActPreNanoJ     float64 // activate+precharge energy, nJ per activation

	// Refresh modeling (optional; the paper excludes refresh energy from
	// its dynamic-energy figures, so the defaults leave it off). When
	// TREFI > 0, each bank is unavailable for TRFC every TREFI cycles.
	TREFI memtypes.Tick // refresh interval (all-bank, per device)
	TRFC  memtypes.Tick // refresh cycle time (bank blocked)
}

// WithRefresh returns a copy of the config with DDR4-class refresh
// enabled: tREFI 7.8 µs and tRFC 350 ns at 3.2 GHz CPU cycles.
func (c Config) WithRefresh() Config {
	c.TREFI = 24960
	c.TRFC = 1120
	return c
}

// HBM2Config returns the near-memory device of Table 1: HBM2 at 2 GHz,
// 8 channels of 128 bits, 8 banks, tCAS-tRCD-tRP 7-7-7 (2 GHz cycles),
// 6.4 pJ/bit access energy and 15 nJ activate energy.
func HBM2Config() Config {
	// 7 cycles at 2 GHz = 11.2 CPU cycles at 3.2 GHz.
	const t = memtypes.Tick(11)
	return Config{
		Name:            "HBM2",
		Channels:        8,
		BanksPerChannel: 8,
		RowBytes:        2048,
		// 128-bit channel at 2 Gb/s/pin: 32 GB/s = 10 B per CPU cycle.
		BytesPerCycle:   10.0,
		TCAS:            t,
		TRCD:            t,
		TRP:             t,
		InterleaveBytes: 256,
		RWPicoJPerBit:   6.4,
		ActPreNanoJ:     15,
	}
}

// DDR4Config returns the far-memory device of Table 1: DDR4-3200,
// 2 channels of 64 bits, 8 banks, tCAS-tRCD-tRP 22-22-22 (1.6 GHz command
// clock), 33 pJ/bit access energy and 15 nJ activate energy.
func DDR4Config() Config {
	// 22 cycles at 1.6 GHz = 44 CPU cycles at 3.2 GHz.
	const t = memtypes.Tick(44)
	return Config{
		Name:            "DDR4-3200",
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		// 64-bit channel at 3.2 GT/s: 25.6 GB/s = 8 B per CPU cycle.
		BytesPerCycle:   8.0,
		TCAS:            t,
		TRCD:            t,
		TRP:             t,
		InterleaveBytes: 256,
		RWPicoJPerBit:   33,
		ActPreNanoJ:     15,
	}
}

type bank struct {
	openRow     int64 // -1: closed
	freeAt      memtypes.Tick
	refreshedAt memtypes.Tick // start of the last refresh window applied
}

type channel struct {
	busFreeAt memtypes.Tick // demand-traffic cursor
	bgFreeAt  memtypes.Tick // background-traffic cursor (fills, migrations)
	banks     []bank
}

// Device is one DRAM device instance. It is not safe for concurrent use;
// the simulation driver serializes accesses in (approximate) time order.
type Device struct {
	cfg      Config
	channels []channel

	// Address-mapping fast path: every shipped config has power-of-two
	// channel count, interleave granularity, row size and bank count, so
	// the four divisions per access reduce to shifts and masks. pow2
	// false falls back to the general divide (custom configs).
	pow2     bool
	ilvShift uint
	chMask   uint64
	rowShift uint
	bankMask uint64
	// burst64 memoizes the burst cycles of the dominant 64 B transfer,
	// computed by the exact expression burst() would evaluate.
	burst64 memtypes.Tick

	// Traffic and energy accounting.
	ReadBytes   uint64
	WriteBytes  uint64
	Activations uint64
	Reads       uint64
	Writes      uint64
	Refreshes   uint64
	busyCycles  float64
}

// New creates a device with all banks closed and idle.
func New(cfg Config) *Device {
	d := &Device{cfg: cfg}
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChannel)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = -1
		}
	}
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	if pow2(cfg.InterleaveBytes) && pow2(cfg.Channels) && pow2(cfg.RowBytes) && pow2(cfg.BanksPerChannel) {
		d.pow2 = true
		d.ilvShift = uint(bits.TrailingZeros(uint(cfg.InterleaveBytes)))
		d.chMask = uint64(cfg.Channels - 1)
		d.rowShift = uint(bits.TrailingZeros(uint(cfg.RowBytes)))
		d.bankMask = uint64(cfg.BanksPerChannel - 1)
	}
	d.burst64 = memtypes.Tick(float64(64)/cfg.BytesPerCycle + 0.999)
	return d
}

// locate resolves an address to its channel, bank and row.
func (d *Device) locate(addr memtypes.Addr) (*channel, *bank, int64) {
	a := uint64(addr)
	if d.pow2 {
		ch := &d.channels[(a>>d.ilvShift)&d.chMask]
		row := int64(a >> d.rowShift)
		return ch, &ch.banks[uint64(row)&d.bankMask], row
	}
	ch := &d.channels[(a/uint64(d.cfg.InterleaveBytes))%uint64(d.cfg.Channels)]
	row := int64(a / uint64(d.cfg.RowBytes))
	return ch, &ch.banks[uint64(row)%uint64(d.cfg.BanksPerChannel)], row
}

// burst returns the data-bus occupancy of a transfer, memoized for the
// dominant 64 B size.
func (d *Device) burst(bytes int) memtypes.Tick {
	if bytes == 64 {
		return d.burst64
	}
	return memtypes.Tick(float64(bytes)/d.cfg.BytesPerCycle + 0.999)
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// applyRefresh blocks the bank for TRFC if a refresh window started since
// the bank last refreshed: a lazy model of periodic all-bank refresh that
// costs nothing when refresh is disabled (TREFI == 0). Refreshing closes
// the row buffer.
func (d *Device) applyRefresh(bk *bank, now memtypes.Tick) {
	if d.cfg.TREFI == 0 {
		return
	}
	window := now / d.cfg.TREFI * d.cfg.TREFI
	if window <= bk.refreshedAt && bk.refreshedAt != 0 {
		return
	}
	bk.refreshedAt = window
	if end := window + d.cfg.TRFC; end > bk.freeAt {
		bk.freeAt = end
	}
	bk.openRow = -1
	d.Refreshes++
}

// Access performs a transfer of size bytes at addr starting no earlier
// than now and returns the completion time. Write transfers complete when
// the data has been accepted by the device. The call updates channel/bank
// availability, row-buffer state, and traffic/energy counters.
func (d *Device) Access(now memtypes.Tick, addr memtypes.Addr, bytes int, write bool) memtypes.Tick {
	if bytes <= 0 {
		return now
	}
	ch, bk, row := d.locate(addr)
	d.applyRefresh(bk, now)

	start := now
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if bk.freeAt > start {
		start = bk.freeAt
	}

	var access memtypes.Tick
	if bk.openRow == row {
		access = d.cfg.TCAS
	} else {
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		bk.openRow = row
		d.Activations++
	}
	burst := d.burst(bytes)
	done := start + access + burst

	// The data bus is occupied for the burst; command/CAS phases of
	// other banks may overlap with it.
	ch.busFreeAt = start + burst
	bk.freeAt = done
	d.busyCycles += float64(burst)

	if write {
		d.WriteBytes += uint64(bytes)
		d.Writes++
	} else {
		d.ReadBytes += uint64(bytes)
		d.Reads++
	}
	return done
}

// AccessBG performs a background transfer: cache fills, write-backs,
// migrations and metadata updates that a real memory controller schedules
// at lower priority than demand traffic. Background transfers queue
// behind both demand and earlier background work, but never delay demand
// accesses (which only observe the demand cursor). They update row-buffer
// state and all traffic/energy counters.
func (d *Device) AccessBG(now memtypes.Tick, addr memtypes.Addr, bytes int, write bool) memtypes.Tick {
	if bytes <= 0 {
		return now
	}
	ch, bk, row := d.locate(addr)
	d.applyRefresh(bk, now)

	start := now
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if ch.bgFreeAt > start {
		start = ch.bgFreeAt
	}
	if bk.freeAt > start {
		start = bk.freeAt
	}
	var access memtypes.Tick
	if bk.openRow == row {
		access = d.cfg.TCAS
	} else {
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		bk.openRow = row
		d.Activations++
	}
	burst := d.burst(bytes)
	done := start + access + burst
	ch.bgFreeAt = start + burst
	bk.freeAt = done
	d.busyCycles += float64(burst)
	if write {
		d.WriteBytes += uint64(bytes)
		d.Writes++
	} else {
		d.ReadBytes += uint64(bytes)
		d.Reads++
	}
	return done
}

// AccessCriticalFirst performs a read of bytes at addr that returns the
// demanded critical chunk early: the access latency is charged once, the
// critical bytes complete first, and the channel stays occupied for the
// full burst (critical-word-first fills). It returns the completion times
// of the critical chunk and of the whole transfer.
func (d *Device) AccessCriticalFirst(now memtypes.Tick, addr memtypes.Addr, bytes, critical int) (criticalDone, done memtypes.Tick) {
	if bytes <= 0 {
		return now, now
	}
	if critical <= 0 || critical > bytes {
		critical = bytes
	}
	ch, bk, row := d.locate(addr)
	d.applyRefresh(bk, now)

	start := now
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if bk.freeAt > start {
		start = bk.freeAt
	}
	var access memtypes.Tick
	if bk.openRow == row {
		access = d.cfg.TCAS
	} else {
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		bk.openRow = row
		d.Activations++
	}
	critBurst := d.burst(critical)
	fullBurst := d.burst(bytes)
	criticalDone = start + access + critBurst
	done = start + access + fullBurst

	ch.busFreeAt = start + fullBurst
	bk.freeAt = done
	d.busyCycles += float64(fullBurst)
	d.ReadBytes += uint64(bytes)
	d.Reads++
	return criticalDone, done
}

// DynamicEnergyNanoJ returns the dynamic energy consumed so far:
// read/write+I/O energy proportional to bits moved plus activate/precharge
// energy per activation (Table 1).
func (d *Device) DynamicEnergyNanoJ() float64 {
	bits := float64(d.ReadBytes+d.WriteBytes) * 8
	return bits*d.cfg.RWPicoJPerBit/1000 + float64(d.Activations)*d.cfg.ActPreNanoJ
}

// BusyCycles returns accumulated data-bus occupancy across channels,
// useful for utilization sanity checks in tests.
func (d *Device) BusyCycles() float64 { return d.busyCycles }

// PeakBandwidthBytesPerCycle returns the aggregate peak bandwidth.
func (d *Device) PeakBandwidthBytesPerCycle() float64 {
	return d.cfg.BytesPerCycle * float64(d.cfg.Channels)
}
