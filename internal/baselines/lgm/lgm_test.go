package lgm

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall(seed uint64) *LGM {
	cfg := Default(1<<20, 8<<20, 512, seed)
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestSpatialSegmentMigrates(t *testing.T) {
	l := newSmall(1)
	var base memtypes.Addr
	var logical uint32
	for s := uint32(0); s < l.Space().Sectors(); s++ {
		if !l.Space().Lookup(s).NM {
			logical = s
			base = memtypes.Addr(s) * 2048
			break
		}
	}
	// Touch 16 distinct lines of the sector (>= MinLines) across four
	// separate visits (>= 3 reuse episodes), with unrelated accesses in
	// between; unrelated traffic also funds the demand-paced budget.
	var noise memtypes.Addr = 1 << 22
	var now memtypes.Tick
	for visit := 0; visit < 4; visit++ {
		for i := 0; i < 4; i++ {
			now += 100
			l.Access(now, base+memtypes.Addr((visit*4+i)*64), false)
		}
		for i := 0; i < 20; i++ {
			now += 100
			noise += 2048
			l.Access(now, noise, false)
		}
	}
	l.Access(l.cfg.IntervalCycles+100, base, false)
	if !l.Space().Lookup(logical).NM {
		t.Fatal("high-spatial-locality segment not migrated")
	}
}

func TestLowSpatialSegmentStays(t *testing.T) {
	l := newSmall(2)
	var base memtypes.Addr
	var logical uint32
	for s := uint32(0); s < l.Space().Sectors(); s++ {
		if !l.Space().Lookup(s).NM {
			logical = s
			base = memtypes.Addr(s) * 2048
			break
		}
	}
	// Hammer a single line: high access count but one distinct line.
	var now memtypes.Tick
	for i := 0; i < 500; i++ {
		now += 100
		l.Access(now, base, false)
		now += 100
		l.Access(now, memtypes.Addr(1<<22)+memtypes.Addr(i)*2048, false)
	}
	l.Access(l.cfg.IntervalCycles+100, base, false)
	if l.Space().Lookup(logical).NM {
		t.Fatal("single-line segment migrated despite poor spatial locality")
	}
}

func TestBandwidthEconomization(t *testing.T) {
	// LGM must not re-fetch the lines already seen at the LLC: FM read
	// traffic for a migration of a fully touched sector is less than the
	// full sector.
	l := newSmall(3)
	var base memtypes.Addr
	for s := uint32(0); s < l.Space().Sectors(); s++ {
		if !l.Space().Lookup(s).NM {
			base = memtypes.Addr(s) * 2048
			break
		}
	}
	// Touch all 32 lines across four visits (with noise in between to
	// count reuse episodes and fund the budget), then cross the interval.
	var noise memtypes.Addr = 1 << 22
	var now memtypes.Tick
	for visit := 0; visit < 4; visit++ {
		for i := 0; i < 8; i++ {
			now += 100
			l.Access(now, base+memtypes.Addr((visit*8+i)*64), false)
		}
		for i := 0; i < 20; i++ {
			now += 100
			noise += 2048
			l.Access(now, noise, false)
		}
	}
	demandReads := l.Stats().FMReadBytes
	l.Access(l.cfg.IntervalCycles+100, base, false) // triggers interval migration
	if l.Stats().Migrations == 0 {
		t.Fatal("fully staged sector not migrated")
	}
	// The staged sector's own lines are all in the LLC: its migration
	// must not re-read them from FM. Other queued candidates (noise) may
	// move, so bound the growth by what those could cost.
	migrationReads := l.Stats().FMReadBytes - demandReads
	if migrationReads > uint64(l.Stats().Migrations-1)*2048+64 {
		t.Fatalf("migration re-fetched %d bytes of fully staged sector", migrationReads)
	}
}

func TestWatermarkCapsMigrations(t *testing.T) {
	cfg := Default(1<<20, 8<<20, 512, 4)
	cfg.Watermark = 2
	l := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
	// Make many segments candidates in one interval.
	count := 0
	var now memtypes.Tick
	for s := uint32(0); s < l.Space().Sectors() && count < 20; s++ {
		if l.Space().Lookup(s).NM {
			continue
		}
		base := memtypes.Addr(s) * 2048
		for i := 0; i < 10; i++ {
			now += 10
			l.Access(now, base+memtypes.Addr(i*64), false)
		}
		count++
	}
	l.Finish(now + 1)
	if l.Stats().Migrations > 2 {
		t.Fatalf("migrations %d exceed watermark 2", l.Stats().Migrations)
	}
}

func TestInvariantsUnderTraffic(t *testing.T) {
	l := newSmall(5)
	rng := rand.New(rand.NewSource(9))
	space := uint64(l.Space().Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 40000; i++ {
		now += 60
		l.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	l.Finish(now)
	if !l.Space().CheckInvariants() {
		t.Fatal("remap bijection broken")
	}
	s := l.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served sums %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
}
