package core

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newFreeAware(t *testing.T) *Hybrid2 {
	t.Helper()
	cfg := smallConfig()
	cfg.FreeSpaceAware = true
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestMarkFreeTracksSectors(t *testing.T) {
	h := newFreeAware(t)
	h.MarkFree(0, 8*2048)
	if got := h.UnusedSectors(); got != 8 {
		t.Fatalf("unused sectors %d, want 8", got)
	}
	h.MarkUsed(0, 4*2048)
	if got := h.UnusedSectors(); got != 4 {
		t.Fatalf("unused sectors after re-alloc %d, want 4", got)
	}
}

func TestMarkFreePartialSectorsIgnored(t *testing.T) {
	// Only fully covered sectors may be dropped.
	h := newFreeAware(t)
	h.MarkFree(100, 2048) // covers no whole sector
	if got := h.UnusedSectors(); got != 0 {
		t.Fatalf("partial free marked %d sectors", got)
	}
}

func TestHintsIgnoredWhenDisabled(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
	h.MarkFree(0, 1<<20)
	if h.UnusedSectors() != 0 || h.SavedCopies() != 0 {
		t.Fatal("disabled extension recorded hints")
	}
}

func TestFreeSectorsSkipAllocationCopies(t *testing.T) {
	run := func(aware bool) (fmWrites uint64, saved uint64) {
		cfg := smallConfig()
		cfg.FreeSpaceAware = aware
		cfg.Mode = MigrateAll // force allocation pressure
		h := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
		if aware {
			// The whole address space is hinted free: every displacement
			// can skip its copy.
			h.MarkFree(0, uint64(h.Sectors())*2048)
		}
		rng := rand.New(rand.NewSource(3))
		space := uint64(h.Sectors()) * 2048
		var now memtypes.Tick
		for i := 0; i < 30000; i++ {
			now += 40
			h.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
		}
		if !h.CheckInvariants() {
			t.Fatal("invariants violated")
		}
		return h.Stats().FMWriteBytes, h.SavedCopies()
	}
	base, _ := run(false)
	aware, saved := run(true)
	if saved == 0 {
		t.Fatal("free-space extension saved no copies")
	}
	if aware >= base {
		t.Fatalf("FM write traffic with hints (%d) not below base (%d)", aware, base)
	}
}

func TestFreeSectorEvictionSkipsWriteback(t *testing.T) {
	h := newFreeAware(t)
	h.MarkFree(0, uint64(h.Sectors())*2048)
	// Dirty many set-0 FM sectors to force dirty evictions.
	count := 0
	var now memtypes.Tick
	for l := uint32(0); l < h.Sectors() && count < 3*h.cfg.Assoc; l++ {
		if !h.remap[l].nm && int(l)%h.sets == 0 {
			now += 2000
			h.Access(now, memtypes.Addr(l)*2048, true)
			count++
		}
	}
	if h.Stats().FMWriteBytes != 0 {
		t.Fatalf("evictions of hinted-free sectors wrote %d bytes back", h.Stats().FMWriteBytes)
	}
	if h.SavedCopies() == 0 {
		t.Fatal("no copies saved")
	}
}

func TestFreeAwareInvariantsUnderChurn(t *testing.T) {
	h := newFreeAware(t)
	rng := rand.New(rand.NewSource(21))
	space := uint64(h.Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 30000; i++ {
		now += 30
		addr := memtypes.Addr(rng.Uint64() % space)
		switch rng.Intn(20) {
		case 0:
			h.MarkFree(addr&^2047, 4*2048)
		case 1:
			h.MarkUsed(addr&^2047, 4*2048)
		default:
			h.Access(now, addr, rng.Intn(4) == 0)
		}
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated under hint churn")
	}
}
