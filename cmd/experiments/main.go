// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 1-2, Tables 1-2, Figures 11-18) as text series.
//
// Usage:
//
//	experiments                  # everything (minutes of CPU time)
//	experiments -run fig12,fig13 # selected artifacts
//	experiments -quick           # subsampled workloads, shorter streams
//	experiments -parallel 1      # force serial execution
//	experiments -designs         # the design registry as a Markdown table
//
// Independent simulation runs fan out across -parallel workers (all CPUs
// by default); results are deterministic and identical to a serial run.
// Results are printed to stdout; EXPERIMENTS.md records a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hybridmem"
	"hybridmem/internal/exp"
)

func main() {
	runSel := flag.String("run", "all",
		"comma-separated subset of: tab1,tab2,fig1,fig2,fig11,fig12,fig13,fig14,fig15,fig16,fig17,fig18,ablation,seeds,extras,paths,prefetch,detail")
	quick := flag.Bool("quick", false, "subsample workloads and shorten streams")
	scale := flag.Int("scale", 16, "capacity scale divisor")
	instr := flag.Uint64("instr", 1_000_000, "instructions per core")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "simulation runs evaluated concurrently")
	csvDir := flag.String("csv", "", "also write each artifact as CSV into this directory")
	jsonDir := flag.String("json", "", "also write each artifact as JSON into this directory")
	designs := flag.Bool("designs", false, "print the design registry as a Markdown table (the README's Designs section), then exit")
	flag.Parse()

	if *designs {
		printDesignTable()
		return
	}

	var r *exp.Runner
	if *quick {
		r = exp.NewQuickRunner()
	} else {
		r = exp.NewRunner()
		r.InstrPerCore = *instr
	}
	r.Scale = *scale
	r.Seed = *seed
	r.Parallelism = *parallel

	want := map[string]bool{}
	for _, s := range strings.Split(*runSel, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	ran := 0

	start := time.Now()
	show := func(t exp.Table) {
		fmt.Println(t.String())
		ran++
		if *csvDir != "" {
			path := *csvDir + "/" + t.Slug() + ".csv"
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			data, err := t.JSON()
			if err == nil {
				err = os.WriteFile(*jsonDir+"/"+t.Slug()+".json", data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	if sel("tab1") {
		show(exp.Tab1(r.Scale))
	}
	if sel("tab2") {
		show(exp.Tab2(r))
	}
	if sel("fig1") {
		t, _ := exp.Fig1(r)
		show(t)
	}
	if sel("fig2") {
		t, _ := exp.Fig2(r)
		show(t)
	}
	if sel("fig11") {
		t, _ := exp.Fig11(r)
		show(t)
	}
	if sel("fig12") {
		for _, ratio := range []int{1, 2, 4} {
			t, _ := exp.Fig12(r, ratio)
			show(t)
		}
	}
	if sel("fig13") {
		t, _ := exp.Fig13(r)
		show(t)
	}
	if sel("fig14") {
		t, _ := exp.Fig14(r)
		show(t)
	}
	if sel("fig15") {
		t, _ := exp.Fig15(r)
		show(t)
	}
	if sel("fig16") {
		t, _ := exp.Fig16(r)
		show(t)
	}
	if sel("fig17") {
		t, _ := exp.Fig17(r)
		show(t)
	}
	if sel("fig18") {
		t, _ := exp.Fig18(r)
		show(t)
	}
	if sel("ablation") {
		t, _ := exp.Ablations(r)
		show(t)
	}
	if sel("seeds") {
		t, _ := exp.SeedSensitivity(r, []uint64{1, 2, 3})
		show(t)
	}
	if sel("extras") {
		t, _ := exp.ExtrasTable(r)
		show(t)
	}
	if sel("paths") {
		t, _ := exp.PathBreakdown(r)
		show(t)
	}
	if sel("prefetch") {
		t, _ := exp.PrefetchStudy(r)
		show(t)
	}
	if want["detail"] { // per-benchmark Figs 15-18 companion (not in "all")
		for _, t := range exp.Detail(r) {
			show(t)
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing selected by -run %q\n", *runSel)
		os.Exit(2)
	}
	fmt.Printf("-- %d artifact(s) in %v --\n", ran, time.Since(start).Round(time.Millisecond))
}

// printDesignTable renders the registry as the Markdown table the README
// embeds, so the docs and the engine share one source of truth.
func printDesignTable() {
	fmt.Println("| Design | Kind | Description |")
	fmt.Println("| --- | --- | --- |")
	for _, d := range hybridmem.AllDesigns() {
		doc := d.Doc
		if len(d.Params) > 0 {
			doc += fmt.Sprintf(" (e.g. `%s`)", d.Example)
		}
		fmt.Printf("| `%s` | %s | %s |\n", d.Grammar, d.Kind, doc)
	}
}
