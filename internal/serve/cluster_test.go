package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"hybridmem/internal/api"
	"hybridmem/internal/cluster"
)

// clusterTestServer builds a coordinator-mode server with n loopback
// runners attached — the serve-layer face of the distributed plane.
func clusterTestServer(t *testing.T, n int) (*Server, *cluster.Coordinator) {
	t.Helper()
	c := cluster.NewCoordinator(cluster.CoordinatorOptions{
		ShardSize:        2,
		MaxInFlight:      1,
		LocalFallback:    true,
		LocalParallelism: 2,
	})
	c.AttachLoopback(n, 1)
	return newTestServer(t, Options{Cluster: c, Parallelism: 2}), c
}

// runJob submits a job request and returns the settled job's result
// document bytes.
func runJob(t *testing.T, s *Server, path string, req any) []byte {
	t.Helper()
	w := postJSON(t, s.Handler(), path, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit %s: %d %s", path, w.Code, w.Body)
	}
	var sub submitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, s.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("job %s failed: %+v", sub.JobID, st)
	}
	res := get(s.Handler(), "/v1/jobs/"+sub.JobID+"/result")
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d %s", res.Code, res.Body)
	}
	return res.Body.Bytes()
}

// TestClusterSweepMatchesLocalServer pins the serve-layer face of the
// distributed guarantee: the same sweep submitted to a plain server and
// to a coordinator sharding across loopback runners yields the same
// document, byte for byte.
func TestClusterSweepMatchesLocalServer(t *testing.T) {
	req := sweepRequest{
		Designs:   []string{"Baseline", "MPOD", "HYBRID2"},
		Workloads: []string{"lbm", "mcf"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
	plain := newTestServer(t, Options{Parallelism: 2})
	want := runJob(t, plain, "/v1/sweep", req)

	clustered, c := clusterTestServer(t, 3)
	got := runJob(t, clustered, "/v1/sweep", req)
	if !bytes.Equal(got, want) {
		t.Fatalf("clustered sweep differs from local server:\nlocal: %s\nclustered: %s", want, got)
	}
	if st := c.Stats(); st.ShardsCompleted == 0 {
		t.Fatalf("sweep never went through the cluster: %+v", st)
	}
}

// TestClusterExploreMatchesLocalServer does the same for a screened
// exploration — search state stays on the coordinator, only evaluations
// distribute, and the final document is byte-identical.
func TestClusterExploreMatchesLocalServer(t *testing.T) {
	req := exploreRequest{
		Families:           []string{"H2DSE"},
		Workloads:          []string{"mcf"},
		Budget:             6,
		BatchSize:          2,
		Seed:               7,
		MaxPerParam:        3,
		ScreenInstrPerCore: 8_000,
		Config:             api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 20_000, Seed: 1},
	}
	plain := newTestServer(t, Options{Parallelism: 2})
	want := runJob(t, plain, "/v1/explore", req)

	clustered, c := clusterTestServer(t, 3)
	got := runJob(t, clustered, "/v1/explore", req)
	if !bytes.Equal(got, want) {
		t.Fatalf("clustered exploration differs from local server:\nlocal: %s\nclustered: %s", want, got)
	}
	if st := c.Stats(); st.ShardsCompleted == 0 {
		t.Fatalf("exploration never went through the cluster: %+v", st)
	}
}

// TestClusterMetricsAndHealth checks the operational surface: /metrics
// exposes the cluster counters and per-runner gauges, /healthz reports
// the coordinator role and live-runner count, and the cluster join
// endpoint is routed.
func TestClusterMetricsAndHealth(t *testing.T) {
	s, _ := clusterTestServer(t, 2)
	runJob(t, s, "/v1/sweep", sweepRequest{
		Designs:   []string{"Baseline"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	})

	w := get(s.Handler(), "/metrics")
	body := w.Body.String()
	for _, line := range []string{
		"hybridmem_cluster_runners_live 2",
		"hybridmem_cluster_shards_dispatched_total",
		"hybridmem_cluster_shards_completed_total",
		"hybridmem_cluster_shards_stolen_total",
		"hybridmem_cluster_shards_retried_total",
		`hybridmem_cluster_runner_inflight{runner="loopback-1"}`,
		`hybridmem_cluster_runner_shards_total{runner="loopback-2"}`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	h := get(s.Handler(), "/healthz")
	var health map[string]string
	if err := json.Unmarshal(h.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["role"] != "coordinator" || health["live_runners"] != "2" {
		t.Fatalf("coordinator health = %v", health)
	}

	// The join endpoint is wired and validates version skew.
	skew := postJSON(t, s.Handler(), "/cluster/v1/join", map[string]any{
		"proto": -1, "schema": api.SchemaVersion, "engine": api.EngineVersion,
		"id": "x", "addr": "http://127.0.0.1:1",
	})
	if skew.Code != http.StatusBadRequest {
		t.Fatalf("skewed join answered %d, want 400", skew.Code)
	}
}

// TestPlainServerHasNoClusterSurface pins the inverse: without a
// coordinator, no cluster metrics, no cluster routes, plain health.
func TestPlainServerHasNoClusterSurface(t *testing.T) {
	s := newTestServer(t, Options{})
	if body := get(s.Handler(), "/metrics").Body.String(); strings.Contains(body, "hybridmem_cluster_") {
		t.Fatal("plain server exposes cluster metrics")
	}
	if w := postJSON(t, s.Handler(), "/cluster/v1/join", map[string]any{}); w.Code == http.StatusBadRequest {
		// A routed handler answers 400 for a bad body; an unrouted path
		// must 404 instead.
		t.Fatalf("plain server routes /cluster/v1/join: %d", w.Code)
	}
	var health map[string]string
	if err := json.Unmarshal(get(s.Handler(), "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["role"]; ok {
		t.Fatalf("plain server reports a cluster role: %v", health)
	}
}
