// Package store is the tiered content-addressed result store shared by
// the experiment runner, the serve layer, the DSE searcher and the
// cluster execution plane. Every entry is addressed by a canonical
// SHA-256 fingerprint (see Fingerprint and RunKey) that folds in the
// engine and schema versions, so a change to either invalidates every
// stale entry by construction rather than by cleanup.
//
// A store has two tiers: a byte-bounded in-memory LRU (the serve
// layer's former result cache, generalized) over an optional on-disk
// content-addressed tier. Disk entries are written atomically and
// durably via internal/atomicfile, carry a checksum envelope so
// truncated or bit-flipped entries are detected, discarded and
// re-simulated — never served — and are garbage-collected
// least-recently-used under a configurable byte bound.
//
// Invalidation rule: any change to simulation semantics or to the
// layout of a persisted record must bump api.EngineVersion (wire-format
// changes bump api.SchemaVersion); both are folded into every key, so
// old entries simply stop being addressable. The store never needs a
// migration path.
package store

// Tier identifies which tier satisfied a Get.
type Tier int

const (
	// TierNone means the key was absent from every tier.
	TierNone Tier = iota
	// TierMem means the in-memory LRU held the entry.
	TierMem
	// TierDisk means the entry was read (and verified) from disk.
	TierDisk
)

func (t Tier) String() string {
	switch t {
	case TierMem:
		return "mem"
	case TierDisk:
		return "disk"
	}
	return "none"
}

// Options configures a Store. The zero value is a memory-only store
// with the default bounds.
type Options struct {
	// MemEntries bounds the memory tier's entry count; <= 0 means 1024.
	MemEntries int
	// MemBytes bounds the memory tier's payload bytes; <= 0 means 64 MB.
	MemBytes int64
	// Dir names the on-disk tier's directory, created if absent; empty
	// disables the disk tier entirely (the store is memory-only).
	Dir string
	// MaxBytes bounds the disk tier's total file bytes; <= 0 means
	// unbounded. Exceeding the bound garbage-collects least-recently
	// used entries.
	MaxBytes int64
}

// Store is a two-tier content-addressed result store. All methods are
// safe for concurrent use, and every method tolerates a nil receiver
// (reporting misses and dropping writes) so callers can thread an
// optional store without guarding each use.
type Store struct {
	mem  *LRU[[]byte]
	disk *diskTier
}

// Open creates a store, scanning an existing disk directory into the
// GC index. Entries left by previous processes (or written concurrently
// by other processes sharing the directory) are served as disk hits;
// corrupt ones are discarded on first read.
func Open(o Options) (*Store, error) {
	if o.MemEntries <= 0 {
		o.MemEntries = 1024
	}
	if o.MemBytes <= 0 {
		o.MemBytes = 64 << 20
	}
	s := &Store{mem: NewLRU[[]byte](o.MemEntries, o.MemBytes, func(b []byte) int64 { return int64(len(b)) })}
	if o.Dir != "" {
		d, err := openDiskTier(o.Dir, o.MaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	return s, nil
}

// Get returns the entry for a key, reporting the tier that held it. A
// disk hit is promoted into the memory tier. Hit/miss counters on both
// tiers are updated.
func (s *Store) Get(key string) ([]byte, Tier, bool) {
	if s == nil {
		return nil, TierNone, false
	}
	if data, ok := s.mem.Get(key); ok {
		return data, TierMem, true
	}
	if data, ok := s.disk.get(key, true); ok {
		s.mem.Put(key, data)
		return data, TierDisk, true
	}
	return nil, TierNone, false
}

// Peek returns the entry for a key without recording hits or misses —
// the re-check a caller performs from inside a singleflight slot, where
// its miss was already counted. Disk hits are still promoted.
func (s *Store) Peek(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	if data, ok := s.mem.Peek(key); ok {
		return data, true
	}
	if data, ok := s.disk.get(key, false); ok {
		s.mem.Put(key, data)
		return data, true
	}
	return nil, false
}

// Put stores an entry in both tiers.
func (s *Store) Put(key string, data []byte) {
	if s == nil {
		return
	}
	s.mem.Put(key, data)
	s.disk.put(key, data)
}

// GetDisk reads a key from the disk tier only, bypassing the memory
// LRU. Callers that keep their own typed memo in front of the store
// (the experiment runner, the cluster coordinator) use these so raw
// record bytes don't compete with served documents for memory-tier
// space.
func (s *Store) GetDisk(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	return s.disk.get(key, true)
}

// PutDisk writes a key to the disk tier only.
func (s *Store) PutDisk(key string, data []byte) {
	if s == nil {
		return
	}
	s.disk.put(key, data)
}

// HasDisk reports whether the store has a disk tier at all.
func (s *Store) HasDisk() bool { return s != nil && s.disk != nil }

// Stats is a point-in-time snapshot of both tiers' counters.
type Stats struct {
	MemHits      uint64
	MemMisses    uint64
	MemEvictions uint64
	MemEntries   int
	MemBytes     int64

	DiskHits      uint64
	DiskMisses    uint64
	DiskEvictions uint64 // entries deleted by the byte-bound GC
	DiskCorrupt   uint64 // entries discarded as truncated or bit-flipped
	DiskEntries   int
	DiskBytes     int64
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	m := s.mem.Stats()
	st := Stats{
		MemHits:      m.Hits,
		MemMisses:    m.Misses,
		MemEvictions: m.Evictions,
		MemEntries:   m.Entries,
		MemBytes:     m.Bytes,
	}
	if s.disk != nil {
		d := s.disk.stats()
		st.DiskHits = d.hits
		st.DiskMisses = d.misses
		st.DiskEvictions = d.evictions
		st.DiskCorrupt = d.corrupt
		st.DiskEntries = d.entries
		st.DiskBytes = d.bytes
	}
	return st
}
