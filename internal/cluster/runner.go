package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/config"
	"hybridmem/internal/exp"
	"hybridmem/internal/store"
	"hybridmem/internal/workload"
)

// maxRPCBytes bounds cluster RPC bodies: shard requests and responses
// are small structured documents, so anything larger is garbage or
// abuse, not work.
const maxRPCBytes = 16 << 20

// Exec executes shards in-process — the execution core shared by real
// runner nodes, the loopback transport and the coordinator's local
// fallback. Every shard gets a fresh exp.Runner configured from the
// request, so outcomes are the pure deterministic simulation function
// of (config, run) with no cross-shard state.
type Exec struct {
	// Parallelism bounds concurrent simulations per shard; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Store, when non-nil, lets the per-shard runners reuse previously
	// simulated run results from its disk tier and persist new ones, so
	// a runner node answers repeated shards without re-simulating.
	Store *store.Store
	// SimCounter, when non-nil, counts actual engine executions (store
	// and memo hits excluded).
	SimCounter *atomic.Uint64
}

// RunShard executes one shard request and returns outcomes in run
// order. Per-run failures (unknown workload, invalid config, malformed
// design, simulation error) ride the outcome Err slots; only version
// mismatch and cancellation fail the call itself.
func (e Exec) RunShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	if err := checkVersions(req.Proto, req.Schema, req.Engine); err != nil {
		return ShardResponse{}, err
	}
	runner := &exp.Runner{
		Scale:        req.Config.Scale,
		InstrPerCore: req.Config.InstrPerCore,
		Seed:         req.Config.Seed,
		Parallelism:  e.Parallelism,
		Store:        e.Store,
		SimCounter:   e.SimCounter,
	}
	resp := ShardResponse{Proto: ProtoVersion, Shard: req.Shard, Runs: make([]RunOutcome, len(req.Runs))}
	specs := make([]exp.RunSpec, len(req.Runs))
	skip := make([]bool, len(req.Runs))
	for i, run := range req.Runs {
		if err := config.ValidateRun(req.Config.Scale, run.Ratio16, req.Config.InstrPerCore); err != nil {
			resp.Runs[i].Err = fmt.Sprintf("cluster: run %s/%s: %v", run.Design, run.Workload, err)
			skip[i] = true
			continue
		}
		wl, ok := workload.ByName(run.Workload)
		if !ok {
			resp.Runs[i].Err = fmt.Sprintf("exp: unknown workload %q", run.Workload)
			skip[i] = true
			continue
		}
		specs[i] = exp.RunSpec{Workload: wl, Design: run.Design, Ratio16: run.Ratio16}
	}
	// Only well-formed runs are simulated; their outcomes map back to
	// the original slots through liveIdx.
	live := make([]exp.RunSpec, 0, len(specs))
	liveIdx := make([]int, 0, len(specs))
	for i, sp := range specs {
		if !skip[i] {
			live = append(live, sp)
			liveIdx = append(liveIdx, i)
		}
	}
	results, errs := runner.ResultsParallelEach(ctx, live)
	if err := ctx.Err(); err != nil {
		return ShardResponse{}, err
	}
	for j, i := range liveIdx {
		if errs[j] != nil {
			resp.Runs[i].Err = errs[j].Error()
			continue
		}
		r := results[j]
		resp.Runs[i] = RunOutcome{
			Result:       api.FromSim(r),
			NMWriteBytes: r.Mem.NMWriteBytes,
			FMWriteBytes: r.Mem.FMWriteBytes,
		}
	}
	return resp, nil
}

// NodeOptions configures a runner node (see ServeNode).
type NodeOptions struct {
	// Addr is the listen address (host:port); empty means 127.0.0.1:0.
	Addr string
	// Join is the coordinator's base URL (e.g. http://host:8080). The
	// node keeps (re)joining it for as long as it runs.
	Join string
	// Advertise is the URL base the coordinator dials back for shard
	// RPCs; empty derives http://<listen address>.
	Advertise string
	// ID names this runner to the coordinator; empty derives it from the
	// listen address.
	ID string
	// Parallelism bounds concurrent simulations per shard; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// StoreDir, when non-empty, gives this runner a persistent result
	// store: run results land in the directory's disk tier and repeated
	// shard work — including work re-dispatched after the node rejoins —
	// is answered from it without re-simulating.
	StoreDir string
	// StoreMaxBytes bounds the on-disk store; <= 0 means unbounded.
	StoreMaxBytes int64
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is called with the bound listen address
	// before serving starts — how tests and callers learn a :0 port.
	OnListen func(addr string)
}

// node is one running runner process.
type node struct {
	opts   NodeOptions
	exec   Exec
	client *http.Client

	mu       sync.Mutex
	attached bool
}

// ServeNode runs a runner node until ctx is canceled: it listens for
// shard RPCs, joins the coordinator at opts.Join, and heartbeats at the
// coordinator's advertised cadence, rejoining whenever the coordinator
// restarts or expires the registration. Returns nil on clean shutdown.
func ServeNode(ctx context.Context, opts NodeOptions) error {
	if opts.Join == "" {
		return errors.New("cluster: runner needs a coordinator URL to join")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	if opts.Advertise == "" {
		opts.Advertise = "http://" + ln.Addr().String()
	}
	if opts.ID == "" {
		opts.ID = "runner-" + ln.Addr().String()
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	exec := Exec{Parallelism: opts.Parallelism}
	if opts.StoreDir != "" {
		st, err := store.Open(store.Options{Dir: opts.StoreDir, MaxBytes: opts.StoreMaxBytes})
		if err != nil {
			ln.Close()
			return fmt.Errorf("cluster: runner store: %w", err)
		}
		exec.Store = st
	}
	n := &node{
		opts:   opts,
		exec:   exec,
		client: &http.Client{Timeout: 10 * time.Second},
	}
	srv := &http.Server{Handler: n.mux(), BaseContext: func(net.Listener) context.Context { return ctx }}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	go n.attachLoop(ctx)
	opts.Logf("cluster: runner %s listening on %s, joining %s", opts.ID, ln.Addr(), opts.Join)
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}

func (n *node) setAttached(v bool) {
	n.mu.Lock()
	n.attached = v
	n.mu.Unlock()
}

func (n *node) isAttached() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attached
}

// mux serves the runner's two endpoints: shard execution and health.
func (n *node) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/shard", func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if err := decodeJSON(r.Body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := n.exec.RunShard(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":      "ok",
			"role":        "runner",
			"id":          n.opts.ID,
			"coordinator": n.opts.Join,
			"attached":    n.isAttached(),
		})
	})
	return mux
}

// attachLoop keeps the node registered: join, then heartbeat at the
// advertised cadence; any heartbeat failure drops back to joining.
func (n *node) attachLoop(ctx context.Context) {
	const joinRetry = 500 * time.Millisecond
	for ctx.Err() == nil {
		interval, err := n.join(ctx)
		if err != nil {
			n.setAttached(false)
			n.opts.Logf("cluster: runner %s: join %s: %v", n.opts.ID, n.opts.Join, err)
			sleepCtx(ctx, joinRetry)
			continue
		}
		n.setAttached(true)
		n.opts.Logf("cluster: runner %s attached to %s (heartbeat every %v)", n.opts.ID, n.opts.Join, interval)
		for ctx.Err() == nil {
			sleepCtx(ctx, interval)
			if ctx.Err() != nil {
				break
			}
			if err := n.heartbeat(ctx); err != nil {
				n.setAttached(false)
				n.opts.Logf("cluster: runner %s: heartbeat: %v; rejoining", n.opts.ID, err)
				break
			}
		}
	}
}

// join registers with the coordinator and returns the heartbeat cadence.
func (n *node) join(ctx context.Context) (time.Duration, error) {
	req := joinRequest{
		Proto:  ProtoVersion,
		Schema: api.SchemaVersion,
		Engine: api.EngineVersion,
		ID:     n.opts.ID,
		Addr:   n.opts.Advertise,
	}
	var resp joinResponse
	if err := n.post(ctx, n.opts.Join+"/cluster/v1/join", req, &resp); err != nil {
		return 0, err
	}
	if !resp.OK || resp.HeartbeatMillis <= 0 {
		return 0, fmt.Errorf("cluster: coordinator rejected join")
	}
	return time.Duration(resp.HeartbeatMillis) * time.Millisecond, nil
}

func (n *node) heartbeat(ctx context.Context) error {
	var ack struct {
		OK bool `json:"ok"`
	}
	if err := n.post(ctx, n.opts.Join+"/cluster/v1/heartbeat", heartbeatRequest{ID: n.opts.ID}, &ack); err != nil {
		return err
	}
	if !ack.OK {
		return errors.New("cluster: registration expired")
	}
	return nil
}

// post sends one JSON request and decodes the JSON response.
func (n *node) post(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return decodeJSON(resp.Body, out)
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// decodeJSON strictly decodes one bounded JSON document.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxRPCBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
