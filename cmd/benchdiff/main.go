// Command benchdiff gates CI on the committed performance trajectory.
// It compares a fresh bench2json artifact against the latest entry of
// BENCH_trajectory.json — the hand-curated record of where each PR left
// the key benchmarks — and exits non-zero when a benchmark regressed.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | bench2json > BENCH_results.json
//	benchdiff                                  # BENCH_results.json vs BENCH_trajectory.json
//	benchdiff -tol 3.0                         # CI: absorb machine-to-machine variation
//	benchdiff -results r.json -trajectory t.json
//
// Two gates, deliberately asymmetric:
//
//   - ns/op is gated with a generous multiplicative tolerance (-tol,
//     default 0.5 = +50%): wall-clock numbers move with machine and
//     load, so the gate only catches order-of-magnitude regressions.
//     CI passes a larger -tol because runner hardware differs from the
//     machine that recorded the trajectory.
//   - allocs/op, where the trajectory entry records it, must match
//     EXACTLY: allocation counts of the pinned steady-state paths are
//     deterministic, so any drift is a real code change that must be
//     acknowledged by updating the trajectory.
//
// A benchmark recorded in the trajectory but missing from the fresh
// results is a failure too — a silently deleted benchmark is how a
// perf gate rots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// freshResults mirrors cmd/bench2json's Output.
type freshResults struct {
	Context    map[string]string `json:"context"`
	Benchmarks []freshBenchmark  `json:"benchmarks"`
}

type freshBenchmark struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// trajectory is the committed BENCH_trajectory.json: an append-only list
// of entries, one per PR that moved performance; only the latest entry
// is gated against.
type trajectory struct {
	Entries []trajectoryEntry `json:"entries"`
}

type trajectoryEntry struct {
	Label      string         `json:"label"`
	Date       string         `json:"date,omitempty"`
	Note       string         `json:"note,omitempty"`
	Benchmarks []trackedBench `json:"benchmarks"`
}

type trackedBench struct {
	Package     string   `json:"package"`
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"` // nil: not pinned
}

func main() {
	os.Exit(run())
}

func run() int {
	resultsPath := flag.String("results", "BENCH_results.json", "fresh bench2json artifact")
	trajPath := flag.String("trajectory", "BENCH_trajectory.json", "committed performance trajectory")
	tol := flag.Float64("tol", 0.5, "ns/op regression tolerance as a fraction of the recorded value")
	flag.Parse()

	fresh, err := loadFresh(*resultsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	traj, err := loadTrajectory(*trajPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	entry := traj.Entries[len(traj.Entries)-1]
	fmt.Printf("benchdiff: fresh %s vs trajectory entry %q (%d benchmark(s), ns/op tolerance +%.0f%%)\n",
		*resultsPath, entry.Label, len(entry.Benchmarks), *tol*100)

	failures := 0
	for _, want := range entry.Benchmarks {
		got, ok := fresh[benchKey(want.Package, want.Name)]
		if !ok {
			fmt.Printf("FAIL %s %s: benchmark missing from fresh results\n", want.Package, want.Name)
			failures++
			continue
		}
		ns, ok := got.Metrics["ns/op"]
		if !ok {
			fmt.Printf("FAIL %s %s: fresh results have no ns/op metric\n", want.Package, want.Name)
			failures++
			continue
		}
		limit := want.NsPerOp * (1 + *tol)
		ratio := ns / want.NsPerOp
		switch {
		case ns > limit:
			fmt.Printf("FAIL %s %s: %.0f ns/op is %.2fx the recorded %.0f (limit %.0f)\n",
				want.Package, want.Name, ns, ratio, want.NsPerOp, limit)
			failures++
		default:
			fmt.Printf("ok   %s %s: %.0f ns/op (%.2fx recorded %.0f)\n",
				want.Package, want.Name, ns, ratio, want.NsPerOp)
		}
		if want.AllocsPerOp != nil {
			allocs, ok := got.Metrics["allocs/op"]
			switch {
			case !ok:
				fmt.Printf("FAIL %s %s: allocs/op pinned at %.0f but missing from fresh results (run with -benchmem)\n",
					want.Package, want.Name, *want.AllocsPerOp)
				failures++
			case allocs != *want.AllocsPerOp:
				fmt.Printf("FAIL %s %s: %.0f allocs/op, pinned at exactly %.0f\n",
					want.Package, want.Name, allocs, *want.AllocsPerOp)
				failures++
			default:
				fmt.Printf("ok   %s %s: %.0f allocs/op (exact)\n", want.Package, want.Name, allocs)
			}
		}
	}

	if failures > 0 {
		fmt.Printf("benchdiff: %d regression(s) against trajectory entry %q\n", failures, entry.Label)
		return 1
	}
	fmt.Printf("benchdiff: no regressions against trajectory entry %q\n", entry.Label)
	return 0
}

// loadFresh indexes the bench2json artifact by package+name, normalizing
// away the "-N" GOMAXPROCS suffix Go appends when GOMAXPROCS != 1.
func loadFresh(path string) (map[string]freshBenchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out freshResults
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	idx := make(map[string]freshBenchmark, len(out.Benchmarks))
	for _, b := range out.Benchmarks {
		idx[benchKey(b.Package, b.Name)] = b
	}
	return idx, nil
}

func loadTrajectory(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.Entries) == 0 {
		return nil, fmt.Errorf("%s: no trajectory entries", path)
	}
	for _, e := range t.Entries {
		if e.Label == "" || len(e.Benchmarks) == 0 {
			return nil, fmt.Errorf("%s: entry missing label or benchmarks", path)
		}
		for _, b := range e.Benchmarks {
			if b.Package == "" || b.Name == "" || b.NsPerOp <= 0 {
				return nil, fmt.Errorf("%s: entry %q has a malformed benchmark record", path, e.Label)
			}
		}
	}
	return &t, nil
}

// benchKey normalizes a benchmark identity: the "-8" style suffix
// encodes GOMAXPROCS, not identity.
func benchKey(pkg, name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		allDigits := i+1 < len(name)
		for _, c := range name[i+1:] {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			name = name[:i]
		}
	}
	return pkg + "\x00" + name
}
