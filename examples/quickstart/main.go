// Quickstart: simulate one workload on Hybrid2 and on the no-NM baseline,
// and print the paper's headline metrics.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	cfg := hybridmem.DefaultConfig()
	cfg.InstrPerCore = 500_000

	base, err := hybridmem.Run("Baseline", "lbm", cfg)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := hybridmem.Run("HYBRID2", "lbm", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hybrid2 on lbm (high-MPKI streaming fluid dynamics):")
	fmt.Printf("  baseline: %8d cycles at IPC %.2f (all requests to DDR4)\n",
		base.Cycles, base.IPC)
	fmt.Printf("  hybrid2:  %8d cycles at IPC %.2f\n", h2.Cycles, h2.IPC)
	fmt.Printf("  speedup:  %.2fx\n", float64(base.Cycles)/float64(h2.Cycles))
	fmt.Printf("  served from near memory: %.0f%%\n", h2.ServedNMFrac*100)
	fmt.Printf("  sectors migrated into NM: %d\n", h2.Migrations)
	fmt.Printf("  FM traffic: %.1f MB (baseline %.1f MB)\n",
		float64(h2.FMTrafficBytes)/(1<<20), float64(base.FMTrafficBytes)/(1<<20))
}
