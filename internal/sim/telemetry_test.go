package sim_test

import (
	"testing"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/sim"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

func telemetrySys() config.System {
	sys := config.Scaled(config.DefaultScale, 16)
	sys.InstrPerCore = 20_000
	sys.Seed = 7
	return sys
}

// TestTelemetryPassivity pins the passivity contract across every
// registered design family: attaching a sampler must leave the run's
// Result exactly equal to the unsampled run, while still producing a
// non-empty, internally consistent series.
func TestTelemetryPassivity(t *testing.T) {
	spec, ok := workload.ByName("lbm")
	if !ok {
		t.Fatal("workload lbm missing")
	}
	sys := telemetrySys()
	for _, info := range design.AllInfos() {
		name := info.SampleName()
		t.Run(name, func(t *testing.T) {
			ms, nm, fm, err := design.Build(name, sys)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want := sim.Run(spec, ms, nm, fm, sys)

			ms2, nm2, fm2, err := design.Build(name, sys)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			smp := telemetry.New(telemetry.Options{WindowInstr: 8192, MaxEpochs: 64})
			got := sim.RunSampled(spec, ms2, nm2, fm2, sys, smp)
			if got != want {
				t.Errorf("sampled run diverges from unsampled:\n got %+v\nwant %+v", got, want)
			}

			ser := smp.Series()
			if ser == nil || len(ser.Epochs) == 0 {
				t.Fatal("sampled run produced no epochs")
			}
			last := ser.Epochs[len(ser.Epochs)-1]
			if ser.EpochsDropped == 0 {
				if last.EndInstr != got.Instructions {
					t.Errorf("final epoch ends at %d instructions, Result has %d", last.EndInstr, got.Instructions)
				}
				var instr, misses uint64
				for _, e := range ser.Epochs {
					instr += e.Instr
					misses += e.LLCMisses
				}
				if instr != got.Instructions || misses != got.LLCMisses {
					t.Errorf("series totals instr=%d misses=%d, Result instr=%d misses=%d",
						instr, misses, got.Instructions, got.LLCMisses)
				}
			}
			if last.EndCycle != uint64(got.Cycles) {
				t.Errorf("final epoch ends at cycle %d, Result has %d", last.EndCycle, got.Cycles)
			}
			if len(ser.Phases) == 0 {
				t.Error("series has no phase summary")
			}
		})
	}
}

// TestTelemetrySeriesDeterministic: the same run yields a deeply equal
// series every time.
func TestTelemetrySeriesDeterministic(t *testing.T) {
	spec, _ := workload.ByName("mcf")
	sys := telemetrySys()
	run := func() *telemetry.Series {
		ms, nm, fm, err := design.Build("HYBRID2", sys)
		if err != nil {
			t.Fatal(err)
		}
		smp := telemetry.New(telemetry.Options{WindowInstr: 4096, MaxEpochs: 128})
		sim.RunSampled(spec, ms, nm, fm, sys, smp)
		return smp.Series()
	}
	a, b := run(), run()
	if a.EpochsTotal != b.EpochsTotal || len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("series shape differs: %d/%d vs %d/%d", a.EpochsTotal, len(a.Epochs), b.EpochsTotal, len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i] != b.Epochs[i] {
			t.Fatalf("epoch %d differs:\n%+v\n%+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase count differs: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %d differs", i)
		}
	}
}

// TestTelemetryNilSamplerRunPath: RunSampled with a nil sampler is
// exactly Run, on the same built design.
func TestTelemetryNilSamplerRunPath(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	sys := telemetrySys()
	ms, nm, fm, err := design.Build("HYBRID2", sys)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(spec, ms, nm, fm, sys)
	ms2, nm2, fm2, _ := design.Build("HYBRID2", sys)
	got := sim.RunSampled(spec, ms2, nm2, fm2, sys, nil)
	if got != want {
		t.Fatalf("nil-sampler RunSampled diverges:\n got %+v\nwant %+v", got, want)
	}
}
