package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridmem/internal/memtypes"
)

func TestRowHitFasterThanRowMiss(t *testing.T) {
	d := New(HBM2Config())
	first := d.Access(0, 0, 64, false)       // row miss: activate
	second := d.Access(first, 64, 64, false) // same row: hit
	lat1 := first
	lat2 := second - first
	if lat2 >= lat1 {
		t.Fatalf("row hit latency %d not lower than row miss %d", lat2, lat1)
	}
}

func TestHBMFasterThanDDR4(t *testing.T) {
	nm := New(HBM2Config())
	fm := New(DDR4Config())
	nmDone := nm.Access(0, 4096, 64, false)
	fmDone := fm.Access(0, 4096, 64, false)
	if nmDone >= fmDone {
		t.Fatalf("HBM access (%d) should be faster than DDR4 (%d)", nmDone, fmDone)
	}
}

func TestChannelContentionSerializes(t *testing.T) {
	d := New(DDR4Config())
	// Two back-to-back accesses to the same channel at the same instant:
	// the second must start after the first releases the bus.
	a := d.Access(0, 0, 2048, false)
	b := d.Access(0, 0, 2048, false)
	if b <= a {
		t.Fatalf("contended access finished at %d, not after first at %d", b, a)
	}
}

func TestDifferentChannelsOverlap(t *testing.T) {
	d := New(HBM2Config())
	cfg := d.Config()
	a := d.Access(0, 0, 256, false)
	// Next channel by interleave granularity.
	b := d.Access(0, memtypes.Addr(cfg.InterleaveBytes), 256, false)
	if b != a {
		t.Fatalf("independent channels should give equal latency: %d vs %d", a, b)
	}
}

func TestTrafficCounters(t *testing.T) {
	d := New(HBM2Config())
	d.Access(0, 0, 64, false)
	d.Access(0, 0, 128, true)
	if d.ReadBytes != 64 || d.WriteBytes != 128 {
		t.Fatalf("got read=%d write=%d, want 64/128", d.ReadBytes, d.WriteBytes)
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("got reads=%d writes=%d, want 1/1", d.Reads, d.Writes)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := New(HBM2Config())
	d.Access(0, 0, 64, false) // one activation + 64B read
	want := 64*8*6.4/1000 + 15.0
	got := d.DynamicEnergyNanoJ()
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("energy %f, want %f", got, want)
	}
}

func TestZeroByteAccessIsFree(t *testing.T) {
	d := New(HBM2Config())
	if done := d.Access(100, 0, 0, false); done != 100 {
		t.Fatalf("zero-byte access advanced time to %d", done)
	}
	if d.ReadBytes != 0 {
		t.Fatal("zero-byte access counted traffic")
	}
}

func TestSustainedBandwidthBounded(t *testing.T) {
	// Hammer one device with sequential traffic and check the achieved
	// bandwidth never exceeds the configured peak.
	d := New(HBM2Config())
	var now memtypes.Tick
	const n = 4000
	for i := 0; i < n; i++ {
		now = d.Access(now, memtypes.Addr(i*256), 256, false)
	}
	bytes := float64(n * 256)
	bw := bytes / float64(now)
	if peak := d.PeakBandwidthBytesPerCycle(); bw > peak {
		t.Fatalf("achieved bandwidth %f exceeds peak %f", bw, peak)
	}
}

func TestCompletionMonotoneProperty(t *testing.T) {
	// Property: for monotonically non-decreasing issue times, completion
	// is strictly after issue and traffic accumulates exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(DDR4Config())
		var now memtypes.Tick
		var wantRead, wantWrite uint64
		for i := 0; i < 200; i++ {
			addr := memtypes.Addr(rng.Intn(1 << 30))
			sz := 64 << rng.Intn(4)
			wr := rng.Intn(2) == 0
			done := d.Access(now, addr, sz, wr)
			if done <= now {
				return false
			}
			if wr {
				wantWrite += uint64(sz)
			} else {
				wantRead += uint64(sz)
			}
			now += memtypes.Tick(rng.Intn(50))
		}
		return d.ReadBytes == wantRead && d.WriteBytes == wantWrite
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundDoesNotDelayDemand(t *testing.T) {
	d := New(DDR4Config())
	// A large background transfer at t=0...
	d.AccessBG(0, 0, 4096, false)
	// ...must not delay a demand access to the same channel.
	bgFree := d.channels[0].bgFreeAt
	done := d.Access(0, 0x2000, 64, false) // same channel, different bank
	if done > bgFree {
		t.Fatalf("demand access done at %d, after background at %d", done, bgFree)
	}
	plain := New(DDR4Config())
	ref := plain.Access(0, 0x2000, 64, false)
	if done != ref {
		t.Fatalf("demand latency changed by background traffic: %d vs %d", done, ref)
	}
}

func TestBackgroundQueuesBehindDemand(t *testing.T) {
	d := New(DDR4Config())
	demandDone := d.Access(0, 0, 2048, false)
	bgDone := d.AccessBG(0, 0, 64, false)
	if bgDone <= demandDone-memtypes.Tick(2048/8) {
		t.Fatalf("background transfer (%d) jumped ahead of demand (%d)", bgDone, demandDone)
	}
}

func TestBackgroundCountsTrafficAndEnergy(t *testing.T) {
	d := New(HBM2Config())
	d.AccessBG(0, 0, 2048, true)
	if d.WriteBytes != 2048 {
		t.Fatalf("background write bytes %d, want 2048", d.WriteBytes)
	}
	if d.DynamicEnergyNanoJ() <= 0 {
		t.Fatal("background transfer consumed no energy")
	}
}

func TestCriticalFirstOrdering(t *testing.T) {
	d := New(DDR4Config())
	crit, full := d.AccessCriticalFirst(0, 0, 2048, 64)
	if crit >= full {
		t.Fatalf("critical chunk (%d) not earlier than full burst (%d)", crit, full)
	}
	// The critical chunk must cost about one 64 B access, not the burst.
	ref := New(DDR4Config())
	single := ref.Access(0, 0, 64, false)
	if crit != single {
		t.Fatalf("critical latency %d, want single-access %d", crit, single)
	}
	if d.ReadBytes != 2048 {
		t.Fatalf("read bytes %d, want full line", d.ReadBytes)
	}
}

func TestCriticalFirstDegenerate(t *testing.T) {
	d := New(DDR4Config())
	crit, full := d.AccessCriticalFirst(5, 0, 0, 64)
	if crit != 5 || full != 5 {
		t.Fatal("zero-byte critical-first advanced time")
	}
	crit, full = d.AccessCriticalFirst(0, 0, 64, 128) // critical > bytes
	if crit != full {
		t.Fatal("oversized critical chunk mishandled")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := New(DDR4Config())
	d.Access(0, 0, 64, false)
	d.Access(100000, 0, 64, false)
	if d.Refreshes != 0 {
		t.Fatalf("refreshes %d with refresh disabled", d.Refreshes)
	}
}

func TestRefreshBlocksBank(t *testing.T) {
	cfg := DDR4Config().WithRefresh()
	d := New(cfg)
	// An access right at a refresh window start waits out tRFC.
	done := d.Access(cfg.TREFI, 0, 64, false)
	plain := New(DDR4Config())
	ref := plain.Access(cfg.TREFI, 0, 64, false)
	if done < ref+cfg.TRFC-1 {
		t.Fatalf("refresh did not delay access: %d vs %d+%d", done, ref, cfg.TRFC)
	}
	if d.Refreshes == 0 {
		t.Fatal("no refresh recorded")
	}
}

func TestRefreshClosesRowBuffer(t *testing.T) {
	cfg := DDR4Config().WithRefresh()
	d := New(cfg)
	d.Access(0, 0, 64, false) // opens row 0
	// Next access to the same row after a refresh window: row miss again.
	acts := d.Activations
	d.Access(cfg.TREFI+cfg.TRFC+100, 0, 64, false)
	if d.Activations != acts+1 {
		t.Fatal("row survived a refresh")
	}
}

func TestRefreshAppliedOncePerWindow(t *testing.T) {
	cfg := DDR4Config().WithRefresh()
	d := New(cfg)
	for i := 0; i < 10; i++ {
		d.Access(cfg.TREFI+memtypes.Tick(i)*200, 0, 64, false)
	}
	if d.Refreshes != 1 {
		t.Fatalf("refreshes %d for one window and one bank, want 1", d.Refreshes)
	}
}
