package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/obs"
	"hybridmem/internal/store"
)

// shardState tracks one shard through dispatch. Guarded by the
// dispatcher's mu.
type shardState struct {
	idx     int
	lo, hi  int    // run index range [lo, hi) of the batch
	key     string // content address in the result store ("" without one)
	execs   map[*runnerHandle]bool
	failed  int // completed failed attempts
	done    bool
	results []RunOutcome
}

// shardKey content-addresses one shard's work: the wire protocol plus
// engine and schema versions (via store.VersionParts), the batch config,
// and the exact run list. Identical work re-submitted after coordinator
// restart or node loss lands on the same key, so a warm store answers it
// without dispatching; any version bump changes the key and forces
// re-simulation instead of serving stale outcomes.
func shardKey(cfg Config, runs []Run) string {
	parts := append(store.VersionParts("shard"),
		"proto="+strconv.Itoa(ProtoVersion),
		"scale="+strconv.Itoa(cfg.Scale),
		"instr="+strconv.FormatUint(cfg.InstrPerCore, 10),
		"seed="+strconv.FormatUint(cfg.Seed, 10),
	)
	for _, r := range runs {
		parts = append(parts, r.Design, r.Workload, strconv.Itoa(r.Ratio16))
	}
	return store.Fingerprint(parts...)
}

// dispatcher drives one batch across the runner pool: a pull-based
// queue where every runner's worker slots take pending shards first and
// steal in-flight stragglers when the queue runs dry. All scheduling is
// free-form; determinism comes from reassembling results by shard index
// at the end.
type dispatcher struct {
	c        *Coordinator
	cfg      Config
	runs     []Run
	progress func(done, total int)
	ctx      context.Context

	mu        sync.Mutex
	cond      *sync.Cond
	shards    []*shardState
	pending   []int
	remaining int
	doneRuns  int
	fatal     error
	finished  bool
	started   map[*runnerHandle]bool
}

func newDispatcher(c *Coordinator, cfg Config, runs []Run, progress func(done, total int)) *dispatcher {
	d := &dispatcher{
		c:        c,
		cfg:      cfg,
		runs:     runs,
		progress: progress,
		started:  make(map[*runnerHandle]bool),
	}
	d.cond = sync.NewCond(&d.mu)
	size := c.opts.ShardSize
	warm := 0
	for lo := 0; lo < len(runs); lo += size {
		hi := min(lo+size, len(runs))
		idx := len(d.shards)
		sh := &shardState{idx: idx, lo: lo, hi: hi, execs: make(map[*runnerHandle]bool)}
		// With a disk-backed store, a shard whose exact work was
		// persisted by an earlier batch is settled here and never enters
		// the dispatch queue.
		if c.opts.Store.HasDisk() {
			sh.key = shardKey(cfg, runs[lo:hi])
			if raw, ok := c.opts.Store.GetDisk(sh.key); ok {
				var outs []RunOutcome
				if json.Unmarshal(raw, &outs) == nil && len(outs) == hi-lo {
					sh.done = true
					sh.results = outs
					d.doneRuns += len(outs)
					warm++
				}
			}
		}
		d.shards = append(d.shards, sh)
		if !sh.done {
			d.pending = append(d.pending, idx)
		}
	}
	d.remaining = len(d.pending)
	c.noteWarmShards(warm)
	return d
}

// run executes the batch: workers for every current runner (plus the
// local fallback, when enabled), a monitor for liveness and late
// joiners, and a wait for the last shard. With an empty pool and no
// fallback it blocks until a runner joins or ctx cancels — queued work
// waits for capacity, it is not an error.
func (d *dispatcher) run(ctx context.Context) ([]RunOutcome, error) {
	d.mu.Lock()
	d.ctx = ctx
	if d.progress != nil && d.doneRuns > 0 {
		// Shards answered warm from the store settled before dispatch;
		// surface them so progress starts from the true completed count.
		d.progress(d.doneRuns, len(d.runs))
	}
	d.mu.Unlock()

	c := d.c
	c.mu.Lock()
	c.active = append(c.active, d)
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		for i, a := range c.active {
			if a == d {
				c.active = append(c.active[:i], c.active[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
	}()

	stop := context.AfterFunc(ctx, d.wake)
	defer stop()
	monCtx, monCancel := context.WithCancel(ctx)
	defer monCancel()
	go d.monitor(monCtx)

	for _, h := range c.liveRunners() {
		d.addRunner(h)
	}
	if c.opts.LocalFallback {
		d.addRunner(&runnerHandle{
			id:        "local",
			addr:      "local",
			transport: loopbackTransport{exec: Exec{Parallelism: c.localParallelism(), Store: c.opts.Store, SimCounter: c.opts.SimCounter, Obs: c.opts.Obs}},
			loopback:  true,
			local:     true,
		})
	}

	d.mu.Lock()
	for d.fatal == nil && d.remaining > 0 && ctx.Err() == nil {
		d.cond.Wait()
	}
	d.finished = true
	err := d.fatal
	if err == nil {
		err = ctx.Err()
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}

	out := make([]RunOutcome, len(d.runs))
	for _, sh := range d.shards {
		copy(out[sh.lo:sh.hi], sh.results)
	}
	return out, nil
}

// wake pokes every waiting worker and the run loop.
func (d *dispatcher) wake() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// addRunner spawns this batch's worker slots for a runner — called for
// the pool at start and by Coordinator.join for runners arriving
// mid-batch. Idempotent per handle.
func (d *dispatcher) addRunner(h *runnerHandle) {
	d.mu.Lock()
	if d.finished || d.started[h] || d.ctx == nil {
		d.mu.Unlock()
		return
	}
	d.started[h] = true
	ctx := d.ctx
	d.mu.Unlock()
	for i := 0; i < d.c.opts.MaxInFlight; i++ {
		go d.worker(ctx, h)
	}
	d.wake()
}

// monitor prunes heartbeat-expired runners while the batch runs. Late
// joiners get workers through Coordinator.join directly.
func (d *dispatcher) monitor(ctx context.Context) {
	interval := min(d.c.opts.HeartbeatInterval, 500*time.Millisecond)
	for ctx.Err() == nil {
		sleepCtx(ctx, interval)
		d.c.pruneExpired()
	}
}

// worker is one in-flight slot of one runner: take a shard, execute the
// RPC, settle the outcome; repeat until the batch (or the runner) is
// done. Consecutive RPC failures back off and eventually expel the
// runner from the pool, requeueing its work.
func (d *dispatcher) worker(ctx context.Context, h *runnerHandle) {
	consecutive := 0
	dispatchPhase := obs.PhaseHist(d.c.opts.Obs.Registry()).With("dispatch")
	for {
		sh, stolen, ok := d.next(ctx, h)
		if !ok {
			return
		}
		// One span per dispatch attempt, hanging off the batch span; the
		// shard's trace identity rides the wire (version-gated: the field
		// is absent with tracing off) so the runner's own span links in.
		ssp := obs.SpanFrom(ctx).Child("shard",
			obs.Int("shard", int64(sh.idx)), obs.String("runner", h.id))
		if stolen {
			ssp.Event("stolen")
		}
		var wireTrace *api.Trace
		if ssp != nil {
			wireTrace = &api.Trace{TraceID: ssp.TraceID(), SpanID: ssp.SpanID()}
		}
		start := time.Now()
		rpcCtx, cancel := context.WithTimeout(ctx, d.c.opts.RPCTimeout)
		resp, err := h.transport.runShard(rpcCtx, ShardRequest{
			Proto:  ProtoVersion,
			Schema: api.SchemaVersion,
			Engine: api.EngineVersion,
			Shard:  sh.idx,
			Config: d.cfg,
			Runs:   d.runs[sh.lo:sh.hi],
			Trace:  wireTrace,
		})
		cancel()
		dispatchPhase.ObserveDuration(time.Since(start))
		if err == nil && len(resp.Runs) != sh.hi-sh.lo {
			err = fmt.Errorf("cluster: runner %s returned %d outcomes for %d runs", h.id, len(resp.Runs), sh.hi-sh.lo)
		}
		// Remote runners echo their span events in the response; fold
		// them into the coordinator's flight recorder so one dump holds
		// the whole distributed timeline. Loopback and local executors
		// share this recorder and already recorded directly — folding
		// their echoes again would duplicate every event.
		if err == nil && !h.loopback {
			d.c.opts.Obs.Flight().RecordAll(resp.Events)
		}
		if err != nil {
			ssp.Event("attempt_failed")
			ssp.End()
			d.fail(sh, h, err)
			if ctx.Err() != nil {
				return
			}
			consecutive++
			d.c.opts.Log.Warn("cluster: shard attempt failed",
				"shard", sh.idx, "runner", h.id, "strike", consecutive, "err", err)
			if consecutive >= d.c.opts.FailuresToDrop && !h.local {
				d.c.dropRunner(h, fmt.Sprintf("%d consecutive RPC failures", consecutive))
				return
			}
			sleepCtx(ctx, time.Duration(consecutive)*d.c.opts.RetryBackoff)
			continue
		}
		ssp.End()
		consecutive = 0
		d.complete(sh, h, resp.Runs)
	}
}

// next blocks until there is a shard for this runner (pending first,
// then a steal), or the batch no longer needs it. The local fallback
// handle stands down whenever any real runner is live.
func (d *dispatcher) next(ctx context.Context, h *runnerHandle) (*shardState, bool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.finished || d.fatal != nil || d.remaining == 0 || ctx.Err() != nil || d.c.isDead(h) {
			return nil, false, false
		}
		var sh *shardState
		stolen := false
		switch {
		case h.local && d.c.liveCount() > 0:
			// Real runners own the queue; the fallback only runs when the
			// pool is empty.
		case len(d.pending) > 0:
			sh = d.shards[d.pending[0]]
			d.pending = d.pending[1:]
		case d.c.opts.MaxSteals > 0:
			// Steal the lowest-index straggler this runner is not already
			// executing, bounded to 1+MaxSteals concurrent executions.
			for _, cand := range d.shards {
				if !cand.done && len(cand.execs) >= 1 && len(cand.execs) <= d.c.opts.MaxSteals && !cand.execs[h] {
					sh = cand
					stolen = true
					break
				}
			}
		}
		if sh != nil {
			sh.execs[h] = true
			d.c.noteDispatch(h, stolen, h.local)
			return sh, stolen, true
		}
		d.cond.Wait()
	}
}

// complete settles a successful execution. The first response for a
// shard wins; any later duplicate (a steal that lost the race) is
// discarded — sound because executions are deterministic, so duplicates
// are identical.
func (d *dispatcher) complete(sh *shardState, h *runnerHandle, outs []RunOutcome) {
	d.mu.Lock()
	delete(sh.execs, h)
	if sh.done {
		d.mu.Unlock()
		d.c.noteSettled(h, true)
		d.wake()
		return
	}
	sh.done = true
	sh.results = outs
	d.mu.Unlock()
	// Persist before the batch can observe completion, so a caller that
	// sees Run return is guaranteed every shard is on disk; duplicates
	// arriving in the window see done set and take the discard path.
	d.persist(sh)
	d.mu.Lock()
	d.remaining--
	d.doneRuns += len(outs)
	if d.progress != nil {
		// Under mu: progress calls stay serialized with done strictly
		// increasing, matching the in-process runner's contract.
		d.progress(d.doneRuns, len(d.runs))
	}
	d.mu.Unlock()
	d.c.noteSettled(h, false)
	d.wake()
}

// persist writes a completed shard's outcomes to the store's disk tier
// so an identical batch — after coordinator restart or node loss — is
// served warm without dispatch. Shards holding any failed run are not
// persisted: a failure is recomputed, never replayed from cache. Safe
// without the mu: results are immutable once done is set, and only the
// winning completion reaches here.
func (d *dispatcher) persist(sh *shardState) {
	st := d.c.opts.Store
	if !st.HasDisk() || sh.key == "" {
		return
	}
	for _, o := range sh.results {
		if o.Err != "" {
			return
		}
	}
	if raw, err := json.Marshal(sh.results); err == nil {
		st.PutDisk(sh.key, raw)
	}
}

// fail settles a failed execution: requeue the shard once no execution
// of it remains (a surviving steal may still complete it), or give up
// on the whole batch when the shard exhausts its attempt budget.
func (d *dispatcher) fail(sh *shardState, h *runnerHandle, err error) {
	d.mu.Lock()
	delete(sh.execs, h)
	retried := false
	if !sh.done {
		sh.failed++
		if len(sh.execs) == 0 {
			if sh.failed >= d.c.opts.MaxAttempts {
				d.fatal = fmt.Errorf("cluster: shard %d failed %d attempt(s), giving up: %w", sh.idx, sh.failed, err)
			} else {
				d.pending = append(d.pending, sh.idx)
				retried = true
			}
		}
	}
	d.mu.Unlock()
	d.c.noteFailed(h, retried)
	d.wake()
}
