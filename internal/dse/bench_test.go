package dse

import (
	"context"
	"testing"

	"hybridmem/internal/design"
)

// BenchmarkDSECandidateGen measures pure candidate generation: space
// enumeration for every registered family plus a neighborhood expansion
// of each enumerated spec — the non-simulation cost of a search round.
func BenchmarkDSECandidateGen(b *testing.B) {
	opts := design.EnumOptions{MaxPerParam: 8}
	infos := design.AllInfos()
	b.ReportAllocs()
	for b.Loop() {
		total := 0
		for _, info := range infos {
			specs, err := info.Enumerate(opts)
			if err != nil {
				b.Fatal(err)
			}
			total += len(specs)
			for _, s := range specs {
				nbrs, err := info.Neighbors(s, opts)
				if err != nil {
					b.Fatal(err)
				}
				total += len(nbrs)
			}
		}
		if total == 0 {
			b.Fatal("no candidates generated")
		}
	}
}

// BenchmarkDSEBatchEval measures one budgeted search round end to end —
// candidate generation plus a batch of simulations through the parallel
// runner — at the tiny scale the CI smoke uses.
func BenchmarkDSEBatchEval(b *testing.B) {
	for b.Loop() {
		res, err := Search(context.Background(), Options{
			Families:     []string{"H2DSE"},
			Workloads:    []string{"mcf"},
			Budget:       4,
			BatchSize:    4,
			MaxRounds:    1,
			Seed:         1,
			InstrPerCore: 20_000,
			MaxPerParam:  3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Evaluated) == 0 {
			b.Fatal("no candidates evaluated")
		}
	}
}
