package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// fingerprint derives a content address from the canonical parts of a
// request: the same parts always produce the same key, and any change to
// a part — including the engine or schema version every caller folds in
// — produces a different one. Parts are NUL-separated so concatenation
// ambiguity cannot alias two requests.
func fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// resultCache is an LRU cache of encoded result documents, bounded by
// entry count and by total payload bytes, with hit/miss counters for the
// metrics endpoint. All methods are safe for concurrent use.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       uint64
	misses     uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached document for a fingerprint and records a hit or
// a miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).data, true
	}
	c.misses++
	return nil, false
}

// peek returns the cached document without touching the LRU order or
// the hit/miss counters — used to re-check the cache from inside a
// singleflight slot, where the caller already recorded its miss.
func (c *resultCache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*cacheEntry).data, true
	}
	return nil, false
}

// put stores a document under a fingerprint, evicting least-recently
// used entries until both bounds hold. A document larger than the byte
// bound on its own is not cached at all — admitting it would flush the
// entire cache for a payload that can never be retained alongside
// anything else.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
	} else {
		if int64(len(data)) > c.maxBytes {
			return
		}
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	for (len(c.items) > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.data))
	}
}

type cacheStats struct {
	hits    uint64
	misses  uint64
	entries int
	bytes   int64
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{hits: c.hits, misses: c.misses, entries: len(c.items), bytes: c.bytes}
}

// flight collapses concurrent identical requests into one execution: the
// first caller of a key runs fn, every concurrent duplicate blocks until
// it settles and shares its outcome. Unlike the result cache, nothing is
// retained after the call completes — errors are never served twice.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

func newFlight() *flight { return &flight{calls: make(map[string]*flightCall)} }

// do runs fn under the key's singleflight slot. shared reports whether
// this caller piggybacked on another caller's execution.
func (f *flight) do(key string, fn func() ([]byte, error)) (data []byte, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.data, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	// Settle the call even if fn panics (net/http recovers handler
	// panics per-connection): an unclosed done channel would park every
	// future identical request forever behind a wedged key. Waiters see
	// the panic as this call's error; the panic itself still propagates
	// to the winner's handler.
	defer func() {
		p := recover()
		if p != nil {
			c.err = fmt.Errorf("singleflight: panic: %v", p)
		}
		close(c.done)
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		if p != nil {
			panic(p)
		}
	}()
	c.data, c.err = fn()
	return c.data, c.err, false
}
