package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridmem/internal/memtypes"
)

func TestMissThenHit(t *testing.T) {
	c := New(1<<14, 4, 64)
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _, _ := c.Access(0x1008, false); !hit {
		t.Fatal("same-line access missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, line 64, sets = 2: addresses 0, 256, 512 map to set 0.
	c := New(256, 2, 64)
	c.Access(0, false)
	c.Access(256, false)
	c.Access(0, false) // make 256 the LRU way
	_, v, ev := c.Access(512, false)
	if !ev || v.Addr != 256 {
		t.Fatalf("expected eviction of 256, got evicted=%v addr=%#x", ev, v.Addr)
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Fatal("MRU line 0 was evicted")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New(256, 2, 64)
	c.Access(0, true)
	c.Access(256, false)
	c.Access(512, false) // evicts 0 (LRU), which is dirty
	c.Access(768, false) // evicts 256, clean
	// Reconstruct via another round: directly check returned victims.
	c2 := New(256, 2, 64)
	c2.Access(0, true)
	c2.Access(256, false)
	_, v, ev := c2.Access(512, false)
	if !ev || !v.Dirty || v.Addr != 0 {
		t.Fatalf("want dirty victim 0, got %+v ev=%v", v, ev)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := New(256, 2, 64)
	c.Access(0, false)
	c.Access(0, true) // write hit marks dirty
	c.Access(256, false)
	_, v, ev := c.Access(512, false)
	if !ev || !v.Dirty {
		t.Fatalf("write hit did not mark line dirty: %+v", v)
	}
}

func TestContains(t *testing.T) {
	c := New(1<<13, 8, 64)
	c.Access(0x40, false)
	if !c.Contains(0x40) || !c.Contains(0x7f) {
		t.Fatal("resident line not found")
	}
	if c.Contains(0x80) {
		t.Fatal("phantom residency")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 4, 64}, {100, 4, 64}, {1 << 14, 4, 60}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", g)
				}
			}()
			New(g[0], g[1], g[2])
		}()
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(1<<16, 16, 64) // 64 KB
	// Touch 32 KB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := memtypes.Addr(0); a < 32*1024; a += 64 {
			c.Access(a, false)
		}
	}
	if c.Misses != 32*1024/64 {
		t.Fatalf("misses=%d, want exactly one per line", c.Misses)
	}
}

func TestEvictionConservationProperty(t *testing.T) {
	// Property: resident lines = misses - evictions; victims are always
	// distinct from the line just inserted.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(1<<12, 4, 64) // small: 4 KB to force evictions
		resident := make(map[memtypes.Addr]bool)
		for i := 0; i < 2000; i++ {
			addr := memtypes.Addr(rng.Intn(1<<16)) &^ 63
			hit, v, ev := c.Access(addr, rng.Intn(2) == 0)
			if hit != resident[addr] {
				return false
			}
			if ev {
				if !resident[v.Addr] || v.Addr == addr {
					return false
				}
				delete(resident, v.Addr)
			}
			resident[addr] = true
		}
		return uint64(len(resident)) == c.Misses-c.Evicts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
