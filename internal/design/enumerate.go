package design

import (
	"fmt"
	"strconv"
	"strings"
)

// EnumOptions bounds design-space enumeration over a parameter grammar.
// The zero value is usable for every bounded grammar.
type EnumOptions struct {
	// MaxPerParam caps the candidate values enumerated per integer
	// parameter; wide ranges are subsampled on a geometric ladder that
	// always keeps both endpoints. <= 0 means 12. Enum parameters always
	// contribute every token.
	MaxPerParam int
	// UnboundedMax substitutes an inclusive upper bound for parameters
	// declared unbounded above (Max <= 0). Enumerating such a parameter
	// with UnboundedMax <= 0 is an error: an accidental infinite space
	// must fail loudly instead of hanging.
	UnboundedMax int
}

// maxPerParam resolves the effective per-parameter cap.
func (o EnumOptions) maxPerParam() int {
	if o.MaxPerParam <= 0 {
		return 12
	}
	if o.MaxPerParam < 2 {
		return 2
	}
	return o.MaxPerParam
}

// maxSpace caps the cross-product size Enumerate will materialize; a
// grammar whose ladders multiply beyond this is a configuration mistake,
// not a search space.
const maxSpace = 1 << 20

// Enumerate materializes the design space of one family: the cross
// product of per-parameter candidate values (every enum token; integer
// ranges subsampled on a geometric ladder of at most MaxPerParam values
// including both endpoints), filtered through the family's Check hook.
// Every returned Spec carries its canonical full name and parses back
// identically, so it is directly buildable and cache-keyable.
//
// A parameter that is unbounded above (Max <= 0) requires an explicit
// EnumOptions.UnboundedMax; without one Enumerate returns an error
// instead of attempting an infinite space. A family with no parameters
// enumerates to exactly its base name.
func (i *Info) Enumerate(opts EnumOptions) ([]Spec, error) {
	if len(i.Params) == 0 {
		return []Spec{{Name: i.Name, Info: i}}, nil
	}
	values := make([][]Value, len(i.Params))
	total := 1
	for pi, p := range i.Params {
		vs, err := paramValues(i, p, opts)
		if err != nil {
			return nil, err
		}
		values[pi] = vs
		total *= len(vs)
		if total > maxSpace {
			return nil, fmt.Errorf("design: %s: enumeration exceeds %d specs; lower EnumOptions.MaxPerParam", i.Name, maxSpace)
		}
	}
	var out []Spec
	idx := make([]int, len(values))
	for {
		vals := make([]Value, len(values))
		for pi, j := range idx {
			vals[pi] = values[pi][j]
		}
		if i.Check == nil || i.Check(vals) == nil {
			out = append(out, Spec{Name: specName(i, vals), Info: i, Values: vals})
		}
		// Odometer increment, last parameter fastest.
		pi := len(idx) - 1
		for ; pi >= 0; pi-- {
			idx[pi]++
			if idx[pi] < len(values[pi]) {
				break
			}
			idx[pi] = 0
		}
		if pi < 0 {
			return out, nil
		}
	}
}

// Neighbors returns the specs one ladder step away from s in each
// parameter dimension: the adjacent candidate values of the same
// enumeration ladders Enumerate uses (so neighbors are always members of
// the enumerated space), filtered through the family's Check hook. A
// value that sits between two ladder rungs gets both bracketing rungs as
// its neighbors. The result excludes s itself and is deterministic:
// parameter-major, lower rung before higher.
func (i *Info) Neighbors(s Spec, opts EnumOptions) ([]Spec, error) {
	if s.Info != i {
		return nil, fmt.Errorf("design: Neighbors: spec %q is not a %s spec", s.Name, i.Name)
	}
	if len(i.Params) == 0 {
		return nil, nil
	}
	var out []Spec
	seen := map[string]bool{specName(i, s.Values): true}
	for pi, p := range i.Params {
		vs, err := paramValues(i, p, opts)
		if err != nil {
			return nil, err
		}
		for _, nv := range adjacent(p, s.Values[pi], vs) {
			vals := make([]Value, len(s.Values))
			copy(vals, s.Values)
			vals[pi] = nv
			name := specName(i, vals)
			if seen[name] {
				continue
			}
			seen[name] = true
			if i.Check == nil || i.Check(vals) == nil {
				out = append(out, Spec{Name: name, Info: i, Values: vals})
			}
		}
	}
	return out, nil
}

// adjacent picks the ladder values bordering cur: the rungs at index-1
// and index+1 when cur sits on the ladder, the two bracketing rungs when
// it does not.
func adjacent(p Param, cur Value, ladder []Value) []Value {
	if p.Enum != nil {
		for j, v := range ladder {
			if v.Raw == cur.Raw {
				return ladderAround(ladder, j, j)
			}
		}
		return nil
	}
	lo := -1 // last rung strictly below cur
	for j, v := range ladder {
		if v.Int == cur.Int {
			return ladderAround(ladder, j, j)
		}
		if v.Int < cur.Int {
			lo = j
		}
	}
	return ladderAround(ladder, lo+1, lo) // bracketing rungs [lo, lo+1]
}

// ladderAround returns ladder[loIdx-1] and ladder[hiIdx+1] where they
// exist — shared tail of the on-rung and between-rungs cases.
func ladderAround(ladder []Value, loIdx, hiIdx int) []Value {
	var out []Value
	if loIdx-1 >= 0 {
		out = append(out, ladder[loIdx-1])
	}
	if hiIdx+1 < len(ladder) {
		out = append(out, ladder[hiIdx+1])
	}
	return out
}

// paramValues enumerates the candidate values of one parameter.
func paramValues(i *Info, p Param, opts EnumOptions) ([]Value, error) {
	if p.Enum != nil {
		out := make([]Value, len(p.Enum))
		for j, tok := range p.Enum {
			out[j] = Value{Raw: tok}
		}
		return out, nil
	}
	max := p.Max
	if max <= 0 {
		if opts.UnboundedMax <= 0 {
			return nil, fmt.Errorf("design: %s: <%s> is unbounded above (Max <= 0): set EnumOptions.UnboundedMax to enumerate it", i.Name, p.Name)
		}
		max = opts.UnboundedMax
	}
	if max < p.Min {
		return nil, fmt.Errorf("design: %s: <%s> has empty range [%d, %d]", i.Name, p.Name, p.Min, max)
	}
	var ints []int
	if p.Pow2 {
		ints = pow2Ladder(p.Min, max, opts.maxPerParam())
		if len(ints) == 0 {
			return nil, fmt.Errorf("design: %s: <%s> has no power of two in [%d, %d]", i.Name, p.Name, p.Min, max)
		}
	} else {
		ints = intLadder(p.Min, max, opts.maxPerParam())
	}
	out := make([]Value, len(ints))
	for j, v := range ints {
		out[j] = Value{Raw: strconv.Itoa(v), Int: v}
	}
	return out, nil
}

// intLadder subsamples [min, max] on a geometric ladder: both endpoints
// always present, interior rungs doubling (then quadrupling, and so on)
// from max(min, 1) until at most cap values remain.
func intLadder(min, max, cap int) []int {
	if min >= max {
		return []int{min}
	}
	start := min
	if start < 1 {
		start = 1
	}
	for factor := 2; ; factor *= 2 {
		vals := []int{min}
		for v := start; v < max; v *= factor {
			if v > min {
				vals = append(vals, v)
			}
		}
		vals = append(vals, max)
		if len(vals) <= cap || factor > max {
			return vals
		}
	}
}

// pow2Ladder enumerates the powers of two in [min, max], widening the
// stride (skipping every other rung, then three of four, ...) until at
// most cap values remain; the largest admissible power of two is always
// kept so the range's top stays reachable.
func pow2Ladder(min, max, cap int) []int {
	lo := 1
	for lo < min {
		lo <<= 1
	}
	if lo > max {
		return nil
	}
	hi := lo
	for hi<<1 <= max && hi<<1 > 0 {
		hi <<= 1
	}
	for shift := 1; ; shift *= 2 {
		var vals []int
		for v := lo; v <= max && v > 0; v <<= shift {
			vals = append(vals, v)
		}
		if vals[len(vals)-1] != hi {
			vals = append(vals, hi)
		}
		if len(vals) <= cap || 1<<shift > max {
			return vals
		}
	}
}

// specName renders the canonical full name of a value assignment:
// the base name followed by every parameter value, including trailing
// optional ones, so the name round-trips through Parse unambiguously.
func specName(i *Info, vals []Value) string {
	if len(vals) == 0 {
		return i.Name
	}
	var b strings.Builder
	b.WriteString(i.Name)
	for _, v := range vals {
		b.WriteByte('-')
		b.WriteString(v.Raw)
	}
	return b.String()
}
