package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestSpanTree(t *testing.T) {
	rec := NewFlightRecorder(64)
	tr := NewTracer(rec)
	root := tr.StartSpan("job", String("job_id", "j1"))
	child := root.Child("batch", Int("runs", 12))
	child.Event("phase:frontier_fold", Int("us", 5))
	child.End()
	root.End()

	evs := rec.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	if evs[0].Kind != "span_start" || evs[0].Name != "job" {
		t.Fatalf("first event = %+v, want job span_start", evs[0])
	}
	if evs[1].Parent != evs[0].Span {
		t.Fatalf("child span parent = %q, want root span %q", evs[1].Parent, evs[0].Span)
	}
	for _, e := range evs {
		if e.Trace != evs[0].Trace {
			t.Fatalf("event %+v not in root trace %q", e, evs[0].Trace)
		}
	}
	if evs[2].Kind != "event" || evs[2].Span != evs[1].Span {
		t.Fatalf("span event misattributed: %+v", evs[2])
	}
	if evs[3].Kind != "span_end" || evs[3].DurUS < 0 {
		t.Fatalf("span_end malformed: %+v", evs[3])
	}
}

func TestRemoteSpanContinuesTrace(t *testing.T) {
	coord := NewTracer(NewFlightRecorder(16))
	shard := coord.StartSpan("shard")

	// The runner side: a fresh tracer continuing the coordinator's
	// trace through the wire-carried IDs.
	rec := NewFlightRecorder(16)
	remote := NewTracer(rec).StartRemote(shard.TraceID(), shard.SpanID(), "runner_shard")
	remote.End()
	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d runner events, want 2", len(evs))
	}
	if evs[0].Trace != shard.TraceID() || evs[0].Parent != shard.SpanID() {
		t.Fatalf("remote span not linked: %+v", evs[0])
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := sp.Child("y")
		s.Event("e")
		s.End()
		_ = sp.TraceID()
		_ = sp.SpanID()
	})
	if allocs != 0 {
		t.Fatalf("disabled spans allocate: %v allocs/op, want 0", allocs)
	}
	if NewTracer(nil) != nil {
		t.Fatal("tracer without a sink should be nil (disabled)")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(NewFlightRecorder(16))
	sp := tr.StartSpan("job")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatalf("SpanFrom = %v, want %v", got, sp)
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty) = %v, want nil", got)
	}
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFrom(ctx2) != nil {
		t.Fatal("nil span attached to context")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 0; i < 7; i++ {
		rec.Record(Event{Name: string(rune('a' + i)), Kind: "event"})
	}
	if rec.Total() != 7 {
		t.Fatalf("Total = %d, want 7", rec.Total())
	}
	evs := rec.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first: d e f g survive.
	want := []string{"d", "e", "f", "g"}
	for i, e := range evs {
		if e.Name != want[i] {
			t.Fatalf("event %d = %q, want %q (snapshot %v)", i, e.Name, want[i], evs)
		}
	}
}

func TestFlightRecorderJSONDump(t *testing.T) {
	rec := NewFlightRecorder(8)
	tr := NewTracer(rec)
	tr.StartSpan("x").End()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Total != 2 || len(dump.Events) != 2 {
		t.Fatalf("dump = total %d, %d events; want 2, 2", dump.Total, len(dump.Events))
	}

	// A nil recorder still dumps a valid, empty document.
	buf.Reset()
	var nilRec *FlightRecorder
	if err := nilRec.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("nil dump invalid: %v", err)
	}
}

func TestObsBundle(t *testing.T) {
	o := New(Options{FlightEvents: 8})
	if o.Registry() == nil || o.Tracer() == nil || o.Flight() == nil {
		t.Fatal("enabled bundle has nil components")
	}
	var disabled *Obs
	if disabled.Registry() != nil || disabled.Tracer() != nil || disabled.Flight() != nil {
		t.Fatal("nil bundle leaked components")
	}
	nop := Nop()
	if nop.Registry() != nil || nop.Tracer() != nil || nop.Flight() != nil {
		t.Fatal("Nop bundle leaked components")
	}
}
