package api

import (
	"strings"
	"testing"

	"hybridmem/internal/telemetry"
)

// seriesFixture is a small, fully populated telemetry series with
// recognizable values for the golden bytes below.
func seriesFixture() *telemetry.Series {
	return &telemetry.Series{
		WindowInstr:   1000,
		EpochsTotal:   3,
		EpochsDropped: 1,
		Epochs: []telemetry.Epoch{
			{
				Index: 1, EndInstr: 2000, EndCycle: 4000,
				Instr: 1000, Cycles: 2000, IPC: 0.5,
				LLCAccesses: 64, LLCMisses: 16, MPKI: 16,
				Requests: 20, NMHitFrac: 0.75,
				NMTrafficBytes: 4096, FMTrafficBytes: 1024, MetaNMBytes: 128,
				Migrations: 2, Evictions: 1, WastedFrac: 0.25,
				LatCount: 16, LatMean: 120.5, LatP50: 64, LatP99: 256,
			},
			{
				Index: 2, EndInstr: 3000, EndCycle: 5000,
				Instr: 1000, Cycles: 1000, IPC: 1,
			},
		},
		Phases: []telemetry.Phase{
			{
				StartEpoch: 1, EndEpoch: 2, Epochs: 2,
				MeanIPC: 0.75, MeanMPKI: 8, MeanNMHitFrac: 0.375, MeanWastedFrac: 0.125,
			},
		},
	}
}

// TestGoldenRunSeriesSchema pins the exact bytes of the series wire
// document: a failure here means the series schema changed, which
// requires bumping SeriesSchemaVersion and updating every consumer
// deliberately.
func TestGoldenRunSeriesSchema(t *testing.T) {
	got, err := Encode(NewRunSeries(fixture(), seriesFixture()))
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "schema": 1,
  "series_schema": 1,
  "result": {
    "workload": "lbm",
    "design": "HYBRID2",
    "cycles": 1000,
    "instructions": 4000,
    "ipc": 4,
    "mpki": 12.5,
    "requests": 200,
    "served_nm_frac": 0.75,
    "nm_traffic_bytes": 6144,
    "fm_traffic_bytes": 1536,
    "meta_nm_bytes": 256,
    "migrations": 3,
    "energy_nj": 3.75
  },
  "series": {
    "window_instr": 1000,
    "epochs_total": 3,
    "epochs_dropped": 1,
    "epochs": [
      {
        "epoch": 1,
        "end_instr": 2000,
        "end_cycle": 4000,
        "instr": 1000,
        "cycles": 2000,
        "ipc": 0.5,
        "llc_accesses": 64,
        "llc_misses": 16,
        "mpki": 16,
        "requests": 20,
        "nm_hit_frac": 0.75,
        "nm_traffic_bytes": 4096,
        "fm_traffic_bytes": 1024,
        "meta_nm_bytes": 128,
        "migrations": 2,
        "evictions": 1,
        "wasted_frac": 0.25,
        "lat_count": 16,
        "lat_mean": 120.5,
        "lat_p50": 64,
        "lat_p99": 256
      },
      {
        "epoch": 2,
        "end_instr": 3000,
        "end_cycle": 5000,
        "instr": 1000,
        "cycles": 1000,
        "ipc": 1,
        "llc_accesses": 0,
        "llc_misses": 0,
        "mpki": 0,
        "requests": 0,
        "nm_hit_frac": 0,
        "nm_traffic_bytes": 0,
        "fm_traffic_bytes": 0,
        "meta_nm_bytes": 0,
        "migrations": 0,
        "evictions": 0,
        "wasted_frac": 0,
        "lat_count": 0,
        "lat_mean": 0,
        "lat_p50": 0,
        "lat_p99": 0
      }
    ],
    "phases": [
      {
        "start_epoch": 1,
        "end_epoch": 2,
        "epochs": 2,
        "mean_ipc": 0.75,
        "mean_mpki": 8,
        "mean_nm_hit_frac": 0.375,
        "mean_wasted_frac": 0.125
      }
    ]
  }
}
`
	if string(got) != want {
		t.Errorf("run-series document schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFromSeriesNil: a nil series maps to an empty but well-formed
// document — no null arrays on the wire.
func TestFromSeriesNil(t *testing.T) {
	got, err := Encode(FromSeries(nil))
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if strings.Contains(s, "null") {
		t.Fatalf("nil series encodes null arrays:\n%s", s)
	}
	if !strings.Contains(s, `"epochs": []`) || !strings.Contains(s, `"phases": []`) {
		t.Fatalf("nil series missing empty arrays:\n%s", s)
	}
}

func TestSweepSeriesPartialFlag(t *testing.T) {
	doc := SweepSeries{Schema: SchemaVersion, SeriesSchema: SeriesSchemaVersion,
		Entries: []SweepSeriesEntry{{Design: "HYBRID2", Workload: "lbm", Series: FromSeries(nil)}}}
	settled, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(settled), "partial") {
		t.Fatal("settled sweep-series document carries the partial flag")
	}
	doc.Partial = true
	partial, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(partial), `"partial": true`) {
		t.Fatal("partial sweep-series document missing the partial flag")
	}
}

func TestSeriesCSV(t *testing.T) {
	got := string(SeriesCSV(FromSeries(seriesFixture())))
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), got)
	}
	if lines[0] != strings.TrimSuffix(seriesCSVHeader, "\n") {
		t.Fatalf("csv header drifted: %s", lines[0])
	}
	want1 := "1,2000,4000,1000,2000,0.5,64,16,16,20,0.75,4096,1024,128,2,1,0.25,16,120.5,64,256"
	if lines[1] != want1 {
		t.Fatalf("csv row drifted:\n got %s\nwant %s", lines[1], want1)
	}
	// Header column count matches every row's field count.
	if n := len(strings.Split(lines[0], ",")); n != len(strings.Split(lines[1], ",")) {
		t.Fatalf("csv header has %d columns, row has %d", n, len(strings.Split(lines[1], ",")))
	}
}
