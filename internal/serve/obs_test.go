package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hybridmem/internal/api"
	"hybridmem/internal/cluster"
	"hybridmem/internal/obs"
)

// obsSweep and obsExplore are the shared workloads of the
// observability tests: real but cheap jobs that cross every
// instrumented phase.
func obsSweep() sweepRequest {
	return sweepRequest{
		Designs:   []string{"Baseline", "HYBRID2"},
		Workloads: []string{"lbm", "mcf"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
}

func obsExplore() exploreRequest {
	return exploreRequest{
		Families:           []string{"H2DSE"},
		Workloads:          []string{"mcf"},
		Budget:             6,
		BatchSize:          2,
		Seed:               7,
		MaxPerParam:        3,
		ScreenInstrPerCore: 8_000,
		Config:             api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 20_000, Seed: 1},
	}
}

// TestObservabilityIsPassive pins the tentpole invariant: the documents
// a server produces are byte-identical with the observability plane
// enabled (the default) and fully disabled (obs.Nop()), for both sweep
// and explore.
func TestObservabilityIsPassive(t *testing.T) {
	on := newTestServer(t, Options{Parallelism: 2})
	off := newTestServer(t, Options{Parallelism: 2, Obs: obs.Nop()})

	for _, tc := range []struct {
		path string
		req  any
	}{
		{"/v1/sweep", obsSweep()},
		{"/v1/explore", obsExplore()},
	} {
		want := runJob(t, on, tc.path, tc.req)
		got := runJob(t, off, tc.path, tc.req)
		if !bytes.Equal(got, want) {
			t.Errorf("%s output differs with observability disabled:\non:  %s\noff: %s", tc.path, want, got)
		}
	}
}

// TestScrapeWhileSweepingIsRaceClean hammers /metrics from a scraper
// goroutine while a clustered sweep dispatches shards — under -race
// this pins that the registry, the coordinator's Stats() collectors and
// the store snapshots are safe against concurrent scrapes. Every scrape
// must also pass the exposition lint, and counters must be monotonic
// from the first scrape to the last.
func TestScrapeWhileSweepingIsRaceClean(t *testing.T) {
	s, _ := clusterTestServer(t, 2)

	first := get(s.Handler(), "/metrics")
	if ct := first.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	if err := obs.Lint(first.Body.Bytes()); err != nil {
		t.Fatalf("first scrape fails lint: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := get(s.Handler(), "/metrics")
			if err := obs.Lint(w.Body.Bytes()); err != nil {
				t.Errorf("mid-sweep scrape fails lint: %v", err)
				return
			}
		}
	}()

	runJob(t, s, "/v1/sweep", obsSweep())
	close(stop)
	wg.Wait()

	last := get(s.Handler(), "/metrics")
	if err := obs.Lint(last.Body.Bytes()); err != nil {
		t.Fatalf("final scrape fails lint: %v", err)
	}
	if err := obs.LintMonotonic(first.Body.Bytes(), last.Body.Bytes()); err != nil {
		t.Fatalf("counters ran backwards across the sweep: %v", err)
	}
	if !strings.Contains(last.Body.String(), `hybridmem_phase_duration_us_count{phase="simulate"}`) {
		t.Error("final scrape is missing the simulate phase histogram")
	}
}

// TestDebugEndpoints checks the operational surface riding on the API
// mux: the pprof index and heap profile answer, and /debug/events dumps
// the flight recorder as JSON holding the spans a completed job left
// behind.
func TestDebugEndpoints(t *testing.T) {
	s := newTestServer(t, Options{})
	runJob(t, s, "/v1/sweep", sweepRequest{
		Designs:   []string{"Baseline"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	})

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		if w := get(s.Handler(), path); w.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, w.Code)
		}
	}

	w := get(s.Handler(), "/debug/events")
	if w.Code != 200 {
		t.Fatalf("GET /debug/events = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/events Content-Type = %q", ct)
	}
	var dump struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/events is not valid JSON: %v", err)
	}
	if dump.Total == 0 || len(dump.Events) == 0 {
		t.Fatalf("flight recorder empty after a job: total=%d events=%d", dump.Total, len(dump.Events))
	}
	var sawJob bool
	for _, e := range dump.Events {
		if e.Name == "job" && e.Kind == "span_end" {
			sawJob = true
		}
	}
	if !sawJob {
		t.Error("no completed job span in /debug/events dump")
	}
}

// TestDistributedExploreSpanTimeline runs an exploration across two
// loopback runners with tracing on and checks that the flight recorder
// holds one coherent timeline: the job span parents the cluster batch
// spans, which parent the per-shard dispatch spans, which parent the
// runner-side execution spans — all under the job's trace ID. The
// traced clustered document must also stay byte-identical to a plain
// untraced server's.
func TestDistributedExploreSpanTimeline(t *testing.T) {
	o := obs.New(obs.Options{})
	c := cluster.NewCoordinator(cluster.CoordinatorOptions{
		ShardSize:   1,
		MaxInFlight: 1,
		Obs:         o,
	})
	c.AttachLoopback(2, 1)
	s := newTestServer(t, Options{Cluster: c, Parallelism: 2, Obs: o})

	want := runJob(t, newTestServer(t, Options{Parallelism: 2}), "/v1/explore", obsExplore())
	got := runJob(t, s, "/v1/explore", obsExplore())
	if !bytes.Equal(got, want) {
		t.Fatalf("traced clustered exploration differs from plain server:\nplain:  %s\ntraced: %s", want, got)
	}

	// Index span starts by name; spans[name][spanID] = parentID.
	spans := make(map[string]map[string]string)
	traces := make(map[string]string) // spanID -> traceID
	for _, e := range o.Flight().Snapshot() {
		if e.Kind != "span_start" {
			continue
		}
		if spans[e.Name] == nil {
			spans[e.Name] = make(map[string]string)
		}
		spans[e.Name][e.Span] = e.Parent
		traces[e.Span] = e.Trace
	}
	for _, name := range []string{"job", "cluster_batch", "shard", "runner_shard"} {
		if len(spans[name]) == 0 {
			t.Fatalf("timeline has no %q span; span names: %v", name, names(spans))
		}
	}
	if len(spans["job"]) != 1 {
		t.Fatalf("expected exactly one job span, got %d", len(spans["job"]))
	}
	var jobID, jobTrace string
	for id := range spans["job"] {
		jobID, jobTrace = id, traces[id]
	}

	// Walk each level down and require at least one properly-parented
	// span, with the whole chain on the job's trace.
	chained := func(level string, parents map[string]string) map[string]string {
		out := make(map[string]string)
		for id, parent := range spans[level] {
			if _, ok := parents[parent]; ok {
				if traces[id] != jobTrace {
					t.Errorf("%s span %s is on trace %s, want job trace %s", level, id, traces[id], jobTrace)
				}
				out[id] = parent
			}
		}
		if len(out) == 0 {
			t.Fatalf("no %s span is parented into the job timeline", level)
		}
		return out
	}
	batches := chained("cluster_batch", map[string]string{jobID: ""})
	shards := chained("shard", batches)
	chained("runner_shard", shards)
}

func names(spans map[string]map[string]string) []string {
	out := make([]string, 0, len(spans))
	for n := range spans {
		out = append(out, n)
	}
	return out
}
