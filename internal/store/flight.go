package store

import (
	"fmt"
	"sync"
)

// Flight collapses concurrent identical requests into one execution:
// the first caller of a key runs fn, every concurrent duplicate blocks
// until it settles and shares its outcome. Unlike the store itself,
// nothing is retained after the call completes — errors are never
// served twice.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight returns an empty singleflight group.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{calls: make(map[string]*flightCall[V])}
}

// Do runs fn under the key's singleflight slot. shared reports whether
// this caller piggybacked on another caller's execution.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (val V, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	// Settle the call even if fn panics (net/http recovers handler
	// panics per-connection): an unclosed done channel would park every
	// future identical request forever behind a wedged key. Waiters see
	// the panic as this call's error; the panic itself still propagates
	// to the winner.
	defer func() {
		p := recover()
		if p != nil {
			c.err = fmt.Errorf("singleflight: panic: %v", p)
		}
		close(c.done)
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		if p != nil {
			panic(p)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}
