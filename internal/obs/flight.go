package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// FlightRecorder is a bounded in-memory ring of recent span events —
// the always-on "what just happened" buffer dumped over /debug/events
// and on SIGQUIT. Old events are overwritten once the ring fills; Total
// reports how many were ever recorded so a dump shows what it lost.
// All methods are safe through a nil receiver and for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewFlightRecorder returns a recorder holding the most recent
// `capacity` events; <= 0 means 4096.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (f *FlightRecorder) Record(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.total++
	f.mu.Unlock()
}

// RecordAll appends a batch of events — how a coordinator folds the
// span events a runner echoed back into its own timeline.
func (f *FlightRecorder) RecordAll(evs []Event) {
	if f == nil {
		return
	}
	for _, e := range evs {
		f.Record(e)
	}
}

// Total returns how many events were ever recorded.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the retained events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]Event(nil), f.buf[:f.next]...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// flightDump is the JSON envelope of a flight-recorder dump.
type flightDump struct {
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// WriteJSON dumps the retained events as one JSON document:
// {"total": N, "events": [...]}. A nil recorder dumps an empty
// document, so the endpoint works (and says so) with tracing disabled.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := flightDump{Total: f.Total(), Events: f.Snapshot()}
	if d.Events == nil {
		d.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
