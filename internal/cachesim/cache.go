// Package cachesim provides the set-associative write-back SRAM cache used
// as the shared last-level cache in front of the hybrid memory system
// (Table 1: 8 MB, 16-way, 14-cycle access, non-inclusive non-exclusive).
package cachesim

import "hybridmem/internal/memtypes"

// Victim describes a line evicted by an allocation.
type Victim struct {
	Addr  memtypes.Addr // base address of the evicted line
	Dirty bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a single-level set-associative cache with true-LRU replacement
// and write-allocate/write-back policy. It is a functional model: timing
// is the caller's concern (the driver adds the fixed access latency).
type Cache struct {
	lines     []line
	assoc     int
	sets      int
	lineBytes int
	setShift  uint
	clock     uint64

	Accesses uint64
	Misses   uint64
	Evicts   uint64
}

// New builds a cache of sizeBytes capacity. sizeBytes must be a multiple
// of assoc*lineBytes and the resulting set count must be a power of two.
func New(sizeBytes, assoc, lineBytes int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		panic("cachesim: non-positive geometry")
	}
	sets := sizeBytes / (assoc * lineBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	if 1<<shift != lineBytes {
		panic("cachesim: line size must be a power of two")
	}
	return &Cache{
		lines:     make([]line, sets*assoc),
		assoc:     assoc,
		sets:      sets,
		lineBytes: lineBytes,
		setShift:  shift,
	}
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Access looks up addr, allocating on a miss. It returns whether the
// access hit and, on a miss that displaced a valid line, the victim.
func (c *Cache) Access(addr memtypes.Addr, write bool) (hit bool, victim Victim, evicted bool) {
	c.Accesses++
	c.clock++
	blk := uint64(addr) >> c.setShift
	set := int(blk % uint64(c.sets))
	tag := blk / uint64(c.sets)
	ways := c.lines[set*c.assoc : (set+1)*c.assoc]

	lruIdx := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == tag {
			w.lru = c.clock
			if write {
				w.dirty = true
			}
			return true, Victim{}, false
		}
		if !ways[lruIdx].valid {
			continue // keep first invalid way as the allocation target
		}
		if !w.valid || w.lru < ways[lruIdx].lru {
			lruIdx = i
		}
	}

	c.Misses++
	w := &ways[lruIdx]
	if w.valid {
		c.Evicts++
		victimBlk := (w.tag*uint64(c.sets) + uint64(set)) << c.setShift
		victim = Victim{Addr: memtypes.Addr(victimBlk), Dirty: w.dirty}
		evicted = true
	}
	w.valid = true
	w.tag = tag
	w.dirty = write
	w.lru = c.clock
	return false, victim, evicted
}

// Contains reports whether addr is currently resident (no LRU update).
func (c *Cache) Contains(addr memtypes.Addr) bool {
	blk := uint64(addr) >> c.setShift
	set := int(blk % uint64(c.sets))
	tag := blk / uint64(c.sets)
	ways := c.lines[set*c.assoc : (set+1)*c.assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses, 0 when unused.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
