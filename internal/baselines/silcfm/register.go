package silcfm

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "SILC-FM",
		Doc:     "subblocked interleaved line cache with locking (§2.2)",
		Kind:    design.KindExtra,
		Order:   3,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Default(sys.NMBytes, sys.FMBytes, design.RemapEntries(sys), sys.Seed), nm, fm), nil
		},
	})
}
