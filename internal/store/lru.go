package store

import (
	"container/list"
	"sync"
)

// LRU is a generic LRU cache bounded by entry count and, when a size
// function is provided, by total payload bytes, with hit/miss/eviction
// counters. It is the memory tier of a Store (V = []byte) and the typed
// memo of the experiment runner (V = the memoized run outcome). All
// methods are safe for concurrent use.
type LRU[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	size       func(V) int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns an LRU bounded to maxEntries entries (<= 0:
// unbounded) and, when size is non-nil, to maxBytes payload bytes
// (<= 0: unbounded). size reports one value's byte cost; nil means
// every entry costs zero and only the entry bound applies.
func NewLRU[V any](maxEntries int, maxBytes int64, size func(V) int64) *LRU[V] {
	return &LRU[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		size:       size,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

func (c *LRU[V]) sizeOf(v V) int64 {
	if c.size == nil {
		return 0
	}
	return c.size(v)
}

// Get returns the value for a key and records a hit or a miss.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for a key without touching the LRU order or
// the hit/miss counters — used to re-check the cache from inside a
// singleflight slot, where the caller already recorded its miss.
func (c *LRU[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores a value under a key, evicting least-recently used entries
// until both bounds hold. A value larger than the byte bound on its own
// is not cached at all — admitting it would flush the entire cache for
// a payload that can never be retained alongside anything else.
func (c *LRU[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry[V])
		c.bytes += c.sizeOf(v) - c.sizeOf(e.val)
		e.val = v
		c.ll.MoveToFront(el)
	} else {
		if c.maxBytes > 0 && c.sizeOf(v) > c.maxBytes {
			return
		}
		c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
		c.bytes += c.sizeOf(v)
	}
	for c.overfull() && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*lruEntry[V])
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= c.sizeOf(e.val)
		c.evictions++
	}
}

func (c *LRU[V]) overfull() bool {
	return (c.maxEntries > 0 && len(c.items) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// LRUStats is a point-in-time snapshot of an LRU's counters.
type LRUStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// Stats snapshots the cache's counters.
func (c *LRU[V]) Stats() LRUStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LRUStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.items), Bytes: c.bytes}
}
