// Package exp defines the paper's experiments: one function per table and
// figure of the evaluation (Figures 1-2, Table 1-2, Figures 11-18), shared
// by cmd/experiments and the benchmark harness. A Runner memoizes
// (workload, design, NM-ratio) runs so figures built from the same sweep
// (12, 13, 15-18) reuse results, and evaluates independent runs across a
// worker pool (see ResultsParallel and Sweep) so regenerating the
// evaluation scales with the machine's cores.
//
// Designs are resolved through the self-registering catalog in
// internal/design: the engine imports no internal/baselines package and
// holds no design list or build switch of its own — names parse to
// validated, buildable specs before any simulation state exists, and the
// registry's metadata drives the figure design lists below. (The sole
// organization dependency left is ablations.go reading Hybrid2's path
// counters through internal/core.)
package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all" // link every built-in organization into the registry
	"hybridmem/internal/obs"
	"hybridmem/internal/sim"
	"hybridmem/internal/store"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// MainDesigns are the six designs of Figures 12-18, in the paper's order,
// straight from the registry.
var MainDesigns = design.Names(design.KindMain)

// ExtraDesigns are related-work designs from the paper's §2 that are not
// part of its evaluation figures but are implemented for completeness,
// straight from the registry.
var ExtraDesigns = design.Names(design.KindExtra)

// Runner executes and memoizes simulation runs.
type Runner struct {
	Scale        int
	InstrPerCore uint64
	Seed         uint64
	// Prefetch enables the LLC next-line prefetcher for all runs.
	Prefetch bool
	// Workload subset; nil means all 30.
	Subset []workload.Spec
	// Parallelism bounds the workers used by ResultsParallel and Sweep;
	// <= 0 means GOMAXPROCS. 1 forces strictly serial execution.
	Parallelism int
	// TraceWindow bounds the per-core lookahead of streaming trace
	// replay, in records; <= 0 means trace.DefaultWindow.
	TraceWindow int
	// Store, when non-nil, persists every completed run (and recalls
	// past ones) through the shared content-addressed result store: a
	// run found on disk is decoded instead of simulated, and runs this
	// runner executes become disk hits for every later runner — across
	// restarts and across processes sharing the directory. Keys cover
	// every knob above (see store.RunKey), so a store can safely back
	// runners with different configurations.
	Store *store.Store
	// MemoEntries bounds the in-memory memo cache, which previously
	// grew without limit over a long-lived server or coordinator
	// process; <= 0 means 4096 entries. Evicted runs re-resolve through
	// the store's disk tier (or re-simulate) with identical results.
	MemoEntries int
	// SimCounter, when non-nil, is incremented for every simulation the
	// runner actually executes — not for memo or store hits — so
	// serving layers can assert and report how much engine work a
	// request really cost.
	SimCounter *obs.Counter
	// Telemetry supplies the epoch-sampling knobs of the Series-
	// returning run methods (ResultSeriesErr, ResultsParallelSeries,
	// RunTraceSeries); nil means package defaults. It is ignored by the
	// plain run methods: sampling only happens when a Series method is
	// called, and is passive even then — see TelemetryOptions.
	Telemetry *TelemetryOptions

	mu     sync.Mutex
	memo   *store.LRU[memoVal]
	flight *store.Flight[memoVal]
}

// memoVal is one settled run: its result or its error, memoized
// together exactly as the old per-key future retained them.
type memoVal struct {
	res sim.Result
	err error
}

// defaultMemoEntries bounds the memo when MemoEntries is unset: large
// enough for the full evaluation's cross product, small enough that a
// long-lived server can never grow without limit.
const defaultMemoEntries = 4096

// NewRunner returns a runner at the default scale and instruction budget.
func NewRunner() *Runner {
	return &Runner{Scale: config.DefaultScale, InstrPerCore: 1_000_000, Seed: 1}
}

// NewQuickRunner returns a reduced-cost runner (shorter streams, one
// third of the workloads) for smoke runs and benchmarks.
func NewQuickRunner() *Runner {
	r := NewRunner()
	r.InstrPerCore = 250_000
	all := workload.Specs()
	for i := 0; i < len(all); i += 3 {
		r.Subset = append(r.Subset, all[i])
	}
	return r
}

// Workloads returns the workloads this runner sweeps.
func (r *Runner) Workloads() []workload.Spec {
	if r.Subset != nil {
		return r.Subset
	}
	return workload.Specs()
}

// workers resolves the effective worker count.
func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// clone returns a runner with the same knobs but its own memo cache —
// used by studies that vary a knob (seed, prefetcher) per sub-sweep.
// The persistent store and the simulation counter are shared: store
// keys cover every knob, so sub-sweeps reuse and contribute entries
// safely.
func (r *Runner) clone() *Runner {
	return &Runner{
		Scale:        r.Scale,
		InstrPerCore: r.InstrPerCore,
		Seed:         r.Seed,
		Prefetch:     r.Prefetch,
		Subset:       r.Subset,
		Parallelism:  r.Parallelism,
		Store:        r.Store,
		MemoEntries:  r.MemoEntries,
		SimCounter:   r.SimCounter,
		Telemetry:    r.Telemetry,
	}
}

// system resolves the scaled system for an NM:FM ratio of ratio16:16.
func (r *Runner) system(ratio16 int) config.System {
	sys := config.Scaled(r.Scale, ratio16)
	sys.InstrPerCore = r.InstrPerCore
	sys.Seed = r.Seed
	sys.NextLinePrefetch = r.Prefetch
	return sys
}

// RunSpec identifies one independent simulation run of a sweep.
type RunSpec struct {
	Workload workload.Spec
	Design   string
	Ratio16  int
}

// memoState returns the runner's memo cache and singleflight group,
// creating them on first use.
func (r *Runner) memoState() (*store.LRU[memoVal], *store.Flight[memoVal]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memo == nil {
		n := r.MemoEntries
		if n <= 0 {
			n = defaultMemoEntries
		}
		r.memo = store.NewLRU[memoVal](n, 0, nil)
		r.flight = store.NewFlight[memoVal]()
	}
	return r.memo, r.flight
}

// MemoStats snapshots the in-memory memo cache's counters — test and
// metrics visibility into the bounded tier.
func (r *Runner) MemoStats() store.LRUStats {
	memo, _ := r.memoState()
	return memo.Stats()
}

// runKey is the canonical store key of one (already ratio-normalized)
// run of this runner.
func (r *Runner) runKey(wl workload.Spec, designName string, ratio16 int) string {
	return store.RunKey(designName, wl.Name, ratio16, r.Scale, r.InstrPerCore, r.Seed, r.Prefetch)
}

// ResultErr runs (or recalls) one workload on one design at an NM ratio.
// The design name resolves through the registry before anything is
// cached or simulated, so malformed names and out-of-range parameters
// fail here as parse errors. Duplicate in-flight runs coalesce:
// concurrent callers of the same (workload, design, ratio) block on one
// simulation and share its result. With a Store attached, a run found
// (and verified) in the store's disk tier is decoded instead of
// simulated, and completed simulations are persisted for every future
// runner sharing the store.
func (r *Runner) ResultErr(wl workload.Spec, designName string, ratio16 int) (sim.Result, error) {
	spec, err := design.Parse(designName)
	if err != nil {
		return sim.Result{}, err
	}
	if !spec.Info.NeedsNM {
		ratio16 = 1 // no NM: one run serves all ratios
	}
	key := r.runKey(wl, designName, ratio16)
	memo, flight := r.memoState()
	if v, ok := memo.Get(key); ok {
		return v.res, v.err
	}
	v, _, _ := flight.Do(key, func() (v memoVal, _ error) {
		// Losing a memo race is cheaper than re-simulating: re-check
		// from inside the slot before touching disk or the engine.
		if v, ok := memo.Peek(key); ok {
			return v, nil
		}
		if data, ok := r.Store.GetDisk(key); ok {
			var res sim.Result
			if err := json.Unmarshal(data, &res); err == nil {
				return memoVal{res: res}, nil
			}
			// Undecodable (a record written before a layout change that
			// forgot to bump the engine version): re-simulate.
		}
		// A panic here (e.g. from the simulation itself) must neither
		// kill a worker goroutine nor poison the memo into replaying a
		// zero result: settle it as this key's error. Construction-time
		// panics are already converted to errors by Spec.Build.
		defer func() {
			if p := recover(); p != nil {
				v = memoVal{err: fmt.Errorf("exp: run %s/%s: %v", wl.Name, designName, p)}
			}
		}()
		sys := r.system(ratio16)
		ms, nm, fm, err := spec.Build(sys)
		if err != nil {
			return memoVal{err: err}, nil
		}
		r.SimCounter.Inc()
		res := sim.Run(wl, ms, nm, fm, sys)
		if r.Store != nil {
			if data, err := json.Marshal(res); err == nil {
				r.Store.PutDisk(key, data)
			}
		}
		return memoVal{res: res}, nil
	})
	memo.Put(key, v)
	return v.res, v.err
}

// ResultErrCtx is ResultErr with cancellation: a canceled context fails
// fast with ctx.Err() before any simulation state is built. A run already
// in flight on another goroutine is not interrupted — simulations are
// short — but no new work starts after cancellation.
func (r *Runner) ResultErrCtx(ctx context.Context, wl workload.Spec, designName string, ratio16 int) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	return r.ResultErr(wl, designName, ratio16)
}

// Result is the panicking convenience form of ResultErr, for call sites
// whose design names are statically known to be well-formed.
func (r *Runner) Result(wl workload.Spec, designName string, ratio16 int) sim.Result {
	res, err := r.ResultErr(wl, designName, ratio16)
	if err != nil {
		panic(err)
	}
	return res
}

// parallelFor runs fn(i) for every i in [0, n) across the runner's
// worker pool without a cancellation point; see parallelForCtx.
func (r *Runner) parallelFor(n int, fn func(i int) error) error {
	return r.parallelForCtx(context.Background(), n, fn)
}

// parallelForCtx runs fn(i) for every i in [0, n) across the runner's
// worker pool, serially when one worker suffices. Errors are joined in
// index order; one failing index never aborts the others, but a canceled
// context stops promptly: indices not yet dispatched are never run and
// settle as ctx.Err(), and each worker re-checks the context before
// starting a queued index. A panic inside fn settles as that index's
// error instead of escaping on a worker goroutine, where no caller's
// recover could catch it.
func (r *Runner) parallelForCtx(ctx context.Context, n int, fn func(i int) error) error {
	return errors.Join(r.parallelForEach(ctx, n, fn)...)
}

// parallelForEach is the per-index core of parallelForCtx: it returns
// one error slot per index (nil on success) instead of joining them, so
// callers that need per-run granularity — the cluster shard executor,
// the DSE evaluator — can tell exactly which runs failed. Cancellation
// and panic handling are as described on parallelForCtx; indices
// abandoned by cancellation settle as ctx.Err().
func (r *Runner) parallelForEach(ctx context.Context, n int, fn func(i int) error) []error {
	call := func(i int) (err error) {
		if err := ctx.Err(); err != nil {
			return err
		}
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("exp: parallel run %d: %v", i, p)
			}
		}()
		return fn(i)
	}
	errs := make([]error, n)
	workers := min(r.workers(), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errs
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = call(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return errs
}

// ResultsParallel evaluates the given runs across the runner's worker
// pool and returns their results in input order. Results are memoized
// exactly like Result, so a parallel sweep followed by serial reads (the
// figure generators' pattern) recomputes nothing. Execution is
// deterministic per run — each simulation is self-contained — so results
// are bit-identical to a serial evaluation regardless of scheduling. Runs
// whose design name is malformed report errors (joined, one per bad run)
// without aborting the rest of the sweep; their result slots are zero.
func (r *Runner) ResultsParallel(specs []RunSpec) ([]sim.Result, error) {
	return r.ResultsParallelCtx(context.Background(), specs)
}

// ResultsParallelCtx is ResultsParallel with cancellation: when ctx is
// canceled, queued runs are abandoned promptly (their error slots settle
// as ctx.Err()) while runs already executing finish and land in the memo
// cache as usual.
func (r *Runner) ResultsParallelCtx(ctx context.Context, specs []RunSpec) ([]sim.Result, error) {
	return r.ResultsParallelProgress(ctx, specs, nil)
}

// ResultsParallelProgress is ResultsParallelCtx with streaming progress:
// when progress is non-nil it is called once per settled run with the
// count of runs finished so far and the total — the hook long-lived
// servers use to report sweep progress to clients. Calls are serialized
// and done is strictly increasing, but the order in which indices settle
// is scheduling-dependent; on cancellation, abandoned runs never report.
func (r *Runner) ResultsParallelProgress(ctx context.Context, specs []RunSpec, progress func(done, total int)) ([]sim.Result, error) {
	out := make([]sim.Result, len(specs))
	var mu sync.Mutex
	finished := 0
	err := r.parallelForCtx(ctx, len(specs), func(i int) error {
		var err error
		out[i], err = r.ResultErr(specs[i].Workload, specs[i].Design, specs[i].Ratio16)
		if progress != nil {
			mu.Lock()
			finished++
			progress(finished, len(specs))
			mu.Unlock()
		}
		return err
	})
	return out, err
}

// ResultsParallelEach evaluates the given runs across the runner's
// worker pool and returns results and errors in input order, one error
// slot per run (nil on success) — no joining, so executors that relay
// per-run outcomes (the cluster shard executor, the DSE evaluator) keep
// exact run-to-error attribution. Memoization, determinism and
// cancellation behave exactly as in ResultsParallelCtx; a run abandoned
// by cancellation settles its slot as ctx.Err() with a zero result.
func (r *Runner) ResultsParallelEach(ctx context.Context, specs []RunSpec) ([]sim.Result, []error) {
	out := make([]sim.Result, len(specs))
	errs := r.parallelForEach(ctx, len(specs), func(i int) error {
		var err error
		out[i], err = r.ResultErr(specs[i].Workload, specs[i].Design, specs[i].Ratio16)
		return err
	})
	return out, errs
}

// SweepSpecs pre-enumerates the (workload × design × ratio) cross
// product of a sweep over this runner's workloads, in deterministic
// design-major order.
func (r *Runner) SweepSpecs(designs []string, ratios []int) []RunSpec {
	wls := r.Workloads()
	specs := make([]RunSpec, 0, len(designs)*len(ratios)*len(wls))
	for _, d := range designs {
		for _, ratio := range ratios {
			for _, wl := range wls {
				specs = append(specs, RunSpec{Workload: wl, Design: d, Ratio16: ratio})
			}
		}
	}
	return specs
}

// SweepSpecsByName builds the design-major, workload-minor cross
// product for explicit name lists — the run order every consumer of the
// shared wire encoding (cmd/experiments -sweepjson, the serve layer)
// must agree on for sweep documents to be byte-identical. Unknown
// workload names error; design names are validated later, when the runs
// resolve through the registry.
func SweepSpecsByName(designs, workloadNames []string, ratio16 int) ([]RunSpec, error) {
	specs := make([]RunSpec, 0, len(designs)*len(workloadNames))
	for _, d := range designs {
		for _, name := range workloadNames {
			wl, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("exp: unknown workload %q", name)
			}
			specs = append(specs, RunSpec{Workload: wl, Design: d, Ratio16: ratio16})
		}
	}
	return specs, nil
}

// Sweep evaluates every (workload, design, ratio) combination in
// parallel, warming the memo cache so subsequent Result calls are free.
func (r *Runner) Sweep(designs []string, ratios []int) error {
	return r.SweepCtx(context.Background(), designs, ratios)
}

// SweepCtx is Sweep with cancellation: a canceled context abandons the
// queued remainder of the cross product promptly.
func (r *Runner) SweepCtx(ctx context.Context, designs []string, ratios []int) error {
	_, err := r.ResultsParallelCtx(ctx, r.SweepSpecs(designs, ratios))
	return err
}

// mustSweep pre-warms a figure generator's run set. The generators only
// sweep statically well-formed design names, so an error here is a bug.
func (r *Runner) mustSweep(designs []string, ratios []int) {
	if err := r.Sweep(designs, ratios); err != nil {
		panic(err)
	}
}

// withBaseline prepends the no-NM baseline to a design list: every
// speedup-reporting figure needs it as the normalization point.
func withBaseline(designs []string) []string {
	return append([]string{"Baseline"}, designs...)
}

// RunTrace replays a captured trace on a design at an NM ratio,
// streaming the records: the trace (any format internal/trace reads,
// auto-detected) is never materialized, so arbitrarily large captures
// replay in memory bounded by the runner's TraceWindow. mlp bounds
// per-core overlapped misses and must be >= 1. A trace with no records
// (empty or whitespace/comments only) is an error, not a zero-cycle
// result, as is a decode error or a core interleaving more skewed than
// the lookahead window. Trace runs are not memoized.
func (r *Runner) RunTrace(name string, rd io.Reader, designName string, ratio16, mlp int) (res sim.Result, err error) {
	spec, err := design.Parse(designName)
	if err != nil {
		return sim.Result{}, err
	}
	if mlp < 1 {
		return sim.Result{}, fmt.Errorf("exp: trace %s: mlp must be >= 1, got %d", name, mlp)
	}
	sr, err := trace.NewStreamReader(rd, config.Cores, r.TraceWindow)
	if err != nil {
		return sim.Result{}, err
	}
	// Fail fast on an empty or immediately malformed trace, before any
	// simulation state is built.
	if err := sr.Prime(); err != nil {
		return sim.Result{}, err
	}
	if sr.Records() == 0 {
		return sim.Result{}, fmt.Errorf("exp: trace %s: no records", name)
	}
	srcs := make([]sim.Source, config.Cores)
	for i := range srcs {
		srcs[i] = sr.Source(i)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: trace run %s/%s: %v", name, designName, p)
		}
	}()
	sys := r.system(ratio16)
	ms, nm, fm, err := spec.Build(sys)
	if err != nil {
		return sim.Result{}, err
	}
	r.SimCounter.Inc()
	res = sim.RunSources(name, srcs, mlp, ms, nm, fm, sys)
	// Per-core sources signal stream problems only as an early end of
	// records; surface the real cause now that replay has drained.
	if serr := sr.Err(); serr != nil {
		return sim.Result{}, serr
	}
	return res, nil
}

// Speedup returns design cycles relative to the no-NM baseline, or 0 if
// either run completed no cycles (the ratio would be meaningless).
func (r *Runner) Speedup(wl workload.Spec, designName string, ratio16 int) float64 {
	base := r.Result(wl, "Baseline", 1)
	res := r.Result(wl, designName, ratio16)
	if res.Cycles == 0 || base.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// ClassSpeedups collects per-workload speedups of one MPKI class.
func (r *Runner) ClassSpeedups(c workload.Class, designName string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		if wl.Class == c {
			out = append(out, r.Speedup(wl, designName, ratio16))
		}
	}
	return out
}

// AllSpeedups collects per-workload speedups across all classes.
func (r *Runner) AllSpeedups(designName string, ratio16 int) []float64 {
	var out []float64
	for _, wl := range r.Workloads() {
		out = append(out, r.Speedup(wl, designName, ratio16))
	}
	return out
}
