package exp

import (
	"fmt"
	"strings"

	"hybridmem/internal/api"
)

// Table is a printable experiment result: a title, a header row, and data
// rows, rendered as aligned text matching the paper's series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// CSV renders the table as RFC-4180-ish CSV (header row first). Cells
// containing commas or quotes are quoted.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the table as an indented JSON document with schema
// version, title, header and rows — the shared wire encoding of
// internal/api, pinned by its golden test.
func (t Table) JSON() ([]byte, error) {
	return api.Encode(api.Table{
		Schema: api.SchemaVersion,
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.Rows,
	})
}

// Slug returns a filesystem-friendly name derived from the title.
func (t Table) Slug() string {
	title := t.Title
	if i := strings.IndexByte(title, ':'); i > 0 {
		title = title[:i]
	}
	title = strings.ToLower(strings.TrimSpace(title))
	var b strings.Builder
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '(' || r == ')':
			if n := b.Len(); n > 0 && b.String()[n-1] != '_' {
				b.WriteByte('_')
			}
		}
	}
	return strings.Trim(b.String(), "_")
}
