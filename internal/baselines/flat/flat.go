// Package flat provides the normalization baseline of the paper's
// evaluation: a system without 3D-stacked DRAM where every request is
// served by the far memory, plus an all-NM reference useful as an upper
// bound in examples and tests.
package flat

import (
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// FMOnly is the baseline without near memory.
type FMOnly struct {
	fm    *memsys.Device
	stats memtypes.MemStats
}

// NewFMOnly builds the baseline over the far-memory device.
func NewFMOnly(fm *memsys.Device) *FMOnly {
	return &FMOnly{fm: fm}
}

// Name implements MemorySystem.
func (f *FMOnly) Name() string { return "Baseline" }

// Access serves every request from FM.
func (f *FMOnly) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	f.stats.Requests++
	f.stats.ServedFM++
	done := f.fm.Access(now, addr, memtypes.CPULineBytes, write)
	if write {
		f.stats.FMWriteBytes += memtypes.CPULineBytes
	} else {
		f.stats.FMReadBytes += memtypes.CPULineBytes
	}
	return done
}

// Finish implements MemorySystem (no deferred work).
func (f *FMOnly) Finish(memtypes.Tick) {}

// Stats implements MemorySystem.
func (f *FMOnly) Stats() *memtypes.MemStats { return &f.stats }

// NMOnly serves everything from near memory: an optimistic reference for
// examples and sanity tests (not part of the paper's figures).
type NMOnly struct {
	nm    *memsys.Device
	stats memtypes.MemStats
}

// NewNMOnly builds the all-NM reference.
func NewNMOnly(nm *memsys.Device) *NMOnly { return &NMOnly{nm: nm} }

// Name implements MemorySystem.
func (f *NMOnly) Name() string { return "AllNM" }

// Access serves every request from NM.
func (f *NMOnly) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	f.stats.Requests++
	f.stats.ServedNM++
	done := f.nm.Access(now, addr, memtypes.CPULineBytes, write)
	if write {
		f.stats.NMWriteBytes += memtypes.CPULineBytes
	} else {
		f.stats.NMReadBytes += memtypes.CPULineBytes
	}
	return done
}

// Finish implements MemorySystem (no deferred work).
func (f *NMOnly) Finish(memtypes.Tick) {}

// Stats implements MemorySystem.
func (f *NMOnly) Stats() *memtypes.MemStats { return &f.stats }
