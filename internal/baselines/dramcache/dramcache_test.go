package dramcache

import (
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func devices() (*memsys.Device, *memsys.Device) {
	return memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config())
}

func TestMissFetchesWholeLineHitServesFromNM(t *testing.T) {
	nm, fm := devices()
	c := New(Ideal(1<<20, 256), nm, fm)
	c.Access(0, 0x1000, false)
	s := c.Stats()
	if s.ServedFM != 1 || s.FMReadBytes != 256 {
		t.Fatalf("miss: served=%d fmRead=%d, want 1/256", s.ServedFM, s.FMReadBytes)
	}
	if s.NMWriteBytes != 256 {
		t.Fatalf("fill wrote %d bytes to NM, want 256", s.NMWriteBytes)
	}
	c.Access(0, 0x1040, false) // same 256 B line
	if s.ServedNM != 1 {
		t.Fatalf("same-line access not served from NM: %+v", s)
	}
}

func TestHitFasterThanMiss(t *testing.T) {
	nm, fm := devices()
	c := New(Ideal(1<<20, 256), nm, fm)
	missDone := c.Access(0, 0, false)
	base := missDone + 1000 // quiesce
	hitDone := c.Access(base, 0, false) - base
	if hitDone >= missDone {
		t.Fatalf("hit latency %d not below miss latency %d", hitDone, missDone)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	nm, fm := devices()
	// Tiny direct-mapped-ish cache: 2 sets x 16 ways x 64 B = 2 KB.
	c := New(Config{Name: "IDEAL", NMBytes: 2048, LineBytes: 64, Assoc: 16}, nm, fm)
	c.Access(0, 0, true) // dirty line at set 0
	// Fill set 0 (same set: stride 128 bytes) until 0 is evicted.
	for i := 1; i <= 16; i++ {
		c.Access(0, memtypes.Addr(i*128), false)
	}
	if c.Stats().FMWriteBytes == 0 {
		t.Fatal("dirty eviction produced no FM write-back")
	}
}

func TestWastedDataGrowsWithLineSize(t *testing.T) {
	// A single 64 B touch per line: larger lines waste more.
	run := func(line int) float64 {
		nm, fm := devices()
		c := New(Ideal(1<<22, line), nm, fm)
		var now memtypes.Tick
		for i := 0; i < 2000; i++ {
			// Stride of one line: touch one chunk per line.
			now = c.Access(now, memtypes.Addr(i*line), false)
		}
		c.Finish(now)
		return c.Stats().WastedFrac()
	}
	small, large := run(64), run(1024)
	if small != 0 {
		t.Fatalf("64 B lines wasted %f, want 0", small)
	}
	if large < 0.9 {
		t.Fatalf("1 KB lines with single-chunk use wasted only %f", large)
	}
}

func TestSequentialUseWastesNothing(t *testing.T) {
	nm, fm := devices()
	c := New(Ideal(1<<22, 1024), nm, fm)
	var now memtypes.Tick
	for a := memtypes.Addr(0); a < 1<<20; a += 64 {
		now = c.Access(now, a, false)
	}
	c.Finish(now)
	if w := c.Stats().WastedFrac(); w > 0.01 {
		t.Fatalf("sequential scan wasted %f of fetched data", w)
	}
}

func TestDFCChargesMetadata(t *testing.T) {
	nm, fm := devices()
	ideal := New(Ideal(1<<20, 1024), nm, fm)
	ideal.Access(0, 0, false)
	nm2, fm2 := devices()
	dfc := New(DFC(1<<20, 1024), nm2, fm2)
	dfc.Access(0, 0, false)
	if dfc.Stats().MetaNMBytes == 0 {
		t.Fatal("DFC miss charged no metadata traffic")
	}
	if ideal.Stats().MetaNMBytes != 0 {
		t.Fatal("IDEAL charged metadata traffic")
	}
}

func TestDFCSlowerThanIdeal(t *testing.T) {
	nm, fm := devices()
	ideal := New(Ideal(1<<20, 1024), nm, fm)
	idealDone := ideal.Access(0, 0, false)
	nm2, fm2 := devices()
	dfc := New(DFC(1<<20, 1024), nm2, fm2)
	dfcDone := dfc.Access(0, 0, false)
	if dfcDone <= idealDone {
		t.Fatalf("DFC miss (%d) not slower than IDEAL (%d)", dfcDone, idealDone)
	}
}

func TestTaglessGeometry(t *testing.T) {
	nm, fm := devices()
	c := New(Tagless(64<<20), nm, fm)
	if c.cfg.LineBytes != 4096 {
		t.Fatalf("tagless line %d, want 4096", c.cfg.LineBytes)
	}
	if c.Name() != "TAGLESS" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	nm, fm := devices()
	New(Config{Name: "X", NMBytes: 3 << 10, LineBytes: 64, Assoc: 16}, nm, fm)
}

func TestCapacityConservation(t *testing.T) {
	// Touching exactly the cache capacity sequentially must not evict.
	nm, fm := devices()
	cap := uint64(1 << 20)
	c := New(Ideal(cap, 256), nm, fm)
	var now memtypes.Tick
	for a := memtypes.Addr(0); a < memtypes.Addr(cap); a += 256 {
		now = c.Access(now, a, false)
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("evictions %d while working set fits", c.Stats().Evictions)
	}
	// One more distinct line must evict exactly one.
	c.Access(now, memtypes.Addr(cap), false)
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions %d after overflow, want 1", c.Stats().Evictions)
	}
}
