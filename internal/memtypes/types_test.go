package memtypes

import "testing"

func TestTrafficTotals(t *testing.T) {
	s := MemStats{
		NMReadBytes: 100, NMWriteBytes: 30,
		FMReadBytes: 500, FMWriteBytes: 70,
	}
	if got := s.NMTraffic(); got != 130 {
		t.Errorf("NMTraffic = %d, want 130", got)
	}
	if got := s.FMTraffic(); got != 570 {
		t.Errorf("FMTraffic = %d, want 570", got)
	}
}

func TestTrafficZero(t *testing.T) {
	var s MemStats
	if s.NMTraffic() != 0 || s.FMTraffic() != 0 {
		t.Errorf("empty stats report traffic: %+v", s)
	}
}

func TestWastedFrac(t *testing.T) {
	cases := []struct {
		fetched, used uint64
		want          float64
	}{
		{0, 0, 0},     // nothing fetched: defined as 0, not NaN
		{100, 100, 0}, // everything used
		{100, 25, 0.75},
		{4096, 0, 1},  // nothing used
		{100, 101, 0}, // used > fetched: clamp, don't wrap the uint64 subtraction
		{0, 50, 0},    // used without fetches: still 0
	}
	for _, c := range cases {
		s := MemStats{FetchedBytes: c.fetched, UsedBytes: c.used}
		if got := s.WastedFrac(); got != c.want {
			t.Errorf("WastedFrac(fetched=%d, used=%d) = %v, want %v", c.fetched, c.used, got, c.want)
		}
	}
}

func TestCPULineGranularity(t *testing.T) {
	// The whole simulator assumes 64 B processor lines; several designs
	// derive vector sizes from it, so a silent change must fail loudly.
	if CPULineBytes != 64 {
		t.Fatalf("CPULineBytes = %d, want 64", CPULineBytes)
	}
}
