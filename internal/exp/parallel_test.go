package exp

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/workload"
)

// parallelPair returns two identically configured runners, one strictly
// serial and one fanned out over 8 workers.
func parallelPair() (serial, parallel *Runner) {
	serial = tiny()
	serial.Parallelism = 1
	parallel = tiny()
	parallel.Parallelism = 8
	return serial, parallel
}

// TestParallelMatchesSerial asserts the core determinism guarantee of
// the parallel engine: a sweep evaluated across workers produces results
// identical to the same sweep evaluated serially, run by run.
func TestParallelMatchesSerial(t *testing.T) {
	serial, par := parallelPair()
	designs := withBaseline([]string{"HYBRID2", "MPOD", "TAGLESS", "DFC-512", "IDEAL-256"})
	specs := serial.SweepSpecs(designs, []int{1, 2})
	want, err := serial.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(got), len(specs))
	}
	for i := range specs {
		if got[i] != want[i] {
			t.Errorf("%s/%s/%d: parallel result differs from serial:\n%+v\n%+v",
				specs[i].Workload.Name, specs[i].Design, specs[i].Ratio16, got[i], want[i])
		}
	}
}

// TestParallelResultsInInputOrder pins the stable-ordering contract.
func TestParallelResultsInInputOrder(t *testing.T) {
	_, par := parallelPair()
	specs := par.SweepSpecs([]string{"Baseline", "HYBRID2", "LGM"}, []int{1})
	res, err := par.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if res[i].Workload != s.Workload.Name {
			t.Fatalf("slot %d holds workload %s, want %s", i, res[i].Workload, s.Workload.Name)
		}
	}
}

// TestParallelTableByteIdentical regenerates a Fig. 2-style table with a
// serial and a parallel runner and requires byte-identical rendering.
func TestParallelTableByteIdentical(t *testing.T) {
	serial, par := parallelPair()
	ts, _ := Fig2(serial)
	tp, _ := Fig2(par)
	if ts.String() != tp.String() {
		t.Fatalf("serial and parallel Fig2 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
			ts.String(), tp.String())
	}
	as, _ := Ablations(serial)
	ap, _ := Ablations(par)
	if as.String() != ap.String() {
		t.Fatal("serial and parallel ablation tables differ")
	}
}

// TestSweepBadDesignReturnsError checks that a malformed design name in
// a sweep reports an error instead of panicking and taking the whole
// parallel sweep down, and that the healthy runs still complete.
func TestSweepBadDesignReturnsError(t *testing.T) {
	_, par := parallelPair()
	specs := par.SweepSpecs([]string{"Baseline", "BOGUS", "IDEAL-xyz", "HYBRID2"}, []int{1})
	res, err := par.ResultsParallel(specs)
	if err == nil {
		t.Fatal("malformed designs produced no error")
	}
	for _, frag := range []string{"BOGUS", "xyz"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not identify %q", err, frag)
		}
	}
	for i, s := range specs {
		healthy := s.Design == "Baseline" || s.Design == "HYBRID2"
		if healthy && res[i].Cycles == 0 {
			t.Errorf("healthy run %s/%s died with the sweep", s.Workload.Name, s.Design)
		}
		if !healthy && res[i].Cycles != 0 {
			t.Errorf("malformed run %s produced a result", s.Design)
		}
	}
}

// TestConstructorPanicBecomesError covers a well-formed design name
// whose parameters a constructor rejects by panicking (here a sector
// size that is not a multiple of the line size): the panic must settle
// as this run's error — not kill a worker goroutine, and not poison the
// memoized entry into replaying a zero result on retry.
func TestConstructorPanicBecomesError(t *testing.T) {
	r := tiny()
	r.Parallelism = 4
	wl := r.Workloads()[0]
	const bad = "H2DSE-64-2-100" // 2 KB sectors, 100 B lines: invalid
	if _, err := r.ResultErr(wl, bad, 1); err == nil {
		t.Fatal("invalid DSE parameters produced no error")
	}
	res, err := r.ResultErr(wl, bad, 1) // retry must not see a zero result
	if err == nil {
		t.Fatalf("retry lost the error, returned %+v", res)
	}
	// And inside a parallel sweep it must not crash the process.
	specs := r.SweepSpecs([]string{"Baseline", bad, "HYBRID2"}, []int{1})
	out, err := r.ResultsParallel(specs)
	if err == nil {
		t.Fatal("sweep with invalid design reported no error")
	}
	for i, s := range specs {
		if s.Design != bad && out[i].Cycles == 0 {
			t.Errorf("healthy run %s/%s died with the panicking design", s.Workload.Name, s.Design)
		}
	}
}

// TestSingleflightCoalesces hammers one cache key from many goroutines
// and verifies they all settle on a single memoized run.
func TestSingleflightCoalesces(t *testing.T) {
	r := tiny()
	wl := r.Workloads()[0]
	const callers = 16
	results := make([]uint64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.ResultErr(wl, "HYBRID2", 1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = uint64(res.Cycles)
		}(i)
	}
	wg.Wait()
	if n := r.MemoStats().Entries; n != 1 {
		t.Fatalf("%d cache entries after %d concurrent calls for one key", n, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, results[i], results[0])
		}
	}
}

// TestParallelSweepSpeedup measures the wall-clock benefit of the worker
// pool on a Fig. 2-style multi-design sweep: with >= 4 workers on >= 4
// CPUs the parallel sweep must finish at least twice as fast as the
// serial one. Skipped on smaller machines, where there is no hardware
// parallelism to harvest (the determinism tests above still cover
// correctness there); BenchmarkSweepSerial/BenchmarkSweepParallel give
// the full comparison on any machine.
func TestParallelSweepSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup test, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	mkRunner := func(parallelism int) *Runner {
		r := NewRunner()
		r.InstrPerCore = 120_000
		all := workload.Specs()
		for i := 0; i < len(all); i += 3 {
			r.Subset = append(r.Subset, all[i])
		}
		r.Parallelism = parallelism
		return r
	}
	designs := withBaseline(Fig2Designs())

	serial := mkRunner(1)
	start := time.Now()
	if err := serial.Sweep(designs, []int{1}); err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(start)

	par := mkRunner(0) // all CPUs, >= 4 here
	start = time.Now()
	if err := par.Sweep(designs, []int{1}); err != nil {
		t.Fatal(err)
	}
	parTime := time.Since(start)

	speedup := float64(serialTime) / float64(parTime)
	t.Logf("serial %v, parallel %v, speedup %.2fx on %d CPUs", serialTime, parTime, speedup, runtime.NumCPU())
	if speedup < 2 {
		t.Errorf("parallel sweep speedup %.2fx, want >= 2x on %d CPUs", speedup, runtime.NumCPU())
	}
}
