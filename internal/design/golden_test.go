package design_test

// The golden refactor test: every design name the engine accepted before
// the registry existed must still resolve, build and simulate to
// byte-identical results. legacyBuild below is a verbatim copy of the
// pre-refactor exp.Runner.build switch (PR 1); if the registry wiring of
// any organization drifts from it, the rendered result tables differ and
// this test pinpoints the design.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hybridmem/internal/baselines/banshee"
	"hybridmem/internal/baselines/cameo"
	"hybridmem/internal/baselines/chameleon"
	"hybridmem/internal/baselines/dramcache"
	"hybridmem/internal/baselines/flat"
	"hybridmem/internal/baselines/footprint"
	"hybridmem/internal/baselines/lgm"
	"hybridmem/internal/baselines/mempod"
	"hybridmem/internal/baselines/silcfm"
	"hybridmem/internal/config"
	"hybridmem/internal/core"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
	"hybridmem/internal/workload"
)

// preRefactorNames is every design-name shape the old build switch
// recognized: main, extra, ablation, DSE and parameterized forms.
var preRefactorNames = []string{
	"Baseline",
	"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2",
	"CAMEO", "POM", "SILC-FM", "ALLOY", "FOOTPRINT", "BANSHEE",
	"DFC-512", "DFC-2048",
	"IDEAL-64", "IDEAL-1024",
	"H2-CacheOnly", "H2-MigrAll", "H2-MigrNone", "H2-NoRemap",
	"H2ABL-ctr-3", "H2ABL-reset-25000", "H2ABL-stack-64",
	"H2ABL-assoc-4", "H2ABL-free-250",
	"H2DSE-64-2-256", "H2DSE-128-4-64",
}

// TestGoldenRegistryMatchesLegacyBuild renders one result table per
// construction path — the legacy switch and the registry — and requires
// the tables to be byte-identical.
func TestGoldenRegistryMatchesLegacyBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every design twice")
	}
	var wls []workload.Spec
	for _, n := range []string{"mcf", "xz"} {
		wl, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("no workload %s", n)
		}
		wls = append(wls, wl)
	}
	sys := config.Scaled(16, 1)
	sys.InstrPerCore = 30_000

	render := func(build func(name string) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error)) string {
		var b strings.Builder
		for _, name := range preRefactorNames {
			for _, wl := range wls {
				ms, nm, fm, err := build(name)
				if err != nil {
					t.Fatalf("build %s: %v", name, err)
				}
				res := sim.Run(wl, ms, nm, fm, sys)
				fmt.Fprintf(&b, "%s|%s|%#v\n", name, wl.Name, res)
			}
		}
		return b.String()
	}

	legacy := render(func(name string) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error) {
		return legacyBuild(name, sys)
	})
	registry := render(func(name string) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error) {
		return design.Build(name, sys)
	})
	if legacy != registry {
		ll, rl := strings.Split(legacy, "\n"), strings.Split(registry, "\n")
		for i := range ll {
			if i >= len(rl) || ll[i] != rl[i] {
				t.Fatalf("tables diverge at line %d:\nlegacy:   %s\nregistry: %s", i+1, ll[i], rl[i])
			}
		}
		t.Fatal("tables differ in length")
	}
}

// legacyBuild is the pre-refactor exp.Runner.build, copied verbatim
// (receiver knobs inlined: the golden system carries seed and scale).
func legacyBuild(name string, sys config.System) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error) {
	fm := memsys.New(memsys.DDR4Config())
	if name == "Baseline" {
		return flat.NewFMOnly(fm), nil, fm, nil
	}
	nm := memsys.New(memsys.HBM2Config())
	remapEntries := int(sys.Hybrid2CacheBytes() / config.SectorBytes)

	switch {
	case name == "MPOD":
		cfg := mempod.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		cfg.MaxMigrations = 16
		cfg.MinCount = 3
		return mempod.New(cfg, nm, fm), nm, fm, nil
	case name == "CHA":
		return chameleon.New(chameleon.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "LGM":
		cfg := lgm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed)
		cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
		cfg.Watermark = 32
		return lgm.New(cfg, nm, fm), nm, fm, nil
	case name == "CAMEO":
		return cameo.New(cameo.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "POM":
		return chameleon.New(chameleon.PoM(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "SILC-FM":
		return silcfm.New(silcfm.Default(sys.NMBytes, sys.FMBytes, remapEntries, sys.Seed), nm, fm), nm, fm, nil
	case name == "BANSHEE":
		return banshee.New(banshee.Default(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "TAGLESS":
		return dramcache.New(dramcache.Tagless(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "ALLOY":
		return dramcache.New(dramcache.Alloy(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "FOOTPRINT":
		return footprint.New(footprint.Default(sys.NMBytes), nm, fm), nm, fm, nil
	case name == "DFC":
		return dramcache.New(dramcache.DFC(sys.NMBytes, 1024), nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "DFC-"):
		line, err := strconv.Atoi(name[len("DFC-"):])
		if err != nil {
			return nil, nil, nil, err
		}
		return dramcache.New(dramcache.DFC(sys.NMBytes, line), nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "IDEAL-"):
		line, err := strconv.Atoi(name[len("IDEAL-"):])
		if err != nil {
			return nil, nil, nil, err
		}
		return dramcache.New(dramcache.Ideal(sys.NMBytes, line), nm, fm), nm, fm, nil
	case name == "HYBRID2":
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2-"):
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch name[len("H2-"):] {
		case "CacheOnly":
			cfg.Mode = core.CacheOnly
		case "MigrAll":
			cfg.Mode = core.MigrateAll
		case "MigrNone":
			cfg.Mode = core.MigrateNone
		case "NoRemap":
			cfg.Mode = core.NoRemapOverhead
		default:
			return nil, nil, nil, errors.New("unknown Hybrid2 mode " + name)
		}
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2ABL-"):
		parts := strings.SplitN(name[len("H2ABL-"):], "-", 2)
		if len(parts) != 2 {
			return nil, nil, nil, errors.New("bad ablation design " + name)
		}
		knob := parts[0]
		val, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, nil, nil, err
		}
		cfg := core.Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		switch knob {
		case "ctr":
			cfg.CounterBits = val
		case "reset":
			cfg.FMBudgetReset = memtypes.Tick(val / sys.Scale)
		case "stack":
			cfg.FreeStackOnChip = val
		case "assoc":
			cfg.Assoc = val
		case "free":
			cfg.FreeSpaceAware = true
			h := core.New(cfg, nm, fm)
			total := uint64(h.Sectors()) * uint64(cfg.SectorBytes)
			freeBytes := total * uint64(val) / 1000
			h.MarkFree(memtypes.Addr(total-freeBytes), freeBytes)
			return h, nm, fm, nil
		default:
			return nil, nil, nil, errors.New("unknown ablation knob " + knob)
		}
		return core.New(cfg, nm, fm), nm, fm, nil
	case strings.HasPrefix(name, "H2DSE-"):
		parts := strings.Split(name[len("H2DSE-"):], "-")
		if len(parts) != 3 {
			return nil, nil, nil, errors.New("bad DSE design " + name)
		}
		cacheMB, err1 := strconv.Atoi(parts[0])
		sectorKB, err2 := strconv.Atoi(parts[1])
		line, err3 := strconv.Atoi(parts[2])
		if err := errors.Join(err1, err2, err3); err != nil {
			return nil, nil, nil, err
		}
		cfg := core.Default(sys.NMBytes, sys.FMBytes, uint64(cacheMB)<<20/uint64(sys.Scale), sys.Seed)
		cfg.FMBudgetReset = memtypes.Tick(sys.FMBudgetResetCycles())
		cfg.SectorBytes = sectorKB << 10
		cfg.LineBytes = line
		return core.New(cfg, nm, fm), nm, fm, nil
	}
	return nil, nil, nil, errors.New("unknown design " + name)
}
