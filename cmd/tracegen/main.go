// Command tracegen exports one of the built-in synthetic workloads as a
// memory trace (see internal/trace for the text and binary formats), so
// users can inspect what the generator produces, post-process it with
// traceconv, or use it as a template for feeding captured traces back
// via `hybrid2sim -trace`.
//
// Records are streamed as they are generated — interleaved across cores
// by cumulative instruction position, the capture-like global order —
// so arbitrarily long traces are emitted in constant memory.
//
// Usage:
//
//	tracegen -workload mcf -instr 100000 > mcf.trace
//	tracegen -workload mcf -instr 100000 -format binary -gz -o mcf.htb.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridmem/internal/config"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	wl := flag.String("workload", "mcf", "workload to export")
	instr := flag.Uint64("instr", 100_000, "instructions per core")
	scale := flag.Int("scale", 16, "capacity scale divisor")
	seed := flag.Uint64("seed", 1, "generator seed")
	format := flag.String("format", "text", "trace encoding: text or binary")
	gz := flag.Bool("gz", false, "gzip-compress the output")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	spec, ok := workload.ByName(*wl)
	if !ok {
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", *scale)
	}
	f, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	var file *os.File
	if *out != "" {
		file, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}

	srcs := make([]trace.Source, config.Cores)
	for core := range srcs {
		srcs[core] = workload.NewStream(spec, core, *scale, *instr, *seed)
	}
	sw := trace.NewStreamWriter(w, f, *gz)
	sw.Comment(fmt.Sprintf("workload %s, %d instr/core, scale 1/%d, seed %d", *wl, *instr, *scale, *seed))
	it := trace.NewInterleaver(srcs)
	for {
		core, rec, ok := it.Next()
		if !ok {
			break
		}
		if err := sw.Append(core, rec); err != nil {
			return err
		}
	}
	if err := sw.Close(); err != nil {
		return err
	}
	if file != nil {
		return file.Close()
	}
	return nil
}
