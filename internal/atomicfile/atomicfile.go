// Package atomicfile writes files atomically and durably: a temp file
// in the destination directory, fsync'd, then renamed over the target.
// An interrupt or power loss mid-write never leaves a truncated file
// where a recovery path would read it — shared by the DSE checkpoint
// writer and the serve layer's job/result persistence.
package atomicfile

import (
	"os"
	"path/filepath"
)

// Write atomically replaces path with data.
func Write(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".atomic-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
