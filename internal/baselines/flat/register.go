package flat

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name: "Baseline",
		Doc:  "far memory only (the paper's normalization point)",
		Kind: design.KindBaseline,
		Build: func(_ design.Spec, _ config.System, _, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return NewFMOnly(fm), nil
		},
	})
}
