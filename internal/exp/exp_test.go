package exp

import (
	"strings"
	"testing"

	"hybridmem/internal/workload"
)

// tiny returns a minimal-cost runner for harness-logic tests.
func tiny() *Runner {
	r := NewRunner()
	r.InstrPerCore = 60_000
	specs := workload.Specs()
	// One workload per class keeps class aggregation meaningful.
	r.Subset = []workload.Spec{specs[4], specs[15], specs[29]} // lbm, xz, namd
	return r
}

func TestRunnerMemoizes(t *testing.T) {
	r := tiny()
	wl := r.Workloads()[0]
	a := r.Result(wl, "HYBRID2", 1)
	b := r.Result(wl, "HYBRID2", 1)
	if a != b {
		t.Fatal("memoized result differs")
	}
	if r.MemoStats().Entries == 0 {
		t.Fatal("no results cached")
	}
}

func TestBaselineSharedAcrossRatios(t *testing.T) {
	r := tiny()
	wl := r.Workloads()[0]
	r.Result(wl, "Baseline", 1)
	before := r.MemoStats().Entries
	r.Result(wl, "Baseline", 4) // must not add a second entry
	if r.MemoStats().Entries != before {
		t.Fatal("baseline re-run for a different NM ratio")
	}
}

func TestAllDesignNamesBuild(t *testing.T) {
	r := tiny()
	wl := r.Workloads()[1]
	names := append([]string{"Baseline"}, MainDesigns...)
	names = append(names, "IDEAL-128", "DFC-2048", "H2-CacheOnly", "H2-MigrAll",
		"H2-MigrNone", "H2-NoRemap", "H2DSE-64-2-64")
	for _, d := range names {
		res := r.Result(wl, d, 1)
		if res.Cycles == 0 {
			t.Fatalf("design %s produced no cycles", d)
		}
	}
}

func TestUnknownDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown design did not panic")
		}
	}()
	r := tiny()
	r.Result(r.Workloads()[0], "BOGUS", 1)
}

func TestFig11PointsWithinBudget(t *testing.T) {
	pts := Fig11Points()
	if len(pts) == 0 {
		t.Fatal("no DSE points")
	}
	for _, p := range pts {
		if p.xtaBytes() > 512<<10 {
			t.Fatalf("point %s exceeds the 512 KB XTA budget", p)
		}
	}
	// The paper's best configuration must be in the sweep.
	found := false
	for _, p := range pts {
		if p.CacheMB == 64 && p.SectorKB == 2 && p.Line == 256 {
			found = true
		}
	}
	if !found {
		t.Fatal("64MB-2KB-256B missing from the design space")
	}
}

func TestFig1MonotoneWaste(t *testing.T) {
	r := tiny()
	_, waste := Fig1(r)
	if waste[64] != 0 {
		t.Fatalf("64 B lines waste %f, want 0", waste[64])
	}
	prev := -1.0
	for _, line := range Fig1Lines {
		if waste[line] < prev-0.02 {
			t.Fatalf("waste not (near) monotone at %d: %f < %f", line, waste[line], prev)
		}
		prev = waste[line]
	}
}

func TestFig12TableShape(t *testing.T) {
	r := tiny()
	tab, vals := Fig12(r, 1)
	if len(tab.Rows) != len(MainDesigns) {
		t.Fatalf("rows %d, want %d", len(tab.Rows), len(MainDesigns))
	}
	for d, v := range vals {
		if len(v) != 4 {
			t.Fatalf("%s has %d aggregates, want 4", d, len(v))
		}
		for _, x := range v {
			if x <= 0 {
				t.Fatalf("%s has non-positive aggregate %v", d, v)
			}
		}
	}
}

func TestFig14VariantsCovered(t *testing.T) {
	r := tiny()
	_, vals := Fig14(r)
	for _, v := range Fig14Variants {
		if vals[v] <= 0 {
			t.Fatalf("variant %s missing", v)
		}
	}
}

func TestFig15FractionsInRange(t *testing.T) {
	r := tiny()
	_, vals := Fig15(r)
	for d, v := range vals {
		for _, frac := range v {
			if frac < 0 || frac > 1 {
				t.Fatalf("%s served fraction %f out of range", d, frac)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	r := tiny()
	tabs := []Table{Tab1(16), Tab2(r)}
	for _, tab := range tabs {
		out := tab.String()
		if !strings.Contains(out, "==") || len(out) < 40 {
			t.Fatalf("table rendered poorly:\n%s", out)
		}
	}
}

func TestQuickRunnerSubset(t *testing.T) {
	r := NewQuickRunner()
	if len(r.Workloads()) == 0 || len(r.Workloads()) >= 30 {
		t.Fatalf("quick runner sweeps %d workloads", len(r.Workloads()))
	}
}

func TestAblationsCoverAllVariants(t *testing.T) {
	r := tiny()
	_, vals := Ablations(r)
	if len(vals) != len(AblationVariants) {
		t.Fatalf("got %d variants, want %d", len(vals), len(AblationVariants))
	}
	for d, g := range vals {
		if g <= 0 {
			t.Fatalf("variant %s has non-positive speedup", d)
		}
	}
}

func TestSeedSensitivityOrdering(t *testing.T) {
	r := tiny()
	_, vals := SeedSensitivity(r, []uint64{1, 2})
	for d, v := range vals {
		if !(v[0] <= v[1] && v[1] <= v[2]) {
			t.Fatalf("%s: min/mean/max out of order: %v", d, v)
		}
	}
}

func TestExtrasTableCoversExtraDesigns(t *testing.T) {
	r := tiny()
	_, vals := ExtrasTable(r)
	for _, d := range ExtraDesigns {
		if _, ok := vals[d]; !ok {
			t.Fatalf("extra design %s missing", d)
		}
	}
}

func TestRunTraceReplaysRecords(t *testing.T) {
	r := tiny()
	const traceText = "0 10 1000 R\n0 5 1040 W\n1 3 2000 R\n"
	res, err := r.RunTrace("t", strings.NewReader(traceText), "Baseline", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCAccesses != 3 {
		t.Fatalf("LLC accesses %d, want 3", res.LLCAccesses)
	}
	if res.Instructions != 10+5+3+3 {
		t.Fatalf("instructions %d, want 21", res.Instructions)
	}
}

func TestRunTraceBadInput(t *testing.T) {
	r := tiny()
	if _, err := r.RunTrace("t", strings.NewReader("garbage"), "Baseline", 1, 2); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "Figure 9: things, stuff", Header: []string{"a", "b"}}
	tab.AddRow("x,y", `q"r`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"q\"\"r\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	if slug := tab.Slug(); slug != "figure_9" {
		t.Fatalf("slug = %q", slug)
	}
}

func TestPathBreakdownFractions(t *testing.T) {
	r := tiny()
	_, fracs := PathBreakdown(r)
	if len(fracs) != len(r.Workloads()) {
		t.Fatalf("got %d workloads, want %d", len(fracs), len(r.Workloads()))
	}
	for wl, f := range fracs {
		if f < 0 || f > 1 {
			t.Fatalf("%s: 2b fraction %f out of range", wl, f)
		}
	}
}

func TestPrefetchStudyBothColumns(t *testing.T) {
	r := tiny()
	_, vals := PrefetchStudy(r)
	for d, v := range vals {
		if v[0] <= 0 || v[1] <= 0 {
			t.Fatalf("%s has non-positive entries %v", d, v)
		}
	}
}

func TestDetailTables(t *testing.T) {
	r := tiny()
	tabs := Detail(r)
	if len(tabs) != 4 {
		t.Fatalf("got %d detail tables, want 4", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != len(r.Workloads()) {
			t.Fatalf("%s: %d rows, want %d", tab.Title, len(tab.Rows), len(r.Workloads()))
		}
	}
}
