// Command hybrid2sim runs one workload on one memory-system design and
// prints the measurements: the single-run entry point to the simulator.
//
// Usage:
//
//	hybrid2sim -design HYBRID2 -workload lbm
//	hybrid2sim -design TAGLESS -workload omnetpp -ratio 4 -instr 2000000
//	hybrid2sim -design HYBRID2 -trace mcf.trace -mlp 2
//	hybrid2sim -design HYBRID2 -trace mcf.htb.gz    # binary/gzip auto-detected
//	hybrid2sim -design HYBRID2 -workload lbm -series-json lbm.json -series-csv lbm.csv
//	                                                # epoch telemetry exports
//	hybrid2sim -list
//	hybrid2sim -designs     # full design grammar with parameter ranges
//
// -series-json and -series-csv sample the run into instruction-windowed
// epochs (IPC, MPKI, traffic, migration and latency deltas, plus a
// phase segmentation) and export the series — JSON in the shared wire
// schema of internal/api, CSV with one epoch per row. "-" writes to
// stdout. Telemetry is passive: the printed measurements are identical
// with and without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridmem"
	"hybridmem/internal/api"
	"hybridmem/internal/exp"
	"hybridmem/internal/sim"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

// main delegates to run so error paths return through the defers (an
// os.Exit in the middle of main would skip them, leaking the trace file
// descriptor and whatever else is pending).
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hybrid2sim:", err)
		os.Exit(1)
	}
}

func run() error {
	design := flag.String("design", "HYBRID2", "memory-system design (see -list)")
	wl := flag.String("workload", "lbm", "workload name from Table 2 (see -list)")
	ratio := flag.Int("ratio", 1, "NM size in sixteenths of FM (1, 2 or 4 in the paper)")
	scale := flag.Int("scale", 16, "capacity scale divisor (1 = paper-size system)")
	instr := flag.Uint64("instr", 1_000_000, "instructions per core")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceFile := flag.String("trace", "", "replay a captured trace file instead of a synthetic workload")
	mlp := flag.Int("mlp", 4, "per-core memory-level parallelism for trace replay (>= 1)")
	window := flag.Int("window", 0, "per-core lookahead window for streaming trace replay, in records (0 = default)")
	list := flag.Bool("list", false, "list designs and workloads, then exit")
	designs := flag.Bool("designs", false, "list every registered design with its grammar and parameter ranges, then exit")
	seriesJSON := flag.String("series-json", "", "sample epoch telemetry and write the run-series JSON document to this file (\"-\" = stdout)")
	seriesCSV := flag.String("series-csv", "", "sample epoch telemetry and write the epoch series as CSV to this file (\"-\" = stdout)")
	seriesWindow := flag.Uint64("series-window", 0, "epoch window for the series exports in retired instructions (0 = default)")
	flag.Parse()

	if *designs {
		printDesigns()
		return nil
	}
	if *list {
		var grammars []string
		for _, d := range hybridmem.AllDesigns() {
			grammars = append(grammars, d.Grammar)
		}
		fmt.Println("Designs:", strings.Join(grammars, " "))
		fmt.Println("  (-designs explains every parameter and its range)")
		fmt.Println("Workloads:", hybridmem.Workloads())
		return nil
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", *scale)
	}
	if *ratio != 1 && *ratio != 2 && *ratio != 4 {
		return fmt.Errorf("-ratio must be 1, 2 or 4, got %d", *ratio)
	}

	sampled := *seriesJSON != "" || *seriesCSV != ""

	if *traceFile != "" {
		if *mlp < 1 {
			return fmt.Errorf("-mlp must be >= 1, got %d", *mlp)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r := &exp.Runner{Scale: *scale, InstrPerCore: *instr, Seed: *seed, TraceWindow: *window}
		var res sim.Result
		if sampled {
			r.Telemetry = &exp.TelemetryOptions{WindowInstr: *seriesWindow}
			var ser *telemetry.Series
			res, ser, err = r.RunTraceSeries(*traceFile, f, *design, *ratio, *mlp)
			if err == nil {
				err = writeSeries(*seriesJSON, *seriesCSV, res, ser)
			}
		} else {
			res, err = r.RunTrace(*traceFile, f, *design, *ratio, *mlp)
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace           %s\n", res.Workload)
		fmt.Printf("design          %s\n", res.Design)
		fmt.Printf("cycles          %d\n", res.Cycles)
		fmt.Printf("IPC             %.3f\n", res.IPC)
		fmt.Printf("LLC MPKI        %.2f\n", res.MPKI)
		fmt.Printf("served from NM  %.1f%%\n", res.ServedNMFrac()*100)
		fmt.Printf("NM traffic      %.1f MB\n", float64(res.Mem.NMTraffic())/(1<<20))
		fmt.Printf("FM traffic      %.1f MB\n", float64(res.Mem.FMTraffic())/(1<<20))
		return nil
	}

	cfg := hybridmem.Config{Scale: *scale, NMRatio16: *ratio, InstrPerCore: *instr, Seed: *seed}
	var res hybridmem.Result
	if sampled {
		if err := cfg.Validate(); err != nil {
			return err
		}
		spec, ok := workload.ByName(*wl)
		if !ok {
			return fmt.Errorf("unknown workload %q", *wl)
		}
		r := &exp.Runner{Scale: *scale, InstrPerCore: *instr, Seed: *seed,
			Telemetry: &exp.TelemetryOptions{WindowInstr: *seriesWindow}}
		sr, ser, err := r.ResultSeriesErr(spec, *design, *ratio)
		if err != nil {
			return err
		}
		if err := writeSeries(*seriesJSON, *seriesCSV, sr, ser); err != nil {
			return err
		}
		// The sampled run's measurements are what hybridmem.Run would
		// report — telemetry is passive — so the printout below is
		// identical with or without the exports.
		a := api.FromSim(sr)
		res = hybridmem.Result{
			Workload: a.Workload, Design: a.Design,
			Cycles: a.Cycles, Instructions: a.Instructions, IPC: a.IPC, MPKI: a.MPKI,
			Requests: a.Requests, ServedNMFrac: a.ServedNMFrac,
			NMTrafficBytes: a.NMTrafficBytes, FMTrafficBytes: a.FMTrafficBytes,
			MetaNMBytes: a.MetaNMBytes, Migrations: a.Migrations, EnergyNanoJ: a.EnergyNanoJ,
		}
	} else {
		var err error
		res, err = hybridmem.Run(*design, *wl, cfg)
		if err != nil {
			return err
		}
	}
	speedup, err := hybridmem.Speedup(*design, *wl, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("design          %s\n", res.Design)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("instructions    %d\n", res.Instructions)
	fmt.Printf("IPC             %.3f\n", res.IPC)
	fmt.Printf("LLC MPKI        %.2f\n", res.MPKI)
	fmt.Printf("speedup         %.3f (vs no-NM baseline)\n", speedup)
	fmt.Printf("served from NM  %.1f%%\n", res.ServedNMFrac*100)
	fmt.Printf("NM traffic      %.1f MB (%.1f MB metadata)\n",
		float64(res.NMTrafficBytes)/(1<<20), float64(res.MetaNMBytes)/(1<<20))
	fmt.Printf("FM traffic      %.1f MB\n", float64(res.FMTrafficBytes)/(1<<20))
	fmt.Printf("migrations      %d\n", res.Migrations)
	fmt.Printf("dynamic energy  %.2f mJ\n", res.EnergyNanoJ/1e6)
	return nil
}

// writeSeries renders the sampled run's telemetry exports: the wire-schema
// JSON document to jsonPath and the epoch CSV to csvPath, skipping either
// when its path is empty and writing to stdout when it is "-".
func writeSeries(jsonPath, csvPath string, sr sim.Result, ser *telemetry.Series) error {
	if jsonPath != "" {
		data, err := api.Encode(api.NewRunSeries(sr, ser))
		if err != nil {
			return err
		}
		if err := writeOut(jsonPath, data); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if err := writeOut(csvPath, api.SeriesCSV(api.FromSeries(ser))); err != nil {
			return err
		}
	}
	return nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printDesigns renders the registry listing: one block per design family
// with its grammar, kind, doc and per-parameter ranges.
func printDesigns() {
	for _, d := range hybridmem.AllDesigns() {
		fmt.Printf("%-44s %s (%s)\n", d.Grammar, d.Doc, d.Kind)
		for _, p := range d.Params {
			constraint := ""
			switch {
			case p.Enum != nil:
				constraint = strings.Join(p.Enum, "|")
			case p.Max > 0:
				constraint = fmt.Sprintf("%d..%d", p.Min, p.Max)
			default:
				constraint = fmt.Sprintf(">= %d", p.Min)
			}
			if p.Pow2 {
				constraint += ", power of two"
			}
			if p.Optional {
				constraint += fmt.Sprintf(", default %d", p.Default)
			}
			fmt.Printf("    <%s>  %s (%s)\n", p.Name, p.Doc, constraint)
		}
		if len(d.Params) > 0 {
			fmt.Printf("    e.g. %s\n", d.Example)
		}
	}
}
