package dse

import (
	"encoding/json"
	"fmt"
	"os"

	"hybridmem/internal/atomicfile"
)

// checkpointVersion guards the schema below; a mismatch refuses resume
// rather than silently misreading an older file.
const checkpointVersion = 1

// checkpoint is the on-disk search state, written atomically after every
// completed batch. It holds exactly what the next round's generation
// depends on — the evaluated points in order, the RNG state after the
// last batch was drawn, and the cached baseline cycles — so a resumed
// search replays the identical round sequence an uninterrupted run would
// have produced. The frontier is not stored: it is a pure fold over
// Evaluated and is rebuilt on load.
type checkpoint struct {
	Version int `json:"version"`
	// Fingerprint encodes every option the round sequence depends on
	// (families, workloads, budget, seeds, scale, batch size,
	// enumeration caps). A mismatch refuses resume: continuing a search
	// under different options would silently break determinism.
	Fingerprint string `json:"fingerprint"`
	RNG         uint64 `json:"rng"`
	Rounds      int    `json:"rounds"`
	SpaceSize   int    `json:"space_size"`
	// BaselineCycles holds the no-NM baseline run of each workload, in
	// option order, so resume does not re-simulate the normalization
	// points.
	BaselineCycles []uint64 `json:"baseline_cycles"`
	Evaluated      []Point  `json:"evaluated"`
	// Multi-fidelity state, present only when screening is enabled (the
	// fingerprint then carries the screening fidelity too): the
	// screening-fidelity baseline and the screened points in evaluation
	// order. The promotion list is a pure function of Screened and is
	// recomputed on load.
	ScreenBaselineCycles []uint64 `json:"screen_baseline_cycles,omitempty"`
	Screened             []Point  `json:"screened,omitempty"`
}

// saveCheckpoint writes the state atomically and durably (temp file,
// fsync, rename — internal/atomicfile), so an interrupt mid-write never
// corrupts the previous checkpoint.
func saveCheckpoint(path string, ck *checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("dse: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	if err := atomicfile.Write(path, data); err != nil {
		return fmt.Errorf("dse: checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and version-checks a checkpoint file.
func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dse: resume: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("dse: resume %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("dse: resume %s: checkpoint version %d, want %d", path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}
