package obs

import (
	"testing"
	"time"
)

// instrumented is the per-request observability work the serving layer
// does: a request counter, a latency observation, and a span with one
// phase event — measured with the plane enabled and disabled. The "off"
// case is the passivity bound: it must stay at zero allocations.
func instrumented(c *Counter, h *Histogram, sp *Span) {
	c.Inc()
	h.ObserveDuration(50 * time.Microsecond)
	child := sp.Child("phase")
	child.Event("lookup")
	child.End()
}

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		var c *Counter
		var h *Histogram
		var sp *Span
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			instrumented(c, h, sp)
		}
	})
	b.Run("on", func(b *testing.B) {
		o := New(Options{FlightEvents: 1024})
		reg := o.Registry()
		c := reg.Counter("bench_requests_total", "x.")
		h := reg.Histogram("bench_latency_us", "x.")
		root := o.Tracer().StartSpan("bench")
		defer root.End()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			instrumented(c, h, root)
		}
	})
}
