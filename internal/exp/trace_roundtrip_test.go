package exp

import (
	"bytes"
	"reflect"
	"testing"

	"hybridmem/internal/config"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// writeSyntheticTrace serializes a workload exactly as cmd/tracegen does:
// per-core workload streams, interleaved by cumulative instruction
// position, through a StreamWriter.
func writeSyntheticTrace(t *testing.T, wl workload.Spec, sys config.System, format trace.Format, compress bool) *bytes.Buffer {
	t.Helper()
	srcs := make([]trace.Source, config.Cores)
	for core := range srcs {
		srcs[core] = workload.NewStream(wl, core, sys.Scale, sys.InstrPerCore, sys.Seed)
	}
	var buf bytes.Buffer
	sw := trace.NewStreamWriter(&buf, format, compress)
	it := trace.NewInterleaver(srcs)
	for {
		core, rec, ok := it.Next()
		if !ok {
			break
		}
		if err := sw.Append(core, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestTraceRoundTripDeterminism is the satellite round-trip proof: a
// tracegen-style export of a synthetic workload, replayed through the
// streaming reader, reproduces the direct synthetic run's Cycles, IPC
// and MPKI — in both trace formats, which must also agree with each
// other byte-for-byte on the full Result (the acceptance criterion's
// text-vs-binary identity).
func TestTraceRoundTripDeterminism(t *testing.T) {
	// One streaming high-MLP workload, one pointer-heavy low-MLP one.
	for _, name := range []string{"lbm", "omnetpp"} {
		wl, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		r := NewRunner()
		r.InstrPerCore = 40_000
		direct := r.Result(wl, "HYBRID2", 1)
		sys := r.system(1)

		var results []sim.Result
		for _, tc := range []struct {
			format   trace.Format
			compress bool
		}{
			{trace.FormatText, false},
			{trace.FormatBinary, false},
			{trace.FormatBinary, true},
		} {
			buf := writeSyntheticTrace(t, wl, sys, tc.format, tc.compress)
			rr := &Runner{Scale: r.Scale, InstrPerCore: r.InstrPerCore, Seed: r.Seed}
			res, err := rr.RunTrace(wl.Name, buf, "HYBRID2", 1, sim.MLPFor(wl))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, tc.format, err)
			}
			if res.Cycles != direct.Cycles || res.IPC != direct.IPC || res.MPKI != direct.MPKI {
				t.Fatalf("%s/%v/gz=%v: replay cycles=%d IPC=%v MPKI=%v, direct cycles=%d IPC=%v MPKI=%v",
					name, tc.format, tc.compress, res.Cycles, res.IPC, res.MPKI,
					direct.Cycles, direct.IPC, direct.MPKI)
			}
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Fatalf("%s: encoding %d produced a different Result:\n%+v\nvs\n%+v",
					name, i, results[0], results[i])
			}
		}
	}
}

// TestRunTraceRejectsBadMLP pins the flag-validation satellite at the
// engine level: trace replay refuses a non-positive MLP instead of
// silently clamping it.
func TestRunTraceRejectsBadMLP(t *testing.T) {
	r := tiny()
	if _, err := r.RunTrace("t", bytes.NewReader([]byte("0 1 40 R\n")), "Baseline", 1, 0); err == nil {
		t.Fatal("mlp 0 accepted")
	}
}

// TestRunTraceWindowSkew pins that a trace more skewed than the lookahead
// window fails with a diagnostic instead of buffering unboundedly.
func TestRunTraceWindowSkew(t *testing.T) {
	var buf bytes.Buffer
	sw := trace.NewStreamWriter(&buf, trace.FormatText, false)
	for i := 0; i < 64; i++ {
		sw.Append(7, trace.Record{Gap: 1, Addr: memtypes.Addr(64 * i)})
	}
	sw.Close()
	r := tiny()
	r.TraceWindow = 8
	if _, err := r.RunTrace("skewed", &buf, "Baseline", 1, 2); err == nil {
		t.Fatal("skewed trace accepted with an 8-record window")
	}
}
