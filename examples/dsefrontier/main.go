// DSE frontier: the paper's H2DSE exploration (Fig. 11) as an automated
// search instead of a hand-picked sweep. hybridmem.Explore enumerates
// candidate organizations from every registered design family's
// parameter grammar, spends a fixed evaluation budget on seeded random
// sampling plus hill-climbing, and reports the Pareto frontier over
// speedup, DRAM capacity and memory write traffic — the capacity
// -for-performance trade-off the paper's chosen 64 MB / 2 KB / 256 B
// point sits on.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hybridmem"
)

func main() {
	opts := hybridmem.ExploreOptions{
		// nil Families searches every registered family; restricting to
		// the Hybrid2 design-space points plus two fixed contenders
		// keeps this example's runtime modest while still producing a
		// cross-family frontier.
		Families:  []string{"H2DSE", "HYBRID2", "MPOD", "TAGLESS"},
		Workloads: []string{"lbm", "omnetpp", "mcf"}, // streaming, pointer-chasing, high-MPKI
		Budget:    24,
		BatchSize: 8,
		Seed:      1,
		Config: hybridmem.Config{
			Scale: 16, NMRatio16: 1, InstrPerCore: 150_000, Seed: 1,
		},
		Progress: func(p hybridmem.ExploreProgress) {
			if !p.Done {
				fmt.Fprintf(os.Stderr, "batch %d: %d evaluated, frontier %d\n",
					p.Batch, p.Evaluated, p.FrontierSize)
			}
		},
	}
	res, err := hybridmem.Explore(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("searched %d of %d candidate organizations in %d batches\n\n",
		len(res.Evaluated), res.SpaceSize, res.Batches)
	fmt.Println("Pareto frontier (speedup vs DRAM capacity vs write traffic):")
	fmt.Println("| Design | Speedup | Capacity (MB) | Write traffic (GB) |")
	fmt.Println("| --- | --- | --- | --- |")
	for _, p := range res.Frontier {
		fmt.Printf("| `%s` | %.3f | %.0f | %.3f |\n", p.Design, p.Speedup, p.CapacityMB, p.TrafficGB)
	}
	fmt.Println("\nEach frontier member beats every other candidate on at least one")
	fmt.Println("objective; the paper's Fig. 11 picks its 64 MB / 2 KB sector /")
	fmt.Println("256 B line Hybrid2 point from exactly this trade-off curve.")
}
