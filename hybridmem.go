// Package hybridmem is a trace-driven simulator of hybrid DRAM memory
// systems, reproducing "Hybrid2: Combining Caching and Migration in Hybrid
// Memory Systems" (Vasilakis et al., HPCA 2020).
//
// The package simulates an 8-core processor with a shared LLC in front of
// a two-level memory: a high-bandwidth 3D-stacked near memory (HBM2) and
// a high-capacity far memory (DDR4). The memory organizations plugged
// under the LLC come from a self-registering design registry
// (internal/design): AllDesigns lists every registered family with its
// name grammar, typed parameters and ranges, and ValidateDesign resolves
// any design string without running a simulation. The built-in families:
//
//   - Baseline: far memory only (the paper's normalization point)
//   - MPOD, CHA, LGM: flat-address-space migration schemes
//     (MemPod, Chameleon, LLC-Guided Migration)
//   - TAGLESS, DFC[-<lineB>], IDEAL-<lineB>: DRAM caches
//   - CAMEO, POM, SILC-FM, ALLOY, FOOTPRINT, BANSHEE: §2 related work
//   - HYBRID2: the paper's contribution, plus its Fig. 14 ablations
//     (H2-CacheOnly, H2-MigrAll, H2-MigrNone, H2-NoRemap), Fig. 11
//     design points (H2DSE-<cacheMB>-<sectorKB>-<lineB>) and
//     sensitivity sweeps (H2ABL-<knob>-<val>)
//
// Design names parse before anything runs: malformed parameters (out of
// range, not a power of two, unknown knobs) are errors from Run, RunAll
// and ValidateDesign, never panics mid-simulation.
//
// Thirty synthetic workloads mirror the paper's Table 2 (21 SPEC2017 +
// 9 NAS benchmarks). All runs are deterministic for a given seed.
//
// Quickstart:
//
//	res, err := hybridmem.Run("HYBRID2", "lbm", hybridmem.DefaultConfig())
//	base, _ := hybridmem.Run("Baseline", "lbm", hybridmem.DefaultConfig())
//	fmt.Printf("speedup: %.2f\n", float64(base.Cycles)/float64(res.Cycles))
//
// RunAll sweeps many (design, workload) pairs across a worker pool; the
// results are deterministic and identical at any parallelism. Explore
// searches the registered design space for Pareto-optimal organizations
// (speedup vs DRAM capacity vs memory write traffic) under an
// evaluation budget, with per-batch checkpointing and deterministic
// resume — the paper's H2DSE exploration as an API. Serve exposes all
// of it as a long-lived HTTP service (cmd/hybridmemd) with a
// content-addressed result cache, singleflight deduplication, async
// jobs with streaming progress, and streaming trace upload.
package hybridmem

import (
	"fmt"
	"io"

	"hybridmem/internal/api"
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/exp"
	"hybridmem/internal/sim"
	"hybridmem/internal/workload"
)

// Config selects the simulated system size and run length.
type Config struct {
	// Scale divides the paper's capacities (LLC, NM, FM, DRAM cache,
	// workload footprints); granularities stay at paper values. 16 by
	// default (64 MB-scale NM against 1 GB-scale FM).
	Scale int
	// NMRatio16 sets near memory to NMRatio16/16 of far memory: 1, 2 or
	// 4 in the paper (1, 2 and 4 GB of NM against 16 GB of FM).
	NMRatio16 int
	// InstrPerCore is the per-core instruction budget.
	InstrPerCore uint64
	// Seed makes runs reproducible; same seed, same result.
	Seed uint64
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Scale:        config.DefaultScale,
		NMRatio16:    1,
		InstrPerCore: 1_000_000,
		Seed:         1,
	}
}

// Validate reports why a configuration is unusable, nil when every entry
// point (Run, RunAll, RunCustom, ReplayTrace, Explore) would accept it.
// It is cheap — no simulation state is built — so servers can reject bad
// requests up front.
func (c Config) Validate() error {
	if err := config.ValidateRun(c.Scale, c.NMRatio16, c.InstrPerCore); err != nil {
		return fmt.Errorf("hybridmem: invalid Config: %w", err)
	}
	return nil
}

// Result reports the measurements of one run.
type Result struct {
	Workload string
	Design   string

	Cycles       uint64
	Instructions uint64
	IPC          float64
	MPKI         float64 // LLC misses per kilo-instruction

	// Memory-system behaviour.
	Requests       uint64
	ServedNMFrac   float64 // fraction of requests served by near memory
	NMTrafficBytes uint64
	FMTrafficBytes uint64
	MetaNMBytes    uint64 // NM traffic due to remap/tag metadata
	Migrations     uint64
	EnergyNanoJ    float64 // dynamic memory energy
}

// Workloads returns the names of the 30 Table 2 workloads in paper order.
func Workloads() []string {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Designs returns the names of the six main designs of the evaluation
// plus the baseline. Additional parameterized names are accepted by Run;
// AllDesigns lists every registered family with its full grammar.
func Designs() []string {
	return append([]string{"Baseline"}, exp.MainDesigns...)
}

// DesignParam describes one typed parameter of a design-name grammar.
type DesignParam struct {
	Name string
	Doc  string
	// Min and Max bound integer values inclusively; Max <= 0 means
	// unbounded above. Ignored when Enum is set.
	Min, Max int
	// Pow2 additionally requires a positive power of two.
	Pow2 bool
	// Enum non-nil lists the admissible tokens of a textual parameter.
	Enum []string
	// Optional parameters may be omitted and then take Default.
	Optional bool
	Default  int
}

// DesignInfo describes one registered memory-organization family.
type DesignInfo struct {
	// Name is the base name ("DFC"); Grammar the full name syntax
	// ("DFC[-<lineB>]"); Example a runnable sample ("DFC-1024").
	Name    string
	Grammar string
	Example string
	Doc     string
	// Kind is "baseline", "main" (the paper's Figures 12-18), "extra"
	// (§2 related work) or "variant" (parameterized studies).
	Kind string
	// NeedsNM reports whether the design uses near memory; Config's
	// NMRatio16 is irrelevant when it is false.
	NeedsNM bool
	Params  []DesignParam
}

// AllDesigns lists every registered design family in the paper's order —
// the same source of truth the engine, cmd/experiments -designs and
// cmd/hybrid2sim -designs use.
func AllDesigns() []DesignInfo {
	infos := design.AllInfos()
	out := make([]DesignInfo, len(infos))
	for i, info := range infos {
		params := make([]DesignParam, len(info.Params))
		for j, p := range info.Params {
			params[j] = DesignParam{
				Name: p.Name, Doc: p.Doc,
				Min: p.Min, Max: p.Max, Pow2: p.Pow2,
				Enum:     append([]string(nil), p.Enum...),
				Optional: p.Optional, Default: p.Default,
			}
		}
		out[i] = DesignInfo{
			Name:    info.Name,
			Grammar: info.Grammar(),
			Example: info.SampleName(),
			Doc:     info.Doc,
			Kind:    info.Kind.String(),
			NeedsNM: info.NeedsNM,
			Params:  params,
		}
	}
	return out
}

// ValidateDesign resolves a design name against the registry without
// running anything: nil means Run would accept it, an error pinpoints
// the unknown name or the out-of-range parameter.
func ValidateDesign(name string) error {
	if _, err := design.Parse(name); err != nil {
		return fmt.Errorf("hybridmem: %w", err)
	}
	return nil
}

// Run simulates one workload on one memory-system design and returns its
// measurements. Design names are listed in the package documentation;
// workload names come from Workloads.
func Run(design, workloadName string, cfg Config) (Result, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return Result{}, fmt.Errorf("hybridmem: unknown workload %q", workloadName)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	r := &exp.Runner{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.Seed}
	sr, err := r.ResultErr(spec, design, cfg.NMRatio16)
	if err != nil {
		return Result{}, fmt.Errorf("hybridmem: %w", err)
	}
	return fromSim(sr), nil
}

// SweepOptions configures a RunAll sweep beyond the per-run Config.
type SweepOptions struct {
	// Parallelism bounds the simulations evaluated concurrently; <= 0
	// means GOMAXPROCS, 1 forces strictly serial execution. Results are
	// deterministic and identical at any setting.
	Parallelism int
	// Designs to sweep; nil means Designs() (baseline + the six main
	// designs of the evaluation).
	Designs []string
	// Workloads to sweep by name; nil means all 30 built-in benchmarks.
	Workloads []string
}

// RunAll evaluates every (design, workload) pair of a sweep across a
// worker pool and returns the results in design-major, workload-minor
// order — the paper's figure layout. A malformed design or workload name
// fails the whole sweep with an error identifying it.
func RunAll(cfg Config, opts SweepOptions) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	designs := opts.Designs
	if designs == nil {
		designs = Designs()
	}
	names := opts.Workloads
	if names == nil {
		names = Workloads()
	}
	for _, d := range designs {
		if err := ValidateDesign(d); err != nil {
			return nil, err
		}
	}
	specs := make([]exp.RunSpec, 0, len(designs)*len(names))
	for _, d := range designs {
		for _, n := range names {
			wl, ok := workload.ByName(n)
			if !ok {
				return nil, fmt.Errorf("hybridmem: unknown workload %q", n)
			}
			specs = append(specs, exp.RunSpec{Workload: wl, Design: d, Ratio16: cfg.NMRatio16})
		}
	}
	r := &exp.Runner{
		Scale:        cfg.Scale,
		InstrPerCore: cfg.InstrPerCore,
		Seed:         cfg.Seed,
		Parallelism:  opts.Parallelism,
	}
	srs, err := r.ResultsParallel(specs)
	if err != nil {
		return nil, fmt.Errorf("hybridmem: %w", err)
	}
	out := make([]Result, len(srs))
	for i, sr := range srs {
		out[i] = fromSim(sr)
	}
	return out, nil
}

// Speedup runs design and the baseline on one workload and returns the
// cycle ratio (the paper's headline metric).
func Speedup(design, workloadName string, cfg Config) (float64, error) {
	base, err := Run("Baseline", workloadName, cfg)
	if err != nil {
		return 0, err
	}
	res, err := Run(design, workloadName, cfg)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, fmt.Errorf("hybridmem: zero-cycle run")
	}
	return float64(base.Cycles) / float64(res.Cycles), nil
}

// Workload describes a custom synthetic workload for RunCustom, for
// scenarios beyond the 30 built-in Table 2 benchmarks.
type Workload struct {
	Name          string
	MultiThreaded bool    // 8 threads share one region (vs 8 rate copies)
	FootprintGB   float64 // total memory footprint at paper scale
	APKI          float64 // LLC accesses per kilo-instruction
	HotFrac       float64 // fraction of the footprint forming the hot set
	HotProb       float64 // probability an access run targets the hot set
	SeqRun        float64 // mean sequential run length in 64 B lines
	WriteFrac     float64 // store fraction
	Phases        int     // working-set phases over the run (1 = stable)
}

// RunCustom simulates a user-defined workload on one design.
func RunCustom(design string, w Workload, cfg Config) (Result, error) {
	if w.FootprintGB <= 0 || w.APKI <= 0 {
		return Result{}, fmt.Errorf("hybridmem: workload needs positive FootprintGB and APKI")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	kind := workload.MP
	if w.MultiThreaded {
		kind = workload.MT
	}
	spec := workload.Spec{
		Name:             w.Name,
		Kind:             kind,
		PaperFootprintGB: w.FootprintGB,
		APKI:             w.APKI,
		HotFrac:          w.HotFrac,
		HotProb:          w.HotProb,
		SeqRun:           w.SeqRun,
		WriteFrac:        w.WriteFrac,
		Phases:           w.Phases,
	}
	r := &exp.Runner{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.Seed}
	sr, err := r.ResultErr(spec, design, cfg.NMRatio16)
	if err != nil {
		return Result{}, fmt.Errorf("hybridmem: %w", err)
	}
	return fromSim(sr), nil
}

// RunTrace replays a captured memory trace on a design. Both trace
// formats (text and varint binary, plain or gzip-compressed) are
// documented in internal/trace and auto-detected; cmd/tracegen produces
// compatible files from the built-in workloads. mlp bounds each core's
// overlapped misses (traces carry no dependence information).
//
// RunTrace is ReplayTrace with default streaming options.
func RunTrace(design, name string, trace io.Reader, mlp int, cfg Config) (Result, error) {
	if mlp < 1 {
		mlp = 1
	}
	return ReplayTrace(design, name, trace, ReplayOptions{MLP: mlp}, cfg)
}

// ReplayOptions tunes streaming trace replay beyond the per-run Config.
// The zero value picks sensible defaults.
type ReplayOptions struct {
	// MLP bounds each core's overlapped misses — traces carry no
	// dependence information, so replay needs an explicit memory-level
	// parallelism. <= 0 means 4.
	MLP int
	// Window bounds the streaming reader's per-core lookahead in
	// records; <= 0 means the 65536-record default. Replay fails with an
	// error if the trace's core interleaving is more skewed than the
	// window (e.g. all of one core's records grouped before another's).
	Window int
}

// ReplayTrace replays a captured memory trace on a design, streaming the
// records: the trace is decoded on demand and never materialized, so
// multi-gigabyte captures replay in constant memory. The reader may
// yield either trace format, plain or gzip-compressed — the encoding is
// auto-detected (see internal/trace for the specs; cmd/tracegen emits
// traces, cmd/traceconv converts between encodings).
func ReplayTrace(design, name string, r io.Reader, opts ReplayOptions, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	mlp := opts.MLP
	if mlp < 1 {
		mlp = 4
	}
	runner := &exp.Runner{
		Scale:        cfg.Scale,
		InstrPerCore: cfg.InstrPerCore,
		Seed:         cfg.Seed,
		TraceWindow:  opts.Window,
	}
	sr, err := runner.RunTrace(name, r, design, cfg.NMRatio16, mlp)
	if err != nil {
		return Result{}, fmt.Errorf("hybridmem: %w", err)
	}
	return fromSim(sr), nil
}

// fromSim converts an internal simulation result to the public form,
// through the same field mapping the JSON wire encoding uses
// (internal/api), so API values and served documents cannot drift apart.
func fromSim(sr sim.Result) Result {
	a := api.FromSim(sr)
	return Result{
		Workload:       a.Workload,
		Design:         a.Design,
		Cycles:         a.Cycles,
		Instructions:   a.Instructions,
		IPC:            a.IPC,
		MPKI:           a.MPKI,
		Requests:       a.Requests,
		ServedNMFrac:   a.ServedNMFrac,
		NMTrafficBytes: a.NMTrafficBytes,
		FMTrafficBytes: a.FMTrafficBytes,
		MetaNMBytes:    a.MetaNMBytes,
		Migrations:     a.Migrations,
		EnergyNanoJ:    a.EnergyNanoJ,
	}
}
