package cachesim

import "hybridmem/internal/memtypes"

// Level pairs a cache with its access latency, for Hierarchy.
type Level struct {
	Cache   *Cache
	Latency memtypes.Tick
}

// Hierarchy composes private cache levels (e.g. the L1 and L2 of Table 1)
// in front of a shared LLC. Levels are non-inclusive, write-back,
// write-allocate: a miss at level i allocates the line at every probed
// level, and a dirty victim of level i is installed dirty into level i+1;
// dirty victims of the last level are returned so the caller can forward
// them to the next stage of the memory system.
type Hierarchy struct {
	levels []Level
}

// NewHierarchy builds a hierarchy; pass the innermost level (L1) first.
func NewHierarchy(levels ...Level) *Hierarchy {
	if len(levels) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	return &Hierarchy{levels: levels}
}

// Access looks addr up level by level. It returns the hit level (0 = L1;
// Levels() means a miss everywhere), the accumulated lookup latency, and
// the dirty lines evicted out of the last level.
func (h *Hierarchy) Access(addr memtypes.Addr, write bool) (hitLevel int, latency memtypes.Tick, writebacks []memtypes.Addr) {
	hitLevel = len(h.levels)
	for i, lv := range h.levels {
		latency += lv.Latency
		hit, victim, evicted := lv.Cache.Access(addr, write && i == 0)
		if evicted && victim.Dirty {
			if i+1 < len(h.levels) {
				// The victim moves down one level, still dirty. Its own
				// victim there is clean-dropped (non-inclusive model).
				_, v2, ev2 := h.levels[i+1].Cache.Access(victim.Addr, true)
				if ev2 && v2.Dirty && i+2 >= len(h.levels) {
					writebacks = append(writebacks, v2.Addr)
				}
			} else {
				writebacks = append(writebacks, victim.Addr)
			}
		}
		if hit {
			hitLevel = i
			break
		}
	}
	return hitLevel, latency, writebacks
}

// Levels returns the number of levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// MissedAll reports whether a hit level means the request goes to memory.
func (h *Hierarchy) MissedAll(hitLevel int) bool { return hitLevel >= len(h.levels) }
