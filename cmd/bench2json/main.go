// Command bench2json converts `go test -bench` text output into a JSON
// artifact for the CI performance trajectory. The input text is kept
// verbatim in the "raw" field — the exact benchstat input format — so
// downstream tooling can diff runs with benchstat while dashboards read
// the parsed metrics:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | tee bench.txt
//	bench2json < bench.txt > BENCH_results.json
//	jq -r .raw BENCH_results.json | benchstat -
//
// Each "Benchmark..." line parses into name, iteration count and a
// metric map (ns/op, MB/s and every custom b.ReportMetric unit).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line, attributed to the package whose
// "pkg:" header preceded it.
type Benchmark struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole artifact.
type Output struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Raw        string            `json:"raw"`
}

func main() {
	data, err := io.ReadAll(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	out := Output{Context: map[string]string{}, Benchmarks: []Benchmark{}, Raw: string(data)}

	pkg := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		// Context lines: "goos: linux", "pkg: hybridmem", "cpu: ...".
		// "pkg" repeats per package in a ./... run and tags the
		// benchmarks that follow it; the rest is global context.
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") && !strings.HasPrefix(k, "Benchmark") {
			if k == "pkg" {
				pkg = v
			} else {
				out.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue // not a "name iters (value unit)+" result line
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Package: pkg, Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[f[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
