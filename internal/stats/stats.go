// Package stats provides the aggregation helpers the paper's figures use:
// geometric means of per-workload speedups, min/max envelopes, and
// normalization against the no-NM baseline.
package stats

import "math"

// Geomean returns the geometric mean of xs, 0 for an empty slice.
// Non-positive entries are clamped to a tiny epsilon so a single
// degenerate run cannot zero the whole aggregate.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
