package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"hybridmem/internal/dse"
	"hybridmem/internal/obs"
)

// transport executes one shard RPC against a runner — HTTP for real
// nodes, a direct call for loopback runners and the local fallback.
type transport interface {
	runShard(ctx context.Context, req ShardRequest) (ShardResponse, error)
}

// runnerHandle is the coordinator's view of one registered runner.
type runnerHandle struct {
	id        string
	addr      string
	transport transport
	loopback  bool // exempt from heartbeat expiry
	local     bool // the coordinator's own fallback executor

	// Guarded by the coordinator's mu.
	lastBeat   time.Time
	dead       bool
	inFlight   int
	dispatched uint64
}

// Coordinator owns the runner pool and dispatches shard work across it.
// It is safe for concurrent use: runners join and leave while batches
// run, and multiple Run calls may be in flight at once (each batch has
// its own dispatcher; the pool and its worker accounting are shared).
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	runners map[string]*runnerHandle
	active  []*dispatcher // batches currently dispatching

	stats Stats
}

// Stats is a snapshot of the coordinator's dispatch counters, surfaced
// on /metrics.
type Stats struct {
	// RunnersLive counts currently registered, non-expired runners.
	RunnersLive int
	// RunnersJoined and RunnersDropped count registrations and
	// liveness/failure expulsions over the coordinator's lifetime.
	RunnersJoined  uint64
	RunnersDropped uint64
	// ShardsDispatched counts dispatch attempts started (steals and
	// retries included); ShardsCompleted counts shards whose first
	// response was accepted.
	ShardsDispatched uint64
	ShardsCompleted  uint64
	// ShardsStolen counts speculative re-executions of in-flight shards;
	// ShardsRetried counts requeues after a failed attempt;
	// DuplicatesDropped counts responses discarded because another
	// execution of the same shard already completed it.
	ShardsStolen      uint64
	ShardsRetried     uint64
	DuplicatesDropped uint64
	// LocalShards counts shards executed by the coordinator's local
	// fallback because no runner was live.
	LocalShards uint64
	// ShardsWarm counts shards settled from the result store before
	// dispatch — persisted outcomes of an earlier identical batch.
	ShardsWarm uint64
	// Runners lists the live runners with their in-flight shard counts,
	// sorted by ID.
	Runners []RunnerStat
}

// RunnerStat is one live runner's dispatch gauge.
type RunnerStat struct {
	ID         string
	InFlight   int
	Dispatched uint64
}

// NewCoordinator returns a coordinator with no runners; runners join
// via HandleJoin/Join, AttachLoopback, or not at all (LocalFallback).
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	return &Coordinator{
		opts:    opts.withDefaults(),
		runners: make(map[string]*runnerHandle),
	}
}

// RegisterMetrics folds the coordinator's dispatch counters into a
// registry as scrape-time collectors over Stats() — the registry owns
// rendering, the coordinator stays the single source of truth. The
// serving layer calls this once with the registry backing its /metrics;
// registering the same coordinator on one registry twice panics.
func (c *Coordinator) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(c.Stats()) }
	}
	r.GaugeFunc("hybridmem_cluster_runners_live", "Currently registered, non-expired runner nodes.",
		stat(func(s Stats) float64 { return float64(s.RunnersLive) }))
	r.CounterFunc("hybridmem_cluster_runners_joined_total", "Runner registrations over the coordinator's lifetime.",
		stat(func(s Stats) float64 { return float64(s.RunnersJoined) }))
	r.CounterFunc("hybridmem_cluster_runners_dropped_total", "Runners expelled for RPC failures or heartbeat expiry.",
		stat(func(s Stats) float64 { return float64(s.RunnersDropped) }))
	r.CounterFunc("hybridmem_cluster_shards_dispatched_total", "Shard dispatch attempts started, steals and retries included.",
		stat(func(s Stats) float64 { return float64(s.ShardsDispatched) }))
	r.CounterFunc("hybridmem_cluster_shards_completed_total", "Shards whose first response was accepted.",
		stat(func(s Stats) float64 { return float64(s.ShardsCompleted) }))
	r.CounterFunc("hybridmem_cluster_shards_stolen_total", "Speculative re-executions of in-flight shards.",
		stat(func(s Stats) float64 { return float64(s.ShardsStolen) }))
	r.CounterFunc("hybridmem_cluster_shards_retried_total", "Shard requeues after a failed dispatch attempt.",
		stat(func(s Stats) float64 { return float64(s.ShardsRetried) }))
	r.CounterFunc("hybridmem_cluster_duplicates_dropped_total", "Responses discarded because another execution won the race.",
		stat(func(s Stats) float64 { return float64(s.DuplicatesDropped) }))
	r.CounterFunc("hybridmem_cluster_local_shards_total", "Shards executed by the coordinator's local fallback.",
		stat(func(s Stats) float64 { return float64(s.LocalShards) }))
	r.CounterFunc("hybridmem_cluster_shards_warm_total", "Shards settled from the result store before dispatch.",
		stat(func(s Stats) float64 { return float64(s.ShardsWarm) }))
	runnerSamples := func(f func(RunnerStat) float64) func() []obs.Sample {
		return func() []obs.Sample {
			st := c.Stats()
			out := make([]obs.Sample, 0, len(st.Runners))
			for _, rs := range st.Runners {
				out = append(out, obs.Sample{Labels: []string{rs.ID}, Value: f(rs)})
			}
			return out
		}
	}
	r.GaugeSamplesFunc("hybridmem_cluster_runner_inflight", "Shards currently in flight, per live runner.",
		[]string{"runner"}, runnerSamples(func(rs RunnerStat) float64 { return float64(rs.InFlight) }))
	r.CounterSamplesFunc("hybridmem_cluster_runner_shards_total", "Shard dispatches per live runner.",
		[]string{"runner"}, runnerSamples(func(rs RunnerStat) float64 { return float64(rs.Dispatched) }))
}

// Options returns the coordinator's resolved options.
func (c *Coordinator) Options() CoordinatorOptions { return c.opts }

// Join registers (or refreshes) a runner reachable at the given URL
// base and returns the heartbeat cadence it must keep.
func (c *Coordinator) Join(id, addr string) time.Duration {
	c.join(&runnerHandle{
		id:   id,
		addr: addr,
		transport: &httpTransport{
			addr:   addr,
			client: &http.Client{Timeout: c.opts.RPCTimeout + 10*time.Second},
		},
	})
	return c.opts.HeartbeatInterval
}

// join installs a handle into the pool, replacing any previous
// registration under the same ID, and offers it to active dispatchers.
func (c *Coordinator) join(h *runnerHandle) {
	c.mu.Lock()
	h.lastBeat = time.Now()
	c.runners[h.id] = h
	c.stats.RunnersJoined++
	active := append([]*dispatcher(nil), c.active...)
	c.mu.Unlock()
	c.opts.Log.Info("cluster: runner joined", "runner", h.id, "addr", h.addr)
	for _, d := range active {
		d.addRunner(h)
	}
}

// Heartbeat refreshes a registration; false means the coordinator does
// not know the runner (expired or never joined) and it must rejoin.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.runners[id]
	if !ok || h.dead {
		return false
	}
	h.lastBeat = time.Now()
	return true
}

// AttachLoopback registers n in-process runners executing shards by
// direct call — the no-network mode tests and benchmarks drive. Each
// loopback runner gets its own bounded executor (sharing the
// coordinator's store, when configured), so dispatch, in-flight
// accounting and stealing behave exactly as with real nodes.
func (c *Coordinator) AttachLoopback(n, parallelism int) {
	for i := 0; i < n; i++ {
		c.join(&runnerHandle{
			id:        fmt.Sprintf("loopback-%d", i+1),
			addr:      "loopback",
			transport: loopbackTransport{exec: Exec{Parallelism: parallelism, Store: c.opts.Store, SimCounter: c.opts.SimCounter, Obs: c.opts.Obs}},
			loopback:  true,
		})
	}
}

// dropRunner expels a runner from the pool (RPC failures or heartbeat
// expiry); its in-flight shards are requeued by their workers' fail
// paths.
func (c *Coordinator) dropRunner(h *runnerHandle, reason string) {
	c.mu.Lock()
	if h.dead {
		c.mu.Unlock()
		return
	}
	h.dead = true
	delete(c.runners, h.id)
	c.stats.RunnersDropped++
	active := append([]*dispatcher(nil), c.active...)
	c.mu.Unlock()
	c.opts.Log.Info("cluster: runner dropped", "runner", h.id, "reason", reason)
	for _, d := range active {
		d.wake()
	}
}

// pruneExpired drops runners whose heartbeat lapsed.
func (c *Coordinator) pruneExpired() {
	c.mu.Lock()
	var expired []*runnerHandle
	now := time.Now()
	for _, h := range c.runners {
		if !h.loopback && now.Sub(h.lastBeat) > c.opts.HeartbeatTimeout {
			expired = append(expired, h)
		}
	}
	c.mu.Unlock()
	for _, h := range expired {
		c.dropRunner(h, "heartbeat expired")
	}
}

// liveRunners snapshots the current pool.
func (c *Coordinator) liveRunners() []*runnerHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*runnerHandle, 0, len(c.runners))
	for _, h := range c.runners {
		out = append(out, h)
	}
	return out
}

// Stats snapshots the dispatch counters. Expired runners are pruned
// first, so the snapshot reflects liveness even while no batch is
// dispatching (the monitor goroutine only runs during a Run).
func (c *Coordinator) Stats() Stats {
	c.pruneExpired()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.RunnersLive = len(c.runners)
	s.Runners = make([]RunnerStat, 0, len(c.runners))
	for _, h := range c.runners {
		s.Runners = append(s.Runners, RunnerStat{ID: h.id, InFlight: h.inFlight, Dispatched: h.dispatched})
	}
	sort.Slice(s.Runners, func(i, j int) bool { return s.Runners[i].ID < s.Runners[j].ID })
	return s
}

// HandleJoin is the coordinator's POST /cluster/v1/join endpoint.
func (c *Coordinator) HandleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := checkVersions(req.Proto, req.Schema, req.Engine); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.ID == "" || req.Addr == "" {
		http.Error(w, "cluster: join needs id and addr", http.StatusBadRequest)
		return
	}
	interval := c.Join(req.ID, req.Addr)
	writeJSON(w, joinResponse{OK: true, HeartbeatMillis: interval.Milliseconds()})
}

// HandleHeartbeat is the coordinator's POST /cluster/v1/heartbeat
// endpoint. A false ack tells the runner to rejoin.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]bool{"ok": c.Heartbeat(req.ID)})
}

// Run executes a batch of runs across the cluster and returns outcomes
// in input order — the deterministic merge every distributed document
// rests on. progress (optional) is called with completed and total run
// counts as shards finish. Run fails only on cancellation, a shard
// exhausting its attempt budget, or an empty pool with LocalFallback
// off; per-run failures ride the outcome Err slots.
func (c *Coordinator) Run(ctx context.Context, cfg Config, runs []Run, progress func(done, total int)) ([]RunOutcome, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	d := newDispatcher(c, cfg, runs, progress)
	// The batch span hangs off the caller's span (a serve job, usually)
	// so a distributed document's timeline reads job -> batch -> shard
	// -> runner. With tracing off every handle is nil and this is free.
	sp := obs.SpanFrom(ctx).Child("cluster_batch",
		obs.Int("runs", int64(len(runs))), obs.Int("shards", int64(len(d.shards))))
	if sp == nil {
		sp = c.opts.Obs.Tracer().StartSpan("cluster_batch",
			obs.Int("runs", int64(len(runs))), obs.Int("shards", int64(len(d.shards))))
	}
	defer sp.End()
	return d.run(obs.ContextWithSpan(ctx, sp))
}

// Evaluator adapts the coordinator into the design-space search's
// evaluation seam: batches of dse runs execute as cluster shards, and
// outcomes come back as the integer measurements the search folds
// locally — so a distributed exploration is byte-identical to a
// single-process one.
func (c *Coordinator) Evaluator() dse.Evaluator {
	return func(ctx context.Context, cfg dse.EvalConfig, runs []dse.EvalRun) ([]dse.EvalResult, error) {
		creq := make([]Run, len(runs))
		for i, r := range runs {
			creq[i] = Run{Design: r.Design, Workload: r.Workload, Ratio16: r.Ratio16}
		}
		outs, err := c.Run(ctx, Config{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.SimSeed}, creq, nil)
		if err != nil {
			return nil, err
		}
		res := make([]dse.EvalResult, len(outs))
		for i, o := range outs {
			res[i] = dse.EvalResult{
				Cycles:     o.Result.Cycles,
				WriteBytes: o.NMWriteBytes + o.FMWriteBytes,
				Err:        o.Err,
			}
		}
		return res, nil
	}
}

// isDead reports whether a handle has been expelled from the pool.
func (c *Coordinator) isDead(h *runnerHandle) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return h.dead
}

// liveCount counts registered runners (the local fallback handle is
// never registered, so it does not count itself).
func (c *Coordinator) liveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runners)
}

// noteDispatch, noteSettled and noteFailed keep the dispatch counters
// and per-runner gauges.
func (c *Coordinator) noteDispatch(h *runnerHandle, stolen, local bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h.inFlight++
	h.dispatched++
	c.stats.ShardsDispatched++
	if stolen {
		c.stats.ShardsStolen++
	}
	if local {
		c.stats.LocalShards++
	}
}

func (c *Coordinator) noteSettled(h *runnerHandle, duplicate bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h.inFlight--
	if duplicate {
		c.stats.DuplicatesDropped++
	} else {
		c.stats.ShardsCompleted++
	}
}

func (c *Coordinator) noteWarmShards(n int) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.ShardsWarm += uint64(n)
}

func (c *Coordinator) noteFailed(h *runnerHandle, retried bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h.inFlight--
	if retried {
		c.stats.ShardsRetried++
	}
}

// localParallelism resolves the fallback executor's worker bound.
func (c *Coordinator) localParallelism() int {
	if c.opts.LocalParallelism > 0 {
		return c.opts.LocalParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// httpTransport dials a runner node's shard endpoint.
type httpTransport struct {
	addr   string
	client *http.Client
}

func (t *httpTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return ShardResponse{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.addr+"/cluster/v1/shard", bytes.NewReader(data))
	if err != nil {
		return ShardResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(hreq)
	if err != nil {
		return ShardResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ShardResponse{}, fmt.Errorf("cluster: shard RPC to %s: %s: %s", t.addr, resp.Status, bytes.TrimSpace(msg))
	}
	var out ShardResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		return ShardResponse{}, err
	}
	return out, nil
}
