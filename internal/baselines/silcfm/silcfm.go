// Package silcfm implements SILC-FM (Ryoo, Meswani, Prodromou, John,
// HPCA'17), the §2.2 design offering "a more flexible group approach":
// NM is organized in set-associative swap groups — an FM segment can
// occupy any way of its NM set rather than one fixed slot — and data
// moves at sub-block (64 B) granularity, interleaving sub-blocks of the
// resident segment with demand-fetched sub-blocks of FM segments.
//
// Model: NM sectors form A-way sets. FM segments showing reuse (episode
// counting, as for the other counter-based schemes) claim the LRU way of
// their set; claimed ways fill on demand at 64 B granularity with per-way
// valid/dirty masks. Displaced ways write their dirty sub-blocks back to
// the evicted segment's FM home. A set-associative remap cache fronts the
// in-NM location table.
package silcfm

import (
	"math/bits"

	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes SILC-FM.
type Config struct {
	SectorBytes       int
	Assoc             int // ways per NM swap-group set
	NMBytes, FMBytes  uint64
	ClaimEpisodes     int // reuse episodes before a segment claims a way
	RemapCacheEntries int
	Seed              uint64
}

// Default returns the standard SILC-FM configuration.
func Default(nmBytes, fmBytes uint64, remapEntries int, seed uint64) Config {
	return Config{
		SectorBytes:       config.SectorBytes,
		Assoc:             4,
		NMBytes:           nmBytes,
		FMBytes:           fmBytes,
		ClaimEpisodes:     4,
		RemapCacheEntries: remapEntries,
		Seed:              seed,
	}
}

type way struct {
	owner    uint32 // FM segment +1; 0 = unclaimed
	validVec uint32
	dirtyVec uint32
	lru      uint64
}

// SILCFM implements memtypes.MemorySystem.
type SILCFM struct {
	cfg   Config
	nm    *memsys.Device
	fm    *memsys.Device
	stats memtypes.MemStats

	sets  uint32
	ways  []way
	clock uint64

	episodes map[uint32]uint8 // FM segment -> reuse episodes (bounded)
	lastSeg  uint32

	rcTags []uint64
	rcLRU  []uint64
	rcSets int
}

// New builds SILC-FM over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *SILCFM {
	nmSectors := uint32(cfg.NMBytes / uint64(cfg.SectorBytes))
	sets := nmSectors / uint32(cfg.Assoc)
	if sets == 0 {
		panic("silcfm: no NM sets")
	}
	s := &SILCFM{
		cfg:      cfg,
		nm:       nm,
		fm:       fm,
		sets:     sets,
		ways:     make([]way, nmSectors),
		episodes: make(map[uint32]uint8, 4096),
		lastSeg:  ^uint32(0),
		rcTags:   make([]uint64, cfg.RemapCacheEntries),
		rcLRU:    make([]uint64, cfg.RemapCacheEntries),
		rcSets:   cfg.RemapCacheEntries / 16,
	}
	if s.rcSets <= 0 || s.rcSets&(s.rcSets-1) != 0 {
		panic("silcfm: remap cache sets must be a positive power of two")
	}
	return s
}

// Name implements MemorySystem.
func (s *SILCFM) Name() string { return "SILC-FM" }

// Stats implements MemorySystem.
func (s *SILCFM) Stats() *memtypes.MemStats { return &s.stats }

func (s *SILCFM) rcLookup(key uint32) bool {
	s.clock++
	set := int(key) % s.rcSets
	base := set * 16
	victim := base
	k := uint64(key) + 1
	for i := base; i < base+16; i++ {
		if s.rcTags[i] == k {
			s.rcLRU[i] = s.clock
			return true
		}
		if s.rcTags[victim] == 0 {
			continue
		}
		if s.rcTags[i] == 0 || s.rcLRU[i] < s.rcLRU[victim] {
			victim = i
		}
	}
	s.rcTags[victim] = k
	s.rcLRU[victim] = s.clock
	return false
}

func (s *SILCFM) nmAddr(wayIdx uint32, off memtypes.Addr) memtypes.Addr {
	return memtypes.Addr(wayIdx)*memtypes.Addr(s.cfg.SectorBytes) + off
}

// findWay returns the index of the way owned by seg in its set, or the
// LRU way index with found=false.
func (s *SILCFM) findWay(seg uint32) (idx uint32, found bool) {
	set := seg % s.sets
	base := set * uint32(s.cfg.Assoc)
	lru := base
	for i := base; i < base+uint32(s.cfg.Assoc); i++ {
		if s.ways[i].owner == seg+1 {
			return i, true
		}
		if s.ways[i].lru < s.ways[lru].lru {
			lru = i
		}
	}
	return lru, false
}

// Access implements MemorySystem.
func (s *SILCFM) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	s.stats.Requests++
	seg := uint32(uint64(addr) / uint64(s.cfg.SectorBytes))
	fmSectors := uint32(s.cfg.FMBytes / uint64(s.cfg.SectorBytes))
	if seg >= fmSectors {
		seg %= fmSectors
	}
	offset := memtypes.Addr(uint64(addr) % uint64(s.cfg.SectorBytes))
	sub := uint(offset / 64)
	fmHome := memtypes.Addr(seg)*memtypes.Addr(s.cfg.SectorBytes) + offset

	if !s.rcLookup(seg % s.sets) {
		// Location-table read from NM on the critical path.
		now = s.nm.Access(now, memtypes.Addr(s.cfg.NMBytes)-memtypes.Addr(1+seg%4096)*64, 64, false)
		s.stats.NMReadBytes += 64
		s.stats.MetaNMBytes += 64
	}

	repeat := seg == s.lastSeg
	s.lastSeg = seg

	idx, found := s.findWay(seg)
	w := &s.ways[idx]
	if found {
		s.clock++
		w.lru = s.clock
		if w.validVec&(1<<sub) != 0 {
			s.stats.ServedNM++
			done := s.nm.Access(now, s.nmAddr(idx, offset), 64, write)
			if write {
				w.dirtyVec |= 1 << sub
				s.stats.NMWriteBytes += 64
			} else {
				s.stats.NMReadBytes += 64
			}
			return done
		}
		// Sub-block interleaving: demand-fetch this 64 B into the way.
		s.stats.ServedFM++
		done := s.fm.Access(now, fmHome, 64, false)
		s.nm.AccessBG(done, s.nmAddr(idx, offset), 64, true)
		s.stats.FMReadBytes += 64
		s.stats.NMWriteBytes += 64
		w.validVec |= 1 << sub
		if write {
			w.dirtyVec |= 1 << sub
		}
		return done
	}

	// Not resident: serve from FM and track reuse; claiming a way takes
	// ClaimEpisodes distinct revisits.
	s.stats.ServedFM++
	done := s.fm.Access(now, fmHome, 64, write)
	if write {
		s.stats.FMWriteBytes += 64
	} else {
		s.stats.FMReadBytes += 64
	}
	if !repeat {
		if len(s.episodes) >= 8192 {
			for k := range s.episodes {
				delete(s.episodes, k)
			}
		}
		s.episodes[seg]++
		if int(s.episodes[seg]) >= s.cfg.ClaimEpisodes {
			delete(s.episodes, seg)
			s.claim(now, idx, seg, sub, write)
		}
	}
	return done
}

// claim evicts the LRU way (writing dirty sub-blocks back to the old
// owner's FM home) and assigns it to seg with the demanded sub-block.
func (s *SILCFM) claim(now memtypes.Tick, idx, seg uint32, sub uint, write bool) {
	w := &s.ways[idx]
	if w.owner != 0 && w.dirtyVec != 0 {
		n := bits.OnesCount32(w.dirtyVec)
		rd := s.nm.AccessBG(now, s.nmAddr(idx, 0), n*64, false)
		s.fm.AccessBG(rd, memtypes.Addr(w.owner-1)*memtypes.Addr(s.cfg.SectorBytes), n*64, true)
		s.stats.NMReadBytes += uint64(n * 64)
		s.stats.FMWriteBytes += uint64(n * 64)
		s.stats.Evictions++
	}
	// The demanded sub-block was just read from FM; stage it in the way.
	s.nm.AccessBG(now, s.nmAddr(idx, memtypes.Addr(sub)*64), 64, true)
	s.stats.NMWriteBytes += 64
	s.stats.Migrations++
	s.clock++
	*w = way{owner: seg + 1, validVec: 1 << sub, lru: s.clock}
	if write {
		w.dirtyVec = 1 << sub
	}
}

// Finish implements MemorySystem (no deferred work).
func (s *SILCFM) Finish(memtypes.Tick) {}

// CheckInvariants verifies no segment owns two ways of a set.
func (s *SILCFM) CheckInvariants() bool {
	for set := uint32(0); set < s.sets; set++ {
		base := set * uint32(s.cfg.Assoc)
		seen := make(map[uint32]bool, s.cfg.Assoc)
		for i := base; i < base+uint32(s.cfg.Assoc); i++ {
			o := s.ways[i].owner
			if o == 0 {
				continue
			}
			if seen[o] {
				return false
			}
			seen[o] = true
		}
	}
	return true
}
