// Phase shift: why combine a cache with migration? Migration schemes
// observe access patterns before moving data, so they adapt slowly when
// the working set changes; a cache fetches everything it touches and
// adapts immediately (§2.3). This example builds a custom workload whose
// hot set relocates several times during the run and compares how the
// designs cope.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	cfg := hybridmem.DefaultConfig()
	cfg.InstrPerCore = 500_000

	for _, phases := range []int{1, 8} {
		wl := hybridmem.Workload{
			Name:        fmt.Sprintf("shifty-%dphase", phases),
			FootprintGB: 3.0,
			APKI:        30,
			HotFrac:     0.10,
			HotProb:     0.75,
			SeqRun:      12,
			WriteFrac:   0.3,
			Phases:      phases,
		}
		base, err := hybridmem.RunCustom("Baseline", wl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("working set %s (%d phase(s)):\n", wl.Name, phases)
		for _, d := range []string{"MPOD", "LGM", "HYBRID2"} {
			res, err := hybridmem.RunCustom(d, wl, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s speedup %.2f, served from NM %.0f%%\n",
				d, float64(base.Cycles)/float64(res.Cycles), res.ServedNMFrac*100)
		}
		fmt.Println()
	}
	fmt.Println("With a stable working set, migration alone eventually catches up;")
	fmt.Println("under frequent phase changes Hybrid2's DRAM cache keeps serving the")
	fmt.Println("new hot set from NM while pure migration schemes lag behind.")
}
