package core

import "sync"

// The seeded initial placement of flat sectors is a pure function of
// (seed, geometry); rebuilding it with a full Fisher-Yates shuffle — a
// hardware division per sector — on every Hybrid2 construction dominated
// sweep setup time. The cache below memoizes the derived remap/invRemap
// contents; a hit replaces the shuffle with two memmoves. A placement is
// only snapshotted on its second build — one-off seeds (per-run seeds of
// a benchmark iteration) never pay the snapshot's allocation and copy,
// while sweeps, which rebuild the same placement once per (design,
// workload) pair, hit from the third build on.

type placementKey struct {
	seed       uint64
	flat       uint32
	fmSec      uint32
	cacheSlots uint32
}

// placementSnap with nil remap marks a key seen once but not yet worth
// snapshotting.
type placementSnap struct {
	remap    []loc
	invRemap []uint32 // full pool length; cache-slot entries invalidLogical
}

const placementCacheMax = 8

var (
	placementMu    sync.Mutex
	placementCache = map[placementKey]*placementSnap{}
	placementOrder []placementKey // FIFO eviction
)

// initialPlacement fills remap (len flat+fmSec) and invRemap (len pool,
// pre-sized by the caller) with the seeded random placement, via the
// snapshot cache.
func initialPlacement(seed uint64, flat, fmSec, cacheSlots uint32, remap []loc, invRemap []uint32) {
	k := placementKey{seed, flat, fmSec, cacheSlots}
	placementMu.Lock()
	snap := placementCache[k]
	if snap != nil && snap.remap != nil {
		placementMu.Unlock()
		copy(remap, snap.remap)
		copy(invRemap, snap.invRemap)
		return
	}
	placementMu.Unlock()

	buildPlacement(seed, flat, fmSec, cacheSlots, remap, invRemap)

	placementMu.Lock()
	defer placementMu.Unlock()
	switch snap = placementCache[k]; {
	case snap == nil:
		// First sighting: record the key, skip the snapshot.
		if len(placementOrder) >= placementCacheMax {
			delete(placementCache, placementOrder[0])
			placementOrder = placementOrder[1:]
		}
		placementCache[k] = &placementSnap{}
		placementOrder = append(placementOrder, k)
	case snap.remap == nil:
		// Second build of the same placement: it repeats, so memoize.
		snap.remap = append([]loc(nil), remap...)
		snap.invRemap = append([]uint32(nil), invRemap...)
	}
}

// buildPlacement runs the seeded shuffle New always ran, writing straight
// into the caller's arrays.
func buildPlacement(seed uint64, flat, fmSec, cacheSlots uint32, remap []loc, invRemap []uint32) {
	for i := range invRemap {
		invRemap[i] = invalidLogical
	}
	perm := make([]uint32, uint64(flat)+uint64(fmSec))
	for i := range perm {
		perm[i] = uint32(i)
	}
	rng := seed | 1
	for i := len(perm) - 1; i > 0; i-- {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		j := int((rng * 0x2545F4914F6CDD1D) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for logical, phys := range perm {
		if phys < flat {
			// Flat NM slots occupy pool indices [cacheSlots, pool).
			slot := cacheSlots + phys
			remap[logical] = loc{nm: true, idx: slot}
			invRemap[slot] = uint32(logical)
		} else {
			remap[logical] = loc{nm: false, idx: phys - flat}
		}
	}
}
