package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybridmem/internal/api"
	"hybridmem/internal/obs"
)

// TestRunSeriesEndpoint drives the sync telemetry path: ?series=1
// returns a run-series document whose embedded result is byte-identical
// to the plain run's, and a repeated request is served from cache with
// the exact same bytes.
func TestRunSeriesEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	req := quickRun()

	plain := postJSON(t, s.Handler(), "/v1/run", req)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain run: %d %s", plain.Code, plain.Body)
	}
	sampled := postJSON(t, s.Handler(), "/v1/run?series=1&window_instr=8192", req)
	if sampled.Code != http.StatusOK {
		t.Fatalf("sampled run: %d %s", sampled.Code, sampled.Body)
	}
	if !strings.Contains(sampled.Body.String(), `"series_schema": 1`) {
		t.Fatalf("sampled run document missing series_schema:\n%s", sampled.Body)
	}

	// Telemetry is passive: the embedded result object must match the
	// plain run's result object exactly.
	var plainDoc, seriesDoc struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(plain.Body.Bytes(), &plainDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sampled.Body.Bytes(), &seriesDoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainDoc.Result, seriesDoc.Result) {
		t.Fatalf("sampled run's result diverges from the plain run's:\n%s\nvs\n%s",
			seriesDoc.Result, plainDoc.Result)
	}

	var full struct {
		Series api.Series `json:"series"`
	}
	if err := json.Unmarshal(sampled.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.Series.WindowInstr != 8192 {
		t.Errorf("series window = %d, want the requested 8192", full.Series.WindowInstr)
	}
	if len(full.Series.Epochs) == 0 || len(full.Series.Phases) == 0 {
		t.Fatalf("sampled run has empty series: %d epochs, %d phases",
			len(full.Series.Epochs), len(full.Series.Phases))
	}

	// The repeat is a cache hit under the series fingerprint — and the
	// engine's determinism makes the cached bytes indistinguishable from
	// a fresh execution anyway.
	again := postJSON(t, s.Handler(), "/v1/run?series=1&window_instr=8192", req)
	if again.Code != http.StatusOK {
		t.Fatalf("repeated sampled run: %d %s", again.Code, again.Body)
	}
	if !bytes.Equal(again.Body.Bytes(), sampled.Body.Bytes()) {
		t.Fatal("repeated sampled run returned different bytes")
	}

	// A falsy series parameter is the plain path, same bytes as before.
	off := postJSON(t, s.Handler(), "/v1/run?series=0", req)
	if !bytes.Equal(off.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("series=0 run differs from the plain run")
	}
	if w := postJSON(t, s.Handler(), "/v1/run?series=1&window_instr=nope", req); w.Code != http.StatusBadRequest {
		t.Fatalf("bad window_instr: %d, want 400", w.Code)
	}
}

// TestSweepSeriesJobEndToEnd drives the async telemetry path: a sweep
// submitted with series options streams live epoch events over SSE,
// serves the assembled series document at /v1/jobs/{id}/series, and its
// headline result document stays byte-identical to a plain sweep's.
func TestSweepSeriesJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Parallelism: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plain := sweepRequest{
		Designs:   []string{"Baseline", "HYBRID2"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
	want := runJob(t, s, "/v1/sweep", plain)

	sampled := plain
	sampled.Series = &seriesOptions{WindowInstr: 8192}
	w := postJSON(t, s.Handler(), "/v1/sweep", sampled)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var sub submitResponse
	json.Unmarshal(w.Body.Bytes(), &sub)

	// Series options are part of the fingerprint: this is new work, not
	// the plain sweep's job.
	var plainSub submitResponse
	json.Unmarshal(postJSON(t, s.Handler(), "/v1/sweep", plain).Body.Bytes(), &plainSub)
	if sub.JobID == plainSub.JobID {
		t.Fatal("sampled sweep deduplicated onto the plain sweep's job")
	}

	// The SSE stream of a sampled sweep carries live epoch frames.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(events), "event: done") {
		t.Fatalf("SSE stream missing done event:\n%s", events)
	}
	if strings.Contains(string(events), "event: epoch") {
		var first string
		for _, line := range strings.Split(string(events), "\n") {
			if after, ok := strings.CutPrefix(line, "data: "); ok && strings.Contains(line, `"epoch"`) {
				first = after
				break
			}
		}
		var ev epochEvent
		if err := json.Unmarshal([]byte(first), &ev); err != nil {
			t.Fatalf("epoch frame is not valid JSON: %v\n%s", err, first)
		}
		if ev.Design == "" || ev.Workload == "" {
			t.Errorf("epoch frame missing run identity: %+v", ev)
		}
	}

	if st := waitJob(t, s.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("sampled sweep failed: %+v", st)
	}
	got := get(s.Handler(), "/v1/jobs/"+sub.JobID+"/result")
	if got.Code != http.StatusOK {
		t.Fatalf("result: %d %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), want) {
		t.Fatalf("sampled sweep's headline document diverges from the plain sweep's:\n%s\nvs\n%s", got.Body, want)
	}

	sw := get(s.Handler(), "/v1/jobs/"+sub.JobID+"/series")
	if sw.Code != http.StatusOK {
		t.Fatalf("series: %d %s", sw.Code, sw.Body)
	}
	var doc api.SweepSeries
	if err := json.Unmarshal(sw.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Partial {
		t.Error("settled sweep's series document is marked partial")
	}
	if doc.SeriesSchema != api.SeriesSchemaVersion {
		t.Errorf("series document schema = %d, want %d", doc.SeriesSchema, api.SeriesSchemaVersion)
	}
	if len(doc.Entries) != len(plain.Designs) {
		t.Fatalf("series entries = %d, want %d", len(doc.Entries), len(plain.Designs))
	}
	for _, e := range doc.Entries {
		if len(e.Series.Epochs) == 0 {
			t.Errorf("run %s/%s has no epochs", e.Design, e.Workload)
		}
	}

	// The plain sweep has no series to serve.
	if w := get(s.Handler(), "/v1/jobs/"+plainSub.JobID+"/series"); w.Code != http.StatusNotFound {
		t.Fatalf("plain sweep's series endpoint: %d, want 404", w.Code)
	}
}

// TestJobSeriesDocLifecycle pins the mid-sweep contract at the unit
// level: a job with series slots renders a partial document until
// settled, then the settled bytes, and a job without telemetry has none.
func TestJobSeriesDocLifecycle(t *testing.T) {
	j := newJob("x", "sweep")
	if _, _, ok := j.seriesDoc(); ok {
		t.Fatal("job without telemetry claims a series document")
	}
	j.initSeries([]api.SweepSeriesEntry{
		{Design: "Baseline", Workload: "lbm", Series: api.FromSeries(nil)},
		{Design: "HYBRID2", Workload: "lbm", Series: api.FromSeries(nil)},
	})
	data, partial, ok := j.seriesDoc()
	if !ok || !partial {
		t.Fatalf("mid-sweep doc: ok=%v partial=%v, want true/true", ok, partial)
	}
	if !strings.Contains(string(data), `"partial": true`) {
		t.Fatalf("mid-sweep doc not marked partial:\n%s", data)
	}
	j.setSeries(1, api.Series{WindowInstr: 4096, EpochsTotal: 2,
		Epochs: []api.Epoch{}, Phases: []api.SeriesPhase{}})
	settled, err := j.settleSeries()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(settled), `"partial"`) {
		t.Fatalf("settled doc carries the partial flag:\n%s", settled)
	}
	data, partial, ok = j.seriesDoc()
	if !ok || partial || !bytes.Equal(data, settled) {
		t.Fatal("seriesDoc after settle does not return the settled bytes")
	}
}

// TestDebugEventsQueryParams covers the /debug/events filters: ?n=
// keeps the last N events, ?span= keeps one name, and they compose.
func TestDebugEventsQueryParams(t *testing.T) {
	s := newTestServer(t, Options{})
	runJob(t, s, "/v1/sweep", sweepRequest{
		Designs:   []string{"Baseline"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	})

	type dump struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	read := func(path string) dump {
		t.Helper()
		w := get(s.Handler(), path)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body)
		}
		var d dump
		if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return d
	}

	full := read("/debug/events")
	if len(full.Events) < 2 {
		t.Fatalf("flight recorder has %d events; the test needs at least 2", len(full.Events))
	}

	last := read("/debug/events?n=2")
	if len(last.Events) != 2 {
		t.Fatalf("?n=2 returned %d events", len(last.Events))
	}
	if last.Total != full.Total {
		t.Errorf("?n=2 total = %d, want the recorder total %d", last.Total, full.Total)
	}
	// The last N of the full dump, in the same (oldest-first) order.
	for i, e := range last.Events {
		want := full.Events[len(full.Events)-2+i]
		if e.Span != want.Span || e.Name != want.Name || e.Kind != want.Kind || e.TimeUnixNano != want.TimeUnixNano {
			t.Errorf("?n=2 event %d = %+v, want %+v", i, e, want)
		}
	}

	jobs := read("/debug/events?span=job")
	if len(jobs.Events) == 0 {
		t.Fatal("?span=job matched nothing after a completed job")
	}
	for _, e := range jobs.Events {
		if e.Name != "job" {
			t.Errorf("?span=job leaked event %q", e.Name)
		}
	}

	both := read("/debug/events?span=job&n=1")
	if len(both.Events) != 1 {
		t.Fatalf("?span=job&n=1 returned %d events", len(both.Events))
	}
	if lastJob := jobs.Events[len(jobs.Events)-1]; both.Events[0].Span != lastJob.Span ||
		both.Events[0].Kind != lastJob.Kind || both.Events[0].TimeUnixNano != lastJob.TimeUnixNano {
		t.Errorf("?span=job&n=1 = %+v, want the last job event %+v", both.Events[0], lastJob)
	}

	if none := read("/debug/events?span=no_such_span"); len(none.Events) != 0 {
		t.Errorf("?span=no_such_span returned %d events", len(none.Events))
	}
	if w := get(s.Handler(), "/debug/events?n=-1"); w.Code != http.StatusBadRequest {
		t.Errorf("?n=-1 = %d, want 400", w.Code)
	}
	if w := get(s.Handler(), "/debug/events?n=two"); w.Code != http.StatusBadRequest {
		t.Errorf("?n=two = %d, want 400", w.Code)
	}
}

// TestBuildInfoAndEpochMetrics checks the scrape-time face of the
// telemetry plane: the build-info gauge is present (with its version
// labels) and passes the exposition lint, and a sampled run feeds the
// hybridmem_sim_epoch_* family.
func TestBuildInfoAndEpochMetrics(t *testing.T) {
	s := newTestServer(t, Options{})

	first := get(s.Handler(), "/metrics")
	if err := obs.Lint(first.Body.Bytes()); err != nil {
		t.Fatalf("scrape fails lint: %v", err)
	}
	if !strings.Contains(first.Body.String(), `hybridmem_build_info{engine_version="`) {
		t.Fatal("scrape is missing hybridmem_build_info")
	}
	if !strings.Contains(first.Body.String(), "hybridmem_sim_epochs_total 0") {
		t.Fatal("epoch counter should start at zero")
	}

	if w := postJSON(t, s.Handler(), "/v1/run?series=1", quickRun()); w.Code != http.StatusOK {
		t.Fatalf("sampled run: %d %s", w.Code, w.Body)
	}
	second := get(s.Handler(), "/metrics")
	if err := obs.Lint(second.Body.Bytes()); err != nil {
		t.Fatalf("post-run scrape fails lint: %v", err)
	}
	if err := obs.LintMonotonic(first.Body.Bytes(), second.Body.Bytes()); err != nil {
		t.Fatalf("counters ran backwards: %v", err)
	}
	if strings.Contains(second.Body.String(), "hybridmem_sim_epochs_total 0") {
		t.Fatal("sampled run closed no epochs on the scrape")
	}
	if !strings.Contains(second.Body.String(), "hybridmem_sim_epoch_index ") {
		t.Fatal("scrape is missing the hybridmem_sim_epoch_* family")
	}
}

// TestSweepSeriesSurvivesRestart: with persistence on, a restarted
// server adopts a settled sampled sweep's series document alongside its
// result.
func TestSweepSeriesSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := sweepRequest{
		Designs:   []string{"HYBRID2"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
		Series:    &seriesOptions{WindowInstr: 8192},
	}
	req.Config = normalizeConfig(req.Config, 1_000_000)

	s0 := newTestServer(t, Options{StateDir: dir})
	w := postJSON(t, s0.Handler(), "/v1/sweep", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var sub submitResponse
	json.Unmarshal(w.Body.Bytes(), &sub)
	if st := waitJob(t, s0.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("sweep failed: %+v", st)
	}
	want := get(s0.Handler(), "/v1/jobs/"+sub.JobID+"/series")
	if want.Code != http.StatusOK {
		t.Fatalf("series before restart: %d %s", want.Code, want.Body)
	}

	s1 := newTestServer(t, Options{StateDir: dir})
	got := get(s1.Handler(), "/v1/jobs/"+sub.JobID+"/series")
	if got.Code != http.StatusOK {
		t.Fatalf("series after restart: %d %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("recovered series document differs from the original")
	}
}
