package obs

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute of a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Event is one flight-recorder entry: a span transition or a point
// event inside a span. It is also the wire form runner nodes use to
// echo their shard-execution timeline back to the coordinator
// (cluster.ShardResponse.Events).
type Event struct {
	// TimeUnixNano is the event's wall-clock timestamp.
	TimeUnixNano int64 `json:"ts"`
	// Trace, Span and Parent identify the span tree this event belongs
	// to; Parent is the enclosing span for span_start events.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Name is the span name (span_start/span_end) or the event name.
	Name string `json:"name"`
	// Kind is "span_start", "span_end" or "event".
	Kind string `json:"kind"`
	// DurUS is the span duration in microseconds, set on span_end.
	DurUS int64  `json:"dur_us,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Tracer mints trace and span IDs and records span transitions into a
// flight recorder. A nil Tracer is disabled: it hands out nil spans,
// whose methods are allocation-free no-ops.
type Tracer struct {
	sink *FlightRecorder
	base uint64
	seq  atomic.Uint64
}

// NewTracer returns a tracer recording into sink; a nil sink yields a
// nil (disabled) tracer.
func NewTracer(sink *FlightRecorder) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, base: uint64(time.Now().UnixNano())}
}

// nextID returns a process-unique 16-hex-digit ID. Uniqueness comes
// from the bijective odd-constant multiply over the sequence number;
// the time base distinguishes tracers across processes well enough for
// a debugging timeline.
func (t *Tracer) nextID() string {
	n := t.seq.Add(1)
	return strconv.FormatUint(t.base^(n*0x9e3779b97f4a7c15), 16)
}

// Span is one timed operation in a trace tree. A nil Span is a no-op:
// Child returns nil, Event and End do nothing — tracing disabled (or an
// unsampled path) costs nothing.
type Span struct {
	t      *Tracer
	trace  string
	id     string
	parent string
	name   string
	start  time.Time
}

// StartSpan starts a new root span, minting a fresh trace ID.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(t.nextID(), "", name, attrs)
}

// StartRemote starts a span continuing a trace begun elsewhere —
// typically a runner node picking up the coordinator's shard span via
// the wire trace context.
func (t *Tracer) StartRemote(traceID, parentSpanID, name string, attrs ...Attr) *Span {
	if t == nil || traceID == "" {
		return nil
	}
	return t.start(traceID, parentSpanID, name, attrs)
}

func (t *Tracer) start(traceID, parent, name string, attrs []Attr) *Span {
	s := &Span{t: t, trace: traceID, id: t.nextID(), parent: parent, name: name, start: time.Now()}
	t.sink.Record(Event{
		TimeUnixNano: s.start.UnixNano(),
		Trace:        s.trace, Span: s.id, Parent: s.parent,
		Name: name, Kind: "span_start", Attrs: attrs,
	})
	return s
}

// Child starts a sub-span of s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s.trace, s.id, name, attrs)
}

// Event records a point event inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.sink.Record(Event{
		TimeUnixNano: time.Now().UnixNano(),
		Trace:        s.trace, Span: s.id,
		Name: name, Kind: "event", Attrs: attrs,
	})
}

// End closes the span, recording its duration.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.sink.Record(Event{
		TimeUnixNano: now.UnixNano(),
		Trace:        s.trace, Span: s.id, Parent: s.parent,
		Name: s.name, Kind: "span_end",
		DurUS: now.Sub(s.start).Microseconds(), Attrs: attrs,
	})
}

// TraceID returns the span's trace ID, "" for a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SpanID returns the span's ID, "" for a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context; a nil span returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span attached to ctx, nil when absent.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
