package design_test

import (
	"testing"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all"
)

// FuzzParseDesign fuzzes the design-name grammar, seeded with every
// registered base name and example. Properties: Parse never panics; a
// name that parses resolves stably to the same family; and a parsed spec
// builds without panicking — construction either succeeds or reports an
// error for system-size constraints the grammar cannot see.
func FuzzParseDesign(f *testing.F) {
	for _, info := range design.AllInfos() {
		f.Add(info.Name)
		f.Add(info.SampleName())
	}
	f.Add("DFC-0")
	f.Add("IDEAL--3")
	f.Add("H2DSE-0-0-0")
	f.Add("H2ABL-free-250")
	f.Add("SILC-FM-3")
	f.Add("Baseline-1")
	f.Add("totally-unknown")
	f.Add("")
	f.Add("-")
	f.Add("H2DSE-64-2-256-")

	// A small scale keeps per-input construction cheap during fuzzing.
	sys := config.Scaled(64, 1)
	sys.InstrPerCore = 1

	f.Fuzz(func(t *testing.T, name string) {
		spec, err := design.Parse(name)
		if err != nil {
			return
		}
		again, err := design.Parse(spec.Name)
		if err != nil {
			t.Fatalf("accepted name %q failed to re-parse: %v", spec.Name, err)
		}
		if again.Info.Name != spec.Info.Name {
			t.Fatalf("name %q resolved to %s then %s", name, spec.Info.Name, again.Info.Name)
		}
		ms, _, fm, err := spec.Build(sys)
		if err != nil {
			return // capacity constraints at this scale are legitimate
		}
		if ms == nil || fm == nil {
			t.Fatalf("build of %q returned a nil system without an error", name)
		}
	})
}
