// Package serve is the simulation-as-a-service layer: a long-lived,
// stdlib-only HTTP server multiplexing many concurrent clients over the
// batch engines (internal/exp, internal/dse, internal/trace) so the
// common case — somebody asking for a result the fleet has already
// computed — never re-simulates.
//
// # Request lifecycle
//
// Every request is canonicalized into a content-addressed fingerprint:
// SHA-256 over the request kind, the engine and schema versions
// (internal/api), the design/workload selection and the full simulation
// configuration. The fingerprint drives three layers of deduplication:
//
//   - the tiered result store (internal/store: a memory LRU over an
//     optional checksummed on-disk tier) serves repeats without
//     touching the engines — across restarts when a store directory is
//     configured;
//   - a singleflight layer collapses concurrent identical in-flight
//     requests into one simulation whose result every caller shares;
//   - the job queue reuses the fingerprint as the job ID, so identical
//     sweeps or explorations submitted twice are one job.
//
// Below the document level, every runner the server creates shares the
// same store, so even a novel sweep reuses the individual runs past
// requests already simulated.
//
// Results are deterministic (same fingerprint, same bytes — the property
// the cache depends on), and the encoded documents are the shared wire
// schema of internal/api, byte-identical to the equivalent
// cmd/experiments or cmd/dse invocation.
//
// # Endpoints
//
//	GET  /healthz              liveness (503 while draining)
//	GET  /metrics              text-format counters and latency histograms
//	GET  /v1/designs           the design registry (name, grammar, kind)
//	GET  /v1/workloads         the built-in workload names
//	POST /v1/run               one (design, workload) run — synchronous;
//	                           ?series=1 adds epoch telemetry to the response
//	POST /v1/sweep             designs × workloads sweep — async job; a
//	                           "series" object in the body enables telemetry
//	POST /v1/explore           design-space exploration — async job
//	POST /v1/replay            trace replay; the request body IS the trace
//	GET  /v1/jobs/{id}         job state
//	GET  /v1/jobs/{id}/events  progress stream (server-sent events; sampled
//	                           sweeps interleave live "epoch" events)
//	GET  /v1/jobs/{id}/result  the finished job's result document
//	GET  /v1/jobs/{id}/series  a sampled sweep's telemetry time-series
//	                           document (partial while the sweep runs)
//
// Sweeps and explorations run asynchronously through a bounded job
// queue and worker pool: POST returns a job ID, progress streams over
// SSE (wired to exp's sweep progress hook and dse's batch events), and
// the result document is fetched when the job settles. The trace upload
// path streams the request body straight into the trace decoder
// (internal/trace) — a multi-gigabyte capture replays in constant
// memory and is never buffered.
//
// # Persistence and drain
//
// With Options.StateDir set, submitted job requests and finished result
// documents persist to disk, and explorations checkpoint through the
// existing internal/dse checkpoint path after every batch. A restarted
// server adopts finished jobs (re-seeding the result cache) and
// resubmits unfinished ones; an interrupted exploration resumes from its
// checkpoint instead of starting over. Shutdown drains gracefully:
// health flips to 503, new work is rejected, queued and running jobs
// finish (until the drain deadline, which cancels them — explorations
// flush a final checkpoint), and in-flight HTTP requests complete.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/atomicfile"
	"hybridmem/internal/cluster"
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all" // link every built-in organization into the registry
	"hybridmem/internal/dse"
	"hybridmem/internal/exp"
	"hybridmem/internal/obs"
	"hybridmem/internal/sim"
	"hybridmem/internal/store"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

// Options configures a Server. The zero value of every field has a
// usable default.
type Options struct {
	// CacheEntries and CacheBytes bound the result store's memory tier;
	// <= 0 means 1024 entries and 64 MB.
	CacheEntries int
	CacheBytes   int64
	// Store, when non-nil, is a pre-opened result store shared with
	// other components (hybridmem.Serve opens one store for the server
	// and its cluster coordinator). When nil, New opens a store from
	// CacheEntries/CacheBytes and, if StoreDir is set, a disk tier
	// there.
	Store *store.Store
	// StoreDir enables the result store's disk tier: result documents
	// and per-run records persist there, content-addressed and
	// checksummed, and repeats are served across restarts — and across
	// any processes sharing the directory — without re-simulating.
	// Empty keeps the store memory-only. Ignored when Store is set.
	StoreDir string
	// StoreMaxBytes bounds the disk tier; beyond it the least-recently
	// used entries are garbage-collected. <= 0 means unbounded. Ignored
	// when Store is set.
	StoreMaxBytes int64
	// QueueDepth bounds queued-but-not-running jobs (<= 0 means 64);
	// a full queue rejects submissions with 503 rather than blocking.
	QueueDepth int
	// Workers is the job worker-pool size; <= 0 means 2. Each job
	// additionally fans its simulations out across Parallelism runner
	// workers (<= 0 means GOMAXPROCS).
	Workers     int
	Parallelism int
	// JobHistory and JobHistoryBytes bound the settled jobs that stay
	// addressable (status and result endpoints) by count and by total
	// retained result bytes — the job index shadows result documents, so
	// it needs a byte bound just like the cache. Beyond either bound the
	// oldest settled jobs are retired, index and persisted state both.
	// <= 0 means 4096 jobs and 256 MB.
	JobHistory      int
	JobHistoryBytes int64
	// StateDir enables persistence (job specs, results, exploration
	// checkpoints); empty keeps everything in memory.
	StateDir string
	// MaxRequestBytes bounds request bodies on the JSON endpoints
	// (<= 0 means 1 MB). The trace-replay body is exempt: traces stream
	// and may be arbitrarily large.
	MaxRequestBytes int64
	// MaxSyncSims bounds simulations running inline in synchronous
	// handlers (/v1/run misses, /v1/replay) — the synchronous
	// counterpart of the job queue's bound; excess requests get 503.
	// <= 0 means 2 × GOMAXPROCS.
	MaxSyncSims int
	// MaxInstrPerCore caps the per-core instruction budget a request may
	// ask for, so one request cannot pin the CPUs indefinitely (the
	// paper's runs use 1M). <= 0 means 64M.
	MaxInstrPerCore uint64
	// Cluster, when non-nil, makes this server a coordinator: sweeps and
	// explorations shard across the coordinator's runner pool (see
	// internal/cluster), and the mux gains the cluster join/heartbeat
	// endpoints plus /metrics dispatch counters. Results are
	// byte-identical to local execution; with the coordinator's
	// LocalFallback set, a pool with no live runners degrades to exactly
	// the local path.
	Cluster *cluster.Coordinator
	// Obs is the server's observability plane: its registry backs
	// /metrics (and, when Cluster is set, receives the coordinator's
	// dispatch counters), its tracer turns requests and jobs into spans,
	// and its flight recorder backs /debug/events. nil means a fresh
	// enabled plane; pass obs.Nop() for a fully disabled one (empty
	// /metrics, no spans, zero observability allocations).
	Obs *obs.Obs
	// Log receives structured operational log records; nil discards
	// them.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	if o.JobHistoryBytes <= 0 {
		o.JobHistoryBytes = 256 << 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 1 << 20
	}
	if o.MaxSyncSims <= 0 {
		o.MaxSyncSims = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxInstrPerCore == 0 {
		o.MaxInstrPerCore = 64 << 20
	}
	if o.Obs == nil {
		o.Obs = obs.New(obs.Options{})
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return o
}

// Server is the simulation service. Create one with New, expose
// Handler() over any net/http server, and call Shutdown to drain.
type Server struct {
	opts     Options
	store    *store.Store
	flight   *store.Flight[[]byte]
	jobs     *jobManager
	metrics  *metrics
	mux      *http.ServeMux
	draining atomic.Bool
	syncSem  chan struct{} // bounds inline simulations (/v1/run, /v1/replay)
	// sims counts engine simulations actually executed on behalf of
	// this server — memo and store hits don't count — wired as the
	// SimCounter of every runner the server creates and attached to the
	// registry as hybridmem_sims_total.
	sims obs.Counter

	// Execution seams. Tests substitute counting or blocking stand-ins
	// to pin the concurrency contracts (one simulation per fingerprint,
	// drain semantics) without timing-dependent real runs.
	runOne       func(designName, workloadName string, cfg api.Config) (sim.Result, error)
	runOneSeries func(designName, workloadName string, cfg api.Config, topts exp.TelemetryOptions) (sim.Result, *telemetry.Series, error)
	runSweep     func(ctx context.Context, designs, workloads []string, cfg api.Config, progress func(done, total int)) ([]sim.Result, error)
	runExplore   func(ctx context.Context, req exploreRequest, checkpoint string, resume bool, progress func(dse.Event)) (dse.Result, error)
}

// New builds a Server, starts its worker pool, and — when a state
// directory is configured — recovers persisted jobs from it.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	st := opts.Store
	if st == nil {
		var err error
		st, err = store.Open(store.Options{
			MemEntries: opts.CacheEntries,
			MemBytes:   opts.CacheBytes,
			Dir:        opts.StoreDir,
			MaxBytes:   opts.StoreMaxBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:    opts,
		store:   st,
		flight:  store.NewFlight[[]byte](),
		syncSem: make(chan struct{}, opts.MaxSyncSims),
	}
	s.metrics = newMetrics(s)
	if opts.Cluster != nil {
		opts.Cluster.RegisterMetrics(s.metrics.reg)
	}
	s.runOne = s.defaultRunOne
	s.runOneSeries = s.defaultRunOneSeries
	s.runSweep = s.defaultRunSweep
	s.runExplore = s.defaultRunExplore
	s.jobs = newJobManager(s, opts.QueueDepth, opts.Workers, opts.JobHistory, opts.JobHistoryBytes)
	s.buildMux()
	if err := s.recoverJobs(); err != nil {
		// The worker pool is already running; drain it (recovery failed
		// before anything was enqueued, so this is immediate) rather
		// than leak its goroutines to a caller that retries New.
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.jobs.drain(drainCtx)
		return nil, err
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: liveness flips to 503, new jobs are
// rejected, and queued plus running jobs finish. When ctx expires first,
// running jobs are canceled (explorations flush a final checkpoint) and
// their workers awaited before the context error is returned. In-flight
// HTTP requests are the enclosing http.Server's responsibility
// (http.Server.Shutdown), ordered after this drain by hybridmem.Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.jobs.drain(ctx)
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/designs", s.instrument("/v1/designs", s.handleDesigns))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/explore", s.instrument("/v1/explore", s.handleExplore))
	// Replay accepts PUT as well as POST: the body is an upload, and
	// `curl -T` (the natural way to stream a trace file) issues PUT.
	mux.HandleFunc("POST /v1/replay", s.instrument("/v1/replay", s.handleReplay))
	mux.HandleFunc("PUT /v1/replay", s.instrument("/v1/replay", s.handleReplay))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrument("/v1/jobs/result", s.handleJobResult))
	mux.HandleFunc("GET /v1/jobs/{id}/series", s.instrument("/v1/jobs/series", s.handleJobSeries))
	if c := s.opts.Cluster; c != nil {
		mux.HandleFunc("POST /cluster/v1/join", c.HandleJoin)
		mux.HandleFunc("POST /cluster/v1/heartbeat", c.HandleHeartbeat)
	}
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
}

// --- request forms and validation ---

type runRequest struct {
	Design   string     `json:"design"`
	Workload string     `json:"workload"`
	Config   api.Config `json:"config"`
}

type sweepRequest struct {
	Designs   []string   `json:"designs"`
	Workloads []string   `json:"workloads"`
	Config    api.Config `json:"config"`
	// Series, when present, enables epoch telemetry for every run of
	// the sweep: per-epoch SSE frames stream alongside progress, and
	// the assembled series document is served at /v1/jobs/{id}/series.
	// The headline result document is byte-identical either way —
	// telemetry is passive — but a sweep with series is a distinct job
	// (the options are folded into the fingerprint). Series-enabled
	// sweeps always execute locally, even on a cluster coordinator:
	// runners return results, not series.
	Series *seriesOptions `json:"series,omitempty"`
}

// seriesOptions is the wire form of the telemetry knobs: epoch window
// in retired instructions and the per-run epoch ring bound, both
// defaulting to the telemetry package defaults when zero.
type seriesOptions struct {
	WindowInstr uint64 `json:"window_instr,omitempty"`
	MaxEpochs   int    `json:"max_epochs,omitempty"`
}

type exploreRequest struct {
	Families     []string `json:"families"`
	Workloads    []string `json:"workloads"`
	Budget       int      `json:"budget"`
	BatchSize    int      `json:"batch_size"`
	Seed         uint64   `json:"seed"`
	MaxPerParam  int      `json:"max_per_param"`
	UnboundedMax int      `json:"unbounded_max"`
	// ScreenInstrPerCore and ScreenBudget enable multi-fidelity
	// screening (see dse.Options); zero means single fidelity.
	ScreenInstrPerCore uint64     `json:"screen_instr_per_core,omitempty"`
	ScreenBudget       int        `json:"screen_budget,omitempty"`
	Config             api.Config `json:"config"`
}

// normalizeConfig substitutes the documented default for every zero
// field (negative values stay put and fail validation), so a request may
// omit config entirely. instrDefault differs per endpoint: runs and
// sweeps default to the harness's 1M instructions, explorations to the
// 200k short runs the search uses. One consequence: seed 0 is
// indistinguishable from an omitted seed in JSON and maps to the
// default seed 1 — a seed-0 run (legal, if unusual, through the Go API
// and CLI) is not representable over HTTP.
func normalizeConfig(c api.Config, instrDefault uint64) api.Config {
	if c.Scale == 0 {
		c.Scale = config.DefaultScale
	}
	if c.NMRatio16 == 0 {
		c.NMRatio16 = 1
	}
	if c.InstrPerCore == 0 {
		c.InstrPerCore = instrDefault
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// checkConfig rejects a bad or oversized configuration before any
// simulation state exists — the cheap 400 the service promises.
func (s *Server) checkConfig(cfg api.Config) error {
	if err := config.ValidateRun(cfg.Scale, cfg.NMRatio16, cfg.InstrPerCore); err != nil {
		return err
	}
	if cfg.InstrPerCore > s.opts.MaxInstrPerCore {
		return fmt.Errorf("instr_per_core %d exceeds this server's limit of %d", cfg.InstrPerCore, s.opts.MaxInstrPerCore)
	}
	return nil
}

// validateRun rejects a bad (design, workload, config) triple.
func (s *Server) validateRun(designName, workloadName string, cfg api.Config) error {
	if err := s.checkConfig(cfg); err != nil {
		return err
	}
	if _, err := design.Parse(designName); err != nil {
		return err
	}
	if _, ok := workload.ByName(workloadName); !ok {
		return fmt.Errorf("unknown workload %q", workloadName)
	}
	return nil
}

// errBusy reports sync-simulation saturation; mapped to 503.
var errBusy = fmt.Errorf("too many simulations in flight; retry shortly")

// acquireSync claims a synchronous-simulation slot without blocking —
// saturation answers 503 rather than queueing unbounded inline work.
func (s *Server) acquireSync() bool {
	select {
	case s.syncSem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseSync() { <-s.syncSem }

// --- fingerprints ---

// versionParts prefixes every fingerprint: a result cached under one
// engine or schema version can never serve a request under another. The
// canonical implementation lives with the store so every layer keys the
// same way.
func versionParts(kind string) []string { return store.VersionParts(kind) }

// fingerprint is the store's canonical content address, promoted from
// this package.
func fingerprint(parts ...string) string { return store.Fingerprint(parts...) }

func cfgParts(c api.Config) []string {
	return []string{
		"scale=" + strconv.Itoa(c.Scale),
		"ratio=" + strconv.Itoa(c.NMRatio16),
		"instr=" + strconv.FormatUint(c.InstrPerCore, 10),
		"seed=" + strconv.FormatUint(c.Seed, 10),
	}
}

func runKey(req runRequest) string {
	parts := append(versionParts("run"), req.Design, req.Workload)
	return fingerprint(append(parts, cfgParts(req.Config)...)...)
}

func sweepKey(req sweepRequest) string {
	parts := append(versionParts("sweep"), "designs="+join(req.Designs), "workloads="+join(req.Workloads))
	parts = append(parts, cfgParts(req.Config)...)
	// Appended only when telemetry is requested, so plain sweep
	// fingerprints — and every result cached under them — stay stable.
	if req.Series != nil {
		parts = append(parts,
			"series",
			"swin="+strconv.FormatUint(req.Series.WindowInstr, 10),
			"sepochs="+strconv.Itoa(req.Series.MaxEpochs),
			"sschema="+strconv.Itoa(api.SeriesSchemaVersion),
		)
	}
	return fingerprint(parts...)
}

// seriesRunKey is the cache key of a sync run with telemetry: distinct
// from the plain run key (the cached document embeds the series) and
// covering the series schema and window knobs.
func seriesRunKey(req runRequest, opts seriesOptions) string {
	parts := append(versionParts("run"), req.Design, req.Workload)
	parts = append(parts, cfgParts(req.Config)...)
	parts = append(parts,
		"series",
		"swin="+strconv.FormatUint(opts.WindowInstr, 10),
		"sepochs="+strconv.Itoa(opts.MaxEpochs),
		"sschema="+strconv.Itoa(api.SeriesSchemaVersion),
	)
	return fingerprint(parts...)
}

func exploreKey(req exploreRequest) string {
	parts := append(versionParts("explore"),
		"families="+join(req.Families),
		"workloads="+join(req.Workloads),
		"budget="+strconv.Itoa(req.Budget),
		"batch="+strconv.Itoa(req.BatchSize),
		"seed="+strconv.FormatUint(req.Seed, 10),
		"maxvals="+strconv.Itoa(req.MaxPerParam),
		"ubound="+strconv.Itoa(req.UnboundedMax),
	)
	// Appended only when screening is requested, so single-fidelity
	// fingerprints — and every result cached under them — stay stable.
	if req.ScreenInstrPerCore > 0 {
		parts = append(parts,
			"screen="+strconv.FormatUint(req.ScreenInstrPerCore, 10),
			"sbudget="+strconv.Itoa(req.ScreenBudget),
		)
	}
	return fingerprint(append(parts, cfgParts(req.Config)...)...)
}

func join(ss []string) string { return strings.Join(ss, ",") }

// --- engine execution (the default seams) ---

func (s *Server) defaultRunOne(designName, workloadName string, cfg api.Config) (sim.Result, error) {
	wl, ok := workload.ByName(workloadName)
	if !ok {
		return sim.Result{}, fmt.Errorf("unknown workload %q", workloadName)
	}
	r := &exp.Runner{
		Scale:        cfg.Scale,
		InstrPerCore: cfg.InstrPerCore,
		Seed:         cfg.Seed,
		Store:        s.store,
		SimCounter:   &s.sims,
	}
	return r.ResultErr(wl, designName, cfg.NMRatio16)
}

func (s *Server) defaultRunOneSeries(designName, workloadName string, cfg api.Config, topts exp.TelemetryOptions) (sim.Result, *telemetry.Series, error) {
	wl, ok := workload.ByName(workloadName)
	if !ok {
		return sim.Result{}, nil, fmt.Errorf("unknown workload %q", workloadName)
	}
	r := &exp.Runner{
		Scale:        cfg.Scale,
		InstrPerCore: cfg.InstrPerCore,
		Seed:         cfg.Seed,
		SimCounter:   &s.sims,
		Telemetry:    &topts,
	}
	return r.ResultSeriesErr(wl, designName, cfg.NMRatio16)
}

func (s *Server) defaultRunSweep(ctx context.Context, designs, workloads []string, cfg api.Config, progress func(done, total int)) ([]sim.Result, error) {
	r := &exp.Runner{
		Scale:        cfg.Scale,
		InstrPerCore: cfg.InstrPerCore,
		Seed:         cfg.Seed,
		Parallelism:  s.opts.Parallelism,
		Store:        s.store,
		SimCounter:   &s.sims,
	}
	specs, err := exp.SweepSpecsByName(designs, workloads, cfg.NMRatio16)
	if err != nil {
		return nil, err
	}
	return r.ResultsParallelProgress(ctx, specs, progress)
}

func (s *Server) defaultRunExplore(ctx context.Context, req exploreRequest, checkpoint string, resume bool, progress func(dse.Event)) (dse.Result, error) {
	opts := dse.Options{
		Families:           req.Families,
		Workloads:          req.Workloads,
		Budget:             req.Budget,
		BatchSize:          req.BatchSize,
		Seed:               req.Seed,
		Scale:              req.Config.Scale,
		InstrPerCore:       req.Config.InstrPerCore,
		SimSeed:            req.Config.Seed,
		Ratio16:            req.Config.NMRatio16,
		ScreenInstrPerCore: req.ScreenInstrPerCore,
		ScreenBudget:       req.ScreenBudget,
		Parallelism:        s.opts.Parallelism,
		MaxPerParam:        req.MaxPerParam,
		UnboundedMax:       req.UnboundedMax,
		Checkpoint:         checkpoint,
		Resume:             resume,
		Progress:           progress,
		Store:              s.store,
		SimCounter:         &s.sims,
	}
	// Frontier folds land in the shared phase family; the hook is not
	// part of the search fingerprint, so checkpoints are unaffected.
	if phases := obs.PhaseHist(s.opts.Obs.Registry()); phases != nil {
		opts.Phase = func(name string, d time.Duration) {
			phases.With(name).ObserveDuration(d)
		}
	}
	if s.opts.Cluster != nil {
		// The search stays on this server (RNG, frontier, checkpoints);
		// only its evaluation batches fan out across the runner pool.
		opts.Eval = s.opts.Cluster.Evaluator()
	}
	return dse.Search(ctx, opts)
}

// --- job execution ---

// runJob executes one dequeued job: a cached result document settles it
// without touching the engines; otherwise the engine runs, the document
// is cached and (when persistence is on) written next to the job spec.
func (s *Server) runJob(ctx context.Context, j *job) {
	j.start()
	// The job span is the root of a sweep's or exploration's timeline:
	// cluster batches and shards hang off it through the context.
	sp := s.opts.Obs.Tracer().StartSpan("job",
		obs.String("job", j.ID), obs.String("kind", j.Kind))
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	s.opts.Log.Info("serve: job started", "job", j.ID, "kind", j.Kind)
	var data []byte
	var err error
	lookupStart := time.Now()
	cached, _, ok := s.store.Get(j.ID)
	s.metrics.phaseLookup.ObserveDuration(time.Since(lookupStart))
	if ok {
		sp.Event("result_cached")
		data = cached
	} else {
		s.metrics.inflightSims.Add(1)
		switch j.Kind {
		case "sweep":
			data, err = s.execSweep(ctx, j)
		case "explore":
			data, err = s.execExplore(ctx, j)
		default:
			err = fmt.Errorf("unknown job kind %q", j.Kind)
		}
		s.metrics.inflightSims.Add(-1)
		if err == nil {
			s.store.Put(j.ID, data)
		}
	}
	if err == nil && s.opts.StateDir != "" {
		if werr := atomicfile.Write(s.statePath("result", j.ID), data); werr != nil {
			s.opts.Log.Warn("serve: persist result failed", "job", j.ID, "err", werr)
		}
		if j.Kind == "explore" {
			os.Remove(s.statePath("ckpt", j.ID)) // resumed no more; the result is final
		}
	}
	j.finish(data, err)
	if err != nil {
		s.metrics.jobsFailed.Inc()
		s.opts.Log.Warn("serve: job failed", "job", j.ID, "kind", j.Kind, "err", err)
	} else {
		s.metrics.jobsDone.Inc()
		s.opts.Log.Info("serve: job done", "job", j.ID, "kind", j.Kind)
	}
}

type sweepProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

func (s *Server) execSweep(ctx context.Context, j *job) ([]byte, error) {
	req := j.sweep
	if req == nil {
		return nil, fmt.Errorf("sweep job %s has no request payload", j.ID)
	}
	progress := func(done, total int) {
		if data, merr := json.Marshal(sweepProgress{Done: done, Total: total}); merr == nil {
			j.publishProgress(data)
		}
	}
	if req.Series != nil {
		// Telemetry rides on local execution even under a coordinator:
		// runners return results, not series, and passivity guarantees
		// the headline document matches the clustered path byte for byte.
		return s.execSweepSeries(ctx, j, *req, progress)
	}
	if s.opts.Cluster != nil {
		return s.execClusterSweep(ctx, *req, progress)
	}
	simStart := time.Now()
	res, err := s.runSweep(ctx, req.Designs, req.Workloads, req.Config, progress)
	s.metrics.phaseSim.ObserveDuration(time.Since(simStart))
	if err != nil {
		return nil, err
	}
	return api.Encode(api.NewSweep(res))
}

// epochEvent is the wire form of one live per-epoch SSE frame: the
// run's position in the sweep, its identity, and the closed epoch.
type epochEvent struct {
	Run      int       `json:"run"`
	Design   string    `json:"design"`
	Workload string    `json:"workload"`
	Epoch    api.Epoch `json:"epoch"`
}

// execSweepSeries runs a telemetry-enabled sweep locally: every run is
// sampled, each closed epoch streams as an "epoch" SSE frame (and
// refreshes the hybridmem_sim_epoch_* gauges), per-run series land on
// the job as they settle — so /v1/jobs/{id}/series shows a partial
// document mid-sweep — and the settled series document is rendered
// once when the sweep completes. The returned headline document is the
// ordinary sweep document, byte-identical to an unsampled sweep.
func (s *Server) execSweepSeries(ctx context.Context, j *job, req sweepRequest, progress func(done, total int)) ([]byte, error) {
	specs, err := exp.SweepSpecsByName(req.Designs, req.Workloads, req.Config.NMRatio16)
	if err != nil {
		return nil, err
	}
	entries := make([]api.SweepSeriesEntry, len(specs))
	for i, sp := range specs {
		entries[i] = api.SweepSeriesEntry{Design: sp.Design, Workload: sp.Workload.Name, Series: api.FromSeries(nil)}
	}
	j.initSeries(entries)
	r := &exp.Runner{
		Scale:        req.Config.Scale,
		InstrPerCore: req.Config.InstrPerCore,
		Seed:         req.Config.Seed,
		Parallelism:  s.opts.Parallelism,
		SimCounter:   &s.sims,
		Telemetry: &exp.TelemetryOptions{
			WindowInstr: req.Series.WindowInstr,
			MaxEpochs:   req.Series.MaxEpochs,
			OnEpoch: func(run int, e telemetry.Epoch) {
				s.metrics.noteEpoch(e)
				ev := epochEvent{Run: run, Design: specs[run].Design, Workload: specs[run].Workload.Name, Epoch: api.FromEpoch(e)}
				if data, merr := json.Marshal(ev); merr == nil {
					j.publishEvent("epoch", data)
				}
			},
			OnSeries: func(run int, ser *telemetry.Series) {
				j.setSeries(run, api.FromSeries(ser))
			},
		},
	}
	simStart := time.Now()
	res, _, err := r.ResultsParallelSeries(ctx, specs, progress)
	s.metrics.phaseSim.ObserveDuration(time.Since(simStart))
	if err != nil {
		return nil, err
	}
	seriesDoc, err := j.settleSeries()
	if err != nil {
		return nil, err
	}
	if s.opts.StateDir != "" {
		if werr := atomicfile.Write(s.statePath("series", j.ID), seriesDoc); werr != nil {
			s.opts.Log.Warn("serve: persist series failed", "job", j.ID, "err", werr)
		}
	}
	return api.Encode(api.NewSweep(res))
}

// execClusterSweep shards the sweep across the runner pool. Outcomes
// arrive as the canonical wire Result (computed on the runners by the
// same api.FromSim mapping, in the same SweepSpecsByName order), so the
// assembled document is byte-identical to the local path's encoding.
func (s *Server) execClusterSweep(ctx context.Context, req sweepRequest, progress func(done, total int)) ([]byte, error) {
	specs, err := exp.SweepSpecsByName(req.Designs, req.Workloads, req.Config.NMRatio16)
	if err != nil {
		return nil, err
	}
	runs := make([]cluster.Run, len(specs))
	for i, sp := range specs {
		runs[i] = cluster.Run{Design: sp.Design, Workload: sp.Workload.Name, Ratio16: sp.Ratio16}
	}
	cfg := cluster.Config{Scale: req.Config.Scale, InstrPerCore: req.Config.InstrPerCore, Seed: req.Config.Seed}
	outs, err := s.opts.Cluster.Run(ctx, cfg, runs, progress)
	if err != nil {
		return nil, err
	}
	doc := api.Sweep{Schema: api.SchemaVersion, Results: make([]api.Result, len(outs))}
	var errs []error
	for i, o := range outs {
		if o.Err != "" {
			errs = append(errs, errors.New(o.Err))
			continue
		}
		doc.Results[i] = o.Result
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return api.Encode(doc)
}

type exploreProgress struct {
	Batch        int `json:"batch"`
	Evaluated    int `json:"evaluated"`
	Budget       int `json:"budget"`
	SpaceSize    int `json:"space_size"`
	FrontierSize int `json:"frontier_size"`
}

func (s *Server) execExplore(ctx context.Context, j *job) ([]byte, error) {
	req := j.explore
	if req == nil {
		return nil, fmt.Errorf("explore job %s has no request payload", j.ID)
	}
	checkpoint, resume := "", false
	if s.opts.StateDir != "" {
		checkpoint = s.statePath("ckpt", j.ID)
		if _, err := os.Stat(checkpoint); err == nil {
			resume = true
		}
	}
	res, err := s.runExplore(ctx, *req, checkpoint, resume, func(e dse.Event) {
		if e.Done {
			return
		}
		if data, merr := json.Marshal(exploreProgress{
			Batch: e.Round, Evaluated: e.Evaluated, Budget: e.Budget,
			SpaceSize: e.SpaceSize, FrontierSize: e.FrontierSize,
		}); merr == nil {
			j.publishProgress(data)
		}
	})
	if err != nil {
		return nil, err
	}
	return api.Encode(res.APIDoc())
}

// --- HTTP plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := api.Encode(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func writeDoc(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body with a size bound and strict
// field checking, so typos in request fields fail loudly instead of
// silently running a default simulation.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// rejectDraining answers 503 during shutdown; handlers that start new
// work call it first.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return true
	}
	return false
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	body := map[string]string{"status": "ok"}
	if c := s.opts.Cluster; c != nil {
		body["role"] = "coordinator"
		body["live_runners"] = strconv.Itoa(c.Stats().RunnersLive)
	}
	writeJSON(w, http.StatusOK, body)
}

type designInfo struct {
	Name    string `json:"name"`
	Grammar string `json:"grammar"`
	Kind    string `json:"kind"`
	Doc     string `json:"doc"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	infos := design.AllInfos()
	out := make([]designInfo, len(infos))
	for i, info := range infos {
		out[i] = designInfo{Name: info.Name, Grammar: info.Grammar(), Kind: info.Kind.String(), Doc: info.Doc}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, spec := range specs {
		names[i] = spec.Name
	}
	writeJSON(w, http.StatusOK, names)
}

// parseSeriesQuery reads the telemetry query parameters of a sync run:
// ?series=1 enables epoch sampling, ?window_instr= and ?max_epochs=
// tune it. Returns nil when series is absent or falsy.
func parseSeriesQuery(r *http.Request) (*seriesOptions, error) {
	q := r.URL.Query()
	switch q.Get("series") {
	case "", "0", "false":
		return nil, nil
	}
	opts := &seriesOptions{}
	if v := q.Get("window_instr"); v != "" {
		w, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad window_instr: %v", err)
		}
		opts.WindowInstr = w
	}
	if v := q.Get("max_epochs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad max_epochs: %v", err)
		}
		opts.MaxEpochs = n
	}
	return opts, nil
}

// handleRun serves one simulation synchronously: cache first, then the
// singleflight slot — concurrent identical requests execute exactly one
// simulation and share its bytes. With ?series=1 the response is the
// RunSeries document (result plus epoch telemetry) instead of the plain
// Run document; the embedded result is byte-identical to the plain one.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	series, serr := parseSeriesQuery(r)
	if serr != nil {
		writeError(w, http.StatusBadRequest, "%v", serr)
		return
	}
	req.Config = normalizeConfig(req.Config, 1_000_000)
	if err := s.validateRun(req.Design, req.Workload, req.Config); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.rejectDraining(w) {
		return
	}
	if series != nil {
		s.handleRunSeries(w, req, *series)
		return
	}
	canonStart := time.Now()
	key := runKey(req)
	s.metrics.phaseCanon.ObserveDuration(time.Since(canonStart))
	lookupStart := time.Now()
	data, _, ok := s.store.Get(key)
	s.metrics.phaseLookup.ObserveDuration(time.Since(lookupStart))
	if ok {
		writeDoc(w, data)
		return
	}
	data, err, shared := s.flight.Do(key, func() ([]byte, error) {
		// A caller that lost the race against a completed flight sees the
		// result here without re-simulating.
		if doc, ok := s.store.Peek(key); ok {
			return doc, nil
		}
		if !s.acquireSync() {
			return nil, errBusy
		}
		defer s.releaseSync()
		s.metrics.inflightSims.Add(1)
		defer s.metrics.inflightSims.Add(-1)
		simStart := time.Now()
		sr, err := s.runOne(req.Design, req.Workload, req.Config)
		s.metrics.phaseSim.ObserveDuration(time.Since(simStart))
		if err != nil {
			return nil, err
		}
		doc, err := api.Encode(api.NewRun(sr))
		if err != nil {
			return nil, err
		}
		s.store.Put(key, doc)
		return doc, nil
	})
	if shared {
		s.metrics.flightShared.Inc()
	}
	switch {
	case errors.Is(err, errBusy):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "run failed: %v", err)
	default:
		writeDoc(w, data)
	}
}

// handleRunSeries is the ?series=1 arm of handleRun: same cache +
// singleflight discipline under a distinct fingerprint (the cached
// bytes embed the series), executing through the sampled runner seam.
// Series output is deterministic, so cached repeats are byte-identical
// to fresh executions.
func (s *Server) handleRunSeries(w http.ResponseWriter, req runRequest, opts seriesOptions) {
	canonStart := time.Now()
	key := seriesRunKey(req, opts)
	s.metrics.phaseCanon.ObserveDuration(time.Since(canonStart))
	lookupStart := time.Now()
	data, _, ok := s.store.Get(key)
	s.metrics.phaseLookup.ObserveDuration(time.Since(lookupStart))
	if ok {
		writeDoc(w, data)
		return
	}
	data, err, shared := s.flight.Do(key, func() ([]byte, error) {
		if doc, ok := s.store.Peek(key); ok {
			return doc, nil
		}
		if !s.acquireSync() {
			return nil, errBusy
		}
		defer s.releaseSync()
		s.metrics.inflightSims.Add(1)
		defer s.metrics.inflightSims.Add(-1)
		topts := exp.TelemetryOptions{
			WindowInstr: opts.WindowInstr,
			MaxEpochs:   opts.MaxEpochs,
			OnEpoch:     func(_ int, e telemetry.Epoch) { s.metrics.noteEpoch(e) },
		}
		simStart := time.Now()
		sr, ser, err := s.runOneSeries(req.Design, req.Workload, req.Config, topts)
		s.metrics.phaseSim.ObserveDuration(time.Since(simStart))
		if err != nil {
			return nil, err
		}
		doc, err := api.Encode(api.NewRunSeries(sr, ser))
		if err != nil {
			return nil, err
		}
		s.store.Put(key, doc)
		return doc, nil
	})
	if shared {
		s.metrics.flightShared.Inc()
	}
	switch {
	case errors.Is(err, errBusy):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "run failed: %v", err)
	default:
		writeDoc(w, data)
	}
}

type submitResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

func (s *Server) submitJob(w http.ResponseWriter, j *job) {
	if s.rejectDraining(w) {
		return
	}
	j, err := s.jobs.submit(j)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, submitResponse{JobID: j.ID, State: state})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Designs) == 0 || len(req.Workloads) == 0 {
		writeError(w, http.StatusBadRequest, "designs and workloads are required (a sweep over nothing is almost never what you meant)")
		return
	}
	req.Config = normalizeConfig(req.Config, 1_000_000)
	for _, d := range req.Designs {
		if err := s.validateRun(d, req.Workloads[0], req.Config); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	for _, wl := range req.Workloads {
		if _, ok := workload.ByName(wl); !ok {
			writeError(w, http.StatusBadRequest, "unknown workload %q", wl)
			return
		}
	}
	j := newJob(sweepKey(req), "sweep")
	j.sweep = &req
	s.submitJob(w, j)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Budget <= 0 {
		writeError(w, http.StatusBadRequest, "budget must be > 0 (exhaustive exploration is not offered over HTTP; bound the search)")
		return
	}
	req.Config = normalizeConfig(req.Config, 200_000)
	if err := s.checkConfig(req.Config); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ScreenInstrPerCore > 0 {
		screenCfg := req.Config
		screenCfg.InstrPerCore = req.ScreenInstrPerCore
		if err := s.checkConfig(screenCfg); err != nil {
			writeError(w, http.StatusBadRequest, "screen fidelity: %v", err)
			return
		}
	}
	for _, f := range req.Families {
		if _, ok := design.LookupInfo(f); !ok {
			writeError(w, http.StatusBadRequest, "unknown design family %q", f)
			return
		}
	}
	for _, wl := range req.Workloads {
		if _, ok := workload.ByName(wl); !ok {
			writeError(w, http.StatusBadRequest, "unknown workload %q", wl)
			return
		}
	}
	j := newJob(exploreKey(req), "explore")
	j.explore = &req
	s.submitJob(w, j)
}

// handleReplay replays the request body as a memory trace. The body
// streams straight into the trace decoder — constant memory at any
// trace size — so parameters arrive as query values, and the result is
// not cached (serving a repeat from cache would require hashing the
// whole body first, which is exactly the buffering this path exists to
// avoid).
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	designName := q.Get("design")
	if designName == "" {
		writeError(w, http.StatusBadRequest, "design query parameter is required")
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "upload"
	}
	intQ := func(key string, def int) (int, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		return strconv.Atoi(v)
	}
	uintQ := func(key string, def uint64) (uint64, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		return strconv.ParseUint(v, 10, 64)
	}
	var cfg api.Config
	var mlp, window int
	var err error
	if cfg.Scale, err = intQ("scale", 0); err == nil {
		if cfg.NMRatio16, err = intQ("nm_ratio16", 0); err == nil {
			if cfg.InstrPerCore, err = uintQ("instr_per_core", 0); err == nil {
				if cfg.Seed, err = uintQ("seed", 0); err == nil {
					if mlp, err = intQ("mlp", 4); err == nil {
						window, err = intQ("window", 0)
					}
				}
			}
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query parameter: %v", err)
		return
	}
	cfg = normalizeConfig(cfg, 1_000_000)
	if mlp < 1 {
		writeError(w, http.StatusBadRequest, "mlp must be >= 1, got %d", mlp)
		return
	}
	if verr := s.checkConfig(cfg); verr != nil {
		writeError(w, http.StatusBadRequest, "%v", verr)
		return
	}
	if _, perr := design.Parse(designName); perr != nil {
		writeError(w, http.StatusBadRequest, "%v", perr)
		return
	}
	if s.rejectDraining(w) {
		return
	}
	if !s.acquireSync() {
		writeError(w, http.StatusServiceUnavailable, "%v", errBusy)
		return
	}
	defer s.releaseSync()
	runner := &exp.Runner{Scale: cfg.Scale, InstrPerCore: cfg.InstrPerCore, Seed: cfg.Seed, TraceWindow: window, SimCounter: &s.sims}
	s.metrics.inflightSims.Add(1)
	res, err := runner.RunTrace(name, r.Body, designName, cfg.NMRatio16, mlp)
	s.metrics.inflightSims.Add(-1)
	if err != nil {
		// Everything RunTrace reports — decode errors, window skew, an
		// empty trace — originates in the uploaded bytes.
		writeError(w, http.StatusBadRequest, "replay failed: %v", err)
		return
	}
	data, err := api.Encode(api.NewRun(res))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeDoc(w, data)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	state, errMsg, result := j.state, j.errMsg, j.result
	j.mu.Unlock()
	switch state {
	case jobDone:
		writeDoc(w, result)
	case jobFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	default:
		writeError(w, http.StatusConflict, "job is %s; result not ready", state)
	}
}

// handleJobSeries serves a telemetry sweep's time-series document.
// Mid-sweep it returns what has settled so far, marked "partial": true;
// after completion it returns the settled document (also recovered from
// the state directory across restarts). Jobs submitted without series
// options have no series to serve and answer 404.
func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	data, _, ok := j.seriesDoc()
	if !ok {
		writeError(w, http.StatusNotFound, "job %q has no telemetry series (submit the sweep with \"series\" options)", j.ID)
		return
	}
	writeDoc(w, data)
}

// handleJobEvents streams a job's progress as server-sent events:
// any buffered latest progress first, then live events, then a final
// "done" event. Settled jobs replay their outcome immediately.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, backlog := j.subscribe()
	defer j.unsubscribe(ch)
	for _, frame := range backlog {
		w.Write(frame)
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			w.Write(frame)
			flusher.Flush()
		}
	}
}
