package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hybridmem/internal/api"
)

// BenchmarkServeCachedRun measures the full HTTP hot path of a repeated
// request: decode, validate, fingerprint, cache hit, write — no
// simulation. This is the latency the service promises for the common
// case.
func BenchmarkServeCachedRun(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	req := runRequest{
		Design:   "HYBRID2",
		Workload: "lbm",
		Config:   api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 20_000, Seed: 1},
	}
	body, _ := json.Marshal(req)
	warm := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, warm)
	if w.Code != http.StatusOK {
		b.Fatalf("warmup: %d %s", w.Code, w.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("cached run: %d", w.Code)
		}
	}
}

// BenchmarkServeColdRun measures the miss path: every iteration changes
// the seed, so the fingerprint is fresh and the engine actually runs a
// (short) simulation.
func BenchmarkServeColdRun(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := runRequest{
			Design:   "HYBRID2",
			Workload: "lbm",
			Config:   api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 20_000, Seed: uint64(i + 1)},
		}
		body, _ := json.Marshal(req)
		r := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("cold run: %d %s", w.Code, w.Body)
		}
	}
}
