package dse

import "hybridmem/internal/api"

// APIDoc renders the search outcome as the shared versioned wire
// document of internal/api — the single search→wire mapping. The
// hybridmemd server encodes it directly; the public layer captures the
// same encoding on ExploreResult (WireJSON) for cmd/dse -json, so the
// two surfaces cannot drift (the CI explore diff re-proves it).
func (r Result) APIDoc() api.Explore {
	return api.Explore{
		Schema:    api.SchemaVersion,
		Frontier:  apiPoints(r.Frontier),
		Evaluated: apiPoints(r.Evaluated),
		SpaceSize: r.SpaceSize,
		Batches:   r.Rounds,
	}
}

func apiPoints(pts []Point) []api.ExplorePoint {
	out := make([]api.ExplorePoint, len(pts))
	for i, p := range pts {
		out[i] = api.ExplorePoint{
			Design:     p.Design,
			Speedup:    p.Speedup,
			CapacityMB: p.CapacityMB,
			TrafficGB:  p.TrafficGB,
			Infeasible: p.Infeasible,
			Err:        p.Err,
		}
	}
	return out
}
