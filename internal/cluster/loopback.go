package cluster

import "context"

// loopbackTransport executes shards by direct call — the transport of
// AttachLoopback runners and the coordinator's local fallback. It goes
// through exactly the same dispatch machinery (sharding, in-flight
// bounds, stealing, retry, index-ordered merge) as an HTTP runner, so
// loopback tests and benchmarks exercise the real execution plane minus
// the sockets.
type loopbackTransport struct {
	exec Exec
}

func (t loopbackTransport) runShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	return t.exec.RunShard(ctx, req)
}
