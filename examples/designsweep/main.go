// Design sweep: a miniature of the paper's Figure 11 exploration. Sweeps
// Hybrid2's DRAM-cache size, sector size and cache-line size on two
// contrasting workloads, showing why the paper settles on 64 MB / 2 KB
// sectors / 256 B lines: small lines miss the prefetch benefit of spatial
// locality, large lines over-fetch on irregular workloads.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	cfg := hybridmem.DefaultConfig()
	cfg.InstrPerCore = 400_000

	workloads := []string{"lbm", "omnetpp"} // streaming vs pointer-chasing
	fmt.Printf("%-18s", "config")
	for _, wl := range workloads {
		fmt.Printf("  %10s", wl)
	}
	fmt.Println()

	for _, cacheMB := range []int{64, 128} {
		for _, sectorKB := range []int{2, 4} {
			for _, line := range []int{64, 256, 512} {
				design := fmt.Sprintf("H2DSE-%d-%d-%d", cacheMB, sectorKB, line)
				fmt.Printf("%2dMB-%dKB-%-4dB    ", cacheMB, sectorKB, line)
				for _, wl := range workloads {
					sp, err := hybridmem.Speedup(design, wl, cfg)
					if err != nil {
						log.Fatal(err)
					}
					fmt.Printf("  %9.2fx", sp)
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("\nThe paper's chosen point is 64MB-2KB-256B (Fig. 11).")
}
