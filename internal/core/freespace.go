// Free-space awareness: the extension sketched in §3.8 of the paper.
// Chameleon showed that the OS does not always use all of memory and that
// a migration mechanism can exploit unused space to avoid swaps. Hybrid2
// can support the same through ISA-Alloc/ISA-Free style hints: the remap
// structures mark unused sectors, and the NM allocator (Fig. 8) skips the
// NM-to-FM copy when the displaced sector holds no live data.
//
// This file implements that extension. It is off by default (the paper
// evaluates the base design); enable it with Config.FreeSpaceAware and
// deliver hints through MarkFree/MarkUsed.

package core

import "hybridmem/internal/memtypes"

// MarkFree records an ISA-Free hint: the logical sectors fully covered by
// [addr, addr+bytes) hold no live data. Displacing an unused sector from
// NM needs no data copy, and evicting one from the DRAM cache needs no
// write-back. The hint is ignored unless Config.FreeSpaceAware is set.
func (h *Hybrid2) MarkFree(addr memtypes.Addr, bytes uint64) {
	if !h.cfg.FreeSpaceAware {
		return
	}
	h.forEachSector(addr, bytes, func(l uint32) { h.unused[l] = true })
}

// MarkUsed records an ISA-Alloc hint: the sectors overlapping
// [addr, addr+bytes) hold (or are about to hold) live data again.
func (h *Hybrid2) MarkUsed(addr memtypes.Addr, bytes uint64) {
	if !h.cfg.FreeSpaceAware {
		return
	}
	h.forEachSector(addr, bytes, func(l uint32) { h.unused[l] = false })
}

// UnusedSectors returns how many logical sectors are currently hinted
// free (0 when the extension is disabled).
func (h *Hybrid2) UnusedSectors() uint64 {
	var n uint64
	for _, u := range h.unused {
		if u {
			n++
		}
	}
	return n
}

// SavedCopies reports how many sector copies the free-space extension
// elided (allocation copies plus eviction write-backs).
func (h *Hybrid2) SavedCopies() uint64 { return h.savedCopies }

func (h *Hybrid2) forEachSector(addr memtypes.Addr, bytes uint64, f func(uint32)) {
	sb := uint64(h.cfg.SectorBytes)
	first := (uint64(addr) + sb - 1) / sb // only fully covered sectors
	last := (uint64(addr) + bytes) / sb
	n := uint64(h.Sectors())
	for s := first; s < last && s < n; s++ {
		f(uint32(s))
	}
}

// sectorUnused reports whether a logical sector is hinted free.
func (h *Hybrid2) sectorUnused(logical uint32) bool {
	return h.cfg.FreeSpaceAware && h.unused[logical]
}
