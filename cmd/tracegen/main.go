// Command tracegen exports one of the built-in synthetic workloads as a
// text trace (see internal/trace for the format), so users can inspect
// what the generator produces, post-process it, or use it as a template
// for feeding captured traces back via `hybrid2sim -trace`.
//
// Usage:
//
//	tracegen -workload mcf -instr 100000 > mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridmem/internal/config"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	wl := flag.String("workload", "mcf", "workload to export")
	instr := flag.Uint64("instr", 100_000, "instructions per core")
	scale := flag.Int("scale", 16, "capacity scale divisor")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	spec, ok := workload.ByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *wl)
		os.Exit(1)
	}
	tr := &trace.Trace{Cores: make([][]trace.Record, config.Cores)}
	for core := 0; core < config.Cores; core++ {
		s := workload.NewStream(spec, core, *scale, *instr, *seed)
		for {
			gap, addr, write, ok := s.Next()
			if !ok {
				break
			}
			tr.Cores[core] = append(tr.Cores[core], trace.Record{Gap: gap, Addr: addr, Write: write})
		}
	}
	fmt.Printf("# workload %s, %d instr/core, scale 1/%d, seed %d\n", *wl, *instr, *scale, *seed)
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
