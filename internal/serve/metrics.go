package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/obs"
	"hybridmem/internal/telemetry"
)

// metrics is the server's face of the shared observability plane: every
// operational counter, gauge and latency summary lives in one
// obs.Registry, which also renders /metrics. Directly-updated handles
// are registered here once; statistics owned elsewhere — store tiers,
// queue depths, cluster dispatch counters — fold in as func-backed
// families read at scrape time, so the owners stay the single source of
// truth and there is exactly one rendering path.
type metrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // hybridmem_http_requests_total{path}
	latency  *obs.HistogramVec // hybridmem_http_request_duration_us{path}

	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	flightShared *obs.Counter
	inflightSims *obs.Gauge

	// Per-phase request timers, children of the process-wide phase
	// family (obs.PhaseHist) shared with the cluster layer.
	phaseCanon  *obs.Histogram
	phaseLookup *obs.Histogram
	phaseSim    *obs.Histogram

	// Epoch telemetry bridge: every epoch closed by a sampled run on
	// this server bumps the counter and becomes the hybridmem_sim_epoch_*
	// family's snapshot — "what is the simulation doing right now", the
	// scrape-time face of the full time-series documents.
	epochsTotal *obs.Counter
	epochMu     sync.Mutex
	lastEpoch   telemetry.Epoch
}

// newMetrics registers the server's metric families on its observability
// plane's registry. With a disabled plane (obs.Nop) the registry is nil,
// every handle comes back nil, and all updates are allocation-free
// no-ops. s.store and s.opts must be set; s.jobs need not exist yet
// (the queue gauges read it at scrape time).
func newMetrics(s *Server) *metrics {
	r := s.opts.Obs.Registry()
	m := &metrics{reg: r}

	start := time.Now()
	r.GaugeFunc("hybridmem_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("hybridmem_draining", "1 while the server drains for shutdown, 0 otherwise.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	// The hybridmem_cache_* family is the store's memory tier, keeping
	// the names stable across the move into internal/store.
	r.CounterFunc("hybridmem_cache_hits_total", "Result documents served from the store's memory tier.",
		func() float64 { return float64(s.store.Stats().MemHits) })
	r.CounterFunc("hybridmem_cache_misses_total", "Result lookups that missed the store's memory tier.",
		func() float64 { return float64(s.store.Stats().MemMisses) })
	r.CounterFunc("hybridmem_cache_evictions_total", "Entries evicted from the store's memory tier.",
		func() float64 { return float64(s.store.Stats().MemEvictions) })
	r.GaugeFunc("hybridmem_cache_entries", "Entries resident in the store's memory tier.",
		func() float64 { return float64(s.store.Stats().MemEntries) })
	r.GaugeFunc("hybridmem_cache_bytes", "Bytes resident in the store's memory tier.",
		func() float64 { return float64(s.store.Stats().MemBytes) })
	r.GaugeFunc("hybridmem_cache_capacity_bytes", "Configured byte bound of the memory tier.",
		func() float64 { return float64(s.opts.CacheBytes) })
	r.GaugeFunc("hybridmem_cache_capacity_entries", "Configured entry bound of the memory tier.",
		func() float64 { return float64(s.opts.CacheEntries) })
	r.GaugeFunc("hybridmem_cache_hit_ratio", "Memory-tier hits over lookups; 0 before any lookup.",
		func() float64 {
			cs := s.store.Stats()
			total := cs.MemHits + cs.MemMisses
			if total == 0 {
				return 0
			}
			return float64(cs.MemHits) / float64(total)
		})
	if s.store.HasDisk() {
		r.CounterFunc("hybridmem_store_disk_hits_total", "Result documents served from the store's disk tier.",
			func() float64 { return float64(s.store.Stats().DiskHits) })
		r.CounterFunc("hybridmem_store_disk_misses_total", "Result lookups that missed the disk tier too.",
			func() float64 { return float64(s.store.Stats().DiskMisses) })
		r.CounterFunc("hybridmem_store_disk_evictions_total", "Entries garbage-collected from the disk tier.",
			func() float64 { return float64(s.store.Stats().DiskEvictions) })
		r.CounterFunc("hybridmem_store_corrupt_discarded_total", "Disk entries discarded for checksum or decode failures.",
			func() float64 { return float64(s.store.Stats().DiskCorrupt) })
		r.GaugeFunc("hybridmem_store_disk_entries", "Entries resident in the disk tier.",
			func() float64 { return float64(s.store.Stats().DiskEntries) })
		r.GaugeFunc("hybridmem_store_disk_bytes", "Bytes resident in the disk tier.",
			func() float64 { return float64(s.store.Stats().DiskBytes) })
		r.GaugeFunc("hybridmem_store_disk_capacity_bytes", "Configured byte bound of the disk tier; 0 means unbounded.",
			func() float64 { return float64(s.opts.StoreMaxBytes) })
	}

	r.RegisterCounter("hybridmem_sims_total",
		"Engine simulations actually executed (memo, store and singleflight hits excluded).", &s.sims)
	m.flightShared = r.Counter("hybridmem_singleflight_shared_total",
		"Requests that shared another in-flight identical simulation's result.")
	m.inflightSims = r.Gauge("hybridmem_inflight_sims",
		"Simulations currently executing on behalf of requests and jobs.")

	r.GaugeFunc("hybridmem_jobs_queue_depth", "Jobs queued but not yet running.",
		func() float64 {
			if s.jobs == nil {
				return 0
			}
			return float64(len(s.jobs.queue))
		})
	r.GaugeFunc("hybridmem_jobs_queue_capacity", "Configured bound of the job queue.",
		func() float64 {
			if s.jobs == nil {
				return 0
			}
			return float64(cap(s.jobs.queue))
		})
	r.GaugeFunc("hybridmem_jobs_running", "Jobs currently executing on the worker pool.",
		func() float64 {
			if s.jobs == nil {
				return 0
			}
			return float64(s.jobs.running.Load())
		})
	jobs := r.CounterVec("hybridmem_jobs_total", "Settled jobs by outcome.", "state")
	m.jobsDone = jobs.With("done")
	m.jobsFailed = jobs.With("failed")

	m.requests = r.CounterVec("hybridmem_http_requests_total", "Requests served, by route.", "path")
	m.latency = r.HistogramVec("hybridmem_http_request_duration_us",
		"Request latency in microseconds, by route.", "path")

	phases := obs.PhaseHist(r)
	m.phaseCanon = phases.With("canonicalize")
	m.phaseLookup = phases.With("store_lookup")
	m.phaseSim = phases.With("simulate")

	// Build identity: a constant-1 gauge whose labels carry the wire
	// schema versions and toolchain, the conventional shape for joining
	// version info onto every other series of a scrape.
	r.GaugeSamplesFunc("hybridmem_build_info",
		"Constant 1; labels identify the engine and schema versions and the Go toolchain.",
		[]string{"engine_version", "schema_version", "go_version"},
		func() []obs.Sample {
			return []obs.Sample{{
				Labels: []string{strconv.Itoa(api.EngineVersion), strconv.Itoa(api.SchemaVersion), runtime.Version()},
				Value:  1,
			}}
		})

	m.epochsTotal = r.Counter("hybridmem_sim_epochs_total",
		"Telemetry epochs closed by sampled simulations on this server.")
	lastEpoch := func(read func(e telemetry.Epoch) float64) func() float64 {
		return func() float64 {
			m.epochMu.Lock()
			defer m.epochMu.Unlock()
			return read(m.lastEpoch)
		}
	}
	r.GaugeFunc("hybridmem_sim_epoch_index", "Index of the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return float64(e.Index) }))
	r.GaugeFunc("hybridmem_sim_epoch_ipc", "IPC of the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return e.IPC }))
	r.GaugeFunc("hybridmem_sim_epoch_mpki", "LLC MPKI of the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return e.MPKI }))
	r.GaugeFunc("hybridmem_sim_epoch_nm_hit_frac", "Near-memory service fraction of the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return e.NMHitFrac }))
	r.GaugeFunc("hybridmem_sim_epoch_wasted_frac", "Wasted-fetch fraction of the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return e.WastedFrac }))
	r.GaugeFunc("hybridmem_sim_epoch_migrations", "Migrations within the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return float64(e.Migrations) }))
	r.GaugeFunc("hybridmem_sim_epoch_evictions", "Evictions within the most recently closed telemetry epoch.",
		lastEpoch(func(e telemetry.Epoch) float64 { return float64(e.Evictions) }))
	return m
}

// noteEpoch folds one closed epoch into the scrape-time telemetry
// family. Concurrent sampled runs interleave here; the gauges always
// describe one coherent epoch (the last writer's), never a blend.
func (m *metrics) noteEpoch(e telemetry.Epoch) {
	m.epochsTotal.Inc()
	m.epochMu.Lock()
	m.lastEpoch = e
	m.epochMu.Unlock()
}

// instrument wraps a handler so each request is counted, timed into the
// route's latency summary, and — when tracing is on — executed under an
// http_request span carried by the request context.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	count := s.metrics.requests.With(label)
	lat := s.metrics.latency.With(label)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if sp := s.opts.Obs.Tracer().StartSpan("http_request", obs.String("path", label)); sp != nil {
			defer sp.End()
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		h(w, r)
		count.Inc()
		lat.ObserveDuration(time.Since(start))
	}
}

// handleMetrics renders the registry as canonical Prometheus text
// exposition (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// handleDebugEvents dumps the flight recorder — the bounded ring of
// recent span events — as one JSON document. ?span=NAME keeps only
// events of that span or event name; ?n=N keeps only the last N of
// whatever survives the filter. "total" always reports how many events
// were ever recorded, so a truncated dump says what it omits.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	span := q.Get("span")
	n := -1
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "n must be a non-negative integer, got %q", raw)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	fl := s.opts.Obs.Flight()
	if span == "" && n < 0 {
		fl.WriteJSON(w)
		return
	}
	events := fl.Snapshot()
	if span != "" {
		kept := make([]obs.Event, 0, len(events))
		for _, e := range events {
			if e.Name == span {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if n >= 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	if events == nil {
		events = []obs.Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}{Total: fl.Total(), Events: events})
}
