package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/stats"
)

// metrics aggregates the server's operational counters: per-endpoint
// request counts and latency histograms, job outcomes, and the
// singleflight share counter. Cache statistics and queue gauges live
// with their owners and are folded in by the /metrics handler.
type metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	flightShared atomic.Uint64
	inflightSims atomic.Int64
}

type endpointMetrics struct {
	count uint64
	lat   stats.Histogram // request latency, microseconds
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics)}
}

// observe records one served request against its endpoint label.
func (m *metrics) observe(label string, d time.Duration) {
	us := uint64(d.Microseconds())
	m.mu.Lock()
	em := m.endpoints[label]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[label] = em
	}
	em.count++
	em.lat.Add(us)
	m.mu.Unlock()
}

// instrument wraps a handler so its latency lands in the endpoint's
// histogram under the given route label.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.metrics.observe(label, time.Since(start))
	}
}

// handleMetrics renders every counter in the text exposition format
// (Prometheus-compatible lines, deterministically ordered).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.metrics
	cs := s.store.Stats()
	fmt.Fprintf(w, "hybridmem_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "hybridmem_draining %d\n", boolGauge(s.draining.Load()))
	// The hybridmem_cache_* family is the store's memory tier, keeping
	// the names stable across the move into internal/store.
	fmt.Fprintf(w, "hybridmem_cache_hits_total %d\n", cs.MemHits)
	fmt.Fprintf(w, "hybridmem_cache_misses_total %d\n", cs.MemMisses)
	fmt.Fprintf(w, "hybridmem_cache_evictions_total %d\n", cs.MemEvictions)
	fmt.Fprintf(w, "hybridmem_cache_entries %d\n", cs.MemEntries)
	fmt.Fprintf(w, "hybridmem_cache_bytes %d\n", cs.MemBytes)
	fmt.Fprintf(w, "hybridmem_cache_capacity_bytes %d\n", s.opts.CacheBytes)
	fmt.Fprintf(w, "hybridmem_cache_capacity_entries %d\n", s.opts.CacheEntries)
	if s.store.HasDisk() {
		fmt.Fprintf(w, "hybridmem_store_disk_hits_total %d\n", cs.DiskHits)
		fmt.Fprintf(w, "hybridmem_store_disk_misses_total %d\n", cs.DiskMisses)
		fmt.Fprintf(w, "hybridmem_store_disk_evictions_total %d\n", cs.DiskEvictions)
		fmt.Fprintf(w, "hybridmem_store_corrupt_discarded_total %d\n", cs.DiskCorrupt)
		fmt.Fprintf(w, "hybridmem_store_disk_entries %d\n", cs.DiskEntries)
		fmt.Fprintf(w, "hybridmem_store_disk_bytes %d\n", cs.DiskBytes)
		fmt.Fprintf(w, "hybridmem_store_disk_capacity_bytes %d\n", s.opts.StoreMaxBytes)
	}
	fmt.Fprintf(w, "hybridmem_sims_total %d\n", s.sims.Load())
	fmt.Fprintf(w, "hybridmem_singleflight_shared_total %d\n", m.flightShared.Load())
	fmt.Fprintf(w, "hybridmem_inflight_sims %d\n", m.inflightSims.Load())
	fmt.Fprintf(w, "hybridmem_jobs_queue_depth %d\n", len(s.jobs.queue))
	fmt.Fprintf(w, "hybridmem_jobs_queue_capacity %d\n", cap(s.jobs.queue))
	fmt.Fprintf(w, "hybridmem_jobs_running %d\n", s.jobs.running.Load())
	fmt.Fprintf(w, "hybridmem_jobs_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "hybridmem_jobs_total{state=\"failed\"} %d\n", m.jobsFailed.Load())

	if c := s.opts.Cluster; c != nil {
		st := c.Stats()
		fmt.Fprintf(w, "hybridmem_cluster_runners_live %d\n", st.RunnersLive)
		fmt.Fprintf(w, "hybridmem_cluster_runners_joined_total %d\n", st.RunnersJoined)
		fmt.Fprintf(w, "hybridmem_cluster_runners_dropped_total %d\n", st.RunnersDropped)
		fmt.Fprintf(w, "hybridmem_cluster_shards_dispatched_total %d\n", st.ShardsDispatched)
		fmt.Fprintf(w, "hybridmem_cluster_shards_completed_total %d\n", st.ShardsCompleted)
		fmt.Fprintf(w, "hybridmem_cluster_shards_stolen_total %d\n", st.ShardsStolen)
		fmt.Fprintf(w, "hybridmem_cluster_shards_retried_total %d\n", st.ShardsRetried)
		fmt.Fprintf(w, "hybridmem_cluster_duplicates_dropped_total %d\n", st.DuplicatesDropped)
		fmt.Fprintf(w, "hybridmem_cluster_local_shards_total %d\n", st.LocalShards)
		fmt.Fprintf(w, "hybridmem_cluster_shards_warm_total %d\n", st.ShardsWarm)
		for _, rs := range st.Runners {
			fmt.Fprintf(w, "hybridmem_cluster_runner_inflight{runner=%q} %d\n", rs.ID, rs.InFlight)
			fmt.Fprintf(w, "hybridmem_cluster_runner_shards_total{runner=%q} %d\n", rs.ID, rs.Dispatched)
		}
	}

	m.mu.Lock()
	labels := make([]string, 0, len(m.endpoints))
	for l := range m.endpoints {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		em := m.endpoints[l]
		fmt.Fprintf(w, "hybridmem_http_requests_total{path=%q} %d\n", l, em.count)
		fmt.Fprintf(w, "hybridmem_http_request_duration_us{path=%q,stat=\"mean\"} %.0f\n", l, em.lat.Mean())
		for _, q := range []struct {
			name string
			p    float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			fmt.Fprintf(w, "hybridmem_http_request_duration_us{path=%q,stat=%q} %d\n", l, q.name, em.lat.Percentile(q.p))
		}
	}
	m.mu.Unlock()
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
