package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/dse"
	"hybridmem/internal/exp"
	"hybridmem/internal/sim"
	"hybridmem/internal/store"
	"hybridmem/internal/workload"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func waitJob(t *testing.T, h http.Handler, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		w := get(h, "/v1/jobs/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("job status %d: %s", w.Code, w.Body)
		}
		var st jobStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == jobDone || st.State == jobFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return jobStatus{}
}

// quickRun is a cheap real run request shared by the integration tests.
func quickRun() runRequest {
	return runRequest{
		Design:   "HYBRID2",
		Workload: "lbm",
		Config:   api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
}

// TestConcurrentIdenticalRunsSimulateOnce pins the heart of the service:
// N concurrent identical requests execute exactly one simulation
// (singleflight), every caller gets the same bytes, and a later repeat
// is a pure cache hit that never reaches the engine.
func TestConcurrentIdenticalRunsSimulateOnce(t *testing.T) {
	s := newTestServer(t, Options{})
	var sims atomic.Int64
	release := make(chan struct{})
	s.runOne = func(d, wl string, cfg api.Config) (sim.Result, error) {
		sims.Add(1)
		<-release // hold every concurrent caller inside the flight window
		return sim.Result{Workload: wl, Design: d, Cycles: 12345}, nil
	}

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, s.Handler(), "/v1/run", quickRun())
			if w.Code == http.StatusOK {
				bodies[i] = w.Body.Bytes()
			}
		}(i)
	}
	// Let every request reach the cache-miss/flight path, then release.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := sims.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] == nil || !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}

	// A repeat after the flight settled is served from cache: still one
	// simulation, and the hit counter moved.
	before := s.store.Stats().MemHits
	w := postJSON(t, s.Handler(), "/v1/run", quickRun())
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), bodies[0]) {
		t.Fatalf("cached repeat: code %d, body mismatch", w.Code)
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("cached repeat re-simulated: %d sims", got)
	}
	if after := s.store.Stats().MemHits; after != before+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before, after)
	}
}

// TestCacheEvictionRespectsBounds pins the LRU bounds of the store's
// memory tier as the serve layer uses it: the byte bound holds at every
// point, eviction is least-recently-used, and an entry larger than the
// whole byte budget is refused rather than flushing the cache. (The
// exhaustive tier tests live with internal/store.)
func TestCacheEvictionRespectsBounds(t *testing.T) {
	byteLen := func(b []byte) int64 { return int64(len(b)) }
	c := store.NewLRU[[]byte](100, 100, byteLen)
	doc := func(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }

	c.Put("a", doc(40))
	c.Put("b", doc(40))
	if st := c.Stats(); st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("stats %+v after two puts", st)
	}
	// Touch "a" so "b" is the LRU victim when "c" overflows the bytes.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", doc(40))
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("byte bound violated: %d bytes cached, bound 100", st.Bytes)
	}
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}

	// Oversized entries are not admitted (and evict nothing).
	c.Put("huge", doc(1000))
	if _, ok := c.Peek("huge"); ok {
		t.Fatal("entry larger than the byte bound was cached")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("oversized put evicted existing entries")
	}

	// Entry-count bound holds independently of bytes.
	ce := store.NewLRU[[]byte](2, 1<<20, byteLen)
	ce.Put("1", doc(1))
	ce.Put("2", doc(1))
	ce.Put("3", doc(1))
	if st := ce.Stats(); st.Entries != 2 {
		t.Fatalf("entry bound violated: %d entries, bound 2", st.Entries)
	}
	if _, ok := ce.Peek("1"); ok {
		t.Fatal("LRU entry 1 survived entry-bound eviction")
	}
}

// TestGracefulShutdownDrainsInFlight pins drain semantics: a running job
// finishes, new submissions are rejected with 503, and Shutdown returns
// only after the pool is idle.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	s.runSweep = func(ctx context.Context, d, wls []string, cfg api.Config, progress func(int, int)) ([]sim.Result, error) {
		close(started)
		<-release
		return []sim.Result{{Workload: wls[0], Design: d[0], Cycles: 1}}, nil
	}

	sweep := sweepRequest{Designs: []string{"Baseline"}, Workloads: []string{"lbm"}}
	w := postJSON(t, s.Handler(), "/v1/sweep", sweep)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var sub submitResponse
	json.Unmarshal(w.Body.Bytes(), &sub)
	<-started // the job is now in flight

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// Shutdown must not return while the job runs, and new work must be
	// rejected meanwhile.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a job still in flight", err)
	default:
	}
	w2 := postJSON(t, s.Handler(), "/v1/sweep", sweepRequest{Designs: []string{"HYBRID2"}, Workloads: []string{"mcf"}})
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %d, want 503", w2.Code)
	}
	if w3 := get(s.Handler(), "/healthz"); w3.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", w3.Code)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := waitJob(t, s.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("in-flight job state %q after drain, want done", st.State)
	}
}

// TestRunMatchesEngineEncoding pins byte-identity between the served
// document and the shared wire encoding of the same engine run — the
// property the CI e2e diff then re-proves against the real CLI binary.
func TestRunMatchesEngineEncoding(t *testing.T) {
	s := newTestServer(t, Options{})
	req := quickRun()
	w := postJSON(t, s.Handler(), "/v1/run", req)
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	wl, _ := workload.ByName(req.Workload)
	r := &exp.Runner{Scale: req.Config.Scale, InstrPerCore: req.Config.InstrPerCore, Seed: req.Config.Seed}
	sr, err := r.ResultErr(wl, req.Design, req.Config.NMRatio16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.Encode(api.NewRun(sr))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("served run differs from engine encoding:\n%s\nvs\n%s", w.Body, want)
	}
}

// TestSweepJobEndToEnd drives a real sweep through the async path:
// submit, progress over SSE, settle, fetch the result document, and
// verify both the bytes (vs the engine encoding) and job dedup.
func TestSweepJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sweep := sweepRequest{
		Designs:   []string{"Baseline", "HYBRID2"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)

	// The SSE stream must end with a done event for this job.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(events), "event: done") {
		t.Fatalf("SSE stream missing done event:\n%s", events)
	}

	if st := waitJob(t, s.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("sweep job failed: %+v", st)
	}
	w := get(s.Handler(), "/v1/jobs/"+sub.JobID+"/result")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}

	r := &exp.Runner{Scale: 16, InstrPerCore: 50_000, Seed: 1}
	var srs []sim.Result
	for _, d := range sweep.Designs {
		wl, _ := workload.ByName("lbm")
		sr, err := r.ResultErr(wl, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		srs = append(srs, sr)
	}
	want, _ := api.Encode(api.NewSweep(srs))
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("sweep document differs from engine encoding:\n%s\nvs\n%s", w.Body, want)
	}

	// Submitting identical work is the same job, not new work.
	w2 := postJSON(t, s.Handler(), "/v1/sweep", sweep)
	var sub2 submitResponse
	json.Unmarshal(w2.Body.Bytes(), &sub2)
	if sub2.JobID != sub.JobID {
		t.Fatalf("identical sweep got a new job: %s vs %s", sub2.JobID, sub.JobID)
	}
	if sub2.State != jobDone {
		t.Fatalf("deduped job state %q, want done", sub2.State)
	}
}

// TestExploreJobResumesFromCheckpoint pins the restart story: a server
// finding a persisted, unfinished exploration (spec + mid-search
// checkpoint) resumes it and produces a document byte-identical to an
// uninterrupted search.
func TestExploreJobResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	req := exploreRequest{
		Families:  []string{"H2DSE"},
		Workloads: []string{"mcf"},
		Budget:    8,
		BatchSize: 4,
		Seed:      3,
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 30_000, Seed: 1},
	}
	req.MaxPerParam = 3
	req.Config = normalizeConfig(req.Config, 200_000)
	id := exploreKey(req)

	mkOpts := func(checkpoint string, maxRounds int) dse.Options {
		return dse.Options{
			Families: req.Families, Workloads: req.Workloads,
			Budget: req.Budget, BatchSize: req.BatchSize, Seed: req.Seed,
			Scale: req.Config.Scale, InstrPerCore: req.Config.InstrPerCore,
			SimSeed: req.Config.Seed, Ratio16: req.Config.NMRatio16,
			MaxPerParam: req.MaxPerParam, Checkpoint: checkpoint, MaxRounds: maxRounds,
		}
	}

	// The reference: the same search, uninterrupted.
	full, err := dse.Search(context.Background(), mkOpts("", 0))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := api.Encode(full.APIDoc())

	// Simulate the pre-restart server: the job spec is persisted and one
	// batch ran before the interruption, leaving a checkpoint behind.
	spec, _ := json.Marshal(persistedJob{Kind: "explore", Explore: &req})
	s0 := &Server{opts: Options{StateDir: dir}}
	if err := writeFile(s0.statePath("job", id), spec); err != nil {
		t.Fatal(err)
	}
	if _, err := dse.Search(context.Background(), mkOpts(s0.statePath("ckpt", id), 1)); err != nil {
		t.Fatal(err)
	}

	// The restarted server recovers the job and resumes the search.
	s := newTestServer(t, Options{StateDir: dir})
	st := waitJob(t, s.Handler(), id)
	if st.State != jobDone {
		t.Fatalf("recovered explore job: %+v", st)
	}
	w := get(s.Handler(), "/v1/jobs/"+id+"/result")
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("resumed exploration differs from uninterrupted run:\n%s\nvs\n%s", w.Body, want)
	}

	// A second restart adopts the finished job without re-running it.
	s2 := newTestServer(t, Options{StateDir: dir})
	if st := waitJob(t, s2.Handler(), id); st.State != jobDone {
		t.Fatalf("adopted job: %+v", st)
	}
	if w2 := get(s2.Handler(), "/v1/jobs/"+id+"/result"); !bytes.Equal(w2.Body.Bytes(), want) {
		t.Fatal("adopted result differs")
	}
}

// TestReplayStreamsInConstantMemory uploads a multi-million-record trace
// from a generator whose total text (~tens of MB) must never be resident
// at once: the handler streams the body into the trace decoder, so the
// heap grows by far less than the trace size.
func TestReplayStreamsInConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-record upload")
	}
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const records = 2_000_000
	traceBytes := int64(0)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		w := newCountWriter(pw, &traceBytes)
		for i := 0; i < records; i++ {
			// 8 cores round-robin with identical per-group ops, so the
			// cores advance in lockstep and the interleave stays within
			// the default lookahead window.
			op := "R"
			if (i/8)%16 == 0 {
				op = "W"
			}
			fmt.Fprintf(w, "%d 3 %x %s\n", i%8, uint64(i)*64%(1<<30), op)
		}
	}()
	resp, err := http.Post(ts.URL+"/v1/replay?design=Baseline&name=synthetic&mlp=2", "application/octet-stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d %s", resp.StatusCode, body)
	}
	var doc api.Run
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Result.Requests == 0 || doc.Result.Cycles == 0 {
		t.Fatalf("replay produced an empty result: %+v", doc.Result)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if traceBytes < 20<<20 {
		t.Fatalf("generator produced only %d bytes; test is not exercising a large upload", traceBytes)
	}
	if grew > traceBytes/4 {
		t.Fatalf("heap grew %d bytes replaying a %d-byte trace; the upload path is buffering", grew, traceBytes)
	}
}

// TestRequestValidation pins the cheap-400 contract.
func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	cases := []struct {
		name string
		path string
		body any
	}{
		{"bad design", "/v1/run", runRequest{Design: "NOSUCH", Workload: "lbm"}},
		{"bad workload", "/v1/run", runRequest{Design: "HYBRID2", Workload: "nosuch"}},
		{"bad scale", "/v1/run", runRequest{Design: "HYBRID2", Workload: "lbm", Config: api.Config{Scale: -1, NMRatio16: 1, InstrPerCore: 1000}}},
		{"bad ratio", "/v1/run", runRequest{Design: "HYBRID2", Workload: "lbm", Config: api.Config{Scale: 16, NMRatio16: 3, InstrPerCore: 1000}}},
		{"empty sweep", "/v1/sweep", sweepRequest{}},
		{"sweep bad design", "/v1/sweep", sweepRequest{Designs: []string{"DFC-0"}, Workloads: []string{"lbm"}}},
		{"explore no budget", "/v1/explore", exploreRequest{Families: []string{"H2DSE"}}},
		{"explore bad family", "/v1/explore", exploreRequest{Families: []string{"NOSUCH"}, Budget: 4}},
		{"instr over limit", "/v1/run", runRequest{Design: "HYBRID2", Workload: "lbm", Config: api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 1 << 40}}},
	}
	for _, tc := range cases {
		if w := postJSON(t, h, tc.path, tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}
	// Unknown fields are rejected, not ignored.
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"desing":"HYBRID2"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("typoed field: code %d, want 400", w.Code)
	}
	if w := get(h, "/v1/jobs/nosuchjob"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", w.Code)
	}
}

// TestSyncSimulationBound pins the inline-work bound: with every sync
// slot occupied, a distinct (uncached) run answers 503 instead of
// starting another simulation.
func TestSyncSimulationBound(t *testing.T) {
	s := newTestServer(t, Options{MaxSyncSims: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	s.runOne = func(d, wl string, cfg api.Config) (sim.Result, error) {
		close(started)
		<-release
		return sim.Result{Workload: wl, Design: d, Cycles: 1}, nil
	}
	first := quickRun()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postJSON(t, s.Handler(), "/v1/run", first) }()
	<-started // the only sync slot is now held

	second := quickRun()
	second.Config.Seed = 99 // distinct fingerprint: cache and flight miss
	if w := postJSON(t, s.Handler(), "/v1/run", second); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated sync slot answered %d, want 503 (%s)", w.Code, w.Body)
	}
	close(release)
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("held run: %d %s", w.Code, w.Body)
	}
}

// TestMetricsEndpoint spot-checks the exposition format.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	postJSON(t, s.Handler(), "/v1/run", quickRun())
	postJSON(t, s.Handler(), "/v1/run", quickRun()) // cache hit
	w := get(s.Handler(), "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	out := w.Body.String()
	for _, want := range []string{
		"# TYPE hybridmem_cache_hits_total counter",
		"hybridmem_cache_hits_total 1",
		"hybridmem_cache_misses_total 1",
		"hybridmem_jobs_queue_depth 0",
		"hybridmem_inflight_sims 0",
		`hybridmem_http_requests_total{path="/v1/run"} 2`,
		`hybridmem_http_request_duration_us{path="/v1/run",quantile="0.5"}`,
		`hybridmem_http_request_duration_us_count{path="/v1/run"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// countWriter counts bytes flowing through the trace generator.
type countWriter struct {
	w io.Writer
	n *int64
}

func newCountWriter(w io.Writer, n *int64) *countWriter { return &countWriter{w: w, n: n} }

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
