// Package workload generates the deterministic synthetic memory-access
// streams that stand in for the paper's Pin-captured SPEC2017 and NAS
// traces (see DESIGN.md §2 for the substitution rationale). Each of the 30
// workloads of Table 2 is described by a Spec whose parameters (footprint,
// access intensity, hot-set skew, sequential-run length, write fraction,
// phase behaviour) reproduce the characteristics the evaluated policies
// are sensitive to.
package workload

import "fmt"

// Class is the MPKI grouping of Table 2 / Figures 12 and 15-18.
type Class int

// MPKI classes, ten workloads each.
const (
	High Class = iota
	Medium
	Low
)

func (c Class) String() string {
	switch c {
	case High:
		return "High"
	case Medium:
		return "Medium"
	case Low:
		return "Low"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Kind distinguishes multi-programmed (8 instances, private address
// spaces) from multi-threaded (shared address space) workloads.
type Kind int

// Workload kinds.
const (
	MP Kind = iota // multi-programmed: 8 rate copies, disjoint regions
	MT             // multi-threaded: 8 threads share one region
)

func (k Kind) String() string {
	if k == MT {
		return "MT"
	}
	return "MP"
}

// Spec describes one synthetic workload. Paper* fields record Table 2 for
// reference and reporting; the remaining fields drive the generator.
type Spec struct {
	Name  string
	Kind  Kind
	Class Class

	PaperMPKI        float64 // Table 2 LLC misses per kilo-instruction
	PaperFootprintGB float64 // Table 2 memory footprint
	PaperTrafficGB   float64 // Table 2 total memory traffic

	// Generator parameters.
	APKI      float64 // LLC accesses per kilo-instruction
	HotFrac   float64 // fraction of the footprint forming the hot set
	HotProb   float64 // probability an access run targets the hot set
	SeqRun    float64 // mean sequential run length, in 64 B lines
	WriteFrac float64 // fraction of accesses that are stores
	Phases    int     // working-set phases over the run (1 = stable)
}

// specs mirrors Table 2. APKI/HotFrac/HotProb/SeqRun are calibrated so the
// measured LLC MPKI of the scaled system lands near the paper's column
// while exhibiting the qualitative behaviour the paper describes (e.g.
// dc.B streaming with little reuse, deepsjeng wide footprint with very
// poor spatial locality, omnetpp poor spatial locality).
var specs = []Spec{
	// --- High MPKI ---
	{Name: "cg.D", Kind: MT, Class: High, PaperMPKI: 90.6, PaperFootprintGB: 7.8, PaperTrafficGB: 43.3,
		APKI: 100, HotFrac: 0.15, HotProb: 0.8, SeqRun: 16, WriteFrac: 0.12, Phases: 2},
	{Name: "sp.D", Kind: MT, Class: High, PaperMPKI: 30.1, PaperFootprintGB: 11.2, PaperTrafficGB: 21.6,
		APKI: 31, HotFrac: 0.10, HotProb: 0.50, SeqRun: 40, WriteFrac: 0.35, Phases: 2},
	{Name: "bt.D", Kind: MT, Class: High, PaperMPKI: 30.1, PaperFootprintGB: 10.7, PaperTrafficGB: 21.3,
		APKI: 31, HotFrac: 0.10, HotProb: 0.50, SeqRun: 40, WriteFrac: 0.38, Phases: 2},
	{Name: "fotonik3d", Kind: MP, Class: High, PaperMPKI: 28.1, PaperFootprintGB: 6.4, PaperTrafficGB: 19.9,
		APKI: 29, HotFrac: 0.12, HotProb: 0.45, SeqRun: 48, WriteFrac: 0.30, Phases: 1},
	{Name: "lbm", Kind: MP, Class: High, PaperMPKI: 27.4, PaperFootprintGB: 3.1, PaperTrafficGB: 21.7,
		APKI: 28, HotFrac: 0.25, HotProb: 0.30, SeqRun: 56, WriteFrac: 0.45, Phases: 1},
	{Name: "bwaves", Kind: MP, Class: High, PaperMPKI: 26.8, PaperFootprintGB: 3.3, PaperTrafficGB: 13.8,
		APKI: 27.6, HotFrac: 0.20, HotProb: 0.40, SeqRun: 56, WriteFrac: 0.25, Phases: 1},
	{Name: "lu.D", Kind: MT, Class: High, PaperMPKI: 25.8, PaperFootprintGB: 2.9, PaperTrafficGB: 19.1,
		APKI: 26.6, HotFrac: 0.15, HotProb: 0.50, SeqRun: 36, WriteFrac: 0.40, Phases: 2},
	{Name: "mcf", Kind: MP, Class: High, PaperMPKI: 25.8, PaperFootprintGB: 0.1, PaperTrafficGB: 12.6,
		APKI: 43.8, HotFrac: 0.10, HotProb: 0.60, SeqRun: 2.5, WriteFrac: 0.20, Phases: 1},
	{Name: "gcc", Kind: MP, Class: High, PaperMPKI: 21.2, PaperFootprintGB: 1.6, PaperTrafficGB: 13.0,
		APKI: 22.3, HotFrac: 0.20, HotProb: 0.55, SeqRun: 8, WriteFrac: 0.30, Phases: 3},
	{Name: "roms", Kind: MP, Class: High, PaperMPKI: 15.5, PaperFootprintGB: 2.3, PaperTrafficGB: 9.7,
		APKI: 15.7, HotFrac: 0.20, HotProb: 0.40, SeqRun: 48, WriteFrac: 0.33, Phases: 1},
	// --- Medium MPKI ---
	{Name: "mg.C", Kind: MT, Class: Medium, PaperMPKI: 14.2, PaperFootprintGB: 2.8, PaperTrafficGB: 8.9,
		APKI: 14.8, HotFrac: 0.15, HotProb: 0.60, SeqRun: 48, WriteFrac: 0.30, Phases: 2},
	{Name: "omnetpp", Kind: MP, Class: Medium, PaperMPKI: 9.8, PaperFootprintGB: 1.5, PaperTrafficGB: 6.9,
		APKI: 11.1, HotFrac: 0.12, HotProb: 0.70, SeqRun: 3.5, WriteFrac: 0.30, Phases: 1},
	{Name: "is.C", Kind: MT, Class: Medium, PaperMPKI: 9.0, PaperFootprintGB: 1.0, PaperTrafficGB: 5.4,
		APKI: 9.7, HotFrac: 0.20, HotProb: 0.55, SeqRun: 32, WriteFrac: 0.40, Phases: 1},
	{Name: "dc.B", Kind: MT, Class: Medium, PaperMPKI: 8.4, PaperFootprintGB: 4.0, PaperTrafficGB: 8.0,
		APKI: 8.4, HotFrac: 0.90, HotProb: 0.05, SeqRun: 64, WriteFrac: 0.40, Phases: 1},
	{Name: "ua.D", Kind: MT, Class: Medium, PaperMPKI: 7.8, PaperFootprintGB: 3.1, PaperTrafficGB: 4.9,
		APKI: 8.3, HotFrac: 0.10, HotProb: 0.65, SeqRun: 24, WriteFrac: 0.35, Phases: 2},
	{Name: "xz", Kind: MP, Class: Medium, PaperMPKI: 5.6, PaperFootprintGB: 0.7, PaperTrafficGB: 4.3,
		APKI: 6.5, HotFrac: 0.15, HotProb: 0.65, SeqRun: 10, WriteFrac: 0.35, Phases: 2},
	{Name: "parest", Kind: MP, Class: Medium, PaperMPKI: 4.3, PaperFootprintGB: 0.2, PaperTrafficGB: 2.2,
		APKI: 6.1, HotFrac: 0.20, HotProb: 0.70, SeqRun: 24, WriteFrac: 0.25, Phases: 1},
	{Name: "cactus", Kind: MP, Class: Medium, PaperMPKI: 3.4, PaperFootprintGB: 0.8, PaperTrafficGB: 2.0,
		APKI: 4, HotFrac: 0.15, HotProb: 0.72, SeqRun: 32, WriteFrac: 0.35, Phases: 1},
	{Name: "ft.C", Kind: MT, Class: Medium, PaperMPKI: 3.1, PaperFootprintGB: 0.9, PaperTrafficGB: 2.6,
		APKI: 3.5, HotFrac: 0.20, HotProb: 0.72, SeqRun: 48, WriteFrac: 0.40, Phases: 1},
	{Name: "cam4", Kind: MP, Class: Medium, PaperMPKI: 2.2, PaperFootprintGB: 0.3, PaperTrafficGB: 1.6,
		APKI: 2.9, HotFrac: 0.20, HotProb: 0.75, SeqRun: 32, WriteFrac: 0.30, Phases: 1},
	// --- Low MPKI ---
	{Name: "wrf", Kind: MP, Class: Low, PaperMPKI: 1.4, PaperFootprintGB: 0.4, PaperTrafficGB: 1.1,
		APKI: 3.2, HotFrac: 0.04, HotProb: 0.90, SeqRun: 32, WriteFrac: 0.30, Phases: 1},
	{Name: "xalanc", Kind: MP, Class: Low, PaperMPKI: 1.1, PaperFootprintGB: 0.1, PaperTrafficGB: 1.0,
		APKI: 4.8, HotFrac: 0.08, HotProb: 0.92, SeqRun: 2.5, WriteFrac: 0.25, Phases: 1},
	{Name: "imagick", Kind: MP, Class: Low, PaperMPKI: 1.1, PaperFootprintGB: 0.4, PaperTrafficGB: 0.9,
		APKI: 2.7, HotFrac: 0.04, HotProb: 0.92, SeqRun: 48, WriteFrac: 0.35, Phases: 1},
	{Name: "x264", Kind: MP, Class: Low, PaperMPKI: 0.9, PaperFootprintGB: 0.3, PaperTrafficGB: 0.6,
		APKI: 2.2, HotFrac: 0.05, HotProb: 0.93, SeqRun: 32, WriteFrac: 0.30, Phases: 1},
	{Name: "perlbench", Kind: MP, Class: Low, PaperMPKI: 0.7, PaperFootprintGB: 0.2, PaperTrafficGB: 0.4,
		APKI: 2.1, HotFrac: 0.06, HotProb: 0.94, SeqRun: 6, WriteFrac: 0.30, Phases: 1},
	{Name: "blender", Kind: MP, Class: Low, PaperMPKI: 0.7, PaperFootprintGB: 0.2, PaperTrafficGB: 0.3,
		APKI: 2, HotFrac: 0.06, HotProb: 0.94, SeqRun: 24, WriteFrac: 0.25, Phases: 1},
	{Name: "deepsjeng", Kind: MP, Class: Low, PaperMPKI: 0.3, PaperFootprintGB: 3.4, PaperTrafficGB: 0.2,
		APKI: 0.5, HotFrac: 0.015, HotProb: 0.94, SeqRun: 2, WriteFrac: 0.25, Phases: 1},
	{Name: "nab", Kind: MP, Class: Low, PaperMPKI: 0.2, PaperFootprintGB: 0.2, PaperTrafficGB: 0.1,
		APKI: 0.7, HotFrac: 0.05, HotProb: 0.96, SeqRun: 24, WriteFrac: 0.30, Phases: 1},
	{Name: "leela", Kind: MP, Class: Low, PaperMPKI: 0.1, PaperFootprintGB: 0.1, PaperTrafficGB: 0.1,
		APKI: 0.4, HotFrac: 0.08, HotProb: 0.97, SeqRun: 2.5, WriteFrac: 0.20, Phases: 1},
	{Name: "namd", Kind: MP, Class: Low, PaperMPKI: 0.13, PaperFootprintGB: 0.1, PaperTrafficGB: 0.1,
		APKI: 0.5, HotFrac: 0.08, HotProb: 0.97, SeqRun: 24, WriteFrac: 0.30, Phases: 1},
}

// Specs returns the 30 workloads of Table 2 in paper order (sorted by
// MPKI class, high to low).
func Specs() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// ByClass returns the workloads of one MPKI class.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range specs {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a workload up by its Table 2 name.
func ByName(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
