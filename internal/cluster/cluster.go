// Package cluster is the distributed execution plane: it shards batches
// of content-addressed run specs across runner nodes so sweeps and
// design-space explorations scale past one machine, while every document
// the cluster produces stays byte-identical to a single-process run.
//
// # Roles and protocol
//
// A *coordinator* owns the work: it cuts a batch of simulation runs into
// fixed-size shards, dispatches them to registered runners over HTTP,
// and merges the responses back into input order. A *runner* is a
// stateless executor: it joins a coordinator, heartbeats to stay live,
// and answers shard RPCs by running the simulations through the same
// internal/exp engine a local process would use. All payloads ride the
// versioned wire schema of internal/api (every RPC carries the protocol,
// schema and engine versions; a mismatch refuses the call), so a result
// computed remotely is the exact document a local run would encode.
//
//	runner  -> coordinator   POST /cluster/v1/join       {id, addr}
//	runner  -> coordinator   POST /cluster/v1/heartbeat  {id}
//	coordinator -> runner    POST /cluster/v1/shard      ShardRequest -> ShardResponse
//	anyone  -> runner        GET  /healthz               attachment report
//
// # Dispatch, work-stealing and the failure model
//
// Dispatch is pull-based under the hood: every live runner gets
// MaxInFlight worker slots that repeatedly take the next pending shard.
// Fast runners therefore drain the queue faster — that is the common
// case of work-stealing. When the pending queue is empty but shards are
// still in flight on other runners (the straggler tail), an idle runner
// *steals* one: it speculatively re-executes a shard already running
// elsewhere (bounded by MaxSteals concurrent executions per shard), and
// the first response to arrive wins — duplicates are discarded, which is
// sound because simulations are deterministic functions of the request.
//
// Failures are handled at two levels. A failed or timed-out shard RPC
// requeues the shard (with backoff) and counts against its attempt
// budget; a runner that fails several RPCs in a row — or misses
// heartbeats past HeartbeatTimeout — is dropped from the pool and its
// in-flight shards are re-dispatched to the survivors. With
// LocalFallback set the coordinator itself executes shards whenever no
// runner is live, so a cluster that loses every node degrades to exactly
// the single-process behaviour instead of stalling.
//
// # Determinism
//
// Every simulation is a deterministic function of (design, workload,
// config, seed), so re-execution, duplication and re-ordering of RPCs
// cannot change any individual outcome. The coordinator indexes every
// response by shard and restores input order before returning, so the
// merged result — and any document encoded from it — is byte-identical
// to a single-process run no matter how shards were scheduled, retried,
// stolen or recovered. Distributed design-space exploration keeps all
// search state (RNG, frontier, trails, checkpoints) on the coordinator
// and distributes only the embarrassingly parallel evaluations, so
// frontier folds happen in the same order as a local search; the merge
// identity frontier(shard frontiers) == frontier(union) is pinned by a
// property test in internal/dse.
//
// # Loopback mode
//
// AttachLoopback registers N in-process runners whose transport is a
// direct function call. Tests, benchmarks and the public
// ExploreOptions.LoopbackRunners knob use it to exercise the entire
// dispatch plane — sharding, stealing, retry, merge — without a network.
package cluster

import (
	"log/slog"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/store"
)

// CoordinatorOptions tunes the dispatch plane. The zero value of every
// field has a usable default.
type CoordinatorOptions struct {
	// ShardSize is the number of runs per dispatched shard; <= 0 means 8.
	// Smaller shards spread better and re-dispatch cheaper; larger shards
	// amortize RPC overhead.
	ShardSize int
	// MaxInFlight bounds the shards concurrently in flight per runner
	// (each in-flight shard occupies one worker slot); <= 0 means 2.
	MaxInFlight int
	// MaxSteals bounds how many *additional* concurrent executions of an
	// in-flight shard idle runners may start (speculative re-execution of
	// the straggler tail); < 0 disables stealing. 0 means the default 1.
	MaxSteals int
	// HeartbeatInterval is the cadence advertised to joining runners;
	// <= 0 means 2s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the liveness window: a runner silent for longer
	// is dropped and its shards re-dispatched; <= 0 means 10s.
	HeartbeatTimeout time.Duration
	// RPCTimeout bounds one shard call; <= 0 means 5m (a shard of slow
	// full-fidelity runs is legitimate work, not a hang).
	RPCTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per shard before the whole
	// batch fails; <= 0 means 8.
	MaxAttempts int
	// RetryBackoff is the base delay a worker sleeps after a failed RPC,
	// scaled by its consecutive-failure count; <= 0 means 100ms.
	RetryBackoff time.Duration
	// FailuresToDrop is how many consecutive RPC failures expel a runner
	// from the pool; <= 0 means 3.
	FailuresToDrop int
	// LocalFallback lets the coordinator execute shards in-process
	// whenever no runner is live, so a runnerless (or fully failed)
	// cluster degrades to single-process execution instead of stalling.
	LocalFallback bool
	// LocalParallelism bounds the in-process fallback executor's
	// concurrent simulations; <= 0 means GOMAXPROCS.
	LocalParallelism int
	// Store, when non-nil, persists completed shard outcomes to its disk
	// tier and serves warm shards without dispatching them — a batch
	// re-run after coordinator restart or node loss re-dispatches only
	// the shards the store has not seen. Loopback runners and the local
	// fallback executor also consult it at run granularity. Shard keys
	// fold in the protocol, schema and engine versions, so version bumps
	// invalidate persisted shards rather than serving stale outcomes.
	Store *store.Store
	// Log receives structured operational log records; nil discards
	// them.
	Log *slog.Logger
	// Obs, when non-nil, hooks the coordinator into the shared
	// observability plane: batches and shards become spans in its
	// flight recorder, phase timers land in its registry, and events
	// echoed by remote runners are folded in. Dispatch counters are
	// published separately via RegisterMetrics (the serving layer calls
	// it with the registry backing /metrics). nil keeps the coordinator
	// fully passive.
	Obs *obs.Obs
	// SimCounter, when non-nil, counts engine executions performed by
	// the coordinator's own executors (loopback runners and the local
	// fallback) — remote nodes count on their own registries.
	SimCounter *obs.Counter
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.ShardSize <= 0 {
		o.ShardSize = 8
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2
	}
	switch {
	case o.MaxSteals < 0:
		o.MaxSteals = 0
	case o.MaxSteals == 0:
		o.MaxSteals = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 5 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.FailuresToDrop <= 0 {
		o.FailuresToDrop = 3
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return o
}
