package core

import (
	"fmt"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// h2cfg resolves the paper's Hybrid2 configuration for a scaled system.
func h2cfg(sys config.System) Config {
	cfg := Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), sys.Seed)
	cfg.FMBudgetReset = clampTick(sys.FMBudgetResetCycles())
	return cfg
}

// clampTick keeps a scaled period at least one cycle: a zero
// FMBudgetReset would spin maybeResetBudget forever.
func clampTick(v uint64) memtypes.Tick {
	if v < 1 {
		return 1
	}
	return memtypes.Tick(v)
}

func init() {
	design.Register(design.Info{
		Name:    "HYBRID2",
		Doc:     "the paper's full design: sectored DRAM cache + migration + remap",
		Kind:    design.KindMain,
		Order:   6,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(h2cfg(sys), nm, fm), nil
		},
	})

	for i, v := range []struct {
		name, doc string
		mode      Mode
	}{
		{"H2-CacheOnly", "Fig. 14 ablation: DRAM cache alone, no migration", CacheOnly},
		{"H2-MigrAll", "Fig. 14 ablation: migrate every evicted FM sector", MigrateAll},
		{"H2-MigrNone", "Fig. 14 ablation: never migrate", MigrateNone},
		{"H2-NoRemap", "Fig. 14 ablation: remap metadata accesses are free", NoRemapOverhead},
	} {
		mode := v.mode
		design.Register(design.Info{
			Name:    v.name,
			Doc:     v.doc,
			Kind:    design.KindVariant,
			Order:   2 + i,
			NeedsNM: true,
			Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
				cfg := h2cfg(sys)
				cfg.Mode = mode
				return New(cfg, nm, fm), nil
			},
		})
	}

	design.Register(design.Info{
		Name:    "H2ABL",
		Doc:     "Hybrid2 design-choice sensitivity variant",
		Kind:    design.KindVariant,
		Order:   6,
		NeedsNM: true,
		Params: []design.Param{
			{Name: "knob", Doc: "constant to vary", Enum: []string{"ctr", "reset", "stack", "assoc", "free"}},
			{Name: "val", Doc: "knob value: counter bits, reset cycles, stack entries, XTA ways, or free per-mille", Min: 1, Max: 100_000_000},
		},
		Example: "H2ABL-ctr-9",
		Check: func(vals []design.Value) error {
			knob, v := vals[0].Raw, vals[1].Int
			switch knob {
			case "ctr":
				if v > 20 {
					return fmt.Errorf("H2ABL: counter width %d exceeds 20 bits", v)
				}
			case "stack":
				if v > 1<<16 {
					return fmt.Errorf("H2ABL: %d on-chip stack entries exceed 65536", v)
				}
			case "assoc":
				if v&(v-1) != 0 || v > 1024 {
					return fmt.Errorf("H2ABL: XTA associativity %d must be a power of two <= 1024", v)
				}
			case "free":
				if v > 1000 {
					return fmt.Errorf("H2ABL: free fraction %d exceeds 1000 per-mille", v)
				}
			}
			return nil
		},
		Build: func(spec design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			cfg := h2cfg(sys)
			val := spec.Int("val")
			switch spec.Raw("knob") {
			case "ctr": // access-counter width in bits (§3.7.1, paper: 9)
				cfg.CounterBits = val
			case "reset": // FM budget reset period in paper cycles (§3.7.3)
				cfg.FMBudgetReset = clampTick(uint64(val) / uint64(sys.Scale))
			case "stack": // on-chip Free-FM-Stack entries (§3.3, paper: 16)
				cfg.FreeStackOnChip = val
			case "assoc": // XTA associativity (paper: 16)
				cfg.Assoc = val
			case "free": // §3.8 extension with val/1000 of memory hinted free
				cfg.FreeSpaceAware = true
				h := New(cfg, nm, fm)
				total := uint64(h.Sectors()) * uint64(cfg.SectorBytes)
				freeBytes := total * uint64(val) / 1000
				h.MarkFree(memtypes.Addr(total-freeBytes), freeBytes)
				return h, nil
			}
			return New(cfg, nm, fm), nil
		},
	})

	design.Register(design.Info{
		Name:    "H2DSE",
		Doc:     "Hybrid2 Fig. 11 design-space point",
		Kind:    design.KindVariant,
		Order:   7,
		NeedsNM: true,
		Params: []design.Param{
			{Name: "cacheMB", Doc: "paper-scale DRAM-cache size in MB", Min: 1, Max: 1024},
			{Name: "sectorKB", Doc: "sector size in KB", Min: 1, Max: 64},
			{Name: "lineB", Doc: "cache-line size in bytes", Min: 64, Max: 4096, Pow2: true},
		},
		Example: "H2DSE-64-2-256",
		Check: func(vals []design.Value) error {
			sector, line := vals[1].Int<<10, vals[2].Int
			if sector%line != 0 {
				return fmt.Errorf("H2DSE: sector (%d B) must be a multiple of the line size (%d B)", sector, line)
			}
			if sector/line > 64 {
				return fmt.Errorf("H2DSE: %d lines per sector exceed the 64-line valid/dirty vectors", sector/line)
			}
			return nil
		},
		Build: func(spec design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			cacheBytes := uint64(spec.Int("cacheMB")) << 20 / uint64(sys.Scale)
			cfg := Default(sys.NMBytes, sys.FMBytes, cacheBytes, sys.Seed)
			cfg.FMBudgetReset = clampTick(sys.FMBudgetResetCycles())
			cfg.SectorBytes = spec.Int("sectorKB") << 10
			cfg.LineBytes = spec.Int("lineB")
			return New(cfg, nm, fm), nil
		},
	})
}
