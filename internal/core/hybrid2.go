// Package core implements Hybrid2, the paper's contribution: a hybrid
// memory-system architecture that combines a small sectored DRAM cache
// with a flat-address-space migration scheme in the same 3D-stacked near
// memory.
//
// A small slice of NM (64 MB in the paper) forms the data array of a
// sectored DRAM cache whose tags — the eXtended Tag Array (XTA) — live
// on-chip. XTA entries carry, besides the usual sector tag and per-line
// valid/dirty vectors, a near-memory pointer, a far-memory pointer and a
// saturating access counter (Fig. 4). The NM pointer decouples cache
// set/way from physical NM location, so a sector selected for migration
// on eviction keeps the NM slot its lines were fetched into — migration
// without data movement (§3.1). The XTA doubles as a cache of the in-NM
// remap table, unifying DRAM-cache tag lookup with migration address
// translation (§3.2-3.3).
//
// The memory access path follows Fig. 7, NM allocation follows Fig. 8
// (FIFO over NM with inverted-remap/XTA occupancy checks), DRAM-cache
// eviction follows Fig. 9, and the migration decision follows Fig. 10:
// an access-counter rank test within the set, the net-cost function
// Netcost = 2*Nall − Nvalid − Ndirty + 1, and an FM-bandwidth budget
// accumulated from demand FM accesses and reset every 100 K cycles
// (§3.7).
package core

import (
	"math/bits"

	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Mode selects the full design or one of the ablations of Fig. 14.
type Mode int

// Ablation modes.
const (
	// Normal is the full Hybrid2 design.
	Normal Mode = iota
	// CacheOnly is the sectored DRAM cache alone: no migration, no
	// address-translation overheads, NM flat capacity unused.
	CacheOnly
	// MigrateAll migrates every FM sector evicted from the DRAM cache.
	MigrateAll
	// MigrateNone never migrates.
	MigrateNone
	// NoRemapOverhead runs the full policy but remap-table, inverted
	// remap-table and Free-FM-Stack accesses complete instantly.
	NoRemapOverhead
)

func (m Mode) String() string {
	switch m {
	case Normal:
		return "HYBRID2"
	case CacheOnly:
		return "Cache-Only"
	case MigrateAll:
		return "Migr-All"
	case MigrateNone:
		return "Migr-None"
	case NoRemapOverhead:
		return "No-Remap"
	}
	return "Mode?"
}

// Config parameterizes Hybrid2. The defaults of Default correspond to the
// best design point of the paper's exploration (Fig. 11): 64 MB cache,
// 2 KB sectors, 256 B cache lines, 16-way XTA.
type Config struct {
	SectorBytes int
	LineBytes   int
	Assoc       int
	NMBytes     uint64
	FMBytes     uint64
	CacheBytes  uint64 // NM slice used as the DRAM cache data array
	XTALatency  memtypes.Tick
	CounterBits int
	// MetaFracPermille reserves this fraction (in 1/1000) of NM for the
	// remap structures (§3.3 reports 3.5%).
	MetaFracPermille int
	FMBudgetReset    memtypes.Tick
	FreeStackOnChip  int
	Mode             Mode
	// FreeSpaceAware enables the §3.8 extension: ISA-Alloc/ISA-Free
	// hints delivered through MarkFree/MarkUsed let the allocator and
	// eviction paths skip copies of sectors holding no live data.
	FreeSpaceAware bool
	Seed           uint64
}

// Default returns the paper's Hybrid2 configuration for the given
// (scaled) NM and FM sizes.
func Default(nmBytes, fmBytes, cacheBytes uint64, seed uint64) Config {
	return Config{
		SectorBytes:      config.SectorBytes,
		LineBytes:        config.Hybrid2LineBytes,
		Assoc:            config.XTAAssoc,
		NMBytes:          nmBytes,
		FMBytes:          fmBytes,
		CacheBytes:       cacheBytes,
		XTALatency:       2,
		CounterBits:      9,
		MetaFracPermille: 35,
		FMBudgetReset:    config.PaperFMBudgetResetCycles,
		FreeStackOnChip:  16,
		Mode:             Normal,
		Seed:             seed,
	}
}

// Slot states of NM sectors (see DESIGN.md §5).
const (
	slotFlat      uint8 = iota // flat-space data, not referenced by the XTA
	slotFlatRef                // flat-space data currently linked to an XTA entry (case 2a)
	slotCacheData              // holds cached lines of an FM-resident sector (case 2b)
	slotCacheFree              // assigned to the cache, currently empty
)

const invalidLogical = ^uint32(0)

// xtaEntry is one eXtended Tag Array entry (Fig. 4).
type xtaEntry struct {
	logical  uint32 // sector tag (full logical sector number)
	valid    bool
	migrated bool   // sector lives in NM (FM pointer unused)
	nmPtr    uint32 // NM slot holding the sector's cached lines / data
	fmPtr    uint32 // FM slot of the sector while not migrated
	ctr      uint16 // saturating access counter (§3.7.1)
	validVec uint64 // per-line valid flags
	dirtyVec uint64 // per-line dirty flags
	lru      uint64
}

// Hybrid2 implements memtypes.MemorySystem.
type Hybrid2 struct {
	cfg Config
	nm  *memsys.Device
	fm  *memsys.Device

	linesPerSector int
	fullMask       uint64
	ctrMax         uint16

	sets    int
	entries []xtaEntry
	clock   uint64

	poolSectors uint32 // NM slots (cache + flat)
	flatSectors uint32 // slots initially holding flat data
	fmSectors   uint32

	remap     []loc    // logical sector -> location
	invRemap  []uint32 // NM slot -> logical sector (invalidLogical if none)
	slotState []uint8
	freeNM    []uint32 // slotCacheFree slots available for 2b allocations
	freeFM    []uint32 // FM slots with no live data (Free-FM-Stack)
	stackOn   int      // Free-FM-Stack entries currently on-chip

	nmFIFO    uint32
	fmBudget  int64
	nextReset memtypes.Tick
	metaBase  memtypes.Addr

	// §3.8 free-space extension state.
	unused      []bool
	savedCopies uint64

	stats memtypes.MemStats
	path  PathStats
}

// PathStats counts how often each outcome of the Fig. 7 memory access
// path was taken, for comparison with the paper's §3.4 claim that only
// ~9.3% of accesses need the heavyweight 2b handling.
type PathStats struct {
	Hit1a  uint64 // XTA hit, line present in NM
	Hit1b  uint64 // XTA hit, line fetched from FM
	Miss2a uint64 // XTA miss, sector already in NM (adopted)
	Miss2b uint64 // XTA miss, sector in FM (allocate + fetch)
}

// Frac2b returns the fraction of accesses that took the 2b path.
func (p PathStats) Frac2b() float64 {
	total := p.Hit1a + p.Hit1b + p.Miss2a + p.Miss2b
	if total == 0 {
		return 0
	}
	return float64(p.Miss2b) / float64(total)
}

// PathStats returns the Fig. 7 outcome counters.
func (h *Hybrid2) PathStats() PathStats { return h.path }

type loc struct {
	nm  bool
	idx uint32
}

// New builds Hybrid2 over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *Hybrid2 {
	if cfg.SectorBytes <= 0 || cfg.LineBytes <= 0 || cfg.SectorBytes%cfg.LineBytes != 0 {
		panic("core: sector must be a positive multiple of the line size")
	}
	lps := cfg.SectorBytes / cfg.LineBytes
	if lps > 64 {
		panic("core: more than 64 lines per sector unsupported")
	}
	metaBytes := cfg.NMBytes * uint64(cfg.MetaFracPermille) / 1000
	pool := uint32((cfg.NMBytes - metaBytes) / uint64(cfg.SectorBytes))
	cacheSlots := uint32(cfg.CacheBytes / uint64(cfg.SectorBytes))
	if cacheSlots == 0 || cacheSlots >= pool {
		panic("core: cache slice must be a non-zero strict subset of NM")
	}
	sets := int(cacheSlots) / cfg.Assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("core: XTA set count must be a positive power of two")
	}
	flat := pool - cacheSlots
	fmSec := uint32(cfg.FMBytes / uint64(cfg.SectorBytes))

	h := &Hybrid2{
		cfg:            cfg,
		nm:             nm,
		fm:             fm,
		linesPerSector: lps,
		fullMask:       (uint64(1) << lps) - 1,
		ctrMax:         uint16(1)<<cfg.CounterBits - 1,
		sets:           sets,
		entries:        make([]xtaEntry, int(cacheSlots)),
		poolSectors:    pool,
		flatSectors:    flat,
		fmSectors:      fmSec,
		remap:          make([]loc, uint64(flat)+uint64(fmSec)),
		invRemap:       make([]uint32, pool),
		slotState:      make([]uint8, pool),
		freeNM:         make([]uint32, 0, cacheSlots),
		freeFM:         make([]uint32, 0, cacheSlots),
		nextReset:      cfg.FMBudgetReset,
		metaBase:       memtypes.Addr(pool) * memtypes.Addr(cfg.SectorBytes),
	}

	// Initial placement. Normal modes: logical sectors spread randomly
	// over flat NM + FM proportionally to capacity (§4), memoized per
	// (seed, geometry) in placement.go — the fill also leaves occupied NM
	// slots in state slotFlat, the slice's zero value. CacheOnly: the
	// flat NM region is unused and everything lives in FM at its home.
	if cfg.Mode == CacheOnly {
		for i := range h.invRemap {
			h.invRemap[i] = invalidLogical
		}
		for l := range h.remap {
			h.remap[l] = loc{nm: false, idx: uint32(l) % fmSec}
		}
	} else {
		initialPlacement(cfg.Seed, flat, fmSec, cacheSlots, h.remap, h.invRemap)
	}
	// Cache slots start free, at pool indices [0, cacheSlots).
	for s := uint32(0); s < cacheSlots; s++ {
		h.slotState[s] = slotCacheFree
		h.freeNM = append(h.freeNM, s)
	}
	if cfg.FreeSpaceAware {
		h.unused = make([]bool, len(h.remap))
	}
	return h
}

// Name implements MemorySystem.
func (h *Hybrid2) Name() string { return h.cfg.Mode.String() }

// Stats implements MemorySystem.
func (h *Hybrid2) Stats() *memtypes.MemStats { return &h.stats }

// Sectors returns the number of logical sectors the flat space exposes.
func (h *Hybrid2) Sectors() uint32 { return uint32(len(h.remap)) }

func (h *Hybrid2) nmAddr(slot uint32, off memtypes.Addr) memtypes.Addr {
	return memtypes.Addr(slot)*memtypes.Addr(h.cfg.SectorBytes) + off
}

func (h *Hybrid2) fmAddr(slot uint32, off memtypes.Addr) memtypes.Addr {
	return memtypes.Addr(slot)*memtypes.Addr(h.cfg.SectorBytes) + off
}

// metaRead models a metadata structure read in NM. Critical-path reads
// return the completion time; background ones are fire-and-forget.
func (h *Hybrid2) metaRead(now memtypes.Tick, key uint32) memtypes.Tick {
	if h.cfg.Mode == NoRemapOverhead || h.cfg.Mode == CacheOnly {
		return now
	}
	done := h.nm.Access(now, h.metaBase+memtypes.Addr(key%4096)*64, 64, false)
	h.stats.NMReadBytes += 64
	h.stats.MetaNMBytes += 64
	return done
}

func (h *Hybrid2) metaWrite(now memtypes.Tick, key uint32) {
	if h.cfg.Mode == NoRemapOverhead || h.cfg.Mode == CacheOnly {
		return
	}
	h.nm.AccessBG(now, h.metaBase+memtypes.Addr(key%4096)*64, 64, true)
	h.stats.NMWriteBytes += 64
	h.stats.MetaNMBytes += 64
}

// metaReadBG is an off-critical-path metadata read (inverted remap table
// probes during allocation, Free-FM-Stack refills).
func (h *Hybrid2) metaReadBG(now memtypes.Tick, key uint32) {
	if h.cfg.Mode == NoRemapOverhead || h.cfg.Mode == CacheOnly {
		return
	}
	h.nm.AccessBG(now, h.metaBase+memtypes.Addr(key%4096)*64, 64, false)
	h.stats.NMReadBytes += 64
	h.stats.MetaNMBytes += 64
}

// pushFreeFM pushes an FM slot on the Free-FM-Stack; pushes beyond the
// on-chip window spill to NM (§3.3).
func (h *Hybrid2) pushFreeFM(now memtypes.Tick, slot uint32) {
	h.freeFM = append(h.freeFM, slot)
	if h.stackOn < h.cfg.FreeStackOnChip {
		h.stackOn++
		return
	}
	h.metaWrite(now, slot)
}

// popFreeFM pops a free FM slot, refilling the on-chip window from NM
// when it runs dry.
func (h *Hybrid2) popFreeFM(now memtypes.Tick) uint32 {
	if len(h.freeFM) == 0 {
		panic("core: Free-FM-Stack empty during allocation")
	}
	slot := h.freeFM[len(h.freeFM)-1]
	h.freeFM = h.freeFM[:len(h.freeFM)-1]
	if h.stackOn > 0 {
		h.stackOn--
		if h.stackOn == 0 && len(h.freeFM) > 0 {
			h.metaReadBG(now, slot) // refill the on-chip window
			h.stackOn = min(h.cfg.FreeStackOnChip, len(h.freeFM))
		}
	}
	return slot
}

// maybeResetBudget implements the periodic FM-access-counter reset
// (§3.7.3) that adapts migration bandwidth to workload phases.
func (h *Hybrid2) maybeResetBudget(now memtypes.Tick) {
	for now >= h.nextReset {
		h.fmBudget = 0
		h.nextReset += h.cfg.FMBudgetReset
	}
}

// allocateNM implements Fig. 8: find a flat NM victim with the FIFO
// counter (skipping slots assigned to the DRAM cache, checked through the
// inverted remap table and the XTA), displace it to a free FM slot, and
// hand its slot to the cache.
func (h *Hybrid2) allocateNM(now memtypes.Tick) uint32 {
	for probes := uint32(0); probes <= h.poolSectors; probes++ {
		slot := h.nmFIFO
		h.nmFIFO++
		if h.nmFIFO >= h.poolSectors {
			h.nmFIFO = 0
		}
		// Inverted-remap lookup to learn the occupant (background).
		h.metaReadBG(now, slot)
		if h.slotState[slot] != slotFlat {
			continue // assigned to the DRAM cache: must not migrate out
		}
		displaced := h.invRemap[slot]
		fmSlot := h.popFreeFM(now)
		if h.sectorUnused(displaced) {
			// §3.8: the displaced sector holds no live data — remap it
			// without copying a byte.
			h.savedCopies++
		} else {
			// Copy the whole victim sector NM -> FM (background).
			rd := h.nm.AccessBG(now, h.nmAddr(slot, 0), h.cfg.SectorBytes, false)
			h.fm.AccessBG(rd, h.fmAddr(fmSlot, 0), h.cfg.SectorBytes, true)
			h.stats.NMReadBytes += uint64(h.cfg.SectorBytes)
			h.stats.FMWriteBytes += uint64(h.cfg.SectorBytes)
		}
		h.remap[displaced] = loc{nm: false, idx: fmSlot}
		h.metaWrite(now, displaced)
		h.invRemap[slot] = invalidLogical
		h.slotState[slot] = slotCacheFree
		return slot
	}
	panic("core: no flat NM slot available for allocation")
}

// takeSlot returns a cache-free NM slot, displacing a flat sector if the
// cache pool is exhausted.
func (h *Hybrid2) takeSlot(now memtypes.Tick) uint32 {
	if n := len(h.freeNM); n > 0 {
		slot := h.freeNM[n-1]
		h.freeNM = h.freeNM[:n-1]
		return slot
	}
	return h.allocateNM(now)
}

// rankWins implements the access-counter comparison of §3.7.1: the victim
// is considered for migration only if its counter is >= every other
// non-saturated counter in the set (saturated counters are ignored to
// avoid starvation; migrated sectors' counters are never incremented).
func (h *Hybrid2) rankWins(set int, victim *xtaEntry) bool {
	base := set * h.cfg.Assoc
	for i := base; i < base+h.cfg.Assoc; i++ {
		e := &h.entries[i]
		if !e.valid || e == victim || e.ctr >= h.ctrMax {
			continue
		}
		if e.ctr > victim.ctr {
			return false
		}
	}
	return true
}

// evictEntry implements Fig. 9 and Fig. 10 for the LRU victim of a set.
func (h *Hybrid2) evictEntry(now memtypes.Tick, set int, e *xtaEntry) {
	if e.migrated {
		// Case 1: all lines already in NM, remap already points there.
		// Release the reference; the slot keeps the flat data.
		if h.slotState[e.nmPtr] == slotFlatRef {
			h.slotState[e.nmPtr] = slotFlat
		}
		e.valid = false
		return
	}

	nAll := h.linesPerSector
	nValid := bits.OnesCount64(e.validVec)
	nDirty := bits.OnesCount64(e.dirtyVec)
	netCost := int64(2*nAll - nValid - nDirty + 1)

	migrate := false
	switch h.cfg.Mode {
	case MigrateAll:
		migrate = true
	case MigrateNone, CacheOnly:
		migrate = false
	default:
		if h.rankWins(set, e) && netCost <= h.fmBudget {
			h.fmBudget -= netCost
			migrate = true
		}
	}

	lb := h.cfg.LineBytes
	if migrate {
		// Fetch the lines not yet present, in the background; the sector
		// keeps the NM slot it already occupies (indirection, §3.1).
		missing := h.fullMask &^ e.validVec
		for m := missing; m != 0; m &= m - 1 {
			line := uint(bits.TrailingZeros64(m))
			off := memtypes.Addr(line) * memtypes.Addr(lb)
			rd := h.fm.AccessBG(now, h.fmAddr(e.fmPtr, off), lb, false)
			h.nm.AccessBG(rd, h.nmAddr(e.nmPtr, off), lb, true)
			h.stats.FMReadBytes += uint64(lb)
			h.stats.NMWriteBytes += uint64(lb)
		}
		h.remap[e.logical] = loc{nm: true, idx: e.nmPtr}
		h.metaWrite(now, e.logical)
		h.pushFreeFM(now, e.fmPtr)
		h.invRemap[e.nmPtr] = e.logical
		h.slotState[e.nmPtr] = slotFlat
		h.stats.Migrations++
	} else if h.sectorUnused(e.logical) {
		// §3.8: the sector holds no live data — drop it without
		// write-backs.
		h.savedCopies++
		h.invRemap[e.nmPtr] = invalidLogical
		h.slotState[e.nmPtr] = slotCacheFree
		h.freeNM = append(h.freeNM, e.nmPtr)
		h.stats.Evictions++
	} else {
		// Write dirty lines back to the sector's FM home; no remapping
		// structures change (§3.6).
		for m := e.dirtyVec; m != 0; m &= m - 1 {
			line := uint(bits.TrailingZeros64(m))
			off := memtypes.Addr(line) * memtypes.Addr(lb)
			rd := h.nm.AccessBG(now, h.nmAddr(e.nmPtr, off), lb, false)
			h.fm.AccessBG(rd, h.fmAddr(e.fmPtr, off), lb, true)
			h.stats.NMReadBytes += uint64(lb)
			h.stats.FMWriteBytes += uint64(lb)
		}
		h.invRemap[e.nmPtr] = invalidLogical
		h.slotState[e.nmPtr] = slotCacheFree
		h.freeNM = append(h.freeNM, e.nmPtr)
		h.stats.Evictions++
	}
	e.valid = false
}

// lookupXTA returns the matching entry, or nil on a miss.
func (h *Hybrid2) lookupXTA(set int, logical uint32) *xtaEntry {
	base := set * h.cfg.Assoc
	for i := base; i < base+h.cfg.Assoc; i++ {
		e := &h.entries[i]
		if e.valid && e.logical == logical {
			return e
		}
	}
	return nil
}

// allocateEntry makes room in a set (evicting the LRU entry if needed)
// and returns a free entry.
func (h *Hybrid2) allocateEntry(now memtypes.Tick, set int) *xtaEntry {
	base := set * h.cfg.Assoc
	victim := base
	for i := base; i < base+h.cfg.Assoc; i++ {
		e := &h.entries[i]
		if !e.valid {
			return e
		}
		if e.lru < h.entries[victim].lru {
			victim = i
		}
	}
	e := &h.entries[victim]
	h.evictEntry(now, set, e)
	return e
}

// Access implements the memory access path of Fig. 7.
func (h *Hybrid2) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	h.maybeResetBudget(now)
	h.stats.Requests++

	logical := uint32(uint64(addr) / uint64(h.cfg.SectorBytes))
	if logical >= h.Sectors() {
		logical %= h.Sectors()
	}
	offset := memtypes.Addr(uint64(addr) % uint64(h.cfg.SectorBytes))
	line := uint(uint64(offset) / uint64(h.cfg.LineBytes))
	set := int(logical % uint32(h.sets))
	lb := h.cfg.LineBytes
	lineOff := memtypes.Addr(line) * memtypes.Addr(lb)

	// Every request goes through the on-chip XTA (§3.2).
	now += h.cfg.XTALatency
	h.clock++

	if e := h.lookupXTA(set, logical); e != nil { // 1: XTA hit
		e.lru = h.clock
		if !e.migrated && e.ctr < h.ctrMax {
			e.ctr++
		}
		if e.validVec&(1<<line) != 0 { // 1a: line hit
			h.path.Hit1a++
			h.stats.ServedNM++
			done := h.nm.Access(now, h.nmAddr(e.nmPtr, offset), 64, write)
			if write {
				e.dirtyVec |= 1 << line
				h.stats.NMWriteBytes += 64
			} else {
				h.stats.NMReadBytes += 64
			}
			return done
		}
		// 1b: line miss — sector is in FM, fetch the line with the
		// demanded 64 B chunk first (critical-word-first).
		h.path.Hit1b++
		h.stats.ServedFM++
		h.fmBudget++
		done, fullDone := h.fm.AccessCriticalFirst(now, h.fmAddr(e.fmPtr, lineOff), lb, 64)
		h.nm.AccessBG(fullDone, h.nmAddr(e.nmPtr, lineOff), lb, true)
		h.stats.FMReadBytes += uint64(lb)
		h.stats.NMWriteBytes += uint64(lb)
		e.validVec |= 1 << line
		if write {
			e.dirtyVec |= 1 << line
		}
		return done
	}

	// 2: XTA miss — read the remap table (critical path), allocate an
	// entry for the sector.
	now = h.metaRead(now, logical)
	l := h.remap[logical]
	e := h.allocateEntry(now, set)
	e.valid = true
	e.logical = logical
	e.lru = h.clock
	e.ctr = 0

	if l.nm { // 2a: sector already in NM
		h.path.Miss2a++
		e.migrated = true
		e.nmPtr = l.idx
		e.fmPtr = 0
		e.validVec = h.fullMask
		e.dirtyVec = h.fullMask // convention of §3.2
		if h.slotState[l.idx] == slotFlat {
			h.slotState[l.idx] = slotFlatRef
		}
		h.stats.ServedNM++
		done := h.nm.Access(now, h.nmAddr(l.idx, offset), 64, write)
		if write {
			h.stats.NMWriteBytes += 64
		} else {
			h.stats.NMReadBytes += 64
		}
		return done
	}

	// 2b: sector in FM — allocate an NM slot, fetch the requested line,
	// update the inverted remap table for allocation correctness (§3.4).
	h.path.Miss2b++
	slot := h.takeSlot(now)
	e.migrated = false
	e.nmPtr = slot
	e.fmPtr = l.idx
	e.validVec = 1 << line
	e.dirtyVec = 0
	if write {
		e.dirtyVec = 1 << line
	}
	h.slotState[slot] = slotCacheData
	h.invRemap[slot] = logical
	h.metaWrite(now, slot)

	h.stats.ServedFM++
	h.fmBudget++
	done, fullDone := h.fm.AccessCriticalFirst(now, h.fmAddr(l.idx, lineOff), lb, 64)
	h.nm.AccessBG(fullDone, h.nmAddr(slot, lineOff), lb, true)
	h.stats.FMReadBytes += uint64(lb)
	h.stats.NMWriteBytes += uint64(lb)
	return done
}

// Finish implements MemorySystem (no deferred interval work).
func (h *Hybrid2) Finish(memtypes.Tick) {}

// CheckInvariants verifies the remap bijection and slot-state consistency
// (used by property tests):
//   - every logical sector maps to exactly one physical location
//   - NM slots in flat states have a matching inverted-remap owner
//   - cache-accounting identity: cacheFree + cacheData + freeFM = cache slots
func (h *Hybrid2) CheckInvariants() bool {
	cacheSlots := uint32(len(h.entries))
	seenNM := make(map[uint32]bool)
	seenFM := make(map[uint32]bool)
	for logical, l := range h.remap {
		if l.nm {
			if l.idx >= h.poolSectors || seenNM[l.idx] {
				return false
			}
			seenNM[l.idx] = true
			st := h.slotState[l.idx]
			if h.cfg.Mode != CacheOnly {
				if st != slotFlat && st != slotFlatRef {
					return false
				}
				if h.invRemap[l.idx] != uint32(logical) {
					return false
				}
			}
		} else {
			if l.idx >= h.fmSectors {
				return false
			}
			if h.cfg.Mode != CacheOnly {
				if seenFM[l.idx] {
					return false
				}
				seenFM[l.idx] = true
			}
		}
	}
	var free, data uint32
	for s := uint32(0); s < h.poolSectors; s++ {
		switch h.slotState[s] {
		case slotCacheFree:
			free++
		case slotCacheData:
			data++
		}
	}
	if h.cfg.Mode == CacheOnly {
		return true
	}
	if free != uint32(len(h.freeNM)) {
		return false
	}
	if free+data+uint32(len(h.freeFM)) != cacheSlots {
		return false
	}
	// No FM slot may be both free and the home of a live sector.
	for _, f := range h.freeFM {
		if seenFM[f] {
			return false
		}
	}
	return true
}
