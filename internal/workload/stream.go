package workload

import (
	"math"

	"hybridmem/internal/memtypes"
)

// GiB is one binary gigabyte.
const GiB = 1 << 30

const lineBytes = memtypes.CPULineBytes

// Stream produces one core's memory-access trace: a sequence of
// (instruction gap, address, is-write) records. Streams are deterministic
// for a given (spec, core, scale, seed) and allocation-free per record.
type Stream struct {
	spec  Spec
	rng   uint64
	scale int

	regionBase memtypes.Addr // this core's region
	regionLen  uint64
	hotLen     uint64
	hotBase    uint64 // offset within region, moves across phases

	cur       uint64 // current offset within region (line aligned)
	runLeft   int    // remaining lines in the current sequential run
	gapBase   uint64 // mean instructions between accesses
	instrLeft int64  // remaining instruction budget
	phaseLen  int64  // instructions per phase
	phaseLeft int64
	phase     int

	// Integer thresholds equivalent to the spec's float probabilities:
	// randN(1<<20) < thresh  ⟺  float64(randN(1<<20))/(1<<20) < p.
	// Scaling by a power of two is exact in float64, so the hot loop can
	// compare integers without changing a single draw.
	hotThresh   uint64
	runThresh   uint64
	writeThresh uint64
}

// thresh20 returns the integer t making "x < t" (for x in [0,1<<20))
// equivalent to "float64(x)/(1<<20) < p": both sides of the float compare
// scale exactly by 2^20, so t = ceil(p * 2^20).
func thresh20(p float64) uint64 {
	t := math.Ceil(p * (1 << 20))
	if t <= 0 {
		return 0
	}
	return uint64(t)
}

// NewStream builds the trace stream for one core of an 8-core run.
// instrBudget is the per-core instruction count; scale divides the paper's
// capacities (footprints, caches) as described in DESIGN.md §6.
func NewStream(spec Spec, core, scale int, instrBudget uint64, seed uint64) *Stream {
	s := &Stream{
		spec:      spec,
		rng:       seed*0x9E3779B97F4A7C15 + uint64(core+1)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB,
		scale:     scale,
		instrLeft: int64(instrBudget),
	}
	if s.rng == 0 {
		s.rng = 1
	}

	fp := uint64(spec.PaperFootprintGB * GiB / float64(scale))
	const minRegion = 64 * 1024
	if spec.Kind == MP {
		per := fp / 8
		if per < minRegion {
			per = minRegion
		}
		per &^= lineBytes - 1
		s.regionBase = memtypes.Addr(uint64(core) * per)
		s.regionLen = per
	} else {
		if fp < minRegion {
			fp = minRegion
		}
		fp &^= lineBytes - 1
		s.regionBase = 0
		s.regionLen = fp
	}

	s.hotLen = uint64(float64(s.regionLen)*spec.HotFrac) &^ (lineBytes - 1)
	if s.hotLen < lineBytes {
		s.hotLen = lineBytes
	}
	s.gapBase = uint64(1000 / spec.APKI)
	if s.gapBase == 0 {
		s.gapBase = 1
	}
	phases := spec.Phases
	if phases < 1 {
		phases = 1
	}
	s.phaseLen = int64(instrBudget) / int64(phases)
	if s.phaseLen == 0 {
		s.phaseLen = int64(instrBudget)
	}
	s.phaseLeft = s.phaseLen
	s.hotThresh = thresh20(spec.HotProb)
	mean := spec.SeqRun
	if mean < 1 {
		mean = 1
	}
	s.runThresh = thresh20(1 - 1/mean)
	s.writeThresh = thresh20(spec.WriteFrac)
	s.placeHot()
	s.newRun()
	return s
}

// xorshift64* PRNG: fast, deterministic, no allocation.
func (s *Stream) next64() uint64 {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 0x2545F4914F6CDD1D
}

// randN returns a uniform value in [0, n).
func (s *Stream) randN(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return s.next64() % n
}

func (s *Stream) placeHot() {
	span := s.regionLen - s.hotLen
	if span == 0 {
		s.hotBase = 0
		return
	}
	// Deterministic per-phase placement: rotate by a fixed odd fraction so
	// consecutive phases overlap little (working-set change).
	s.hotBase = (uint64(s.phase) * (s.regionLen*2/5 + lineBytes)) % span
	s.hotBase &^= lineBytes - 1
}

func (s *Stream) newRun() {
	// Pick the next run start: hot set with probability HotProb, the
	// whole region otherwise. Within the hot set, picks concentrate on
	// nested inner cores (25% to hot/64, 25% to hot/8, 50% spread over
	// the full hot set) — real workloads exhibit steep Zipf-like reuse
	// skew, not uniform hot-set access, and the evaluated policies (small
	// staging caches in particular) depend on it.
	if s.spec.HotProb > 0 && s.randN(1<<20) < s.hotThresh {
		span := s.hotLen
		switch s.randN(4) {
		case 0:
			span = s.hotLen / 64
		case 1:
			span = s.hotLen / 8
		}
		if span < lineBytes {
			span = lineBytes
		}
		s.cur = s.hotBase + s.randN(span/lineBytes)*lineBytes
	} else {
		s.cur = s.randN(s.regionLen/lineBytes) * lineBytes
	}
	// Geometric run length with mean SeqRun.
	run := 1
	for s.randN(1<<20) < s.runThresh && run < 1024 {
		run++
	}
	s.runLeft = run
}

// Next returns the next record: gap non-memory instructions followed by a
// 64 B access at addr. ok is false once the instruction budget is spent.
func (s *Stream) Next() (gap uint64, addr memtypes.Addr, write bool, ok bool) {
	if s.instrLeft <= 0 {
		return 0, 0, false, false
	}
	// Gap with ±50% jitter around the mean.
	gap = s.gapBase/2 + s.randN(s.gapBase+1)
	spent := int64(gap) + 1
	s.instrLeft -= spent
	s.phaseLeft -= spent
	if s.phaseLeft <= 0 {
		s.phase++
		s.phaseLeft = s.phaseLen
		s.placeHot()
		s.newRun()
	}

	if s.runLeft <= 0 {
		s.newRun()
	}
	addr = s.regionBase + memtypes.Addr(s.cur)
	s.runLeft--
	s.cur += lineBytes
	if s.cur >= s.regionLen {
		s.cur = 0
	}
	write = s.randN(1<<20) < s.writeThresh
	return gap, addr, write, true
}

// NextBatch fills dst with up to len(dst) records and returns how many it
// produced. A short count means the instruction budget ran out. Draw order
// is identical to repeated Next calls.
func (s *Stream) NextBatch(dst []memtypes.Rec) int {
	n := 0
	for n < len(dst) {
		gap, addr, write, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = memtypes.Rec{Gap: gap, Addr: addr, Write: write}
		n++
	}
	return n
}

// Footprint returns the total bytes this stream can touch (its region).
func (s *Stream) Footprint() uint64 { return s.regionLen }

// RegionBase returns the base address of this core's region.
func (s *Stream) RegionBase() memtypes.Addr { return s.regionBase }
