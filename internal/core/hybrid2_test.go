package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// smallConfig returns a deliberately tiny Hybrid2 so tests exercise
// evictions, migrations and NM allocation quickly: 1 MB NM, 8 MB FM,
// 64 KB cache (32 sectors, 2 sets of 16).
func smallConfig() Config {
	cfg := Default(1<<20, 8<<20, 64<<10, 7)
	return cfg
}

func newSmall(t *testing.T, mode Mode) *Hybrid2 {
	t.Helper()
	cfg := smallConfig()
	cfg.Mode = mode
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestGeometry(t *testing.T) {
	h := newSmall(t, Normal)
	if h.linesPerSector != 8 {
		t.Fatalf("lines per sector %d, want 8 (2048/256)", h.linesPerSector)
	}
	if h.sets != 2 {
		t.Fatalf("sets %d, want 2", h.sets)
	}
	if got := h.Sectors(); got == 0 {
		t.Fatal("no logical sectors")
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated at construction")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.LineBytes = 192 },            // not dividing sector
		func(c *Config) { c.CacheBytes = 0 },             // no cache
		func(c *Config) { c.CacheBytes = c.NMBytes * 2 }, // cache > NM
		func(c *Config) { c.LineBytes = 16 },             // >64 lines/sector
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			cfg := smallConfig()
			mutate(&cfg)
			New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
		}()
	}
}

func TestXTAHitServesFromNM(t *testing.T) {
	h := newSmall(t, Normal)
	// Find a logical sector initially in FM so the first access is 2b.
	var addr memtypes.Addr
	for l := uint32(0); l < h.Sectors(); l++ {
		if !h.remap[l].nm {
			addr = memtypes.Addr(l) * memtypes.Addr(h.cfg.SectorBytes)
			break
		}
	}
	h.Access(0, addr, false) // 2b: miss, fetch line from FM
	s := h.Stats()
	if s.ServedFM != 1 {
		t.Fatalf("first access served from %+v, want FM", s)
	}
	h.Access(1000, addr, false) // 1a: line hit in NM
	if s.ServedNM != 1 {
		t.Fatalf("second access not served from NM: %+v", s)
	}
}

func TestSectorInNMAdoptedWithoutTraffic(t *testing.T) {
	h := newSmall(t, Normal)
	var addr memtypes.Addr
	for l := uint32(0); l < h.Sectors(); l++ {
		if h.remap[l].nm {
			addr = memtypes.Addr(l) * memtypes.Addr(h.cfg.SectorBytes)
			break
		}
	}
	before := h.Stats().FMTraffic()
	h.Access(0, addr, false) // 2a: adopt NM-resident sector
	if h.Stats().ServedNM != 1 {
		t.Fatal("NM-resident sector not served from NM")
	}
	if h.Stats().FMTraffic() != before {
		t.Fatal("2a access generated FM traffic")
	}
	// All lines must now be valid: another line of the sector hits.
	h.Access(100, addr+1024, false)
	if h.Stats().ServedNM != 2 {
		t.Fatal("other line of adopted sector missed")
	}
}

func TestLineMissFetchesOnlyOneLine(t *testing.T) {
	h := newSmall(t, Normal)
	var addr memtypes.Addr
	for l := uint32(0); l < h.Sectors(); l++ {
		if !h.remap[l].nm {
			addr = memtypes.Addr(l) * memtypes.Addr(h.cfg.SectorBytes)
			break
		}
	}
	h.Access(0, addr, false)
	fmAfterFirst := h.Stats().FMReadBytes
	if fmAfterFirst != uint64(h.cfg.LineBytes) {
		t.Fatalf("2b fetched %d bytes, want one line (%d)", fmAfterFirst, h.cfg.LineBytes)
	}
	h.Access(1000, addr+memtypes.Addr(h.cfg.LineBytes), false) // 1b: next line
	if got := h.Stats().FMReadBytes - fmAfterFirst; got != uint64(h.cfg.LineBytes) {
		t.Fatalf("1b fetched %d bytes, want one line", got)
	}
}

func TestNetCostFormula(t *testing.T) {
	// Netcost = 2*Nall - Nvalid - Ndirty + 1 (§3.7.2). Bounds: 1 when all
	// valid+dirty, 2*Nall when a single clean line.
	nAll := 8
	cases := []struct {
		valid, dirty int
		want         int64
	}{
		{8, 8, 1},
		{1, 0, 16},
		{4, 2, 11},
		{8, 0, 9},
	}
	for _, c := range cases {
		got := int64(2*nAll - c.valid - c.dirty + 1)
		if got != c.want {
			t.Fatalf("netcost(valid=%d,dirty=%d) = %d, want %d", c.valid, c.dirty, got, c.want)
		}
	}
}

func TestMigrateAllMigratesOnEviction(t *testing.T) {
	h := newSmall(t, MigrateAll)
	// Touch enough distinct FM sectors mapping to set 0 to overflow it.
	touched := 0
	for l := uint32(0); l < h.Sectors() && touched < h.cfg.Assoc+4; l++ {
		if !h.remap[l].nm || h.slotState[h.remap[l].idx] != slotFlat {
			if !h.remap[l].nm && int(l)%h.sets == 0 {
				h.Access(memtypes.Tick(touched)*1000, memtypes.Addr(l)*memtypes.Addr(h.cfg.SectorBytes), false)
				touched++
			}
		}
	}
	if h.Stats().Migrations == 0 {
		t.Fatal("MigrateAll produced no migrations")
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated after migrations")
	}
}

func TestMigrateNoneNeverMigrates(t *testing.T) {
	h := newSmall(t, MigrateNone)
	var now memtypes.Tick
	rng := rand.New(rand.NewSource(1))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	for i := 0; i < 20000; i++ {
		addr := memtypes.Addr(rng.Uint64() % space)
		now += 50
		h.Access(now, addr, rng.Intn(3) == 0)
	}
	if h.Stats().Migrations != 0 {
		t.Fatalf("MigrateNone migrated %d sectors", h.Stats().Migrations)
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated")
	}
}

func TestCacheOnlyHasNoMetaTraffic(t *testing.T) {
	h := newSmall(t, CacheOnly)
	var now memtypes.Tick
	rng := rand.New(rand.NewSource(2))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	for i := 0; i < 20000; i++ {
		addr := memtypes.Addr(rng.Uint64() % space)
		now += 50
		h.Access(now, addr, rng.Intn(3) == 0)
	}
	if h.Stats().MetaNMBytes != 0 {
		t.Fatalf("CacheOnly charged %d metadata bytes", h.Stats().MetaNMBytes)
	}
	if h.Stats().Migrations != 0 {
		t.Fatal("CacheOnly migrated")
	}
}

func TestNoRemapChargesNoMetaTraffic(t *testing.T) {
	h := newSmall(t, NoRemapOverhead)
	var now memtypes.Tick
	rng := rand.New(rand.NewSource(3))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	for i := 0; i < 20000; i++ {
		addr := memtypes.Addr(rng.Uint64() % space)
		now += 50
		h.Access(now, addr, rng.Intn(3) == 0)
	}
	if h.Stats().MetaNMBytes != 0 {
		t.Fatalf("NoRemapOverhead charged %d metadata bytes", h.Stats().MetaNMBytes)
	}
}

func TestNormalModeChargesMetaTraffic(t *testing.T) {
	h := newSmall(t, Normal)
	var now memtypes.Tick
	rng := rand.New(rand.NewSource(4))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	for i := 0; i < 20000; i++ {
		addr := memtypes.Addr(rng.Uint64() % space)
		now += 50
		h.Access(now, addr, rng.Intn(3) == 0)
	}
	if h.Stats().MetaNMBytes == 0 {
		t.Fatal("normal mode charged no metadata traffic")
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	h := newSmall(t, MigrateNone)
	// Dirty one line of many distinct set-0 FM sectors to force evictions
	// with write-backs.
	count := 0
	var now memtypes.Tick
	for l := uint32(0); l < h.Sectors() && count < 3*h.cfg.Assoc; l++ {
		if !h.remap[l].nm && int(l)%h.sets == 0 {
			now += 2000
			h.Access(now, memtypes.Addr(l)*memtypes.Addr(h.cfg.SectorBytes), true)
			count++
		}
	}
	if h.Stats().FMWriteBytes == 0 {
		t.Fatal("dirty evictions produced no FM write-backs")
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated")
	}
}

func TestBudgetGatesMigration(t *testing.T) {
	// With a budget reset every cycle (effectively zero budget), the
	// normal mode must not migrate.
	cfg := smallConfig()
	cfg.FMBudgetReset = 1
	h := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
	var now memtypes.Tick
	rng := rand.New(rand.NewSource(5))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	for i := 0; i < 30000; i++ {
		addr := memtypes.Addr(rng.Uint64() % space)
		now += 500 // ensure a reset before every access
		h.Access(now, addr, false)
	}
	if h.Stats().Migrations != 0 {
		t.Fatalf("migrations %d despite zero budget", h.Stats().Migrations)
	}
}

func TestAccessCounterSaturates(t *testing.T) {
	h := newSmall(t, Normal)
	var addr memtypes.Addr
	var logical uint32
	for l := uint32(0); l < h.Sectors(); l++ {
		if !h.remap[l].nm {
			logical = l
			addr = memtypes.Addr(l) * memtypes.Addr(h.cfg.SectorBytes)
			break
		}
	}
	for i := 0; i < 2000; i++ {
		h.Access(memtypes.Tick(i)*10, addr, false)
	}
	e := h.lookupXTA(int(logical%uint32(h.sets)), logical)
	if e == nil {
		t.Fatal("entry evicted unexpectedly")
	}
	if e.ctr != h.ctrMax {
		t.Fatalf("counter %d after 2000 accesses, want saturation at %d", e.ctr, h.ctrMax)
	}
}

func TestInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallConfig()
		cfg.Seed = uint64(seed) + 1
		h := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
		space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
		var now memtypes.Tick
		for i := 0; i < 5000; i++ {
			addr := memtypes.Addr(rng.Uint64() % space)
			now += memtypes.Tick(rng.Intn(200))
			done := h.Access(now, addr, rng.Intn(4) == 0)
			if done < now {
				return false
			}
		}
		return h.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAllModes(t *testing.T) {
	for _, mode := range []Mode{Normal, CacheOnly, MigrateAll, MigrateNone, NoRemapOverhead} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newSmall(t, mode)
			rng := rand.New(rand.NewSource(11))
			space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
			var now memtypes.Tick
			for i := 0; i < 30000; i++ {
				addr := memtypes.Addr(rng.Uint64() % space)
				now += 30
				h.Access(now, addr, rng.Intn(4) == 0)
			}
			if !h.CheckInvariants() {
				t.Fatalf("invariants violated in mode %v", mode)
			}
		})
	}
}

func TestServedSplitsSumToRequests(t *testing.T) {
	h := newSmall(t, Normal)
	rng := rand.New(rand.NewSource(13))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	var now memtypes.Tick
	for i := 0; i < 10000; i++ {
		now += 40
		h.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	s := h.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served NM %d + FM %d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
}

func TestHotDataEventuallyMigrates(t *testing.T) {
	// A small hot set hammered continuously must end up migrated to NM
	// under the normal policy (the cache stages it, the counters rank it,
	// demand misses fund the budget).
	h := newSmall(t, Normal)
	var hot []memtypes.Addr
	for l := uint32(0); l < h.Sectors() && len(hot) < 64; l++ {
		if !h.remap[l].nm {
			hot = append(hot, memtypes.Addr(l)*memtypes.Addr(h.cfg.SectorBytes))
		}
	}
	rng := rand.New(rand.NewSource(17))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	var now memtypes.Tick
	for i := 0; i < 120000; i++ {
		now += 25
		if rng.Intn(10) < 8 { // 80% hot
			a := hot[rng.Intn(len(hot))] + memtypes.Addr(rng.Intn(32)*64)
			h.Access(now, a, false)
		} else {
			h.Access(now, memtypes.Addr(rng.Uint64()%space), false)
		}
	}
	if h.Stats().Migrations == 0 {
		t.Fatal("hot working set never migrated to NM")
	}
	if !h.CheckInvariants() {
		t.Fatal("invariants violated")
	}
}

func TestPathStatsSumToRequests(t *testing.T) {
	h := newSmall(t, Normal)
	rng := rand.New(rand.NewSource(31))
	space := uint64(h.Sectors()) * uint64(h.cfg.SectorBytes)
	var now memtypes.Tick
	for i := 0; i < 10000; i++ {
		now += 40
		h.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	p := h.PathStats()
	if p.Hit1a+p.Hit1b+p.Miss2a+p.Miss2b != h.Stats().Requests {
		t.Fatalf("path counters %+v do not sum to %d requests", p, h.Stats().Requests)
	}
	if p.Frac2b() <= 0 || p.Frac2b() >= 1 {
		t.Fatalf("2b fraction %f out of range", p.Frac2b())
	}
}

func TestPathStatsHotReuseMostly1a(t *testing.T) {
	// A small, hot, repeatedly accessed set must be dominated by 1a hits.
	h := newSmall(t, Normal)
	var addr memtypes.Addr
	for l := uint32(0); l < h.Sectors(); l++ {
		if !h.remap[l].nm {
			addr = memtypes.Addr(l) * memtypes.Addr(h.cfg.SectorBytes)
			break
		}
	}
	for i := 0; i < 1000; i++ {
		h.Access(memtypes.Tick(i)*20, addr, false)
	}
	p := h.PathStats()
	if p.Hit1a < 990 {
		t.Fatalf("only %d of 1000 hot accesses took 1a", p.Hit1a)
	}
}
