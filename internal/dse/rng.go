package dse

// rng is a splitmix64 generator. The search uses it instead of math/rand
// because its entire state is one uint64 that serializes into the
// checkpoint: a resumed search continues the exact random sequence the
// interrupted one would have drawn, which the resume-determinism
// guarantee depends on.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant for
// candidate sampling and keeps the draw a single state step.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
