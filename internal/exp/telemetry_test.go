package exp

import (
	"context"
	"strings"
	"sync"
	"testing"

	"hybridmem/internal/api"
	"hybridmem/internal/telemetry"
	"hybridmem/internal/workload"
)

func telemetryRunner() *Runner {
	r := NewRunner()
	r.Scale = 16
	r.InstrPerCore = 20_000
	return r
}

// TestResultSeriesMatchesMemoPath pins passivity at the runner layer:
// the headline Result of a sampled run must be byte-identical (as an
// encoded api document) to the memoized/stored path's result.
func TestResultSeriesMatchesMemoPath(t *testing.T) {
	r := telemetryRunner()
	wl, _ := workload.ByName("lbm")
	want, err := r.ResultErr(wl, "HYBRID2", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, ser, err := r.ResultSeriesErr(wl, "HYBRID2", 1)
	if err != nil {
		t.Fatal(err)
	}
	wantDoc, _ := api.Encode(api.NewRun(want))
	gotDoc, _ := api.Encode(api.NewRun(got))
	if string(wantDoc) != string(gotDoc) {
		t.Errorf("sampled run document differs from memo path:\n%s\nvs\n%s", gotDoc, wantDoc)
	}
	if ser == nil || len(ser.Epochs) == 0 {
		t.Fatal("sampled run returned no series")
	}
	// And again with the memo already warm — the sampled path must not
	// read (or be confused by) the memoized entry.
	got2, ser2, err := r.ResultSeriesErr(wl, "HYBRID2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got || len(ser2.Epochs) != len(ser.Epochs) {
		t.Error("repeated sampled run diverged")
	}
}

// TestResultSeriesDeterministicDocument: the encoded series document
// of a repeated run is byte-identical.
func TestResultSeriesDeterministicDocument(t *testing.T) {
	r := telemetryRunner()
	r.Telemetry = &TelemetryOptions{WindowInstr: 8192, MaxEpochs: 64}
	wl, _ := workload.ByName("mcf")
	run := func() []byte {
		res, ser, err := r.ResultSeriesErr(wl, "HYBRID2", 1)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := api.Encode(api.NewRunSeries(res, ser))
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("repeated sampled run produced different series documents")
	}
	if !strings.Contains(string(a), `"series_schema": 1`) {
		t.Fatal("series document missing series_schema")
	}
}

// TestResultsParallelSeries: a parallel sampled sweep returns one
// series per spec, streams epochs tagged with the right run index, and
// its results match the plain parallel path.
func TestResultsParallelSeries(t *testing.T) {
	r := telemetryRunner()
	specs, err := SweepSpecsByName([]string{"Baseline", "HYBRID2"}, []string{"lbm", "mcf"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.ResultsParallel(specs)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := map[int]int{}
	r2 := telemetryRunner()
	r2.Telemetry = &TelemetryOptions{
		WindowInstr: 8192,
		OnEpoch: func(run int, e telemetry.Epoch) {
			mu.Lock()
			seen[run]++
			mu.Unlock()
		},
	}
	got, series, err := r2.ResultsParallelSeries(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i] != want[i] {
			t.Errorf("run %d result diverges under sampling", i)
		}
		if series[i] == nil || len(series[i].Epochs) == 0 {
			t.Errorf("run %d has no series", i)
		}
		if seen[i] == 0 {
			t.Errorf("run %d streamed no epochs", i)
		}
		if series[i] != nil && seen[i] != series[i].EpochsTotal {
			t.Errorf("run %d streamed %d epochs, series has %d", i, seen[i], series[i].EpochsTotal)
		}
	}
}

// TestResultSeriesBadDesign: parse errors surface without panicking
// and with no series.
func TestResultSeriesBadDesign(t *testing.T) {
	r := telemetryRunner()
	wl, _ := workload.ByName("lbm")
	if _, ser, err := r.ResultSeriesErr(wl, "NOSUCH", 1); err == nil || ser != nil {
		t.Fatalf("bad design: err=%v series=%v", err, ser)
	}
}
