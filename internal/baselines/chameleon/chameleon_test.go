package chameleon

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall(seed uint64) *Chameleon {
	cfg := Default(1<<20, 8<<20, 128<<10, 512, seed)
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestGroupGeometry(t *testing.T) {
	c := newSmall(1)
	if c.groups == 0 || c.k == 0 {
		t.Fatalf("degenerate grouping: groups=%d k=%d", c.groups, c.k)
	}
	// Every logical sector must resolve to exactly one location.
	seen := make(map[memtypes.Addr]bool)
	nmCount := 0
	for l := uint32(0); l < c.Sectors(); l++ {
		inNM, addr := c.locate(l)
		key := addr
		if inNM {
			key |= 1 << 62
			nmCount++
		}
		if seen[key] {
			t.Fatalf("two sectors at the same location (logical %d)", l)
		}
		seen[key] = true
	}
	if nmCount != int(c.groups) {
		t.Fatalf("NM residents %d, want one per group (%d)", nmCount, c.groups)
	}
}

func TestCompetingCountersSwapAfterThreshold(t *testing.T) {
	c := newSmall(2)
	// Pick a raw address whose scrambled sector is an FM member of some
	// group, and revisit it repeatedly with unrelated accesses in between
	// (consecutive accesses count as one reuse episode) until the
	// competing counter crosses the threshold and swap credit suffices.
	var addr memtypes.Addr
	var logical uint32
	for raw := uint32(0); raw < c.Sectors(); raw++ {
		l := c.scramble(raw)
		if inNM, _ := c.locate(l); !inNM && l < c.groups*(c.k+1) {
			addr = memtypes.Addr(raw) * 2048
			logical = l
			break
		}
	}
	var now memtypes.Tick
	for i := 0; i < 200; i++ {
		now += 300
		c.Access(now, addr, false)
		now += 300
		// Unrelated FM accesses break the burst and earn swap credit.
		c.Access(now, memtypes.Addr(1000+i)*2048, false)
	}
	if inNM, _ := c.locate(logical); !inNM {
		t.Fatal("persistently hot FM member never swapped into NM")
	}
	if c.Stats().Migrations == 0 {
		t.Fatal("no migration recorded")
	}
}

func TestOccupantAccessesDecayCounter(t *testing.T) {
	c := newSmall(3)
	// Find a group with an FM member and locate a raw address for both
	// the member and its group's NM occupant.
	var fmRaw, occRaw memtypes.Addr
	var fmLogical uint32
	found := false
	for raw := uint32(0); raw < c.Sectors() && !found; raw++ {
		l := c.scramble(raw)
		if inNM, _ := c.locate(l); inNM || l >= c.groups*(c.k+1) {
			continue
		}
		g := l % c.groups
		occLogical := uint32(c.occupant[g])*c.groups + g
		for raw2 := uint32(0); raw2 < c.Sectors(); raw2++ {
			if c.scramble(raw2) == occLogical {
				fmRaw = memtypes.Addr(raw) * 2048
				occRaw = memtypes.Addr(raw2) * 2048
				fmLogical = l
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable group found")
	}
	var now memtypes.Tick
	// Interleave: occupant accessed as often as the challenger; the
	// competing counter must not reach the threshold.
	for i := 0; i < 200; i++ {
		now += 300
		c.Access(now, fmRaw, false)
		now += 300
		c.Access(now, occRaw, false)
	}
	if inNM, _ := c.locate(fmLogical); inNM {
		t.Fatal("challenger swapped in despite equally hot occupant")
	}
}

func TestCacheModeSliceServesFMData(t *testing.T) {
	c := newSmall(4)
	var addr memtypes.Addr
	for raw := uint32(0); raw < c.Sectors(); raw++ {
		if inNM, _ := c.locate(c.scramble(raw)); !inNM {
			addr = memtypes.Addr(raw) * 2048
			break
		}
	}
	// Revisit the sector with unrelated accesses in between so the
	// install-reuse threshold is crossed and enough demand credit is
	// earned for the fill, then hit the installed copy.
	var now memtypes.Tick
	for i := 0; i < 40; i++ {
		now += 1000
		c.Access(now, addr, false)
		now += 1000
		c.Access(now, memtypes.Addr(5000+i)*2048, false)
	}
	c.Access(now+1000, addr, false)
	if c.Stats().ServedNM == 0 {
		t.Fatal("cache-mode slice never served a request")
	}
}

func TestPinnedSectorsStayInFM(t *testing.T) {
	c := newSmall(5)
	if c.pinned == 0 {
		t.Skip("configuration has no pinned remainder")
	}
	pinnedLogical := c.groups*(c.k+1) + c.pinned - 1
	var raw memtypes.Addr
	for r := uint32(0); r < c.Sectors(); r++ {
		if c.scramble(r) == pinnedLogical {
			raw = memtypes.Addr(r) * 2048
			break
		}
	}
	var now memtypes.Tick
	for i := 0; i < 100; i++ {
		now += 300
		c.Access(now, raw, false)
		now += 300
		c.Access(now, memtypes.Addr(7000+i)*2048, false)
	}
	if inNM, _ := c.locate(pinnedLogical); inNM {
		t.Fatal("pinned sector migrated")
	}
}

func TestServedCountersConsistent(t *testing.T) {
	c := newSmall(6)
	rng := rand.New(rand.NewSource(10))
	space := uint64(c.Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 40000; i++ {
		now += 60
		c.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	s := c.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served sums %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
	// Uniform random traffic has no dominant member per group, so the
	// competing counters correctly swap rarely or never; skewed traffic
	// (TestCompetingCountersSwapAfterThreshold) covers the swap path.
}

func TestLocationsStayBijectiveUnderSwaps(t *testing.T) {
	c := newSmall(7)
	rng := rand.New(rand.NewSource(11))
	space := uint64(c.Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 40000; i++ {
		now += 60
		c.Access(now, memtypes.Addr(rng.Uint64()%space), false)
	}
	seen := make(map[memtypes.Addr]bool)
	for l := uint32(0); l < c.Sectors(); l++ {
		inNM, addr := c.locate(l)
		key := addr
		if inNM {
			key |= 1 << 62
		}
		if seen[key] {
			t.Fatalf("aliasing after swaps at logical %d", l)
		}
		seen[key] = true
	}
}
