// Package api defines the versioned JSON wire encoding of simulation
// results shared by every machine-readable surface of the repository:
// cmd/experiments -runjson/-sweepjson, cmd/dse -json, and the
// internal/serve HTTP service. One encoding, one field order, one schema
// version — results produced through the server are byte-identical to
// the equivalent CLI invocation, and a schema change is a deliberate,
// versioned event rather than drift.
//
// Every top-level document carries a "schema" field (SchemaVersion).
// Field order is the struct order below and is pinned by the golden test
// in this package; changing it, renaming a tag, or adding a field is a
// schema change and must bump SchemaVersion.
package api

import (
	"encoding/json"

	"hybridmem/internal/sim"
)

// SchemaVersion identifies the JSON document layout below. Consumers
// should reject documents whose schema field they do not know.
const SchemaVersion = 1

// EngineVersion identifies the result-producing simulation engine. It is
// folded into every content-addressed request fingerprint of the serve
// layer, so cached results never survive a change to the simulator's
// behaviour. Bump it whenever simulation output changes for identical
// inputs.
const EngineVersion = 1

// Config is the wire form of a simulation configuration.
type Config struct {
	Scale        int    `json:"scale"`
	NMRatio16    int    `json:"nm_ratio16"`
	InstrPerCore uint64 `json:"instr_per_core"`
	Seed         uint64 `json:"seed"`
}

// Result is the wire form of one simulation run's measurements. It
// mirrors the public hybridmem.Result field for field.
type Result struct {
	Workload       string  `json:"workload"`
	Design         string  `json:"design"`
	Cycles         uint64  `json:"cycles"`
	Instructions   uint64  `json:"instructions"`
	IPC            float64 `json:"ipc"`
	MPKI           float64 `json:"mpki"`
	Requests       uint64  `json:"requests"`
	ServedNMFrac   float64 `json:"served_nm_frac"`
	NMTrafficBytes uint64  `json:"nm_traffic_bytes"`
	FMTrafficBytes uint64  `json:"fm_traffic_bytes"`
	MetaNMBytes    uint64  `json:"meta_nm_bytes"`
	Migrations     uint64  `json:"migrations"`
	EnergyNanoJ    float64 `json:"energy_nj"`
}

// FromSim converts an internal simulation result to the wire form — the
// single mapping every encoder (CLI and server) goes through.
func FromSim(sr sim.Result) Result {
	return Result{
		Workload:       sr.Workload,
		Design:         sr.Design,
		Cycles:         uint64(sr.Cycles),
		Instructions:   sr.Instructions,
		IPC:            sr.IPC,
		MPKI:           sr.MPKI,
		Requests:       sr.Mem.Requests,
		ServedNMFrac:   sr.ServedNMFrac(),
		NMTrafficBytes: sr.Mem.NMTraffic(),
		FMTrafficBytes: sr.Mem.FMTraffic(),
		MetaNMBytes:    sr.Mem.MetaNMBytes,
		Migrations:     sr.Mem.Migrations,
		EnergyNanoJ:    sr.DynamicEnergyNJ(),
	}
}

// Run is the top-level document of a single simulation run.
type Run struct {
	Schema int    `json:"schema"`
	Result Result `json:"result"`
}

// NewRun wraps one simulation result as a versioned document.
func NewRun(sr sim.Result) Run {
	return Run{Schema: SchemaVersion, Result: FromSim(sr)}
}

// Sweep is the top-level document of a (design × workload) sweep, in the
// sweep's design-major, workload-minor order.
type Sweep struct {
	Schema  int      `json:"schema"`
	Results []Result `json:"results"`
}

// NewSweep wraps a sweep's results as a versioned document.
func NewSweep(srs []sim.Result) Sweep {
	out := Sweep{Schema: SchemaVersion, Results: make([]Result, len(srs))}
	for i, sr := range srs {
		out.Results[i] = FromSim(sr)
	}
	return out
}

// ExplorePoint is the wire form of one evaluated candidate of a
// design-space exploration (see internal/dse.Point).
type ExplorePoint struct {
	Design     string  `json:"design"`
	Speedup    float64 `json:"speedup"`
	CapacityMB float64 `json:"capacity_mb"`
	TrafficGB  float64 `json:"traffic_gb"`
	Infeasible bool    `json:"infeasible,omitempty"`
	Err        string  `json:"error,omitempty"`
}

// Explore is the top-level document of a design-space exploration:
// the Pareto frontier in reporting order and the full evaluation trail.
type Explore struct {
	Schema    int            `json:"schema"`
	Frontier  []ExplorePoint `json:"frontier"`
	Evaluated []ExplorePoint `json:"evaluated"`
	SpaceSize int            `json:"space_size"`
	Batches   int            `json:"batches"`
}

// Trace is the optional wire trace context of a cluster RPC: the
// coordinator stamps the shard's span identity onto the request so the
// runner can continue the same distributed trace. Both fields are
// omitted entirely when tracing is disabled, keeping the wire bytes
// identical to an uninstrumented build.
type Trace struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Table is the top-level document of one experiment artifact (a figure
// or table of the paper's evaluation) as emitted by cmd/experiments.
type Table struct {
	Schema int        `json:"schema"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Encode renders a document in the canonical form every surface emits:
// two-space indentation and a trailing newline. Byte-level comparisons
// (the CI server-vs-CLI diff, the golden schema test) depend on every
// producer using exactly this encoder.
func Encode(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
