package hybridmem

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// tinyExplore is a fast public-API exploration: one family, one
// small-footprint workload, short streams.
func tinyExplore() ExploreOptions {
	return ExploreOptions{
		Families:    []string{"H2DSE"},
		Workloads:   []string{"mcf"},
		Budget:      6,
		BatchSize:   2,
		Seed:        7,
		Config:      Config{Scale: 16, NMRatio16: 1, InstrPerCore: 20_000, Seed: 1},
		MaxPerParam: 3,
	}
}

// TestExplore exercises the public search surface end to end: progress
// streams, the budget is honoured at batch granularity, and every
// frontier design is a valid, runnable registry name.
func TestExplore(t *testing.T) {
	var events []ExploreProgress
	opts := tinyExplore()
	opts.Progress = func(p ExploreProgress) { events = append(events, p) }
	res, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Resumed {
		t.Fatalf("Complete=%v Resumed=%v, want true/false", res.Complete, res.Resumed)
	}
	if len(res.Evaluated) < opts.Budget || len(res.Evaluated) >= opts.Budget+opts.BatchSize {
		t.Fatalf("evaluated %d candidates for budget %d batch %d", len(res.Evaluated), opts.Budget, opts.BatchSize)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range res.Frontier {
		if err := ValidateDesign(p.Design); err != nil {
			t.Errorf("frontier design %q is not a valid design name: %v", p.Design, err)
		}
		if p.Infeasible {
			t.Errorf("infeasible design %q on the frontier", p.Design)
		}
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if !last.Done || last.Evaluated != len(res.Evaluated) || last.Batch != res.Batches {
		t.Fatalf("final progress event %+v does not match result (%d evaluated, %d batches)", last, len(res.Evaluated), res.Batches)
	}
}

// TestExploreResumeDeterministic pins the public resume guarantee: pause
// via MaxBatches, resume from the checkpoint, and the result equals an
// uninterrupted run's.
func TestExploreResumeDeterministic(t *testing.T) {
	want, err := Explore(context.Background(), tinyExplore())
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "explore.json")
	paused := tinyExplore()
	paused.MaxBatches = 1
	paused.Checkpoint = ck
	if res, err := Explore(context.Background(), paused); err != nil {
		t.Fatal(err)
	} else if res.Complete {
		t.Fatal("paused exploration reports Complete")
	}
	resumed := tinyExplore()
	resumed.Checkpoint = ck
	resumed.Resume = true
	got, err := Explore(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Fatal("Resumed not set after resume")
	}
	got.Resumed, got.Complete = want.Resumed, want.Complete
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed result differs from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestExploreErrors covers the public validation paths.
func TestExploreErrors(t *testing.T) {
	opts := tinyExplore()
	opts.Families = []string{"NO-SUCH"}
	if _, err := Explore(context.Background(), opts); err == nil {
		t.Error("unknown family accepted")
	}
	opts = tinyExplore()
	opts.Config = Config{Scale: -1}
	if _, err := Explore(context.Background(), opts); err == nil {
		t.Error("invalid config accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explore(ctx, tinyExplore()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled exploration returned %v, want context.Canceled", err)
	}
}
