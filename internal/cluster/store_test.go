package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"hybridmem/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWarmStoreServesShardsWithoutDispatch pins the coordinator side of
// the result store: shard outcomes persisted by one batch are served to
// an identical later batch — across a coordinator restart — without any
// dispatch at all. The warm coordinator has no runners and no local
// fallback, so the test would time out rather than pass if anything
// were dispatched.
func TestWarmStoreServesShardsWithoutDispatch(t *testing.T) {
	dir := t.TempDir()
	cfg, runs := testConfig(), testRuns()

	c1 := NewCoordinator(CoordinatorOptions{ShardSize: 2, Store: openStore(t, dir)})
	c1.AttachLoopback(2, 1)
	outs1, err := c1.Run(context.Background(), cfg, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.Stats().ShardsWarm; got != 0 {
		t.Fatalf("cold batch settled %d warm shards, want 0", got)
	}

	// A fresh coordinator over a fresh store handle on the same
	// directory: every shard is warm, nothing is dispatched, and the
	// merged document is byte-identical.
	c2 := NewCoordinator(CoordinatorOptions{ShardSize: 2, Store: openStore(t, dir)})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var progressed bool
	outs2, err := c2.Run(ctx, cfg, runs, func(done, total int) {
		progressed = true
		if done != len(runs) || total != len(runs) {
			t.Errorf("warm progress (%d, %d), want (%d, %d)", done, total, len(runs), len(runs))
		}
	})
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	if !progressed {
		t.Error("warm batch reported no progress")
	}
	if !bytes.Equal(outcomeSweepBytes(t, outs2), outcomeSweepBytes(t, outs1)) {
		t.Fatal("warm batch document differs from cold")
	}
	st := c2.Stats()
	if st.ShardsDispatched != 0 {
		t.Fatalf("warm batch dispatched %d shards, want 0", st.ShardsDispatched)
	}
	if want := uint64(len(runs)+1) / 2; st.ShardsWarm != want {
		t.Fatalf("ShardsWarm = %d, want %d", st.ShardsWarm, want)
	}
}

// TestWarmStoreRedispatchesOnlyColdShards extends a previously-run batch
// with new runs: the prefix shards are served from the store and only
// the new tail is dispatched — the warm re-dispatch that makes recovery
// after node loss cheap.
func TestWarmStoreRedispatchesOnlyColdShards(t *testing.T) {
	dir := t.TempDir()
	cfg, runs := testConfig(), testRuns()

	c1 := NewCoordinator(CoordinatorOptions{ShardSize: 2, Store: openStore(t, dir)})
	c1.AttachLoopback(2, 1)
	if _, err := c1.Run(context.Background(), cfg, runs, nil); err != nil {
		t.Fatal(err)
	}

	extended := append(append([]Run(nil), runs...),
		Run{Design: "HYBRID2", Workload: "namd", Ratio16: 1},
		Run{Design: "HYBRID2", Workload: "xz", Ratio16: 1},
	)
	c2 := NewCoordinator(CoordinatorOptions{ShardSize: 2, Store: openStore(t, dir)})
	c2.AttachLoopback(1, 1)
	outs, err := c2.Run(context.Background(), cfg, extended, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(extended) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(extended))
	}
	for i, o := range outs {
		if o.Err != "" {
			t.Fatalf("run %d failed: %s", i, o.Err)
		}
	}
	// The full prefix shards stay warm; the last original shard [14,15)
	// is re-cut as [14,16) by the extension, so it and the new tail are
	// cold and dispatched.
	st := c2.Stats()
	if want := uint64(len(runs) / 2); st.ShardsWarm != want {
		t.Fatalf("ShardsWarm = %d, want %d", st.ShardsWarm, want)
	}
	if st.ShardsDispatched == 0 {
		t.Fatal("extended batch dispatched nothing; the new shards should be cold")
	}

	// A different seed is different work: nothing may come back warm.
	cold := cfg
	cold.Seed = 7
	c3 := NewCoordinator(CoordinatorOptions{ShardSize: 2, Store: openStore(t, dir)})
	c3.AttachLoopback(1, 1)
	if _, err := c3.Run(context.Background(), cold, runs[:2], nil); err != nil {
		t.Fatal(err)
	}
	if got := c3.Stats().ShardsWarm; got != 0 {
		t.Fatalf("seed change still settled %d warm shards", got)
	}
}
