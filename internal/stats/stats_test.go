package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4)=%f, want 2", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil)=%f, want 0", g)
	}
	if g := Geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(2,2,2)=%f", g)
	}
}

func TestGeomeanClampsNonPositive(t *testing.T) {
	g := Geomean([]float64{0, 4})
	if math.IsNaN(g) || math.IsInf(g, 0) {
		t.Fatalf("geomean with zero produced %f", g)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 || Mean(xs) != 2 {
		t.Fatalf("min/max/mean = %f/%f/%f", Min(xs), Max(xs), Mean(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty-slice aggregates not zero")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("ratio semantics")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)*(1-1e-9) && g <= Max(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
