// Package design is the self-registering catalog of memory organizations:
// the single source of truth the engine (internal/exp), the public
// hybridmem API, the CLIs and the README all resolve design names
// through, instead of hard-wiring constructors into a switch.
//
// Each organization package (internal/baselines/*, internal/core)
// registers, from an init function, an Info: a base name, a one-line doc,
// a constructor, and a parameter grammar — typed parameters with ranges
// (and an optional cross-parameter Check hook). Importing
// hybridmem/internal/design/all links every built-in organization into
// the registry, so adding a design is a one-package change: implement it,
// register it, add one blank import to the aggregator.
//
// # Design-name grammar
//
// A design name is a registered base name, optionally followed by one
// "-<value>" field per declared parameter:
//
//	name  = base *( "-" value )
//	base  = a registered name, e.g. "MPOD", "DFC", "H2DSE"
//	value = decimal integer or enum token, per the parameter's type
//
// Parameters are positional. Every field is validated at parse time
// against the registered ranges, power-of-two constraints, enum sets and
// Check hooks, so a malformed-but-parseable name such as "DFC-0",
// "IDEAL--3" or "H2DSE-0-0-0" fails in Parse — before any simulation
// state is built — instead of panicking deep inside a constructor.
// Trailing optional parameters may be omitted and take their declared
// defaults: "DFC" means "DFC-1024".
//
// Base names may themselves contain hyphens ("SILC-FM", "H2-CacheOnly");
// exact-name matches win over prefix matches, and among prefix matches
// the longest registered base wins.
//
// AllInfos lists the live registry (cmd/experiments -designs and
// cmd/hybrid2sim -designs print it); Parse resolves a name to a
// validated Spec; Spec.Build constructs the organization over fresh
// devices, converting any residual constructor panic into an error.
package design

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Kind groups registered designs the way the paper's evaluation does.
type Kind int

const (
	// KindBaseline is the no-NM normalization point.
	KindBaseline Kind = iota
	// KindMain designs appear in the paper's Figures 12-18.
	KindMain
	// KindExtra designs are §2 related work beyond the paper's figures.
	KindExtra
	// KindVariant designs are parameterized studies: ideal caches,
	// Fig. 14 ablations, Fig. 11 DSE points, sensitivity sweeps.
	KindVariant
)

func (k Kind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindMain:
		return "main"
	case KindExtra:
		return "extra"
	case KindVariant:
		return "variant"
	}
	return "kind?"
}

// Param is one typed parameter of a design-name grammar.
type Param struct {
	Name string
	Doc  string
	// Min and Max bound integer values inclusively; Max <= 0 means
	// unbounded above. Ignored for enum parameters.
	Min, Max int
	// Pow2 additionally requires a positive power of two.
	Pow2 bool
	// Enum non-nil makes this a token parameter: the value must be one
	// of these strings and Value.Int is not set.
	Enum []string
	// Optional parameters may be omitted (trailing only) and then take
	// Default.
	Optional bool
	Default  int
}

// Value is one parsed parameter value.
type Value struct {
	Raw string
	Int int // set for integer parameters only
}

// Builder constructs a registered organization from a validated Spec.
// nm is nil when the design's NeedsNM is false.
type Builder func(spec Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error)

// Info describes one registered design family.
type Info struct {
	// Name is the base name ("MPOD", "DFC", "H2DSE", "SILC-FM").
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Kind and Order place the design in the paper's listing order.
	Kind  Kind
	Order int
	// NeedsNM reports whether the design uses near memory. The engine
	// collapses all NM ratios to one run when it is false.
	NeedsNM bool
	// Params is the positional parameter grammar after the base name.
	Params []Param
	// Example is a fully parameterized sample name; defaults to Name
	// for designs whose parameters are all optional or absent.
	Example string
	// Check validates cross-parameter constraints after the per-param
	// range checks pass. vals has one entry per Param.
	Check func(vals []Value) error
	// Build constructs the organization.
	Build Builder
}

// Grammar renders the full name grammar, e.g.
// "H2DSE-<cacheMB>-<sectorKB>-<lineB>" or "DFC[-<lineB>]".
func (i *Info) Grammar() string {
	var b strings.Builder
	b.WriteString(i.Name)
	for _, p := range i.Params {
		if p.Optional {
			fmt.Fprintf(&b, "[-<%s>]", p.Name)
		} else {
			fmt.Fprintf(&b, "-<%s>", p.Name)
		}
	}
	return b.String()
}

// SampleName returns Example, or Name when the design needs no explicit
// parameters to be runnable.
func (i *Info) SampleName() string {
	if i.Example != "" {
		return i.Example
	}
	return i.Name
}

var (
	regMu  sync.RWMutex
	byName = map[string]*Info{}
)

// Register adds a design family to the registry. It is intended to be
// called from init functions of the organization packages and panics on
// a nil builder, a duplicate or parameter-grammar mistakes, which are
// programming errors.
func Register(info Info) {
	if info.Name == "" || info.Build == nil {
		panic("design: Register needs a name and a builder")
	}
	seenOptional := false
	for _, p := range info.Params {
		if p.Name == "" {
			panic("design: " + info.Name + ": unnamed parameter")
		}
		if seenOptional && !p.Optional {
			panic("design: " + info.Name + ": required parameter after an optional one")
		}
		seenOptional = seenOptional || p.Optional
	}
	if len(info.Params) > 0 && info.Example == "" && !info.Params[0].Optional {
		panic("design: " + info.Name + ": parameterized designs need an Example")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[info.Name]; dup {
		panic("design: duplicate registration of " + info.Name)
	}
	byName[info.Name] = &info
}

// AllInfos returns every registered design, sorted by Kind, then Order,
// then Name. The entries are shared; callers must not mutate them.
func AllInfos() []*Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Info, 0, len(byName))
	for _, i := range byName {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		if out[a].Order != out[b].Order {
			return out[a].Order < out[b].Order
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Names returns the base names of one kind, in registered Order — the
// registry-backed replacement for hard-coded design lists.
func Names(kind Kind) []string {
	var out []string
	for _, i := range AllInfos() {
		if i.Kind == kind {
			out = append(out, i.Name)
		}
	}
	return out
}

// LookupInfo returns the registered family of a base name.
func LookupInfo(base string) (*Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := byName[base]
	return i, ok
}

// RemapEntries is the shared remap-cache sizing of the migration
// baselines: the same on-chip SRAM budget Hybrid2 spends on its XTA, one
// entry per (scaled) DRAM-cache sector.
func RemapEntries(sys config.System) int {
	return int(sys.Hybrid2CacheBytes() / config.SectorBytes)
}

// Spec is a validated, buildable design resolution.
type Spec struct {
	// Name is the full design string as given to Parse.
	Name   string
	Info   *Info
	Values []Value // one per Info.Params, defaults filled in
}

// Int returns the integer value of the named parameter.
func (s Spec) Int(param string) int {
	for i, p := range s.Info.Params {
		if p.Name == param {
			return s.Values[i].Int
		}
	}
	panic("design: " + s.Info.Name + " has no parameter " + param)
}

// Raw returns the textual value of the named parameter.
func (s Spec) Raw(param string) string {
	for i, p := range s.Info.Params {
		if p.Name == param {
			return s.Values[i].Raw
		}
	}
	panic("design: " + s.Info.Name + " has no parameter " + param)
}

// Parse resolves a design name to a validated Spec: base-name lookup,
// positional parameter parsing, range/pow2/enum checks, defaults for
// omitted trailing optional parameters, then the family's Check hook.
// Every error is a parse-time error; a Spec that parses is buildable up
// to system-dependent capacity constraints.
func Parse(name string) (Spec, error) {
	if info, ok := LookupInfo(name); ok {
		vals, err := defaults(info)
		if err != nil {
			return Spec{}, err
		}
		return finish(name, info, vals)
	}
	info := longestBase(name)
	if info == nil {
		return Spec{}, fmt.Errorf("design: unknown design %q", name)
	}
	if len(info.Params) == 0 {
		return Spec{}, fmt.Errorf("design: %s takes no parameters, got %q", info.Name, name)
	}
	fields := strings.Split(name[len(info.Name)+1:], "-")
	required := 0
	for _, p := range info.Params {
		if !p.Optional {
			required++
		}
	}
	if len(fields) < required || len(fields) > len(info.Params) {
		return Spec{}, fmt.Errorf("design: %q: want %s, got %d parameter(s)",
			name, info.Grammar(), len(fields))
	}
	vals := make([]Value, len(info.Params))
	for i, p := range info.Params {
		if i >= len(fields) {
			vals[i] = Value{Raw: strconv.Itoa(p.Default), Int: p.Default}
			continue
		}
		v, err := parseValue(info, p, fields[i])
		if err != nil {
			return Spec{}, err
		}
		vals[i] = v
	}
	return finish(name, info, vals)
}

// finish applies the family Check hook and assembles the Spec.
func finish(name string, info *Info, vals []Value) (Spec, error) {
	if info.Check != nil {
		if err := info.Check(vals); err != nil {
			return Spec{}, fmt.Errorf("design: %q: %w", name, err)
		}
	}
	return Spec{Name: name, Info: info, Values: vals}, nil
}

// defaults fills the value list of a bare base name, failing if any
// parameter is required.
func defaults(info *Info) ([]Value, error) {
	vals := make([]Value, len(info.Params))
	for i, p := range info.Params {
		if !p.Optional {
			return nil, fmt.Errorf("design: %s requires parameters: %s", info.Name, info.Grammar())
		}
		vals[i] = Value{Raw: strconv.Itoa(p.Default), Int: p.Default}
	}
	return vals, nil
}

// longestBase finds the registered family whose "Name-" is the longest
// prefix of name, so "H2DSE-64-2-256" resolves to H2DSE even though
// families like "H2-CacheOnly" share the "H2" spelling.
func longestBase(name string) *Info {
	regMu.RLock()
	defer regMu.RUnlock()
	var best *Info
	for _, i := range byName {
		if strings.HasPrefix(name, i.Name+"-") && (best == nil || len(i.Name) > len(best.Name)) {
			best = i
		}
	}
	return best
}

// parseValue validates one positional field against its parameter.
func parseValue(info *Info, p Param, raw string) (Value, error) {
	if raw == "" {
		return Value{}, fmt.Errorf("design: %s: empty value for <%s>", info.Name, p.Name)
	}
	if p.Enum != nil {
		for _, e := range p.Enum {
			if raw == e {
				return Value{Raw: raw}, nil
			}
		}
		return Value{}, fmt.Errorf("design: %s: <%s> must be one of %s, got %q",
			info.Name, p.Name, strings.Join(p.Enum, "|"), raw)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return Value{}, fmt.Errorf("design: %s: <%s> must be an integer, got %q", info.Name, p.Name, raw)
	}
	if v < p.Min || (p.Max > 0 && v > p.Max) {
		hi := "∞"
		if p.Max > 0 {
			hi = strconv.Itoa(p.Max)
		}
		return Value{}, fmt.Errorf("design: %s: <%s> = %d out of range [%d, %s]",
			info.Name, p.Name, v, p.Min, hi)
	}
	if p.Pow2 && (v <= 0 || v&(v-1) != 0) {
		return Value{}, fmt.Errorf("design: %s: <%s> = %d must be a power of two", info.Name, p.Name, v)
	}
	return Value{Raw: raw, Int: v}, nil
}

// Build parses a design name and constructs it over fresh devices; the
// one-call form of Parse followed by Spec.Build.
func Build(name string, sys config.System) (memtypes.MemorySystem, *memsys.Device, *memsys.Device, error) {
	spec, err := Parse(name)
	if err != nil {
		return nil, nil, nil, err
	}
	return spec.Build(sys)
}

// Build constructs the design over fresh devices: a DDR4 far memory
// always, an HBM2 near memory when the family declares NeedsNM. A panic
// escaping the constructor — a residual capacity constraint the parse
// could not check without the system size — is converted into an error,
// so no caller needs panic containment around construction.
func (s Spec) Build(sys config.System) (ms memtypes.MemorySystem, nm, fm *memsys.Device, err error) {
	if s.Info == nil {
		return nil, nil, nil, errors.New("design: Build on a zero Spec")
	}
	defer func() {
		if p := recover(); p != nil {
			ms, nm, fm = nil, nil, nil
			err = fmt.Errorf("design: build %s: %v", s.Name, p)
		}
	}()
	fm = memsys.New(memsys.DDR4Config())
	if s.Info.NeedsNM {
		nm = memsys.New(memsys.HBM2Config())
	}
	ms, err = s.Info.Build(s, sys, nm, fm)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("design: build %s: %w", s.Name, err)
	}
	return ms, nm, fm, nil
}
