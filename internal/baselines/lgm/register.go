package lgm

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "LGM",
		Doc:     "LLC-guided migration",
		Kind:    design.KindMain,
		Order:   3,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			cfg := Default(sys.NMBytes, sys.FMBytes, design.RemapEntries(sys), sys.Seed)
			cfg.IntervalCycles = memtypes.Tick(sys.IntervalCycles())
			cfg.Watermark = 32
			return New(cfg, nm, fm), nil
		},
	})
}
