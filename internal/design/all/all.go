// Package all links every built-in memory organization into the design
// registry. Importing it (blank) is the only coupling between the
// engine and the organization packages: each package self-registers from
// an init function, so adding a design is a one-package change plus one
// line here.
package all

import (
	_ "hybridmem/internal/baselines/banshee"
	_ "hybridmem/internal/baselines/cameo"
	_ "hybridmem/internal/baselines/chameleon"
	_ "hybridmem/internal/baselines/dramcache"
	_ "hybridmem/internal/baselines/flat"
	_ "hybridmem/internal/baselines/footprint"
	_ "hybridmem/internal/baselines/lgm"
	_ "hybridmem/internal/baselines/mempod"
	_ "hybridmem/internal/baselines/silcfm"
	_ "hybridmem/internal/core"
)
