package config

import "testing"

func TestScaledDividesCapacitiesLinearly(t *testing.T) {
	sys := Scaled(16, 1)
	if sys.LLCBytes != PaperLLCBytes/16 {
		t.Errorf("LLC %d, want %d", sys.LLCBytes, PaperLLCBytes/16)
	}
	if sys.NMBytes != PaperNM1GB/16 {
		t.Errorf("NM %d, want %d", sys.NMBytes, PaperNM1GB/16)
	}
	if sys.FMBytes != PaperFMBytes/16 {
		t.Errorf("FM %d, want %d", sys.FMBytes, PaperFMBytes/16)
	}
}

func TestScaledPreservesCapacityRatios(t *testing.T) {
	for _, scale := range []int{1, 2, 8, 16, 64} {
		for _, ratio := range []int{1, 2, 4} {
			sys := Scaled(scale, ratio)
			if got := sys.FMBytes / sys.NMBytes; got != 16/uint64(ratio) {
				t.Errorf("scale %d ratio %d: FM/NM = %d, want %d", scale, ratio, got, 16/ratio)
			}
			if got := sys.FMBytes / sys.Hybrid2CacheBytes(); got != PaperFMBytes/PaperHybrid2DC {
				t.Errorf("scale %d: FM/DC ratio %d changed under scaling", scale, got)
			}
		}
	}
}

func TestScaledNMRatio(t *testing.T) {
	one := Scaled(16, 1)
	four := Scaled(16, 4)
	if four.NMBytes != 4*one.NMBytes {
		t.Errorf("4:16 NM = %d, want 4x the 1:16 NM %d", four.NMBytes, one.NMBytes)
	}
	if four.FMBytes != one.FMBytes {
		t.Errorf("FM changed with the NM ratio: %d vs %d", four.FMBytes, one.FMBytes)
	}
}

func TestScaledClampsInvalidInputs(t *testing.T) {
	sys := Scaled(0, 0)
	if sys.Scale != 1 {
		t.Errorf("scale clamped to %d, want 1", sys.Scale)
	}
	if sys.NMBytes != PaperNM1GB {
		t.Errorf("NM %d, want unscaled %d", sys.NMBytes, uint64(PaperNM1GB))
	}
	neg := Scaled(-3, -1)
	if neg.Scale != 1 || neg.NMBytes != PaperNM1GB {
		t.Errorf("negative inputs not clamped: %+v", neg)
	}
}

func TestTimeConstantsScaleWithCapacity(t *testing.T) {
	s1 := Scaled(1, 1)
	s16 := Scaled(16, 1)
	if s1.IntervalCycles() != PaperIntervalCycles {
		t.Errorf("unscaled interval %d, want %d", s1.IntervalCycles(), PaperIntervalCycles)
	}
	if s16.IntervalCycles() != PaperIntervalCycles/16 {
		t.Errorf("scaled interval %d, want %d", s16.IntervalCycles(), PaperIntervalCycles/16)
	}
	if s16.FMBudgetResetCycles() != PaperFMBudgetResetCycles/16 {
		t.Errorf("scaled budget reset %d, want %d", s16.FMBudgetResetCycles(), PaperFMBudgetResetCycles/16)
	}
}

func TestHybrid2CacheBytes(t *testing.T) {
	if got := Scaled(1, 1).Hybrid2CacheBytes(); got != PaperHybrid2DC {
		t.Errorf("unscaled DRAM cache %d, want %d", got, uint64(PaperHybrid2DC))
	}
	if got := Scaled(16, 1).Hybrid2CacheBytes(); got != PaperHybrid2DC/16 {
		t.Errorf("scaled DRAM cache %d, want %d", got, uint64(PaperHybrid2DC/16))
	}
	// The DRAM cache must hold a whole number of sectors at every scale
	// the experiments use, or the XTA sizing breaks.
	for _, scale := range []int{1, 2, 4, 8, 16, 32} {
		if got := Scaled(scale, 1).Hybrid2CacheBytes(); got%SectorBytes != 0 {
			t.Errorf("scale %d: cache %d not sector-aligned", scale, got)
		}
	}
}
