package cameo

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "CAMEO",
		Doc:     "line-granularity group migration (§2.2)",
		Kind:    design.KindExtra,
		Order:   1,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Default(sys.NMBytes, sys.FMBytes, design.RemapEntries(sys), sys.Seed), nm, fm), nil
		},
	})
}
