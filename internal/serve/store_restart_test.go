package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"hybridmem/internal/api"
)

// TestStoreServesAcrossRestarts pins the tentpole property at the serve
// layer: with a store directory configured, a result computed before a
// shutdown is served after a restart from the disk tier — zero
// simulations, byte-identical response — both for synchronous runs and
// for async sweep jobs, and both survive independently of the job-state
// directory (the store alone is enough).
func TestStoreServesAcrossRestarts(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, Options{StoreDir: dir})
	runRespCold := postJSON(t, s1.Handler(), "/v1/run", quickRun())
	if runRespCold.Code != http.StatusOK {
		t.Fatalf("cold run: %d: %s", runRespCold.Code, runRespCold.Body)
	}
	sweepReq := sweepRequest{
		Designs:   []string{"Baseline", "HYBRID2"},
		Workloads: []string{"lbm"},
		Config:    api.Config{Scale: 16, NMRatio16: 1, InstrPerCore: 50_000, Seed: 1},
	}
	w := postJSON(t, s1.Handler(), "/v1/sweep", sweepReq)
	if w.Code != http.StatusAccepted {
		t.Fatalf("cold sweep submit: %d: %s", w.Code, w.Body)
	}
	var sub submitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, s1.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("cold sweep job state %q", st.State)
	}
	sweepRespCold := get(s1.Handler(), "/v1/jobs/"+sub.JobID+"/result")
	if sweepRespCold.Code != http.StatusOK {
		t.Fatalf("cold sweep result: %d", sweepRespCold.Code)
	}
	if got := s1.sims.Value(); got == 0 {
		t.Fatal("cold server executed no simulations")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same store directory: both requests are
	// disk hits, never touching the engines.
	s2 := newTestServer(t, Options{StoreDir: dir})
	runRespWarm := postJSON(t, s2.Handler(), "/v1/run", quickRun())
	if runRespWarm.Code != http.StatusOK {
		t.Fatalf("warm run: %d: %s", runRespWarm.Code, runRespWarm.Body)
	}
	if !bytes.Equal(runRespWarm.Body.Bytes(), runRespCold.Body.Bytes()) {
		t.Fatal("warm run response differs from cold")
	}
	w = postJSON(t, s2.Handler(), "/v1/sweep", sweepReq)
	if w.Code != http.StatusAccepted {
		t.Fatalf("warm sweep submit: %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, s2.Handler(), sub.JobID); st.State != jobDone {
		t.Fatalf("warm sweep job state %q", st.State)
	}
	sweepRespWarm := get(s2.Handler(), "/v1/jobs/"+sub.JobID+"/result")
	if !bytes.Equal(sweepRespWarm.Body.Bytes(), sweepRespCold.Body.Bytes()) {
		t.Fatal("warm sweep document differs from cold")
	}
	if got := s2.sims.Value(); got != 0 {
		t.Fatalf("warm server executed %d simulations, want 0", got)
	}
	st := s2.store.Stats()
	if st.DiskHits == 0 {
		t.Fatal("warm server recorded no disk hits")
	}
}
