// Package telemetry is the simulation-side observability plane: a
// bounded, allocation-disciplined epoch sampler that turns one run of
// the memory-system simulator into a time series.
//
// # Epoch model
//
// The run loop owns cumulative counters (instructions, cycles, LLC
// accesses/misses, the design's MemStats, demand read-miss latencies).
// A Sampler closes an *epoch* every WindowInstr retired instructions:
// it diffs the cumulative counters against the previous boundary and
// records the windowed deltas — IPC, MPKI, NM hit fraction, NM/FM
// traffic bytes, migrations, evictions, wasted-fetch fraction, and the
// window's demand-latency mean/percentiles — as one Epoch sample. A
// final partial epoch covers whatever remains past the last boundary,
// so the series' totals reconcile with the run's headline Result.
//
// Epochs land in a preallocated ring of MaxEpochs samples; once the
// ring is full the oldest epochs are dropped (Series reports how many).
// In steady state closing an epoch allocates nothing: the ring is
// preallocated, the window histogram is a fixed array reset by zeroing,
// and the delta math is pure arithmetic.
//
// # Window knobs
//
// Options.WindowInstr sets the epoch length in retired instructions
// (default 65536); Options.MaxEpochs bounds the ring (default 512).
// Options.OnEpoch, when set, streams each epoch as it closes — the
// serving layer uses it for live SSE frames and the scrape-time
// "current epoch" gauges.
//
// # Series schema
//
// Series is the in-process form; internal/api renders it as a
// versioned wire document (api.Series, schema api.SeriesSchemaVersion)
// with one JSON object per epoch plus a phase-segmentation summary:
// deterministic change-point detection over the per-epoch IPC series
// (see segment.go) splits the run into phases, each summarized by its
// mean IPC, MPKI, NM hit fraction and wasted-fetch fraction.
//
// # Passivity
//
// Telemetry is passive by construction: the simulator's Result is
// byte-identical with a sampler attached or not, every method is safe
// (and free) through a nil *Sampler, and the same run always yields
// the same series. These invariants are pinned by tests in
// internal/sim and internal/exp.
package telemetry

import (
	"hybridmem/internal/memtypes"
	"hybridmem/internal/stats"
)

// DefaultWindowInstr is the epoch length, in retired instructions,
// used when Options.WindowInstr is unset.
const DefaultWindowInstr = 65536

// DefaultMaxEpochs is the ring capacity used when Options.MaxEpochs is
// unset.
const DefaultMaxEpochs = 512

// Options configures a Sampler.
type Options struct {
	// WindowInstr is the epoch length in retired instructions across
	// all cores; <= 0 means DefaultWindowInstr.
	WindowInstr uint64

	// MaxEpochs bounds the ring of retained epochs; <= 0 means
	// DefaultMaxEpochs. Older epochs are dropped once it fills.
	MaxEpochs int

	// OnEpoch, when non-nil, is called synchronously with each epoch as
	// it closes — including the final partial one. The callback runs on
	// the simulating goroutine; it must not retain the Epoch's address.
	OnEpoch func(Epoch)
}

// Epoch is one closed sampling window: deltas of the simulator's
// cumulative counters between two consecutive boundaries, plus the
// derived rates the paper's figures are built from.
type Epoch struct {
	Index    int    // epoch number within the run, from 0
	EndInstr uint64 // cumulative instructions at the closing boundary
	EndCycle uint64 // cumulative cycles (max core time) at the boundary

	Instr  uint64  // instructions retired within the window
	Cycles uint64  // cycles elapsed within the window
	IPC    float64 // Instr / Cycles, 0 when no cycle elapsed

	LLCAccesses uint64  // LLC accesses within the window
	LLCMisses   uint64  // LLC misses within the window
	MPKI        float64 // LLCMisses per thousand window instructions

	Requests  uint64  // memory requests within the window
	NMHitFrac float64 // fraction of window requests served from NM

	NMTrafficBytes uint64 // NM read+write bytes within the window
	FMTrafficBytes uint64 // FM read+write bytes within the window
	MetaNMBytes    uint64 // metadata subset of the NM traffic
	Migrations     uint64
	Evictions      uint64
	WastedFrac     float64 // wasted fraction of bytes fetched this window

	LatCount uint64  // demand read-miss latency samples in the window
	LatMean  float64 // mean demand read-miss latency, cycles
	LatP50   uint64
	LatP99   uint64
}

// Phase is one segment of the phase-segmentation summary: a maximal
// run of consecutive epochs with statistically similar IPC.
type Phase struct {
	StartEpoch int // first epoch index in the phase, inclusive
	EndEpoch   int // last epoch index in the phase, inclusive
	Epochs     int // EndEpoch - StartEpoch + 1

	MeanIPC        float64
	MeanMPKI       float64
	MeanNMHitFrac  float64
	MeanWastedFrac float64
}

// Series is the finalized output of one sampled run: the retained
// epochs (oldest first), bookkeeping about what the ring dropped, and
// the phase segmentation computed over the retained epochs.
type Series struct {
	WindowInstr   uint64  // configured epoch length
	EpochsTotal   int     // epochs ever closed during the run
	EpochsDropped int     // epochs the ring evicted (EpochsTotal - len(Epochs))
	Epochs        []Epoch // retained epochs, oldest first
	Phases        []Phase // segmentation over the retained epochs
}

// Sampler accumulates epochs for one run. It is driven by the run
// loop: Latency per demand read miss, Flush at each window boundary
// and once at the end of the run. A nil *Sampler is fully disabled —
// every method is a free no-op — so call sites need no guards beyond
// the ones they want for branch-prediction hygiene. A Sampler is not
// safe for concurrent use; each run owns its own.
type Sampler struct {
	window  uint64
	ring    []Epoch
	head    int // next write slot in ring
	n       int // epochs currently retained
	total   int // epochs ever closed
	onEpoch func(Epoch)

	// Cumulative counter snapshot at the previous boundary.
	lastInstr uint64
	lastCycle uint64
	lastAcc   uint64
	lastMiss  uint64
	lastMem   memtypes.MemStats

	// Window-local demand read-miss latency histogram, reset by zeroing
	// at each boundary.
	lat stats.Histogram
}

// New returns an enabled sampler. Zero-value Options are usable:
// defaults fill in the window and ring bound.
func New(opts Options) *Sampler {
	w := opts.WindowInstr
	if w == 0 {
		w = DefaultWindowInstr
	}
	max := opts.MaxEpochs
	if max <= 0 {
		max = DefaultMaxEpochs
	}
	return &Sampler{
		window:  w,
		ring:    make([]Epoch, max),
		onEpoch: opts.OnEpoch,
	}
}

// Enabled reports whether the sampler collects anything. It is the
// idiomatic guard for hot paths: false for a nil receiver.
func (s *Sampler) Enabled() bool { return s != nil }

// WindowInstr returns the epoch length in instructions, 0 for a nil
// sampler (which the run loop treats as "no boundary ever").
func (s *Sampler) WindowInstr() uint64 {
	if s == nil {
		return 0
	}
	return s.window
}

// Latency records one demand read-miss latency (cycles) into the
// current window. No-op on a nil sampler.
func (s *Sampler) Latency(cycles uint64) {
	if s == nil {
		return
	}
	s.lat.Add(cycles)
}

// Flush closes the window ending at the given cumulative counters. The
// run loop calls it when the retired-instruction count crosses a
// boundary, and once more after the final record (the partial epoch).
// A flush with no new instructions is a no-op, so the final call is
// safe even when the run ended exactly on a boundary. No-op on a nil
// sampler.
func (s *Sampler) Flush(instr, cycle, llcAcc, llcMiss uint64, mem *memtypes.MemStats) {
	if s == nil || instr <= s.lastInstr {
		return
	}
	e := Epoch{
		Index:    s.total,
		EndInstr: instr,
		EndCycle: cycle,
		Instr:    instr - s.lastInstr,
		Cycles:   cycle - s.lastCycle,
	}
	if e.Cycles > 0 {
		e.IPC = float64(e.Instr) / float64(e.Cycles)
	}
	e.LLCAccesses = llcAcc - s.lastAcc
	e.LLCMisses = llcMiss - s.lastMiss
	e.MPKI = float64(e.LLCMisses) / (float64(e.Instr) / 1000)

	e.Requests = mem.Requests - s.lastMem.Requests
	if e.Requests > 0 {
		e.NMHitFrac = float64(mem.ServedNM-s.lastMem.ServedNM) / float64(e.Requests)
	}
	e.NMTrafficBytes = (mem.NMReadBytes - s.lastMem.NMReadBytes) + (mem.NMWriteBytes - s.lastMem.NMWriteBytes)
	e.FMTrafficBytes = (mem.FMReadBytes - s.lastMem.FMReadBytes) + (mem.FMWriteBytes - s.lastMem.FMWriteBytes)
	e.MetaNMBytes = mem.MetaNMBytes - s.lastMem.MetaNMBytes
	e.Migrations = mem.Migrations - s.lastMem.Migrations
	e.Evictions = mem.Evictions - s.lastMem.Evictions
	// Windowed wasted-fetch fraction. Used bytes of lines fetched in an
	// earlier window still accrue here, so the delta of used bytes can
	// exceed the delta of fetched bytes; clamp to 0 rather than wrap.
	fetched := mem.FetchedBytes - s.lastMem.FetchedBytes
	used := mem.UsedBytes - s.lastMem.UsedBytes
	if fetched > 0 && used < fetched {
		e.WastedFrac = float64(fetched-used) / float64(fetched)
	}

	e.LatCount = s.lat.Count()
	e.LatMean = s.lat.Mean()
	if e.LatCount > 0 {
		e.LatP50 = s.lat.Percentile(0.50)
		e.LatP99 = s.lat.Percentile(0.99)
	}

	s.ring[s.head] = e
	s.head++
	if s.head == len(s.ring) {
		s.head = 0
	}
	if s.n < len(s.ring) {
		s.n++
	}
	s.total++

	s.lastInstr = instr
	s.lastCycle = cycle
	s.lastAcc = llcAcc
	s.lastMiss = llcMiss
	s.lastMem = *mem
	s.lat = stats.Histogram{}

	if s.onEpoch != nil {
		s.onEpoch(e)
	}
}

// Series finalizes the run: it snapshots the retained epochs (oldest
// first) and computes the phase segmentation. Nil for a nil sampler.
// Series may be called more than once; each call re-derives the same
// result from the current state.
func (s *Sampler) Series() *Series {
	if s == nil {
		return nil
	}
	epochs := make([]Epoch, 0, s.n)
	if s.n == len(s.ring) {
		epochs = append(epochs, s.ring[s.head:]...)
		epochs = append(epochs, s.ring[:s.head]...)
	} else {
		epochs = append(epochs, s.ring[:s.n]...)
	}
	return &Series{
		WindowInstr:   s.window,
		EpochsTotal:   s.total,
		EpochsDropped: s.total - len(epochs),
		Epochs:        epochs,
		Phases:        Segment(epochs),
	}
}
