package mempod

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall(seed uint64) *MemPod {
	cfg := Default(1<<20, 8<<20, 512, seed)
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestHotSegmentMigratesAfterInterval(t *testing.T) {
	m := newSmall(1)
	// Find an FM-resident sector and hammer it through one interval.
	var addr memtypes.Addr
	for l := uint32(0); l < m.Space().Sectors(); l++ {
		if !m.Space().Lookup(l).NM {
			addr = memtypes.Addr(l) * 2048
			break
		}
	}
	var now memtypes.Tick
	for i := 0; i < 1000; i++ {
		now += 200
		m.Access(now, addr, false)
	}
	// Crossing the interval boundary triggers migration of the MEA-hot
	// segment; the access after the boundary must be served from NM.
	m.Access(m.cfg.IntervalCycles+1000, addr, false)
	logical := uint32(uint64(addr) / 2048)
	if !m.Space().Lookup(logical).NM {
		t.Fatal("hot segment not migrated at interval end")
	}
	if m.Stats().Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestMEATracksAtMostConfiguredCounters(t *testing.T) {
	m := newSmall(2)
	for seg := uint32(0); seg < 1000; seg++ {
		m.observe(seg)
	}
	if len(m.mea) > m.cfg.MEACounters {
		t.Fatalf("MEA holds %d entries, cap %d", len(m.mea), m.cfg.MEACounters)
	}
}

func TestMEAMajorityElementSurvives(t *testing.T) {
	m := newSmall(3)
	// One segment with strict majority must survive arbitrary noise.
	for i := 0; i < 5000; i++ {
		m.observe(42)
		if i%2 == 0 {
			m.observe(uint32(1000 + i)) // unique noise
		}
	}
	if i, ok := m.meaIdx[42]; !ok || m.mea[i].count <= m.debt {
		t.Fatal("majority element lost by MEA")
	}
}

func TestInvariantsUnderTraffic(t *testing.T) {
	m := newSmall(4)
	rng := rand.New(rand.NewSource(7))
	space := uint64(m.Space().Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 40000; i++ {
		now += 60
		m.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	m.Finish(now)
	if !m.Space().CheckInvariants() {
		t.Fatal("remap bijection broken")
	}
	s := m.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served sums %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
}

func TestRemapCacheMissesChargeNMMeta(t *testing.T) {
	m := newSmall(5)
	rng := rand.New(rand.NewSource(8))
	space := uint64(m.Space().Sectors()) * 2048
	var now memtypes.Tick
	for i := 0; i < 5000; i++ {
		now += 60
		m.Access(now, memtypes.Addr(rng.Uint64()%space), false)
	}
	if m.Stats().MetaNMBytes == 0 {
		t.Fatal("wide random traffic produced no remap-cache misses")
	}
}
