package dse

import "sort"

// Objectives is the objective vector of one evaluated candidate. The
// search maximizes Speedup and minimizes CapacityMB and TrafficGB; no
// scalarization is applied — trade-offs surface as the Pareto frontier.
type Objectives struct {
	// Speedup is the geometric-mean cycle speedup over the evaluated
	// workloads, normalized to the no-NM baseline.
	Speedup float64 `json:"speedup"`
	// CapacityMB is the DRAM capacity the organization spends, at paper
	// scale: the cacheMB parameter for families that expose one, the
	// full near-memory size otherwise, 0 for NM-less designs.
	CapacityMB float64 `json:"capacity_mb"`
	// TrafficGB is the mean write traffic per run across both memory
	// devices, in GB: all bytes written to NM (demand writes, cache
	// fills, migrations in, remap/tag metadata) plus all bytes written
	// to FM (writebacks, evictions, migrations out). Migration and
	// writeback cost dominates the differences between candidates, but
	// the counter is total write traffic, not migrations alone.
	TrafficGB float64 `json:"traffic_gb"`
}

// dominates reports Pareto dominance: a is at least as good as b on
// every objective and strictly better on at least one.
func (a Objectives) dominates(b Objectives) bool {
	if a.Speedup < b.Speedup || a.CapacityMB > b.CapacityMB || a.TrafficGB > b.TrafficGB {
		return false
	}
	return a.Speedup > b.Speedup || a.CapacityMB < b.CapacityMB || a.TrafficGB < b.TrafficGB
}

// Point is one evaluated candidate design.
type Point struct {
	Design string `json:"design"`
	Objectives
	// Infeasible marks a candidate that parsed but failed to build or
	// run (typically a capacity constraint at the simulated scale); its
	// objectives are zero and it never joins the frontier, but it is
	// recorded — and checkpointed — so a resumed search does not retry it.
	Infeasible bool   `json:"infeasible,omitempty"`
	Err        string `json:"error,omitempty"`
}

// frontier maintains the Pareto-optimal subset of the feasible points
// seen so far, updated incrementally as batches merge.
type frontier struct{ pts []Point }

// add offers a point to the frontier: a dominated or infeasible point is
// dropped, otherwise it joins and evicts every point it dominates.
// Points with identical objective vectors coexist.
func (f *frontier) add(p Point) {
	if p.Infeasible {
		return
	}
	for _, q := range f.pts {
		if q.Objectives.dominates(p.Objectives) {
			return
		}
	}
	keep := f.pts[:0]
	for _, q := range f.pts {
		if !p.Objectives.dominates(q.Objectives) {
			keep = append(keep, q)
		}
	}
	f.pts = append(keep, p)
}

// sorted returns the frontier ordered for reporting: ascending capacity
// (the cost axis), then ascending traffic, then descending speedup, then
// name — a deterministic order for any insertion history.
func (f *frontier) sorted() []Point {
	out := append([]Point(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CapacityMB != b.CapacityMB {
			return a.CapacityMB < b.CapacityMB
		}
		if a.TrafficGB != b.TrafficGB {
			return a.TrafficGB < b.TrafficGB
		}
		if a.Speedup != b.Speedup {
			return a.Speedup > b.Speedup
		}
		return a.Design < b.Design
	})
	return out
}

// FrontierOf computes the Pareto frontier of a set of evaluated points
// in the canonical reporting order (see frontier.sorted). Infeasible
// points never join. The fold is order-independent — dominance is
// transitive, so every dominated point is rejected or evicted no matter
// when its dominator arrives — which is what lets a distributed search
// shard its evaluations freely.
func FrontierOf(pts []Point) []Point {
	var f frontier
	for _, p := range pts {
		f.add(p)
	}
	return f.sorted()
}

// MergeFrontiers folds per-shard frontiers into the frontier of their
// union: MergeFrontiers(FrontierOf(s) for every shard s of S) is
// identical to FrontierOf(S) for any partition and any shard order —
// points dominated within a shard are also dominated in the union, and
// cross-shard dominance resolves during the merge fold. This is the
// determinism guarantee distributed exploration rests on, pinned by a
// property test over random trails, partitions and permutations.
func MergeFrontiers(shards ...[]Point) []Point {
	var f frontier
	for _, s := range shards {
		for _, p := range s {
			f.add(p)
		}
	}
	return f.sorted()
}

// sortedByName returns the frontier ordered by design name — the
// deterministic iteration order of the hill-climb's neighbor expansion.
func (f *frontier) sortedByName() []Point {
	out := append([]Point(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Design < out[j].Design })
	return out
}
