// Package footprint implements the Footprint Cache (Jevdjic, Volos,
// Falsafi, ISCA'13), the §2.1 design that tackles the over-fetch of
// large DRAM-cache lines: data is allocated at page (2 KB) granularity
// with on-chip tags, but on allocation only the lines the page's
// *footprint* — the set of lines used during its previous residency — is
// fetched, plus the demanded line. Remaining lines are demand-fetched on
// first touch. On eviction, the page's observed footprint is stored in a
// history table keyed by page address and seeds the next allocation.
package footprint

import (
	"math/bits"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes the footprint cache.
type Config struct {
	NMBytes    uint64
	PageBytes  int // footprint page (2 KB in the original design)
	Assoc      int
	HistoryMax int // bounded footprint-history table entries
}

// Default returns the standard configuration over all of NM.
func Default(nmBytes uint64) Config {
	return Config{NMBytes: nmBytes, PageBytes: 2048, Assoc: 16, HistoryMax: 1 << 16}
}

type entry struct {
	tag      uint64
	valid    bool
	validVec uint32 // per-64B-line presence
	dirtyVec uint32
	usedVec  uint32 // footprint observed this residency
	lru      uint64
}

// Cache implements memtypes.MemorySystem.
type Cache struct {
	cfg     Config
	nm, fm  *memsys.Device
	entries []entry
	sets    int
	lines   int // 64 B lines per page
	clock   uint64
	history map[uint64]uint32 // page -> footprint of last residency
	stats   memtypes.MemStats
}

// New builds the footprint cache over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *Cache {
	sets := int(cfg.NMBytes) / (cfg.Assoc * cfg.PageBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("footprint: set count must be a positive power of two")
	}
	lines := cfg.PageBytes / memtypes.CPULineBytes
	if lines > 32 {
		panic("footprint: pages larger than 32 lines unsupported")
	}
	return &Cache{
		cfg:     cfg,
		nm:      nm,
		fm:      fm,
		entries: make([]entry, sets*cfg.Assoc),
		sets:    sets,
		lines:   lines,
		history: make(map[uint64]uint32, 4096),
	}
}

// Name implements MemorySystem.
func (c *Cache) Name() string { return "FOOTPRINT" }

// Stats implements MemorySystem.
func (c *Cache) Stats() *memtypes.MemStats { return &c.stats }

func (c *Cache) nmAddr(set, way int, line uint) memtypes.Addr {
	return memtypes.Addr((set*c.cfg.Assoc+way)*c.cfg.PageBytes) + memtypes.Addr(line)*64
}

// Access implements MemorySystem.
func (c *Cache) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	c.stats.Requests++
	c.clock++
	page := uint64(addr) / uint64(c.cfg.PageBytes)
	set := int(page % uint64(c.sets))
	tag := page / uint64(c.sets)
	line := uint(uint64(addr) % uint64(c.cfg.PageBytes) / 64)
	ways := c.entries[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]

	victim := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == tag {
			w.lru = c.clock
			w.usedVec |= 1 << line
			if w.validVec&(1<<line) != 0 { // line present
				c.stats.ServedNM++
				done := c.nm.Access(now, c.nmAddr(set, i, line), 64, write)
				if write {
					w.dirtyVec |= 1 << line
					c.stats.NMWriteBytes += 64
				} else {
					c.stats.NMReadBytes += 64
				}
				return done
			}
			// Page present, line outside the predicted footprint:
			// demand-fetch just this line.
			c.stats.ServedFM++
			done := c.fm.Access(now, memtypes.Addr(page*uint64(c.cfg.PageBytes))+memtypes.Addr(line)*64, 64, false)
			c.nm.AccessBG(done, c.nmAddr(set, i, line), 64, true)
			c.stats.FMReadBytes += 64
			c.stats.NMWriteBytes += 64
			c.stats.FetchedBytes += 64
			w.validVec |= 1 << line
			if write {
				w.dirtyVec |= 1 << line
			}
			return done
		}
		if !ways[victim].valid {
			continue
		}
		if !w.valid || w.lru < ways[victim].lru {
			victim = i
		}
	}

	// Page miss: evict the victim, allocate, fetch the predicted
	// footprint (or just the demanded line on a cold page).
	c.stats.ServedFM++
	w := &ways[victim]
	if w.valid {
		c.evict(now, set, victim)
	}
	fp := c.history[page] | 1<<line
	pageBase := memtypes.Addr(page * uint64(c.cfg.PageBytes))

	// Demanded line first (critical), predicted lines in the background.
	done := c.fm.Access(now, pageBase+memtypes.Addr(line)*64, 64, false)
	c.nm.AccessBG(done, c.nmAddr(set, victim, line), 64, true)
	fetched := uint64(64)
	for m := fp &^ (1 << line); m != 0; m &= m - 1 {
		l := uint(bits.TrailingZeros32(m))
		rd := c.fm.AccessBG(now, pageBase+memtypes.Addr(l)*64, 64, false)
		c.nm.AccessBG(rd, c.nmAddr(set, victim, l), 64, true)
		fetched += 64
	}
	c.stats.FMReadBytes += fetched
	c.stats.NMWriteBytes += fetched
	c.stats.FetchedBytes += fetched

	w.valid = true
	w.tag = tag
	w.validVec = fp
	w.usedVec = 1 << line
	w.dirtyVec = 0
	if write {
		w.dirtyVec = 1 << line
	}
	w.lru = c.clock
	return done
}

// evict writes dirty lines back and records the observed footprint.
func (c *Cache) evict(now memtypes.Tick, set, way int) {
	w := &c.entries[set*c.cfg.Assoc+way]
	page := w.tag*uint64(c.sets) + uint64(set)
	pageBase := memtypes.Addr(page * uint64(c.cfg.PageBytes))
	for m := w.dirtyVec; m != 0; m &= m - 1 {
		l := uint(bits.TrailingZeros32(m))
		rd := c.nm.AccessBG(now, c.nmAddr(set, way, l), 64, false)
		c.fm.AccessBG(rd, pageBase+memtypes.Addr(l)*64, 64, true)
		c.stats.NMReadBytes += 64
		c.stats.FMWriteBytes += 64
	}
	c.stats.UsedBytes += uint64(bits.OnesCount32(w.usedVec)) * 64
	c.stats.Evictions++
	if len(c.history) >= c.cfg.HistoryMax {
		for k := range c.history {
			delete(c.history, k)
		}
	}
	c.history[page] = w.usedVec
	w.valid = false
}

// Finish credits resident pages' use vectors (wasted-fetch accounting).
func (c *Cache) Finish(memtypes.Tick) {
	for i := range c.entries {
		w := &c.entries[i]
		if w.valid {
			c.stats.UsedBytes += uint64(bits.OnesCount32(w.usedVec)) * 64
			w.usedVec = 0
		}
	}
}

// HistoryLen exposes the footprint-table size for tests.
func (c *Cache) HistoryLen() int { return len(c.history) }
