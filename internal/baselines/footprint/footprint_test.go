package footprint

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall() *Cache {
	cfg := Default(1 << 20)
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestColdPageFetchesOnlyDemandedLine(t *testing.T) {
	c := newSmall()
	c.Access(0, 0x10000, false)
	if c.Stats().FMReadBytes != 64 {
		t.Fatalf("cold page fetched %d bytes, want 64", c.Stats().FMReadBytes)
	}
}

func TestFootprintSeedsNextResidency(t *testing.T) {
	c := newSmall()
	// First residency: touch lines 0..3 of page 0.
	var now memtypes.Tick
	for i := 0; i < 4; i++ {
		now += 1000
		c.Access(now, memtypes.Addr(i*64), false)
	}
	// Evict page 0 by filling its set (same set: stride sets*2048).
	stride := memtypes.Addr(c.sets * 2048)
	for i := 1; i <= c.cfg.Assoc; i++ {
		now += 1000
		c.Access(now, memtypes.Addr(i)*stride, false)
	}
	if c.HistoryLen() == 0 {
		t.Fatal("no footprint recorded on eviction")
	}
	// Second residency: the recorded 4-line footprint is prefetched, so
	// line 2 (not the demanded line 0) must hit.
	before := c.Stats().ServedNM
	now += 1000
	c.Access(now, 0, false) // allocation with footprint {0..3}
	now += 1000
	c.Access(now, 2*64, false)
	if c.Stats().ServedNM != before+1 {
		t.Fatal("footprint-predicted line did not hit")
	}
}

func TestUnpredictedLineDemandFetched(t *testing.T) {
	c := newSmall()
	c.Access(0, 0, false)        // page allocated with line 0 only
	c.Access(5000, 10*64, false) // line 10: present page, absent line
	s := c.Stats()
	if s.FMReadBytes != 128 {
		t.Fatalf("FM reads %d, want two single-line fetches (128)", s.FMReadBytes)
	}
	if s.ServedNM != 0 {
		t.Fatal("absent line counted as NM hit")
	}
	c.Access(10000, 10*64, false)
	if c.Stats().ServedNM != 1 {
		t.Fatal("demand-fetched line did not hit afterwards")
	}
}

func TestDirtyLinesWrittenBackOnEviction(t *testing.T) {
	c := newSmall()
	c.Access(0, 0, true) // dirty line 0 of page 0
	stride := memtypes.Addr(c.sets * 2048)
	var now memtypes.Tick
	for i := 1; i <= c.cfg.Assoc; i++ {
		now += 1000
		c.Access(now, memtypes.Addr(i)*stride, false)
	}
	if c.Stats().FMWriteBytes != 64 {
		t.Fatalf("write-back bytes %d, want 64 (dirty lines only)", c.Stats().FMWriteBytes)
	}
}

func TestHistoryBounded(t *testing.T) {
	cfg := Default(1 << 20)
	cfg.HistoryMax = 64
	c := New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
	rng := rand.New(rand.NewSource(5))
	var now memtypes.Tick
	for i := 0; i < 50000; i++ {
		now += 50
		c.Access(now, memtypes.Addr(rng.Intn(1<<26))&^63, false)
	}
	if c.HistoryLen() > cfg.HistoryMax {
		t.Fatalf("history grew to %d entries, cap %d", c.HistoryLen(), cfg.HistoryMax)
	}
}

func TestWastedFetchLowerThanIdealLargeLine(t *testing.T) {
	// The whole point of the design: footprint fills waste far less than
	// eagerly filling whole pages. Single-line-per-page traffic must
	// yield ~zero waste.
	c := newSmall()
	var now memtypes.Tick
	for i := 0; i < 3000; i++ {
		now += 100
		c.Access(now, memtypes.Addr(i*2048), false)
	}
	c.Finish(now)
	if w := c.Stats().WastedFrac(); w > 0.05 {
		t.Fatalf("footprint cache wasted %.2f of fetched data", w)
	}
}

func TestServedSumsToRequests(t *testing.T) {
	c := newSmall()
	rng := rand.New(rand.NewSource(9))
	var now memtypes.Tick
	for i := 0; i < 20000; i++ {
		now += 60
		c.Access(now, memtypes.Addr(rng.Intn(1<<24))&^63, rng.Intn(4) == 0)
	}
	s := c.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
}
