// Command dse explores the registered memory-organization design space
// for Pareto-optimal configurations — the paper's H2DSE search (Fig. 11)
// generalized over every family in the registry.
//
// Usage:
//
//	dse                                   # budgeted search over all families
//	dse -families H2DSE -budget 48        # the paper's Fig. 11 space
//	dse -workloads lbm,omnetpp -budget 0  # exhaustive on two workloads
//	dse -checkpoint s.json                # resumable: state saved per batch
//	dse -checkpoint s.json -resume        # continue an interrupted search
//	dse -screen 20000 -budget 16          # multi-fidelity: screen cheap, promote survivors
//	dse -runners 4                        # evaluate through the distributed plane (loopback)
//	dse -json                             # machine-readable result
//
// The search is deterministic for a given flag set and -seed: interrupt
// it at any batch boundary (Ctrl-C flushes a final checkpoint) and
// resume it, and the frontier — and the -json bytes — are identical to
// an uninterrupted run. Progress streams to stderr; the final Markdown
// frontier table (or JSON with -json) goes to stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"hybridmem"
)

func main() {
	os.Exit(run())
}

func run() int {
	families := flag.String("families", "", "comma-separated design families to explore (default: every registered family except the baseline)")
	workloads := flag.String("workloads", "lbm,omnetpp,mcf", "comma-separated evaluation workloads (empty: all 30)")
	budget := flag.Int("budget", 32, "max candidate evaluations, stopping at a batch boundary (0: exhaustive)")
	batch := flag.Int("batch", 8, "candidates evaluated and checkpointed per batch")
	seed := flag.Uint64("seed", 1, "search seed (random sampling)")
	simSeed := flag.Uint64("simseed", 1, "simulation seed")
	scale := flag.Int("scale", 16, "capacity scale divisor")
	instr := flag.Uint64("instr", 200_000, "instructions per core per run")
	ratio := flag.Int("ratio", 1, "NM:FM capacity ratio in sixteenths (1, 2 or 4 in the paper)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "simulation runs evaluated concurrently")
	runners := flag.Int("runners", 0, "evaluate through the distributed execution plane with N in-process runners (0: direct local evaluation; results are identical either way)")
	maxvals := flag.Int("maxvals", 12, "max enumerated values per integer parameter")
	ubound := flag.Int("ubound", 0, "upper bound substituted for parameters declared unbounded above (0: refuse to enumerate them)")
	maxBatches := flag.Int("maxbatches", 0, "pause after this many batches (0: run to completion); combine with -checkpoint to time-slice a search")
	storeDir := flag.String("store", "", "persistent result-store directory: previously simulated candidate runs are reused across searches (empty: no reuse; never changes results)")
	checkpoint := flag.String("checkpoint", "", "JSON state file, rewritten atomically after every batch")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of starting fresh")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of a Markdown table")
	screen := flag.Uint64("screen", 0, "multi-fidelity screening: instructions per core for the screening phase (0: single fidelity)")
	screenBudget := flag.Int("screenbudget", 0, "max screening evaluations (0: 4x -budget); only with -screen")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at search end to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dse:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dse:", err)
			}
		}()
	}

	opts := hybridmem.ExploreOptions{
		Families:           splitList(*families),
		Workloads:          splitList(*workloads),
		Budget:             *budget,
		BatchSize:          *batch,
		Seed:               *seed,
		Config:             hybridmem.Config{Scale: *scale, NMRatio16: *ratio, InstrPerCore: *instr, Seed: *simSeed},
		ScreenInstrPerCore: *screen,
		ScreenBudget:       *screenBudget,
		Parallelism:        *parallel,
		LoopbackRunners:    *runners,
		StoreDir:           *storeDir,
		MaxPerParam:        *maxvals,
		UnboundedMax:       *ubound,
		MaxBatches:         *maxBatches,
		Checkpoint:         *checkpoint,
		Resume:             *resume,
		Progress: func(p hybridmem.ExploreProgress) {
			if p.Done {
				return
			}
			target := p.Budget
			if target <= 0 || target > p.SpaceSize {
				target = p.SpaceSize
			}
			if p.Screened > 0 {
				fmt.Fprintf(os.Stderr, "dse: batch %d: %d screened, %d/%d candidates evaluated, frontier %d\n",
					p.Batch, p.Screened, p.Evaluated, target, p.FrontierSize)
				return
			}
			fmt.Fprintf(os.Stderr, "dse: batch %d: %d/%d candidates evaluated, frontier %d\n",
				p.Batch, p.Evaluated, target, p.FrontierSize)
		},
	}

	// A first interrupt cancels the search, which flushes a final
	// checkpoint before returning; unregistering the handler as soon as
	// the context is done restores default signal handling, so a second
	// interrupt kills the process instead of being swallowed while the
	// in-flight batch drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	res, err := hybridmem.Explore(ctx, opts)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "dse: interrupted after %d batch(es), %d candidate(s) evaluated\n", res.Batches, len(res.Evaluated))
		if *checkpoint != "" {
			if _, statErr := os.Stat(*checkpoint); statErr == nil {
				fmt.Fprintf(os.Stderr, "dse: checkpoint flushed to %s; rerun with -resume to continue\n", *checkpoint)
			}
		}
		return 130
	default:
		fmt.Fprintln(os.Stderr, "dse:", err)
		return 1
	}

	if !res.Complete {
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "dse: paused after %d batch(es); rerun with -resume to continue\n", res.Batches)
		} else {
			fmt.Fprintf(os.Stderr, "dse: paused after %d batch(es); no -checkpoint given, so the search cannot be resumed\n", res.Batches)
		}
	}
	if *jsonOut {
		// The canonical versioned wire document — the same mapping and
		// bytes the hybridmemd server emits for this search.
		data, err := res.WireJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			return 1
		}
		os.Stdout.Write(data)
		return 0
	}
	printFrontier(res)
	return 0
}

// splitList parses a comma-separated flag; empty means nil (defaults).
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// printFrontier renders the search outcome as a Markdown table.
func printFrontier(res hybridmem.ExploreResult) {
	infeasible := 0
	for _, p := range res.Evaluated {
		if p.Infeasible {
			infeasible++
		}
	}
	if len(res.Screened) > 0 {
		fmt.Printf("Screened %d of %d candidates at reduced fidelity; promoted %d to full fidelity.\n",
			len(res.Screened), res.SpaceSize, len(res.Evaluated))
	}
	fmt.Printf("Evaluated %d of %d candidates (%d infeasible) in %d batch(es); %d on the Pareto frontier.\n\n",
		len(res.Evaluated), res.SpaceSize, infeasible, res.Batches, len(res.Frontier))
	fmt.Println("| Design | Speedup | Capacity (MB) | Write traffic (GB) |")
	fmt.Println("| --- | --- | --- | --- |")
	for _, p := range res.Frontier {
		fmt.Printf("| `%s` | %.3f | %.0f | %.3f |\n", p.Design, p.Speedup, p.CapacityMB, p.TrafficGB)
	}
}
