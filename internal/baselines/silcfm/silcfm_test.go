package silcfm

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall(seed uint64) *SILCFM {
	return New(Default(1<<20, 8<<20, 512, seed),
		memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestReusedSegmentClaimsWay(t *testing.T) {
	s := newSmall(1)
	addr := memtypes.Addr(10 * 2048)
	var now memtypes.Tick
	// Revisit the segment (with other segments in between) until it
	// claims a way, then the sub-block must be NM-resident.
	for i := 0; i < s.cfg.ClaimEpisodes+1; i++ {
		now += 500
		s.Access(now, addr, false)
		now += 500
		s.Access(now, memtypes.Addr(5000+i)*2048, false)
	}
	now += 500
	s.Access(now, addr, false)
	if s.Stats().ServedNM == 0 {
		t.Fatal("reused segment never served from NM")
	}
	if s.Stats().Migrations == 0 {
		t.Fatal("no way claimed")
	}
}

func TestOnePassStreamNeverClaims(t *testing.T) {
	s := newSmall(2)
	var now memtypes.Tick
	for a := memtypes.Addr(0); a < 1<<20; a += 64 {
		now += 50
		s.Access(now, a, false)
	}
	if s.Stats().Migrations != 0 {
		t.Fatalf("streaming claimed %d ways", s.Stats().Migrations)
	}
}

func TestSubBlockInterleaving(t *testing.T) {
	s := newSmall(3)
	base := memtypes.Addr(10 * 2048)
	var now memtypes.Tick
	for i := 0; i < s.cfg.ClaimEpisodes+1; i++ {
		now += 500
		s.Access(now, base, false)
		now += 500
		s.Access(now, memtypes.Addr(5000+i)*2048, false)
	}
	// The claimed way holds only the demanded sub-block: another offset
	// demand-fetches 64 B into the same way (interleaving), then hits.
	fmBefore := s.Stats().FMReadBytes
	now += 500
	s.Access(now, base+512, false)
	if got := s.Stats().FMReadBytes - fmBefore; got != 64 {
		t.Fatalf("sub-block fill read %d bytes, want 64", got)
	}
	now += 500
	s.Access(now, base+512, false)
	servedBefore := s.Stats().ServedNM
	now += 500
	s.Access(now, base+512, false)
	if s.Stats().ServedNM != servedBefore+1 {
		t.Fatal("interleaved sub-block did not hit")
	}
}

func TestDirtyWritebackOnWayEviction(t *testing.T) {
	s := newSmall(4)
	// Claim a way with writes, then displace it with other claimants of
	// the same set (stride = sets*2048 keeps the set fixed).
	stride := memtypes.Addr(s.sets) * 2048
	claim := func(a memtypes.Addr, write bool) {
		var now memtypes.Tick
		for i := 0; i < s.cfg.ClaimEpisodes+1; i++ {
			now += 300
			s.Access(now, a, write)
			now += 300
			s.Access(now, a+memtypes.Addr(9999*2048), false)
		}
	}
	claim(0, true)
	for i := 1; i <= s.cfg.Assoc+1; i++ {
		claim(memtypes.Addr(i)*stride, false)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no way evictions despite set pressure")
	}
	if s.Stats().FMWriteBytes == 0 {
		t.Fatal("dirty sub-blocks never written back")
	}
	if !s.CheckInvariants() {
		t.Fatal("duplicate owners in a set")
	}
}

func TestInvariantsUnderTraffic(t *testing.T) {
	s := newSmall(5)
	rng := rand.New(rand.NewSource(11))
	var now memtypes.Tick
	for i := 0; i < 40000; i++ {
		now += 50
		s.Access(now, memtypes.Addr(rng.Intn(8<<20))&^63, rng.Intn(4) == 0)
	}
	if !s.CheckInvariants() {
		t.Fatal("invariants violated")
	}
	st := s.Stats()
	if st.ServedNM+st.ServedFM != st.Requests {
		t.Fatalf("served %d+%d != requests %d", st.ServedNM, st.ServedFM, st.Requests)
	}
}
