package exp

import (
	"testing"

	"hybridmem/internal/workload"
)

// TestGoldenDeterminism pins that identical configurations reproduce
// byte-identical results across runner instances — the reproducibility
// guarantee the README makes. (Unlike a classic golden test, it does not
// pin absolute numbers, which legitimately change when the model is
// improved; determinism must never change.)
func TestGoldenDeterminism(t *testing.T) {
	run := func() map[string]uint64 {
		r := NewRunner()
		r.InstrPerCore = 80_000
		out := make(map[string]uint64)
		for _, name := range []string{"lbm", "mcf", "namd"} {
			wl, _ := workload.ByName(name)
			for _, d := range []string{"Baseline", "HYBRID2", "MPOD", "TAGLESS"} {
				res := r.Result(wl, d, 1)
				out[name+"/"+d] = uint64(res.Cycles)
			}
		}
		return out
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("%s: %d != %d across identical runs", k, v, b[k])
		}
	}
}

// TestGoldenOrderings pins the paper's qualitative results that must
// survive any future model change. If one of these fails after an edit,
// the edit broke the reproduction, not just a number.
func TestGoldenOrderings(t *testing.T) {
	r := NewRunner()
	r.InstrPerCore = 250_000
	specs := workload.Specs()
	// Representative subset: one streaming high-MPKI, one pointer-heavy
	// medium, one low.
	var sub []workload.Spec
	for _, s := range specs {
		switch s.Name {
		case "lbm", "omnetpp", "xz", "namd":
			sub = append(sub, s)
		}
	}
	r.Subset = sub

	geo := func(d string) float64 {
		var g float64 = 1
		sp := r.AllSpeedups(d, 1)
		for _, x := range sp {
			g *= x
		}
		// 4th root of product
		return g
	}
	h2 := geo("HYBRID2")
	for _, d := range []string{"MPOD", "LGM"} {
		if geo(d) >= h2 {
			t.Errorf("HYBRID2 (%.3f^4) not above migration scheme %s (%.3f^4)", h2, d, geo(d))
		}
	}

	// Tagless must collapse on omnetpp (poor spatial locality) while
	// HYBRID2 stays near baseline.
	omn, _ := workload.ByName("omnetpp")
	if s := r.Speedup(omn, "TAGLESS", 1); s > 0.9 {
		t.Errorf("TAGLESS on omnetpp = %.2f, expected collapse below 0.9", s)
	}
	if s := r.Speedup(omn, "HYBRID2", 1); s < 0.8 {
		t.Errorf("HYBRID2 on omnetpp = %.2f, degraded too far", s)
	}

	// Low-MPKI workloads must be insensitive for every design.
	namd, _ := workload.ByName("namd")
	for _, d := range MainDesigns {
		if s := r.Speedup(namd, d, 1); s < 0.9 || s > 1.2 {
			t.Errorf("%s on namd = %.2f, expected ~1.0", d, s)
		}
	}
}
