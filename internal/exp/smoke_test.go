package exp

import (
	"fmt"
	"testing"
	"time"

	"hybridmem/internal/stats"
	"hybridmem/internal/workload"
)

// TestSmokeTiming is a development aid: it prints per-design aggregates
// over a handful of workloads so policy behaviour can be eyeballed.
// Run with -v to see the output.
func TestSmokeTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke output only")
	}
	r := NewRunner()
	names := []string{"cg.D", "lbm", "mcf", "omnetpp", "dc.B", "xz", "wrf", "deepsjeng"}
	var wls []workload.Spec
	for _, n := range names {
		wl, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("no workload %s", n)
		}
		wls = append(wls, wl)
	}
	r.Subset = wls
	start := time.Now()
	for _, d := range []string{"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"} {
		var sp, served, fmt16 []float64
		for _, wl := range wls {
			sp = append(sp, r.Speedup(wl, d, 1))
			res := r.Result(wl, d, 1)
			base := r.Result(wl, "Baseline", 1)
			served = append(served, res.ServedNMFrac())
			fmt16 = append(fmt16, stats.Ratio(float64(res.Mem.FMTraffic()), float64(base.Mem.FMTraffic())))
		}
		fmt.Printf("%-8s geomean=%.3f min=%.2f max=%.2f servedNM=%.2f fmTraffic=%.2f\n",
			d, stats.Geomean(sp), stats.Min(sp), stats.Max(sp), stats.Geomean(served), stats.Geomean(fmt16))
	}
	fmt.Printf("per-workload HYBRID2 vs designs:\n")
	for _, wl := range wls {
		fmt.Printf("  %-10s", wl.Name)
		for _, d := range []string{"MPOD", "CHA", "LGM", "TAGLESS", "DFC", "HYBRID2"} {
			fmt.Printf(" %s=%.2f", d, r.Speedup(wl, d, 1))
		}
		fmt.Println()
	}
	fmt.Printf("total %v\n", time.Since(start))
}
