// Command hybridmemd is the simulation-as-a-service daemon: a long-lived
// HTTP server multiplexing many clients over the simulation engines,
// with a content-addressed result cache, singleflight deduplication,
// async jobs with SSE progress, and streaming trace upload.
//
// Usage:
//
//	hybridmemd                            # listen on :8080, in-memory
//	hybridmemd -addr 127.0.0.1:9090
//	hybridmemd -state /var/lib/hybridmem  # persist jobs, results, checkpoints
//
// Endpoints (see internal/serve and the README's Serving section):
//
//	GET  /healthz   GET /metrics   GET /v1/designs   GET /v1/workloads
//	POST /v1/run    POST /v1/sweep POST /v1/explore  POST /v1/replay
//	GET  /v1/jobs/{id}[/events|/result]
//
// SIGTERM or SIGINT drains gracefully: health flips to 503, new jobs are
// rejected, and in-flight work gets -drain to finish (interrupted
// explorations flush a checkpoint and resume on the next start when
// -state is set). A clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridmem"
)

func main() {
	addr := flag.String("addr", ":8080", "TCP listen address")
	state := flag.String("state", "", "state directory for job specs, results and exploration checkpoints (empty: in-memory only)")
	cacheEntries := flag.Int("cache-entries", 1024, "result-cache entry bound")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache byte bound, in MB")
	queue := flag.Int("queue", 64, "async job queue depth")
	workers := flag.Int("workers", 2, "async job workers")
	parallel := flag.Int("parallel", 0, "simulations evaluated concurrently per job (0: all CPUs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	flag.Parse()

	logf := log.New(os.Stderr, "hybridmemd: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logf("signal received; draining (up to %v)", *drain)
		// Restore default signal handling so a second signal kills the
		// process instead of being swallowed while the drain runs.
		stop()
	}()

	err := hybridmem.Serve(ctx, hybridmem.ServeOptions{
		Addr:         *addr,
		StateDir:     *state,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheMB << 20,
		QueueDepth:   *queue,
		Workers:      *workers,
		Parallelism:  *parallel,
		DrainTimeout: *drain,
		Logf:         logf,
		OnListen:     func(addr string) { logf("listening on %s", addr) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridmemd:", err)
		os.Exit(1)
	}
	logf("drained cleanly")
}
