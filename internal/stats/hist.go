package stats

import "math/bits"

// Histogram is a log2-bucketed histogram of non-negative integer samples
// (latencies in cycles or microseconds): bucket i holds values in
// [2^i, 2^(i+1)), bucket 0 also holds 0, and the top bucket absorbs
// everything at or above 2^39. Percentile reads return the bucket's lower
// bound, so a uniform population at an exact bucket boundary L reports L
// rather than 2L. The zero value is an empty histogram ready for use.
// Histogram is not safe for concurrent use; callers that share one across
// goroutines must lock around it.
type Histogram struct {
	buckets [40]uint64
	count   uint64
	sum     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	b := 0
	if v > 1 {
		// floor(log2 v), capped at the top bucket — same bucket the old
		// shift loop picked, without the per-sample loop.
		b = bits.Len64(v) - 1
		if b > len(h.buckets)-1 {
			b = len(h.buckets) - 1
		}
	}
	h.buckets[b]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of the recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean of the recorded samples, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the lower bound of the bucket holding the p-th
// quantile (0 <= p <= 1), 0 when empty.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			return 1 << uint(i)
		}
	}
	return 1 << uint(len(h.buckets)-1)
}
