package stats

import "testing"

func TestHistogramMeanAndPercentiles(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	if h.Mean() < 450 || h.Mean() > 550 {
		t.Fatalf("mean %.0f, want ~500", h.Mean())
	}
	p50 := h.Percentile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 bucket bound %d out of plausible range", p50)
	}
	if p99 := h.Percentile(0.99); p99 < p50 {
		t.Fatal("p99 below p50")
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Percentile(0.5) != 0 || empty.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramPercentileReturnsBucketLowerBound(t *testing.T) {
	// A uniform population at an exact bucket boundary must report
	// itself, not double: 100 samples of 256 land in bucket [256,512).
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(256)
	}
	if got := h.Percentile(0.5); got != 256 {
		t.Fatalf("P50 of uniform 256 = %d, want 256", got)
	}
	if got := h.Percentile(0.99); got != 256 {
		t.Fatalf("P99 of uniform 256 = %d, want 256", got)
	}

	// Bucket 0 holds value 1 and must report 1, not 2.
	var h1 Histogram
	h1.Add(1)
	if got := h1.Percentile(0.5); got != 1 {
		t.Fatalf("P50 of single sample 1 = %d, want 1", got)
	}

	// Non-boundary values report their bucket's lower bound: 200 is in
	// [128,256).
	var h2 Histogram
	for i := 0; i < 10; i++ {
		h2.Add(200)
	}
	if got := h2.Percentile(0.5); got != 128 {
		t.Fatalf("P50 of uniform 200 = %d, want bucket lower bound 128", got)
	}

	// Bimodal split: P50 sits at the second mode (target rank 50 is the
	// first sample past the lower half), P99 in the top bucket.
	var hb Histogram
	for i := 0; i < 50; i++ {
		hb.Add(4)
	}
	for i := 0; i < 50; i++ {
		hb.Add(1024)
	}
	if got := hb.Percentile(0.49); got != 4 {
		t.Fatalf("P49 of bimodal = %d, want 4", got)
	}
	if got := hb.Percentile(0.99); got != 1024 {
		t.Fatalf("P99 of bimodal = %d, want 1024", got)
	}

	// The overflow bucket clamps huge samples to the top bucket's lower
	// bound instead of overflowing the shift.
	var ho Histogram
	ho.Add(1 << 50)
	if got := ho.Percentile(0.5); got != 1<<39 {
		t.Fatalf("P50 of huge sample = %d, want 1<<39", got)
	}
}
