package banshee

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall() *Banshee {
	return New(Default(1<<20), memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestMissesServedFromFMWithoutFill(t *testing.T) {
	b := newSmall()
	b.Access(0, 0x1000, false)
	s := b.Stats()
	if s.ServedFM != 1 {
		t.Fatal("miss not served from FM")
	}
	// One cold sampled miss must not immediately fill a whole page.
	if s.FMReadBytes > 64+uint64(b.cfg.PageBytes) {
		t.Fatalf("cold miss moved %d bytes", s.FMReadBytes)
	}
}

func TestFrequencyGatedFill(t *testing.T) {
	b := newSmall()
	addr := memtypes.Addr(0x4000)
	var now memtypes.Tick
	// Hammer one page: sampled counters eventually cross the threshold
	// and the page is cached; later accesses hit in NM.
	for i := 0; i < 64; i++ {
		now += 200
		b.Access(now, addr, false)
	}
	s := b.Stats()
	if s.Migrations == 0 {
		t.Fatal("hot page never cached")
	}
	if s.ServedNM == 0 {
		t.Fatal("cached page never served from NM")
	}
}

func TestOnePassStreamNotCached(t *testing.T) {
	b := newSmall()
	var now memtypes.Tick
	for a := memtypes.Addr(0); a < 4<<20; a += 64 {
		now += 20
		b.Access(now, a, false)
	}
	// Each page is touched 64 times in a row, but candidate counters are
	// sampled 1-in-4 so frequency builds; streaming pages do get cached
	// under pure frequency policies — the bandwidth saving comes from the
	// threshold against the victim. Verify fills are bounded well below
	// one per page touched.
	pages := uint64(4 << 20 / b.cfg.PageBytes)
	if b.Stats().Migrations > pages/2 {
		t.Fatalf("cached %d of %d streamed pages", b.Stats().Migrations, pages)
	}
}

func TestVictimProtectedByFrequency(t *testing.T) {
	b := newSmall()
	var now memtypes.Tick
	// Make every way of set 0 hot and resident.
	stride := memtypes.Addr(b.sets * b.cfg.PageBytes)
	for w := 0; w < b.cfg.Assoc; w++ {
		for i := 0; i < 128; i++ {
			now += 100
			b.Access(now, memtypes.Addr(w)*stride, false)
		}
	}
	// A lukewarm competitor must not displace any hot resident with only
	// a couple of sampled touches.
	comp := memtypes.Addr(b.cfg.Assoc) * stride
	for i := 0; i < 8; i++ {
		now += 100
		b.Access(now, comp, false)
	}
	for i := range b.entries {
		if b.entries[i].tag == uint64(comp/memtypes.Addr(b.cfg.PageBytes))+1 {
			t.Fatal("lukewarm page displaced a hot resident")
		}
	}
}

func TestDirtyPageWritebacks(t *testing.T) {
	b := newSmall()
	var now memtypes.Tick
	// Cache a page with writes, then displace it with hotter pages.
	for i := 0; i < 64; i++ {
		now += 100
		b.Access(now, 0, true)
	}
	stride := memtypes.Addr(b.sets * b.cfg.PageBytes)
	for w := 1; w <= b.cfg.Assoc+2; w++ {
		for i := 0; i < 300; i++ {
			now += 100
			b.Access(now, memtypes.Addr(w)*stride, false)
		}
	}
	if b.Stats().FMWriteBytes == 0 {
		t.Fatal("dirty page eviction produced no write-back")
	}
}

func TestServedSumsToRequests(t *testing.T) {
	b := newSmall()
	rng := rand.New(rand.NewSource(3))
	var now memtypes.Tick
	for i := 0; i < 30000; i++ {
		now += 60
		b.Access(now, memtypes.Addr(rng.Intn(1<<24))&^63, rng.Intn(4) == 0)
	}
	s := b.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
}
