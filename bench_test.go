// Benchmarks regenerating each table and figure of the paper at reduced
// cost (subsampled workloads, short streams). Each benchmark reports the
// artifact's headline number as a custom metric, so `go test -bench=.`
// doubles as a smoke regeneration of the whole evaluation; cmd/experiments
// produces the full-size series recorded in EXPERIMENTS.md.
package hybridmem

import (
	"context"
	"fmt"
	"testing"

	"hybridmem/internal/cluster"
	"hybridmem/internal/exp"
	"hybridmem/internal/obs"
	"hybridmem/internal/store"
	"hybridmem/internal/workload"
)

// benchRunner returns a low-cost runner: one workload per MPKI class,
// short instruction streams.
func benchRunner() *exp.Runner {
	r := exp.NewRunner()
	r.InstrPerCore = 60_000
	specs := workload.Specs()
	r.Subset = []workload.Spec{specs[4], specs[15], specs[29]} // lbm, xz, namd
	return r
}

func BenchmarkTab1SystemConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := exp.Tab1(16); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTab2Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := exp.Tab2(r); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig01WastedData(b *testing.B) {
	var waste map[int]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, waste = exp.Fig1(r)
	}
	b.ReportMetric(waste[4096]*100, "%wasted@4KB")
}

func BenchmarkFig02MotivationSweep(b *testing.B) {
	var vals map[string][3]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig2(r)
	}
	b.ReportMetric(vals["IDEAL-256"][2], "geomean-ideal256")
}

func BenchmarkFig11DesignSpace(b *testing.B) {
	var vals map[string]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig11(r)
	}
	b.ReportMetric(vals["64MB-2KB-256B"], "geomean-bestpoint")
}

func benchFig12(b *testing.B, ratio int) {
	var vals map[string][]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig12(r, ratio)
	}
	b.ReportMetric(vals["HYBRID2"][3], "geomean-hybrid2")
}

func BenchmarkFig12aSpeedup1GB(b *testing.B) { benchFig12(b, 1) }
func BenchmarkFig12bSpeedup2GB(b *testing.B) { benchFig12(b, 2) }
func BenchmarkFig12cSpeedup4GB(b *testing.B) { benchFig12(b, 4) }

func BenchmarkFig13PerBenchmark(b *testing.B) {
	var vals map[string]map[string]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig13(r)
	}
	b.ReportMetric(vals["lbm"]["HYBRID2"], "lbm-hybrid2-speedup")
}

func BenchmarkFig14Breakdown(b *testing.B) {
	var vals map[string]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig14(r)
	}
	b.ReportMetric(vals["HYBRID2"], "geomean-hybrid2")
}

func BenchmarkFig15NMServed(b *testing.B) {
	var vals map[string][]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig15(r)
	}
	b.ReportMetric(vals["HYBRID2"][3]*100, "%servedNM-hybrid2")
}

func BenchmarkFig16FMTraffic(b *testing.B) {
	var vals map[string][]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig16(r)
	}
	b.ReportMetric(vals["HYBRID2"][3], "fm-traffic-hybrid2")
}

func BenchmarkFig17NMTraffic(b *testing.B) {
	var vals map[string][]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig17(r)
	}
	b.ReportMetric(vals["HYBRID2"][3], "nm-traffic-hybrid2")
}

func BenchmarkFig18Energy(b *testing.B) {
	var vals map[string][]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Fig18(r)
	}
	b.ReportMetric(vals["HYBRID2"][3], "energy-hybrid2")
}

// sweepBenchRunner returns a fresh runner for the serial-vs-parallel
// comparison: a Fig. 2-style multi-design sweep over six workloads. The
// per-iteration seed defeats memoization across b.N iterations.
func sweepBenchRunner(parallelism int, seed uint64) *exp.Runner {
	r := exp.NewRunner()
	r.InstrPerCore = 60_000
	specs := workload.Specs()
	r.Subset = []workload.Spec{specs[0], specs[4], specs[11], specs[15], specs[22], specs[29]}
	r.Parallelism = parallelism
	r.Seed = seed
	return r
}

func benchmarkFig2Sweep(b *testing.B, parallelism int) {
	for i := 0; i < b.N; i++ {
		r := sweepBenchRunner(parallelism, uint64(i+1))
		if t, _ := exp.Fig2(r); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSweepSerial and BenchmarkSweepParallel regenerate the same
// Figure 2 sweep with one worker and with all CPUs; comparing their
// wall-clock times measures the parallel engine's speedup.
func BenchmarkSweepSerial(b *testing.B)   { benchmarkFig2Sweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkFig2Sweep(b, 0) }

// BenchmarkDistributedSweep pushes the same multi-design sweep through
// the distributed execution plane in loopback mode — sharding, bounded
// in-flight dispatch, work-stealing and index-ordered merge, minus the
// network — with one single-threaded runner versus four. Comparing the
// two subbenchmarks measures the plane's scaling on multi-core hosts;
// on a single CPU they degenerate to the same wall clock plus dispatch
// overhead. The per-iteration seed defeats result memoization.
func BenchmarkDistributedSweep(b *testing.B) {
	designs := []string{"Baseline", "MPOD", "DFC-256", "HYBRID2"}
	workloads := []string{"cg.D", "lbm", "bwaves", "xz", "fotonik3d", "namd"}
	var runs []cluster.Run
	for _, d := range designs {
		for _, w := range workloads {
			runs = append(runs, cluster.Run{Design: d, Workload: w, Ratio16: 1})
		}
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("runners=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.NewCoordinator(cluster.CoordinatorOptions{ShardSize: 2, MaxInFlight: 1})
				c.AttachLoopback(n, 1)
				cfg := cluster.Config{Scale: 16, InstrPerCore: 60_000, Seed: uint64(i + 1)}
				outs, err := c.Run(context.Background(), cfg, runs, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range outs {
					if o.Err != "" {
						b.Fatal(o.Err)
					}
				}
			}
		})
	}
}

// BenchmarkStoreWarmSweep measures the tiered result store's payoff on
// a repeated sweep. The cold sub-benchmark simulates every run of a
// Fig. 2-style sweep into a disk-backed store (per-iteration seeds keep
// it cold); the warm-disk sub-benchmark resolves the identical sweep
// through a fresh runner — empty memo, so every result comes from the
// store's disk tier — and asserts that not a single simulation ran.
// Comparing the two is the store's speedup on repeated work.
func BenchmarkStoreWarmSweep(b *testing.B) {
	bench := func(warm bool) func(b *testing.B) {
		return func(b *testing.B) {
			st, err := store.Open(store.Options{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			if warm {
				r := sweepBenchRunner(1, 1)
				r.Store = st
				if t, _ := exp.Fig2(r); len(t.Rows) == 0 {
					b.Fatal("empty table")
				}
				b.ResetTimer()
			}
			var sims obs.Counter
			for i := 0; i < b.N; i++ {
				seed := uint64(i + 2)
				if warm {
					seed = 1
				}
				r := sweepBenchRunner(1, seed)
				r.Store = st
				r.SimCounter = &sims
				if t, _ := exp.Fig2(r); len(t.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
			if warm && sims.Value() != 0 {
				b.Fatalf("warm sweep executed %d simulations, want 0", sims.Value())
			}
		}
	}
	b.Run("cold", bench(false))
	b.Run("warm-disk", bench(true))
}

// BenchmarkRunAllParallel exercises the public sweep API end to end.
func BenchmarkRunAllParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 60_000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := RunAll(cfg, SweepOptions{Workloads: []string{"cg.D", "lbm", "xz", "namd"}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 4*len(Designs()) {
			b.Fatalf("got %d results", len(res))
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-clock second on the full Hybrid2 stack.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workload.ByName("lbm")
	r := exp.NewRunner()
	r.InstrPerCore = 125_000
	for i := 0; i < b.N; i++ {
		r.Seed = uint64(i + 1) // defeat memoization
		res := r.Result(spec, "HYBRID2", 1)
		b.SetBytes(int64(res.Instructions))
	}
}

// BenchmarkAblations regenerates the design-choice sensitivity table.
func BenchmarkAblations(b *testing.B) {
	var vals map[string]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.Ablations(r)
	}
	b.ReportMetric(vals["HYBRID2"], "geomean-reference")
}

// BenchmarkExtrasRelatedWork regenerates the CAMEO/ALLOY/FOOTPRINT table.
func BenchmarkExtrasRelatedWork(b *testing.B) {
	var vals map[string][3]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.ExtrasTable(r)
	}
	b.ReportMetric(vals["FOOTPRINT"][2], "geomean-footprint")
}

// BenchmarkSeedSensitivity regenerates the multi-seed confidence table.
func BenchmarkSeedSensitivity(b *testing.B) {
	var vals map[string][3]float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, vals = exp.SeedSensitivity(r, []uint64{1, 2})
	}
	b.ReportMetric(vals["HYBRID2"][1], "mean-hybrid2")
}
