// Command traceconv converts memory traces between the text and binary
// encodings of internal/trace, optionally gzip-compressing, and reports
// record and byte statistics — the middle stage of the
// tracegen | traceconv | hybrid2sim pipeline. Input encoding and
// compression are auto-detected; records stream straight from decoder to
// encoder, so conversion runs in constant memory at any trace size.
//
// Usage:
//
//	traceconv -format binary -gz -o mcf.htb.gz mcf.trace
//	tracegen -workload mcf | traceconv -format binary > mcf.htb
//	traceconv -stats mcf.htb.gz     # inspect without converting
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hybridmem/internal/config"
	"hybridmem/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

// countingReader and countingWriter meter raw (compressed) bytes at the
// file boundary, on the outside of any gzip layer.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

func run() error {
	format := flag.String("format", "binary", "output encoding: text or binary")
	gz := flag.Bool("gz", false, "gzip-compress the output")
	out := flag.String("o", "", "output file (default stdout)")
	statsOnly := flag.Bool("stats", false, "decode and report statistics without writing a converted trace")
	flag.Parse()
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", flag.NArg())
	}
	if *statsOnly {
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "format", "gz", "o":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-stats writes no trace and conflicts with %s", strings.Join(conflict, " "))
		}
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	outFormat, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}

	cr := &countingReader{r: in}
	dec, err := trace.NewDecoder(cr, config.Cores)
	if err != nil {
		return err
	}

	var sw *trace.StreamWriter
	var cw *countingWriter
	var file *os.File
	if !*statsOnly {
		w := io.Writer(os.Stdout)
		if *out != "" {
			file, err = os.Create(*out)
			if err != nil {
				return err
			}
			defer file.Close()
			w = file
		}
		cw = &countingWriter{w: w}
		sw = trace.NewStreamWriter(cw, outFormat, *gz)
	}

	var perCore [config.Cores]uint64
	var writes uint64
	for {
		core, rec, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		perCore[core]++
		if rec.Write {
			writes++
		}
		if sw != nil {
			if err := sw.Append(core, rec); err != nil {
				return err
			}
		}
	}
	if sw != nil {
		if err := sw.Close(); err != nil {
			return err
		}
		if file != nil {
			if err := file.Close(); err != nil {
				return err
			}
		}
	}

	records := dec.Records()
	compressed := ""
	if dec.Compressed() {
		compressed = "+gzip"
	}
	fmt.Fprintf(os.Stderr, "traceconv: %s: %d records (%d writes), %s%s, %d bytes in",
		name, records, writes, dec.Format(), compressed, cr.n)
	if cw != nil {
		outCompressed := ""
		if *gz {
			outCompressed = "+gzip"
		}
		ratio := 0.0
		if cw.n > 0 {
			ratio = float64(cr.n) / float64(cw.n)
		}
		fmt.Fprintf(os.Stderr, " -> %s%s, %d bytes out (%.2fx)", outFormat, outCompressed, cw.n, ratio)
	}
	fmt.Fprintln(os.Stderr)
	for core, n := range perCore {
		if n > 0 {
			fmt.Fprintf(os.Stderr, "traceconv:   core %d: %d records\n", core, n)
		}
	}
	return nil
}
