// Package chameleon implements the Chameleon reconfigurable hybrid memory
// (Kotra et al., MICRO'18) as evaluated in the Hybrid2 paper: a PoM-style
// congruence-group organization with competing counters deciding swaps
// within each group (K = 14 for the evaluated memory configuration), plus
// a cache-mode slice of NM equal to the capacity Hybrid2 spends on its
// DRAM cache (§5: "we allow the same NM capacity our design uses as a
// DRAM cache to be used in Chameleon's cache mode").
//
// Simplifications, documented per DESIGN.md: the cache-mode slice is a
// direct-mapped 256 B-line cache serving FM-resident sectors; stale cache
// lines of a just-migrated sector age out naturally (the simulator models
// timing and traffic, not data contents). The OS/ISA cooperation of
// Chameleon (ISA-Alloc/ISA-Free) is outside the scope of the paper's
// comparison and is not modelled, as in the paper.
package chameleon

import (
	"hybridmem/internal/config"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes Chameleon.
type Config struct {
	SectorBytes       int
	NMBytes, FMBytes  uint64
	CacheBytes        uint64 // cache-mode slice (Hybrid2's DRAM-cache size)
	CacheLineBytes    int
	Threshold         int // competing-counter swap threshold (paper: K=14)
	RemapCacheEntries int
	Seed              uint64
}

// Default returns the paper's Chameleon configuration.
func Default(nmBytes, fmBytes, cacheBytes uint64, remapEntries int, seed uint64) Config {
	return Config{
		SectorBytes: config.SectorBytes,
		NMBytes:     nmBytes,
		FMBytes:     fmBytes,
		CacheBytes:  cacheBytes,
		// Chameleon manages NM at PoM's 2 KB segment granularity, so its
		// cache-mode slice fills whole segments.
		CacheLineBytes:    config.SectorBytes,
		Threshold:         14,
		RemapCacheEntries: remapEntries,
		Seed:              seed,
	}
}

// installThreshold is the reuse count a segment needs before the cache
// slice installs it (full-segment fill).
const installThreshold = 2

// segCache is the cache-mode slice: a fully associative sector cache over
// the reserved NM region. Full associativity comes for free from the
// design's remap indirection; slots are recycled FIFO. Segments are only
// installed after showing reuse (installThreshold touches), so one-pass
// streams never earn a fill.
type segCache struct {
	slots   []uint64 // slot -> installed segment+1 (0 free)
	dirty   []bool
	where   map[uint64]int   // segment -> slot
	touches map[uint64]uint8 // reuse filter (bounded, cleared when full)
	fifo    int
}

func newSegCache(slots int) *segCache {
	return &segCache{
		slots:   make([]uint64, slots),
		dirty:   make([]bool, slots),
		where:   make(map[uint64]int, slots),
		touches: make(map[uint64]uint8, 4096),
	}
}

// Chameleon implements memtypes.MemorySystem.
type Chameleon struct {
	cfg   Config
	nm    *memsys.Device
	fm    *memsys.Device
	stats memtypes.MemStats

	groups   uint32  // one NM slot per group
	k        uint32  // FM members per group
	pinned   uint32  // logical sectors permanently in FM (remainder)
	slots    []uint8 // member slot per (group, member): 0 = NM, else FM slot g*k+(v-1)
	occupant []uint8 // member index currently in NM
	cand     []uint8
	ctr      []int16
	lastSeg  uint32 // globally last-accessed sector (episode counting)
	// swapCredit paces swaps by demand: each FM demand access earns one
	// credit; a 2 KB swap costs 64 (it moves 64 accesses worth of FM
	// bytes each way). This keeps swap traffic bounded by demand traffic.
	swapCredit int

	rc        *remapCache
	cache     *segCache
	cacheBase memtypes.Addr

	// Address scrambling (OS page-allocation randomness): an LCG-based
	// cycle-walking permutation over the logical sector space, so
	// contiguous application footprints spread uniformly over the
	// congruence groups and their members.
	permPow2 uint32
	permMul  uint32
	permAdd  uint32
}

type remapCache struct {
	tags  []uint64
	lru   []uint64
	sets  int
	assoc int
	clock uint64
}

func newRemapCache(entries, assoc int) *remapCache {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("chameleon: remap cache sets must be a positive power of two")
	}
	return &remapCache{tags: make([]uint64, entries), lru: make([]uint64, entries), sets: sets, assoc: assoc}
}

func (r *remapCache) lookup(logical uint32) bool {
	r.clock++
	set := int(logical) % r.sets
	base := set * r.assoc
	victim := base
	key := uint64(logical) + 1
	for i := base; i < base+r.assoc; i++ {
		if r.tags[i] == key {
			r.lru[i] = r.clock
			return true
		}
		if r.tags[victim] == 0 {
			continue
		}
		if r.tags[i] == 0 || r.lru[i] < r.lru[victim] {
			victim = i
		}
	}
	r.tags[victim] = key
	r.lru[victim] = r.clock
	return false
}

// PoM returns the configuration of Chameleon's base design, Part-of-
// Memory (Sim et al., MICRO'14, [7] in the paper): the same congruence
// groups and competing counters with no cache-mode slice.
func PoM(nmBytes, fmBytes uint64, remapEntries int, seed uint64) Config {
	cfg := Default(nmBytes, fmBytes, 0, remapEntries, seed)
	return cfg
}

// New builds Chameleon over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *Chameleon {
	flatNM := uint32((cfg.NMBytes - cfg.CacheBytes) / uint64(cfg.SectorBytes))
	fmSec := uint32(cfg.FMBytes / uint64(cfg.SectorBytes))
	if flatNM == 0 {
		panic("chameleon: no flat NM capacity")
	}
	k := fmSec / flatNM
	if k == 0 {
		k = 1
	}
	pinned := fmSec - flatNM*k
	c := &Chameleon{
		cfg:      cfg,
		nm:       nm,
		fm:       fm,
		groups:   flatNM,
		k:        k,
		pinned:   pinned,
		slots:    make([]uint8, uint64(flatNM)*uint64(k+1)),
		occupant: make([]uint8, flatNM),
		cand:     make([]uint8, flatNM),
		ctr:      make([]int16, flatNM),
		lastSeg:  ^uint32(0),
		rc:       newRemapCache(cfg.RemapCacheEntries, 16),

		cacheBase: memtypes.Addr(cfg.NMBytes - cfg.CacheBytes),
	}
	if slots := int(cfg.CacheBytes / uint64(cfg.CacheLineBytes)); slots > 0 {
		c.cache = newSegCache(slots)
	}
	for i := range c.cand {
		c.cand[i] = 255
	}
	p := uint32(1)
	for p < c.Sectors() {
		p <<= 1
	}
	c.permPow2 = p
	c.permMul = uint32(cfg.Seed)*8 + 5 // odd multiplier: bijective mod 2^k
	c.permAdd = uint32(cfg.Seed>>16) | 1
	// Initial placement: member 0 of each group in NM, member j (>0) in
	// FM slot g*k+(j-1).
	for g := uint32(0); g < flatNM; g++ {
		base := uint64(g) * uint64(k+1)
		c.slots[base] = 0
		for j := uint32(1); j <= k; j++ {
			c.slots[base+uint64(j)] = uint8(j)
		}
	}
	return c
}

// Name implements MemorySystem.
func (c *Chameleon) Name() string {
	if c.cache == nil {
		return "POM"
	}
	return "CHA"
}

// Stats implements MemorySystem.
func (c *Chameleon) Stats() *memtypes.MemStats { return &c.stats }

// Sectors returns the logical flat-space size in sectors.
func (c *Chameleon) Sectors() uint32 { return c.groups*(c.k+1) + c.pinned }

// scramble permutes the logical sector space (cycle-walking LCG): an
// affine map with odd multiplier is a bijection on [0, 2^k); values
// landing outside the sector range are walked until they fall inside.
func (c *Chameleon) scramble(logical uint32) uint32 {
	n := c.Sectors()
	x := logical
	for {
		x = (x*c.permMul + c.permAdd) & (c.permPow2 - 1)
		if x < n {
			return x
		}
	}
}

// locate returns whether logical is in NM and the device sector address.
// Callers pass already scrambled sector numbers.
func (c *Chameleon) locate(logical uint32) (inNM bool, addr memtypes.Addr) {
	grouped := c.groups * (c.k + 1)
	if logical >= grouped {
		// Pinned FM sector beyond the grouped region.
		slot := c.groups*c.k + (logical - grouped)
		return false, memtypes.Addr(slot) * memtypes.Addr(c.cfg.SectorBytes)
	}
	g := logical % c.groups
	j := logical / c.groups
	v := c.slots[uint64(g)*uint64(c.k+1)+uint64(j)]
	if v == 0 {
		return true, memtypes.Addr(g) * memtypes.Addr(c.cfg.SectorBytes)
	}
	slot := g*c.k + uint32(v-1)
	return false, memtypes.Addr(slot) * memtypes.Addr(c.cfg.SectorBytes)
}

// swap exchanges member j with the group's occupant, charging the full
// 2×sector movement plus remap metadata updates.
func (c *Chameleon) swap(now memtypes.Tick, g, j uint32) {
	base := uint64(g) * uint64(c.k+1)
	occ := uint32(c.occupant[g])
	sb := c.cfg.SectorBytes
	nmAddr := memtypes.Addr(g) * memtypes.Addr(sb)
	v := c.slots[base+uint64(j)]
	fmAddr := memtypes.Addr(g*c.k+uint32(v-1)) * memtypes.Addr(sb)

	tA := c.fm.AccessBG(now, fmAddr, sb, false)
	tB := c.nm.AccessBG(now, nmAddr, sb, false)
	end := tA
	if tB > end {
		end = tB
	}
	c.nm.AccessBG(end, nmAddr, sb, true)
	c.fm.AccessBG(end, fmAddr, sb, true)
	c.stats.FMReadBytes += uint64(sb)
	c.stats.NMReadBytes += uint64(sb)
	c.stats.NMWriteBytes += uint64(sb)
	c.stats.FMWriteBytes += uint64(sb)
	// Remap metadata update for the group, in NM.
	c.nm.AccessBG(end, c.cacheBase-memtypes.Addr(1+g%4096)*64, 64, true)
	c.stats.NMWriteBytes += 64
	c.stats.MetaNMBytes += 64
	c.stats.Migrations++

	c.slots[base+uint64(occ)] = v
	c.slots[base+uint64(j)] = 0
	c.occupant[g] = uint8(j)
}

// cacheAccess tries the cache-mode slice for an FM-resident access.
// repeat marks a continuing burst through the same sector (such touches
// do not count toward the install-reuse threshold).
// Returns the completion time and whether the access hit.
func (c *Chameleon) cacheAccess(now memtypes.Tick, addr memtypes.Addr, fmAddr memtypes.Addr, write, repeat bool) (memtypes.Tick, bool) {
	lb := c.cfg.CacheLineBytes
	seg := uint64(addr) / uint64(lb)
	off := memtypes.Addr(uint64(addr) % uint64(lb))
	sc := c.cache

	if slot, ok := sc.where[seg]; ok {
		slotAddr := c.cacheBase + memtypes.Addr(slot*lb)
		done := c.nm.Access(now, slotAddr+off, 64, write)
		if write {
			sc.dirty[slot] = true
			c.stats.NMWriteBytes += 64
		} else {
			c.stats.NMReadBytes += 64
		}
		return done, true
	}

	// Miss: serve from FM, track reuse, install on the threshold touch.
	done := c.fm.Access(now, fmAddr, 64, write)
	if write {
		c.stats.FMWriteBytes += 64
	} else {
		c.stats.FMReadBytes += 64
	}
	if len(sc.touches) >= 8192 {
		for k := range sc.touches {
			delete(sc.touches, k)
		}
	}
	if !repeat {
		sc.touches[seg]++
	}
	// Installs draw from the same demand-earned credit pool as swaps
	// (a 2 KB fill costs 32 demand accesses of FM bytes), so cache fills
	// cannot swamp demand traffic on low-spatial-locality workloads.
	if int(sc.touches[seg]) >= installThreshold && c.swapCredit >= 32 {
		c.swapCredit -= 32
		delete(sc.touches, seg)
		slot := sc.fifo
		sc.fifo = (sc.fifo + 1) % len(sc.slots)
		slotAddr := c.cacheBase + memtypes.Addr(slot*lb)
		if old := sc.slots[slot]; old != 0 {
			delete(sc.where, old-1)
			if sc.dirty[slot] {
				rd := c.nm.AccessBG(now, slotAddr, lb, false)
				c.fm.AccessBG(rd, memtypes.Addr(old-1)*memtypes.Addr(lb), lb, true)
				c.stats.NMReadBytes += uint64(lb)
				c.stats.FMWriteBytes += uint64(lb)
				c.stats.Evictions++
			}
		}
		segBase := fmAddr - fmAddr%memtypes.Addr(lb)
		rd := c.fm.AccessBG(now, segBase, lb, false)
		c.nm.AccessBG(rd, slotAddr, lb, true)
		c.stats.FMReadBytes += uint64(lb)
		c.stats.NMWriteBytes += uint64(lb)
		sc.slots[slot] = seg + 1
		sc.dirty[slot] = write
		sc.where[seg] = slot
	}
	return done, false
}

// Access implements MemorySystem.
func (c *Chameleon) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	c.stats.Requests++
	logical := uint32(uint64(addr) / uint64(c.cfg.SectorBytes))
	if logical >= c.Sectors() {
		logical %= c.Sectors()
	}
	logical = c.scramble(logical)
	offset := memtypes.Addr(uint64(addr) % uint64(c.cfg.SectorBytes))

	// Chameleon's remap metadata is per-group (a few bits per member), so
	// one remap-cache entry covers a whole congruence group.
	if g := logical % c.groups; !c.rc.lookup(g) {
		// Remap-table read in NM on the critical path, spread over the
		// metadata region like the real per-group table.
		now = c.nm.Access(now, c.cacheBase-memtypes.Addr(1+g%4096)*64, 64, false)
		c.stats.NMReadBytes += 64
		c.stats.MetaNMBytes += 64
	}

	inNM, secAddr := c.locate(logical)
	grouped := c.groups * (c.k + 1)
	repeat := logical == c.lastSeg
	c.lastSeg = logical

	// Competing-counter update and possible swap for grouped sectors.
	// Consecutive accesses to the same sector (a streaming burst through
	// a segment) count as one episode, so the counters measure segment
	// reuse rather than burst length.
	if logical < grouped && !repeat {
		g := logical % c.groups
		j := logical / c.groups
		if uint8(j) == c.occupant[g] {
			if c.ctr[g] > 0 {
				c.ctr[g]--
			}
		} else {
			switch {
			case c.cand[g] == uint8(j):
				c.ctr[g]++
			case c.ctr[g] <= 0:
				c.cand[g] = uint8(j)
				c.ctr[g] = 1
			default:
				c.ctr[g]--
			}
			if c.cand[g] == uint8(j) && int(c.ctr[g]) >= c.cfg.Threshold && c.swapCredit >= 64 {
				c.swapCredit -= 64
				c.swap(now, g, j)
				c.cand[g] = 255
				c.ctr[g] = 0
				inNM, secAddr = c.locate(logical)
			}
		}
	}

	if inNM {
		c.stats.ServedNM++
		done := c.nm.Access(now, secAddr+offset, 64, write)
		if write {
			c.stats.NMWriteBytes += 64
		} else {
			c.stats.NMReadBytes += 64
		}
		return done
	}

	// FM-resident: try the cache-mode slice first (PoM mode has none).
	if c.swapCredit < 64*64 {
		c.swapCredit++
	}
	if c.cache == nil {
		c.stats.ServedFM++
		done := c.fm.Access(now, secAddr+offset, 64, write)
		if write {
			c.stats.FMWriteBytes += 64
		} else {
			c.stats.FMReadBytes += 64
		}
		return done
	}
	done, hit := c.cacheAccess(now, addr, secAddr+offset, write, repeat)
	if hit {
		c.stats.ServedNM++
	} else {
		c.stats.ServedFM++
	}
	return done
}

// Finish implements MemorySystem (no deferred interval work).
func (c *Chameleon) Finish(memtypes.Tick) {}
