package telemetry

import (
	"testing"

	"hybridmem/internal/memtypes"
)

// BenchmarkTelemetryOverhead measures the per-record cost the sampler
// adds to the simulation loop: the nil-guarded disabled path (what
// every un-sampled run pays) and the enabled path including its share
// of boundary flushes. Both must be allocation-free — the disabled
// case is pinned at exactly 0 allocs/op in BENCH_trajectory.json, and
// the enabled case stays at 0 because the ring and window histogram
// are preallocated.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		var smp *Sampler
		var instr, next uint64
		if smp != nil {
			next = smp.WindowInstr()
		}
		var mem memtypes.MemStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Mirror of the run loop's per-record telemetry sequence.
			if smp != nil {
				smp.Latency(100)
				instr += 4
				if instr >= next {
					smp.Flush(instr, instr*2, instr/8, instr/16, &mem)
					w := smp.WindowInstr()
					next = instr - instr%w + w
				}
			}
		}
		_ = instr
	})
	b.Run("on", func(b *testing.B) {
		smp := New(Options{WindowInstr: 4096, MaxEpochs: 256})
		instr := uint64(0)
		next := smp.WindowInstr()
		mem := memtypes.MemStats{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if smp != nil {
				smp.Latency(100)
				instr += 4
				mem.Requests++
				mem.FMReadBytes += 64
				if instr >= next {
					smp.Flush(instr, instr*2, instr/8, instr/16, &mem)
					w := smp.WindowInstr()
					next = instr - instr%w + w
				}
			}
		}
	})
}
