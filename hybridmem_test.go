package hybridmem

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 100_000
	return cfg
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 30 {
		t.Fatalf("got %d workloads, want 30", len(ws))
	}
	if ws[0] != "cg.D" || ws[29] != "namd" {
		t.Fatalf("unexpected ordering: first=%s last=%s", ws[0], ws[29])
	}
}

func TestDesignsList(t *testing.T) {
	ds := Designs()
	if len(ds) != 7 || ds[0] != "Baseline" || ds[6] != "HYBRID2" {
		t.Fatalf("designs = %v", ds)
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run("HYBRID2", "lbm", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Requests == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.ServedNMFrac <= 0 || res.ServedNMFrac > 1 {
		t.Fatalf("served fraction %f out of range", res.ServedNMFrac)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run("HYBRID2", "gcc", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("HYBRID2", "gcc", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("HYBRID2", "nosuch", quickCfg()); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run("NOSUCHDESIGN", "lbm", quickCfg()); err == nil {
		t.Fatal("unknown design accepted")
	}
	bad := quickCfg()
	bad.Scale = 0
	if _, err := Run("HYBRID2", "lbm", bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }, "Scale"},
		{"negative scale", func(c *Config) { c.Scale = -3 }, "Scale"},
		{"ratio 0", func(c *Config) { c.NMRatio16 = 0 }, "NMRatio16"},
		{"ratio 3", func(c *Config) { c.NMRatio16 = 3 }, "NMRatio16"},
		{"ratio 8", func(c *Config) { c.NMRatio16 = 8 }, "NMRatio16"},
		{"zero instr", func(c *Config) { c.InstrPerCore = 0 }, "InstrPerCore"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the bad field %s", tc.name, err, tc.want)
		}
		// Every entry point rejects the same configurations up front.
		if _, rerr := Run("HYBRID2", "lbm", cfg); rerr == nil {
			t.Errorf("%s: Run accepted", tc.name)
		}
		if _, rerr := RunAll(cfg, SweepOptions{Designs: []string{"Baseline"}, Workloads: []string{"lbm"}}); rerr == nil {
			t.Errorf("%s: RunAll accepted", tc.name)
		}
		if _, rerr := ReplayTrace("HYBRID2", "t", strings.NewReader("0 1 40 R\n"), ReplayOptions{MLP: 2}, cfg); rerr == nil {
			t.Errorf("%s: ReplayTrace accepted", tc.name)
		}
	}
	// NMRatio16 2 and 4 are paper configurations and must stay valid.
	for _, ratio := range []int{2, 4} {
		cfg := DefaultConfig()
		cfg.NMRatio16 = ratio
		if err := cfg.Validate(); err != nil {
			t.Errorf("ratio %d rejected: %v", ratio, err)
		}
	}
}

func TestRunAllSweep(t *testing.T) {
	cfg := quickCfg()
	opts := SweepOptions{Workloads: []string{"lbm", "namd"}, Designs: []string{"Baseline", "HYBRID2"}}
	res, err := RunAll(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	// Design-major, workload-minor ordering.
	order := []struct{ d, w string }{
		{"Baseline", "lbm"}, {"Baseline", "namd"}, {"HYBRID2", "lbm"}, {"HYBRID2", "namd"},
	}
	for i, want := range order {
		if res[i].Design != want.d || res[i].Workload != want.w {
			t.Fatalf("slot %d = %s/%s, want %s/%s", i, res[i].Design, res[i].Workload, want.d, want.w)
		}
		if res[i].Cycles == 0 {
			t.Fatalf("slot %d empty: %+v", i, res[i])
		}
	}
	// The sweep must agree with individual Run calls at any parallelism.
	single, err := Run("HYBRID2", "lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res[2] != single {
		t.Fatalf("RunAll result differs from Run:\n%+v\n%+v", res[2], single)
	}
}

func TestRunAllErrors(t *testing.T) {
	if _, err := RunAll(quickCfg(), SweepOptions{Workloads: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := RunAll(quickCfg(), SweepOptions{Designs: []string{"NOSUCH"}, Workloads: []string{"lbm"}}); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := RunAll(Config{}, SweepOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSpeedupAboveBaselineForHighMPKI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 300_000
	s, err := Speedup("HYBRID2", "lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1.0 {
		t.Fatalf("HYBRID2 speedup on lbm = %.2f, expected > 1", s)
	}
}

func TestParameterizedDesignNames(t *testing.T) {
	for _, d := range []string{"IDEAL-256", "DFC-512", "H2-CacheOnly", "H2DSE-64-2-256"} {
		if _, err := Run(d, "xz", quickCfg()); err != nil {
			t.Fatalf("design %s rejected: %v", d, err)
		}
	}
}

func TestBaselineServesNothingFromNM(t *testing.T) {
	res, err := Run("Baseline", "mcf", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedNMFrac != 0 || res.NMTrafficBytes != 0 {
		t.Fatalf("baseline touched NM: %+v", res)
	}
}

func TestRunTracePublicAPI(t *testing.T) {
	trace := strings.NewReader("0 10 1000 R\n0 5 1040 W\n1 20 2000 R\n")
	res, err := RunTrace("HYBRID2", "unit", trace, 2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Cycles == 0 {
		t.Fatalf("empty trace result: %+v", res)
	}
	if res.Workload != "unit" || res.Design != "HYBRID2" {
		t.Fatalf("labels wrong: %+v", res)
	}
}

func TestReplayTraceGzip(t *testing.T) {
	// The same trace, plain and gzip-compressed, must produce identical
	// results — the encoding is transport, not semantics.
	const text = "0 10 1000 R\n1 5 2000 W\n0 7 1040 R\n"
	plain, err := ReplayTrace("HYBRID2", "t", strings.NewReader(text), ReplayOptions{MLP: 2}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	io.WriteString(gz, text)
	gz.Close()
	zipped, err := ReplayTrace("HYBRID2", "t", &buf, ReplayOptions{MLP: 2}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain != zipped {
		t.Fatalf("gzip replay differs:\n%+v\nvs\n%+v", plain, zipped)
	}
}

func TestReplayTraceWindowError(t *testing.T) {
	// A trace whose interleaving is more skewed than the lookahead
	// window must fail with a diagnostic, not buffer unboundedly.
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("7 1 1000 R\n")
	}
	_, err := ReplayTrace("Baseline", "skew", strings.NewReader(sb.String()), ReplayOptions{MLP: 2, Window: 4}, quickCfg())
	if err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("want window skew error, got %v", err)
	}
}

func TestRunTraceErrors(t *testing.T) {
	if _, err := RunTrace("HYBRID2", "x", strings.NewReader("bogus line"), 2, quickCfg()); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if _, err := RunTrace("NOSUCH", "x", strings.NewReader("0 1 40 R\n"), 2, quickCfg()); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestRunCustomWorkload(t *testing.T) {
	wl := Workload{
		Name: "custom", MultiThreaded: true, FootprintGB: 1.5,
		APKI: 20, HotFrac: 0.1, HotProb: 0.7, SeqRun: 8, WriteFrac: 0.3, Phases: 2,
	}
	res, err := RunCustom("HYBRID2", wl, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "custom" || res.Cycles == 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestRunCustomValidation(t *testing.T) {
	bad := Workload{Name: "x", APKI: 0, FootprintGB: 1}
	if _, err := RunCustom("HYBRID2", bad, quickCfg()); err == nil {
		t.Fatal("zero-APKI workload accepted")
	}
	bad = Workload{Name: "x", APKI: 10, FootprintGB: 0}
	if _, err := RunCustom("HYBRID2", bad, quickCfg()); err == nil {
		t.Fatal("zero-footprint workload accepted")
	}
}

func TestNMRatioImprovesHybrid2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 250_000
	s1, err := Speedup("HYBRID2", "sp.D", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NMRatio16 = 4
	s4, err := Speedup("HYBRID2", "sp.D", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s4 <= s1 {
		t.Fatalf("4x NM (%.2f) not better than 1x (%.2f) on a big-footprint workload", s4, s1)
	}
}
