package api

import (
	"testing"

	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
)

// fixture is a fully populated simulation result with easily recognized
// values, so every wire field's mapping and formatting is visible in the
// golden bytes below.
func fixture() sim.Result {
	return sim.Result{
		Workload:     "lbm",
		Design:       "HYBRID2",
		Cycles:       1000,
		Instructions: 4000,
		IPC:          4,
		MPKI:         12.5,
		Mem: memtypes.MemStats{
			Requests:     200,
			ServedNM:     150,
			ServedFM:     50,
			NMReadBytes:  4096,
			NMWriteBytes: 2048,
			FMReadBytes:  1024,
			FMWriteBytes: 512,
			MetaNMBytes:  256,
			Migrations:   3,
		},
		NMEnergyNJ: 1.5,
		FMEnergyNJ: 2.25,
	}
}

// TestGoldenRunSchema pins the exact bytes of the shared encoding: a
// failure here means the wire schema changed, which requires bumping
// SchemaVersion and updating every consumer deliberately.
func TestGoldenRunSchema(t *testing.T) {
	got, err := Encode(NewRun(fixture()))
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "schema": 1,
  "result": {
    "workload": "lbm",
    "design": "HYBRID2",
    "cycles": 1000,
    "instructions": 4000,
    "ipc": 4,
    "mpki": 12.5,
    "requests": 200,
    "served_nm_frac": 0.75,
    "nm_traffic_bytes": 6144,
    "fm_traffic_bytes": 1536,
    "meta_nm_bytes": 256,
    "migrations": 3,
    "energy_nj": 3.75
  }
}
`
	if string(got) != want {
		t.Errorf("run document schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenSweepSchema(t *testing.T) {
	base := fixture()
	base.Design = "Baseline"
	got, err := Encode(NewSweep([]sim.Result{base, fixture()}))
	if err != nil {
		t.Fatal(err)
	}
	const wantPrefix = `{
  "schema": 1,
  "results": [
    {
      "workload": "lbm",
      "design": "Baseline",`
	if len(got) < len(wantPrefix) || string(got[:len(wantPrefix)]) != wantPrefix {
		t.Errorf("sweep document prefix drifted:\ngot:\n%s\nwant prefix:\n%s", got, wantPrefix)
	}
}

func TestGoldenExploreSchema(t *testing.T) {
	doc := Explore{
		Schema: SchemaVersion,
		Frontier: []ExplorePoint{
			{Design: "H2DSE-64-2-256", Speedup: 1.25, CapacityMB: 64, TrafficGB: 0.5},
		},
		Evaluated: []ExplorePoint{
			{Design: "H2DSE-64-2-256", Speedup: 1.25, CapacityMB: 64, TrafficGB: 0.5},
			{Design: "DFC-0", Infeasible: true, Err: "bad line size"},
		},
		SpaceSize: 9,
		Batches:   2,
	}
	got, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "schema": 1,
  "frontier": [
    {
      "design": "H2DSE-64-2-256",
      "speedup": 1.25,
      "capacity_mb": 64,
      "traffic_gb": 0.5
    }
  ],
  "evaluated": [
    {
      "design": "H2DSE-64-2-256",
      "speedup": 1.25,
      "capacity_mb": 64,
      "traffic_gb": 0.5
    },
    {
      "design": "DFC-0",
      "speedup": 0,
      "capacity_mb": 0,
      "traffic_gb": 0,
      "infeasible": true,
      "error": "bad line size"
    }
  ],
  "space_size": 9,
  "batches": 2
}
`
	if string(got) != want {
		t.Errorf("explore document schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenTableSchema(t *testing.T) {
	got, err := Encode(Table{
		Schema: SchemaVersion,
		Title:  "Fig. 12: speedup",
		Header: []string{"design", "geomean"},
		Rows:   [][]string{{"HYBRID2", "1.23"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "schema": 1,
  "title": "Fig. 12: speedup",
  "header": [
    "design",
    "geomean"
  ],
  "rows": [
    [
      "HYBRID2",
      "1.23"
    ]
  ]
}
`
	if string(got) != want {
		t.Errorf("table document schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
