package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	a := Fingerprint("run", "a", "b")
	if a != Fingerprint("run", "a", "b") {
		t.Fatal("fingerprint is not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint length = %d, want 16", len(a))
	}
	// NUL separation: part boundaries must not alias.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("part boundaries alias")
	}
	if Fingerprint("run", "a") == Fingerprint("sweep", "a") {
		t.Fatal("kinds alias")
	}
}

func TestRunKeyCoversEveryKnob(t *testing.T) {
	base := RunKey("Hybrid2", "mix1", 2, 1, 1000, 1, false)
	variants := []string{
		RunKey("CacheNM", "mix1", 2, 1, 1000, 1, false),
		RunKey("Hybrid2", "mix2", 2, 1, 1000, 1, false),
		RunKey("Hybrid2", "mix1", 4, 1, 1000, 1, false),
		RunKey("Hybrid2", "mix1", 2, 2, 1000, 1, false),
		RunKey("Hybrid2", "mix1", 2, 1, 2000, 1, false),
		RunKey("Hybrid2", "mix1", 2, 1, 1000, 2, false),
		RunKey("Hybrid2", "mix1", 2, 1, 1000, 1, true),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides with another key", i)
		}
		seen[v] = true
	}
}

func TestLRUByteBoundAndOversized(t *testing.T) {
	c := NewLRU[[]byte](100, 100, func(b []byte) int64 { return int64(len(b)) })
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 30))
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("byte bound violated: %d bytes cached, bound 100", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	c.Put("huge", make([]byte, 200))
	if _, ok := c.Peek("huge"); ok {
		t.Fatal("entry larger than the byte bound was cached")
	}
}

func TestLRUEntryBoundEvictsOldest(t *testing.T) {
	c := NewLRU[int](2, 0, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recently used
	c.Put("c", 3)
	if _, ok := c.Peek("b"); ok {
		t.Fatal("least-recently-used entry was not evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("recently-used entry was evicted")
	}
}

func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	const callers = 8
	f := NewFlight[int]()
	var mu sync.Mutex
	calls := 0
	sharedCount := 0
	var entered atomic.Int32
	// The winner's fn holds the singleflight slot open until every
	// caller has announced itself and had a scheduling window to reach
	// Do, so all of them land on the same in-flight call.
	fn := func() (int, error) {
		for entered.Load() < callers {
			runtime.Gosched()
		}
		time.Sleep(25 * time.Millisecond)
		mu.Lock()
		calls++
		mu.Unlock()
		return 42, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			v, err, shared := f.Do("k", fn)
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			if shared {
				mu.Lock()
				sharedCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if sharedCount != callers-1 {
		t.Fatalf("shared reported by %d callers, want %d", sharedCount, callers-1)
	}
}

func TestStoreTieringAndPromotion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k1", []byte("hello"))
	if data, tier, ok := s.Get("k1"); !ok || tier != TierMem || string(data) != "hello" {
		t.Fatalf("Get after Put = %q, %v, %v; want mem hit", data, tier, ok)
	}

	// A second store on the same directory sees only the disk tier.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	data, tier, ok := s2.Get("k1")
	if !ok || tier != TierDisk || string(data) != "hello" {
		t.Fatalf("cross-instance Get = %q, %v, %v; want disk hit", data, tier, ok)
	}
	// Promotion: the disk hit is now in s2's memory tier.
	if _, tier, ok := s2.Get("k1"); !ok || tier != TierMem {
		t.Fatalf("promoted Get tier = %v, %v; want mem hit", tier, ok)
	}

	if _, _, ok := s2.Get("absent"); ok {
		t.Fatal("absent key reported found")
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.DiskMisses != 1 {
		t.Fatalf("disk hits/misses = %d/%d, want 1/1", st.DiskHits, st.DiskMisses)
	}
}

func TestStoreNilReceiver(t *testing.T) {
	var s *Store
	s.Put("k", []byte("v"))
	s.PutDisk("k", []byte("v"))
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("nil store reported a hit")
	}
	if _, ok := s.Peek("k"); ok {
		t.Fatal("nil store peeked a hit")
	}
	if _, ok := s.GetDisk("k"); ok {
		t.Fatal("nil store disk-hit")
	}
	if s.HasDisk() {
		t.Fatal("nil store has a disk tier")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func TestDiskGCUnderByteBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 300) // ~375 B per file with envelope
	for i := 0; i < 12; i++ {
		s.PutDisk(fmt.Sprintf("key%02d", i), payload)
	}
	st := s.Stats()
	if st.DiskBytes > 2048 {
		t.Fatalf("disk bytes %d exceed bound 2048", st.DiskBytes)
	}
	if st.DiskEvictions == 0 {
		t.Fatal("no GC evictions recorded despite overflow")
	}
	// The oldest entries are gone, the newest survive.
	if _, ok := s.GetDisk("key00"); ok {
		t.Fatal("oldest entry survived GC")
	}
	if _, ok := s.GetDisk("key11"); !ok {
		t.Fatal("newest entry was GC'd")
	}
	// On-disk reality matches the accounting.
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		info, err := e.Info()
		if err == nil && strings.HasSuffix(e.Name(), diskExt) {
			total += info.Size()
		}
	}
	if total > 2048 {
		t.Fatalf("on-disk bytes %d exceed bound 2048", total)
	}
}

func TestDiskGCSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 300)
	for i := 0; i < 12; i++ {
		s.PutDisk(fmt.Sprintf("key%02d", i), payload)
	}
	// Reopen with a bound: the startup scan must GC down to it.
	s2, err := Open(Options{Dir: dir, MaxBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskBytes > 1500 {
		t.Fatalf("disk bytes %d exceed bound 1500 after reopen", st.DiskBytes)
	}
	if _, ok := s2.GetDisk("key11"); !ok {
		t.Fatal("newest entry was GC'd at reopen")
	}
}

func TestDiskCorruptionDiscardedNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.PutDisk("trunc", []byte("some payload that will be truncated"))
	s.PutDisk("flip", []byte("some payload that will be bit-flipped"))
	s.PutDisk("good", []byte("untouched"))

	// Truncate one entry, flip a payload bit in another.
	truncPath := filepath.Join(dir, "trunc"+diskExt)
	raw, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	flipPath := filepath.Join(dir, "flip"+diskExt)
	raw, err = os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(flipPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"trunc", "flip"} {
		if _, ok := s.GetDisk(key); ok {
			t.Fatalf("corrupt entry %q was served", key)
		}
		if _, err := os.Stat(filepath.Join(dir, key+diskExt)); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry %q was not deleted (err=%v)", key, err)
		}
	}
	if data, ok := s.GetDisk("good"); !ok || string(data) != "untouched" {
		t.Fatalf("intact entry misread: %q, %v", data, ok)
	}
	st := s.Stats()
	if st.DiskCorrupt != 2 {
		t.Fatalf("corrupt discards = %d, want 2", st.DiskCorrupt)
	}
	// A re-Put after discard serves again.
	s.PutDisk("trunc", []byte("fresh"))
	if data, ok := s.GetDisk("trunc"); !ok || string(data) != "fresh" {
		t.Fatalf("re-put after discard = %q, %v", data, ok)
	}
}

func TestDiskConcurrentWritersOneDirectory(t *testing.T) {
	dir := t.TempDir()
	// Two independent store instances (as two processes would have) plus
	// goroutine concurrency within each.
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := s1
			if w%2 == 1 {
				s = s2
			}
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key%02d", i)
				val := []byte(fmt.Sprintf("value-%02d", i))
				s.PutDisk(key, val)
				if data, ok := s.GetDisk(key); ok && !bytes.Equal(data, val) {
					t.Errorf("writer %d read %q for %q", w, data, key)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key is readable and correct from both instances and from a
	// fresh scan.
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key%02d", i)
		want := fmt.Sprintf("value-%02d", i)
		for name, s := range map[string]*Store{"s1": s1, "s2": s2, "s3": s3} {
			if data, ok := s.GetDisk(key); !ok || string(data) != want {
				t.Fatalf("%s: GetDisk(%q) = %q, %v; want %q", name, key, data, ok, want)
			}
		}
	}
	if st := s3.Stats(); st.DiskEntries != keys {
		t.Fatalf("fresh scan found %d entries, want %d", st.DiskEntries, keys)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("v"))
	s2, _ := Open(Options{Dir: dir})
	if _, ok := s2.Peek("k"); !ok {
		t.Fatal("Peek missed a disk entry")
	}
	if _, ok := s2.Peek("absent"); ok {
		t.Fatal("Peek found an absent key")
	}
	st := s2.Stats()
	if st.MemHits != 0 || st.MemMisses != 0 || st.DiskHits != 0 || st.DiskMisses != 0 {
		t.Fatalf("Peek moved hit/miss counters: %+v", st)
	}
	// The disk peek still promoted into memory.
	if _, tier, ok := s2.Get("k"); !ok || tier != TierMem {
		t.Fatalf("Get after Peek = tier %v, %v; want mem hit", tier, ok)
	}
}
