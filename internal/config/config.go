// Package config centralizes the system configuration of Table 1 and the
// linear capacity scaling described in DESIGN.md §6: all capacities
// (LLC, NM, FM, Hybrid2's DRAM cache, workload footprints) divide by
// Scale while granularities (sectors, cache lines) and time constants
// (intervals, counter reset periods) stay at their paper values, which
// preserves every capacity ratio the policies depend on.
package config

import "fmt"

// Table 1 processor-side constants.
const (
	Cores      = 8
	IssueWidth = 4
	CPUFreqGHz = 3.2
	LLCLatency = 14 // cycles
	LLCAssoc   = 16
)

// Paper capacities (before scaling).
const (
	PaperLLCBytes    = 8 << 20  // 8 MB shared L3
	PaperFMBytes     = 16 << 30 // 16 GB DDR4
	PaperNM1GB       = 1 << 30
	PaperHybrid2DC   = 64 << 20 // Hybrid2's DRAM-cache slice of NM
	SectorBytes      = 2048     // migration/sector granularity
	Hybrid2LineBytes = 256      // Hybrid2 DRAM-cache line (best DSE point)
	XTAAssoc         = 16
)

// Paper time constants (CPU cycles). These scale with capacity (see
// System.IntervalCycles): the schemes' adaptation cadence is tied to how
// fast they can fill NM, and both NM and the simulated instruction streams
// shrink with the scale factor.
const (
	PaperIntervalCycles      = 160_000 // 50 µs at 3.2 GHz (MemPod, LGM)
	PaperFMBudgetResetCycles = 100_000 // Hybrid2 FM-access-counter reset (§3.7.3)
)

// DefaultScale is the default linear capacity divisor (DESIGN.md §6).
const DefaultScale = 16

// System is a fully resolved, scaled system configuration.
type System struct {
	Scale        int
	LLCBytes     int
	NMBytes      uint64 // total near memory
	FMBytes      uint64 // far memory
	InstrPerCore uint64 // per-core instruction budget
	Seed         uint64
	// NextLinePrefetch enables a simple next-line prefetcher at the LLC:
	// every demand miss also fills the following line (off by default;
	// the paper's configuration has no prefetcher and notes that
	// advanced prefetching is orthogonal to the proposed techniques).
	NextLinePrefetch bool
}

// ValidateRun checks the run-configuration invariants every entry point
// (the public API's Config.Validate, the serve layer's request
// validation) shares: a positive capacity scale, one of the paper's
// NM:FM ratios, and a non-zero instruction budget. Field names in the
// errors match the public hybridmem.Config fields.
func ValidateRun(scale, nmRatio16 int, instrPerCore uint64) error {
	if scale < 1 {
		return fmt.Errorf("Scale must be >= 1, got %d", scale)
	}
	switch nmRatio16 {
	case 1, 2, 4:
	default:
		return fmt.Errorf("NMRatio16 must be 1, 2 or 4 (the paper's NM:FM ratios), got %d", nmRatio16)
	}
	if instrPerCore == 0 {
		return fmt.Errorf("InstrPerCore must be > 0")
	}
	return nil
}

// Scaled returns the system at the given scale with nmRatio16 sixteenths
// of FM as NM (1, 2 or 4 in the paper: NM:FM of 1:16, 2:16, 4:16).
func Scaled(scale, nmRatio16 int) System {
	if scale < 1 {
		scale = 1
	}
	if nmRatio16 < 1 {
		nmRatio16 = 1
	}
	return System{
		Scale:        scale,
		LLCBytes:     PaperLLCBytes / scale,
		NMBytes:      uint64(nmRatio16) * PaperNM1GB / uint64(scale),
		FMBytes:      PaperFMBytes / uint64(scale),
		InstrPerCore: 1_000_000,
		Seed:         1,
	}
}

// IntervalCycles returns the scaled 50 µs interval of MemPod and LGM.
func (s System) IntervalCycles() uint64 {
	return PaperIntervalCycles / uint64(s.Scale)
}

// FMBudgetResetCycles returns Hybrid2's scaled budget-reset period.
func (s System) FMBudgetResetCycles() uint64 {
	return PaperFMBudgetResetCycles / uint64(s.Scale)
}

// Hybrid2CacheBytes returns the scaled size of Hybrid2's DRAM-cache slice.
func (s System) Hybrid2CacheBytes() uint64 {
	return PaperHybrid2DC / uint64(s.Scale)
}
