// Design catalog: enumerate every registered memory organization through
// hybridmem.AllDesigns — the same registry the engine and the CLIs use —
// and run each family's example design on one workload. Nothing here
// hard-codes a design list, so a newly registered organization shows up
// automatically.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	cfg := hybridmem.DefaultConfig()
	cfg.InstrPerCore = 100_000

	base, err := hybridmem.Run("Baseline", "mcf", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-38s %-9s %8s %9s\n", "design (grammar)", "kind", "speedup", "servedNM")
	for _, d := range hybridmem.AllDesigns() {
		if err := hybridmem.ValidateDesign(d.Example); err != nil {
			log.Fatal(err) // every registered example must parse
		}
		res, err := hybridmem.Run(d.Example, "mcf", cfg)
		if err != nil {
			log.Fatal(err)
		}
		sp := float64(base.Cycles) / float64(res.Cycles)
		fmt.Printf("%-38s %-9s %7.2fx %8.0f%%\n", d.Grammar, d.Kind, sp, res.ServedNMFrac*100)
	}
}
