package hybridmem

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestAllDesignsListing pins the shape of the public registry view: every
// family of the paper appears, in kind-major paper order, with grammar
// and example agreeing with the engine's accepted names.
func TestAllDesignsListing(t *testing.T) {
	all := AllDesigns()
	if len(all) < 15 {
		t.Fatalf("AllDesigns lists only %d families", len(all))
	}
	byName := map[string]DesignInfo{}
	for _, d := range all {
		byName[d.Name] = d
	}
	for _, want := range []string{"Baseline", "MPOD", "CHA", "LGM", "TAGLESS", "DFC",
		"HYBRID2", "CAMEO", "POM", "SILC-FM", "ALLOY", "FOOTPRINT", "BANSHEE",
		"IDEAL", "H2ABL", "H2DSE"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %s missing from AllDesigns", want)
		}
	}
	if all[0].Name != "Baseline" || all[0].Kind != "baseline" || all[0].NeedsNM {
		t.Fatalf("first entry is %+v, want the baseline", all[0])
	}
	for _, d := range all {
		if err := ValidateDesign(d.Example); err != nil {
			t.Errorf("%s: example %q invalid: %v", d.Name, d.Example, err)
		}
		if len(d.Params) == 0 && d.Grammar != d.Name {
			t.Errorf("%s: grammar %q without parameters", d.Name, d.Grammar)
		}
	}
	h2dse := byName["H2DSE"]
	if len(h2dse.Params) != 3 || h2dse.Grammar != "H2DSE-<cacheMB>-<sectorKB>-<lineB>" {
		t.Fatalf("H2DSE introspection broken: %+v", h2dse)
	}
}

// TestReadmeDesignTableInSync pins the README's Designs table to the
// registry: every row `cmd/experiments -designs` would print (the row
// format here mirrors its printDesignTable) must appear verbatim in
// README.md. Regenerate the section with `go run ./cmd/experiments
// -designs` when this fails.
func TestReadmeDesignTableInSync(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range AllDesigns() {
		doc := d.Doc
		if len(d.Params) > 0 {
			doc += fmt.Sprintf(" (e.g. `%s`)", d.Example)
		}
		row := fmt.Sprintf("| `%s` | %s | %s |", d.Grammar, d.Kind, doc)
		if !strings.Contains(string(readme), row) {
			t.Errorf("README design table is stale; missing row:\n%s", row)
		}
	}
}

// TestValidateDesign pins parse-time validation through the public API.
func TestValidateDesign(t *testing.T) {
	for _, good := range []string{"Baseline", "HYBRID2", "DFC-512", "H2DSE-64-2-256"} {
		if err := ValidateDesign(good); err != nil {
			t.Errorf("ValidateDesign(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"BOGUS", "DFC-0", "IDEAL--3", "H2DSE-0-0-0"} {
		if err := ValidateDesign(bad); err == nil {
			t.Errorf("ValidateDesign(%q) accepted", bad)
		}
	}
}

// TestRunRejectsMalformedParamsEarly pins that Run reports malformed
// parameters as parse errors.
func TestRunRejectsMalformedParamsEarly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 1_000
	for _, bad := range []string{"DFC-0", "H2DSE-0-0-0", "H2ABL-bogus-9"} {
		if _, err := Run(bad, "lbm", cfg); err == nil {
			t.Errorf("Run(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "design:") {
			t.Errorf("Run(%q) error %q did not come from the parser", bad, err)
		}
	}
}

// TestRunAllRejectsMalformedDesignUpfront pins that RunAll validates the
// whole design list before launching any simulation.
func TestRunAllRejectsMalformedDesignUpfront(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 1_000
	_, err := RunAll(cfg, SweepOptions{
		Designs:   []string{"Baseline", "DFC-0"},
		Workloads: []string{"lbm"},
	})
	if err == nil {
		t.Fatal("RunAll accepted a malformed design")
	}
	if !strings.Contains(err.Error(), "design:") {
		t.Fatalf("error %q did not come from the parser", err)
	}
}

// TestRunTraceEmptyTracePublic pins the empty-trace error through the
// public API.
func TestRunTraceEmptyTracePublic(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := RunTrace("HYBRID2", "empty", strings.NewReader("  \n# nothing\n"), 2, cfg); err == nil {
		t.Fatal("empty trace accepted")
	}
}
