package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"hybridmem/internal/memtypes"
)

// Format selects a trace encoding (see the package docs for both specs).
type Format int

const (
	// FormatText is the line-oriented text format.
	FormatText Format = iota
	// FormatBinary is the varint-encoded binary format.
	FormatBinary
)

// String returns the -format flag spelling of f.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, errorf("unknown format %q (want text or binary)", s)
}

// binaryMagic opens every binary trace: "HMT" plus the format version.
var binaryMagic = []byte{'H', 'M', 'T', 1}

// DefaultWindow is the default per-core lookahead of a StreamReader, in
// records. At 24 bytes per record it bounds the reader's buffering to
// ~1.5 MB per core regardless of trace size.
const DefaultWindow = 1 << 16

// Decoder reads one trace record at a time in the file's global order,
// auto-detecting gzip compression and the text vs binary encoding from
// the stream's first bytes. It buffers only bufio-sized chunks of input:
// decoding is constant-memory.
type Decoder struct {
	br         *bufio.Reader
	format     Format
	compressed bool
	maxCores   int
	line       int    // text only: current line for error positions
	n          uint64 // records decoded so far
}

// NewDecoder sniffs r and returns a decoder for its format. Traces may
// hold records of cores 0..maxCores-1.
func NewDecoder(r io.Reader, maxCores int) (*Decoder, error) {
	if maxCores < 1 {
		return nil, errorf("maxCores must be >= 1, got %d", maxCores)
	}
	d := &Decoder{br: bufio.NewReaderSize(r, 1<<16), maxCores: maxCores}
	if hdr, _ := d.br.Peek(2); len(hdr) == 2 && hdr[0] == 0x1f && hdr[1] == 0x8b {
		gz, err := gzip.NewReader(d.br)
		if err != nil {
			return nil, errorf("gzip: %w", err)
		}
		d.compressed = true
		d.br = bufio.NewReaderSize(gz, 1<<16)
	}
	hdr, _ := d.br.Peek(len(binaryMagic))
	if bytes.Equal(hdr, binaryMagic) {
		d.br.Discard(len(binaryMagic))
		d.format = FormatBinary
	} else if len(hdr) == len(binaryMagic) && bytes.Equal(hdr[:3], binaryMagic[:3]) {
		return nil, errorf("unsupported binary trace version %d (this build reads version %d)", hdr[3], binaryMagic[3])
	}
	return d, nil
}

// Format reports the detected encoding.
func (d *Decoder) Format() Format { return d.format }

// Compressed reports whether the input was gzip-compressed.
func (d *Decoder) Compressed() bool { return d.compressed }

// Records returns how many records have been decoded so far.
func (d *Decoder) Records() uint64 { return d.n }

// Decode returns the next record and its issuing core. It returns io.EOF
// at a clean end of trace and a positioned error (line or record number)
// on malformed input, including a truncated final binary record.
func (d *Decoder) Decode() (core int, rec Record, err error) {
	if d.format == FormatBinary {
		return d.decodeBinary()
	}
	return d.decodeText()
}

func (d *Decoder) decodeBinary() (int, Record, error) {
	hdr, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		return 0, Record{}, io.EOF
	}
	if err != nil {
		return 0, Record{}, errorf("record %d: %w", d.n+1, err)
	}
	// Range-check before the int conversion: a corrupt header varint
	// must be a positioned error on every platform, not a 32-bit
	// truncation that mis-attributes the record or indexes out of range.
	if hdr>>1 >= uint64(d.maxCores) {
		return 0, Record{}, errorf("record %d: core %d out of range [0,%d)", d.n+1, hdr>>1, d.maxCores)
	}
	core := int(hdr >> 1)
	gap, err := d.readField()
	if err != nil {
		return 0, Record{}, err
	}
	addr, err := d.readField()
	if err != nil {
		return 0, Record{}, err
	}
	d.n++
	return core, Record{Gap: gap, Addr: memtypes.Addr(addr), Write: hdr&1 == 1}, nil
}

// readField reads one non-leading varint of a binary record, where EOF
// means the record was cut short.
func (d *Decoder) readField() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		return 0, errorf("record %d: truncated: %w", d.n+1, err)
	}
	return v, nil
}

func (d *Decoder) decodeText() (int, Record, error) {
	for {
		line, err := d.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// A valid record line is tens of bytes; anything outgrowing
			// bufio's 64 KB buffer is garbage input (e.g. a newline-free
			// blob misdetected as text) that must fail fast instead of
			// being buffered in full — the decoder's memory stays
			// bounded on arbitrary inputs.
			return 0, Record{}, errorf("line %d: longer than %d bytes", d.line+1, d.br.Size())
		}
		if err != nil && err != io.EOF {
			// A transport failure (e.g. a corrupt gzip stream) must
			// surface as itself, not as a parse error on the fragment
			// read so far.
			return 0, Record{}, errorf("%w", err)
		}
		if len(line) == 0 && err == io.EOF {
			return 0, Record{}, io.EOF
		}
		d.line++
		s := trimSpaceBytes(line)
		if len(s) == 0 || s[0] == '#' {
			if err == io.EOF {
				return 0, Record{}, io.EOF
			}
			continue
		}
		core, rec, perr := d.parseLine(s)
		if perr != nil {
			return 0, Record{}, perr
		}
		d.n++
		return core, rec, nil
	}
}

// parseLine parses one non-comment trace line in place. It works on the
// bufio-owned byte slice without converting to string, so steady-state
// text decoding is allocation-free.
func (d *Decoder) parseLine(s []byte) (int, Record, error) {
	var f [4][]byte
	nf := 0
	for rest := s; ; {
		field, r := nextField(rest)
		if len(field) == 0 {
			break
		}
		if nf == len(f) {
			return 0, Record{}, errorf("line %d: want 4 fields, got %d", d.line, countFields(s))
		}
		f[nf] = field
		nf++
		rest = r
	}
	if nf != 4 {
		return 0, Record{}, errorf("line %d: want 4 fields, got %d", d.line, nf)
	}
	cv, ok := parseDecimal(trimPlus(f[0]))
	if !ok || cv >= uint64(d.maxCores) {
		return 0, Record{}, errorf("line %d: bad core %q", d.line, f[0])
	}
	core := int(cv)
	gap, ok := parseDecimal(f[1])
	if !ok {
		return 0, Record{}, errorf("line %d: bad gap %q", d.line, f[1])
	}
	addr, ok := parseHex(f[2])
	if !ok {
		return 0, Record{}, errorf("line %d: bad address %q", d.line, f[2])
	}
	var write bool
	if len(f[3]) != 1 {
		return 0, Record{}, errorf("line %d: bad access type %q", d.line, f[3])
	}
	switch f[3][0] {
	case 'R', 'r':
		write = false
	case 'W', 'w':
		write = true
	default:
		return 0, Record{}, errorf("line %d: bad access type %q", d.line, f[3])
	}
	return core, Record{Gap: gap, Addr: memtypes.Addr(addr), Write: write}, nil
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

func trimSpaceBytes(s []byte) []byte {
	for len(s) > 0 && isSpaceByte(s[0]) {
		s = s[1:]
	}
	for len(s) > 0 && isSpaceByte(s[len(s)-1]) {
		s = s[:len(s)-1]
	}
	return s
}

// nextField skips leading spaces and returns the next space-delimited
// field and the remainder of s after it.
func nextField(s []byte) (field, rest []byte) {
	i := 0
	for i < len(s) && isSpaceByte(s[i]) {
		i++
	}
	j := i
	for j < len(s) && !isSpaceByte(s[j]) {
		j++
	}
	return s[i:j], s[j:]
}

func countFields(s []byte) int {
	n := 0
	for {
		var field []byte
		field, s = nextField(s)
		if len(field) == 0 {
			return n
		}
		n++
	}
}

// trimPlus drops one leading '+' so the core field accepts the same
// explicitly-signed spellings strconv.Atoi did.
func trimPlus(b []byte) []byte {
	if len(b) > 1 && b[0] == '+' {
		return b[1:]
	}
	return b
}

func parseDecimal(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func parseHex(b []byte) (uint64, bool) {
	if len(b) >= 2 && b[0] == '0' && b[1] == 'x' {
		b = b[2:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if v > ^uint64(0)>>4 {
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// StreamWriter encodes records one at a time, so producers (tracegen,
// traceconv) emit arbitrarily long traces in constant memory. Errors are
// sticky: the first failure is returned by every later call including
// Close.
type StreamWriter struct {
	bw     *bufio.Writer
	gz     *gzip.Writer
	format Format
	n      uint64
	buf    []byte
	err    error
}

// NewStreamWriter returns a writer emitting format to w, gzip-compressed
// when compress is set. Binary traces open with the format's magic
// header. Close must be called to flush buffered output (and terminate
// the gzip stream); the underlying writer is not closed.
func NewStreamWriter(w io.Writer, format Format, compress bool) *StreamWriter {
	sw := &StreamWriter{format: format}
	if compress {
		sw.gz = gzip.NewWriter(w)
		sw.bw = bufio.NewWriterSize(sw.gz, 1<<16)
	} else {
		sw.bw = bufio.NewWriterSize(w, 1<<16)
	}
	if format == FormatBinary {
		_, sw.err = sw.bw.Write(binaryMagic)
	}
	return sw
}

// Comment writes a '#' comment line into a text trace. Binary traces
// carry no comments; the call is a no-op there.
func (sw *StreamWriter) Comment(s string) error {
	if sw.err != nil || sw.format != FormatText {
		return sw.err
	}
	_, sw.err = fmt.Fprintf(sw.bw, "# %s\n", s)
	return sw.err
}

// Append encodes one record of one core.
func (sw *StreamWriter) Append(core int, r Record) error {
	if sw.err != nil {
		return sw.err
	}
	if core < 0 {
		sw.err = errorf("negative core %d", core)
		return sw.err
	}
	if sw.format == FormatBinary {
		hdr := uint64(core) << 1
		if r.Write {
			hdr |= 1
		}
		sw.buf = binary.AppendUvarint(sw.buf[:0], hdr)
		sw.buf = binary.AppendUvarint(sw.buf, r.Gap)
		sw.buf = binary.AppendUvarint(sw.buf, uint64(r.Addr))
		_, sw.err = sw.bw.Write(sw.buf)
	} else {
		rw := byte('R')
		if r.Write {
			rw = 'W'
		}
		_, sw.err = fmt.Fprintf(sw.bw, "%d %d %x %c\n", core, r.Gap, uint64(r.Addr), rw)
	}
	if sw.err == nil {
		sw.n++
	}
	return sw.err
}

// Records returns how many records have been appended.
func (sw *StreamWriter) Records() uint64 { return sw.n }

// Close flushes buffered output and terminates the gzip stream, if any.
func (sw *StreamWriter) Close() error {
	if ferr := sw.bw.Flush(); sw.err == nil {
		sw.err = ferr
	}
	if sw.gz != nil {
		if gerr := sw.gz.Close(); sw.err == nil {
			sw.err = gerr
		}
	}
	return sw.err
}

// StreamReader replays a trace from an io.Reader in constant memory: it
// decodes the global record stream on demand and hands each core its
// records through a bounded lookahead window, instead of materializing
// the whole trace like Read. When one core's replay runs far ahead of
// another's position in the file, up to window records per core are
// buffered; if the trace's interleave skew exceeds that, replay stops
// with an error (see Err) rather than buffering without bound.
//
// A StreamReader and its per-core streams must be used from one
// goroutine, which matches the simulator's single-threaded core loop.
type StreamReader struct {
	dec    *Decoder
	window int
	queues [][]Record // per-core FIFO: queues[c][heads[c]:] is pending
	heads  []int
	max    int // high-water mark of any per-core queue, for tests/stats
	eof    bool
	err    error
}

// NewStreamReader opens a trace (any format, auto-detected) for
// streaming replay by maxCores cores. window bounds the per-core
// lookahead in records; <= 0 means DefaultWindow.
func NewStreamReader(r io.Reader, maxCores, window int) (*StreamReader, error) {
	dec, err := NewDecoder(r, maxCores)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &StreamReader{
		dec:    dec,
		window: window,
		queues: make([][]Record, maxCores),
		heads:  make([]int, maxCores),
	}, nil
}

// Source returns core's record stream; the result implements sim.Source.
func (sr *StreamReader) Source(core int) *CoreStream {
	return &CoreStream{sr: sr, core: core}
}

// Prime decodes the first record into its window, so callers can fail
// fast on an empty or immediately malformed trace before standing up
// expensive replay state. An empty trace is not an error here — check
// Records afterwards.
func (sr *StreamReader) Prime() error {
	if sr.dec.Records() == 0 && !sr.eof && sr.err == nil {
		sr.pump()
	}
	return sr.err
}

// Err returns the decode or window-skew error that stopped replay, or
// nil after a clean end of trace. Callers must check it once every
// source has drained: per-core streams signal errors only as an early
// end of records.
func (sr *StreamReader) Err() error { return sr.err }

// Records returns how many records have been decoded so far.
func (sr *StreamReader) Records() uint64 { return sr.dec.Records() }

// MaxQueued returns the high-water mark of any core's lookahead queue —
// by construction at most the window.
func (sr *StreamReader) MaxQueued() int { return sr.max }

func (sr *StreamReader) queued(core int) int {
	return len(sr.queues[core]) - sr.heads[core]
}

// pump decodes one record into its core's queue; false once the stream
// is exhausted or errored.
func (sr *StreamReader) pump() bool {
	core, rec, err := sr.dec.Decode()
	if err == io.EOF {
		sr.eof = true
		return false
	}
	if err != nil {
		sr.err = err
		return false
	}
	if sr.queued(core) >= sr.window {
		sr.err = errorf("record %d: interleave skew exceeds the lookahead window: %d records of core %d buffered while other cores replay; rerun with a larger window", sr.dec.Records(), sr.window, core)
		return false
	}
	q := sr.queues[core]
	// Reclaim the drained prefix once it dominates the backing array, so
	// the queue's footprint stays proportional to the window, not to the
	// records replayed.
	if h := sr.heads[core]; h >= 64 && h*2 >= len(q) {
		n := copy(q, q[h:])
		q = q[:n]
		sr.heads[core] = 0
	}
	sr.queues[core] = append(q, rec)
	if n := sr.queued(core); n > sr.max {
		sr.max = n
	}
	return true
}

// CoreStream serves one core's records from a shared StreamReader; it
// implements sim.Source.
type CoreStream struct {
	sr   *StreamReader
	core int
}

// Next implements sim.Source: it pops core's next record, pumping the
// shared decoder (buffering other cores' records within their windows)
// until one arrives. ok is false at end of trace and after any decode or
// window error — the caller distinguishes the two via StreamReader.Err.
func (cs *CoreStream) Next() (gap uint64, addr memtypes.Addr, write bool, ok bool) {
	sr := cs.sr
	if sr.err != nil {
		// A stream error ends every core's replay at once, including
		// cores with buffered records: partial data must not replay on.
		return 0, 0, false, false
	}
	for sr.queued(cs.core) == 0 {
		if sr.eof {
			return 0, 0, false, false
		}
		sr.pump()
		if sr.err != nil {
			return 0, 0, false, false
		}
	}
	r := sr.queues[cs.core][sr.heads[cs.core]]
	sr.heads[cs.core]++
	if sr.heads[cs.core] == len(sr.queues[cs.core]) {
		sr.queues[cs.core] = sr.queues[cs.core][:0]
		sr.heads[cs.core] = 0
	}
	return r.Gap, r.Addr, r.Write, true
}

// NextBatch implements sim.BatchSource: it pops up to len(dst) of core's
// records in one call. Like Next it pumps the shared decoder only until
// at least one record is buffered, then drains what is already queued —
// record values, ordering, and error behavior match repeated Next calls.
func (cs *CoreStream) NextBatch(dst []memtypes.Rec) int {
	sr := cs.sr
	if sr.err != nil || len(dst) == 0 {
		return 0
	}
	for sr.queued(cs.core) == 0 {
		if sr.eof {
			return 0
		}
		sr.pump()
		if sr.err != nil {
			return 0
		}
	}
	q := sr.queues[cs.core]
	h := sr.heads[cs.core]
	n := len(q) - h
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		r := q[h+i]
		dst[i] = memtypes.Rec{Gap: r.Gap, Addr: r.Addr, Write: r.Write}
	}
	sr.heads[cs.core] = h + n
	if sr.heads[cs.core] == len(q) {
		sr.queues[cs.core] = q[:0]
		sr.heads[cs.core] = 0
	}
	return n
}
