// Package dse is the design-space exploration engine: the H2DSE-style
// search the paper builds its Figure 11 trade-off analysis from,
// generalized over every family in the design registry.
//
// # Search algorithm
//
// The space is the union of each selected family's enumeration
// (design.Info.Enumerate): the cross product of per-parameter value
// ladders, filtered through the family's cross-parameter Check hook, in
// deterministic registry-then-odometer order. The search then proceeds
// in rounds of BatchSize candidates:
//
//   - Exhaustive: when the space fits the budget (or the budget is
//     unlimited), rounds walk the space in enumeration order.
//   - Budgeted: when the space exceeds the budget, the first half of the
//     budget is spent on seeded random sampling without replacement
//     (exploration), after which rounds switch to hill-climbing: the
//     ladder neighbors (design.Info.Neighbors) of the current Pareto
//     frontier, name-sorted, topped up with random candidates when the
//     neighborhood is exhausted.
//
// Every candidate of a round is evaluated concurrently through
// internal/exp's parallel runner across the selected workloads; rounds
// always run to completion, so the search stops at the first round
// boundary at or past the budget. All randomness comes from a splitmix64
// generator whose single-word state lives in the checkpoint, which makes
// the round sequence — and therefore the frontier — a pure function of
// the options and seed, regardless of interruption or parallelism.
//
// # Objectives
//
// Each feasible candidate gets an objective vector (see Objectives):
// geometric-mean speedup over the no-NM baseline (maximized), the DRAM
// capacity the organization spends (minimized), and its mean write
// traffic across both memory devices — fills, migrations, writebacks,
// demand writes and metadata combined (minimized). The Pareto frontier
// over these vectors is maintained incrementally as batches merge;
// candidates that fail to build at the simulated scale are recorded as
// infeasible so a resumed search does not retry them.
//
// # Multi-fidelity screening
//
// With Options.ScreenInstrPerCore set, the search runs in two phases.
// A screening phase first explores up to ScreenBudget candidates at the
// truncated instruction budget, using the same round machinery
// (exploration then hill-climbing) against a screening-fidelity
// baseline. When screening completes, the survivors — the screening
// frontier plus its screened feasible ladder neighbors, in a
// deterministic name-sorted order — are promoted to full fidelity and
// evaluated in checkpointed rounds up to Budget. Screening runs are an
// order of magnitude cheaper than full runs, so for the same total
// instruction budget the search covers several times more of the space;
// only the promoted survivors pay full price. The screening fidelity is
// part of the checkpoint fingerprint, and the screened points are
// checkpointed alongside the full evaluations, so interrupted
// multi-fidelity searches resume byte-identically in either phase.
//
// # Checkpointing
//
// With Options.Checkpoint set, the search atomically rewrites a JSON
// state file after every completed round: schema version, an options
// fingerprint (everything the round sequence depends on, budget
// included), the RNG state, the baseline cycles, and the evaluated
// points in order. Options.Resume loads that file, rebuilds the
// frontier by folding the evaluated points, and continues the round
// sequence exactly where the interrupted run left off: a search
// interrupted at any round boundary — by cancellation or by the
// MaxRounds pause — and resumed yields byte-identical results to an
// uninterrupted run at the same seed.
package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hybridmem/internal/config"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all" // link every built-in organization into the registry
	"hybridmem/internal/exp"
	"hybridmem/internal/obs"
	"hybridmem/internal/store"
	"hybridmem/internal/workload"
)

// Options configures a search. The zero value of every field has a
// usable default; only genuinely invalid inputs (unknown family or
// workload names, Resume without Checkpoint) error.
type Options struct {
	// Families selects the design families to explore by base name;
	// nil means every registered family except the baseline.
	Families []string
	// Workloads selects the evaluation workloads by name; nil means all
	// 30 built-in benchmarks. Candidates are scored on their
	// geometric-mean behaviour across this set.
	Workloads []string
	// Budget bounds candidate evaluations; the search stops at the first
	// round boundary at or past it. <= 0 means exhaustive.
	Budget int
	// MaxRounds pauses the search after that many rounds in this
	// invocation (not counting checkpointed rounds), flushing the
	// checkpoint as usual; <= 0 means run to completion. A paused search
	// resumes exactly where it stopped — the programmatic form of an
	// interrupt at a round boundary.
	MaxRounds int
	// BatchSize is the round granularity: candidates evaluated (and
	// checkpointed) together. <= 0 means 8.
	BatchSize int
	// Seed drives the search's random sampling. 0 means 1.
	Seed uint64
	// Scale, InstrPerCore, SimSeed and Ratio16 configure the underlying
	// simulations (see exp.Runner); zero values mean the defaults
	// (config.DefaultScale, 200k instructions, seed 1, 1:16 NM:FM).
	Scale        int
	InstrPerCore uint64
	SimSeed      uint64
	Ratio16      int
	// ScreenInstrPerCore, when non-zero, enables multi-fidelity search:
	// candidates are first screened at this truncated instruction budget
	// and only the screening frontier (plus its screened feasible ladder
	// neighbors) is promoted to full-fidelity evaluation. Requires a
	// positive Budget.
	ScreenInstrPerCore uint64
	// ScreenBudget bounds screening evaluations; <= 0 means 4x Budget.
	// Only meaningful with ScreenInstrPerCore set.
	ScreenBudget int
	// Parallelism bounds concurrently evaluated runs; <= 0 means
	// GOMAXPROCS. It does not affect results.
	Parallelism int
	// MaxPerParam and UnboundedMax bound the space enumeration; see
	// design.EnumOptions. Zero means 12 values per parameter and
	// rejection of unbounded parameters.
	MaxPerParam  int
	UnboundedMax int
	// Eval, when non-nil, routes every simulation batch — candidate
	// rounds and baselines, at either fidelity — through an external
	// evaluator instead of the in-process runner; the hook the cluster
	// coordinator uses to distribute a search. All search state (RNG,
	// batching, frontier folds, checkpoints) stays local, and results
	// travel as integer measurements, so a distributed search is
	// byte-identical to a single-process one. Eval is deliberately not
	// part of the checkpoint fingerprint: local and distributed runs of
	// the same search share checkpoints interchangeably.
	Eval Evaluator
	// Store, when non-nil, backs the search's runners with the shared
	// content-addressed result store (internal/store): evaluations whose
	// runs a past search — or a sweep, or another process sharing the
	// store directory — already simulated are recalled from disk, so
	// overlapping searches cost near zero. Like Eval, the store is not
	// part of the checkpoint fingerprint: it changes where results come
	// from, never what they are.
	Store *store.Store
	// SimCounter, when non-nil, counts simulations actually executed
	// (store and memo hits excluded), threaded through to every runner.
	SimCounter *obs.Counter
	// Checkpoint is the state-file path, rewritten atomically after
	// every round; empty disables checkpointing. Resume continues from
	// an existing checkpoint instead of starting fresh.
	Checkpoint string
	Resume     bool
	// Progress, when non-nil, is called after every merged round and
	// once more when the search completes.
	Progress func(Event)
	// Phase, when non-nil, receives the wall-clock duration of each
	// internal search phase (currently "frontier_fold", the per-round
	// Pareto merge) so serving layers can record phase timings. Like
	// Eval, Store and SimCounter, Phase observes the search without
	// steering it and is not part of the checkpoint fingerprint.
	Phase func(name string, d time.Duration)
}

// Event is one streaming progress report.
type Event struct {
	// Round counts completed rounds; Evaluated counts evaluated
	// candidates (including infeasible ones) against Budget and
	// SpaceSize; FrontierSize is the current Pareto set size.
	Round        int
	Evaluated    int
	Budget       int
	SpaceSize    int
	FrontierSize int
	// Screened counts screening-fidelity evaluations (multi-fidelity
	// searches only; zero otherwise).
	Screened int
	// Done marks the final event of the search.
	Done bool
}

// Result is the outcome of a search.
type Result struct {
	// Frontier is the Pareto-optimal subset of the evaluated feasible
	// candidates, in reporting order (ascending capacity).
	Frontier []Point `json:"frontier"`
	// Evaluated lists every evaluated candidate in evaluation order —
	// the deterministic audit trail of the search.
	Evaluated []Point `json:"evaluated"`
	// Screened lists the screening-fidelity evaluations of a
	// multi-fidelity search in evaluation order; empty (and omitted)
	// when screening is disabled. Screened objectives are measured at
	// ScreenInstrPerCore and are not comparable to Evaluated's.
	Screened  []Point `json:"screened,omitempty"`
	SpaceSize int     `json:"space_size"`
	Rounds    int     `json:"rounds"`
	// Resumed reports whether this search continued from a checkpoint;
	// Complete whether it ran to its natural end rather than pausing at
	// MaxRounds. Both are deliberately excluded from the JSON form,
	// which is identical for interrupted-and-resumed and uninterrupted
	// runs.
	Resumed  bool `json:"-"`
	Complete bool `json:"-"`
}

// Search runs a design-space exploration to completion (or budget, or
// cancellation). On cancellation it flushes a final checkpoint and
// returns the partial result alongside ctx.Err(); everything already
// merged remains valid and resumable.
func Search(ctx context.Context, opts Options) (Result, error) {
	s, err := newSearcher(opts)
	if err != nil {
		return Result{}, err
	}
	if opts.Resume {
		if opts.Checkpoint == "" {
			return Result{}, errors.New("dse: Resume requires a Checkpoint path")
		}
		ck, err := loadCheckpoint(opts.Checkpoint)
		if err != nil {
			return Result{}, err
		}
		if err := s.restore(ck); err != nil {
			return Result{}, err
		}
	}
	if s.baseline == nil {
		if err := s.evalBaseline(ctx, false); err != nil {
			return s.result(), err
		}
	}
	if s.screening() && s.screenBaseline == nil {
		if err := s.evalBaseline(ctx, true); err != nil {
			return s.result(), err
		}
	}
	roundsBefore := s.rounds
	for !s.done() {
		if opts.MaxRounds > 0 && s.rounds-roundsBefore >= opts.MaxRounds {
			return s.result(), nil // paused; Complete stays false
		}
		rngBefore := s.rng.state
		screen := s.screening() && !s.screenDone()
		batch := s.nextBatch(screen)
		if len(batch) == 0 {
			break
		}
		pts, err := s.evalBatch(ctx, batch, screen)
		if err != nil {
			// The aborted round never happened: restore the RNG so the
			// flushed checkpoint reflects the last completed round, from
			// which resume regenerates this round identically.
			s.rng.state = rngBefore
			if ferr := s.flush(); ferr != nil {
				err = errors.Join(err, ferr)
			}
			return s.result(), err
		}
		foldStart := time.Now()
		s.merge(pts, screen)
		if s.opts.Phase != nil {
			s.opts.Phase("frontier_fold", time.Since(foldStart))
		}
		if err := s.flush(); err != nil {
			return s.result(), err
		}
		s.emit(false)
	}
	s.emit(true)
	res := s.result()
	res.Complete = true
	return res, nil
}

// searcher is the in-flight state of one search.
type searcher struct {
	opts     Options
	families []*design.Info
	wls      []workload.Spec
	enumOpts design.EnumOptions
	runner   *exp.Runner

	space    []design.Spec
	spaceIdx map[string]int

	rng      rng
	rounds   int
	baseline []uint64 // baseline cycles per workload, option order
	evald    []Point
	seen     map[string]bool
	front    frontier
	resumed  bool

	// Screening (multi-fidelity) state, populated only when
	// Options.ScreenInstrPerCore is set.
	screenRunner   *exp.Runner
	screenBaseline []uint64
	screened       []Point
	screenSeen     map[string]bool
	screenFront    frontier
}

// newSearcher validates and normalizes the options and enumerates the
// search space.
func newSearcher(opts Options) (*searcher, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = config.DefaultScale
	}
	if opts.InstrPerCore == 0 {
		opts.InstrPerCore = 200_000
	}
	if opts.SimSeed == 0 {
		opts.SimSeed = 1
	}
	if opts.Ratio16 <= 0 {
		opts.Ratio16 = 1
	}
	if err := config.ValidateRun(opts.Scale, opts.Ratio16, opts.InstrPerCore); err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	if opts.ScreenInstrPerCore > 0 {
		if opts.Budget <= 0 {
			return nil, errors.New("dse: multi-fidelity screening requires a positive Budget")
		}
		if err := config.ValidateRun(opts.Scale, opts.Ratio16, opts.ScreenInstrPerCore); err != nil {
			return nil, fmt.Errorf("dse: screen fidelity: %w", err)
		}
		// Normalize the default here so explicit and defaulted spellings
		// fingerprint identically.
		if opts.ScreenBudget <= 0 {
			opts.ScreenBudget = 4 * opts.Budget
		}
	} else {
		opts.ScreenBudget = 0
	}
	// Normalize the enumeration bounds the same way EnumOptions resolves
	// them, so the checkpoint fingerprint — which embeds them — matches
	// between semantically identical searches (e.g. MaxPerParam 0 vs 12).
	if opts.MaxPerParam <= 0 {
		opts.MaxPerParam = 12
	} else if opts.MaxPerParam < 2 {
		opts.MaxPerParam = 2
	}
	if opts.UnboundedMax < 0 {
		opts.UnboundedMax = 0
	}
	s := &searcher{
		opts:     opts,
		enumOpts: design.EnumOptions{MaxPerParam: opts.MaxPerParam, UnboundedMax: opts.UnboundedMax},
		seen:     map[string]bool{},
		rng:      rng{state: opts.Seed},
	}
	if opts.Families == nil {
		for _, info := range design.AllInfos() {
			if info.Kind != design.KindBaseline {
				s.families = append(s.families, info)
			}
		}
	} else {
		for _, name := range opts.Families {
			info, ok := design.LookupInfo(name)
			if !ok {
				return nil, fmt.Errorf("dse: unknown design family %q", name)
			}
			s.families = append(s.families, info)
		}
	}
	if len(s.families) == 0 {
		return nil, errors.New("dse: no design families to explore")
	}
	if opts.Workloads == nil {
		s.wls = workload.Specs()
	} else {
		for _, name := range opts.Workloads {
			wl, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("dse: unknown workload %q", name)
			}
			s.wls = append(s.wls, wl)
		}
	}
	if len(s.wls) == 0 {
		return nil, errors.New("dse: no workloads to evaluate on")
	}
	s.spaceIdx = map[string]int{}
	for _, info := range s.families {
		specs, err := info.Enumerate(s.enumOpts)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			if _, dup := s.spaceIdx[spec.Name]; dup {
				continue
			}
			s.spaceIdx[spec.Name] = len(s.space)
			s.space = append(s.space, spec)
		}
	}
	if len(s.space) == 0 {
		return nil, errors.New("dse: the selected families enumerate to an empty space")
	}
	s.runner = &exp.Runner{
		Scale:        opts.Scale,
		InstrPerCore: opts.InstrPerCore,
		Seed:         opts.SimSeed,
		Parallelism:  opts.Parallelism,
		Store:        opts.Store,
		SimCounter:   opts.SimCounter,
	}
	if s.screening() {
		s.screenSeen = map[string]bool{}
		s.screenRunner = &exp.Runner{
			Scale:        opts.Scale,
			InstrPerCore: opts.ScreenInstrPerCore,
			Seed:         opts.SimSeed,
			Parallelism:  opts.Parallelism,
			Store:        opts.Store,
			SimCounter:   opts.SimCounter,
		}
	}
	return s, nil
}

// screening reports whether this is a multi-fidelity search.
func (s *searcher) screening() bool { return s.opts.ScreenInstrPerCore > 0 }

// screenDone reports whether the screening phase has finished: the
// screening budget is spent or the whole space has been screened.
func (s *searcher) screenDone() bool {
	return len(s.screened) >= s.opts.ScreenBudget || len(s.screened) >= len(s.space)
}

// fingerprint encodes every option the round sequence depends on —
// including the budget, which sets the exploration/hill-climb phase
// boundary. Pausing and resuming therefore happens at a fixed budget
// (interrupt via MaxRounds or cancellation), never by growing it.
func (s *searcher) fingerprint() string {
	fams := make([]string, len(s.families))
	for i, f := range s.families {
		fams[i] = f.Name
	}
	wls := make([]string, len(s.wls))
	for i, wl := range s.wls {
		wls[i] = wl.Name
	}
	fp := fmt.Sprintf("v%d|fam=%s|wl=%s|budget=%d|seed=%d|simseed=%d|scale=%d|instr=%d|ratio=%d|batch=%d|maxvals=%d|ubound=%d",
		checkpointVersion, strings.Join(fams, ","), strings.Join(wls, ","), s.opts.Budget,
		s.opts.Seed, s.opts.SimSeed, s.opts.Scale, s.opts.InstrPerCore,
		s.opts.Ratio16, s.opts.BatchSize, s.enumOpts.MaxPerParam, s.enumOpts.UnboundedMax)
	// The screening fidelity changes the round sequence, so it is part of
	// the fingerprint — but only when enabled, so checkpoints written by
	// single-fidelity searches (including pre-screening ones) stay valid.
	if s.screening() {
		fp += fmt.Sprintf("|screen=%d|sbudget=%d", s.opts.ScreenInstrPerCore, s.opts.ScreenBudget)
	}
	return fp
}

// restore loads a checkpoint into the searcher.
func (s *searcher) restore(ck *checkpoint) error {
	if want := s.fingerprint(); ck.Fingerprint != want {
		return fmt.Errorf("dse: resume: checkpoint was written by a different search\n  checkpoint: %s\n  options:    %s", ck.Fingerprint, want)
	}
	if ck.SpaceSize != len(s.space) {
		return fmt.Errorf("dse: resume: checkpoint space size %d, options enumerate %d", ck.SpaceSize, len(s.space))
	}
	if len(ck.BaselineCycles) != len(s.wls) {
		return fmt.Errorf("dse: resume: checkpoint has %d baseline runs for %d workloads", len(ck.BaselineCycles), len(s.wls))
	}
	for _, p := range ck.Evaluated {
		if _, ok := s.spaceIdx[p.Design]; !ok {
			return fmt.Errorf("dse: resume: checkpointed design %q is outside the search space", p.Design)
		}
	}
	for _, p := range ck.Screened {
		if _, ok := s.spaceIdx[p.Design]; !ok {
			return fmt.Errorf("dse: resume: checkpointed screened design %q is outside the search space", p.Design)
		}
	}
	if s.screening() && ck.ScreenBaselineCycles != nil && len(ck.ScreenBaselineCycles) != len(s.wls) {
		return fmt.Errorf("dse: resume: checkpoint has %d screening baseline runs for %d workloads", len(ck.ScreenBaselineCycles), len(s.wls))
	}
	s.rng.state = ck.RNG
	s.rounds = ck.Rounds
	s.baseline = ck.BaselineCycles
	s.screenBaseline = ck.ScreenBaselineCycles
	s.record(ck.Screened, true)
	s.record(ck.Evaluated, false)
	s.resumed = true
	return nil
}

// evalBaseline runs the no-NM baseline once per workload — the
// normalization point of every candidate's speedup — at full or
// screening fidelity.
func (s *searcher) evalBaseline(ctx context.Context, screen bool) error {
	runs := make([]exp.RunSpec, len(s.wls))
	for i, wl := range s.wls {
		runs[i] = exp.RunSpec{Workload: wl, Design: "Baseline", Ratio16: 1}
	}
	res, err := s.runBatch(ctx, runs, screen)
	if err != nil {
		return fmt.Errorf("dse: baseline: %w", err)
	}
	if err := batchErr(res); err != nil {
		return fmt.Errorf("dse: baseline: %w", err)
	}
	cycles := make([]uint64, len(s.wls))
	for i, r := range res {
		if r.Cycles == 0 {
			return fmt.Errorf("dse: baseline run of %s completed no cycles", s.wls[i].Name)
		}
		cycles[i] = r.Cycles
	}
	if screen {
		s.screenBaseline = cycles
	} else {
		s.baseline = cycles
	}
	return nil
}

// done reports whether the search has nothing left to do.
func (s *searcher) done() bool {
	if s.screening() && !s.screenDone() {
		return false // the screening phase is still running
	}
	if s.opts.Budget > 0 && len(s.evald) >= s.opts.Budget {
		return true
	}
	return len(s.evald) >= len(s.space)
}

// nextBatch generates the next round of candidates for the given phase.
// Only random picks advance the RNG, so exhaustive searches are
// RNG-independent.
func (s *searcher) nextBatch(screen bool) []design.Spec {
	if screen {
		return s.generateBatch(s.screenSeen, len(s.screened), s.opts.ScreenBudget, &s.screenFront)
	}
	if s.screening() {
		return s.nextPromoted()
	}
	return s.generateBatch(s.seen, len(s.evald), s.opts.Budget, &s.front)
}

// generateBatch is the phase-independent round generator: exhaustive
// enumeration when the space fits the budget, else seeded exploration
// for the first half of the budget, then hill-climbing on the given
// frontier's ladder neighborhoods.
func (s *searcher) generateBatch(seen map[string]bool, evaluated, budget int, front *frontier) []design.Spec {
	var unseen []design.Spec
	for _, c := range s.space {
		if !seen[c.Name] {
			unseen = append(unseen, c)
		}
	}
	if len(unseen) == 0 {
		return nil
	}
	b := s.opts.BatchSize
	if b > len(unseen) {
		b = len(unseen)
	}
	if budget <= 0 || len(s.space) <= budget {
		return unseen[:b] // exhaustive: enumeration order
	}
	if evaluated < budget/2 {
		return s.randomPick(unseen, b) // exploration phase
	}
	// Hill-climb: the unseen ladder neighbors of the frontier,
	// name-sorted, topped up randomly when the neighborhood runs dry.
	var nbrs []design.Spec
	inBatch := map[string]bool{}
	for _, p := range front.sortedByName() {
		spec := s.space[s.spaceIdx[p.Design]]
		ns, err := spec.Info.Neighbors(spec, s.enumOpts)
		if err != nil {
			continue // enumeration bounds were already validated
		}
		for _, n := range ns {
			if _, ok := s.spaceIdx[n.Name]; !ok {
				continue
			}
			if seen[n.Name] || inBatch[n.Name] {
				continue
			}
			inBatch[n.Name] = true
			nbrs = append(nbrs, n)
		}
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Name < nbrs[j].Name })
	if len(nbrs) > b {
		nbrs = nbrs[:b]
	}
	if len(nbrs) < b {
		rest := unseen[:0:0]
		for _, c := range unseen {
			if !inBatch[c.Name] {
				rest = append(rest, c)
			}
		}
		nbrs = append(nbrs, s.randomPick(rest, b-len(nbrs))...)
	}
	return nbrs
}

// promoted derives the full-fidelity promotion list from the completed
// screening phase: the screening frontier's designs in name order,
// followed by their screened feasible ladder neighbors in name order.
// It is a pure function of the screened points, so a resumed search
// recomputes the identical list.
func (s *searcher) promoted() []design.Spec {
	feasible := make(map[string]bool, len(s.screened))
	for _, p := range s.screened {
		if !p.Infeasible {
			feasible[p.Design] = true
		}
	}
	inSet := map[string]bool{}
	var out []design.Spec
	add := func(name string) {
		if inSet[name] {
			return
		}
		inSet[name] = true
		out = append(out, s.space[s.spaceIdx[name]])
	}
	front := s.screenFront.sortedByName()
	for _, p := range front {
		add(p.Design)
	}
	var nbrNames []string
	for _, p := range front {
		spec := s.space[s.spaceIdx[p.Design]]
		ns, err := spec.Info.Neighbors(spec, s.enumOpts)
		if err != nil {
			continue
		}
		for _, n := range ns {
			if _, ok := s.spaceIdx[n.Name]; !ok {
				continue
			}
			if feasible[n.Name] && !inSet[n.Name] {
				nbrNames = append(nbrNames, n.Name)
			}
		}
	}
	sort.Strings(nbrNames)
	for _, n := range nbrNames {
		add(n)
	}
	return out
}

// nextPromoted walks the promotion list in order, skipping already
// fully-evaluated designs. RNG-free: the full-fidelity phase of a
// multi-fidelity search is entirely determined by the screening result.
func (s *searcher) nextPromoted() []design.Spec {
	var out []design.Spec
	for _, c := range s.promoted() {
		if s.seen[c.Name] {
			continue
		}
		out = append(out, c)
		if len(out) == s.opts.BatchSize {
			break
		}
	}
	return out
}

// randomPick draws up to k distinct candidates from pool via the
// checkpointed RNG (swap-remove sampling without replacement).
func (s *searcher) randomPick(pool []design.Spec, k int) []design.Spec {
	pool = append([]design.Spec(nil), pool...)
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]design.Spec, 0, k)
	for range k {
		i := s.rng.intn(len(pool))
		out = append(out, pool[i])
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	return out
}

// evalBatch evaluates one round: every (candidate, workload) run fans
// out through one runBatch call — the parallel in-process runner, or
// the external evaluator of a distributed search. A canceled context
// (or evaluator failure) aborts the whole round — nothing of it is
// recorded; a candidate whose runs fail for any other reason becomes an
// infeasible point.
func (s *searcher) evalBatch(ctx context.Context, batch []design.Spec, screen bool) ([]Point, error) {
	baseline := s.baseline
	if screen {
		baseline = s.screenBaseline
	}
	runs := make([]exp.RunSpec, 0, len(batch)*len(s.wls))
	for _, c := range batch {
		for _, wl := range s.wls {
			runs = append(runs, exp.RunSpec{Workload: wl, Design: c.Name, Ratio16: s.opts.Ratio16})
		}
	}
	res, err := s.runBatch(ctx, runs, screen)
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(batch))
	for i, c := range batch {
		pts[i] = s.score(c, res[i*len(s.wls):(i+1)*len(s.wls)], baseline)
	}
	return pts, nil
}

// score folds one candidate's per-workload results into its objective
// vector, normalized to the baseline of the fidelity it ran at. A
// zero-cycle slot marks a failed run; its transported error labels the
// infeasible point.
func (s *searcher) score(c design.Spec, res []EvalResult, baseline []uint64) Point {
	p := Point{Design: c.Name}
	var logSpeedup, traffic float64
	for i, r := range res {
		if r.Cycles == 0 {
			p.Infeasible = true
			if r.Err != "" {
				p.Err = r.Err
			} else {
				p.Err = "zero-cycle run"
			}
			return p
		}
		logSpeedup += math.Log(float64(baseline[i]) / float64(r.Cycles))
		traffic += float64(r.WriteBytes)
	}
	n := float64(len(res))
	p.Speedup = math.Exp(logSpeedup / n)
	p.TrafficGB = traffic / n / 1e9
	p.CapacityMB = capacityMB(c, s.opts.Ratio16)
	return p
}

// capacityMB resolves the capacity objective of a candidate: the
// paper-scale DRAM-cache size for families that parameterize it, the
// full near-memory size for the rest, zero for NM-less designs.
func capacityMB(c design.Spec, ratio16 int) float64 {
	for i, p := range c.Info.Params {
		if p.Name == "cacheMB" {
			return float64(c.Values[i].Int)
		}
	}
	if c.Info.NeedsNM {
		return float64(ratio16) * 1024 // ratio16/16 of 16 GB FM, in MB
	}
	return 0
}

// merge folds a completed round into the search state.
func (s *searcher) merge(pts []Point, screen bool) {
	s.record(pts, screen)
	s.rounds++
}

// record folds evaluated points into the evaluation trail and frontier
// of the given phase.
func (s *searcher) record(pts []Point, screen bool) {
	if screen {
		for _, p := range pts {
			if s.screenSeen[p.Design] {
				continue
			}
			s.screenSeen[p.Design] = true
			s.screened = append(s.screened, p)
			s.screenFront.add(p)
		}
		return
	}
	for _, p := range pts {
		if s.seen[p.Design] {
			continue
		}
		s.seen[p.Design] = true
		s.evald = append(s.evald, p)
		s.front.add(p)
	}
}

// flush rewrites the checkpoint, if one is configured.
func (s *searcher) flush() error {
	if s.opts.Checkpoint == "" {
		return nil
	}
	return saveCheckpoint(s.opts.Checkpoint, &checkpoint{
		Version:              checkpointVersion,
		Fingerprint:          s.fingerprint(),
		RNG:                  s.rng.state,
		Rounds:               s.rounds,
		SpaceSize:            len(s.space),
		BaselineCycles:       s.baseline,
		ScreenBaselineCycles: s.screenBaseline,
		Evaluated:            s.evald,
		Screened:             s.screened,
	})
}

// emit streams a progress event.
func (s *searcher) emit(done bool) {
	if s.opts.Progress == nil {
		return
	}
	s.opts.Progress(Event{
		Round:        s.rounds,
		Evaluated:    len(s.evald),
		Budget:       s.opts.Budget,
		SpaceSize:    len(s.space),
		FrontierSize: len(s.front.pts),
		Screened:     len(s.screened),
		Done:         done,
	})
}

// result assembles the (possibly partial) outcome.
func (s *searcher) result() Result {
	return Result{
		Frontier:  s.front.sorted(),
		Evaluated: append([]Point(nil), s.evald...),
		Screened:  append([]Point(nil), s.screened...),
		SpaceSize: len(s.space),
		Rounds:    s.rounds,
		Resumed:   s.resumed,
	}
}
