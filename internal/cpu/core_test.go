package cpu

import (
	"testing"

	"hybridmem/internal/memtypes"
)

func TestComputeThroughput(t *testing.T) {
	c := New(4, 8)
	c.AdvanceCompute(400)
	if c.Time != 100 {
		t.Fatalf("400 instrs at width 4 took %d cycles, want 100", c.Time)
	}
	if c.Instructions != 400 {
		t.Fatalf("retired %d, want 400", c.Instructions)
	}
}

func TestComputeRemainderAccumulates(t *testing.T) {
	c := New(4, 8)
	for i := 0; i < 4; i++ {
		c.AdvanceCompute(1) // 4 × 1 instr = 1 cycle total
	}
	if c.Time != 1 {
		t.Fatalf("4 single instructions took %d cycles, want 1", c.Time)
	}
}

func TestMissesOverlapUpToMLP(t *testing.T) {
	c := New(4, 4)
	// 4 misses all completing at cycle 100: no stall issuing them.
	for i := 0; i < 4; i++ {
		c.StallForMiss(100)
	}
	if c.Time != 0 {
		t.Fatalf("core stalled at %d while MLP available", c.Time)
	}
	// The 5th miss must wait for the oldest outstanding one.
	c.StallForMiss(200)
	if c.Time != 100 {
		t.Fatalf("5th miss stalled to %d, want 100", c.Time)
	}
}

func TestSingleMLPSerializes(t *testing.T) {
	c := New(4, 1)
	c.StallForMiss(50)
	c.StallForMiss(120)
	if c.Time != 50 {
		t.Fatalf("second miss issued at %d, want 50", c.Time)
	}
	c.DrainMisses()
	if c.Time != 120 {
		t.Fatalf("drain ended at %d, want 120", c.Time)
	}
}

func TestDrainTakesMaxOutstanding(t *testing.T) {
	c := New(4, 4)
	for _, d := range []memtypes.Tick{30, 90, 60, 10} {
		c.StallForMiss(d)
	}
	c.DrainMisses()
	if c.Time != 90 {
		t.Fatalf("drain ended at %d, want 90", c.Time)
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	c := New(0, 0)
	if c.MLP() != 1 {
		t.Fatalf("MLP %d, want clamp to 1", c.MLP())
	}
	c.AdvanceCompute(10)
	if c.Time != 10 {
		t.Fatalf("width clamp failed: %d cycles for 10 instrs", c.Time)
	}
}

func TestWriteBufferBackpressure(t *testing.T) {
	c := New(4, 4)
	// Fill all 16 write-buffer entries with writes completing at 1000.
	for i := 0; i < 16; i++ {
		c.StallForWrite(1000)
	}
	if c.Time != 0 {
		t.Fatalf("core stalled at %d with write-buffer space", c.Time)
	}
	// The 17th write must wait for the oldest entry.
	c.StallForWrite(2000)
	if c.Time != 1000 {
		t.Fatalf("17th write stalled to %d, want 1000", c.Time)
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	c := New(4, 2)
	for i := 0; i < 10; i++ {
		c.StallForWrite(500) // well within the buffer
	}
	c.StallForMiss(100)
	if c.Time != 0 {
		t.Fatalf("read miss stalled at %d due to buffered writes", c.Time)
	}
}
