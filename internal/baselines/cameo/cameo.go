// Package cameo implements CAMEO (Chou, Jaleel, Qureshi, MICRO'14), the
// origin of the congruence-group approach the paper's §2.2 discusses: NM
// and FM form a flat address space managed at cache-line (64 B)
// granularity, each NM line forming a group with its K congruent FM
// lines. Every access to an FM-resident line swaps it with the group's
// NM-resident line ("cache-like" migration), so the most recent line of
// each group always sits in NM. A line-granularity remap ("LLIT") is
// cached on-chip; misses read it from NM.
//
// CAMEO's strength is fine granularity (no over-fetch); its weakness —
// which the Hybrid2 paper points out for group-based schemes — is that
// low NM:FM ratios give each group many competitors for one NM line.
package cameo

import (
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config parameterizes CAMEO.
type Config struct {
	LineBytes         int
	NMBytes, FMBytes  uint64
	RemapCacheEntries int
	Seed              uint64
}

// Default returns the standard CAMEO configuration.
func Default(nmBytes, fmBytes uint64, remapEntries int, seed uint64) Config {
	return Config{
		LineBytes:         memtypes.CPULineBytes,
		NMBytes:           nmBytes,
		FMBytes:           fmBytes,
		RemapCacheEntries: remapEntries,
		Seed:              seed,
	}
}

// CAMEO implements memtypes.MemorySystem.
type CAMEO struct {
	cfg   Config
	nm    *memsys.Device
	fm    *memsys.Device
	stats memtypes.MemStats

	groups uint32 // one NM line per group
	k      uint32 // FM lines per group
	pinned uint32
	// slots[g*(k+1)+j]: location of member j of group g:
	// 0 = the group's NM line, v>0 = FM line g*k+(v-1).
	slots []uint8

	rcTags []uint64
	rcLRU  []uint64
	rcSets int
	clock  uint64

	permPow2 uint32
	permMul  uint32
	permAdd  uint32
}

// New builds CAMEO over the two devices.
func New(cfg Config, nm, fm *memsys.Device) *CAMEO {
	groups := uint32(cfg.NMBytes / uint64(cfg.LineBytes))
	fmLines := uint32(cfg.FMBytes / uint64(cfg.LineBytes))
	if groups == 0 {
		panic("cameo: no NM capacity")
	}
	k := fmLines / groups
	if k == 0 {
		k = 1
	}
	c := &CAMEO{
		cfg:    cfg,
		nm:     nm,
		fm:     fm,
		groups: groups,
		k:      k,
		pinned: fmLines - groups*k,
		slots:  make([]uint8, uint64(groups)*uint64(k+1)),
		rcTags: make([]uint64, cfg.RemapCacheEntries),
		rcLRU:  make([]uint64, cfg.RemapCacheEntries),
		rcSets: cfg.RemapCacheEntries / 16,
	}
	if c.rcSets <= 0 || c.rcSets&(c.rcSets-1) != 0 {
		panic("cameo: remap cache sets must be a positive power of two")
	}
	for g := uint32(0); g < groups; g++ {
		base := uint64(g) * uint64(k+1)
		for j := uint32(1); j <= k; j++ {
			c.slots[base+uint64(j)] = uint8(j)
		}
	}
	p := uint32(1)
	for p < c.Lines() {
		p <<= 1
	}
	c.permPow2 = p
	c.permMul = uint32(cfg.Seed)*8 + 5
	c.permAdd = uint32(cfg.Seed>>16) | 1
	return c
}

// Lines returns the logical flat-space size in 64 B lines.
func (c *CAMEO) Lines() uint32 { return c.groups*(c.k+1) + c.pinned }

// Name implements MemorySystem.
func (c *CAMEO) Name() string { return "CAMEO" }

// Stats implements MemorySystem.
func (c *CAMEO) Stats() *memtypes.MemStats { return &c.stats }

// scramble models OS page-allocation randomness (cycle-walking LCG).
func (c *CAMEO) scramble(l uint32) uint32 {
	n := c.Lines()
	x := l
	for {
		x = (x*c.permMul + c.permAdd) & (c.permPow2 - 1)
		if x < n {
			return x
		}
	}
}

// rcLookup checks the on-chip line-location table cache (one entry covers
// a group, like CAMEO's row-granularity LLIT entries).
func (c *CAMEO) rcLookup(group uint32) bool {
	c.clock++
	set := int(group) % c.rcSets
	base := set * 16
	victim := base
	key := uint64(group) + 1
	for i := base; i < base+16; i++ {
		if c.rcTags[i] == key {
			c.rcLRU[i] = c.clock
			return true
		}
		if c.rcTags[victim] == 0 {
			continue
		}
		if c.rcTags[i] == 0 || c.rcLRU[i] < c.rcLRU[victim] {
			victim = i
		}
	}
	c.rcTags[victim] = key
	c.rcLRU[victim] = c.clock
	return false
}

// Access implements MemorySystem: an FM-resident line is swapped with the
// group's NM occupant on every access (CAMEO's policy).
func (c *CAMEO) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	c.stats.Requests++
	logical := uint32(uint64(addr) / uint64(c.cfg.LineBytes))
	if logical >= c.Lines() {
		logical %= c.Lines()
	}
	logical = c.scramble(logical)
	lb := c.cfg.LineBytes

	grouped := c.groups * (c.k + 1)
	if logical >= grouped {
		// Pinned FM line: no group, no migration.
		c.stats.ServedFM++
		fmAddr := memtypes.Addr(c.groups*c.k+(logical-grouped)) * memtypes.Addr(lb)
		done := c.fm.Access(now, fmAddr, lb, write)
		c.countFM(write)
		return done
	}

	g := logical % c.groups
	j := logical / c.groups
	if !c.rcLookup(g) {
		// Line-location table read from NM on the critical path.
		now = c.nm.Access(now, memtypes.Addr(c.cfg.NMBytes)-memtypes.Addr(1+g%4096)*64, 64, false)
		c.stats.NMReadBytes += 64
		c.stats.MetaNMBytes += 64
	}

	base := uint64(g) * uint64(c.k+1)
	v := c.slots[base+uint64(j)]
	nmAddr := memtypes.Addr(g) * memtypes.Addr(lb)
	if v == 0 {
		c.stats.ServedNM++
		done := c.nm.Access(now, nmAddr, lb, write)
		if write {
			c.stats.NMWriteBytes += uint64(lb)
		} else {
			c.stats.NMReadBytes += uint64(lb)
		}
		return done
	}

	// FM resident: serve it and swap it with the NM occupant.
	c.stats.ServedFM++
	fmAddr := memtypes.Addr(g*c.k+uint32(v-1)) * memtypes.Addr(lb)
	done := c.fm.Access(now, fmAddr, lb, write)
	c.countFM(write)

	// Swap in the background: the occupant goes to the accessed line's
	// FM slot, the line's data fills the NM slot.
	rdNM := c.nm.AccessBG(now, nmAddr, lb, false)
	c.fm.AccessBG(rdNM, fmAddr, lb, true)
	c.nm.AccessBG(done, nmAddr, lb, true)
	c.stats.NMReadBytes += uint64(lb)
	c.stats.FMWriteBytes += uint64(lb)
	c.stats.NMWriteBytes += uint64(lb)
	c.stats.Migrations++

	// Occupant member (slot value 0) takes v; accessed member takes NM.
	for jj := uint64(0); jj <= uint64(c.k); jj++ {
		if c.slots[base+jj] == 0 {
			c.slots[base+jj] = v
			break
		}
	}
	c.slots[base+uint64(j)] = 0
	return done
}

func (c *CAMEO) countFM(write bool) {
	if write {
		c.stats.FMWriteBytes += uint64(c.cfg.LineBytes)
	} else {
		c.stats.FMReadBytes += uint64(c.cfg.LineBytes)
	}
}

// Finish implements MemorySystem (no deferred work).
func (c *CAMEO) Finish(memtypes.Tick) {}

// CheckInvariants verifies each group holds exactly one NM resident and
// distinct FM slots; used by tests.
func (c *CAMEO) CheckInvariants() bool {
	for g := uint32(0); g < c.groups; g++ {
		base := uint64(g) * uint64(c.k+1)
		seen := make(map[uint8]bool, c.k+1)
		nmCount := 0
		for j := uint64(0); j <= uint64(c.k); j++ {
			v := c.slots[base+j]
			if seen[v] {
				return false
			}
			seen[v] = true
			if v == 0 {
				nmCount++
			}
		}
		if nmCount != 1 {
			return false
		}
	}
	return true
}
