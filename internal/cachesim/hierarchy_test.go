package cachesim

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memtypes"
)

// table1Hierarchy builds the paper's private levels: 64 KB 4-way L1
// (1 cycle) and 256 KB 8-way L2 (9 cycles).
func table1Hierarchy() *Hierarchy {
	return NewHierarchy(
		Level{Cache: New(64<<10, 4, 64), Latency: 1},
		Level{Cache: New(256<<10, 8, 64), Latency: 9},
	)
}

func TestHierarchyHitLevels(t *testing.T) {
	h := table1Hierarchy()
	lvl, lat, _ := h.Access(0x1000, false)
	if !h.MissedAll(lvl) {
		t.Fatalf("cold access hit level %d", lvl)
	}
	if lat != 1+9 {
		t.Fatalf("full lookup latency %d, want 10", lat)
	}
	lvl, lat, _ = h.Access(0x1000, false)
	if lvl != 0 || lat != 1 {
		t.Fatalf("second access: level %d latency %d, want L1 at 1 cycle", lvl, lat)
	}
}

func TestHierarchyL2CatchesL1Victims(t *testing.T) {
	h := table1Hierarchy()
	// Fill one L1 set (4 ways, set stride 16 KB for 64 KB 4-way) with
	// dirty lines; the 5th forces a dirty L1 victim into L2, where a
	// subsequent access must hit at level 1.
	const stride = 64 << 10 / 4
	for i := 0; i < 5; i++ {
		h.Access(memtypes.Addr(i*stride), true)
	}
	lvl, _, _ := h.Access(0, false) // evicted from L1, installed in L2
	if lvl != 1 {
		t.Fatalf("L1 victim found at level %d, want L2 (1)", lvl)
	}
}

func TestHierarchyWritebacksOnlyFromLastLevel(t *testing.T) {
	h := NewHierarchy(
		Level{Cache: New(1<<10, 2, 64), Latency: 1}, // tiny L1
		Level{Cache: New(2<<10, 2, 64), Latency: 9}, // tiny L2
	)
	rng := rand.New(rand.NewSource(1))
	sawWriteback := false
	for i := 0; i < 5000; i++ {
		_, _, wbs := h.Access(memtypes.Addr(rng.Intn(1<<16))&^63, rng.Intn(2) == 0)
		if len(wbs) > 0 {
			sawWriteback = true
		}
	}
	if !sawWriteback {
		t.Fatal("no memory-level writebacks under dirty churn")
	}
}

func TestHierarchyNeedsLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hierarchy accepted")
		}
	}()
	NewHierarchy()
}

func TestHierarchyFiltersTraffic(t *testing.T) {
	// A working set fitting L1 must stop producing L2 accesses after the
	// first pass.
	h := table1Hierarchy()
	for pass := 0; pass < 3; pass++ {
		for a := memtypes.Addr(0); a < 16<<10; a += 64 {
			h.Access(a, false)
		}
	}
	l2 := h.levels[1].Cache
	if l2.Accesses != 16<<10/64 {
		t.Fatalf("L2 saw %d accesses, want one compulsory pass (%d)", l2.Accesses, 16<<10/64)
	}
}
