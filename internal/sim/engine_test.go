package sim_test

// The engine-rewrite pin: the heap-scheduled, batch-pulling, stenciled
// run loop must reproduce the old linear-scan reference loop's Result
// bit-identically for every registered design, and its steady state must
// not allocate per record.

import (
	"bytes"
	"testing"

	"hybridmem/internal/cachesim"
	"hybridmem/internal/config"
	"hybridmem/internal/cpu"
	"hybridmem/internal/design"
	_ "hybridmem/internal/design/all"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
	"hybridmem/internal/sim"
	"hybridmem/internal/stats"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// referenceRunSources is the pre-rewrite loop verbatim: linear earliest-
// core scan, one Source.Next per record, interface dispatch into ms.
func referenceRunSources(name string, srcs []sim.Source, mlp int, ms memtypes.MemorySystem, nm, fm *memsys.Device, sys config.System) sim.Result {
	llc := cachesim.New(sys.LLCBytes, config.LLCAssoc, memtypes.CPULineBytes)
	var lat stats.Histogram

	n := len(srcs)
	cores := make([]*cpu.Core, n)
	active := n
	done := make([]bool, n)
	for i := range cores {
		cores[i] = cpu.New(config.IssueWidth, mlp)
	}

	for active > 0 {
		sel := -1
		for i, c := range cores {
			if done[i] {
				continue
			}
			if sel < 0 || c.Time < cores[sel].Time {
				sel = i
			}
		}
		c := cores[sel]
		gap, addr, write, ok := srcs[sel].Next()
		if !ok {
			c.DrainMisses()
			done[sel] = true
			active--
			continue
		}
		c.AdvanceCompute(gap)
		c.RetireMemOp()
		c.AddLatency(config.LLCLatency)
		hit, victim, evicted := llc.Access(addr, write)
		if !hit {
			fill := ms.Access(c.Time, addr, false)
			if write {
				c.StallForWrite(fill)
			} else {
				lat.Add(uint64(fill - c.Time))
				c.StallForMiss(fill)
			}
		}
		if evicted && victim.Dirty {
			c.StallForWrite(ms.Access(c.Time, victim.Addr, true))
		}
		if !hit && sys.NextLinePrefetch {
			next := addr + memtypes.CPULineBytes
			if pHit, pVictim, pEvicted := llc.Access(next, false); !pHit {
				ms.Access(c.Time, next, false)
				if pEvicted && pVictim.Dirty {
					ms.Access(c.Time, pVictim.Addr, true)
				}
			}
		}
	}

	var cycles memtypes.Tick
	var instr uint64
	for _, c := range cores {
		if c.Time > cycles {
			cycles = c.Time
		}
		instr += c.Instructions
	}
	ms.Finish(cycles)

	res := sim.Result{
		Workload:     name,
		Design:       ms.Name(),
		Cycles:       cycles,
		Instructions: instr,
		LLCAccesses:  llc.Accesses,
		LLCMisses:    llc.Misses,
		Mem:          *ms.Stats(),
	}
	if cycles > 0 {
		res.IPC = float64(instr) / float64(cycles)
	}
	if instr > 0 {
		res.MPKI = float64(llc.Misses) / (float64(instr) / 1000)
	}
	if nm != nil {
		res.NMEnergyNJ = nm.DynamicEnergyNanoJ()
	}
	if fm != nil {
		res.FMEnergyNJ = fm.DynamicEnergyNanoJ()
	}
	res.LatMean = lat.Mean()
	res.LatP50 = memtypes.Tick(lat.Percentile(0.50))
	res.LatP99 = memtypes.Tick(lat.Percentile(0.99))
	return res
}

// nextOnly hides a stream's NextBatch so the engine's plain-Source path
// is exercised too.
type nextOnly struct{ s *workload.Stream }

func (n nextOnly) Next() (uint64, memtypes.Addr, bool, bool) { return n.s.Next() }

func engineSys() config.System {
	sys := config.Scaled(config.DefaultScale, 16)
	sys.InstrPerCore = 20_000
	sys.Seed = 7
	return sys
}

func engineSources(spec workload.Spec, sys config.System, batch bool) []sim.Source {
	srcs := make([]sim.Source, config.Cores)
	for i := range srcs {
		s := workload.NewStream(spec, i, sys.Scale, sys.InstrPerCore, sys.Seed)
		if batch {
			srcs[i] = s
		} else {
			srcs[i] = nextOnly{s}
		}
	}
	return srcs
}

// TestHeapLoopMatchesLinearScan pins the rewritten engine against the
// reference loop for every registered design, on both the batched and
// the plain-Source path.
func TestHeapLoopMatchesLinearScan(t *testing.T) {
	spec, ok := workload.ByName("lbm")
	if !ok {
		t.Fatal("workload lbm missing")
	}
	sys := engineSys()
	mlp := sim.MLPFor(spec)
	for _, info := range design.AllInfos() {
		name := info.Name
		if info.Example != "" {
			name = info.Example
		}
		t.Run(name, func(t *testing.T) {
			ms, nm, fm, err := design.Build(name, sys)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want := referenceRunSources(spec.Name, engineSources(spec, sys, true), mlp, ms, nm, fm, sys)

			ms2, nm2, fm2, err := design.Build(name, sys)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			got := sim.RunSources(spec.Name, engineSources(spec, sys, true), mlp, ms2, nm2, fm2, sys)
			if got != want {
				t.Errorf("batched engine diverges from reference:\n got %+v\nwant %+v", got, want)
			}

			ms3, nm3, fm3, err := design.Build(name, sys)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			got = sim.RunSources(spec.Name, engineSources(spec, sys, false), mlp, ms3, nm3, fm3, sys)
			if got != want {
				t.Errorf("plain-Source engine diverges from reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestHeapLoopMatchesLinearScanPrefetch covers the next-line-prefetch
// branch of the loop on the main design.
func TestHeapLoopMatchesLinearScanPrefetch(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	sys := engineSys()
	sys.NextLinePrefetch = true
	mlp := sim.MLPFor(spec)
	ms, nm, fm, err := design.Build("HYBRID2", sys)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRunSources(spec.Name, engineSources(spec, sys, true), mlp, ms, nm, fm, sys)
	ms2, nm2, fm2, err := design.Build("HYBRID2", sys)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.RunSources(spec.Name, engineSources(spec, sys, true), mlp, ms2, nm2, fm2, sys)
	if got != want {
		t.Errorf("prefetch run diverges:\n got %+v\nwant %+v", got, want)
	}
}

// runAllocs measures the allocations of one full build+run at the given
// instruction budget. Subtracting two budgets cancels the construction
// allocations, isolating the per-record steady state.
func runAllocs(t *testing.T, designName string, instr uint64) float64 {
	t.Helper()
	spec, _ := workload.ByName("lbm")
	sys := engineSys()
	sys.InstrPerCore = instr
	mlp := sim.MLPFor(spec)
	return testing.AllocsPerRun(1, func() {
		ms, nm, fm, err := design.Build(designName, sys)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSources(spec.Name, engineSources(spec, sys, true), mlp, ms, nm, fm, sys)
	})
}

// TestSteadyStateZeroAllocsSynthetic pins the per-record allocation count
// of the hot loop at zero: quadrupling the simulated records must not
// change the run's allocation count (up to a small amortized-slice-growth
// tolerance for designs with demand-grown free lists).
func TestSteadyStateZeroAllocsSynthetic(t *testing.T) {
	for _, tc := range []struct {
		design    string
		tolerance float64
	}{
		{"Baseline", 0},
		{"HYBRID2", 16},
	} {
		short := runAllocs(t, tc.design, 30_000)
		long := runAllocs(t, tc.design, 120_000)
		if diff := long - short; diff < -tc.tolerance || diff > tc.tolerance {
			t.Errorf("%s: allocs grew with record count: %v at 30k instr, %v at 120k (diff %v, tolerance %v)",
				tc.design, short, long, diff, tc.tolerance)
		}
	}
}

// encodeTrace renders the synthetic workload to an uncompressed binary
// trace in memory.
func encodeTrace(t *testing.T, spec workload.Spec, sys config.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := trace.NewStreamWriter(&buf, trace.FormatBinary, false)
	srcs := make([]*workload.Stream, config.Cores)
	for i := range srcs {
		srcs[i] = workload.NewStream(spec, i, sys.Scale, sys.InstrPerCore, sys.Seed)
	}
	for {
		wrote := false
		for core, s := range srcs {
			gap, addr, write, ok := s.Next()
			if !ok {
				continue
			}
			wrote = true
			if err := sw.Append(core, trace.Record{Gap: gap, Addr: addr, Write: write}); err != nil {
				t.Fatal(err)
			}
		}
		if !wrote {
			break
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func replayAllocs(t *testing.T, raw []byte, sys config.System, mlp int) float64 {
	t.Helper()
	return testing.AllocsPerRun(1, func() {
		sr, err := trace.NewStreamReader(bytes.NewReader(raw), config.Cores, 0)
		if err != nil {
			t.Fatal(err)
		}
		srcs := make([]sim.Source, config.Cores)
		for i := range srcs {
			srcs[i] = sr.Source(i)
		}
		ms, nm, fm, err := design.Build("Baseline", sys)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSources("replay", srcs, mlp, ms, nm, fm, sys)
		if err := sr.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateZeroAllocsTraceReplay pins the binary-trace replay path:
// quadrupling the trace length must not change the allocation count
// beyond the decode queues' bounded warm-up growth.
func TestSteadyStateZeroAllocsTraceReplay(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	sys := engineSys()
	mlp := sim.MLPFor(spec)

	sys.InstrPerCore = 30_000
	short := replayAllocs(t, encodeTrace(t, spec, sys), sys, mlp)
	sys.InstrPerCore = 120_000
	long := replayAllocs(t, encodeTrace(t, spec, sys), sys, mlp)
	const tolerance = 24 // per-core queue arrays double a few more times
	if diff := long - short; diff < -tolerance || diff > tolerance {
		t.Errorf("replay allocs grew with trace length: %v short, %v long (diff %v)", short, long, diff)
	}
}
