package cameo

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func newSmall(seed uint64) *CAMEO {
	cfg := Default(1<<20, 8<<20, 512, seed)
	return New(cfg, memsys.New(memsys.HBM2Config()), memsys.New(memsys.DDR4Config()))
}

func TestGeometry(t *testing.T) {
	c := newSmall(1)
	if c.groups != 1<<20/64 {
		t.Fatalf("groups %d, want one per NM line", c.groups)
	}
	if c.k != 8 {
		t.Fatalf("k %d, want FM:NM ratio 8", c.k)
	}
	if !c.CheckInvariants() {
		t.Fatal("initial state invalid")
	}
}

func TestAccessSwapsLineIntoNM(t *testing.T) {
	c := newSmall(2)
	// Find a raw address resolving to an FM-resident grouped line.
	var addr memtypes.Addr
	for raw := uint32(0); raw < c.Lines(); raw++ {
		l := c.scramble(raw)
		if l >= c.groups*(c.k+1) {
			continue
		}
		if c.slots[uint64(l%c.groups)*uint64(c.k+1)+uint64(l/c.groups)] != 0 {
			addr = memtypes.Addr(raw) * 64
			break
		}
	}
	c.Access(0, addr, false)
	if c.Stats().Migrations != 1 {
		t.Fatalf("migrations %d, want 1 (CAMEO swaps on every FM access)", c.Stats().Migrations)
	}
	// The second access must be served from NM.
	c.Access(5000, addr, false)
	if c.Stats().ServedNM != 1 {
		t.Fatalf("line not NM-resident after swap: %+v", c.Stats())
	}
	if !c.CheckInvariants() {
		t.Fatal("group state invalid after swap")
	}
}

func TestGroupInvariantsUnderTraffic(t *testing.T) {
	c := newSmall(3)
	rng := rand.New(rand.NewSource(7))
	space := uint64(c.Lines()) * 64
	var now memtypes.Tick
	for i := 0; i < 30000; i++ {
		now += 50
		c.Access(now, memtypes.Addr(rng.Uint64()%space), rng.Intn(4) == 0)
	}
	if !c.CheckInvariants() {
		t.Fatal("group invariants violated")
	}
	s := c.Stats()
	if s.ServedNM+s.ServedFM != s.Requests {
		t.Fatalf("served sums %d+%d != requests %d", s.ServedNM, s.ServedFM, s.Requests)
	}
	if s.Migrations == 0 {
		t.Fatal("no swaps under random traffic")
	}
}

func TestFineGranularityNoOverfetch(t *testing.T) {
	// CAMEO moves exactly one 64 B line per swap: FM read bytes must be
	// 64 per served-FM access (demand), plus nothing else.
	c := newSmall(4)
	var now memtypes.Tick
	for i := 0; i < 1000; i++ {
		now += 100
		c.Access(now, memtypes.Addr(i)*64, false)
	}
	s := c.Stats()
	if s.FMReadBytes != s.ServedFM*64 {
		t.Fatalf("FM reads %d for %d FM-served accesses: over-fetch", s.FMReadBytes, s.ServedFM)
	}
}

func TestPinnedLinesNeverMigrate(t *testing.T) {
	c := newSmall(5)
	if c.pinned == 0 {
		t.Skip("no pinned remainder in this geometry")
	}
	pinned := c.groups*(c.k+1) + c.pinned - 1
	var raw memtypes.Addr
	for r := uint32(0); r < c.Lines(); r++ {
		if c.scramble(r) == pinned {
			raw = memtypes.Addr(r) * 64
			break
		}
	}
	before := c.Stats().Migrations
	for i := 0; i < 50; i++ {
		c.Access(memtypes.Tick(i)*100, raw, false)
	}
	if c.Stats().Migrations != before {
		t.Fatal("pinned line triggered a swap")
	}
}
